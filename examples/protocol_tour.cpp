// A tour of the three coherence protocols on one of the paper's own
// applications, using the experiment harness: per-protocol speedups,
// fault counts, and traffic for Water-Spatial — a compact version of what
// the bench/ binaries do for every table and figure.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace dsm;

int main() {
  harness::Harness h(apps::Scale::kTiny, 16);
  h.set_progress(false);

  std::printf("Water-Spatial on 16 nodes (tiny input), all protocols x "
              "granularities\n\n");
  harness::print_speedup_series(h, "Water-Spatial");
  harness::print_fault_table(h, "Water-Spatial");

  std::printf("Traffic (KB) and diffs at page granularity\n\n");
  Table t({"protocol", "traffic KB", "diffs", "invalidations",
           "notices processed"});
  for (ProtocolKind p : harness::kProtocols) {
    const auto& r = h.run("Water-Spatial", p, 4096);
    const auto tot = r.stats.total();
    t.add_row({to_string(p),
               fmt(static_cast<double>(r.stats.traffic_bytes) / 1e3, 1),
               fmt_count(static_cast<std::int64_t>(tot.diffs)),
               fmt_count(static_cast<std::int64_t>(tot.invalidations)),
               fmt_count(static_cast<std::int64_t>(tot.notices_processed))});
  }
  t.print();
  std::printf("\nEvery run above was verified against the sequential "
              "reference before being reported.\n");
  return 0;
}
