// Quickstart: write an application against the DSM API and run it on the
// simulated 16-node cluster under two different coherence protocols.
//
//   cmake --build build && ./build/examples/quickstart
//
// The application: a parallel dot product.  Each node owns a contiguous
// slice of two shared vectors, computes its partial sum, publishes it in a
// shared array, and node 0 reduces after a barrier.
#include <cstdio>
#include <numeric>

#include "runtime/runtime.hpp"

using namespace dsm;

class DotProduct final : public App {
 public:
  explicit DotProduct(std::size_t n) : n_(n) {}

  std::string name() const override { return "dot-product"; }

  // Host-side setup: allocate shared memory and write the initial data
  // into the backing image (free of simulated cost, like the paper's
  // uninstrumented initialization).
  void setup(SetupCtx& s) override {
    x_ = s.alloc(n_ * sizeof(double), 4096);
    y_ = s.alloc(n_ * sizeof(double), 4096);
    partial_ = s.alloc(static_cast<std::size_t>(s.nodes()) * sizeof(double), 64);
    for (std::size_t i = 0; i < n_; ++i) {
      s.write<double>(x_ + i * 8, 1.0 + 0.001 * static_cast<double>(i));
      s.write<double>(y_ + i * 8, 2.0 - 0.001 * static_cast<double>(i));
    }
  }

  // Per-node body: runs as a fiber on each simulated node.
  void node_main(Context& ctx) override {
    const std::size_t per = n_ / static_cast<std::size_t>(ctx.nodes());
    const std::size_t lo = static_cast<std::size_t>(ctx.id()) * per;
    const std::size_t hi = ctx.id() + 1 == ctx.nodes() ? n_ : lo + per;

    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sum += ctx.load<double>(x_ + i * 8) * ctx.load<double>(y_ + i * 8);
      ctx.flops(2);  // model the multiply-add on the 66 MHz target
    }
    ctx.store<double>(partial_ + static_cast<std::size_t>(ctx.id()) * 8, sum);
    ctx.barrier();

    ctx.stop_timer();  // everything below is excluded from the timing
    if (ctx.id() == 0) {
      result_ = 0.0;
      for (int p = 0; p < ctx.nodes(); ++p) {
        result_ += ctx.load<double>(partial_ + static_cast<std::size_t>(p) * 8);
      }
    }
  }

  std::string verify() override { return {}; }
  double result() const { return result_; }

 private:
  std::size_t n_;
  GAddr x_ = 0, y_ = 0, partial_ = 0;
  double result_ = 0.0;
};

int main() {
  constexpr std::size_t kN = 1 << 16;

  for (ProtocolKind proto : {ProtocolKind::kSC, ProtocolKind::kHLRC}) {
    DsmConfig cfg;
    cfg.nodes = 16;
    cfg.protocol = proto;
    cfg.granularity = 4096;
    cfg.shared_bytes = 4u << 20;

    DotProduct app(kN);
    Runtime rt(cfg);
    const RunResult r = rt.run(app);

    std::printf("%-7s  result=%.4f  virtual time=%.3f ms  "
                "read faults=%llu  messages=%llu  traffic=%.1f KB\n",
                to_string(proto), app.result(),
                static_cast<double>(r.parallel_time) / 1e6,
                static_cast<unsigned long long>(r.stats.total().read_faults),
                static_cast<unsigned long long>(r.stats.messages),
                static_cast<double>(r.stats.traffic_bytes) / 1e3);
  }
  return 0;
}
