// A domain-specific example: iterative 5-point Jacobi stencil with ghost
// exchange through the DSM, demonstrating how coherence granularity
// interacts with a row-partitioned grid — the Ocean story in miniature.
// Prints a granularity sweep under SC and HLRC.
#include <cstdio>
#include <vector>

#include "runtime/runtime.hpp"

using namespace dsm;

class Jacobi final : public App {
 public:
  Jacobi(int n, int iters) : n_(n), iters_(iters) {}
  std::string name() const override { return "jacobi"; }

  void setup(SetupCtx& s) override {
    src_ = s.alloc(static_cast<std::size_t>(n_) * n_ * 8, 4096);
    dst_ = s.alloc(static_cast<std::size_t>(n_) * n_ * 8, 4096);
    for (int r = 0; r < n_; ++r) {
      for (int c = 0; c < n_; ++c) {
        const double v = (r == 0 || c == 0 || r == n_ - 1 || c == n_ - 1)
                             ? 100.0
                             : 0.0;
        s.write<double>(at(src_, r, c), v);
        s.write<double>(at(dst_, r, c), v);
      }
    }
  }

  void node_main(Context& ctx) override {
    const int rows = (n_ - 2) / ctx.nodes();
    const int r0 = 1 + ctx.id() * rows;
    const int r1 = ctx.id() + 1 == ctx.nodes() ? n_ - 1 : r0 + rows;
    GAddr from = src_, to = dst_;
    for (int it = 0; it < iters_; ++it) {
      for (int r = r0; r < r1; ++r) {
        for (int c = 1; c < n_ - 1; ++c) {
          const double v = 0.25 * (ctx.load<double>(at(from, r - 1, c)) +
                                   ctx.load<double>(at(from, r + 1, c)) +
                                   ctx.load<double>(at(from, r, c - 1)) +
                                   ctx.load<double>(at(from, r, c + 1)));
          ctx.store<double>(at(to, r, c), v);
          ctx.flops(4);
        }
      }
      ctx.barrier();
      std::swap(from, to);
    }
    ctx.stop_timer();
    if (ctx.id() == 0) {
      center_ = ctx.load<double>(at(from, n_ / 2, n_ / 2));
    }
  }

  std::string verify() override { return {}; }
  double center() const { return center_; }

 private:
  GAddr at(GAddr base, int r, int c) const {
    return base + (static_cast<GAddr>(r) * n_ + c) * 8;
  }
  int n_, iters_;
  GAddr src_ = 0, dst_ = 0;
  double center_ = 0.0;
};

int main() {
  std::printf("Jacobi 130x130, 12 iterations, 16 nodes: virtual ms by "
              "granularity\n\n%-10s %8s %8s %8s %8s\n", "protocol", "64",
              "256", "1024", "4096");
  for (ProtocolKind p : {ProtocolKind::kSC, ProtocolKind::kHLRC}) {
    std::printf("%-10s", to_string(p));
    for (std::size_t g : {64u, 256u, 1024u, 4096u}) {
      DsmConfig cfg;
      cfg.nodes = 16;
      cfg.protocol = p;
      cfg.granularity = g;
      cfg.shared_bytes = 4u << 20;
      Jacobi app(130, 12);
      Runtime rt(cfg);
      const RunResult r = rt.run(app);
      std::printf(" %8.2f", static_cast<double>(r.parallel_time) / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\n(130 doubles per row = 1040 bytes: rows are not page "
              "multiples, so strip\nboundaries share pages — watch SC "
              "degrade at 4096 while HLRC merges writers.)\n");
  return 0;
}
