// A task-parallel example: Mandelbrot rendering with distributed task
// queues and work stealing over the DSM — the Volrend/Raytrace idiom.
// Shows locks, irregular load balance, and how HLRC tolerates the
// resulting fine-grain image writes at page granularity.
#include <cstdio>

#include "apps/task_queue.hpp"
#include "runtime/runtime.hpp"

using namespace dsm;

class Mandelbrot final : public App {
 public:
  Mandelbrot(int size, int max_iter) : size_(size), max_iter_(max_iter) {}
  std::string name() const override { return "mandelbrot"; }

  void setup(SetupCtx& s) override {
    image_ = s.alloc(static_cast<std::size_t>(size_) * size_ * 4, 4096);
    const int rows = size_;
    queues_.allocate(s, s.nodes(), rows / s.nodes() + s.nodes() + 1);
    for (int r = 0; r < rows; ++r) queues_.deal(s, r % s.nodes(), r);
  }

  void node_main(Context& ctx) override {
    for (;;) {
      const std::int32_t row = queues_.next(ctx, ctx.id());
      if (row < 0) break;
      for (int x = 0; x < size_; ++x) {
        const double cr = -2.0 + 3.0 * x / size_;
        const double ci = -1.5 + 3.0 * row / size_;
        double zr = 0, zi = 0;
        int it = 0;
        while (it < max_iter_ && zr * zr + zi * zi < 4.0) {
          const double t = zr * zr - zi * zi + cr;
          zi = 2 * zr * zi + ci;
          zr = t;
          ++it;
        }
        ctx.flops(8 * it);  // model the escape iteration cost
        ctx.store<std::int32_t>(
            image_ + (static_cast<GAddr>(row) * size_ + x) * 4, it);
      }
    }
    ctx.barrier();
    ctx.stop_timer();
    if (ctx.id() == 0) {
      std::int64_t sum = 0;
      for (int i = 0; i < size_ * size_; ++i) {
        sum += ctx.load<std::int32_t>(image_ + static_cast<GAddr>(i) * 4);
      }
      checksum_ = sum;
    }
  }

  std::string verify() override { return {}; }
  std::int64_t checksum() const { return checksum_; }

 private:
  int size_, max_iter_;
  GAddr image_ = 0;
  apps::TaskQueues queues_;
  std::int64_t checksum_ = 0;
};

int main() {
  std::printf("Mandelbrot 128x128 with work stealing, 16 nodes, "
              "HLRC-4096 vs SC-64\n\n");
  for (auto [p, g] : {std::pair{ProtocolKind::kHLRC, std::size_t{4096}},
                      std::pair{ProtocolKind::kSC, std::size_t{64}}}) {
    DsmConfig cfg;
    cfg.nodes = 16;
    cfg.protocol = p;
    cfg.granularity = g;
    cfg.shared_bytes = 4u << 20;
    Mandelbrot app(128, 256);
    Runtime rt(cfg);
    const RunResult r = rt.run(app);
    const auto t = r.stats.total();
    std::printf("%-7s %4zuB: checksum=%lld  time=%.2f ms  locks=%llu  "
                "steals visible as remote lock ops=%llu\n",
                to_string(p), g, static_cast<long long>(app.checksum()),
                static_cast<double>(r.parallel_time) / 1e6,
                static_cast<unsigned long long>(t.lock_acquires),
                static_cast<unsigned long long>(t.remote_lock_ops));
  }
  std::printf("\nThe escape-time iteration count varies wildly per row: the "
              "initial deal is\nimbalanced and idle nodes steal from "
              "victims' queue tails.\n");
  return 0;
}
