// Shared helpers for protocol-level tests: a lambda-based App and compact
// config constructors.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "runtime/runtime.hpp"

namespace dsm::testing {

class LambdaApp : public App {
 public:
  LambdaApp(std::function<void(SetupCtx&)> setup,
            std::function<void(Context&)> body)
      : setup_(std::move(setup)), body_(std::move(body)) {}

  std::string name() const override { return "lambda"; }
  void setup(SetupCtx& s) override {
    if (setup_) setup_(s);
  }
  void node_main(Context& ctx) override { body_(ctx); }

 private:
  std::function<void(SetupCtx&)> setup_;
  std::function<void(Context&)> body_;
};

inline DsmConfig cfg(ProtocolKind p, std::size_t gran, int nodes = 4,
                     net::NotifyMode notify = net::NotifyMode::kPolling) {
  DsmConfig c;
  c.nodes = nodes;
  c.protocol = p;
  c.granularity = gran;
  c.notify = notify;
  c.shared_bytes = 1u << 20;
  c.stack_bytes = 256 * 1024;
  return c;
}

inline RunResult run(const DsmConfig& c,
                     std::function<void(SetupCtx&)> setup,
                     std::function<void(Context&)> body) {
  LambdaApp app(std::move(setup), std::move(body));
  Runtime rt(c);
  return rt.run(app);
}

}  // namespace dsm::testing
