// Application correctness: every SPLASH-2 port must reproduce its
// sequential reference under every protocol (the application result is
// the strongest end-to-end check of protocol correctness).
#include <gtest/gtest.h>

#include "apps/app_base.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

struct AppCase {
  const char* app;
  ProtocolKind proto;
  std::size_t gran;
};

std::string case_name(const ::testing::TestParamInfo<AppCase>& info) {
  std::string s = std::string(info.param.app) + "_" +
                  to_string(info.param.proto) + "_" +
                  std::to_string(info.param.gran);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class AppMatrix : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppMatrix, MatchesSequentialReference) {
  const AppCase c = GetParam();
  const apps::AppInfo* info = apps::find_app(c.app);
  ASSERT_NE(info, nullptr);
  auto app = info->make(apps::Scale::kTiny);
  DsmConfig cfg = testing::cfg(c.proto, c.gran, 4);
  cfg.shared_bytes = 8u << 20;
  cfg.poll_dilation = info->poll_dilation;
  Runtime rt(cfg);
  const RunResult r = rt.run(*app);
  EXPECT_EQ(app->verify(), "");
  EXPECT_GT(r.parallel_time, 0);
  EXPECT_GT(r.stats.total().read_faults, 0u);
}

std::vector<AppCase> app_matrix() {
  std::vector<AppCase> v;
  for (const auto& info : apps::registry()) {
    for (ProtocolKind p :
         {ProtocolKind::kSC, ProtocolKind::kSWLRC, ProtocolKind::kHLRC}) {
      for (std::size_t g :
           {std::size_t{64}, std::size_t{256}, std::size_t{4096}}) {
        v.push_back({info.name.c_str(), p, g});
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(All, AppMatrix, ::testing::ValuesIn(app_matrix()),
                         case_name);

TEST(AppsRegistry, TwelvePaperAppsPlusThreeServiceApps) {
  EXPECT_EQ(apps::registry().size(), 15u);
  EXPECT_NE(apps::find_app("LU"), nullptr);
  EXPECT_NE(apps::find_app("Barnes-Spatial"), nullptr);
  EXPECT_NE(apps::find_app("SvcKV"), nullptr);
  EXPECT_NE(apps::find_app("SvcQueue"), nullptr);
  EXPECT_NE(apps::find_app("SvcLease"), nullptr);
  EXPECT_EQ(apps::find_app("NoSuchApp"), nullptr);
}

TEST(AppsRegistry, LuPollDilationMatchesPaper) {
  // Paper §5.4: LU with polling instrumentation runs 55% slower.
  EXPECT_DOUBLE_EQ(apps::find_app("LU")->poll_dilation, 1.55);
}

TEST(Apps, SixteenNodeRunWorks) {
  // The paper's cluster size.
  const apps::AppInfo* info = apps::find_app("Ocean-Rowwise");
  auto app = info->make(apps::Scale::kTiny);
  DsmConfig cfg = testing::cfg(ProtocolKind::kHLRC, 4096, 16);
  cfg.shared_bytes = 8u << 20;
  Runtime rt(cfg);
  rt.run(*app);
  EXPECT_EQ(app->verify(), "");
}

TEST(Apps, InterruptModeProducesSameResults) {
  const apps::AppInfo* info = apps::find_app("Water-Nsquared");
  auto app = info->make(apps::Scale::kTiny);
  DsmConfig cfg = testing::cfg(ProtocolKind::kSC, 256, 4,
                               net::NotifyMode::kInterrupt);
  cfg.shared_bytes = 8u << 20;
  Runtime rt(cfg);
  rt.run(*app);
  EXPECT_EQ(app->verify(), "");
}

TEST(Apps, BarnesLrcIssuesMoreLocksThanSc) {
  // Paper §5.2.2: the release-consistent version of Barnes-Original issues
  // many more lock calls (2,086 vs 17,167 on the paper's input).
  auto run_locks = [](ProtocolKind p) {
    auto app = apps::find_app("Barnes-Original")->make(apps::Scale::kTiny);
    DsmConfig cfg = testing::cfg(p, 1024, 4);
    cfg.shared_bytes = 8u << 20;
    Runtime rt(cfg);
    return rt.run(*app).stats.total().lock_acquires;
  };
  const auto sc = run_locks(ProtocolKind::kSC);
  const auto hlrc = run_locks(ProtocolKind::kHLRC);
  EXPECT_GT(hlrc, 2 * sc);  // ~8x at the paper's scale; ~2.5x at tiny trees
}

}  // namespace
}  // namespace dsm
