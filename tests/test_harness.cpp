// Tests for the experiment harness and the paper's §5.5 statistics
// (relative efficiency, harmonic means).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace dsm::harness {
namespace {

TEST(HarmonicMean, HandComputedValues) {
  const double xs1[] = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs1), 1.0);
  const double xs2[] = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs2), 2.0 / 3.0);
  const double xs3[] = {2.0, 6.0, 3.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs3), 3.0);
}

TEST(HarmonicMean, DominatedByWorstCase) {
  // The paper uses HM precisely because one terrible application (e.g.
  // Barnes-Original at 4096 B) should drag the average down hard.
  const double xs[] = {0.9, 0.95, 0.05};
  EXPECT_LT(harmonic_mean(xs), 0.15);
}

TEST(Harness, RunsVerifyAndCache) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  const ExpResult& a = h.run("LU", ProtocolKind::kSC, 256);
  EXPECT_TRUE(a.verified);
  EXPECT_GT(a.speedup, 0.0);
  // Cached: same object back.
  const ExpResult& b = h.run("LU", ProtocolKind::kSC, 256);
  EXPECT_EQ(&a, &b);
}

TEST(Harness, SequentialBaselineIsDeterministic) {
  Harness h1(apps::Scale::kTiny, 4), h2(apps::Scale::kTiny, 4);
  h1.set_progress(false);
  h2.set_progress(false);
  EXPECT_EQ(h1.sequential_time("FFT"), h2.sequential_time("FFT"));
}

TEST(Harness, OriginalAppListMatchesPaper) {
  EXPECT_EQ(original_apps().size(), 8u);
  EXPECT_EQ(app_version_groups().size(), 8u);
  std::size_t versions = 0;
  for (const auto& g : app_version_groups()) versions += g.size();
  EXPECT_EQ(versions, 12u);
}

TEST(Harness, SpeedupUsesSequentialBaseline) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  const auto& r = h.run("Ocean-Rowwise", ProtocolKind::kHLRC, 1024);
  const double expect = static_cast<double>(h.sequential_time("Ocean-Rowwise")) /
                        static_cast<double>(r.parallel_time);
  EXPECT_DOUBLE_EQ(r.speedup, expect);
}

TEST(HmTable, RelativeEfficiencyBounds) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  const auto a = HmAnalysis::over_apps(h, {"LU", "FFT"});
  // Every HM is in (0, 1]; hm_best is exactly 1 by construction.
  EXPECT_DOUBLE_EQ(a.hm_best(), 1.0);
  for (ProtocolKind p : kProtocols) {
    for (std::size_t g : kGrains) {
      const double v = a.hm(p, g);
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    EXPECT_LE(a.hm(p, 64), a.hm_gbest(p) + 1e-12);
  }
  // pbest at a granularity dominates each single protocol there.
  for (std::size_t g : kGrains) {
    for (ProtocolKind p : kProtocols) {
      EXPECT_GE(a.hm_pbest(g) + 1e-12, a.hm(p, g));
    }
  }
}

TEST(Harness, FirstTouchToggleInvalidatesCache) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  const double with = h.run("LU", ProtocolKind::kHLRC, 1024).speedup;
  h.set_first_touch(false);
  const double without = h.run("LU", ProtocolKind::kHLRC, 1024).speedup;
  // LU's partitions are written repeatedly by their owners: migration must
  // help (this is the home-migration ablation in miniature).
  EXPECT_GT(with, without);
}

TEST(Stats, RemoteFaultsNeverExceedTotals) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  for (ProtocolKind p : kProtocols) {
    const auto& r = h.run("Water-Spatial", p, 1024);
    const auto t = r.stats.total();
    EXPECT_LE(t.remote_read_faults, t.read_faults);
    EXPECT_LE(t.remote_write_faults, t.write_faults);
  }
}

TEST(Stats, SingleWriterClassification) {
  Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  // LU: one writer per block by construction.
  EXPECT_GT(h.run("LU", ProtocolKind::kHLRC, 4096).stats.single_fine_frac,
            0.99);
  // Water-Nsquared: everyone updates everyone's force entries.
  EXPECT_LT(h.run("Water-Nsquared", ProtocolKind::kHLRC, 4096)
                .stats.single_fine_frac,
            0.9);
}

}  // namespace
}  // namespace dsm::harness
