// Tests for the discrete-event engine: fiber switching, virtual clocks,
// min-time scheduling order, blocking/wakeup, events, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace dsm::sim {
namespace {

Engine::Options opts(int nodes, SimTime quantum = ns(1000)) {
  Engine::Options o;
  o.nodes = nodes;
  o.quantum = quantum;
  o.stack_bytes = 128 * 1024;
  return o;
}

TEST(Fiber, RunsBodyToCompletion) {
  int x = 0;
  ucontext_t main_ctx{};
  Fiber f(64 * 1024, [&] { x = 42; });
  f.resume(main_ctx);
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, SuspendAndResume) {
  ucontext_t main_ctx{};
  std::vector<int> order;
  Fiber* self = nullptr;
  Fiber f(64 * 1024, [&] {
    order.push_back(1);
    self->suspend(main_ctx);
    order.push_back(3);
  });
  self = &f;
  f.resume(main_ctx);
  order.push_back(2);
  f.resume(main_ctx);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.done());
}

TEST(Engine, SingleNodeChargesClock) {
  Engine e(opts(1));
  e.spawn(0, [&] { e.charge(us(5)); });
  e.run();
  EXPECT_EQ(e.now(0), us(5));
}

TEST(Engine, MinTimeSchedulingInterleavesByClock) {
  // Node 1 charges small steps, node 0 big steps; execution order must
  // follow virtual time, not spawn order.
  Engine e(opts(2));
  std::vector<std::pair<NodeId, SimTime>> trace;
  auto body = [&](NodeId id, SimTime step) {
    for (int i = 0; i < 5; ++i) {
      // Record at resume: the scheduler always resumes the minimal clock.
      trace.emplace_back(id, e.now(id));
      e.charge(step);
      e.yield();
    }
  };
  e.spawn(0, [&] { body(0, us(10)); });
  e.spawn(1, [&] { body(1, us(3)); });
  e.run();
  // Resume times must be globally nondecreasing.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].second, trace[i].second);
  }
  // And the slow-step node must not hog: node 1 runs 3x per node-0 slice.
  int n1 = 0;
  for (auto& [id, t] : trace) n1 += id == 1;
  EXPECT_EQ(n1, 5);
}

TEST(Engine, EventsRunAsTargetNode) {
  Engine e(opts(2));
  NodeId seen = kNoNode;
  e.spawn(0, [&] {
    e.post(us(50), 1, [&] {
      seen = e.current();
      e.lift_clock(e.event_time());
    });
    e.charge(us(100));
  });
  e.spawn(1, [&] { e.charge(us(1)); });
  e.run();
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(e.now(1), us(50));
}

TEST(Engine, EventDoesNotLiftClockWithoutWork) {
  Engine e(opts(1));
  e.spawn(0, [&] {
    e.post(us(500), 0, [] { /* no-op: no lift, no charge */ });
    e.charge(us(1));
  });
  e.run();
  EXPECT_EQ(e.now(0), us(1));
}

TEST(Engine, BlockAndNotify) {
  Engine e(opts(2));
  bool flag = false;
  SimTime woke_at = 0;
  e.spawn(0, [&] {
    e.block([&] { return flag; }, "test wait");
    woke_at = e.now(0);
    e.charge(us(1));
  });
  e.spawn(1, [&] {
    e.charge(us(20));
    e.post(e.now(1), 0, [&] {
      e.lift_clock(e.event_time());
      flag = true;
      e.notify(0);
    });
  });
  e.run();
  EXPECT_TRUE(flag);
  EXPECT_EQ(woke_at, us(20));
}

TEST(Engine, BlockWithTruePredicateReturnsImmediately) {
  Engine e(opts(1));
  bool reached = false;
  e.spawn(0, [&] {
    e.block([] { return true; }, "no wait");
    reached = true;
  });
  e.run();
  EXPECT_TRUE(reached);
}

TEST(Engine, MaybeYieldHonorsQuantum) {
  Engine e(opts(2, ns(1000)));
  int switches = 0;
  NodeId last = kNoNode;
  auto body = [&] {
    for (int i = 0; i < 100; ++i) {
      e.charge(ns(500));
      e.maybe_yield();
      if (e.current() != last) {
        ++switches;
        last = e.current();
      }
    }
  };
  e.spawn(0, body);
  e.spawn(1, body);
  e.run();
  // Equal charge rates with a 1 us quantum must ping-pong heavily.
  EXPECT_GT(switches, 50);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e(opts(4));
    std::vector<NodeId> order;
    for (NodeId n = 0; n < 4; ++n) {
      e.spawn(n, [&e, &order, n] {
        for (int i = 0; i < 10; ++i) {
          e.charge(ns(100) * (n + 1));
          order.push_back(n);
          e.yield();
        }
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, EventFifoAtSameTimestamp) {
  Engine e(opts(1));
  std::vector<int> order;
  e.spawn(0, [&] {
    e.post(us(10), 0, [&] { order.push_back(1); });
    e.post(us(10), 0, [&] { order.push_back(2); });
    e.post(us(10), 0, [&] { order.push_back(3); });
    e.charge(us(20));
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ResumeHookRunsBeforeFiberContinues) {
  Engine e(opts(1));
  std::vector<int> order;
  e.set_resume_hook([&](NodeId) { order.push_back(0); });
  e.spawn(0, [&] {
    order.push_back(1);
    e.yield();
    order.push_back(2);
  });
  e.run();
  // hook, body, (yield) hook, body
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 2}));
}

TEST(Engine, ManyNodesAllFinish) {
  Engine e(opts(32));
  int finished = 0;
  for (NodeId n = 0; n < 32; ++n) {
    e.spawn(n, [&e, &finished, n] {
      e.charge(ns(10) * (n + 1));
      ++finished;
    });
  }
  e.run();
  EXPECT_EQ(finished, 32);
}

TEST(EngineDeath, DeadlockAborts) {
  EXPECT_DEATH(
      {
        Engine e(opts(1));
        e.spawn(0, [&] { e.block([] { return false; }, "never"); });
        e.run();
      },
      "deadlock");
}

}  // namespace
}  // namespace dsm::sim
