// Runtime/Context API semantics: access rules, timing model, determinism,
// configuration knobs.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

TEST(ContextApi, SingleNodeRunIsMessageFree) {
  // Everything first-touches locally: no network traffic at all.
  GAddr a = 0;
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 4096, 1),
      [&](SetupCtx& s) { a = s.alloc(64 * 1024, 4096); },
      [&](Context& ctx) {
        for (GAddr o = 0; o < 64 * 1024; o += 8) {
          ctx.store<std::int64_t>(a + o, 1);
        }
        std::int64_t sum = 0;
        for (GAddr o = 0; o < 64 * 1024; o += 8) {
          sum += ctx.load<std::int64_t>(a + o);
        }
        EXPECT_EQ(sum, 8192);
      });
  EXPECT_EQ(r.stats.messages, 0u);
  EXPECT_EQ(r.stats.total().remote_read_faults, 0u);
}

TEST(ContextApiDeath, StraddlingAccessAborts) {
  EXPECT_DEATH(
      run(
          cfg(ProtocolKind::kSC, 64, 1), nullptr,
          [&](Context& ctx) {
            // 8-byte store at offset 60 straddles two 64-byte blocks.
            ctx.store<std::int64_t>(60, 1);
          }),
      "straddles");
}

TEST(ContextApi, ReadBytesGathersAcrossBlocks) {
  GAddr a = 0;
  run(
      cfg(ProtocolKind::kSC, 64, 2),
      [&](SetupCtx& s) {
        a = s.alloc(256, 64);
        for (int i = 0; i < 256; ++i) {
          s.write<std::uint8_t>(a + static_cast<GAddr>(i),
                                static_cast<std::uint8_t>(i));
        }
      },
      [&](Context& ctx) {
        if (ctx.id() == 1) {
          std::vector<std::byte> buf(256);
          ctx.read_bytes(a, buf);
          for (int i = 0; i < 256; ++i) {
            ASSERT_EQ(std::to_integer<int>(buf[static_cast<std::size_t>(i)]), i);
          }
        }
      });
}

TEST(Timing, ComputeChargesVirtualTime) {
  const auto r = run(cfg(ProtocolKind::kSC, 64, 1), nullptr,
                     [&](Context& ctx) { ctx.compute(ms(3)); });
  EXPECT_GE(r.total_time, ms(3));
  EXPECT_LT(r.total_time, ms(4));
}

TEST(Timing, PollDilationTaxesComputeOnlyUnderPolling) {
  auto time_with = [&](net::NotifyMode m) {
    DsmConfig c = cfg(ProtocolKind::kSC, 64, 1, m);
    c.poll_dilation = 1.5;
    testing::LambdaApp app(nullptr, [&](Context& ctx) { ctx.compute(ms(2)); });
    Runtime rt(c);
    return rt.run(app).total_time;
  };
  const SimTime poll = time_with(net::NotifyMode::kPolling);
  const SimTime intr = time_with(net::NotifyMode::kInterrupt);
  EXPECT_NEAR(static_cast<double>(poll) / static_cast<double>(intr), 1.5,
              0.05);
}

TEST(Timing, FlopsMatchHyperSparcModel) {
  const auto r = run(cfg(ProtocolKind::kSC, 64, 1), nullptr,
                     [&](Context& ctx) { ctx.flops(1000000); });
  // 30 ns per flop.
  EXPECT_GE(r.total_time, ms(30));
  EXPECT_LT(r.total_time, ms(31));
}

TEST(Determinism, IdenticalConfigsIdenticalVirtualTimes) {
  auto once = [] {
    GAddr a = 0;
    return run(
               cfg(ProtocolKind::kHLRC, 256, 8),
               [&](SetupCtx& s) { a = s.alloc(8192, 64); },
               [&](Context& ctx) {
                 for (int it = 0; it < 3; ++it) {
                   for (int i = ctx.id(); i < 1024; i += 8) {
                     const GAddr addr = a + 8 * static_cast<GAddr>(i);
                     ctx.store<std::int64_t>(
                         addr, ctx.load<std::int64_t>(addr) + 1);
                   }
                   ctx.barrier();
                 }
               })
        .total_time;
  };
  EXPECT_EQ(once(), once());
}

TEST(Determinism, SeedChangesScheduleNotCorrectness) {
  auto with_seed = [](std::uint64_t seed) {
    DsmConfig c = cfg(ProtocolKind::kSWLRC, 1024, 4);
    c.seed = seed;
    GAddr a = 0;
    std::int64_t result = 0;
    testing::LambdaApp app(
        [&](SetupCtx& s) { a = s.alloc(8, 8); },
        [&](Context& ctx) {
          // Deterministic work + per-node rng-driven compute jitter.
          ctx.compute(static_cast<SimTime>(ctx.rng().next_below(5000)));
          ctx.lock(0);
          ctx.store<std::int64_t>(a, ctx.load<std::int64_t>(a) + 1);
          ctx.unlock(0);
          ctx.barrier();
          result = ctx.load<std::int64_t>(a);
        });
    Runtime rt(c);
    rt.run(app);
    return result;
  };
  EXPECT_EQ(with_seed(1), 4);
  EXPECT_EQ(with_seed(2), 4);
}

TEST(Config, LazyFlagMatchesProtocol) {
  for (auto [p, lazy] : {std::pair{ProtocolKind::kSC, false},
                         std::pair{ProtocolKind::kSWLRC, true},
                         std::pair{ProtocolKind::kHLRC, true}}) {
    bool seen = !lazy;
    run(cfg(p, 64, 1), nullptr,
        [&](Context& ctx) { seen = ctx.lazy_protocol(); });
    EXPECT_EQ(seen, lazy) << to_string(p);
  }
}

TEST(Config, MaxNodesBoundary) {
  // 64 nodes: the sharer set's inline word is exactly full (node 63 is its
  // last bit); the spill boundary itself is covered by SharerSpillBoundary.
  GAddr a = 0;
  DsmConfig c = cfg(ProtocolKind::kSC, 64, 64);
  testing::LambdaApp app(
      [&](SetupCtx& s) { a = s.alloc(8, 8); },
      [&](Context& ctx) {
        (void)ctx.load<std::int64_t>(a);  // 64 sharers of one block
        ctx.barrier();
        if (ctx.id() == 63) ctx.store<std::int64_t>(a, 1);  // invalidate all
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(a), 1);
      });
  Runtime rt(c);
  const auto r = rt.run(app);
  EXPECT_GE(r.stats.total().invalidations, 60u);
}

TEST(Config, SharerSpillBoundary) {
  // 72 nodes: sharers past node 63 spill beyond the set's inline word, and
  // a write by a spilled node must still invalidate every copy.
  GAddr a = 0;
  DsmConfig c = cfg(ProtocolKind::kSC, 64, 72);
  testing::LambdaApp app(
      [&](SetupCtx& s) { a = s.alloc(8, 8); },
      [&](Context& ctx) {
        (void)ctx.load<std::int64_t>(a);  // 72 sharers of one block
        ctx.barrier();
        if (ctx.id() == 71) ctx.store<std::int64_t>(a, 1);  // invalidate all
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(a), 1);
      });
  Runtime rt(c);
  const auto r = rt.run(app);
  EXPECT_GE(r.stats.total().invalidations, 68u);
}

TEST(Config, TinyGranularityWorks) {
  // Smallest supported coherence unit (8 bytes).
  GAddr a = 0;
  run(
      cfg(ProtocolKind::kSC, 8, 2),
      [&](SetupCtx& s) { a = s.alloc(64, 8); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (int i = 0; i < 8; ++i) ctx.store<std::int64_t>(a + 8 * i, i);
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          for (int i = 0; i < 8; ++i) {
            ASSERT_EQ(ctx.load<std::int64_t>(a + 8 * i), i);
          }
        }
      });
}

TEST(Gathering, StopTimerFreezesStats) {
  GAddr a = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 2),
      [&](SetupCtx& s) { a = s.alloc(4096, 64); },
      [&](Context& ctx) {
        if (ctx.id() == 0) ctx.store<std::int64_t>(a, 1);
        ctx.stop_timer();
        // Post-measurement faults must not appear in the snapshot.
        if (ctx.id() == 1) {
          for (GAddr o = 0; o < 4096; o += 8) {
            (void)ctx.load<std::int64_t>(a + o);
          }
        }
      });
  EXPECT_LE(r.stats.node[1].read_faults, 1u);
  EXPECT_GT(r.total_time, r.parallel_time);
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

TEST(Fragmentation, SparseReadsWasteFetchedPages) {
  // Read 8 bytes out of every fetched 4096-byte page: ~99.8% waste —
  // the paper's Ocean-Original §5.2.2 effect in isolation.
  GAddr a = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 4096, 2),
      [&](SetupCtx& s) { a = s.alloc(64 * 4096, 4096); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (int p = 0; p < 64; ++p) {
            ctx.store<std::int64_t>(a + 4096 * static_cast<GAddr>(p), 1);
          }
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          for (int p = 0; p < 64; ++p) {
            (void)ctx.load<std::int64_t>(a + 4096 * static_cast<GAddr>(p));
          }
        }
      });
  EXPECT_GT(r.stats.fragmentation(), 0.90);
}

TEST(Fragmentation, DenseReadsUseWholeBlocks) {
  GAddr a = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 4096, 2),
      [&](SetupCtx& s) { a = s.alloc(16 * 4096, 4096); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (GAddr o = 0; o < 16 * 4096; o += 8) {
            ctx.store<std::int64_t>(a + o, 1);
          }
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          std::int64_t sum = 0;
          for (GAddr o = 0; o < 16 * 4096; o += 8) {
            sum += ctx.load<std::int64_t>(a + o);
          }
          EXPECT_EQ(sum, 16 * 512);
        }
      });
  EXPECT_LT(r.stats.fragmentation(), 0.20);
}

}  // namespace
}  // namespace dsm
