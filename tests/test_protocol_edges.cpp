// Edge-case protocol behaviors that the randomized stress cannot target
// precisely: deferred HLRC fetches, one-hop SW-LRC reads, transitive
// notice propagation, and the paper's §5.4 interrupt/ping-pong effect.
#include <gtest/gtest.h>

#include "apps/app_base.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

TEST(HlrcEdge, FetchDefersUntilRequiredDiffArrives) {
  // Node 0 writes under a lock; node 1 acquires the lock (gets the notice)
  // and immediately reads.  Its fetch carries the required version; the
  // home must not reply with pre-diff data even under heavy skew.
  GAddr x = 0;
  DsmConfig c = cfg(ProtocolKind::kHLRC, 4096, 3);
  // Slow the network down so the diff is likely still in flight when the
  // fetch arrives.
  c.net.oneway_per_byte_ns = 400.0;
  testing::LambdaApp app(
      [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        if (ctx.id() == 2) {
          // Node 2 becomes the home by writing first.
          ctx.store<std::int64_t>(x + 2048, 1);
          ctx.barrier();
          ctx.barrier();
          return;
        }
        ctx.barrier();
        if (ctx.id() == 0) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 42);
          ctx.unlock(0);
        } else {
          ctx.compute(us(300));
          ctx.lock(0);
          const auto v = ctx.load<std::int64_t>(x);
          EXPECT_TRUE(v == 0 || v == 42);
          ctx.unlock(0);
          // After the second acquire-release round everything is ordered.
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 42);
      });
  Runtime rt(c);
  rt.run(app);
}

TEST(HlrcEdge, LockChainOrdersReadAfterWrite) {
  // Strict release->acquire chain: the acquirer MUST see 42 (this is the
  // deferred-fetch guarantee, deterministic version).
  GAddr x = 0;
  DsmConfig c = cfg(ProtocolKind::kHLRC, 4096, 2);
  c.net.oneway_per_byte_ns = 400.0;  // diffs crawl
  testing::LambdaApp app(
      [&](SetupCtx& s) {
        x = s.alloc(8, 8);
        s.write<std::int64_t>(x, 0);
      },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 42);
          ctx.unlock(0);
          ctx.barrier();
        } else {
          // Spin on the lock until we observe the write.
          for (;;) {
            ctx.lock(0);
            const auto v = ctx.load<std::int64_t>(x);
            ctx.unlock(0);
            if (v == 42) break;
            ctx.compute(us(100));
          }
          ctx.barrier();
        }
      });
  Runtime rt(c);
  rt.run(app);
}

TEST(SwLrcEdge, NoticeOwnerHintEnablesOneHopRead) {
  // After an acquire delivers a write notice, the reader should fetch
  // from the noticed owner directly (one hop), not via the home.
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kSWLRC, 64, 4),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        if (ctx.id() == 3) ctx.store<std::int64_t>(x, 7);  // owner = 3
        ctx.barrier();  // notices with owner hints reach everyone
        if (ctx.id() != 3) {
          EXPECT_EQ(ctx.load<std::int64_t>(x), 7);
        }
      });
  // Each reader: one remote read fault, one reply — plus the initial
  // ownership claim.  No forwarding storm.
  EXPECT_LE(r.stats.total().remote_read_faults, 4u);
}

TEST(LrcEdge, NoticesPropagateTransitively) {
  // A writes x under L1; B acquires L1 (sees A's interval), then writes y
  // under L2; C acquires L2 and must ALSO see A's write to x — notices
  // travel transitively with vector clocks.
  GAddr x = 0, y = 0;
  for (ProtocolKind p : {ProtocolKind::kSWLRC, ProtocolKind::kHLRC}) {
    run(
        cfg(p, 1024, 3),
        [&](SetupCtx& s) {
          x = s.alloc(8, 8);
          y = s.alloc(8, 1024);  // different block
        },
        [&](Context& ctx) {
          if (ctx.id() == 2) {
            // Warm a stale copy of x before anyone writes it.
            EXPECT_EQ(ctx.load<std::int64_t>(x), 0);
          }
          ctx.barrier();
          if (ctx.id() == 0) {
            ctx.lock(1);
            ctx.store<std::int64_t>(x, 5);
            ctx.unlock(1);
          }
          ctx.barrier();  // order: A done before B starts (simplifies)
          if (ctx.id() == 1) {
            ctx.lock(1);
            ctx.unlock(1);  // acquire A's knowledge
            ctx.lock(2);
            ctx.store<std::int64_t>(y, 6);
            ctx.unlock(2);
          }
          ctx.barrier();
          if (ctx.id() == 2) {
            ctx.lock(2);
            // Through L2 only, but A's interval must have traveled along.
            EXPECT_EQ(ctx.load<std::int64_t>(y), 6) << to_string(p);
            EXPECT_EQ(ctx.load<std::int64_t>(x), 5) << to_string(p);
            ctx.unlock(2);
          }
        });
  }
}

TEST(ScEdge, WritebackPreservesDirtyData) {
  // Owner writes, a reader's fetch recalls the block: the write-back data
  // must be what the owner wrote (content integrity through recall).
  GAddr x = 0;
  run(
      cfg(ProtocolKind::kSC, 256, 2),
      [&](SetupCtx& s) { x = s.alloc(256, 256); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (int i = 0; i < 32; ++i) {
            ctx.store<std::int64_t>(x + 8 * i, 1000 + i);
          }
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          for (int i = 0; i < 32; ++i) {
            ASSERT_EQ(ctx.load<std::int64_t>(x + 8 * i), 1000 + i);
          }
        }
      });
}

TEST(NotifyEdge, InterruptDelayReducesScPingPong) {
  // Paper §5.4: with interrupts, invalidations are delayed ~70 us, letting
  // the holder make several accesses before the block is stolen — total
  // misses drop versus polling under false sharing.
  auto misses = [&](net::NotifyMode m) {
    GAddr x = 0;
    const auto r = run(
        cfg(ProtocolKind::kSC, 4096, 2, m),
        [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
        [&](Context& ctx) {
          const GAddr mine = x + 2048 * static_cast<GAddr>(ctx.id());
          for (int i = 0; i < 200; ++i) {
            ctx.store<std::int64_t>(mine + 8 * (i % 16), i);
            ctx.compute(us(3));
          }
        });
    return r.stats.total().remote_write_faults;
  };
  const auto poll = misses(net::NotifyMode::kPolling);
  const auto intr = misses(net::NotifyMode::kInterrupt);
  EXPECT_LT(intr, poll);
}

TEST(LockEdge, GrantWithoutNoticesOnFirstEverAcquire) {
  // First acquire of a fresh lock needs no notice payload and must not
  // invalidate anything.
  const auto r = run(cfg(ProtocolKind::kHLRC, 4096, 2), nullptr,
                     [&](Context& ctx) {
                       if (ctx.id() == 1) {
                         ctx.lock(9);
                         ctx.unlock(9);
                       }
                     });
  EXPECT_EQ(r.stats.total().invalidations, 0u);
  EXPECT_EQ(r.stats.total().notices_processed, 0u);
}

TEST(BarrierEdge, TwoNodeBarrierNoticeExchange) {
  GAddr x = 0;
  run(
      cfg(ProtocolKind::kHLRC, 64, 2),
      [&](SetupCtx& s) { x = s.alloc(16, 8); },
      [&](Context& ctx) {
        for (int round = 0; round < 20; ++round) {
          const GAddr mine = x + 8 * static_cast<GAddr>(ctx.id());
          const GAddr theirs = x + 8 * static_cast<GAddr>(1 - ctx.id());
          ctx.store<std::int64_t>(mine, round + 1);
          ctx.barrier();
          EXPECT_EQ(ctx.load<std::int64_t>(theirs), round + 1);
          ctx.barrier();
        }
      });
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

using testing::cfg;

TEST(DelayedSc, DelayedInvalidationsReduceFalseSharingMisses) {
  // The Dubois-style delayed-consistency extension (paper §7 future work):
  // holding invalidations for a window lets the holder make several local
  // accesses per ownership tenure.
  auto misses = [&](SimTime delay) {
    DsmConfig c = cfg(ProtocolKind::kSC, 4096, 2);
    c.sc_invalidate_delay = delay;
    GAddr x = 0;
    testing::LambdaApp app(
        [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
        [&](Context& ctx) {
          const GAddr mine = x + 2048 * static_cast<GAddr>(ctx.id());
          for (int i = 0; i < 150; ++i) {
            ctx.store<std::int64_t>(mine + 8 * (i % 16), i);
            ctx.compute(us(4));
          }
        });
    Runtime rt(c);
    return rt.run(app).stats.total().remote_write_faults;
  };
  const auto plain = misses(0);
  const auto delayed = misses(us(200));
  EXPECT_LT(delayed, plain / 2);
}

TEST(DelayedSc, StillCoherentAcrossBarriers) {
  DsmConfig c = cfg(ProtocolKind::kSC, 256, 4);
  c.sc_invalidate_delay = us(150);
  GAddr x = 0;
  testing::LambdaApp app(
      [&](SetupCtx& s) { x = s.alloc(8 * 4, 8); },
      [&](Context& ctx) {
        for (int round = 0; round < 6; ++round) {
          const GAddr mine = x + 8 * static_cast<GAddr>(ctx.id());
          ctx.store<std::int64_t>(mine, ctx.load<std::int64_t>(mine) + 1);
          ctx.barrier();
          std::int64_t sum = 0;
          for (int n = 0; n < 4; ++n) {
            sum += ctx.load<std::int64_t>(x + 8 * n);
          }
          EXPECT_EQ(sum, 4 * (round + 1));
          ctx.barrier();
        }
      });
  Runtime rt(c);
  rt.run(app);
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

class ExtremeNetwork : public ::testing::TestWithParam<int> {};

TEST_P(ExtremeNetwork, LockedCountersStayExactUnderAnyLatency) {
  // Failure-injection flavored sweep: near-zero latency (races compressed)
  // through 100x-slow links (every window stretched).
  DsmConfig c = cfg(ProtocolKind::kHLRC, 1024, 6);
  switch (GetParam()) {
    case 0:
      c.net.oneway_fixed = ns(100);
      c.net.oneway_per_byte_ns = 0.1;
      break;
    case 1:  // defaults
      break;
    case 2:
      c.net.oneway_fixed = us(2000);
      c.net.oneway_per_byte_ns = 1000.0;
      break;
  }
  GAddr x = 0;
  testing::LambdaApp app(
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        for (int i = 0; i < 15; ++i) {
          ctx.lock(3);
          ctx.store<std::int64_t>(x, ctx.load<std::int64_t>(x) + 1);
          ctx.unlock(3);
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 6 * 15);
      });
  Runtime rt(c);
  rt.run(app);
}

INSTANTIATE_TEST_SUITE_P(LatencySweep, ExtremeNetwork, ::testing::Range(0, 3));

TEST(MemoryStats, ReplicationGrowsWithReaders) {
  // One page read by all nodes: replicated bytes ~ nodes * page.
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 4096, 8),
      [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        (void)ctx.load<std::int64_t>(x);
        ctx.barrier();
      });
  EXPECT_GE(r.stats.replicated_bytes, 8u * 4096u);
}

TEST(MemoryStats, HlrcTwinPeakTracksConcurrentWriters) {
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 4096, 4),
      [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        // All four nodes dirty the page concurrently; three are non-home.
        ctx.store<std::int64_t>(x + 1024 * static_cast<GAddr>(ctx.id()), 1);
        ctx.compute(ms(1));
        ctx.barrier();
      });
  EXPECT_GE(r.stats.peak_twin_bytes, 3u * 4096u);
  EXPECT_GT(r.stats.protocol_meta_bytes, 0u);
}

TEST(MemoryStats, ScHasNoTwins) {
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 4096, 4),
      [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        ctx.store<std::int64_t>(x + 1024 * static_cast<GAddr>(ctx.id()), 1);
        ctx.barrier();
      });
  EXPECT_EQ(r.stats.peak_twin_bytes, 0u);
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

TEST(MwLrc, ReleasesAreLocalAndMissesFanOut) {
  // Contrast with HLRC: a MW-LRC release sends nothing; the cost moves to
  // the reader, which requests diffs from every writer.
  GAddr x = 0;
  auto runp = [&](ProtocolKind p) {
    return run(
        cfg(p, 4096, 4),
        [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
        [&](Context& ctx) {
          // Three concurrent writers on one page, then a reader.
          if (ctx.id() < 3) {
            ctx.store<std::int64_t>(x + 1024 * static_cast<GAddr>(ctx.id()),
                                    ctx.id() + 1);
          }
          ctx.barrier();
          if (ctx.id() == 3) {
            EXPECT_EQ(ctx.load<std::int64_t>(x), 1);
            EXPECT_EQ(ctx.load<std::int64_t>(x + 1024), 2);
            EXPECT_EQ(ctx.load<std::int64_t>(x + 2048), 3);
          }
        });
  };
  const auto mw = runp(ProtocolKind::kMWLRC);
  const auto hl = runp(ProtocolKind::kHLRC);
  // HLRC shipped diffs at release; MW-LRC archived them locally.
  EXPECT_GE(hl.stats.total().diffs, 2u);
  EXPECT_GE(mw.stats.total().diffs, 2u);
}

TEST(MwLrc, CausalDiffOrderThroughLockChain) {
  // A writes v1 to a word under L; B (after acquiring L) overwrites the
  // SAME word with v2; C must apply A's diff before B's.
  GAddr x = 0;
  run(
      cfg(ProtocolKind::kMWLRC, 1024, 3),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 111);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 222);
          ctx.unlock(0);
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 222);
      });
}

TEST(MwLrc, DirtyCopySurvivesInvalidationAndMerges) {
  // Node 1 is mid-interval dirty on a page when a notice invalidates it;
  // its writes must survive the revalidation merge.
  GAddr x = 0;
  run(
      cfg(ProtocolKind::kMWLRC, 4096, 2),
      [&](SetupCtx& s) { x = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 10);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          ctx.store<std::int64_t>(x + 2048, 20);  // dirty, same page
          ctx.lock(0);  // acquire invalidates the dirty page
          ctx.store<std::int64_t>(x + 8, 30);
          ctx.unlock(0);
          EXPECT_EQ(ctx.load<std::int64_t>(x), 10);
          EXPECT_EQ(ctx.load<std::int64_t>(x + 2048), 20);
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x + 2048), 20);
        EXPECT_EQ(ctx.load<std::int64_t>(x + 8), 30);
      });
}

TEST(MwLrc, AppsVerifyUnderDistributedDiffs) {
  for (const char* name : {"LU", "Water-Spatial", "Barnes-Partree"}) {
    auto app = apps::find_app(name)->make(apps::Scale::kTiny);
    DsmConfig c = cfg(ProtocolKind::kMWLRC, 1024, 4);
    c.shared_bytes = 8u << 20;
    Runtime rt(c);
    rt.run(*app);
    EXPECT_EQ(app->verify(), "") << name;
  }
}

}  // namespace
}  // namespace dsm
