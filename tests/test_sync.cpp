// Tests for the lock and barrier managers: mutual exclusion, lock caching,
// queue handoff, barrier rendezvous semantics and timing.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

TEST(Locks, MutualExclusionUnderContention) {
  // Classic non-atomic increment: correct only if the lock works.
  GAddr x = 0;
  const int kIters = 50;
  run(
      cfg(ProtocolKind::kSC, 64, 8),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        for (int i = 0; i < kIters; ++i) {
          ctx.lock(3);
          const auto v = ctx.load<std::int64_t>(x);
          ctx.compute(us(2));  // widen the race window
          ctx.store<std::int64_t>(x, v + 1);
          ctx.unlock(3);
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 8 * kIters);
      });
}

TEST(Locks, MutualExclusionUnderHlrc) {
  GAddr x = 0;
  const int kIters = 30;
  run(
      cfg(ProtocolKind::kHLRC, 4096, 8),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        for (int i = 0; i < kIters; ++i) {
          ctx.lock(5);
          const auto v = ctx.load<std::int64_t>(x);
          ctx.compute(us(2));
          ctx.store<std::int64_t>(x, v + 1);
          ctx.unlock(5);
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 8 * kIters);
      });
}

TEST(Locks, CachedReacquireIsFree) {
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 2), nullptr,
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (int i = 0; i < 100; ++i) {
            ctx.lock(7);
            ctx.unlock(7);
          }
        }
      });
  // First acquire may message the home; the other 99 are cached.
  EXPECT_EQ(r.stats.node[0].lock_acquires, 100u);
  EXPECT_LE(r.stats.node[0].remote_lock_ops, 1u);
}

TEST(Locks, ManyDistinctLocksRouteToDifferentHomes) {
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 4), nullptr,
      [&](Context& ctx) {
        for (LockId l = 0; l < 16; ++l) {
          ctx.lock(l);
          ctx.unlock(l);
        }
        ctx.barrier();
      });
  EXPECT_EQ(r.stats.total().lock_acquires, 4u * 16);
}

TEST(Locks, StallTimeAccountedUnderContention) {
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 4), nullptr,
      [&](Context& ctx) {
        for (int i = 0; i < 10; ++i) {
          ctx.lock(0);
          ctx.compute(us(100));  // hold it a while
          ctx.unlock(0);
        }
      });
  // Someone must have waited roughly (contenders-1) * hold time.
  SimTime total_stall = 0;
  for (const auto& n : r.stats.node) total_stall += n.lock_stall_ns;
  EXPECT_GT(total_stall, us(1000));
}

TEST(Barrier, AlignsNodeClocks) {
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 4), nullptr,
      [&](Context& ctx) {
        // Wildly imbalanced work before the barrier.
        ctx.compute(us(100) * (ctx.id() + 1));
        ctx.barrier();
        ctx.compute(us(10));
      });
  // Total time is dominated by the slowest node's pre-barrier work.
  EXPECT_GE(r.total_time, us(400));
  EXPECT_LT(r.total_time, us(1000));
  // Fast arrivals stalled at the barrier.
  EXPECT_GT(r.stats.node[0].barrier_stall_ns, us(200));
}

TEST(Barrier, CountsPerNode) {
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 4096, 4), nullptr,
      [&](Context& ctx) {
        for (int i = 0; i < 5; ++i) ctx.barrier();
      });
  for (const auto& n : r.stats.node) EXPECT_EQ(n.barriers, 5u);
}

TEST(Barrier, ManySequentialBarriersStayConsistent) {
  GAddr arr = 0;
  run(
      cfg(ProtocolKind::kHLRC, 1024, 4),
      [&](SetupCtx& s) { arr = s.alloc(8 * 4, 8); },
      [&](Context& ctx) {
        // Neighbor-passing: each phase, node i reads slot i-1 and writes
        // slot i = that value + 1.  After N phases slot values are exact.
        for (int ph = 0; ph < 16; ++ph) {
          if (ctx.id() == (ph % 4)) {
            const int prev = (ctx.id() + 3) % 4;
            const auto v = ctx.load<std::int64_t>(arr + 8 * prev);
            ctx.store<std::int64_t>(arr + 8 * ctx.id(), v + 1);
          }
          ctx.barrier();
        }
        // Phase p writes value p+1 into slot p%4; after 16 phases the last
        // writes are 13,14,15,16.
        if (ctx.id() == 0) {
          std::int64_t sum = 0;
          for (int i = 0; i < 4; ++i) sum += ctx.load<std::int64_t>(arr + 8 * i);
          EXPECT_EQ(sum, 13 + 14 + 15 + 16);
        }
      });
}

TEST(Timer, StopTimerExcludesGathering) {
  GAddr arr = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 2),
      [&](SetupCtx& s) { arr = s.alloc(4096, 64); },
      [&](Context& ctx) {
        ctx.compute(us(100));
        ctx.stop_timer();
        if (ctx.id() == 0) {
          // Heavy post-measurement gathering.
          for (GAddr a = 0; a < 4096; a += 8) {
            (void)ctx.load<std::int64_t>(arr + a);
          }
          ctx.compute(ms(50));
        }
      });
  EXPECT_LT(r.parallel_time, ms(2));
  EXPECT_GE(r.total_time, ms(50));
}

}  // namespace
}  // namespace dsm
