// Dirty-word bitmap write tracking: unit tests for mem::DirtyBitmap, the
// bitmap-guided diff builders, the MemBudget admission control, and
// end-to-end equivalence of the write-tracking modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "common/mem_budget.hpp"
#include "common/thread_pool.hpp"
#include "mem/diff.hpp"
#include "mem/dirty_bitmap.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

constexpr std::size_t kGrains[] = {64, 256, 1024, 4096};

TEST(DirtyBitmap, MarkQueryClearAcrossGranularities) {
  const std::size_t size = 1u << 20;
  for (const std::size_t gran : kGrains) {
    mem::DirtyBitmap bm(2, size, gran);
    EXPECT_EQ(bm.words_per_block(), gran / 4);
    // Footprint: one bit per 4-byte word per node, independent of gran.
    EXPECT_EQ(bm.bytes(), 2 * (size / 4 / 8));

    const BlockId b = 5;
    const GAddr base = static_cast<GAddr>(b) * gran;
    EXPECT_FALSE(bm.any_set(1, b));
    EXPECT_EQ(bm.count_set(1, b), 0u);

    // Mark the first and last word of the block on node 1 only.
    mem::DirtyBitmap::mark(bm.row(1), base);
    mem::DirtyBitmap::mark(bm.row(1), base + gran - 4);
    EXPECT_TRUE(bm.any_set(1, b));
    EXPECT_EQ(bm.count_set(1, b), 2u);
    // Neighbor blocks and the other node stay clean.
    EXPECT_FALSE(bm.any_set(1, b - 1));
    EXPECT_FALSE(bm.any_set(1, b + 1));
    EXPECT_FALSE(bm.any_set(0, b));

    bm.clear_block(1, b);
    EXPECT_FALSE(bm.any_set(1, b));
    EXPECT_EQ(bm.count_set(1, b), 0u);
  }
}

TEST(DirtyBitmap, ClearBlockDoesNotTouchNeighbors) {
  // At gran 64 a block is 16 bits — four blocks share one u64 chunk, so
  // clear_block must mask, not zero the chunk.
  mem::DirtyBitmap bm(1, 1u << 16, 64);
  for (BlockId b = 0; b < 4; ++b) {
    mem::DirtyBitmap::mark(bm.row(0), static_cast<GAddr>(b) * 64 + 8);
  }
  bm.clear_block(0, 1);
  EXPECT_TRUE(bm.any_set(0, 0));
  EXPECT_FALSE(bm.any_set(0, 1));
  EXPECT_TRUE(bm.any_set(0, 2));
  EXPECT_TRUE(bm.any_set(0, 3));
}

TEST(DirtyBitmap, BlockBitsLocateEveryWord) {
  for (const std::size_t gran : kGrains) {
    mem::DirtyBitmap bm(1, 1u << 18, gran);
    const BlockId b = 3;  // odd placement: bit0 != 0 for gran 64
    const GAddr base = static_cast<GAddr>(b) * gran;
    const std::size_t words = gran / 4;
    for (std::size_t w = 0; w < words; ++w) {
      mem::DirtyBitmap::mark(bm.row(0), base + w * 4);
      EXPECT_EQ(bm.count_set(0, b), w + 1);
      const auto bits = bm.block_bits(0, b);
      ASSERT_EQ(bits.words, words);
      const std::size_t i = bits.bit0 + w;
      EXPECT_NE(bits.chunks[i >> 6] & (1ull << (i & 63)), 0u)
          << "gran " << gran << " word " << w;
    }
    EXPECT_EQ(bm.count_set(0, b), words);
  }
}

// ---------------------------------------------------------------------
// Bitmap-guided diff builders vs the reference full scan.

TEST(BitmapDiff, MatchesFullScanRandomized) {
  std::mt19937 rng(0x1997);
  for (const std::size_t gran : kGrains) {
    const std::size_t words = gran / 4;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::byte> twin(gran);
      for (auto& x : twin) x = std::byte(rng() & 0xff);
      std::vector<std::byte> dirty = twin;

      // Flag a random word set; CHANGE a random subset of it.  The rest
      // of the flagged words are silent stores (flagged but equal) — the
      // exact mode must still produce the reference encoding.
      mem::DirtyBitmap bm(1, 1u << 18, gran);
      const BlockId b = static_cast<BlockId>(rng() % 8);
      const GAddr base = static_cast<GAddr>(b) * gran;
      const unsigned flag_pct = rng() % 101;
      for (std::size_t w = 0; w < words; ++w) {
        if (rng() % 100 >= flag_pct) continue;
        mem::DirtyBitmap::mark(bm.row(0), base + w * 4);
        if (rng() % 3 != 0) {  // 2/3 of flagged words really change
          dirty[w * 4 + rng() % 4] ^= std::byte(1 + rng() % 255);
        }
      }

      const std::vector<std::byte> expected = mem::make_diff(dirty, twin);
      const auto bits = bm.block_bits(0, b);
      std::vector<std::byte> got;
      mem::BitmapScanStats st;
      const std::size_t n = mem::make_diff_from_bitmap(
          dirty, twin, bits.chunks, bits.bit0, got, &st);
      EXPECT_EQ(n, got.size());
      EXPECT_EQ(got, expected) << "gran " << gran << " trial " << trial;
      // Accounting: every flagged word compared, everything else skipped.
      EXPECT_EQ(st.words_compared, bm.count_set(0, b));
      EXPECT_EQ(st.scan_bytes_avoided, gran - st.words_compared * 4);
    }
  }
}

TEST(BitmapDiff, UnflaggedChangesAreInvisible) {
  // The bitmap is trusted: a changed-but-unflagged word must not appear.
  // (The runtime guarantees the superset invariant; this pins the contract.)
  const std::size_t gran = 256;
  std::vector<std::byte> twin(gran, std::byte{0});
  std::vector<std::byte> dirty = twin;
  dirty[0] = std::byte{1};    // word 0: changed and flagged
  dirty[128] = std::byte{1};  // word 32: changed but NOT flagged
  mem::DirtyBitmap bm(1, 1u << 12, gran);
  mem::DirtyBitmap::mark(bm.row(0), 0);
  const auto bits = bm.block_bits(0, 0);
  std::vector<std::byte> out;
  mem::make_diff_from_bitmap(dirty, twin, bits.chunks, bits.bit0, out);
  EXPECT_EQ(mem::diff_runs(out), 1u);
  EXPECT_EQ(mem::diff_changed_bytes(out), 4u);
}

TEST(BitmapDiff, BitmapOnlyEncodesSupersetThatApplies) {
  std::mt19937 rng(0x0616);
  for (const std::size_t gran : kGrains) {
    const std::size_t words = gran / 4;
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<std::byte> twin(gran);
      for (auto& x : twin) x = std::byte(rng() & 0xff);
      std::vector<std::byte> dirty = twin;

      mem::DirtyBitmap bm(1, 1u << 18, gran);
      std::size_t flagged = 0;
      for (std::size_t w = 0; w < words; ++w) {
        if (rng() % 4 != 0) continue;
        mem::DirtyBitmap::mark(bm.row(0), w * 4);
        ++flagged;
        if (rng() % 2 == 0) dirty[w * 4] ^= std::byte{0x5a};
      }

      const auto bits = bm.block_bits(0, 0);
      std::vector<std::byte> d;
      mem::BitmapScanStats st;
      mem::make_diff_bitmap_only(dirty, bits.chunks, bits.bit0, d, &st);
      // No comparison at all, whole reference scan avoided.
      EXPECT_EQ(st.words_compared, 0u);
      EXPECT_EQ(st.scan_bytes_avoided, gran);
      // Every flagged word is encoded (silent stores included)...
      EXPECT_EQ(mem::diff_changed_bytes(d), flagged * 4);
      // ...so applying onto the twin reproduces the dirty copy exactly
      // (changed words are a subset of flagged words).
      std::vector<std::byte> applied = twin;
      mem::apply_diff(applied, d);
      EXPECT_EQ(applied, dirty) << "gran " << gran << " trial " << trial;
      if (flagged == 0) EXPECT_TRUE(d.empty());
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end: the three write-tracking modes on a real multi-writer run.

RunResult run_mode(ProtocolKind proto, std::size_t gran, WriteTracking w) {
  DsmConfig c = testing::cfg(proto, gran);
  c.write_tracking = w;
  GAddr arr = 0;
  // Two 4 KB regions; every node writes a disjoint word stripe of both
  // (multiple concurrent writers per block), then reads the merged result.
  return testing::run(
      c, [&](SetupCtx& s) { arr = s.alloc(8192, 4096); },
      [&](Context& ctx) {
        const int me = ctx.id();
        const int n = ctx.nodes();
        for (int rep = 0; rep < 3; ++rep) {
          for (GAddr a = static_cast<GAddr>(me) * 8; a < 8192;
               a += static_cast<GAddr>(n) * 8) {
            ctx.store<std::int64_t>(
                arr + a, static_cast<std::int64_t>(a + rep));
          }
          ctx.barrier();
          // Read back every word: sees the merged writes of ALL nodes.
          std::int64_t sum = 0;
          std::int64_t want = 0;
          for (GAddr a = 0; a < 8192; a += 8) {
            sum += ctx.load<std::int64_t>(arr + a);
            want += static_cast<std::int64_t>(a + rep);
          }
          EXPECT_EQ(sum, want) << "rep " << rep;
          ctx.barrier();
        }
      });
}

TEST(WriteTracking, TwinScanAndTwinBitmapBitwiseIdentical) {
  for (ProtocolKind p : {ProtocolKind::kHLRC, ProtocolKind::kMWLRC}) {
    for (const std::size_t gran : {std::size_t{256}, std::size_t{4096}}) {
      const RunResult a = run_mode(p, gran, WriteTracking::kTwinScan);
      const RunResult b = run_mode(p, gran, WriteTracking::kTwinBitmap);
      // Every pre-bitmap observable must match exactly: same virtual
      // times, same traffic, same protocol activity, same diff bytes.
      EXPECT_EQ(a.parallel_time, b.parallel_time);
      EXPECT_EQ(a.total_time, b.total_time);
      EXPECT_EQ(a.stats.messages, b.stats.messages);
      EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
      EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
      const NodeStats ta = a.stats.total();
      const NodeStats tb = b.stats.total();
      EXPECT_EQ(ta.twins, tb.twins);
      EXPECT_EQ(ta.diffs, tb.diffs);
      EXPECT_EQ(ta.diff_bytes, tb.diff_bytes);
      // The scan-mode run reports no bitmap activity; the bitmap run does.
      EXPECT_EQ(ta.bitmap_words_compared, 0u);
      EXPECT_EQ(ta.bitmap_scan_bytes_avoided, 0u);
      if (ta.diffs > 0) {
        EXPECT_GT(tb.bitmap_scan_bytes_avoided, 0u)
            << to_string(p) << " " << gran;
      }
    }
  }
}

TEST(WriteTracking, BitmapOnlyRunsCorrectlyWithoutTwins) {
  for (ProtocolKind p : {ProtocolKind::kHLRC, ProtocolKind::kMWLRC}) {
    const RunResult exact = run_mode(p, 4096, WriteTracking::kTwinBitmap);
    const RunResult r = run_mode(p, 4096, WriteTracking::kBitmapOnly);
    const NodeStats t = r.stats.total();
    // Twin-free: no twin copies were ever made or charged.
    EXPECT_EQ(t.twins, 0u);
    EXPECT_EQ(r.stats.peak_twin_bytes, 0u);
    // Diffs are a superset of the exact ones (silent stores inflate them).
    EXPECT_GE(t.diff_bytes, exact.stats.total().diff_bytes);
    EXPECT_GT(t.diffs, 0u);
  }
}

TEST(WriteTracking, MostlyCleanPagesSkipOver90PercentOfScan) {
  // The acceptance workload: 4 KB HLRC blocks where each interval dirties
  // only a few words per page — the bitmap must avoid >90% of the
  // reference release-path scan bytes.
  DsmConfig c = testing::cfg(ProtocolKind::kHLRC, 4096);
  GAddr arr = 0;
  const GAddr kPages = 8;
  const RunResult r = testing::run(
      c, [&](SetupCtx& s) { arr = s.alloc(kPages * 4096, 4096); },
      [&](Context& ctx) {
        const GAddr me = static_cast<GAddr>(ctx.id());
        for (int rep = 0; rep < 4; ++rep) {
          // Two words per page per node per interval: pages stay >99% clean.
          for (GAddr pg = 0; pg < kPages; ++pg) {
            ctx.store<std::int64_t>(arr + pg * 4096 + me * 8, rep);
          }
          ctx.barrier();
        }
      });
  const NodeStats t = r.stats.total();
  ASSERT_GT(t.diffs, 0u);
  const double reference_scan_bytes =
      static_cast<double>(t.bitmap_scan_bytes_avoided) +
      static_cast<double>(t.bitmap_words_compared) * 4;
  EXPECT_GT(static_cast<double>(t.bitmap_scan_bytes_avoided),
            0.9 * reference_scan_bytes);
}

// ---------------------------------------------------------------------
// MemBudget admission control.

TEST(MemBudget, ZeroBudgetIsUnlimited) {
  MemBudget b(0);
  b.acquire(1ull << 40);
  EXPECT_EQ(b.in_use(), 0u);  // unlimited: nothing is tracked
  b.release(1ull << 40);
}

TEST(MemBudget, OversizedJobAdmittedAlone) {
  MemBudget b(100);
  b.acquire(1000);  // must not deadlock: admitted because nothing is in flight
  EXPECT_EQ(b.in_use(), 1000u);
  b.release(1000);
  EXPECT_EQ(b.in_use(), 0u);
}

TEST(MemBudget, CapsConcurrentReservations) {
  // Budget of 2 units; 16 jobs of 1 unit each on 8 threads: at no point
  // may more than 2 reservations be held at once.
  MemBudget budget(2);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  ThreadPool pool(8);
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      MemReservation r(&budget, 1);
      const int now = active.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      active.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(budget.in_use(), 0u);
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(MemBudget, NullReservationIsNoop) {
  MemReservation r(nullptr, 12345);  // must not crash or block
  SUCCEED();
}

}  // namespace
}  // namespace dsm
