// Randomized data-race-free coherence stress test.
//
// A seeded generator builds a program of phases.  In each phase every slot
// of a shared array is assigned to exactly one writer node (so concurrent
// writers to the same BLOCK are common at coarse granularity, but never to
// the same word — data-race-free by construction).  Writers increment
// their slots a deterministic number of times; lock-protected shared
// counters add acquire/release chains; barriers separate phases.  The
// final memory image must exactly equal a sequential replay, under every
// protocol, granularity, and notification mode.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

struct StressParam {
  ProtocolKind p;
  std::size_t gran;
  net::NotifyMode notify;
  std::uint64_t seed;
};

std::string stress_name(const ::testing::TestParamInfo<StressParam>& info) {
  std::string s = to_string(info.param.p);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s + "_" + std::to_string(info.param.gran) + "_" +
         (info.param.notify == net::NotifyMode::kPolling ? "poll" : "intr") +
         "_s" + std::to_string(info.param.seed);
}

class CoherenceStress : public ::testing::TestWithParam<StressParam> {};

constexpr int kNodes = 8;
constexpr int kSlots = 192;   // spans several 4096-byte pages (8B slots)
constexpr int kPhases = 6;
constexpr int kLocks = 5;

struct Plan {
  // [phase][slot] -> writer node
  std::vector<std::vector<int>> writer;
  // [phase][slot] -> increments
  std::vector<std::vector<int>> incs;
  // [phase][node] -> lock-protected adds (lock id, amount) list
  std::vector<std::vector<std::vector<std::pair<int, int>>>> lock_adds;
};

Plan make_plan(std::uint64_t seed) {
  Rng rng(seed);
  Plan pl;
  pl.writer.assign(kPhases, std::vector<int>(kSlots));
  pl.incs.assign(kPhases, std::vector<int>(kSlots));
  pl.lock_adds.assign(kPhases, {});
  for (int ph = 0; ph < kPhases; ++ph) {
    for (int s = 0; s < kSlots; ++s) {
      pl.writer[ph][s] = static_cast<int>(rng.next_below(kNodes));
      pl.incs[ph][s] = static_cast<int>(rng.next_below(4));
    }
    pl.lock_adds[ph].assign(kNodes, {});
    for (int n = 0; n < kNodes; ++n) {
      const int ops = static_cast<int>(rng.next_below(3));
      for (int o = 0; o < ops; ++o) {
        pl.lock_adds[ph][static_cast<std::size_t>(n)].emplace_back(
            static_cast<int>(rng.next_below(kLocks)),
            static_cast<int>(rng.next_below(10)) + 1);
      }
    }
  }
  return pl;
}

// Sequential replay: what the shared memory must contain at the end.
void expected_final(const Plan& pl, std::vector<std::int64_t>& slots,
                    std::vector<std::int64_t>& counters) {
  slots.assign(kSlots, 0);
  counters.assign(kLocks, 0);
  for (int ph = 0; ph < kPhases; ++ph) {
    for (int s = 0; s < kSlots; ++s) slots[static_cast<std::size_t>(s)] += pl.incs[ph][s];
    for (int n = 0; n < kNodes; ++n) {
      for (const auto& [l, v] : pl.lock_adds[ph][static_cast<std::size_t>(n)]) {
        counters[static_cast<std::size_t>(l)] += v;
      }
    }
  }
}

TEST_P(CoherenceStress, MatchesSequentialReplay) {
  const StressParam prm = GetParam();
  const Plan pl = make_plan(prm.seed);

  DsmConfig c = testing::cfg(prm.p, prm.gran, kNodes, prm.notify);
  GAddr slots = 0, counters = 0;
  std::vector<std::int64_t> got_slots(kSlots), got_counters(kLocks);

  testing::LambdaApp app(
      [&](SetupCtx& s) {
        slots = s.alloc(8 * kSlots, 8);
        counters = s.alloc(8 * kLocks, 8);
      },
      [&](Context& ctx) {
        const int me = ctx.id();
        for (int ph = 0; ph < kPhases; ++ph) {
          for (int s = 0; s < kSlots; ++s) {
            if (pl.writer[ph][s] != me) continue;
            const GAddr a = slots + 8 * static_cast<GAddr>(s);
            for (int i = 0; i < pl.incs[ph][s]; ++i) {
              ctx.store<std::int64_t>(a, ctx.load<std::int64_t>(a) + 1);
            }
          }
          for (const auto& [l, v] :
               pl.lock_adds[ph][static_cast<std::size_t>(me)]) {
            const GAddr a = counters + 8 * static_cast<GAddr>(l);
            ctx.lock(l);
            ctx.store<std::int64_t>(a, ctx.load<std::int64_t>(a) + v);
            ctx.unlock(l);
          }
          ctx.barrier();
        }
        ctx.stop_timer();
        if (me == 0) {
          for (int s = 0; s < kSlots; ++s) {
            got_slots[static_cast<std::size_t>(s)] =
                ctx.load<std::int64_t>(slots + 8 * static_cast<GAddr>(s));
          }
          for (int l = 0; l < kLocks; ++l) {
            got_counters[static_cast<std::size_t>(l)] =
                ctx.load<std::int64_t>(counters + 8 * static_cast<GAddr>(l));
          }
        }
      });
  Runtime rt(c);
  const RunResult r = rt.run(app);

  std::vector<std::int64_t> want_slots, want_counters;
  expected_final(pl, want_slots, want_counters);
  EXPECT_EQ(got_slots, want_slots);
  EXPECT_EQ(got_counters, want_counters);
  EXPECT_GT(r.parallel_time, 0);
}

std::vector<StressParam> stress_matrix() {
  std::vector<StressParam> v;
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC};
  const std::size_t grans[] = {64, 256, 1024, 4096};
  for (auto p : protos) {
    for (auto g : grans) {
      for (auto m : {net::NotifyMode::kPolling, net::NotifyMode::kInterrupt}) {
        for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
          v.push_back({p, g, m, seed});
        }
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CoherenceStress,
                         ::testing::ValuesIn(stress_matrix()), stress_name);

TEST(CoherenceStressDeterminism, SameSeedSameVirtualTime) {
  auto once = [] {
    const Plan pl = make_plan(99);
    DsmConfig c =
        testing::cfg(ProtocolKind::kHLRC, 1024, kNodes,
                     net::NotifyMode::kPolling);
    GAddr slots = 0, counters = 0;
    testing::LambdaApp app(
        [&](SetupCtx& s) {
          slots = s.alloc(8 * kSlots, 8);
          counters = s.alloc(8 * kLocks, 8);
        },
        [&](Context& ctx) {
          const int me = ctx.id();
          for (int ph = 0; ph < kPhases; ++ph) {
            for (int s = 0; s < kSlots; ++s) {
              if (pl.writer[ph][s] != me) continue;
              const GAddr a = slots + 8 * static_cast<GAddr>(s);
              for (int i = 0; i < pl.incs[ph][s]; ++i) {
                ctx.store<std::int64_t>(a, ctx.load<std::int64_t>(a) + 1);
              }
            }
            ctx.barrier();
          }
        });
    Runtime rt(c);
    return rt.run(app).total_time;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

// The distributed-diff extension protocol gets its own stress instances.
INSTANTIATE_TEST_SUITE_P(
    MwLrc, CoherenceStress,
    ::testing::Values(
        StressParam{ProtocolKind::kMWLRC, 64, net::NotifyMode::kPolling, 11},
        StressParam{ProtocolKind::kMWLRC, 256, net::NotifyMode::kPolling, 12},
        StressParam{ProtocolKind::kMWLRC, 1024, net::NotifyMode::kInterrupt, 11},
        StressParam{ProtocolKind::kMWLRC, 4096, net::NotifyMode::kPolling, 11},
        StressParam{ProtocolKind::kMWLRC, 4096, net::NotifyMode::kInterrupt, 13}),
    stress_name);

}  // namespace
}  // namespace dsm
