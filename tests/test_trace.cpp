// Tests for the src/trace subsystem: the exactness of the virtual-time
// breakdown (per-node categories sum to the node's clock, by construction,
// across every protocol and granularity), the guarantee that tracing is
// host-side only (RunStats and application results bitwise identical in
// every mode), deterministic Chrome-trace export, bounded-ring overflow
// behaviour, and the MW-LRC diff-archive telemetry.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/parallel_harness.hpp"
#include "runtime/runtime.hpp"
#include "trace/trace.hpp"

namespace dsm {
namespace {

const ProtocolKind kAllProtos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                   ProtocolKind::kHLRC, ProtocolKind::kMWLRC};
const std::size_t kAllGrains[] = {64, 256, 1024, 4096};

DsmConfig direct_config(const apps::AppInfo& info, ProtocolKind proto,
                        std::size_t gran, trace::Mode mode) {
  DsmConfig c;
  c.nodes = 4;
  c.protocol = proto;
  c.granularity = gran;
  c.seed = 0x1997'0616ULL;
  c.shared_bytes = 8u << 20;
  c.poll_dilation = info.poll_dilation;
  c.trace_mode = mode;
  return c;
}

TEST(Trace, ModeParsing) {
  trace::Mode m = trace::Mode::kOff;
  EXPECT_TRUE(trace::mode_from_string("breakdown", &m));
  EXPECT_EQ(m, trace::Mode::kBreakdown);
  EXPECT_TRUE(trace::mode_from_string("full", &m));
  EXPECT_EQ(m, trace::Mode::kFull);
  EXPECT_TRUE(trace::mode_from_string("off", &m));
  EXPECT_EQ(m, trace::Mode::kOff);
  m = trace::Mode::kFull;
  EXPECT_FALSE(trace::mode_from_string("verbose", &m));
  EXPECT_EQ(m, trace::Mode::kFull);  // untouched on failure
}

// The tentpole invariant: every nanosecond a node's clock advances is
// charged to exactly one category, so the categories sum to the node's
// total virtual runtime EXACTLY — no sampling error, no residual bucket.
// Water-Nsquared exercises every scope source (locks, barriers, faults,
// handlers) under all four protocols at all four granularities.
TEST(Trace, BreakdownSumsExactlyToNodeClock) {
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  h.set_trace(trace::Mode::kBreakdown);
  for (ProtocolKind p : kAllProtos) {
    for (std::size_t g : kAllGrains) {
      const auto& r = h.run("Water-Nsquared", p, g);
      SCOPED_TRACE(std::string(to_string(p)) + " " + std::to_string(g));
      ASSERT_EQ(r.breakdown.node.size(), 4u);
      EXPECT_EQ(r.breakdown.mode, trace::Mode::kBreakdown);
      for (std::size_t n = 0; n < r.breakdown.node.size(); ++n) {
        const trace::NodeBreakdown& b = r.breakdown.node[n];
        EXPECT_GT(b.total_ns, 0) << "node " << n;
        EXPECT_EQ(b.sum(), b.total_ns) << "node " << n;
      }
    }
  }
}

// Interrupt-mode notification charges handler time asynchronously into a
// running fiber's timeline; the sum must stay exact there too.
TEST(Trace, BreakdownSumsExactUnderInterrupts) {
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  h.set_trace(trace::Mode::kBreakdown);
  for (ProtocolKind p : {ProtocolKind::kSC, ProtocolKind::kHLRC}) {
    const auto& r = h.run("FFT", p, 1024, net::NotifyMode::kInterrupt);
    SCOPED_TRACE(to_string(p));
    for (const trace::NodeBreakdown& b : r.breakdown.node) {
      EXPECT_GT(b.total_ns, 0);
      EXPECT_EQ(b.sum(), b.total_ns);
    }
  }
}

// Tracing must never perturb the simulation: RunStats' deterministic
// fields and the application's verified output are bitwise identical
// whether tracing is off, breakdown-only, or full.
TEST(Trace, ResultsBitwiseIdenticalAcrossModes) {
  const auto keys = harness::ParallelHarness::cross(
      {"LU", "FFT"}, kAllProtos, std::vector<std::size_t>{256, 4096});

  harness::Harness off_h(apps::Scale::kTiny, 4);
  off_h.set_progress(false);
  off_h.set_trace(trace::Mode::kOff);
  harness::Harness bd_h(apps::Scale::kTiny, 4);
  bd_h.set_progress(false);
  bd_h.set_trace(trace::Mode::kBreakdown);
  harness::Harness full_h(apps::Scale::kTiny, 4);
  full_h.set_progress(false);
  full_h.set_trace(trace::Mode::kFull);

  for (const auto& k : keys) {
    const auto& a = off_h.run(k);
    const auto& b = bd_h.run(k);
    const auto& c = full_h.run(k);
    SCOPED_TRACE(k.app + " " + to_string(k.proto) + " " +
                 std::to_string(k.gran));
    EXPECT_TRUE(a.breakdown.empty());
    EXPECT_FALSE(b.breakdown.empty());
    EXPECT_FALSE(c.breakdown.empty());
    for (const auto* other : {&b, &c}) {
      EXPECT_EQ(a.parallel_time, other->parallel_time);
      EXPECT_EQ(std::memcmp(&a.speedup, &other->speedup, sizeof(double)), 0);
      EXPECT_TRUE(other->verified);
      EXPECT_EQ(a.stats.messages, other->stats.messages);
      EXPECT_EQ(a.stats.traffic_bytes, other->stats.traffic_bytes);
      EXPECT_EQ(a.stats.payload_bytes, other->stats.payload_bytes);
      EXPECT_EQ(a.stats.sim_events, other->stats.sim_events);
      EXPECT_EQ(a.stats.sim_yields, other->stats.sim_yields);
      EXPECT_EQ(a.stats.replicated_bytes, other->stats.replicated_bytes);
      EXPECT_EQ(a.stats.protocol_meta_bytes, other->stats.protocol_meta_bytes);
      EXPECT_EQ(a.stats.peak_twin_bytes, other->stats.peak_twin_bytes);
      EXPECT_EQ(a.stats.diff_archive_bytes, other->stats.diff_archive_bytes);
      EXPECT_EQ(a.stats.peak_diff_archive_bytes,
                other->stats.peak_diff_archive_bytes);
      ASSERT_EQ(a.stats.node.size(), other->stats.node.size());
      for (std::size_t n = 0; n < a.stats.node.size(); ++n) {
        EXPECT_EQ(std::memcmp(&a.stats.node[n], &other->stats.node[n],
                              sizeof(NodeStats)),
                  0)
            << "node " << n;
      }
    }
  }
}

// The exporter is deterministic: the same seed and config produce a
// byte-identical Chrome trace, and the trace has the expected structure
// (metadata, flow arrows, the self-contained breakdown, the terminator).
TEST(Trace, ExportIsByteIdenticalAcrossRuns) {
  const apps::AppInfo* info = apps::find_app("FFT");
  ASSERT_NE(info, nullptr);
  const DsmConfig c =
      direct_config(*info, ProtocolKind::kHLRC, 1024, trace::Mode::kFull);

  std::string json[2];
  for (std::string& out : json) {
    auto inst = info->make(apps::Scale::kTiny);
    Runtime rt(c);
    const RunResult r = rt.run(*inst);
    ASSERT_NE(rt.tracer(), nullptr);
    out = trace::chrome_trace_json(*rt.tracer(), r.breakdown);
    EXPECT_TRUE(inst->verify().empty());
  }
  EXPECT_EQ(json[0], json[1]);

  const std::string& t = json[0];
  EXPECT_EQ(t.front(), '[');
  EXPECT_TRUE(t.ends_with("]\n"));
  EXPECT_NE(t.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(t.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  EXPECT_NE(t.find("\"breakdown\""), std::string::npos);
  EXPECT_NE(t.find("\"trace_done\""), std::string::npos);
}

// A deliberately tiny ring must overwrite the oldest events, count the
// drops, and still export a well-formed trace.
TEST(Trace, TinyRingOverflowCountsDropsAndExportStaysWellFormed) {
  const apps::AppInfo* info = apps::find_app("FFT");
  ASSERT_NE(info, nullptr);
  DsmConfig c =
      direct_config(*info, ProtocolKind::kHLRC, 1024, trace::Mode::kFull);
  c.trace_ring_events = 32;

  auto inst = info->make(apps::Scale::kTiny);
  Runtime rt(c);
  const RunResult r = rt.run(*inst);
  ASSERT_NE(rt.tracer(), nullptr);
  const trace::Tracer& tr = *rt.tracer();
  std::uint64_t dropped = 0;
  for (NodeId n = 0; n < c.nodes; ++n) {
    EXPECT_LE(tr.size(n), 32u);
    dropped += tr.dropped(n);
  }
  EXPECT_GT(dropped, 0u);
  const std::string json = trace::chrome_trace_json(tr, r.breakdown);
  EXPECT_NE(json.find("\"ring-dropped\""), std::string::npos);
  EXPECT_TRUE(json.ends_with("]\n"));
}

// MW-LRC is the only protocol with a distributed diff archive; its growth
// must show up in RunStats (and peak >= current), stay zero everywhere
// else, and be sampled as a counter track in full mode.
TEST(Trace, DiffArchiveBytesReported) {
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  const auto& mw = h.run("LU", ProtocolKind::kMWLRC, 1024);
  EXPECT_GT(mw.stats.diff_archive_bytes, 0u);
  EXPECT_GE(mw.stats.peak_diff_archive_bytes, mw.stats.diff_archive_bytes);
  const auto& sc = h.run("LU", ProtocolKind::kSC, 1024);
  EXPECT_EQ(sc.stats.diff_archive_bytes, 0u);
  EXPECT_EQ(sc.stats.peak_diff_archive_bytes, 0u);

  const apps::AppInfo* info = apps::find_app("LU");
  ASSERT_NE(info, nullptr);
  const DsmConfig c =
      direct_config(*info, ProtocolKind::kMWLRC, 1024, trace::Mode::kFull);
  auto inst = info->make(apps::Scale::kTiny);
  Runtime rt(c);
  rt.run(*inst);
  ASSERT_NE(rt.tracer(), nullptr);
  bool saw_archive_counter = false;
  for (NodeId n = 0; n < c.nodes && !saw_archive_counter; ++n) {
    for (std::size_t i = 0; i < rt.tracer()->size(n); ++i) {
      const trace::Event& e = rt.tracer()->at(n, i);
      if (e.type == trace::Ev::kCounter &&
          e.extra ==
              static_cast<std::uint16_t>(trace::Ctr::kDiffArchiveBytes) &&
          e.arg > 0) {
        saw_archive_counter = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_archive_counter);
}

}  // namespace
}  // namespace dsm
