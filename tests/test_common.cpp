// Unit tests for common utilities: RNG determinism, table formatting,
// wire serialization, vector clocks, notice stores.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "proto/vector_clock.hpp"
#include "proto/wire.hpp"
#include "proto/write_notice.hpp"

namespace dsm {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, RangeBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"app", "speedup"});
  t.add_row({"LU", "12.30"});
  t.add_row({"Water-Nsquared", "9.81"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("Water-Nsquared"), std::string::npos);
  EXPECT_NE(s.find('\n'), std::string::npos);
}

TEST(Table, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(24654), "24,654");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
}

TEST(Wire, RoundTripScalars) {
  proto::ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  const auto buf = w.take();
  proto::ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Wire, RoundTripBytes) {
  proto::ByteWriter w;
  std::vector<std::byte> data(37);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i * 7);
  w.bytes(data);
  w.u32(5);
  const auto buf = w.take();
  proto::ByteReader r(buf);
  EXPECT_EQ(r.bytes(), data);
  EXPECT_EQ(r.u32(), 5u);
}

TEST(VectorClock, MergeAndCovers) {
  proto::VectorClock a, b;
  a.set(0, 3);
  a.set(2, 1);
  b.set(1, 4);
  b.set(2, 5);
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  a.merge(b);
  EXPECT_EQ(a[0], 3u);
  EXPECT_EQ(a[1], 4u);
  EXPECT_EQ(a[2], 5u);
  EXPECT_TRUE(a.covers(b));
}

TEST(VectorClock, EncodeDecode) {
  proto::VectorClock a;
  a.set(0, 7);
  a.set(3, 9);
  proto::ByteWriter w;
  a.encode(w, 4);
  const auto buf = w.take();
  proto::ByteReader r(buf);
  const auto b = proto::VectorClock::decode(r, 4);
  EXPECT_EQ(a, b);
}

TEST(NoticeStore, AddAndQuery) {
  proto::NoticeStore s(4);
  s.add({1, 1, {{10, 1, 1}}});
  s.add({1, 2, {{11, 2, 1}}});
  s.add({2, 1, {{10, 1, 2}}});
  EXPECT_EQ(s.have()[1], 2u);
  EXPECT_EQ(s.have()[2], 1u);
  EXPECT_EQ(s.total_intervals(), 3u);

  proto::VectorClock vc;
  vc.set(1, 1);
  auto newer = s.newer_than(vc, kNoNode);
  ASSERT_EQ(newer.size(), 2u);
  EXPECT_EQ(newer[0].origin, 1);
  EXPECT_EQ(newer[0].seq, 2u);
  EXPECT_EQ(newer[1].origin, 2);

  // Exclusion skips an origin entirely.
  newer = s.newer_than(vc, 2);
  ASSERT_EQ(newer.size(), 1u);
  EXPECT_EQ(newer[0].origin, 1);
}

// Regression: a sender's store can transiently run ahead of its vector
// clock (the barrier master ingests arrival intervals before merging the
// arrival clocks).  A transfer capped at the sender's clock must hold those
// intervals back — shipping them hands the receiver a causally non-closed
// set, and MW-LRC validate would later replay older diffs over newer bytes.
TEST(NoticeStore, NewerThanCappedAtSenderClock) {
  proto::NoticeStore s(4);
  s.add({1, 1, {{10, 1, 1}}});
  s.add({1, 2, {{11, 2, 1}}});
  s.add({1, 3, {{12, 3, 1}}});
  s.add({2, 1, {{10, 1, 2}}});

  proto::VectorClock have, sender_vc;
  have.set(1, 1);
  sender_vc.set(1, 2);  // clock covers (1,2) but not the ingested (1,3)

  auto newer = s.newer_than(have, kNoNode, &sender_vc);
  ASSERT_EQ(newer.size(), 1u);
  EXPECT_EQ(newer[0].origin, 1);
  EXPECT_EQ(newer[0].seq, 2u);  // (1,3) and (2,1) held back

  // Without a cap the full suffix ships.
  newer = s.newer_than(have, kNoNode);
  EXPECT_EQ(newer.size(), 3u);
}

TEST(NoticeStore, DuplicatesIgnored) {
  proto::NoticeStore s(4);
  s.add({1, 1, {{10, 1, 1}}});
  s.add({1, 1, {{10, 1, 1}}});
  EXPECT_EQ(s.total_intervals(), 1u);
}

TEST(NoticeStoreDeath, GapAborts) {
  proto::NoticeStore s(4);
  s.add({1, 1, {}});
  EXPECT_DEATH(s.add({1, 3, {}}), "gap");
}

TEST(Intervals, EncodeDecodeRoundTrip) {
  std::vector<proto::Interval> ivs;
  ivs.push_back({0, 1, {{5, 2, 0}, {6, 3, 1}}});
  ivs.push_back({3, 7, {}});
  proto::ByteWriter w;
  encode_intervals(w, ivs, 4);
  const auto buf = w.take();
  proto::ByteReader r(buf);
  const auto out = decode_intervals(r, 4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].origin, 0);
  EXPECT_EQ(out[0].seq, 1u);
  ASSERT_EQ(out[0].entries.size(), 2u);
  EXPECT_EQ(out[0].entries[1].block, 6u);
  EXPECT_EQ(out[0].entries[1].version, 3u);
  EXPECT_EQ(out[0].entries[1].owner, 1);
  EXPECT_EQ(out[1].origin, 3);
  EXPECT_EQ(out[1].seq, 7u);
  EXPECT_TRUE(out[1].entries.empty());
}

}  // namespace
}  // namespace dsm
