// Calendar queue correctness against the binary-heap reference, and the
// scale-out engine's bitwise-identity guarantee: calendar-vs-binary and
// SoA-vs-map must produce identical simulated results (the backends are
// host-side; PR acceptance pins this).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

// ---------------------------------------------------------------------
// CalendarQueue unit tests against std::priority_queue over the same
// FULL strict order (time, then FIFO sequence).

struct El {
  SimTime at = 0;
  std::uint64_t seq = 0;
};

struct ElTraits {
  static SimTime time(const El& e) { return e.at; }
  static bool less(const El& a, const El& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
};

struct ElGreater {
  bool operator()(const El& a, const El& b) const {
    return ElTraits::less(b, a);
  }
};

using Cal = sim::CalendarQueue<El, ElTraits>;
using Bin = std::priority_queue<El, std::vector<El>, ElGreater>;

TEST(EventQueue, RandomizedMatchesBinaryHeap) {
  // Interleaved pushes and pops with heavy timestamp duplication: the pop
  // sequence must be a pure function of the push sequence, identical to
  // the heap's.
  std::mt19937_64 rng(0x1997'0616);
  Cal cal;
  Bin bin;
  std::uint64_t seq = 0;
  SimTime frontier = 0;
  for (int round = 0; round < 20000; ++round) {
    const bool push = cal.empty() || (rng() % 3) != 0;
    if (push) {
      // Cluster near the frontier (DES-like), with frequent exact ties.
      const SimTime t = frontier + static_cast<SimTime>(rng() % 8192) / 4;
      cal.push(El{t, seq});
      bin.push(El{t, seq});
      ++seq;
    } else {
      const El a = cal.take();
      const El b = bin.top();
      bin.pop();
      ASSERT_EQ(a.at, b.at);
      ASSERT_EQ(a.seq, b.seq);
      frontier = a.at;
    }
  }
  while (!cal.empty()) {
    const El a = cal.take();
    const El b = bin.top();
    bin.pop();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(bin.empty());
}

TEST(EventQueue, FifoTiesPopInPushOrder) {
  // All-equal timestamps: the tie-break sequence (push order) decides.
  Cal cal;
  for (std::uint64_t i = 0; i < 1000; ++i) cal.push(El{us(5), i});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const El e = cal.take();
    ASSERT_EQ(e.at, us(5));
    ASSERT_EQ(e.seq, i);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, PastPushRewindsCursor) {
  // Advance the cursor far into the future, then push before it: the
  // early element must pop first (notify()/make_ready does this when a
  // fiber becomes ready at a clock behind the newest event).
  Cal cal;
  cal.push(El{ms(100), 0});
  cal.push(El{ms(200), 1});
  EXPECT_EQ(cal.take().seq, 0u);  // cursor now sits at ~100 ms
  cal.push(El{us(1), 2});         // way in the past
  EXPECT_EQ(cal.take().seq, 2u);
  EXPECT_EQ(cal.take().seq, 1u);
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, ResizeUnderSkewedTimestamps) {
  // Exponentially-spreading timestamps force day-width recalibration;
  // order must stay exact through every rebuild.
  std::mt19937_64 rng(42);
  Cal cal;
  Bin bin;
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += static_cast<SimTime>(rng() % (1ull << (10 + (i / 200) % 20)));
    cal.push(El{t, seq});
    bin.push(El{t, seq});
    ++seq;
  }
  EXPECT_GT(cal.stats().resizes, 0u);
  while (!cal.empty()) {
    const El a = cal.take();
    const El b = bin.top();
    bin.pop();
    ASSERT_EQ(a.at, b.at);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(bin.empty());
}

// ---------------------------------------------------------------------
// Whole-engine bitwise identity: 64-node runs across all four protocols
// and two granularities must be identical under every backend pairing.

RunResult run_sharing(ProtocolKind p, std::size_t gran,
                      sim::EventQueueKind q, mem::BlockStateKind b) {
  DsmConfig c = cfg(p, gran, 64);
  c.event_queue = q;
  c.block_state = b;
  GAddr arr = 0;
  GAddr counter = 0;
  return run(
      c,
      [&](SetupCtx& s) {
        arr = s.alloc(64 * 1024, 4096);
        counter = s.alloc(4096, 4096);
      },
      [&](Context& ctx) {
        const int n = ctx.nodes();
        const GAddr mine = arr + static_cast<GAddr>(ctx.id()) * 1024;
        // Write my partition, read my neighbour's (remote faults), and
        // bump a lock-protected shared counter (lock + diff traffic).
        for (GAddr o = 0; o < 1024; o += 8) {
          ctx.store<std::int64_t>(mine + o, ctx.id() + 1);
        }
        ctx.barrier();
        const GAddr theirs =
            arr + static_cast<GAddr>((ctx.id() + 1) % n) * 1024;
        std::int64_t sum = 0;
        for (GAddr o = 0; o < 1024; o += 8) {
          sum += ctx.load<std::int64_t>(theirs + o);
        }
        EXPECT_EQ(sum, 128 * (((ctx.id() + 1) % n) + 1));
        ctx.lock(0);
        ctx.store<std::int64_t>(counter,
                                ctx.load<std::int64_t>(counter) + 1);
        ctx.unlock(0);
        ctx.barrier();
        if (ctx.id() == 0) {
          EXPECT_EQ(ctx.load<std::int64_t>(counter), n);
        }
      });
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.parallel_time, b.parallel_time);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
  EXPECT_EQ(a.stats.payload_bytes, b.stats.payload_bytes);
  EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
}

class SoAIdentity : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SoAIdentity, SixtyFourNodeSweepMatchesReferenceBackends) {
  for (const std::size_t gran : {std::size_t{64}, std::size_t{4096}}) {
    // Reference: binary heap + unordered_map.  Default: calendar + SoA.
    const RunResult ref = run_sharing(GetParam(), gran,
                                      sim::EventQueueKind::kBinary,
                                      mem::BlockStateKind::kMap);
    const RunResult def = run_sharing(GetParam(), gran,
                                      sim::EventQueueKind::kCalendar,
                                      mem::BlockStateKind::kSoA);
    expect_identical(ref, def);
    // Each axis alone must also be an identity.
    const RunResult cal_map = run_sharing(GetParam(), gran,
                                          sim::EventQueueKind::kCalendar,
                                          mem::BlockStateKind::kMap);
    expect_identical(ref, cal_map);
    const RunResult bin_soa = run_sharing(GetParam(), gran,
                                          sim::EventQueueKind::kBinary,
                                          mem::BlockStateKind::kSoA);
    expect_identical(ref, bin_soa);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SoAIdentity,
                         ::testing::Values(ProtocolKind::kSC,
                                           ProtocolKind::kSWLRC,
                                           ProtocolKind::kHLRC,
                                           ProtocolKind::kMWLRC),
                         [](const auto& info) {
                           switch (info.param) {
                             case ProtocolKind::kSC: return "SC";
                             case ProtocolKind::kSWLRC: return "SW_LRC";
                             case ProtocolKind::kHLRC: return "HLRC";
                             case ProtocolKind::kMWLRC: return "MW_LRC";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace dsm
