// Tests for the memory subsystem: address space / block math, access
// states, allocator, twin/diff machinery (including property-style random
// sweeps), and the first-touch home table.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "mem/address_space.hpp"
#include "mem/diff.hpp"
#include "mem/home_table.hpp"

namespace dsm::mem {
namespace {

TEST(AddressSpace, BlockMath) {
  AddressSpace s(4, 1 << 20, 256);
  EXPECT_EQ(s.granularity(), 256u);
  EXPECT_EQ(s.block_shift(), 8);
  EXPECT_EQ(s.num_blocks(), (1u << 20) / 256);
  EXPECT_EQ(s.block_of(0), 0u);
  EXPECT_EQ(s.block_of(255), 0u);
  EXPECT_EQ(s.block_of(256), 1u);
  EXPECT_EQ(s.base_of(3), 768u);
}

TEST(AddressSpace, RoundsSizeUpToBlocks) {
  AddressSpace s(1, 1000, 256);
  EXPECT_EQ(s.size(), 1024u);
}

TEST(AddressSpace, AccessStatesStartInvalidAndUpdate) {
  AddressSpace s(2, 1 << 16, 64);
  for (BlockId b = 0; b < s.num_blocks(); b += 100) {
    EXPECT_EQ(s.access(0, b), Access::kInvalid);
    EXPECT_EQ(s.access(1, b), Access::kInvalid);
  }
  s.set_access(1, 5, Access::kReadWrite);
  EXPECT_EQ(s.access(1, 5), Access::kReadWrite);
  EXPECT_EQ(s.access(0, 5), Access::kInvalid);
  EXPECT_EQ(s.access_row(1)[5], Access::kReadWrite);
}

TEST(AddressSpace, AllocatorAlignsAndAdvances) {
  AddressSpace s(1, 1 << 16, 64);
  const GAddr a = s.alloc(10, 8);
  const GAddr b = s.alloc(100, 64);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  s.align_to_block();
  const GAddr c = s.alloc(1, 1);
  EXPECT_EQ(c % 64, 0u);
}

TEST(AddressSpaceDeath, ExhaustionAborts) {
  AddressSpace s(1, 1 << 12, 64);
  EXPECT_DEATH(s.alloc(1 << 13, 8), "exhausted");
}

TEST(AddressSpaceDeath, BadGranularityAborts) {
  EXPECT_DEATH(AddressSpace(1, 1 << 12, 100), "granularity");
}

TEST(AddressSpace, NodeCopiesAreIndependent) {
  AddressSpace s(2, 1 << 12, 64);
  s.local(0, 0)[0] = std::byte{0xaa};
  EXPECT_EQ(s.local(1, 0)[0], std::byte{0});
  EXPECT_EQ(s.backing(0)[0], std::byte{0});
}

// ------------------------------------------------------------------
// Diff machinery.

TEST(Diff, IdenticalBlocksGiveEmptyDiff) {
  std::vector<std::byte> a(256, std::byte{7}), b(256, std::byte{7});
  EXPECT_TRUE(make_diff(a, b).empty());
  EXPECT_EQ(diff_runs({}), 0u);
  EXPECT_EQ(diff_changed_bytes({}), 0u);
}

TEST(Diff, SingleWordChange) {
  std::vector<std::byte> twin(256, std::byte{0});
  std::vector<std::byte> dirty = twin;
  dirty[40] = std::byte{9};
  const auto d = make_diff(dirty, twin);
  EXPECT_EQ(diff_runs(d), 1u);
  EXPECT_EQ(diff_changed_bytes(d), 4u);  // 4-byte word granularity
  std::vector<std::byte> dst(256, std::byte{0});
  apply_diff(dst, d);
  EXPECT_EQ(dst, dirty);
}

TEST(Diff, AdjacentWordsCoalesceIntoOneRun) {
  std::vector<std::byte> twin(256, std::byte{0});
  std::vector<std::byte> dirty = twin;
  for (int i = 64; i < 96; ++i) dirty[static_cast<std::size_t>(i)] = std::byte{1};
  const auto d = make_diff(dirty, twin);
  EXPECT_EQ(diff_runs(d), 1u);
  EXPECT_EQ(diff_changed_bytes(d), 32u);
}

TEST(Diff, DisjointRuns) {
  std::vector<std::byte> twin(256, std::byte{0});
  std::vector<std::byte> dirty = twin;
  dirty[0] = std::byte{1};
  dirty[128] = std::byte{1};
  dirty[248] = std::byte{1};
  const auto d = make_diff(dirty, twin);
  EXPECT_EQ(diff_runs(d), 3u);
}

TEST(Diff, ApplyMergesDisjointWriters) {
  // Two writers modify disjoint words of the same block; both diffs applied
  // to the home copy must merge (the HLRC multiple-writer property).
  std::vector<std::byte> home(256, std::byte{0});
  std::vector<std::byte> w1 = home, w2 = home;
  w1[8] = std::byte{0x11};
  w2[200] = std::byte{0x22};
  apply_diff(home, make_diff(w1, std::vector<std::byte>(256, std::byte{0})));
  apply_diff(home, make_diff(w2, std::vector<std::byte>(256, std::byte{0})));
  EXPECT_EQ(home[8], std::byte{0x11});
  EXPECT_EQ(home[200], std::byte{0x22});
}

class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomMutationsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t size = 64u << (GetParam() % 4);  // 64..512
    std::vector<std::byte> twin(size);
    for (auto& x : twin) x = std::byte(rng.next_u64());
    std::vector<std::byte> dirty = twin;
    const int muts = static_cast<int>(rng.next_below(size));
    for (int m = 0; m < muts; ++m) {
      dirty[rng.next_below(size)] = std::byte(rng.next_u64());
    }
    const auto d = make_diff(dirty, twin);
    std::vector<std::byte> dst = twin;
    apply_diff(dst, d);
    ASSERT_EQ(dst, dirty);
    // Diff never larger than header + full block + per-run overhead bound.
    ASSERT_LE(d.size(), 4 + size + 8 * (size / 8));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffProperty, ::testing::Range(0, 8));

// ------------------------------------------------------------------
// Format pinning: make_diff scans 8 bytes at a time, but the wire format
// is defined at 4-byte word granularity.  This reference implementation is
// the original word-at-a-time scanner; the optimized path must produce
// byte-identical output for every input.

std::vector<std::byte> reference_make_diff(std::span<const std::byte> dirty,
                                           std::span<const std::byte> twin) {
  const std::size_t words = dirty.size() / 4;
  auto put_u32 = [](std::vector<std::byte>& out, std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + 4);
  };
  std::vector<std::byte> out;
  std::uint32_t runs = 0;
  put_u32(out, 0);
  std::size_t w = 0;
  auto word_differs = [&](std::size_t i) {
    std::uint32_t a, b;
    std::memcpy(&a, dirty.data() + i * 4, 4);
    std::memcpy(&b, twin.data() + i * 4, 4);
    return a != b;
  };
  while (w < words) {
    if (!word_differs(w)) {
      ++w;
      continue;
    }
    const std::size_t start = w;
    while (w < words && word_differs(w)) ++w;
    put_u32(out, static_cast<std::uint32_t>(start * 4));
    put_u32(out, static_cast<std::uint32_t>((w - start) * 4));
    out.insert(out.end(), dirty.begin() + static_cast<std::ptrdiff_t>(start * 4),
               dirty.begin() + static_cast<std::ptrdiff_t>(w * 4));
    ++runs;
  }
  if (runs == 0) return {};
  std::memcpy(out.data(), &runs, 4);
  return out;
}

TEST(Diff, AllCleanAndAllDirtyPinnedToReference) {
  for (std::size_t size : {4u, 8u, 12u, 64u, 256u, 4096u}) {
    std::vector<std::byte> twin(size);
    for (std::size_t i = 0; i < size; ++i) twin[i] = std::byte(i * 7 + 1);
    // All clean: empty diff.
    EXPECT_EQ(make_diff(twin, twin), reference_make_diff(twin, twin));
    EXPECT_TRUE(make_diff(twin, twin).empty());
    // All dirty: one run covering the whole block.
    std::vector<std::byte> dirty(size);
    for (std::size_t i = 0; i < size; ++i) dirty[i] = std::byte(~(i * 7 + 1));
    const auto d = make_diff(dirty, twin);
    EXPECT_EQ(d, reference_make_diff(dirty, twin));
    EXPECT_EQ(diff_runs(d), 1u);
    EXPECT_EQ(diff_changed_bytes(d), size);
  }
}

TEST(Diff, WordBoundaryPatternsPinnedToReference) {
  // Patterns chosen to stress the 8-byte scan's word-boundary refinement:
  // runs starting/ending on odd words, straddling u64 boundaries, and in
  // the sub-u64 tail of a 12-byte block.
  const std::size_t size = 64;
  const std::vector<std::byte> twin(size, std::byte{0});
  for (std::size_t lo = 0; lo < size / 4; ++lo) {
    for (std::size_t hi = lo; hi < size / 4; ++hi) {
      std::vector<std::byte> dirty = twin;
      for (std::size_t w = lo; w <= hi; ++w) dirty[w * 4] = std::byte{0xFF};
      ASSERT_EQ(make_diff(dirty, twin), reference_make_diff(dirty, twin))
          << "dirty words [" << lo << ", " << hi << "]";
    }
  }
}

TEST(Diff, RandomPairsPinnedToReference) {
  Rng rng(0xD1FF'F0C5ULL);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t size = 4 * (1 + rng.next_below(96));  // 4..384 bytes
    std::vector<std::byte> twin(size), dirty(size);
    for (auto& x : twin) x = std::byte(rng.next_u64() & 3);  // collisions
    if (iter % 3 == 0) {
      dirty = twin;  // sparse mutations
      const std::size_t muts = rng.next_below(size + 1);
      for (std::size_t m = 0; m < muts; ++m) {
        dirty[rng.next_below(size)] = std::byte(rng.next_u64() & 3);
      }
    } else {
      for (auto& x : dirty) x = std::byte(rng.next_u64() & 3);
    }
    const auto d = make_diff(dirty, twin);
    ASSERT_EQ(d, reference_make_diff(dirty, twin)) << "size " << size;
    std::vector<std::byte> dst = twin;
    apply_diff(dst, d);
    ASSERT_EQ(dst, dirty);
  }
}

TEST(Diff, MakeDiffIntoReusesScratchAcrossCalls) {
  // The HLRC hot path reuses one scratch vector across every flush; stale
  // contents from a previous (larger) diff must never leak through.
  std::vector<std::byte> scratch;
  const std::vector<std::byte> twin(128, std::byte{0});
  std::vector<std::byte> big = twin;
  for (auto& x : big) x = std::byte{0xAB};
  make_diff_into(big, twin, scratch);
  EXPECT_EQ(scratch, make_diff(big, twin));

  std::vector<std::byte> small = twin;
  small[4] = std::byte{1};
  make_diff_into(small, twin, scratch);
  EXPECT_EQ(scratch, make_diff(small, twin));

  make_diff_into(twin, twin, scratch);
  EXPECT_TRUE(scratch.empty());
}

// ------------------------------------------------------------------
// Home table.

TEST(HomeTable, StaticRoundRobin) {
  HomeTable h(4, 100);
  EXPECT_EQ(h.static_home(0), 0);
  EXPECT_EQ(h.static_home(1), 1);
  EXPECT_EQ(h.static_home(5), 1);
  EXPECT_EQ(h.static_home(7), 3);
}

TEST(HomeTable, ClaimAndBelieve) {
  HomeTable h(4, 100);
  EXPECT_FALSE(h.is_claimed(5));
  // Unclaimed: everyone believes the static home.
  EXPECT_EQ(h.believed_home(0, 5), 1);
  EXPECT_EQ(h.believed_home(3, 5), 1);
  h.claim(5, 2);
  EXPECT_TRUE(h.is_claimed(5));
  // The static home sees the authoritative entry; others still guess.
  EXPECT_EQ(h.believed_home(1, 5), 2);
  EXPECT_EQ(h.believed_home(0, 5), 1);
  h.learn(0, 5, 2);
  EXPECT_EQ(h.believed_home(0, 5), 2);
}

TEST(HomeTableDeath, DoubleClaimAborts) {
  HomeTable h(2, 10);
  h.claim(3, 0);
  EXPECT_DEATH(h.claim(3, 1), "claimed twice");
}

}  // namespace
}  // namespace dsm::mem
