// Tests for intra-run conservative parallel DES (--sim-par=window): the
// windowed engine must be bitwise identical to the serial loop.  Engine-
// level tests pin the scheduling order directly (trace equality, FIFO per
// (src,dst) pair, zero-lookahead degeneracy); runtime-level tests run a
// randomized sharing workload across all four protocols, two coherence
// granularities and {16, 64, 256} nodes, comparing every deterministic
// statistic of the two modes.  See DESIGN.md §5g for the commit protocol
// and the determinism argument these tests enforce.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

// ---------------------------------------------------------------------
// Engine-level: the windowed scheduler replays the serial order exactly.

sim::Engine::Options eopts(int nodes, sim::SimPar par, SimTime lookahead,
                           ThreadPool* pool) {
  sim::Engine::Options o;
  o.nodes = nodes;
  o.quantum = us(2);
  o.stack_bytes = 128 * 1024;
  o.sim_par = par;
  o.lookahead = lookahead;
  o.pool = pool;
  return o;
}

struct TraceEntry {
  NodeId node;
  SimTime at;
  std::uint64_t tag;
  bool operator==(const TraceEntry&) const = default;
};

// A randomized message-passing program: every node charges pseudo-random
// compute slices and posts tagged events to pseudo-random peers one
// one-way latency (us(20)) ahead — always outside the us(10) lookahead
// window, as the runtime's lookahead derivation guarantees for real
// protocol traffic.  Returns the per-node occurrence traces: handlers run
// node-disjoint inside windows, so per-(dst)-node order (which subsumes
// FIFO per (src,dst)) and final clocks are the engine's determinism
// contract at this layer.
std::vector<std::vector<TraceEntry>> run_engine_program(sim::SimPar par,
                                                        SimTime lookahead,
                                                        ThreadPool* pool) {
  constexpr int kNodes = 16;
  sim::Engine e(eopts(kNodes, par, lookahead, pool));
  std::vector<std::vector<TraceEntry>> trace(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    e.spawn(n, [&e, &trace, n] {
      std::mt19937 rng(0x5157u + static_cast<unsigned>(n));
      for (int i = 0; i < 40; ++i) {
        e.charge(ns(1 + rng() % 3000));
        const NodeId dst = static_cast<NodeId>(rng() % kNodes);
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(n) << 32) | static_cast<unsigned>(i);
        e.post(e.now(n) + us(20), dst, [&e, &trace, tag] {
          e.lift_clock(e.event_time());
          trace[static_cast<std::size_t>(e.current())].push_back(
              {e.current(), e.event_time(), tag});
        });
        e.yield();
      }
    });
  }
  e.run();
  for (NodeId n = 0; n < kNodes; ++n) {
    trace[static_cast<std::size_t>(n)].push_back({n, e.now(n), ~0ull});
  }
  return trace;
}

TEST(ParallelEngine, WindowTraceMatchesSerialOnRandomMessagePattern) {
  const auto serial = run_engine_program(sim::SimPar::kOff, 0, nullptr);
  const auto inline_win =
      run_engine_program(sim::SimPar::kWindow, us(10), nullptr);
  EXPECT_EQ(serial, inline_win);
  ThreadPool pool(3);
  const auto pooled = run_engine_program(sim::SimPar::kWindow, us(10), &pool);
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelEngine, ZeroLookaheadDegeneratesToSerialLoop) {
  const auto serial = run_engine_program(sim::SimPar::kOff, 0, nullptr);
  const auto degenerate =
      run_engine_program(sim::SimPar::kWindow, 0, nullptr);
  EXPECT_EQ(serial, degenerate);
}

// Messages between one (src,dst) pair must be delivered in send order even
// when several land inside one window: same-time events commit in seq
// (post) order, which is exactly the serial tie-break.
TEST(ParallelEngine, FifoPerSrcDstPairPreservedInsideWindows) {
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr)}) {
    for (const sim::SimPar par : {sim::SimPar::kOff, sim::SimPar::kWindow}) {
      sim::Engine e(eopts(2, par, us(10), pool));
      std::vector<int> order;
      e.spawn(0, [&] {
        // 8 sends with identical arrival time: FIFO must follow post order.
        const SimTime base = e.now(0) + us(20);
        for (int i = 0; i < 8; ++i) {
          e.post(base, 1, [&order, i] { order.push_back(i); });
        }
        // 8 more spaced 1ns apart, still all within one us(10) window.
        for (int i = 8; i < 16; ++i) {
          e.post(base + us(2) + ns(i), 1, [&order, i] { order.push_back(i); });
        }
        e.charge(us(1));
      });
      e.spawn(1, [&] { e.charge(us(1)); });
      e.run();
      std::vector<int> want(16);
      for (int i = 0; i < 16; ++i) want[static_cast<std::size_t>(i)] = i;
      EXPECT_EQ(order, want) << "par=" << sim::to_string(par);
    }
  }
}

TEST(ParallelEngine, WindowStatsCountOccupancy) {
  sim::Engine e(eopts(4, sim::SimPar::kWindow, us(10), nullptr));
  for (NodeId n = 0; n < 4; ++n) {
    e.spawn(n, [&e, n] {
      for (int i = 0; i < 10; ++i) {
        e.charge(us(1));
        e.post(e.now(n) + us(20), (n + 1) % 4,
               [&e] { e.lift_clock(e.event_time()); });
        e.yield();
      }
    });
  }
  e.run();
  const auto s = e.sim_par_stats();
  EXPECT_GT(s.windows, 0u);
  EXPECT_GT(s.window_events, 0u);
  EXPECT_GE(s.max_window_events, 1u);
  EXPECT_LE(s.max_window_nodes, 4u);
  EXPECT_FALSE(s.serial_fallback);
}

TEST(ParallelEngine, SimParStringRoundTrip) {
  sim::SimPar p = sim::SimPar::kOff;
  EXPECT_TRUE(sim::sim_par_from_string("window", &p));
  EXPECT_EQ(p, sim::SimPar::kWindow);
  EXPECT_TRUE(sim::sim_par_from_string("off", &p));
  EXPECT_EQ(p, sim::SimPar::kOff);
  EXPECT_FALSE(sim::sim_par_from_string("bogus", &p));
  EXPECT_STREQ(sim::to_string(sim::SimPar::kWindow), "window");
  EXPECT_STREQ(sim::to_string(sim::SimPar::kOff), "off");
}

// ---------------------------------------------------------------------
// Runtime-level: full-stack bitwise identity on a randomized workload.

RunResult run_random(ProtocolKind p, std::size_t gran, int nodes,
                     net::NotifyMode notify, sim::SimPar par, int workers,
                     SimTime inv_delay = 0) {
  DsmConfig c = cfg(p, gran, nodes, notify);
  c.sim_par = par;
  c.sim_par_workers = workers;
  c.sc_invalidate_delay = inv_delay;
  constexpr GAddr kSlot = 512;
  GAddr arr = 0;
  GAddr counters = 0;
  return run(
      c,
      [&](SetupCtx& s) {
        arr = s.alloc(static_cast<std::size_t>(nodes) * kSlot, 4096);
        counters = s.alloc(4096, 4096);
      },
      [&](Context& ctx) {
        // Deterministic per-node PRNG: the access pattern is pseudo-random
        // but a pure function of the config, so off/window runs replay the
        // same program.
        std::mt19937 rng(0x9E3779B9u + static_cast<unsigned>(ctx.id()));
        const int n = ctx.nodes();
        const GAddr mine = arr + static_cast<GAddr>(ctx.id()) * kSlot;
        for (GAddr o = 0; o < kSlot; o += 8) {
          ctx.store<std::int64_t>(mine + o, ctx.id() + 1);
        }
        ctx.barrier();
        // Random remote reads with interleaved compute: exercises fault
        // events landing at staggered virtual times across windows.
        std::int64_t sum = 0;
        for (int i = 0; i < 24; ++i) {
          const int peer = static_cast<int>(rng() % static_cast<unsigned>(n));
          const GAddr off = static_cast<GAddr>(rng() % (kSlot / 8)) * 8;
          sum += ctx.load<std::int64_t>(arr + static_cast<GAddr>(peer) * kSlot + off);
          ctx.compute(ns(1 + rng() % 900));
        }
        ASSERT_GT(sum, 0);
        // Random lock-protected writes: per-lock slots so the program is
        // race-free under every consistency model.
        for (int i = 0; i < 6; ++i) {
          const int l = static_cast<int>(rng() % 4u);
          ctx.lock(l);
          const GAddr slot = counters + static_cast<GAddr>(l) * 8;
          const std::int64_t old = ctx.load<std::int64_t>(slot);
          ctx.store<std::int64_t>(slot, old + 1);
          ctx.unlock(l);
          ctx.compute(ns(1 + rng() % 300));
        }
        ctx.barrier();
        // Boundary writes into the neighbour's slot edge: false sharing at
        // fine grain, write-write interleavings across windows.
        const GAddr theirs =
            arr + static_cast<GAddr>((ctx.id() + 1) % n) * kSlot;
        for (int i = 0; i < 8; ++i) {
          const GAddr off = static_cast<GAddr>(rng() % 4u) * 8;
          ctx.store<std::int64_t>(theirs + off, ctx.id() + 100 + i);
          ctx.compute(ns(1 + rng() % 200));
        }
        ctx.barrier();
        if (ctx.id() == 0) {
          // Acquire each protecting lock before reading its counter: under
          // LRC a plain post-barrier read is not entitled to see updates
          // published under a lock it never acquired.
          std::int64_t total = 0;
          for (int l = 0; l < 4; ++l) {
            ctx.lock(l);
            const std::int64_t v =
                ctx.load<std::int64_t>(counters + static_cast<GAddr>(l) * 8);
            total += v;
            ctx.unlock(l);
          }
          EXPECT_EQ(total, 6 * n);
        }
      });
}

void expect_node_identical(const NodeStats& a, const NodeStats& b, int node) {
  SCOPED_TRACE(::testing::Message() << "node " << node);
  EXPECT_EQ(a.read_faults, b.read_faults);
  EXPECT_EQ(a.write_faults, b.write_faults);
  EXPECT_EQ(a.remote_read_faults, b.remote_read_faults);
  EXPECT_EQ(a.remote_write_faults, b.remote_write_faults);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.block_fetches, b.block_fetches);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.twins, b.twins);
  EXPECT_EQ(a.diffs, b.diffs);
  EXPECT_EQ(a.diff_bytes, b.diff_bytes);
  EXPECT_EQ(a.notices_processed, b.notices_processed);
  EXPECT_EQ(a.bitmap_words_compared, b.bitmap_words_compared);
  EXPECT_EQ(a.bitmap_scan_bytes_avoided, b.bitmap_scan_bytes_avoided);
  EXPECT_EQ(a.lock_acquires, b.lock_acquires);
  EXPECT_EQ(a.remote_lock_ops, b.remote_lock_ops);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.compute_ns, b.compute_ns);
  EXPECT_EQ(a.read_stall_ns, b.read_stall_ns);
  EXPECT_EQ(a.write_stall_ns, b.write_stall_ns);
  EXPECT_EQ(a.lock_stall_ns, b.lock_stall_ns);
  EXPECT_EQ(a.barrier_stall_ns, b.barrier_stall_ns);
}

// Every deterministic field of the two runs must match bit for bit; only
// the host-side telemetry (arena, event-queue backend, simpar occupancy)
// is exempt by design (stats.hpp documents the split).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.parallel_time, b.parallel_time);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
  EXPECT_EQ(a.stats.payload_bytes, b.stats.payload_bytes);
  EXPECT_EQ(a.stats.parallel_time_ns, b.stats.parallel_time_ns);
  EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
  EXPECT_EQ(a.stats.sim_yields, b.stats.sim_yields);
  EXPECT_EQ(a.stats.used_block_bytes, b.stats.used_block_bytes);
  EXPECT_EQ(a.stats.fetched_block_bytes, b.stats.fetched_block_bytes);
  EXPECT_EQ(a.stats.replicated_bytes, b.stats.replicated_bytes);
  EXPECT_EQ(a.stats.protocol_meta_bytes, b.stats.protocol_meta_bytes);
  EXPECT_EQ(a.stats.peak_twin_bytes, b.stats.peak_twin_bytes);
  EXPECT_EQ(a.stats.peak_bitmap_bytes, b.stats.peak_bitmap_bytes);
  EXPECT_EQ(a.stats.diff_archive_bytes, b.stats.diff_archive_bytes);
  EXPECT_EQ(a.stats.peak_diff_archive_bytes, b.stats.peak_diff_archive_bytes);
  EXPECT_EQ(a.stats.max_page_writers, b.stats.max_page_writers);
  EXPECT_EQ(a.stats.max_fine_writers, b.stats.max_fine_writers);
  EXPECT_EQ(a.stats.single_fine_frac, b.stats.single_fine_frac);
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size());
  for (std::size_t i = 0; i < a.stats.node.size(); ++i) {
    expect_node_identical(a.stats.node[i], b.stats.node[i],
                          static_cast<int>(i));
  }
}

class ParallelEngineIdentity : public ::testing::TestWithParam<ProtocolKind> {
};

const char* pname(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kSC: return "SC";
    case ProtocolKind::kSWLRC: return "SW_LRC";
    case ProtocolKind::kHLRC: return "HLRC";
    case ProtocolKind::kMWLRC: return "MW_LRC";
  }
  return "?";
}

TEST_P(ParallelEngineIdentity, WindowMatchesSerialAcrossGrainsAndScales) {
  for (const std::size_t gran : {std::size_t{64}, std::size_t{4096}}) {
    for (const int nodes : {16, 64, 256}) {
      SCOPED_TRACE(::testing::Message()
                   << pname(GetParam()) << " gran=" << gran
                   << " nodes=" << nodes);
      const RunResult serial =
          run_random(GetParam(), gran, nodes, net::NotifyMode::kPolling,
                     sim::SimPar::kOff, 0);
      const RunResult window =
          run_random(GetParam(), gran, nodes, net::NotifyMode::kPolling,
                     sim::SimPar::kWindow, 1);
      expect_identical(serial, window);
      // All four protocols window under their defaults (SW-LRC via the
      // sharded version-label scheme, DESIGN.md §5g).
      if (nodes >= 64) {
        EXPECT_GT(window.stats.simpar_windows, 0u);
        EXPECT_GT(window.stats.simpar_window_events, 0u);
        // This workload never calls stop_timer(), so the snapshot serial
        // fallback must not have fired.
        EXPECT_FALSE(window.stats.simpar_serial_fallback);
      }
    }
  }
}

// Interrupt-mode wakeup latency (kInterrupt posts a wake event one
// interrupt latency out) is the tightest self-interaction after message
// arrival; windows must not reorder it.
TEST_P(ParallelEngineIdentity, InterruptModeMatchesSerial) {
  for (const std::size_t gran : {std::size_t{64}, std::size_t{4096}}) {
    SCOPED_TRACE(::testing::Message() << pname(GetParam()) << " gran="
                                      << gran);
    const RunResult serial =
        run_random(GetParam(), gran, 64, net::NotifyMode::kInterrupt,
                   sim::SimPar::kOff, 0);
    const RunResult window =
        run_random(GetParam(), gran, 64, net::NotifyMode::kInterrupt,
                   sim::SimPar::kWindow, 1);
    expect_identical(serial, window);
  }
}

// A real multi-threaded pool (3 workers) must still be bitwise identical —
// this is the configuration the ThreadSanitizer CI job hammers.
TEST_P(ParallelEngineIdentity, MultiWorkerPoolMatchesSerial) {
  const RunResult serial = run_random(
      GetParam(), 256, 64, net::NotifyMode::kPolling, sim::SimPar::kOff, 0);
  const RunResult window =
      run_random(GetParam(), 256, 64, net::NotifyMode::kPolling,
                 sim::SimPar::kWindow, 3);
  expect_identical(serial, window);
}

// ---------------------------------------------------------------------
// SW-LRC version-state representations (DESIGN.md §5g).
//
// A steal-free workload: private writes land in node-private blocks (512 B
// slots at 64 B grain), remote reads never migrate ownership, and the
// shared counters are lock-serialized with one block per lock — so no
// releaser ever loses ownership mid-interval.  On such workloads the
// sharded epoch/rank labels are order-isomorphic to the flat global
// version counter and every simulated result must match bit for bit.

RunResult run_steal_free(SwLrcVersionState vs, int nodes, sim::SimPar par,
                         int workers) {
  DsmConfig c = cfg(ProtocolKind::kSWLRC, 64, nodes, net::NotifyMode::kPolling);
  c.sim_par = par;
  c.sim_par_workers = workers;
  c.swlrc_version_state = vs;
  constexpr GAddr kSlot = 512;
  GAddr arr = 0;
  GAddr counters = 0;
  return run(
      c,
      [&](SetupCtx& s) {
        arr = s.alloc(static_cast<std::size_t>(nodes) * kSlot, 4096);
        counters = s.alloc(4096, 4096);
      },
      [&](Context& ctx) {
        std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(ctx.id()));
        const int n = ctx.nodes();
        const GAddr mine = arr + static_cast<GAddr>(ctx.id()) * kSlot;
        for (GAddr o = 0; o < kSlot; o += 8) {
          ctx.store<std::int64_t>(mine + o, ctx.id() + 1);
        }
        ctx.barrier();
        std::int64_t sum = 0;
        for (int i = 0; i < 16; ++i) {
          const int peer = static_cast<int>(rng() % static_cast<unsigned>(n));
          const GAddr off = static_cast<GAddr>(rng() % (kSlot / 8)) * 8;
          sum += ctx.load<std::int64_t>(arr + static_cast<GAddr>(peer) * kSlot +
                                        off);
          ctx.compute(ns(1 + rng() % 700));
        }
        ASSERT_GT(sum, 0);
        // One 64 B block per lock: ownership only ever moves through the
        // lock hand-off, after the previous holder's release labeled it.
        for (int i = 0; i < 6; ++i) {
          const int l = static_cast<int>(rng() % 4u);
          ctx.lock(l);
          const GAddr slot = counters + static_cast<GAddr>(l) * 64;
          ctx.store<std::int64_t>(slot, ctx.load<std::int64_t>(slot) + 1);
          ctx.unlock(l);
          ctx.compute(ns(1 + rng() % 300));
        }
        ctx.barrier();
        if (ctx.id() == 0) {
          std::int64_t total = 0;
          for (int l = 0; l < 4; ++l) {
            ctx.lock(l);
            total +=
                ctx.load<std::int64_t>(counters + static_cast<GAddr>(l) * 64);
            ctx.unlock(l);
          }
          EXPECT_EQ(total, 6 * n);
        }
      });
}

TEST(SwLrcVersionStateTest, FlatMatchesShardedBitwiseOnStealFreeWorkload) {
  for (const int nodes : {16, 64}) {
    SCOPED_TRACE(::testing::Message() << "nodes=" << nodes);
    const RunResult sharded =
        run_steal_free(SwLrcVersionState::kSharded, nodes, sim::SimPar::kOff, 0);
    const RunResult flat =
        run_steal_free(SwLrcVersionState::kFlat, nodes, sim::SimPar::kOff, 0);
    expect_identical(sharded, flat);
  }
}

TEST(SwLrcVersionStateTest, FlatForcesSerialDegradeShardedWindows) {
  const RunResult flat_serial =
      run_steal_free(SwLrcVersionState::kFlat, 64, sim::SimPar::kOff, 0);
  // Flat under --sim-par=window must silently degrade to the serial loop
  // (supports_window_par() is false) and stay identical.
  const RunResult flat_window =
      run_steal_free(SwLrcVersionState::kFlat, 64, sim::SimPar::kWindow, 1);
  expect_identical(flat_serial, flat_window);
  EXPECT_EQ(flat_window.stats.simpar_windows, 0u);
  // Sharded windows for real on the same workload — and because the
  // workload is steal-free, windowed-sharded == serial-flat bitwise.
  const RunResult sharded_window =
      run_steal_free(SwLrcVersionState::kSharded, 64, sim::SimPar::kWindow, 1);
  expect_identical(flat_serial, sharded_window);
  EXPECT_GT(sharded_window.stats.simpar_windows, 0u);
  EXPECT_GT(sharded_window.stats.simpar_merge_ops, 0u);
  EXPECT_GT(sharded_window.stats.simpar_staged_effects, 0u);
}

// SC with a large invalidation delay pushes the protocol's self-reschedule
// bound past the one-way latency: the derived lookahead goes non-positive
// and the runtime must keep the engine serial (zero-lookahead degeneracy
// at the runtime layer).
TEST(ParallelEngineEdge, NonPositiveLookaheadStaysSerial) {
  const SimTime delay = us(30);  // bound us(32) > oneway us(20)
  const RunResult serial =
      run_random(ProtocolKind::kSC, 4096, 16, net::NotifyMode::kPolling,
                 sim::SimPar::kOff, 0, delay);
  const RunResult window =
      run_random(ProtocolKind::kSC, 4096, 16, net::NotifyMode::kPolling,
                 sim::SimPar::kWindow, 1, delay);
  expect_identical(serial, window);
  EXPECT_EQ(window.stats.simpar_windows, 0u);
}

// A shrunken-but-positive lookahead (delay just under the one-way floor)
// still windows correctly.
TEST(ParallelEngineEdge, ShrunkenLookaheadStillIdentical) {
  const SimTime delay = us(17);  // lookahead us(1)
  const RunResult serial =
      run_random(ProtocolKind::kSC, 64, 64, net::NotifyMode::kPolling,
                 sim::SimPar::kOff, 0, delay);
  const RunResult window =
      run_random(ProtocolKind::kSC, 64, 64, net::NotifyMode::kPolling,
                 sim::SimPar::kWindow, 1, delay);
  expect_identical(serial, window);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ParallelEngineIdentity,
                         ::testing::Values(ProtocolKind::kSC,
                                           ProtocolKind::kSWLRC,
                                           ProtocolKind::kHLRC,
                                           ProtocolKind::kMWLRC),
                         [](const auto& info) { return pname(info.param); });

}  // namespace
}  // namespace dsm
