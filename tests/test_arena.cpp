// Tests for the per-worker slab arena (common/arena.hpp): size-class
// recycling, wholesale reset semantics, heap fallback for oversized
// requests, per-thread isolation, the Bytes buffer's vector-compatible
// semantics (zero-fill on resize in particular — the property that keeps
// arena mode bitwise identical to heap mode), and finally the end-to-end
// guarantee itself: full protocol x granularity sweeps under --alloc=arena
// and --alloc=heap must produce identical results.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "harness/parallel_harness.hpp"

namespace dsm {
namespace {

/// Restores the process-wide allocator switch no matter how a test exits.
struct AllocModeGuard {
  bool prev = Arena::enabled();
  ~AllocModeGuard() { Arena::set_enabled(prev); }
};

TEST(Arena, RoundsUpToPowerOfTwoClasses) {
  Arena a;
  const Arena::Block b1 = a.allocate(1);
  EXPECT_EQ(b1.cap, 16u);  // minimum class
  const Arena::Block b2 = a.allocate(17);
  EXPECT_EQ(b2.cap, 32u);
  const Arena::Block b3 = a.allocate(4096);
  EXPECT_EQ(b3.cap, 4096u);
  const Arena::Block b4 = a.allocate(4097);
  EXPECT_EQ(b4.cap, 8192u);
  EXPECT_EQ(a.bytes_in_use(), 16u + 32u + 4096u + 8192u);
  EXPECT_EQ(a.heap_fallbacks(), 0u);
}

TEST(Arena, FreeListRecyclesSameClass) {
  Arena a;
  const Arena::Block b = a.allocate(1000);  // 1024 class
  std::byte* p = b.ptr;
  a.deallocate(b.ptr, b.cap, b.gen);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // Same class comes back off the free list — same pointer, no new slab.
  const Arena::Block b2 = a.allocate(600);
  EXPECT_EQ(b2.ptr, p);
  EXPECT_EQ(a.slab_count(), 1u);
}

TEST(Arena, ResetRewindsWithoutReleasingSlabs) {
  Arena a;
  const Arena::Block b = a.allocate(1 << 16);
  std::byte* first = b.ptr;
  const std::uint32_t old_gen = b.gen;
  const std::uint64_t slabs = a.slab_count();
  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.slab_count(), slabs);  // memory retained...
  EXPECT_EQ(a.resets(), 1u);
  EXPECT_NE(a.generation(), old_gen);
  // ...and the next allocation reuses it from offset 0.
  const Arena::Block b2 = a.allocate(1 << 16);
  EXPECT_EQ(b2.ptr, first);
}

TEST(Arena, ResetTrimsSlabsBeyondHighWaterMark) {
  Arena a;
  // Three max-class allocations force three dedicated slabs.
  for (int i = 0; i < 3; ++i) a.allocate(Arena::kMaxClass);
  const std::uint64_t slabs_before = a.slab_count();
  EXPECT_GE(slabs_before, 3u);
  // The finished generation reached every slab: nothing to trim.
  a.reset();
  EXPECT_EQ(a.slab_count(), slabs_before);
  EXPECT_EQ(a.bytes_trimmed(), 0u);
  // A small generation leaves the tail slabs untouched; the next reset
  // returns them to the OS, keeping one slab for the steady state.
  a.allocate(64);
  a.reset();
  EXPECT_EQ(a.slab_count(), 1u);
  EXPECT_GT(a.bytes_trimmed(), 0u);
  // An empty generation must not trim the last retained slab.
  a.reset();
  EXPECT_EQ(a.slab_count(), 1u);
}

TEST(Arena, StaleDeallocateAfterResetIsIgnored) {
  Arena a;
  const Arena::Block b = a.allocate(256);
  a.reset();
  // The block's memory was reclaimed wholesale; a late free must not
  // poison the new generation's free lists.
  a.deallocate(b.ptr, b.cap, b.gen);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  const Arena::Block b2 = a.allocate(256);
  const Arena::Block b3 = a.allocate(256);
  EXPECT_NE(b2.ptr, b3.ptr);  // a poisoned free list would alias these
}

TEST(Arena, OversizedRequestsFallBackToHeap) {
  Arena a;
  const Arena::Block b = a.allocate(Arena::kMaxClass + 1);
  EXPECT_EQ(b.ptr, nullptr);
  EXPECT_EQ(a.heap_fallbacks(), 1u);
  // The Bytes type completes the fallback: heap storage, usable as normal.
  Arena* prev = Arena::install(&a);
  {
    Bytes big(Arena::kMaxClass + 1);
    EXPECT_FALSE(big.arena_backed());
    EXPECT_EQ(big.size(), Arena::kMaxClass + 1);
    big[Arena::kMaxClass] = std::byte{42};
  }
  Arena::install(prev);
  EXPECT_EQ(a.heap_fallbacks(), 2u);
}

TEST(Arena, PerThreadIsolation) {
  // Each thread's installed arena is invisible to the others; buffers
  // allocated on a worker come from that worker's arena alone.
  Arena* main_before = Arena::install(nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      ArenaScope scope;
      ASSERT_EQ(Arena::current(), &scope.arena());
      std::vector<Bytes> bufs;
      for (int i = 0; i < 64; ++i) {
        bufs.emplace_back(std::size_t{1024});
        EXPECT_TRUE(bufs.back().arena_backed());
      }
      EXPECT_EQ(scope.arena().bytes_in_use(), 64u * 1024u);
      bufs.clear();
      EXPECT_EQ(scope.arena().bytes_in_use(), 0u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Arena::current(), nullptr);  // workers' installs stayed theirs
  Arena::install(main_before);
}

TEST(Bytes, ResizeZeroFillsRecycledArenaMemory) {
  ArenaScope scope;
  // Dirty a block, free it, then get it back via the free list: resize()
  // must still hand out zeroed bytes, exactly like a fresh std::vector.
  {
    Bytes dirty(std::size_t{512});
    std::memset(dirty.data(), 0xAB, 512);
  }
  Bytes clean(std::size_t{512});
  for (std::size_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(clean[i], std::byte{0}) << "offset " << i;
  }
}

TEST(Bytes, VectorCompatibleSemantics) {
  ArenaScope scope;
  Bytes b;
  EXPECT_TRUE(b.empty());
  b.resize(10);
  EXPECT_EQ(b.size(), 10u);
  b[3] = std::byte{7};
  // Shrink keeps data; re-grow zero-fills only the grown tail.
  b.resize(4);
  b.resize(10);
  EXPECT_EQ(b[3], std::byte{7});
  EXPECT_EQ(b[9], std::byte{0});
  // Append across a regrow preserves the prefix.
  const std::byte chunk[64] = {};
  for (int i = 0; i < 10; ++i) b.append(chunk, sizeof(chunk));
  EXPECT_EQ(b.size(), 10u + 640u);
  EXPECT_EQ(b[3], std::byte{7});
  // Copy is deep; move steals.
  Bytes c = b;
  EXPECT_NE(c.data(), b.data());
  EXPECT_EQ(c.size(), b.size());
  EXPECT_TRUE(std::memcmp(c.data(), b.data(), c.size()) == 0);
  const std::byte* p = c.data();
  Bytes m = std::move(c);
  EXPECT_EQ(m.data(), p);
  EXPECT_TRUE(c.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(Bytes, HeapModeWorksWithoutAnyArena) {
  AllocModeGuard guard;
  Arena::set_enabled(false);
  ArenaScope scope;  // installed but dormant
  EXPECT_EQ(Arena::current(), nullptr);
  Bytes b(std::size_t{256});
  EXPECT_FALSE(b.arena_backed());
  EXPECT_EQ(scope.arena().bytes_in_use(), 0u);
  b.resize(1024);
  EXPECT_EQ(b[512], std::byte{0});
}

// ------------------------------------------------------------------
// The headline guarantee: --alloc=arena vs --alloc=heap is bitwise
// identical across the full protocol x granularity matrix.  (The arena
// relocates buffers; it must never change their contents, sizes, or any
// simulated cost derived from them.)

void expect_identical(const harness::ExpResult& a, const harness::ExpResult& b,
                      const harness::ExpKey& k) {
  SCOPED_TRACE(k.app + " " + to_string(k.proto) + " " +
               std::to_string(k.gran));
  EXPECT_EQ(a.parallel_time, b.parallel_time);
  EXPECT_EQ(std::memcmp(&a.speedup, &b.speedup, sizeof(double)), 0);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
  EXPECT_EQ(a.stats.payload_bytes, b.stats.payload_bytes);
  EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
  EXPECT_EQ(a.stats.sim_yields, b.stats.sim_yields);
  EXPECT_EQ(a.stats.replicated_bytes, b.stats.replicated_bytes);
  EXPECT_EQ(a.stats.protocol_meta_bytes, b.stats.protocol_meta_bytes);
  EXPECT_EQ(a.stats.peak_twin_bytes, b.stats.peak_twin_bytes);
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size());
  for (std::size_t n = 0; n < a.stats.node.size(); ++n) {
    EXPECT_EQ(
        std::memcmp(&a.stats.node[n], &b.stats.node[n], sizeof(NodeStats)), 0)
        << "node " << n;
  }
}

TEST(ArenaVsHeap, ProtocolSweepIsBitwiseIdentical) {
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC, ProtocolKind::kMWLRC};
  const std::size_t grains[] = {64, 256, 1024, 4096};
  // Two apps with different sharing patterns, and two seeds so the sweep
  // is not a single fixed trajectory through the protocols.
  const auto keys =
      harness::ParallelHarness::cross({"LU", "FFT"}, protos, grains);
  const std::uint64_t seeds[] = {0x1997'0616ULL, 0xDEADBEEFULL};

  AllocModeGuard guard;
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Arena::set_enabled(true);
    ArenaScope scope;
    harness::Harness arena_h(apps::Scale::kTiny, 4, seed);
    arena_h.set_progress(false);
    for (const auto& k : keys) arena_h.run(k);
    // Every arena-mode run should stay inside the class ladder.
    for (const auto& k : keys) {
      EXPECT_EQ(arena_h.run(k).stats.heap_fallback_allocs, 0u);
    }

    Arena::set_enabled(false);
    harness::Harness heap_h(apps::Scale::kTiny, 4, seed);
    heap_h.set_progress(false);
    for (const auto& k : keys) heap_h.run(k);

    for (const auto& k : keys) {
      expect_identical(arena_h.run(k), heap_h.run(k), k);
    }
  }
}

}  // namespace
}  // namespace dsm
