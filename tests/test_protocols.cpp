// Protocol correctness and behavior tests for SC, SW-LRC, and HLRC across
// coherence granularities.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace dsm {
namespace {

using testing::cfg;
using testing::run;

struct ProtoGran {
  ProtocolKind p;
  std::size_t g;
};

class AllProtocols : public ::testing::TestWithParam<ProtoGran> {};

std::string pg_name(const ::testing::TestParamInfo<ProtoGran>& info) {
  std::string s = to_string(info.param.p);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s + "_" + std::to_string(info.param.g);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllProtocols,
    ::testing::Values(ProtoGran{ProtocolKind::kSC, 64},
                      ProtoGran{ProtocolKind::kSC, 256},
                      ProtoGran{ProtocolKind::kSC, 1024},
                      ProtoGran{ProtocolKind::kSC, 4096},
                      ProtoGran{ProtocolKind::kSWLRC, 64},
                      ProtoGran{ProtocolKind::kSWLRC, 1024},
                      ProtoGran{ProtocolKind::kSWLRC, 4096},
                      ProtoGran{ProtocolKind::kHLRC, 64},
                      ProtoGran{ProtocolKind::kHLRC, 1024},
                      ProtoGran{ProtocolKind::kHLRC, 4096}),
    pg_name);

TEST_P(AllProtocols, InitialDataVisibleEverywhere) {
  const auto [p, g] = GetParam();
  GAddr arr = 0;
  std::array<std::int64_t, 4> seen{};
  run(
      cfg(p, g, 4),
      [&](SetupCtx& s) {
        arr = s.alloc(sizeof(std::int64_t) * 64, 8);
        for (int i = 0; i < 64; ++i) {
          s.write<std::int64_t>(arr + 8 * i, 1000 + i);
        }
      },
      [&](Context& ctx) {
        // Everyone reads a different slot of untouched data.
        const int i = ctx.id() * 16 + 3;
        seen[static_cast<std::size_t>(ctx.id())] =
            ctx.load<std::int64_t>(arr + 8 * i);
      });
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(seen[static_cast<std::size_t>(n)], 1000 + n * 16 + 3);
  }
}

TEST_P(AllProtocols, BarrierPropagatesWrites) {
  const auto [p, g] = GetParam();
  GAddr x = 0;
  std::array<std::int64_t, 4> seen{};
  run(
      cfg(p, g, 4),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        if (ctx.id() == 0) ctx.store<std::int64_t>(x, 77);
        ctx.barrier();
        seen[static_cast<std::size_t>(ctx.id())] = ctx.load<std::int64_t>(x);
      });
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(seen[static_cast<std::size_t>(n)], 77) << "node " << n;
  }
}

TEST_P(AllProtocols, LockHandoffPropagatesWrites) {
  const auto [p, g] = GetParam();
  GAddr x = 0;
  // Token-passing chain: node i adds i+1 under the lock in turn order.
  run(
      cfg(p, g, 4),
      [&](SetupCtx& s) {
        x = s.alloc(16, 8);
        s.write<std::int64_t>(x, 0);
        s.write<std::int64_t>(x + 8, 0);  // turn
      },
      [&](Context& ctx) {
        const int me = ctx.id();
        for (;;) {
          ctx.lock(1);
          const auto turn = ctx.load<std::int64_t>(x + 8);
          if (turn == me) {
            ctx.store<std::int64_t>(x, ctx.load<std::int64_t>(x) + me + 1);
            ctx.store<std::int64_t>(x + 8, turn + 1);
            ctx.unlock(1);
            break;
          }
          ctx.unlock(1);
          ctx.compute(us(50));
        }
        ctx.barrier();
        EXPECT_EQ(ctx.load<std::int64_t>(x), 1 + 2 + 3 + 4);
      });
}

TEST_P(AllProtocols, RepeatedBarrierPhasesAccumulate) {
  const auto [p, g] = GetParam();
  GAddr x = 0;
  const int kPhases = 8;
  run(
      cfg(p, g, 4), [&](SetupCtx& s) { x = s.alloc(8 * 4, 8); },
      [&](Context& ctx) {
        // Each phase: everyone bumps its own slot, barrier, then node 0
        // checks the sum of all slots.
        for (int ph = 1; ph <= kPhases; ++ph) {
          const GAddr mine = x + 8 * static_cast<GAddr>(ctx.id());
          ctx.store<std::int64_t>(mine, ctx.load<std::int64_t>(mine) + 1);
          ctx.barrier();
          if (ctx.id() == 0) {
            std::int64_t sum = 0;
            for (int n = 0; n < 4; ++n) {
              sum += ctx.load<std::int64_t>(x + 8 * n);
            }
            EXPECT_EQ(sum, 4 * ph);
          }
          ctx.barrier();
        }
      });
}

TEST_P(AllProtocols, StatsCountFaultsAndTraffic) {
  const auto [p, g] = GetParam();
  GAddr arr = 0;
  const auto r = run(
      cfg(p, g, 2),
      [&](SetupCtx& s) { arr = s.alloc(4096 * 4, 4096); },
      [&](Context& ctx) {
        if (ctx.id() == 0) {
          for (GAddr a = 0; a < 4096 * 4; a += 8) {
            ctx.store<std::int64_t>(arr + a, 1);
          }
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          std::int64_t sum = 0;
          for (GAddr a = 0; a < 4096 * 4; a += 8) {
            sum += ctx.load<std::int64_t>(arr + a);
          }
          EXPECT_EQ(sum, 4096 / 2);
        }
      });
  const NodeStats t = r.stats.total();
  // Node 1 must fault once per block of the 16 KiB region.
  EXPECT_GE(t.read_faults, 4096u * 4 / g);
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GT(r.stats.traffic_bytes, 4096u * 4);
  EXPECT_GT(r.parallel_time, 0);
}

// ------------------------------------------------------------------
// Protocol-specific behavior.

TEST(ScBehavior, WriteInvalidatesReaders) {
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kSC, 64, 2),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        if (ctx.id() == 1) {
          (void)ctx.load<std::int64_t>(x);
        }
        ctx.barrier();
        if (ctx.id() == 0) {
          ctx.store<std::int64_t>(x, 5);
        }
        ctx.barrier();
        if (ctx.id() == 1) {
          EXPECT_EQ(ctx.load<std::int64_t>(x), 5);
        }
      });
  // Node 1's copy was invalidated by node 0's write: >= 2 read faults at
  // node 1 and >= 1 invalidation.
  EXPECT_GE(r.stats.node[1].read_faults, 2u);
  EXPECT_GE(r.stats.total().invalidations, 1u);
}

TEST(ScBehavior, FalseSharingPingPongAtCoarseGrain) {
  // Two nodes repeatedly write different words of the same 4096-byte block:
  // under SC this ping-pongs; at 64 bytes the words are separate blocks.
  auto ping = [&](std::size_t gran) {
    GAddr base = 0;
    const auto r = run(
        cfg(ProtocolKind::kSC, gran, 2),
        [&](SetupCtx& s) { base = s.alloc(4096, 4096); },
        [&](Context& ctx) {
          const GAddr mine = base + 2048 * static_cast<GAddr>(ctx.id());
          for (int i = 0; i < 50; ++i) {
            ctx.store<std::int64_t>(mine, i);
            ctx.compute(us(5));
          }
        });
    return r.stats.total().write_faults;
  };
  const auto coarse = ping(4096);
  const auto fine = ping(64);
  EXPECT_GT(coarse, 20u);  // stolen repeatedly
  EXPECT_LE(fine, 4u);     // one fault per node, maybe a claim race
}

TEST(HlrcBehavior, ConcurrentWritersMergeAtHome) {
  // Both nodes write disjoint halves of one 4096-byte block concurrently
  // with NO synchronization between the writes (DRF via barrier only).
  GAddr base = 0;
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 4096, 2),
      [&](SetupCtx& s) { base = s.alloc(4096, 4096); },
      [&](Context& ctx) {
        const GAddr mine = base + 2048 * static_cast<GAddr>(ctx.id());
        for (int i = 0; i < 256; ++i) {
          ctx.store<std::int64_t>(mine + 8 * static_cast<GAddr>(i),
                                  100 * (ctx.id() + 1) + i);
        }
        ctx.barrier();
        // Everyone sees both halves.
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(ctx.load<std::int64_t>(base + 8 * i), 100 + i);
          ASSERT_EQ(ctx.load<std::int64_t>(base + 2048 + 8 * i), 200 + i);
        }
      });
  // The non-home writer produced a diff; write faults stayed at ~1/writer.
  EXPECT_GE(r.stats.total().diffs, 1u);
  EXPECT_LE(r.stats.total().write_faults, 6u);
}

TEST(HlrcBehavior, SingleWriterAtHomeNeedsNoDiffs) {
  // LU pattern: each node writes only its own region (becoming its home by
  // first touch), then everyone reads everything after a barrier.
  GAddr base = 0;
  const auto r = run(
      cfg(ProtocolKind::kHLRC, 1024, 4),
      [&](SetupCtx& s) { base = s.alloc(4096 * 4, 4096); },
      [&](Context& ctx) {
        const GAddr mine = base + 4096 * static_cast<GAddr>(ctx.id());
        for (GAddr a = 0; a < 4096; a += 8) {
          ctx.store<std::int64_t>(mine + a, ctx.id());
        }
        ctx.barrier();
        std::int64_t sum = 0;
        for (GAddr a = 0; a < 4096 * 4; a += 512) {
          sum += ctx.load<std::int64_t>(base + a);
        }
        EXPECT_EQ(sum, (0 + 1 + 2 + 3) * 8);
      });
  EXPECT_EQ(r.stats.total().diffs, 0u);
  EXPECT_EQ(r.stats.total().twins, 0u);
}

TEST(SwLrcBehavior, ReadersNotInvalidatedUntilAcquire) {
  GAddr x = 0;
  run(
      cfg(ProtocolKind::kSWLRC, 4096, 2),
      [&](SetupCtx& s) {
        x = s.alloc(8, 8);
        s.write<std::int64_t>(x, 1);
      },
      [&](Context& ctx) {
        if (ctx.id() == 1) {
          EXPECT_EQ(ctx.load<std::int64_t>(x), 1);
        }
        ctx.barrier();
        if (ctx.id() == 0) {
          ctx.lock(0);
          ctx.store<std::int64_t>(x, 2);
          ctx.unlock(0);
        }
        ctx.barrier();  // barrier notices invalidate node 1's copy
        if (ctx.id() == 1) {
          EXPECT_EQ(ctx.load<std::int64_t>(x), 2);
        }
      });
}

TEST(SwLrcBehavior, OwnershipMigratesOnWrite) {
  GAddr x = 0;
  const auto r = run(
      cfg(ProtocolKind::kSWLRC, 64, 2),
      [&](SetupCtx& s) { x = s.alloc(8, 8); },
      [&](Context& ctx) {
        for (int round = 0; round < 4; ++round) {
          if (ctx.id() == round % 2) {
            ctx.store<std::int64_t>(x, round);
          }
          ctx.barrier();
        }
        EXPECT_EQ(ctx.load<std::int64_t>(x), 3);
      });
  // Ownership bounced between the nodes: both have write faults.
  EXPECT_GE(r.stats.node[0].write_faults, 1u);
  EXPECT_GE(r.stats.node[1].write_faults, 1u);
}

TEST(FirstTouch, HomeMigrationMakesOwnPartitionLocal) {
  // After first touch, re-accessing one's own partition must be free of
  // messages for every protocol.
  for (ProtocolKind p :
       {ProtocolKind::kSC, ProtocolKind::kSWLRC, ProtocolKind::kHLRC}) {
    GAddr base = 0;
    std::uint64_t msgs_after_first_pass = 0, msgs_final = 0;
    DsmConfig c = cfg(p, 1024, 4);
    testing::LambdaApp app(
        [&](SetupCtx& s) { base = s.alloc(4096 * 4, 4096); },
        [&](Context& ctx) {
          const GAddr mine = base + 4096 * static_cast<GAddr>(ctx.id());
          for (GAddr a = 0; a < 4096; a += 8) {
            ctx.store<std::int64_t>(mine + a, 1);
          }
          ctx.barrier();
          // Second pass over own partition: all local now.
          for (GAddr a = 0; a < 4096; a += 8) {
            ctx.store<std::int64_t>(mine + a,
                                    ctx.load<std::int64_t>(mine + a) + 1);
          }
        });
    Runtime rt(c);
    const auto r = rt.run(app);
    msgs_final = r.stats.messages;
    // First pass: at most claim traffic (blocks homed elsewhere initially)
    // plus barrier messages.  Second pass adds only the barrier that
    // already happened.  Weak but meaningful bound: every block claimed by
    // a non-static-home node costs a couple of messages; there are 16
    // blocks; the run must not exceed a small multiple of that.
    (void)msgs_after_first_pass;
    EXPECT_LE(msgs_final, 16u * 4 + 30u) << to_string(p);
  }
}

TEST(Granularity, ReadFaultsScaleInverselyWithBlockSize) {
  // The LU effect (paper Table 3): 4x granularity => ~4x fewer read misses.
  auto faults_at = [&](std::size_t gran) {
    GAddr base = 0;
    const auto r = run(
        cfg(ProtocolKind::kSC, gran, 2),
        [&](SetupCtx& s) { base = s.alloc(64 * 1024, 4096); },
        [&](Context& ctx) {
          if (ctx.id() == 0) {
            for (GAddr a = 0; a < 64 * 1024; a += 8) {
              ctx.store<std::int64_t>(base + a, 7);
            }
          }
          ctx.barrier();
          if (ctx.id() == 1) {
            for (GAddr a = 0; a < 64 * 1024; a += 8) {
              (void)ctx.load<std::int64_t>(base + a);
            }
          }
        });
    return r.stats.node[1].read_faults;
  };
  const auto f64 = faults_at(64);
  const auto f256 = faults_at(256);
  const auto f4096 = faults_at(4096);
  EXPECT_EQ(f64, 1024u);
  EXPECT_EQ(f256, 256u);
  EXPECT_EQ(f4096, 16u);
}

}  // namespace
}  // namespace dsm

namespace dsm {
namespace {

using testing::cfg;

class NoMigration : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(NoMigration, CorrectWithStaticHomes) {
  // The first-touch ablation: all blocks stay at their static homes.
  DsmConfig c = cfg(GetParam(), 256, 4);
  c.first_touch = false;
  GAddr arr = 0;
  testing::LambdaApp app(
      [&](SetupCtx& s) { arr = s.alloc(8 * 64, 8); },
      [&](Context& ctx) {
        for (int round = 0; round < 3; ++round) {
          for (int i = ctx.id(); i < 64; i += 4) {
            const GAddr a = arr + 8 * static_cast<GAddr>(i);
            ctx.store<std::int64_t>(a, ctx.load<std::int64_t>(a) + 1);
          }
          ctx.barrier();
        }
        if (ctx.id() == 0) {
          for (int i = 0; i < 64; ++i) {
            ASSERT_EQ(ctx.load<std::int64_t>(arr + 8 * i), 3);
          }
        }
      });
  Runtime rt(c);
  rt.run(app);
}

TEST_P(NoMigration, StaticHomesCostMoreTraffic) {
  // Producer/consumer rounds: everyone rewrites its partition and a
  // neighbor reads it.  With first-touch the writer IS the home (writes
  // free under HLRC, 2-hop reads under SC); with static homes every round
  // pays diff/writeback traffic through a third party.
  if (GetParam() == ProtocolKind::kSWLRC) {
    // Expected, permanent skip (the suite's only one; CI lists it as
    // "1 skipped"): ownership follows the writer regardless of home
    // placement, so migration barely changes SW-LRC traffic in this
    // pattern and the "static homes cost more" premise does not apply.
    GTEST_SKIP() << "SW-LRC ownership migrates with the writer; home "
                    "placement is immaterial to this traffic pattern";
  }
  auto traffic = [&](bool ft) {
    DsmConfig c = cfg(GetParam(), 1024, 4);
    c.first_touch = ft;
    GAddr arr = 0;
    testing::LambdaApp app(
        [&](SetupCtx& s) { arr = s.alloc(4096 * 4, 4096); },
        [&](Context& ctx) {
          const GAddr mine = arr + 4096 * static_cast<GAddr>(ctx.id());
          const GAddr next =
              arr + 4096 * static_cast<GAddr>((ctx.id() + 1) % 4);
          for (int round = 0; round < 8; ++round) {
            for (GAddr a = 0; a < 4096; a += 8) {
              ctx.store<std::int64_t>(mine + a, round);
            }
            ctx.barrier();
            std::int64_t sum = 0;
            for (GAddr a = 0; a < 4096; a += 64) {
              sum += ctx.load<std::int64_t>(next + a);
            }
            EXPECT_EQ(sum, 64 * round);
            ctx.barrier();
          }
        });
    Runtime rt(c);
    return rt.run(app).stats.traffic_bytes;
  };
  EXPECT_LT(traffic(true), traffic(false));
}

INSTANTIATE_TEST_SUITE_P(Protocols, NoMigration,
                         ::testing::Values(ProtocolKind::kSC,
                                           ProtocolKind::kSWLRC,
                                           ProtocolKind::kHLRC),
                         [](const ::testing::TestParamInfo<ProtocolKind>& i) {
                           std::string s = to_string(i.param);
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace dsm
