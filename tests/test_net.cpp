// Tests for the network model: the paper's §3 microbenchmark calibration,
// FIFO delivery, polling vs interrupt notification semantics, traffic
// accounting.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace dsm::net {
namespace {

sim::Engine::Options eopts(int nodes) {
  sim::Engine::Options o;
  o.nodes = nodes;
  o.quantum = ns(2000);
  o.stack_bytes = 128 * 1024;
  return o;
}

// Paper §3: "A microbenchmark shows 4- 64-, 256-, 1K- and 4K-byte messages
// see round-trip times of 40, 61, 100, 256 and 876 us ... bandwidths of
// about 17 MB/sec."
TEST(NetModel, RoundTripMatchesPaperMicrobenchmark) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  const struct { std::size_t bytes; double rt_us; double tol; } cal[] = {
      {4, 40, 0.15}, {64, 61, 0.20}, {256, 100, 0.15},
      {1024, 256, 0.15}, {4096, 876, 0.15},
  };
  for (const auto& c : cal) {
    const double rt = static_cast<double>(net.roundtrip(c.bytes)) / 1000.0;
    EXPECT_NEAR(rt, c.rt_us, c.rt_us * c.tol) << "size " << c.bytes;
  }
}

TEST(NetModel, StreamingBandwidthNear17MBs) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  const double bw = net.streaming_bandwidth_mbs(4096);
  EXPECT_GT(bw, 14.0);
  EXPECT_LT(bw, 21.0);
}

TEST(NetModel, LatencyMonotonicInSize) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  SimTime prev = 0;
  for (std::size_t s = 0; s <= 8192; s += 64) {
    const SimTime l = net.oneway_latency(s);
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST(Network, DeliversToBlockedReceiverImmediately) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  bool got = false;
  SimTime recv_time = 0;
  net.set_handler([&](Message& m) {
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.type, 7);
    got = true;
    recv_time = e.now(1);
    e.notify(1);
  });
  e.spawn(0, [&] { net.send(1, 7, 123); });
  e.spawn(1, [&] { e.block([&] { return got; }, "wait msg"); });
  e.run();
  EXPECT_TRUE(got);
  // Received at about one one-way latency (plus dispatch charge).
  EXPECT_GE(recv_time, net.oneway_latency(0));
  EXPECT_LE(recv_time, net.oneway_latency(0) + us(20));
}

TEST(Network, FifoPerChannel) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  std::vector<std::uint64_t> got;
  net.set_handler([&](Message& m) {
    got.push_back(m.arg[0]);
    e.notify(1);
  });
  e.spawn(0, [&] {
    // A big message then a small one: the small one must NOT overtake.
    net.send(1, 1, 100, 0, 0, 0, dsm::Bytes(4096));
    net.send(1, 1, 101);
  });
  e.spawn(1, [&] { e.block([&] { return got.size() == 2; }, "wait 2"); });
  e.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{100, 101}));
}

TEST(Network, PollingServicesAtYieldPoints) {
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kPolling);
  SimTime handled_at = -1;
  net.set_handler([&](Message&) { handled_at = e.now(1); });
  e.spawn(0, [&] { net.send(1, 1, 1); });
  e.spawn(1, [&] {
    // Busy compute well past the arrival; message is serviced at a yield.
    for (int i = 0; i < 100; ++i) {
      e.charge(us(2));
      e.maybe_yield();
    }
  });
  e.run();
  EXPECT_GE(handled_at, net.oneway_latency(0));
  // Serviced within a few quanta of arrival.
  EXPECT_LE(handled_at, net.oneway_latency(0) + us(40));
}

TEST(Network, InterruptAddsSignalLatencyWhileRunning) {
  NetParams p;
  SimTime handled_poll = 0, handled_intr = 0;
  for (int mode = 0; mode < 2; ++mode) {
    sim::Engine e(eopts(2));
    Network net(e, p, mode ? NotifyMode::kInterrupt : NotifyMode::kPolling);
    SimTime handled = -1;
    net.set_handler([&](Message&) { handled = e.now(1); });
    e.spawn(0, [&] { net.send(1, 1, 1); });
    e.spawn(1, [&] {
      for (int i = 0; i < 200; ++i) {
        e.charge(us(2));
        e.maybe_yield();
      }
    });
    e.run();
    (mode ? handled_intr : handled_poll) = handled;
  }
  // Interrupt service must lag polling service by roughly the signal cost.
  EXPECT_GT(handled_intr, handled_poll + p.interrupt_latency / 2);
}

TEST(Network, InterruptToBlockedNodeIsImmediate) {
  // While blocked inside the runtime, interrupts are disabled and the
  // runtime polls: no 70 us penalty.
  sim::Engine e(eopts(2));
  Network net(e, NetParams{}, NotifyMode::kInterrupt);
  SimTime handled_at = -1;
  bool got = false;
  net.set_handler([&](Message&) {
    handled_at = e.now(1);
    got = true;
    e.notify(1);
  });
  e.spawn(0, [&] { net.send(1, 1, 1); });
  e.spawn(1, [&] { e.block([&] { return got; }, "wait"); });
  e.run();
  EXPECT_LE(handled_at, net.oneway_latency(0) + us(10));
}

TEST(Network, TrafficAccounting) {
  sim::Engine e(eopts(2));
  NetParams p;
  Network net(e, p, NotifyMode::kPolling);
  net.set_handler([&](Message&) {});
  e.spawn(0, [&] {
    net.send(1, 1, 0, 0, 0, 0, dsm::Bytes(100));
    net.send(1, 1, 0);
  });
  e.spawn(1, [&] { e.charge(ms(5)); });
  e.run();
  EXPECT_EQ(net.traffic(0).messages_sent, 2u);
  EXPECT_EQ(net.traffic(0).payload_bytes, 100u);
  EXPECT_EQ(net.traffic(0).bytes_sent, 100u + 2 * p.header_bytes);
  EXPECT_EQ(net.total_traffic().messages_sent, 2u);
}

TEST(Network, SenderChargedOccupancy) {
  sim::Engine e(eopts(2));
  NetParams p;
  Network net(e, p, NotifyMode::kPolling);
  net.set_handler([&](Message&) {});
  e.spawn(0, [&] { net.send(1, 1, 0); });
  e.spawn(1, [&] { e.charge(ms(1)); });
  e.run();
  EXPECT_GE(e.now(0), p.send_occupancy);
}

}  // namespace
}  // namespace dsm::net
