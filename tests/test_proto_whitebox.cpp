// White-box protocol tests: drive the protocol objects directly on top of
// engine + network + memory, without the Runtime/Context layer.  This
// pins the layering (protocols depend only on ProtoEnv) and asserts
// specific state-machine mechanics the application tests only exercise
// implicitly.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/home_table.hpp"
#include "net/network.hpp"
#include "proto/hlrc_protocol.hpp"
#include "proto/sc_protocol.hpp"
#include "proto/swlrc_protocol.hpp"
#include "runtime/runtime.hpp"
#include <algorithm>

#include "sim/engine.hpp"

namespace dsm::proto {
namespace {

/// Minimal protocol test rig: N nodes, one protocol, raw fault calls.
class Rig {
 public:
  Rig(ProtocolKind kind, int nodes, std::size_t gran)
      : eng_(sim::Engine::Options{nodes, ns(2000), 256 * 1024, 100'000'000}),
        net_(eng_, net::NetParams{}, net::NotifyMode::kPolling),
        space_(nodes, 1u << 20, gran),
        homes_(nodes, space_.num_blocks()),
        wbits_(nodes, space_.size(), gran),
        stats_(static_cast<std::size_t>(nodes)) {
    cfg_.nodes = nodes;
    cfg_.granularity = gran;
    ProtoEnv env;
    env.eng = &eng_;
    env.config = &cfg_;
    env.net = &net_;
    env.space = &space_;
    env.homes = &homes_;
    env.costs = &cfg_.costs;
    env.stats = &stats_;
    env.wbits = &wbits_;
    proto_ = make_protocol(kind, env);
    net_.set_handler([this](net::Message& m) { proto_->handle(m); });
  }

  /// Runs one closure per node as its fiber body.
  void run(std::vector<std::function<void()>> bodies) {
    for (std::size_t n = 0; n < bodies.size(); ++n) {
      eng_.spawn(static_cast<NodeId>(n), std::move(bodies[n]));
    }
    eng_.run();
  }

  /// Chunked virtual sleep: keeps poll points available, like real code.
  void sleep(SimTime t) {
    while (t > 0) {
      const SimTime step = std::min<SimTime>(t, us(2));
      eng_.charge(step);
      eng_.maybe_yield();
      t -= step;
    }
  }

  sim::Engine& eng() { return eng_; }
  net::Network& net() { return net_; }
  mem::AddressSpace& space() { return space_; }
  mem::HomeTable& homes() { return homes_; }
  Protocol& proto() { return *proto_; }
  NodeStats& stats(NodeId n) { return stats_[static_cast<std::size_t>(n)]; }

  // Raw (uninstrumented) data access helpers for assertions.
  std::int64_t peek(NodeId n, GAddr a) {
    std::int64_t v;
    std::memcpy(&v, space_.local(n, a), 8);
    return v;
  }
  void poke(NodeId n, GAddr a, std::int64_t v) {
    std::memcpy(space_.local(n, a), &v, 8);
    // Flag the written words like an instrumented Context::store would, so
    // the bitmap-guided release paths see the write.
    mem::DirtyBitmap::mark(wbits_.row(n), a);
    mem::DirtyBitmap::mark(wbits_.row(n), a + 7);
  }

 private:
  sim::Engine eng_;
  net::Network net_;
  mem::AddressSpace space_;
  mem::HomeTable homes_;
  mem::DirtyBitmap wbits_;
  std::vector<NodeStats> stats_;
  DsmConfig cfg_;
  std::unique_ptr<Protocol> proto_;
};

TEST(ScWhitebox, ReadFaultGrantsReadOnlyTag) {
  Rig rig(ProtocolKind::kSC, 2, 256);
  rig.run({[&] {
             rig.proto().write_fault(3);
             EXPECT_EQ(rig.space().access(0, 3), mem::Access::kReadWrite);
             rig.poke(0, 3 * 256, 77);
             rig.sleep(us(100));
           },
           [&] {
             rig.sleep(ms(1));  // let node 0 go first
             rig.proto().read_fault(3);
             EXPECT_EQ(rig.space().access(1, 3), mem::Access::kReadOnly);
             EXPECT_EQ(rig.peek(1, 3 * 256), 77);
             // Owner downgraded by the recall.
             EXPECT_EQ(rig.space().access(0, 3), mem::Access::kReadOnly);
           }});
}

TEST(ScWhitebox, FirstTouchClaimsHomeForRequester) {
  Rig rig(ProtocolKind::kSC, 4, 64);
  // Block 1's static home is node 1; node 2 touches it first.
  rig.run({[&] {}, [&] {},
           [&] {
             rig.proto().write_fault(1);
             EXPECT_TRUE(rig.homes().is_claimed(1));
             EXPECT_EQ(rig.homes().claimed_home(1), 2);
             EXPECT_EQ(rig.homes().believed_home(2, 1), 2);
           },
           [&] {}});
}

TEST(ScWhitebox, WriteFaultInvalidatesAllSharers) {
  Rig rig(ProtocolKind::kSC, 4, 64);
  rig.run({[&] { rig.proto().read_fault(0); },
           [&] { rig.proto().read_fault(0); },
           [&] { rig.proto().read_fault(0); },
           [&] {
             rig.sleep(ms(2));  // after all readers
             rig.proto().write_fault(0);
             EXPECT_EQ(rig.space().access(3, 0), mem::Access::kReadWrite);
             EXPECT_EQ(rig.space().access(0, 0), mem::Access::kInvalid);
             EXPECT_EQ(rig.space().access(1, 0), mem::Access::kInvalid);
             EXPECT_EQ(rig.space().access(2, 0), mem::Access::kInvalid);
           }});
}

TEST(SwLrcWhitebox, OwnershipMigratesAndReaderKeepsCopy) {
  Rig rig(ProtocolKind::kSWLRC, 2, 256);
  rig.run({[&] {
             rig.proto().write_fault(5);
             rig.poke(0, 5 * 256, 123);
             rig.sleep(us(50));
           },
           [&] {
             rig.sleep(ms(1));
             rig.proto().write_fault(5);  // take ownership
             // Previous owner keeps a READ-ONLY copy (not invalidated).
             EXPECT_EQ(rig.space().access(0, 5), mem::Access::kReadOnly);
             EXPECT_EQ(rig.space().access(1, 5), mem::Access::kReadWrite);
             EXPECT_EQ(rig.peek(1, 5 * 256), 123);  // data travelled
           }});
}

TEST(HlrcWhitebox, DiffsMergeAtHomeOnRelease) {
  Rig rig(ProtocolKind::kHLRC, 3, 256);
  rig.run({[&] {
             // Node 0 writes first: becomes home; in-place writes.
             rig.proto().write_fault(2);
             rig.poke(0, 2 * 256, 11);
             rig.proto().at_release();
             EXPECT_EQ(rig.stats(0).diffs, 0u);  // home needs no diff
           },
           [&] {
             rig.sleep(us(500));
             rig.proto().write_fault(2);  // non-home writer
             rig.poke(1, 2 * 256 + 128, 22);
             rig.proto().at_release();    // flushes the diff, waits for ack
             EXPECT_EQ(rig.stats(1).diffs, 1u);
             // The home's copy now holds both writes.
             EXPECT_EQ(rig.peek(0, 2 * 256), 11);
             EXPECT_EQ(rig.peek(0, 2 * 256 + 128), 22);
           },
           [&] {}});
}

TEST(HlrcWhitebox, AcquireInvalidatesNoticedBlocksOnly) {
  Rig rig(ProtocolKind::kHLRC, 2, 256);
  rig.run({[&] {
             rig.proto().write_fault(1);
             rig.proto().write_fault(7);
             rig.proto().at_release();
           },
           [&] {
             rig.proto().read_fault(1);
             rig.proto().read_fault(4);  // unrelated block
             rig.sleep(ms(2));
             // Simulate an acquire carrying node 0's interval.
             const VectorClock vc = rig.proto().clock_of(0);
             rig.eng().post(rig.eng().now(1), 1, [&] {
               auto ivs = std::vector<Interval>{
                   {0, 1, {{1, 1, 0}, {7, 1, 0}}}};
               rig.proto().apply_acquire(vc, std::move(ivs));
             });
             rig.eng().yield();
             EXPECT_EQ(rig.space().access(1, 1), mem::Access::kInvalid);
             EXPECT_EQ(rig.space().access(1, 4), mem::Access::kReadOnly);
           }});
}

TEST(Whitebox, ProtocolsReportNamesAndLaziness) {
  for (auto [k, name, lazy] :
       {std::tuple{ProtocolKind::kSC, "SC", false},
        std::tuple{ProtocolKind::kSWLRC, "SW-LRC", true},
        std::tuple{ProtocolKind::kHLRC, "HLRC", true},
        std::tuple{ProtocolKind::kMWLRC, "MW-LRC", true}}) {
    Rig rig(k, 2, 64);
    EXPECT_STREQ(rig.proto().name(), name);
    EXPECT_EQ(rig.proto().lazy(), lazy);
    rig.run({[] {}, [] {}});
  }
}

}  // namespace
}  // namespace dsm::proto
