// Service-workload subsystem (src/svc): the deterministic Zipf sampler,
// the exact log-bucketed latency histogram, the key=value app-arg
// channel, and the bitwise-identity guarantees of the request-latency
// digests across every host-side engine mode (serial, --sim-par=window,
// -jN sweep pool, heap vs arena allocator, binary vs calendar queue).
#include <gtest/gtest.h>

#include "apps/app_base.hpp"
#include "common/arena.hpp"
#include "common/histogram.hpp"
#include "common/zipf.hpp"
#include "harness/parallel_harness.hpp"
#include "svc/loadgen.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

// ---------------------------------------------------------------- Zipf --

TEST(SvcZipf, EqualSeedsYieldEqualStreams) {
  ZipfSampler z(1024, 0.9);
  Rng a, b;
  a.reseed(42);
  b.reseed(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z(a), z(b));
}

TEST(SvcZipf, DifferentSeedsDiffer) {
  ZipfSampler z(1024, 0.9);
  Rng a, b;
  a.reseed(1);
  b.reseed(2);
  int diff = 0;
  for (int i = 0; i < 200; ++i) diff += z(a) != z(b) ? 1 : 0;
  EXPECT_GT(diff, 0);
}

TEST(SvcZipf, SkewConcentratesMassOnLowRanks) {
  constexpr std::size_t kN = 64;
  ZipfSampler z(kN, 1.2);
  Rng r;
  r.reseed(7);
  std::vector<int> count(kN, 0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++count[z(r)];
  // Rank 0 carries ~28% of the mass at s=1.2, n=64; the tail rank ~0.2%.
  EXPECT_GT(count[0], kDraws / 8);
  EXPECT_GT(count[0], 10 * count[kN - 1]);
  // Rank-frequency must be front-loaded: the top 8 ranks beat the rest.
  int head = 0;
  for (int k = 0; k < 8; ++k) head += count[k];
  EXPECT_GT(head, kDraws / 2);
}

TEST(SvcZipf, ZeroSkewIsUniform) {
  constexpr std::size_t kN = 16;
  ZipfSampler z(kN, 0.0);
  Rng r;
  r.reseed(9);
  std::vector<int> count(kN, 0);
  constexpr int kDraws = 32000;
  for (int i = 0; i < kDraws; ++i) ++count[z(r)];
  const int per_rank = kDraws / static_cast<int>(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_GT(count[k], per_rank - 400) << "rank " << k;
    EXPECT_LT(count[k], per_rank + 400) << "rank " << k;
  }
}

// ----------------------------------------------------------- histogram --

TEST(SvcHistogram, ExactBelowSixtyFour) {
  LogHistogram h;
  for (int v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  // 32nd order statistic of {0..63} is 31; below 64 buckets are exact.
  EXPECT_EQ(h.value_at_permille(500), 31);
  EXPECT_EQ(h.value_at_permille(1000), 63);
  EXPECT_EQ(h.max(), 63);
}

TEST(SvcHistogram, BucketBoundariesAreContinuous) {
  const std::uint64_t probes[] = {0,    1,    63,   64,     65,
                                  127,  128,  4095, 4096,   65535,
                                  1ull << 40, (1ull << 62) + 12345};
  std::size_t prev = 0;
  for (std::uint64_t v : probes) {
    const std::size_t idx = LogHistogram::index(v);
    ASSERT_LT(idx, LogHistogram::kBuckets);
    // The bucket's upper bound contains the value and maps back to it.
    EXPECT_GE(static_cast<std::uint64_t>(LogHistogram::bucket_upper(idx)), v);
    EXPECT_EQ(LogHistogram::index(
                  static_cast<std::uint64_t>(LogHistogram::bucket_upper(idx))),
              idx);
    EXPECT_GE(idx, prev);  // monotone in the value
    prev = idx;
  }
  // Exact-region identity and the first octave hand-off.
  EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::index(63)), 63);
  EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::index(64)), 64);
}

TEST(SvcHistogram, QuantilesWithinBucketError) {
  LogHistogram h;
  for (int v = 1; v <= 100000; ++v) h.record(v);
  // Quantiles report the bucket upper bound: >= the true order statistic,
  // within the 2^-6 ≈ 1.6% relative bucket width above it.
  const std::int64_t p50 = h.value_at_permille(500);
  EXPECT_GE(p50, 50000);
  EXPECT_LE(p50, 50000 + 50000 / 32);
  const std::int64_t p999 = h.value_at_permille(999);
  EXPECT_GE(p999, 99900);
  EXPECT_LE(p999, 100000);  // clamped by the exact max
  EXPECT_EQ(h.value_at_permille(1000), 100000);
}

TEST(SvcHistogram, MergeMatchesConcatenation) {
  Rng r;
  r.reseed(123);
  LogHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(r.next_u64() >> (20 + (i % 3) * 14));
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  LogHistogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.checksum(), all.checksum());
  for (int p : {1, 500, 990, 999, 1000}) {
    EXPECT_EQ(merged.value_at_permille(p), all.value_at_permille(p)) << p;
  }
}

TEST(SvcHistogram, ChecksumSeparatesDistributions) {
  LogHistogram a, b;
  for (int v = 0; v < 1000; ++v) {
    a.record(v);
    b.record(v + 1);
  }
  EXPECT_NE(a.checksum(), b.checksum());
  LogHistogram c;
  for (int v = 0; v < 1000; ++v) c.record(v);
  EXPECT_EQ(a.checksum(), c.checksum());
}

// ------------------------------------------------------------ app args --

TEST(SvcAppArgs, ParsesKeyValueBindings) {
  apps::AppArgs a;
  EXPECT_EQ(a.set_kv("skew=1.2"), "");
  EXPECT_EQ(a.set_kv("requests=500"), "");
  EXPECT_NE(a.set_kv("no-equals"), "");
  EXPECT_NE(a.set_kv("=orphan"), "");
  EXPECT_DOUBLE_EQ(a.get_double("skew", 0.0), 1.2);
  EXPECT_EQ(a.get_int("requests", 0), 500);
  EXPECT_EQ(a.get_str("missing", "dflt"), "dflt");
  EXPECT_TRUE(a.has("skew"));
  EXPECT_FALSE(a.has("missing"));
}

TEST(SvcAppArgs, UnknownKeyIsRejectedWithItsName) {
  apps::AppArgs a;
  a.set_double("skwe", 1.2);  // typo
  std::string err;
  auto app = apps::find_app("SvcKV")->make_checked(apps::Scale::kTiny, a,
                                                   &err);
  EXPECT_EQ(app, nullptr);
  EXPECT_NE(err.find("skwe"), std::string::npos);
  EXPECT_NE(err.find("SvcKV"), std::string::npos);

  apps::AppArgs good;
  good.set_double("skew", 1.2);
  good.set_int("requests", 100);
  err = "stale";
  auto ok = apps::find_app("SvcKV")->make_checked(apps::Scale::kTiny, good,
                                                  &err);
  EXPECT_NE(ok, nullptr);
  EXPECT_EQ(err, "");
}

TEST(SvcAppArgs, ClassicAppsTakeNoParameters) {
  apps::AppArgs a;
  a.set_int("requests", 100);
  std::string err;
  auto app =
      apps::find_app("LU")->make_checked(apps::Scale::kTiny, a, &err);
  EXPECT_EQ(app, nullptr);
  EXPECT_NE(err.find("requests"), std::string::npos);
}

// ------------------------------------------------------------- loadgen --

TEST(SvcLoadgen, MergedArrivalsAreMonotone) {
  const svc::LoadParams p = svc::LoadParams::preset(apps::Scale::kTiny);
  ZipfSampler z(p.keys, p.zipf_s);
  svc::OpenLoopGen gen(0x1997, 0, p, z);
  SimTime prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto r = gen.next();
    EXPECT_GE(r.at, prev);
    EXPECT_LT(r.key, p.keys);
    prev = r.at;
  }
}

TEST(SvcLoadgen, DeterministicPerNodeStreams) {
  const svc::LoadParams p = svc::LoadParams::preset(apps::Scale::kTiny);
  ZipfSampler z(p.keys, p.zipf_s);
  svc::OpenLoopGen a(0x1997, 2, p, z);
  svc::OpenLoopGen b(0x1997, 2, p, z);
  svc::OpenLoopGen other(0x1997, 3, p, z);
  int same = 0;
  for (int i = 0; i < 500; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    const auto rc = other.next();
    EXPECT_EQ(ra.at, rb.at);
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.is_read, rb.is_read);
    same += (ra.at == rc.at && ra.key == rc.key) ? 1 : 0;
  }
  EXPECT_LT(same, 500);  // different nodes draw different schedules
}

// ----------------------------------------------------- identity sweeps --

struct SvcRun {
  SimTime time = 0;
  std::uint64_t messages = 0;
  std::uint64_t traffic = 0;
  std::uint64_t events = 0;
  LatencySummary lat;
};

SvcRun run_svc(const char* name, ProtocolKind p, std::size_t g,
               const std::function<void(DsmConfig&)>& tweak = {}) {
  const apps::AppInfo* info = apps::find_app(name);
  EXPECT_NE(info, nullptr);
  auto app = info->make(apps::Scale::kTiny);
  DsmConfig c = testing::cfg(p, g, 4);
  c.shared_bytes = 4u << 20;
  c.poll_dilation = info->poll_dilation;
  if (tweak) tweak(c);
  Runtime rt(c);
  const RunResult r = rt.run(*app);
  EXPECT_EQ(app->verify(), "");
  const LatencySummary* l = app->latency();
  EXPECT_NE(l, nullptr);
  SvcRun out;
  out.time = r.parallel_time;
  out.messages = r.stats.messages;
  out.traffic = r.stats.traffic_bytes;
  out.events = r.stats.sim_events;
  out.lat = *l;
  return out;
}

void expect_same(const SvcRun& a, const SvcRun& b, const char* what) {
  EXPECT_EQ(a.time, b.time) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.traffic, b.traffic) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.lat.requests, b.lat.requests) << what;
  EXPECT_EQ(a.lat.checksum, b.lat.checksum) << what;
  EXPECT_EQ(a.lat.p50_ns, b.lat.p50_ns) << what;
  EXPECT_EQ(a.lat.p99_ns, b.lat.p99_ns) << what;
  EXPECT_EQ(a.lat.p999_ns, b.lat.p999_ns) << what;
  EXPECT_EQ(a.lat.max_ns, b.lat.max_ns) << what;
}

TEST(SvcIdentity, WindowEngineMatchesSerialAcrossProtocols) {
  for (ProtocolKind p : {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                         ProtocolKind::kHLRC, ProtocolKind::kMWLRC}) {
    for (std::size_t g : {std::size_t{256}, std::size_t{4096}}) {
      const SvcRun serial = run_svc("SvcKV", p, g);
      const SvcRun window = run_svc("SvcKV", p, g, [](DsmConfig& c) {
        c.sim_par = sim::SimPar::kWindow;
      });
      EXPECT_GT(serial.lat.requests, 0u);
      expect_same(serial, window,
                  (std::string(to_string(p)) + "/" + std::to_string(g))
                      .c_str());
    }
  }
}

TEST(SvcIdentity, WindowEngineMatchesSerialOnQueueAndLease) {
  for (const char* app : {"SvcQueue", "SvcLease"}) {
    const SvcRun serial = run_svc(app, ProtocolKind::kHLRC, 4096);
    const SvcRun window =
        run_svc(app, ProtocolKind::kHLRC, 4096,
                [](DsmConfig& c) { c.sim_par = sim::SimPar::kWindow; });
    EXPECT_GT(serial.lat.requests, 0u);
    expect_same(serial, window, app);
  }
}

TEST(SvcIdentity, HeapAllocatorMatchesArena) {
  const SvcRun arena = run_svc("SvcKV", ProtocolKind::kMWLRC, 256);
  Arena::set_enabled(false);
  const SvcRun heap = run_svc("SvcKV", ProtocolKind::kMWLRC, 256);
  Arena::set_enabled(true);
  expect_same(arena, heap, "alloc");
}

TEST(SvcIdentity, BinaryQueueAndMapTablesMatchDefaultEngine) {
  const SvcRun def = run_svc("SvcKV", ProtocolKind::kHLRC, 256);
  const SvcRun ref = run_svc("SvcKV", ProtocolKind::kHLRC, 256,
                             [](DsmConfig& c) {
                               c.event_queue = sim::EventQueueKind::kBinary;
                               c.block_state = mem::BlockStateKind::kMap;
                             });
  expect_same(def, ref, "engine backend");
}

// Regression: an open-loop node that finishes early arrives at the final
// barrier while the barrier master is still serving requests.  The master
// used to ingest the arriver's own write-notice intervals immediately —
// without the foreign intervals that happen-before them — so its next
// validate applied causally non-closed diffs and a later validate replayed
// an older diff over newer bytes (lost ring-head increments under MW-LRC
// at 4096B, where all 16 ring headers share coherence block 0).  Arrivals
// are now buffered and ingested only at barrier finalize.  This pins the
// exact schedule that exposed the bug: 8 nodes, latency-mode app args.
TEST(SvcQueueConservation, EarlyBarrierArrivalsDoNotLoseWrites) {
  const apps::AppInfo* info = apps::find_app("SvcQueue");
  ASSERT_NE(info, nullptr);
  apps::AppArgs args;
  args.set_double("skew", 0.9);
  args.set_double("rate", 1000.0);
  args.set_int("requests", 300);
  std::string err;
  auto app = info->make_checked(apps::Scale::kTiny, args, &err);
  ASSERT_NE(app, nullptr) << err;
  DsmConfig c = testing::cfg(ProtocolKind::kMWLRC, 4096, 8);
  c.shared_bytes = 8u << 20;
  c.poll_dilation = info->poll_dilation;
  Runtime rt(c);
  rt.run(*app);
  EXPECT_EQ(app->verify(), "");
}

// TSan job coverage (CI filter SvcParallel*): the windowed engine with a
// real multi-worker pool, and the -jN sweep executor, over the service
// apps — the per-node histogram/tally vectors must hold up under actual
// concurrency, not just under the serial window loop.

TEST(SvcParallelEngine, MultiWorkerWindowPoolMatchesSerial) {
  const SvcRun serial = run_svc("SvcKV", ProtocolKind::kSWLRC, 1024);
  const SvcRun pooled = run_svc("SvcKV", ProtocolKind::kSWLRC, 1024,
                                [](DsmConfig& c) {
                                  c.sim_par = sim::SimPar::kWindow;
                                  c.sim_par_workers = 3;
                                });
  expect_same(serial, pooled, "3-worker window pool");
}

TEST(SvcParallelSweep, JobsPoolMatchesSerialWithLatencyDigests) {
  const std::vector<harness::ExpKey> keys = harness::ParallelHarness::cross(
      {"SvcKV", "SvcQueue"},
      std::vector<ProtocolKind>{ProtocolKind::kSC, ProtocolKind::kHLRC},
      std::vector<std::size_t>{1024});

  harness::Harness serial(apps::Scale::kTiny, 4);
  serial.set_progress(false);
  for (const auto& k : keys) serial.run(k);

  harness::Harness par(apps::Scale::kTiny, 4);
  par.set_progress(false);
  harness::ParallelHarness ph(par, 3);
  ph.prewarm(keys);

  for (const auto& k : keys) {
    const auto& a = serial.run(k);
    const auto& b = par.run(k);
    ASSERT_TRUE(a.has_latency);
    ASSERT_TRUE(b.has_latency);
    EXPECT_EQ(a.parallel_time, b.parallel_time);
    EXPECT_EQ(a.stats.messages, b.stats.messages);
    EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
    EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
    EXPECT_EQ(a.latency.checksum, b.latency.checksum);
    EXPECT_EQ(a.latency.p50_ns, b.latency.p50_ns);
    EXPECT_EQ(a.latency.p99_ns, b.latency.p99_ns);
    EXPECT_EQ(a.latency.p999_ns, b.latency.p999_ns);
    EXPECT_GT(a.latency.requests, 0u);
  }
}

// App-arg plumbing end to end: a different skew is a different workload
// (the digests change), and the harness clears its caches when the args
// change so stale results can never leak across parameter settings.

TEST(SvcHarness, AppArgsChangeTheWorkloadAndInvalidateCaches) {
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  apps::AppArgs uniform;
  uniform.set_double("skew", 0.0);
  h.set_app_args(uniform);
  const LatencySummary a =
      h.run("SvcKV", ProtocolKind::kHLRC, 1024).latency;

  apps::AppArgs hot;
  hot.set_double("skew", 1.2);
  h.set_app_args(hot);
  const LatencySummary b =
      h.run("SvcKV", ProtocolKind::kHLRC, 1024).latency;

  EXPECT_EQ(a.requests, b.requests);
  EXPECT_NE(a.checksum, b.checksum);  // the key stream really changed
}

}  // namespace
}  // namespace dsm
