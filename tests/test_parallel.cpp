// Tests for the parallel sweep executor: thread-pool mechanics, the
// Harness's concurrent-caller dedup, and the headline guarantee that a
// -jN sweep is bitwise identical to -j1 (every simulation owns its own
// Engine and virtual clock; the pool only schedules whole simulations).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "harness/parallel_harness.hpp"

namespace dsm {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, NestedSubmitsFinishBeforeWaitIdleReturns) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32 * 8);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultSizeUsesHardwareThreads) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

// ------------------------------------------------------------------
// Harness concurrency.

TEST(ParallelSweep, ConcurrentCallersShareOneCachedResult) {
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  constexpr int kThreads = 8;
  std::vector<const harness::ExpResult*> got(kThreads, nullptr);
  {
    ThreadPool pool(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      pool.submit([&h, &got, i] {
        got[i] = &h.run("LU", ProtocolKind::kHLRC, 4096);
      });
    }
    pool.wait_idle();
  }
  // Dedup means every caller gets the same cache entry, not a re-run.
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[i], got[0]);
  EXPECT_TRUE(got[0]->verified);
}

// ------------------------------------------------------------------
// Determinism: -j1 and -j8 sweeps must agree bit for bit.

void expect_bitwise_equal(const harness::ExpResult& a,
                          const harness::ExpResult& b,
                          const harness::ExpKey& k) {
  SCOPED_TRACE(k.app + " " + to_string(k.proto) + " " +
               std::to_string(k.gran));
  EXPECT_EQ(a.parallel_time, b.parallel_time);
  // Doubles compared bitwise, not approximately: same divisions of the
  // same integers must give the same bits.
  EXPECT_EQ(std::memcmp(&a.speedup, &b.speedup, sizeof(double)), 0);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.traffic_bytes, b.stats.traffic_bytes);
  EXPECT_EQ(a.stats.payload_bytes, b.stats.payload_bytes);
  EXPECT_EQ(a.stats.sim_events, b.stats.sim_events);
  EXPECT_EQ(a.stats.sim_yields, b.stats.sim_yields);
  EXPECT_EQ(a.stats.replicated_bytes, b.stats.replicated_bytes);
  EXPECT_EQ(a.stats.protocol_meta_bytes, b.stats.protocol_meta_bytes);
  EXPECT_EQ(a.stats.peak_twin_bytes, b.stats.peak_twin_bytes);
  ASSERT_EQ(a.stats.node.size(), b.stats.node.size());
  for (std::size_t n = 0; n < a.stats.node.size(); ++n) {
    EXPECT_EQ(std::memcmp(&a.stats.node[n], &b.stats.node[n],
                          sizeof(NodeStats)),
              0)
        << "node " << n;
  }
}

TEST(ParallelSweep, Jobs8MatchesJobs1Bitwise) {
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC};
  const std::size_t grains[] = {256, 4096};
  const auto keys =
      harness::ParallelHarness::cross({"LU", "FFT"}, protos, grains);

  // -j1: plain serial loop.
  harness::Harness serial(apps::Scale::kTiny, 4);
  serial.set_progress(false);
  for (const auto& k : keys) serial.run(k);

  // -j8: same sweep through the pool, cold cache.
  harness::Harness par(apps::Scale::kTiny, 4);
  par.set_progress(false);
  harness::ParallelHarness ph(par, 8);
  EXPECT_EQ(ph.jobs(), 8);
  const auto results = ph.run_all(keys);
  ASSERT_EQ(results.size(), keys.size());

  for (std::size_t i = 0; i < keys.size(); ++i) {
    expect_bitwise_equal(serial.run(keys[i]), *results[i], keys[i]);
    EXPECT_EQ(serial.sequential_time(keys[i].app),
              par.sequential_time(keys[i].app));
  }
}

TEST(ParallelSweep, RunAllReturnsResultsInKeyOrder) {
  const ProtocolKind protos[] = {ProtocolKind::kHLRC};
  const std::size_t grains[] = {1024, 4096};
  const auto keys =
      harness::ParallelHarness::cross({"FFT", "LU"}, protos, grains);
  harness::Harness h(apps::Scale::kTiny, 4);
  h.set_progress(false);
  harness::ParallelHarness ph(h, 4);
  const auto results = ph.run_all(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i], &h.run(keys[i])) << "index " << i;
  }
}

}  // namespace
}  // namespace dsm
