// MW-LRC barrier GC: NoticeStore pruning semantics, bitwise identity of
// --gc=barrier against the no-GC anchor (serial and windowed), bounded
// archive growth over many epochs, and in-run arena recycling.
//
// The windowed fixtures are named ParallelEngineGc* on purpose: the CI
// TSan job's --gtest_filter picks up ParallelEngine* fixtures, so the
// GC-at-window-boundary path gets race-checked without a filter change.
#include <gtest/gtest.h>

#include "archive_stress_app.hpp"
#include "proto/write_notice.hpp"
#include "runtime/runtime.hpp"
#include "test_util.hpp"

namespace dsm {
namespace {

using proto::Interval;
using proto::NoticeStore;
using proto::VectorClock;

Interval iv(NodeId origin, std::uint32_t seq, BlockId b) {
  Interval i;
  i.origin = origin;
  i.seq = seq;
  i.entries.push_back({b, 0, kNoNode});
  return i;
}

TEST(NoticeStoreGc, PruneBelowDropsPrefixAndKeepsIndexing) {
  NoticeStore s(2);
  for (std::uint32_t q = 1; q <= 4; ++q) s.add(iv(0, q, q));
  s.add(iv(1, 1, 99));

  VectorClock frontier;
  frontier.set(0, 2);  // origin 0: seqs 1..2 dead; origin 1: nothing
  EXPECT_EQ(s.prune_below(frontier), 2u);

  // have() keeps the full history height; lookups above the frontier
  // still return the right intervals at their new offsets.
  EXPECT_EQ(s.have()[0], 4u);
  const auto rest = s.after(0, 2);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].seq, 3u);
  EXPECT_EQ(rest[1].seq, 4u);
  EXPECT_EQ(rest[0].entries[0].block, 3u);

  VectorClock vc;
  vc.set(0, 3);
  const auto newer = s.newer_than(vc);
  ASSERT_EQ(newer.size(), 2u);  // (0,4) and (1,1)
  EXPECT_EQ(newer[0].origin, 0);
  EXPECT_EQ(newer[0].seq, 4u);
  EXPECT_EQ(newer[1].origin, 1);
}

TEST(NoticeStoreGc, PruneIsIdempotentAndMonotone) {
  NoticeStore s(1);
  for (std::uint32_t q = 1; q <= 6; ++q) s.add(iv(0, q, q));
  VectorClock f1;
  f1.set(0, 3);
  EXPECT_EQ(s.prune_below(f1), 3u);
  EXPECT_EQ(s.prune_below(f1), 0u);  // same frontier again: nothing left
  VectorClock f2;
  f2.set(0, 5);
  EXPECT_EQ(s.prune_below(f2), 2u);
  EXPECT_EQ(s.total_intervals(), 1u);
  EXPECT_EQ(s.after(0, 5).size(), 1u);
}

TEST(NoticeStoreGc, PruneBeyondStoredIsCappedAndNewAddsStillLand) {
  NoticeStore s(1);
  s.add(iv(0, 1, 1));
  s.add(iv(0, 2, 2));
  VectorClock f;
  f.set(0, 10);  // frontier past the stored history: drop what exists
  EXPECT_EQ(s.prune_below(f), 2u);
  EXPECT_EQ(s.total_intervals(), 0u);
  s.add(iv(0, 3, 3));  // next contiguous seq still appends cleanly
  EXPECT_EQ(s.after(0, 2).size(), 1u);
}

// ---------------------------------------------------------------------
// Whole-run identity and growth bounds on the archive stress driver.

RunResult run_stress(ProtocolKind p, std::size_t gran, int nodes,
                     std::uint64_t seed, GcMode gc, sim::SimPar par,
                     int epochs = 5, std::uint64_t threshold = 1) {
  DsmConfig c = testing::cfg(p, gran, nodes);
  c.seed = seed;
  c.gc = gc;
  c.gc_threshold_bytes = threshold;
  c.sim_par = par;
  bench::ArchiveStressApp app(epochs, 4u << 10);
  Runtime rt(c);
  return rt.run(app);
}

void expect_node_identical(const NodeStats& a, const NodeStats& b, int node) {
  SCOPED_TRACE(::testing::Message() << "node " << node);
  EXPECT_EQ(a.read_faults, b.read_faults);
  EXPECT_EQ(a.write_faults, b.write_faults);
  EXPECT_EQ(a.remote_read_faults, b.remote_read_faults);
  EXPECT_EQ(a.remote_write_faults, b.remote_write_faults);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.block_fetches, b.block_fetches);
  EXPECT_EQ(a.twins, b.twins);
  EXPECT_EQ(a.diffs, b.diffs);
  EXPECT_EQ(a.diff_bytes, b.diff_bytes);
  EXPECT_EQ(a.notices_processed, b.notices_processed);
  EXPECT_EQ(a.lock_acquires, b.lock_acquires);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.compute_ns, b.compute_ns);
  EXPECT_EQ(a.read_stall_ns, b.read_stall_ns);
  EXPECT_EQ(a.write_stall_ns, b.write_stall_ns);
  EXPECT_EQ(a.lock_stall_ns, b.lock_stall_ns);
  EXPECT_EQ(a.barrier_stall_ns, b.barrier_stall_ns);
}

/// Every simulated field must match between --gc=off and --gc=barrier.
/// The memory-telemetry fields GC exists to change (archive/meta bytes)
/// and its own counters are exempt by design — stats.hpp documents the
/// split; the wire-invisibility argument lives in tmlrc_protocol.cpp.
void expect_gc_invisible(const RunResult& off, const RunResult& on) {
  EXPECT_EQ(off.parallel_time, on.parallel_time);
  EXPECT_EQ(off.total_time, on.total_time);
  EXPECT_EQ(off.stats.messages, on.stats.messages);
  EXPECT_EQ(off.stats.traffic_bytes, on.stats.traffic_bytes);
  EXPECT_EQ(off.stats.payload_bytes, on.stats.payload_bytes);
  EXPECT_EQ(off.stats.sim_events, on.stats.sim_events);
  EXPECT_EQ(off.stats.sim_yields, on.stats.sim_yields);
  EXPECT_EQ(off.stats.used_block_bytes, on.stats.used_block_bytes);
  EXPECT_EQ(off.stats.fetched_block_bytes, on.stats.fetched_block_bytes);
  EXPECT_EQ(off.stats.replicated_bytes, on.stats.replicated_bytes);
  EXPECT_EQ(off.stats.peak_twin_bytes, on.stats.peak_twin_bytes);
  EXPECT_EQ(off.stats.max_page_writers, on.stats.max_page_writers);
  EXPECT_EQ(off.stats.max_fine_writers, on.stats.max_fine_writers);
  EXPECT_EQ(off.stats.single_fine_frac, on.stats.single_fine_frac);
  ASSERT_EQ(off.stats.node.size(), on.stats.node.size());
  for (std::size_t i = 0; i < off.stats.node.size(); ++i) {
    expect_node_identical(off.stats.node[i], on.stats.node[i],
                          static_cast<int>(i));
  }
}

struct GcCase {
  std::size_t gran;
  std::uint64_t seed;
  int nodes;
};

class GcIdentity : public ::testing::TestWithParam<GcCase> {};

TEST_P(GcIdentity, BarrierGcIsBitwiseInvisibleSerial) {
  const GcCase p = GetParam();
  const RunResult off = run_stress(ProtocolKind::kMWLRC, p.gran, p.nodes,
                                   p.seed, GcMode::kOff, sim::SimPar::kOff);
  const RunResult on = run_stress(ProtocolKind::kMWLRC, p.gran, p.nodes,
                                  p.seed, GcMode::kBarrier, sim::SimPar::kOff);
  expect_gc_invisible(off, on);
  EXPECT_GT(on.stats.gc_passes, 0u);
  EXPECT_GT(on.stats.gc_bytes_reclaimed, 0u);
  EXPECT_LT(on.stats.peak_diff_archive_bytes,
            off.stats.peak_diff_archive_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcIdentity,
    ::testing::Values(GcCase{64, 1, 16}, GcCase{256, 1, 16},
                      GcCase{1024, 1, 16}, GcCase{4096, 1, 16},
                      GcCase{64, 2, 16}, GcCase{256, 2, 16},
                      GcCase{1024, 2, 16}, GcCase{4096, 2, 16},
                      GcCase{64, 1, 64}, GcCase{1024, 1, 64},
                      GcCase{256, 2, 64}, GcCase{4096, 2, 64}),
    [](const ::testing::TestParamInfo<GcCase>& info) {
      return "g" + std::to_string(info.param.gran) + "_s" +
             std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes);
    });

class ParallelEngineGcIdentity : public ::testing::TestWithParam<GcCase> {};

TEST_P(ParallelEngineGcIdentity, WindowedGcMatchesSerialAndNoGcAnchor) {
  const GcCase p = GetParam();
  const RunResult off_serial = run_stress(
      ProtocolKind::kMWLRC, p.gran, p.nodes, p.seed, GcMode::kOff,
      sim::SimPar::kOff);
  const RunResult on_serial = run_stress(
      ProtocolKind::kMWLRC, p.gran, p.nodes, p.seed, GcMode::kBarrier,
      sim::SimPar::kOff);
  const RunResult on_window = run_stress(
      ProtocolKind::kMWLRC, p.gran, p.nodes, p.seed, GcMode::kBarrier,
      sim::SimPar::kWindow);
  // GC invisibility must hold for the windowed run too...
  expect_gc_invisible(off_serial, on_window);
  // ...and at fixed gc=barrier, the windowed engine must reproduce the
  // serial GC bit for bit, its own counters included.
  EXPECT_EQ(on_window.stats.gc_passes, on_serial.stats.gc_passes);
  EXPECT_EQ(on_window.stats.gc_diffs_freed, on_serial.stats.gc_diffs_freed);
  EXPECT_EQ(on_window.stats.gc_bytes_reclaimed,
            on_serial.stats.gc_bytes_reclaimed);
  EXPECT_EQ(on_window.stats.gc_notices_pruned,
            on_serial.stats.gc_notices_pruned);
  EXPECT_EQ(on_window.stats.diff_archive_bytes,
            on_serial.stats.diff_archive_bytes);
  EXPECT_EQ(on_window.stats.peak_diff_archive_bytes,
            on_serial.stats.peak_diff_archive_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEngineGcIdentity,
    ::testing::Values(GcCase{64, 1, 16}, GcCase{4096, 1, 16},
                      GcCase{256, 2, 16}, GcCase{64, 2, 64}),
    [](const ::testing::TestParamInfo<GcCase>& info) {
      return "g" + std::to_string(info.param.gran) + "_s" +
             std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes);
    });

TEST(GcBoundedGrowth, PeakStaysWithinTwoEpochFootprintsOver50Epochs) {
  // One epoch's archive footprint = what the no-GC run of a single epoch
  // peaks at.  Over 50 epochs, barrier GC must hold the peak within 2x
  // that one-epoch footprint (the epoch in flight plus slack), while the
  // no-GC anchor grows ~linearly and the GC run stays under half its peak.
  const RunResult one = run_stress(ProtocolKind::kMWLRC, 64, 16, 1,
                                   GcMode::kOff, sim::SimPar::kOff, 1);
  const RunResult off50 = run_stress(ProtocolKind::kMWLRC, 64, 16, 1,
                                     GcMode::kOff, sim::SimPar::kOff, 50);
  const RunResult on50 = run_stress(ProtocolKind::kMWLRC, 64, 16, 1,
                                    GcMode::kBarrier, sim::SimPar::kOff, 50);
  ASSERT_GT(one.stats.peak_diff_archive_bytes, 0u);
  EXPECT_LE(on50.stats.peak_diff_archive_bytes,
            2 * one.stats.peak_diff_archive_bytes);
  EXPECT_LE(on50.stats.peak_diff_archive_bytes,
            off50.stats.peak_diff_archive_bytes / 2);
  EXPECT_GE(off50.stats.peak_diff_archive_bytes,
            40 * one.stats.peak_diff_archive_bytes);  // anchor really grows
  EXPECT_EQ(on50.stats.gc_passes, 100u);  // every one of 2x50 barriers
}

TEST(GcArenaRecycling, FreedDiffBuffersAreReusedMidRun) {
  if (!Arena::enabled()) GTEST_SKIP() << "arena allocator disabled";
  ArenaScope scope;
  const RunResult on = run_stress(ProtocolKind::kMWLRC, 64, 16, 1,
                                  GcMode::kBarrier, sim::SimPar::kOff, 10);
  EXPECT_GT(on.stats.gc_bytes_reclaimed, 0u);
  EXPECT_GT(on.stats.arena_recycled_allocs, 0u);
  EXPECT_GT(on.stats.arena_recycled_bytes, 0u);
}

TEST(GcDisabledByDefault, OffModeTouchesNothing) {
  const RunResult off = run_stress(ProtocolKind::kMWLRC, 64, 16, 1,
                                   GcMode::kOff, sim::SimPar::kOff);
  EXPECT_EQ(off.stats.gc_passes, 0u);
  EXPECT_EQ(off.stats.gc_diffs_freed, 0u);
  EXPECT_EQ(off.stats.gc_bytes_reclaimed, 0u);
  EXPECT_EQ(off.stats.gc_notices_pruned, 0u);
  EXPECT_GT(off.stats.peak_diff_archive_bytes, 0u);
}

}  // namespace
}  // namespace dsm
