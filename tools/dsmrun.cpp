// dsmrun — command-line driver: run any registered application under any
// configuration and print the full statistics breakdown.
//
//   dsmrun --app Water-Spatial --protocol hlrc --gran 4096 --nodes 16
//          [--notify poll|intr] [--scale tiny|small|default]
//          [--no-first-touch] [--delay-inv-us N] [--seed N] [--jobs N]
//          [--list]
//
// --app accepts a comma-separated list (or "all"); with --jobs N the
// independent runs execute on N threads and print in request order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/mem_budget.hpp"
#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "trace/trace.hpp"

using namespace dsm;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: dsmrun --app <name>[,<name>...|all] [options]\n"
               "  --protocol sc|swlrc|hlrc|mwlrc (default hlrc)\n"
               "  --gran 64|256|1024|4096|8192 (default 4096)\n"
               "  --nodes N                  (default 16)\n"
               "  --notify poll|intr         (default poll)\n"
               "  --scale tiny|small|default (default small)\n"
               "  --no-first-touch           static round-robin homes\n"
               "  --delay-inv-us N           delayed-consistency SC window\n"
               "  --write-tracking twin-scan|twin-bitmap|bitmap-only\n"
               "                             (default twin-bitmap)\n"
               "  --swlrc-version-state sharded|flat  SW-LRC version labels "
               "(default sharded; flat forces serial DES)\n"
               "  --mem-budget BYTES[K|M|G]  cap concurrent runs by footprint "
               "(0 = unlimited)\n"
               "  --alloc arena|heap         payload/twin/diff allocator "
               "(default arena)\n"
               "  --event-queue binary|calendar  engine scheduling queue "
               "(default calendar)\n"
               "  --block-state map|soa      per-block protocol state backend "
               "(default soa)\n"
               "  --sim-par off|window       intra-run parallel-DES mode "
               "(default $DSM_SIM_PAR or off; bitwise identical)\n"
               "  --sim-par-workers N        window batch threads (0 = auto, "
               "1 = inline)\n"
               "  --gc off|barrier           MW-LRC diff-archive/notice GC "
               "(default $DSM_GC or off; results bitwise identical)\n"
               "  --gc-threshold BYTES[K|M|G]  archive size that arms a "
               "barrier GC pass (default 64K; 0 = every barrier)\n"
               "  --trace off|breakdown|full (also --trace=MODE; default "
               "$DSM_TRACE or off)\n"
               "  --trace-out PATH           full-mode Chrome trace JSON "
               "(default dsm_trace.json)\n"
               "  --app-arg k=v              application parameter "
               "(repeatable; unknown keys are errors —\n"
               "                             e.g. SvcKV: requests, clients, "
               "skew, read-frac, rate,\n"
               "                             keys, segments, slots, "
               "arrivals=poisson|uniform)\n"
               "  --seed N\n"
               "  --jobs N                   run multiple --app entries on N "
               "threads\n"
               "  --list                     list applications and exit\n");
  std::exit(2);
}

const char* arg_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing value");
  return argv[++i];
}

std::uint64_t parse_bytes_arg(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) usage("bad --mem-budget value");
  double mult = 1;
  if (*end == 'K' || *end == 'k') mult = 1ull << 10;
  else if (*end == 'M' || *end == 'm') mult = 1ull << 20;
  else if (*end == 'G' || *end == 'g') mult = 1ull << 30;
  else if (*end != '\0') usage("bad --mem-budget suffix");
  return static_cast<std::uint64_t>(v * mult);
}

bool gc_from_string(const std::string& v, GcMode* out) {
  if (v == "off" || v == "0") *out = GcMode::kOff;
  else if (v == "barrier" || v == "1") *out = GcMode::kBarrier;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  ProtocolKind proto = ProtocolKind::kHLRC;
  std::size_t gran = 4096;
  int nodes = 16;
  net::NotifyMode notify = net::NotifyMode::kPolling;
  apps::Scale scale = apps::Scale::kSmall;
  bool first_touch = true;
  SimTime delay_inv = 0;
  WriteTracking tracking = WriteTracking::kTwinBitmap;
  SwLrcVersionState swlrc_state = SwLrcVersionState::kSharded;
  std::uint64_t mem_budget = 0;
  std::uint64_t seed = 0x1997'0616ULL;
  int jobs = 1;
  trace::Mode tmode = trace::mode_from_env(trace::Mode::kOff);
  std::string trace_out = "dsm_trace.json";
  sim::EventQueueKind evq = sim::EventQueueKind::kCalendar;
  mem::BlockStateKind bstate = mem::BlockStateKind::kSoA;
  sim::SimPar sim_par = sim::SimPar::kOff;
  if (const char* e = std::getenv("DSM_SIM_PAR")) {
    sim::sim_par_from_string(e, &sim_par);
  }
  int sim_par_workers = 0;
  apps::AppArgs app_args;
  GcMode gc = GcMode::kOff;
  if (const char* e = std::getenv("DSM_GC")) gc_from_string(e, &gc);
  std::uint64_t gc_threshold = 64u << 10;
  if (const char* e = std::getenv("DSM_GC_THRESHOLD")) {
    gc_threshold = parse_bytes_arg(e);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      for (const auto& info : apps::registry()) {
        std::printf("%s\n", info.name.c_str());
      }
      return 0;
    } else if (a == "--app") {
      app_name = arg_value(argc, argv, i);
    } else if (a == "--protocol") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "sc") proto = ProtocolKind::kSC;
      else if (v == "swlrc") proto = ProtocolKind::kSWLRC;
      else if (v == "hlrc") proto = ProtocolKind::kHLRC;
      else if (v == "mwlrc") proto = ProtocolKind::kMWLRC;
      else usage("unknown protocol");
    } else if (a == "--gran") {
      gran = static_cast<std::size_t>(std::atoll(arg_value(argc, argv, i)));
    } else if (a == "--nodes") {
      nodes = std::atoi(arg_value(argc, argv, i));
    } else if (a == "--notify") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "poll") notify = net::NotifyMode::kPolling;
      else if (v == "intr") notify = net::NotifyMode::kInterrupt;
      else usage("unknown notify mode");
    } else if (a == "--scale") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "tiny") scale = apps::Scale::kTiny;
      else if (v == "small") scale = apps::Scale::kSmall;
      else if (v == "default") scale = apps::Scale::kDefault;
      else usage("unknown scale");
    } else if (a == "--no-first-touch") {
      first_touch = false;
    } else if (a == "--delay-inv-us") {
      delay_inv = us(std::atoll(arg_value(argc, argv, i)));
    } else if (a == "--write-tracking") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "twin-scan") tracking = WriteTracking::kTwinScan;
      else if (v == "twin-bitmap") tracking = WriteTracking::kTwinBitmap;
      else if (v == "bitmap-only") tracking = WriteTracking::kBitmapOnly;
      else usage("unknown write-tracking mode");
    } else if (a == "--swlrc-version-state") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "sharded") swlrc_state = SwLrcVersionState::kSharded;
      else if (v == "flat") swlrc_state = SwLrcVersionState::kFlat;
      else usage("unknown swlrc-version-state (sharded|flat)");
    } else if (a == "--mem-budget") {
      mem_budget = parse_bytes_arg(arg_value(argc, argv, i));
    } else if (a == "--alloc") {
      const std::string v = arg_value(argc, argv, i);
      if (v == "arena") Arena::set_enabled(true);
      else if (v == "heap") Arena::set_enabled(false);
      else usage("unknown allocator (arena|heap)");
    } else if (a == "--event-queue" || a.rfind("--event-queue=", 0) == 0) {
      const std::string v =
          a == "--event-queue" ? arg_value(argc, argv, i) : a.substr(14);
      if (!sim::event_queue_from_string(v, &evq)) {
        usage("unknown event queue (binary|calendar)");
      }
    } else if (a == "--block-state" || a.rfind("--block-state=", 0) == 0) {
      const std::string v =
          a == "--block-state" ? arg_value(argc, argv, i) : a.substr(14);
      if (!mem::block_state_from_string(v, &bstate)) {
        usage("unknown block-state backend (map|soa)");
      }
    } else if (a == "--sim-par" || a.rfind("--sim-par=", 0) == 0) {
      const std::string v =
          a == "--sim-par" ? arg_value(argc, argv, i) : a.substr(10);
      if (!sim::sim_par_from_string(v, &sim_par)) {
        usage("unknown sim-par mode (off|window)");
      }
    } else if (a == "--sim-par-workers") {
      sim_par_workers = std::atoi(arg_value(argc, argv, i));
    } else if (a == "--gc" || a.rfind("--gc=", 0) == 0) {
      const std::string v = a == "--gc" ? arg_value(argc, argv, i)
                                        : a.substr(5);
      if (!gc_from_string(v, &gc)) usage("unknown gc mode (off|barrier)");
    } else if (a == "--gc-threshold") {
      gc_threshold = parse_bytes_arg(arg_value(argc, argv, i));
    } else if (a == "--trace" || a.rfind("--trace=", 0) == 0) {
      const std::string v =
          a == "--trace" ? arg_value(argc, argv, i) : a.substr(8);
      if (!trace::mode_from_string(v, &tmode)) {
        usage("unknown trace mode (off|breakdown|full)");
      }
    } else if (a == "--trace-out") {
      trace_out = arg_value(argc, argv, i);
    } else if (a == "--app-arg" || a.rfind("--app-arg=", 0) == 0) {
      const std::string v =
          a == "--app-arg" ? arg_value(argc, argv, i) : a.substr(10);
      const std::string err = app_args.set_kv(v);
      if (!err.empty()) usage(err.c_str());
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(arg_value(argc, argv, i)));
    } else if (a == "--jobs") {
      jobs = std::atoi(arg_value(argc, argv, i));
      if (jobs <= 0) jobs = ThreadPool::hardware_threads();
    } else {
      usage(("unknown option: " + a).c_str());
    }
  }
  if (app_name.empty()) usage("--app is required");

  // --app takes a comma-separated list, or "all" for the full registry.
  std::vector<std::string> app_names;
  if (app_name == "all") {
    for (const auto& info : apps::registry()) app_names.push_back(info.name);
  } else {
    std::size_t pos = 0;
    while (pos <= app_name.size()) {
      const std::size_t comma = app_name.find(',', pos);
      const std::size_t end = comma == std::string::npos ? app_name.size()
                                                         : comma;
      if (end > pos) app_names.push_back(app_name.substr(pos, end - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (app_names.empty()) usage("--app is required");
  for (const auto& name : app_names) {
    const apps::AppInfo* info = apps::find_app(name);
    if (info == nullptr) {
      usage(("unknown application: " + name + " (try --list)").c_str());
    }
    // Validate the key=value channel up front (unknown keys are usage
    // errors, not mid-run aborts).
    apps::AppArgs probe = app_args;
    std::string err;
    info->make_checked(scale, probe, &err);
    if (!err.empty()) usage(err.c_str());
  }

  // Sequential baseline harness for the speedups (thread-safe, shared).
  // Gets the same app-args: the baseline must run the same workload.
  harness::Harness seq(scale, 1, seed);
  seq.set_progress(false);
  seq.set_app_args(app_args);

  struct RunOutput {
    RunResult result;
    std::string verify;
    double speedup = 0;
    bool has_latency = false;
    LatencySummary latency;
    std::string trace_json;  // full mode: built while the Runtime is alive
  };

  // Per-app trace file when several apps run in one invocation.
  auto trace_path_for = [&](const std::string& app) {
    if (app_names.size() == 1) return trace_out;
    const std::size_t dot = trace_out.rfind('.');
    return dot == std::string::npos
               ? trace_out + "." + app
               : trace_out.substr(0, dot) + "." + app + trace_out.substr(dot);
  };
  std::vector<RunOutput> outs(app_names.size());
  MemBudget budget(mem_budget);
  auto run_one = [&](std::size_t idx) {
    const apps::AppInfo* info = apps::find_app(app_names[idx]);
    // Per-run copy: consumption marks are not thread-safe on a shared
    // instance under --jobs.
    const apps::AppArgs args_copy = app_args;
    auto inst = info->make_checked(scale, args_copy);
    DsmConfig c;
    c.nodes = nodes;
    c.protocol = proto;
    c.granularity = gran;
    c.notify = notify;
    c.seed = seed;
    c.poll_dilation = info->poll_dilation;
    c.first_touch = first_touch;
    c.sc_invalidate_delay = delay_inv;
    c.shared_bytes = 32u << 20;
    c.write_tracking = tracking;
    c.swlrc_version_state = swlrc_state;
    c.trace_mode = tmode;
    c.event_queue = evq;
    c.block_state = bstate;
    c.sim_par = sim_par;
    c.sim_par_workers = sim_par_workers;
    c.gc = gc;
    c.gc_threshold_bytes = gc_threshold;
    RunOutput& o = outs[idx];
    {
      MemReservation reservation(mem_budget != 0 ? &budget : nullptr,
                                 estimated_run_bytes(c));
      Runtime rt(c);
      o.result = rt.run(*inst);
      // Event rings are arena-backed; the JSON must be rendered before the
      // Runtime (and its Tracer) is torn down.
      if (rt.tracer() != nullptr && rt.tracer()->full()) {
        o.trace_json =
            trace::chrome_trace_json(*rt.tracer(), o.result.breakdown);
      }
    }
    // Rewind this thread's arena between runs (pool workers install their
    // own; the serial path uses the main-thread scope below).
    Arena::reset_current();
    o.verify = inst->verify();
    if (const LatencySummary* lat = inst->latency()) {
      o.has_latency = true;
      o.latency = *lat;
    }
    o.speedup = static_cast<double>(seq.sequential_time(app_names[idx])) /
                static_cast<double>(o.result.parallel_time);
  };
  // Arena for the serial path (pool workers bring their own); dormant
  // under --alloc=heap.
  ArenaScope main_arena;
  if (jobs > 1 && app_names.size() > 1) {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < app_names.size(); ++i) {
      pool.submit([&run_one, i] { run_one(i); });
    }
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < app_names.size(); ++i) run_one(i);
  }

  int exit_code = 0;
  for (std::size_t idx = 0; idx < app_names.size(); ++idx) {
    if (idx > 0) std::printf("\n");
    const std::string& one_app = app_names[idx];
    const RunResult& r = outs[idx].result;
    const std::string& v = outs[idx].verify;
    const double speedup = outs[idx].speedup;
    if (!v.empty()) exit_code = 1;
    const NodeStats t = r.stats.total();
    const double n = nodes;
    std::printf("%s  %s  %zuB  %d nodes  %s  %s\n", one_app.c_str(),
                to_string(proto), gran, nodes, net::to_string(notify),
                to_string(tracking));
    std::printf("verification:     %s\n", v.empty() ? "OK" : v.c_str());
    std::printf("parallel time:    %.3f ms (virtual)\n",
                static_cast<double>(r.parallel_time) / 1e6);
    std::printf("speedup:          %.2f\n", speedup);
    if (outs[idx].has_latency) {
      const LatencySummary& l = outs[idx].latency;
      std::printf("latency:          p50 %.1f us   p99 %.1f us   "
                  "p99.9 %.1f us   max %.1f us  (%llu requests)\n",
                  static_cast<double>(l.p50_ns) / 1e3,
                  static_cast<double>(l.p99_ns) / 1e3,
                  static_cast<double>(l.p999_ns) / 1e3,
                  static_cast<double>(l.max_ns) / 1e3,
                  static_cast<unsigned long long>(l.requests));
      std::printf("throughput:       offered %.0f req/s   achieved %.0f "
                  "req/s   (virtual time)\n",
                  l.offered_rps, l.achieved_rps);
    }
    std::printf("per node:         read faults %.0f (remote %.0f)   "
                "write faults %.0f (remote %.0f)\n",
                static_cast<double>(t.read_faults) / n,
                static_cast<double>(t.remote_read_faults) / n,
                static_cast<double>(t.write_faults) / n,
                static_cast<double>(t.remote_write_faults) / n);
    std::printf("                  invalidations %.0f   fetches %.0f   "
                "diffs %.0f   twins %.0f\n",
                static_cast<double>(t.invalidations) / n,
                static_cast<double>(t.block_fetches) / n,
                static_cast<double>(t.diffs) / n,
                static_cast<double>(t.twins) / n);
    std::printf("                  locks %.0f (remote %.0f)   barriers %.0f   "
                "notices %.0f\n",
                static_cast<double>(t.lock_acquires) / n,
                static_cast<double>(t.remote_lock_ops) / n,
                static_cast<double>(t.barriers) / n,
                static_cast<double>(t.notices_processed) / n);
    std::printf("time breakdown:   compute %.2f ms   read stall %.2f ms   "
                "write stall %.2f ms\n",
                static_cast<double>(t.compute_ns) / n / 1e6,
                static_cast<double>(t.read_stall_ns) / n / 1e6,
                static_cast<double>(t.write_stall_ns) / n / 1e6);
    std::printf("                  lock stall %.2f ms   barrier stall %.2f ms\n",
                static_cast<double>(t.lock_stall_ns) / n / 1e6,
                static_cast<double>(t.barrier_stall_ns) / n / 1e6);
    std::printf("network:          %llu messages, %.2f MB\n",
                static_cast<unsigned long long>(r.stats.messages),
                static_cast<double>(r.stats.traffic_bytes) / 1e6);
    std::printf("memory:           replicated %.2f MB   proto meta %.1f KB   "
                "peak twins %.1f KB\n",
                static_cast<double>(r.stats.replicated_bytes) / 1e6,
                static_cast<double>(r.stats.protocol_meta_bytes) / 1e3,
                static_cast<double>(r.stats.peak_twin_bytes) / 1e3);
    if (r.stats.peak_diff_archive_bytes != 0) {
      std::printf("                  diff archive %.1f KB (peak %.1f KB)\n",
                  static_cast<double>(r.stats.diff_archive_bytes) / 1e3,
                  static_cast<double>(r.stats.peak_diff_archive_bytes) / 1e3);
    }
    if (gc != GcMode::kOff && proto == ProtocolKind::kMWLRC) {
      std::printf("gc (%s):     %llu passes   %llu diffs freed   "
                  "%.1f KB reclaimed   %llu notices pruned\n",
                  to_string(gc),
                  static_cast<unsigned long long>(r.stats.gc_passes),
                  static_cast<unsigned long long>(r.stats.gc_diffs_freed),
                  static_cast<double>(r.stats.gc_bytes_reclaimed) / 1e3,
                  static_cast<unsigned long long>(r.stats.gc_notices_pruned));
    }
    std::printf("write tracking:   words compared %llu   scan bytes avoided "
                "%llu   bitmap %.1f KB\n",
                static_cast<unsigned long long>(t.bitmap_words_compared),
                static_cast<unsigned long long>(t.bitmap_scan_bytes_avoided),
                static_cast<double>(r.stats.peak_bitmap_bytes) / 1e3);
    if (Arena::enabled()) {
      std::printf("allocator:        arena  in-use %.1f KB   slabs %llu   "
                  "resets %llu   heap fallbacks %llu   recycled %llu "
                  "(%.1f KB)\n",
                  static_cast<double>(r.stats.arena_bytes_in_use) / 1e3,
                  static_cast<unsigned long long>(r.stats.arena_slabs),
                  static_cast<unsigned long long>(r.stats.arena_resets),
                  static_cast<unsigned long long>(r.stats.heap_fallback_allocs),
                  static_cast<unsigned long long>(
                      r.stats.arena_recycled_allocs),
                  static_cast<double>(r.stats.arena_recycled_bytes) / 1e3);
    } else {
      std::printf("allocator:        heap (--alloc=heap)\n");
    }
    std::printf("engine:           %s queue", sim::to_string(evq));
    if (evq == sim::EventQueueKind::kCalendar) {
      std::printf(" (%llu buckets, max depth %llu, %llu resizes)",
                  static_cast<unsigned long long>(r.stats.evq_buckets),
                  static_cast<unsigned long long>(r.stats.evq_max_bucket_depth),
                  static_cast<unsigned long long>(r.stats.evq_resizes));
    }
    std::printf("   %s state (%llu slots, %.1f KB, %llu resets)\n",
                mem::to_string(bstate),
                static_cast<unsigned long long>(r.stats.soa_slots),
                static_cast<double>(r.stats.soa_table_bytes) / 1e3,
                static_cast<unsigned long long>(r.stats.soa_epoch_resets));
    if (sim_par == sim::SimPar::kWindow) {
      std::printf("parallel DES:     %llu windows, %llu window events "
                  "(%.2f/window, max %llu ev / %llu nodes)   commit: %llu "
                  "staged, %llu merge ops, %.1f ms commit + %.1f ms handoff%s\n",
                  static_cast<unsigned long long>(r.stats.simpar_windows),
                  static_cast<unsigned long long>(r.stats.simpar_window_events),
                  r.stats.simpar_events_per_window(),
                  static_cast<unsigned long long>(
                      r.stats.simpar_max_window_events),
                  static_cast<unsigned long long>(
                      r.stats.simpar_max_window_nodes),
                  static_cast<unsigned long long>(
                      r.stats.simpar_staged_effects),
                  static_cast<unsigned long long>(r.stats.simpar_merge_ops),
                  static_cast<double>(r.stats.simpar_commit_ns) / 1e6,
                  static_cast<double>(r.stats.simpar_handoff_ns) / 1e6,
                  r.stats.simpar_serial_fallback ? "  [serial fallback]" : "");
    }
    if (!r.breakdown.empty()) {
      harness::breakdown_table("virtual time", {{one_app, r.breakdown}})
          .print();
    }
    if (!outs[idx].trace_json.empty()) {
      const std::string path = trace_path_for(one_app);
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        exit_code = 1;
      } else {
        std::fwrite(outs[idx].trace_json.data(), 1,
                    outs[idx].trace_json.size(), f);
        std::fclose(f);
        std::printf("trace:            %s (%.1f KB, chrome://tracing)\n",
                    path.c_str(),
                    static_cast<double>(outs[idx].trace_json.size()) / 1e3);
      }
    }
  }
  return exit_code;
}
