// Ablation: block sizes beyond 4096 bytes — the paper's §7: "We have not
// studied block sizes greater than 4,096 bytes".  8192-byte blocks double
// prefetch AND double false sharing/fragmentation.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  harness::Harness h(scale, nodes);
  bench::banner("Ablation: 8192-byte coherence blocks",
                "paper section 7 (block sizes > 4096 unexamined)", h);

  const char* apps_[] = {"LU", "Water-Nsquared", "Water-Spatial",
                         "Raytrace", "Volrend-Original"};
  {
    // The 4096-byte halves of the table go through the harness cache and
    // parallelize; the 8192-byte runs bypass the cache and stay serial.
    const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kHLRC};
    const std::size_t grains[] = {4096};
    bench::prewarm(h,
                   harness::ParallelHarness::cross(
                       {apps_, apps_ + std::size(apps_)}, protos, grains),
                   bench::jobs_from_args(argc, argv));
  }
  Table t({"Application", "protocol", "4096", "8192"});
  for (const char* app : apps_) {
    for (ProtocolKind p : {ProtocolKind::kSC, ProtocolKind::kHLRC}) {
      const double s4 = h.speedup(app, p, 4096);
      // 8192 is outside the Harness's paper-granularity cache; run direct.
      const apps::AppInfo* info = apps::find_app(app);
      auto inst = info->make(scale);
      DsmConfig c;
      c.nodes = nodes;
      c.protocol = p;
      c.granularity = 8192;
      c.shared_bytes = 16u << 20;
      c.poll_dilation = info->poll_dilation;
      Runtime rt(c);
      const RunResult r = rt.run(*inst);
      DSM_CHECK(inst->verify().empty());
      const double s8 = static_cast<double>(h.sequential_time(app)) /
                        static_cast<double>(r.parallel_time);
      t.add_row({app, to_string(p), fmt(s4, 2), fmt(s8, 2)});
    }
  }
  t.print();
  std::printf("\nHLRC tolerates 8K blocks where its multiple-writer "
              "support covers the added\nfalse sharing; SC pays for it "
              "everywhere except pure single-writer access.\n");
  return 0;
}
