// Ablation (ours): what first-touch home migration buys (paper §2
// describes the mechanism but never isolates it).  Compares speedups and
// traffic with migration on vs static round-robin homes.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const char* apps_[] = {"LU", "Ocean-Rowwise", "Water-Nsquared",
                         "Barnes-Spatial"};
  harness::Harness on(bench::scale_from_env(), bench::nodes_from_env());
  harness::Harness off(bench::scale_from_env(), bench::nodes_from_env());
  off.set_first_touch(false);
  bench::banner("Ablation: first-touch home migration on vs off",
                "paper section 2 (mechanism)", on);
  {
    std::vector<harness::ExpKey> keys;
    for (const char* app : apps_) {
      keys.push_back({app, ProtocolKind::kSC, 256, net::NotifyMode::kPolling});
      keys.push_back({app, ProtocolKind::kHLRC, 4096, net::NotifyMode::kPolling});
    }
    const int jobs = bench::jobs_from_args(argc, argv);
    bench::prewarm(on, keys, jobs);
    bench::prewarm(off, keys, jobs);
  }

  Table t({"Application", "protocol", "speedup (migrate)", "speedup (static)",
           "traffic MB (migrate)", "traffic MB (static)"});
  for (const char* app : apps_) {
    for (ProtocolKind p : {ProtocolKind::kSC, ProtocolKind::kHLRC}) {
      const std::size_t g = p == ProtocolKind::kSC ? 256 : 4096;
      const auto& a = on.run(app, p, g);
      const auto& b = off.run(app, p, g);
      t.add_row({app, to_string(p), fmt(a.speedup, 2), fmt(b.speedup, 2),
                 fmt(static_cast<double>(a.stats.traffic_bytes) / 1e6, 2),
                 fmt(static_cast<double>(b.stats.traffic_bytes) / 1e6, 2)});
    }
  }
  t.print();
  std::printf("\nExpected shape: migration helps most where each node "
              "repeatedly writes its own partition\n(LU blocks, Ocean rows);"
              " HLRC benefits doubly (home writes need no diffs).\n");
  return 0;
}
