// Reproduces Figure 2: speedups with the interrupt notification mechanism
// for LU and Water-Nsquared (plus Water-Spatial, discussed in §5.4),
// against the polling results.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Figure 2: interrupt-mechanism speedups (LU, Water-Nsquared"
                ", Water-Spatial)",
                "paper Figure 2 / section 5.4", h);
  {
    const std::vector<std::string> apps_{"LU", "Water-Nsquared",
                                         "Water-Spatial"};
    auto keys = harness::ParallelHarness::cross(
        apps_, harness::kProtocols, harness::kGrains,
        net::NotifyMode::kPolling);
    const auto intr = harness::ParallelHarness::cross(
        apps_, harness::kProtocols, harness::kGrains,
        net::NotifyMode::kInterrupt);
    keys.insert(keys.end(), intr.begin(), intr.end());
    bench::prewarm(h, keys, bench::jobs_from_args(argc, argv));
  }

  for (const char* app : {"LU", "Water-Nsquared", "Water-Spatial"}) {
    harness::print_speedup_series(h, app, net::NotifyMode::kPolling);
    harness::print_speedup_series(h, app, net::NotifyMode::kInterrupt);
  }

  // Paper: LU at 4096 B is 44-66% better with interrupts than polling.
  std::printf("Interrupt/polling speedup ratio at 4096 B\n\n");
  Table t({"Application", "SC", "SW-LRC", "HLRC"});
  for (const char* app : {"LU", "Water-Nsquared", "Water-Spatial"}) {
    std::vector<std::string> row{app};
    for (ProtocolKind p : harness::kProtocols) {
      const double poll =
          h.speedup(app, p, 4096, net::NotifyMode::kPolling);
      const double intr =
          h.speedup(app, p, 4096, net::NotifyMode::kInterrupt);
      row.push_back(fmt(intr / poll, 2) + "x");
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\n(paper: LU 1.44-1.66x with interrupts at 4096 B)\n");
  return 0;
}
