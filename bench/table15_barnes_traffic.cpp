// Reproduces Table 15: total data traffic for Barnes-Original by protocol
// and granularity (the fragmentation analysis of §5.2.2: HLRC at 4096 B
// moves far more data than SC at 64 B, and SW-LRC roughly doubles HLRC).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Table 15: Barnes-Original data traffic (MB)",
                "paper Table 15", h);
  bench::prewarm(h,
                 harness::ParallelHarness::cross({"Barnes-Original"},
                                                 harness::kProtocols,
                                                 harness::kGrains),
                 bench::jobs_from_args(argc, argv));

  Table t({"Protocol", "64", "256", "1024", "4096"});
  const char* names[] = {"SC", "SW-LRC", "HLRC"};
  double sc64 = 0, hlrc4096 = 0, swlrc4096 = 0;
  for (ProtocolKind p : harness::kProtocols) {
    std::vector<std::string> row{names[static_cast<int>(p)]};
    for (std::size_t g : harness::kGrains) {
      const auto& r = h.run("Barnes-Original", p, g);
      const double mb = static_cast<double>(r.stats.traffic_bytes) / 1e6;
      row.push_back(fmt(mb, 2));
      if (p == ProtocolKind::kSC && g == 64) sc64 = mb;
      if (p == ProtocolKind::kHLRC && g == 4096) hlrc4096 = mb;
      if (p == ProtocolKind::kSWLRC && g == 4096) swlrc4096 = mb;
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nHLRC-4096 / SC-64 traffic ratio: %.1fx "
              "(paper: ~25x on the full input)\n", hlrc4096 / sc64);
  std::printf("SW-LRC-4096 / HLRC-4096 ratio:   %.1fx (paper: ~2x)\n",
              swlrc4096 / hlrc4096);
  return 0;
}
