// Service-workload latency and throughput figure (src/svc, DESIGN.md
// §5i): the three DSM-backed stores (hash map / MPMC ring queue / lease
// table) under open-loop Zipfian request traffic, for every protocol and
// the paper's fine/coarse granularity pair.  Request latency is the
// difference of two virtual-clock readings (completion minus scheduled
// arrival), collected into the exact log-bucketed integer histogram, so
// p50/p99/p99.9 are bitwise deterministic across --jobs, --sim-par,
// --alloc and --event-queue (gated in wallclock_sweep and test_svc.cpp;
// this binary gates the digests' internal sanity).
//
// Two passes per protocol x granularity:
//   * latency: a fixed sub-saturation arrival rate (app-arg rate, below
//     the slowest configuration's measured capacity) — percentiles
//     measure protocol-induced stall, not standing queues;
//   * saturation: arrivals far above capacity — every request queues,
//     and achieved req/s is the store's service capacity under that
//     protocol/granularity.
// An idle polling node still costs one poll per 2 us quantum of virtual
// time, so the latency pass also caps requests per node to bound its
// virtual (and therefore host) duration.
// The latency pass sweeps Zipf skew s in {0, 0.9, 1.2}: skew concentrates
// writes on a few hot segments, which is exactly the false-sharing
// amplifier coherence granularity controls.
//
// Writes BENCH_service.json and BENCH_service.csv.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.hpp"

namespace {

struct Row {
  std::string label;     // table/CSV label
  std::string app;
  const char* mode;      // "latency" | "saturation"
  double skew;
  dsm::ProtocolKind proto;
  std::size_t gran;
  const dsm::harness::ExpResult* res;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  const int jobs = bench::jobs_from_args(argc, argv);
  bench::alloc_from_args(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<ProtocolKind> protos = {
      ProtocolKind::kSC, ProtocolKind::kSWLRC, ProtocolKind::kHLRC,
      ProtocolKind::kMWLRC};
  const std::vector<std::size_t> grains = {256, 4096};
  const std::vector<double> skews = {0.0, 0.9, 1.2};

  {
    harness::Harness banner_h(scale, nodes);
    bench::banner(
        "Service workloads: {SvcKV, SvcQueue, SvcLease} x "
        "{SC, SW-LRC, HLRC, MW-LRC} x {256, 4096} B, Zipf skew "
        "{0, 0.9, 1.2}, open-loop arrivals",
        "service-style extension of the paper's protocol x granularity "
        "matrix", banner_h);
  }

  // Each AppArgs binding is a different workload, so each gets its own
  // Harness (set_app_args would invalidate the caches anyway); the
  // harnesses stay alive so the collected ExpResult pointers do too.
  std::vector<std::unique_ptr<harness::Harness>> harnesses;
  std::vector<Row> rows;
  bool sanity_ok = true;
  const auto check_row = [&sanity_ok](const Row& r) {
    const harness::ExpResult* e = r.res;
    const bool ok = e != nullptr && e->verified && e->has_latency &&
                    e->latency.requests > 0 &&
                    e->latency.p50_ns <= e->latency.p99_ns &&
                    e->latency.p99_ns <= e->latency.p999_ns &&
                    e->latency.p999_ns <= e->latency.max_ns &&
                    e->latency.offered_rps > 0.0 &&
                    e->latency.achieved_rps > 0.0;
    if (!ok) {
      sanity_ok = false;
      std::fprintf(stderr, "SANITY FAIL: %s\n", r.label.c_str());
    }
  };

  const auto sweep = [&](const std::string& app, const apps::AppArgs& args,
                         const char* mode, double skew,
                         const std::vector<std::size_t>& gs) {
    harnesses.push_back(std::make_unique<harness::Harness>(scale, nodes));
    harness::Harness& h = *harnesses.back();
    h.set_progress(false);
    h.set_app_args(args);
    const std::vector<harness::ExpKey> keys =
        harness::ParallelHarness::cross({app}, protos, gs);
    bench::prewarm(h, keys, jobs);
    std::vector<std::pair<std::string, const harness::ExpResult*>> trows;
    for (const auto& k : keys) {
      const harness::ExpResult& r = h.run(k);
      const std::string label = app + "," + mode + ",s=" + fmt(skew, 1) + "," +
                                to_string(k.proto) + "," +
                                std::to_string(k.gran);
      rows.push_back({label, app, mode, skew, k.proto, k.gran, &r});
      check_row(rows.back());
      trows.emplace_back(std::string(to_string(k.proto)) + "/" +
                             std::to_string(k.gran),
                         &r);
    }
    char title[96];
    std::snprintf(title, sizeof title, "%s %s s=%.1f", app.c_str(), mode,
                  skew);
    harness::service_table(title, trows).print();
    std::puts("");
  };

  // Arrival rate for the latency passes (requests/s per node), sized just
  // under SvcKV's slowest configuration (SC at 4096B) at each scale; the
  // request cap keeps the open-loop schedule a few virtual seconds long.
  // Configurations slower than that (the queue under SC, page grain at
  // high skew) still saturate — open-loop traffic makes that visible as a
  // diverging tail rather than hiding it.
  const double lat_rate = scale == apps::Scale::kTiny ? 1000.0 : 750.0;
  const std::int64_t lat_requests =
      scale == apps::Scale::kTiny ? 300 : scale == apps::Scale::kSmall ? 2000
                                                                       : 5000;
  const auto latency_args = [&](double skew) {
    apps::AppArgs a;
    a.set_double("skew", skew);
    a.set_double("rate", lat_rate);
    a.set_int("requests", lat_requests);
    return a;
  };

  // Primary figure: SvcKV latency across the skew sweep, then saturation
  // throughput at the default skew.
  for (double s : skews) {
    sweep("SvcKV", latency_args(s), "latency", s, grains);
  }
  {
    apps::AppArgs a;
    a.set_double("skew", 0.9);
    // Per-node offered rate far above service capacity: the open-loop
    // schedule front-loads every arrival and the nodes drain flat out.
    a.set_double("rate", 2e7);
    sweep("SvcKV", a, "saturation", 0.9, quick ? std::vector<std::size_t>{4096}
                                               : grains);
  }

  // Secondary stores: queue and lease table at the default skew (the full
  // run also covers them at high skew; --quick keeps one grain).
  const std::vector<std::size_t> sec_grains =
      quick ? std::vector<std::size_t>{4096} : grains;
  for (const char* app : {"SvcQueue", "SvcLease"}) {
    sweep(app, latency_args(0.9), "latency", 0.9, sec_grains);
    if (!quick) sweep(app, latency_args(1.2), "latency", 1.2, grains);
  }

  // Qualitative report (not a gate — the trends are about the common
  // case): coarse-grain tail latency should relax from SC to HLRC, and
  // higher skew should not lower the KV tail at 4096B.
  int relax_ok = 0, relax_total = 0;
  for (const Row& r : rows) {
    if (r.app != "SvcKV" || std::strcmp(r.mode, "latency") != 0 ||
        r.gran != 4096 || r.proto != ProtocolKind::kSC) {
      continue;
    }
    for (const Row& q : rows) {
      if (q.app == r.app && std::strcmp(q.mode, "latency") == 0 &&
          q.gran == r.gran && q.skew == r.skew &&
          q.proto == ProtocolKind::kHLRC) {
        ++relax_total;
        if (q.res->latency.p99_ns <= r.res->latency.p99_ns) ++relax_ok;
      }
    }
  }
  std::printf("p99 at 4096B relaxes SC -> HLRC: %d/%d skew points\n\n",
              relax_ok, relax_total);

  std::FILE* csv = std::fopen("BENCH_service.csv", "w");
  if (csv != nullptr) {
    std::vector<std::pair<std::string, const harness::ExpResult*>> all;
    for (const Row& r : rows) all.emplace_back(r.label, r.res);
    const std::string text = harness::service_rows_csv(all);
    std::fwrite(text.data(), 1, text.size(), csv);
    std::fclose(csv);
    std::printf("wrote BENCH_service.csv (%zu rows)\n", rows.size());
  }

  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"nodes\": %d,\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"quick\": %s,\n"
                 "  \"sanity_ok\": %s,\n"
                 "  \"rows\": [\n",
                 nodes, bench::scale_name(scale), quick ? "true" : "false",
                 sanity_ok ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      const LatencySummary& l = r.res->latency;
      std::fprintf(
          f,
          "    {\"app\": \"%s\", \"mode\": \"%s\", \"skew\": %.2f, "
          "\"protocol\": \"%s\", \"gran\": %zu, \"requests\": %llu, "
          "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, "
          "\"max_us\": %.3f, \"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
          "\"checksum\": %llu}%s\n",
          r.app.c_str(), r.mode, r.skew, to_string(r.proto), r.gran,
          static_cast<unsigned long long>(l.requests),
          static_cast<double>(l.p50_ns) / 1e3,
          static_cast<double>(l.p99_ns) / 1e3,
          static_cast<double>(l.p999_ns) / 1e3,
          static_cast<double>(l.max_ns) / 1e3, l.offered_rps, l.achieved_rps,
          static_cast<unsigned long long>(l.checksum),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_service.json (%zu rows)\n", rows.size());
  }

  std::printf("latency digests sane: %s\n", sanity_ok ? "ok" : "FAIL");
  return sanity_ok ? 0 : 1;
}
