// Many-epoch fine-grain sharing driver for the MW-LRC diff-archive GC
// study (shared with tests and the wallclock GC A/B section).
//
// Each epoch every node writes an interleaved slice of one shared region
// (element j belongs to node j % nodes, so at fine granularity every block
// collects diffs from many concurrent writers), then all nodes barrier and
// read the whole region back.  The read phase validates every block on
// every node, which advances copy_vc for every (block, origin) pair — the
// exact condition under which the barrier GC's reachability frontier can
// retire the epoch's diffs.  With --gc=off the archive therefore grows
// linearly in the epoch count; with --gc=barrier it stays flat at roughly
// one epoch's footprint.  Self-verifying: the final read phase checks every
// element against the deterministic expected value.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "runtime/runtime.hpp"

namespace dsm::bench {

class ArchiveStressApp : public App {
 public:
  /// `region_bytes` of uint32_t elements, `epochs` write+read rounds.
  explicit ArchiveStressApp(int epochs, std::size_t region_bytes = 64u << 10)
      : epochs_(epochs), elems_(region_bytes / sizeof(std::uint32_t)) {}

  std::string name() const override { return "ArchiveStress"; }

  void setup(SetupCtx& s) override {
    s.align_to_block();
    region_ = s.alloc(elems_ * sizeof(std::uint32_t));
    for (std::size_t j = 0; j < elems_; ++j) {
      s.write<std::uint32_t>(region_ + j * 4, expected(0, j));
    }
  }

  void node_main(Context& ctx) override {
    const auto nodes = static_cast<std::size_t>(ctx.nodes());
    const auto self = static_cast<std::size_t>(ctx.id());
    ctx.barrier();
    for (int e = 1; e <= epochs_; ++e) {
      // Write phase: fine-grain interleaved ownership, so neighboring
      // elements of every block are dirtied by different writers.
      for (std::size_t j = self; j < elems_; j += nodes) {
        ctx.store<std::uint32_t>(region_ + j * 4, expected(e, j));
        ctx.compute(60);
      }
      ctx.barrier();
      // Read phase: touch every element so each node validates every
      // block against every writer's diffs.
      for (std::size_t j = 0; j < elems_; ++j) {
        const std::uint32_t got = ctx.load<std::uint32_t>(region_ + j * 4);
        DSM_CHECK_MSG(got == expected(e, j),
                      "archive stress read back a stale element");
        if ((j & 63) == 0) ctx.compute(40);
      }
      ctx.barrier();
    }
    ctx.stop_timer();
  }

  /// Deterministic element value after epoch `e` (epoch 0 = initial image).
  static std::uint32_t expected(int e, std::size_t j) {
    std::uint64_t x = (static_cast<std::uint64_t>(e) << 32) ^ (j * 2654435761u);
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(x >> 32);
  }

 private:
  int epochs_;
  std::size_t elems_;
  GAddr region_ = 0;
};

}  // namespace dsm::bench
