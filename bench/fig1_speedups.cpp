// Reproduces Figure 1: speedups of all 12 applications under every
// (protocol, granularity) combination with polling, on 16 nodes.
#include <algorithm>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Figure 1: speedups, 12 apps x {SC, SW-LRC, HLRC} x "
                "{64, 256, 1024, 4096} B, polling",
                "paper Figure 1", h);
  bench::prewarm(h,
                 harness::ParallelHarness::cross(
                     bench::all_app_names(), harness::kProtocols,
                     harness::kGrains),
                 bench::jobs_from_args(argc, argv));

  struct Best {
    std::string app;
    ProtocolKind p{};
    std::size_t g = 0;
    double s = 0;
  };
  std::vector<Best> bests;

  for (const auto& info : apps::registry()) {
    harness::print_speedup_series(h, info.name);
    Best b{info.name, ProtocolKind::kSC, 64, 0};
    for (ProtocolKind p : harness::kProtocols) {
      for (std::size_t g : harness::kGrains) {
        const double s = h.speedup(info.name, p, g);
        if (s > b.s) b = {info.name, p, g, s};
      }
    }
    bests.push_back(b);
  }

  std::printf("Best combination per application\n\n");
  Table t({"Application", "best protocol", "best granularity", "speedup"});
  int sc_fine_good = 0, hlrc_page_good = 0;
  for (const auto& b : bests) {
    t.add_row({b.app, to_string(b.p), std::to_string(b.g), fmt(b.s, 2)});
    // The paper's headline counts: combos within 15% of an app's best.
    const double sc_fine = std::max(
        h.speedup(b.app, ProtocolKind::kSC, 64),
        h.speedup(b.app, ProtocolKind::kSC, 256));
    const double hlrc_page = h.speedup(b.app, ProtocolKind::kHLRC, 4096);
    if (sc_fine >= 0.85 * b.s) ++sc_fine_good;
    if (hlrc_page >= 0.85 * b.s) ++hlrc_page_good;
  }
  t.print();
  std::printf("\nApps where SC at fine grain is within 15%% of best: %d/12 "
              "(paper: SC-fine works well for 7)\n", sc_fine_good);
  std::printf("Apps where HLRC-4096 is within 15%% of best:        %d/12 "
              "(paper: HLRC-page works well for 8)\n", hlrc_page_good);
  return 0;
}
