// Ablation: access-control platform cost — the paper's §7: "this study
// has not examined all-software systems...".  Three platforms:
//   * typhoon  — the paper's hardware access control (free checks, 5 us
//     fast exception)
//   * soft-instr — Blizzard-S-style software instrumentation of every
//     shared load/store (checks cost CPU; faults stay cheap)
//   * svm      — page-based shared virtual memory (mprotect + SIGSEGV:
//     ~80 us per access violation; granularity fixed at the 4096-byte page)
// The paper predicts: "All these performance differences would be larger
// on real SVM systems, where the overheads of access violations ... are
// higher."
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  harness::Harness base(scale, nodes);
  bench::banner("Ablation: hardware vs software access control",
                "paper section 7 / section 6 [26,27]", base);
  // Only the sequential baselines go through the harness here; the
  // platform runs below use bespoke cost models and bypass the cache.
  bench::prewarm_seq(base, {"Ocean-Rowwise", "Water-Spatial", "Raytrace"},
                     bench::jobs_from_args(argc, argv));

  struct Platform {
    const char* name;
    SimTime fault;
    SimTime access;
  };
  const Platform platforms[] = {
      {"typhoon", us(5), ns(45)},
      {"soft-instr", us(5), ns(140)},  // ~6 extra cycles per shared access
      {"svm", us(80), ns(45)},         // SIGSEGV + mprotect round trip
  };

  const char* apps_[] = {"Ocean-Rowwise", "Water-Spatial", "Raytrace"};
  for (const Platform& pf : platforms) {
    // A fresh harness per platform: the cost model is part of the config.
    class PlatformHarness : public harness::Harness {
     public:
      using Harness::Harness;
    };
    std::printf("--- platform: %s (fault %lld us, access %lld ns) ---\n\n",
                pf.name, static_cast<long long>(pf.fault / 1000),
                static_cast<long long>(pf.access));
    Table t({"Application", "SC-4096", "SW-LRC-4096", "HLRC-4096",
             "HLRC/SC"});
    for (const char* app : apps_) {
      std::vector<std::string> row{app};
      double sc = 0, hlrc = 0;
      for (ProtocolKind p : harness::kProtocols) {
        const apps::AppInfo* info = apps::find_app(app);
        auto inst = info->make(scale);
        DsmConfig c;
        c.nodes = nodes;
        c.protocol = p;
        c.granularity = 4096;
        c.shared_bytes = 16u << 20;
        c.poll_dilation = info->poll_dilation;
        c.costs.fault_exception = pf.fault;
        c.costs.mem_access = pf.access;
        Runtime rt(c);
        const RunResult r = rt.run(*inst);
        DSM_CHECK(inst->verify().empty());
        const double s = static_cast<double>(base.sequential_time(app)) /
                         static_cast<double>(r.parallel_time);
        row.push_back(fmt(s, 2));
        if (p == ProtocolKind::kSC) sc = s;
        if (p == ProtocolKind::kHLRC) hlrc = s;
      }
      row.push_back(fmt(hlrc / sc, 2) + "x");
      t.add_row(std::move(row));
    }
    t.print();
    std::puts("");
  }
  std::printf("Paper's prediction (section 5.1): \"All these performance "
              "differences would be\nlarger on real SVM systems, where the "
              "overheads of access violations, i.e.\npage faults, are "
              "higher.\"  Compare the HLRC/SC columns across platforms.\n");
  return 0;
}
