// Reproduces Table 2: classification of sharing patterns and
// synchronization granularity.  Writers-per-block and synchronization
// frequencies are measured, not asserted.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Table 2: application classification", "paper Table 2", h);
  {
    const std::size_t page[] = {4096};
    const ProtocolKind hlrc[] = {ProtocolKind::kHLRC};
    bench::prewarm(h,
                   harness::ParallelHarness::cross(bench::all_app_names(),
                                                   hlrc, page),
                   bench::jobs_from_args(argc, argv));
  }

  Table t({"Application", "writers", "max/page", "fragmentation",
           "comp/synch (ms)", "barriers", "locks/node",
           "synch granularity"});
  for (const auto& info : apps::registry()) {
    // Classification uses the HLRC page-granularity run (the LRC numbers
    // are what the paper's synchronization analysis keys on).
    const auto& r = h.run(info.name, ProtocolKind::kHLRC, 4096);
    // Single vs multiple writer from 64-byte units: boundary effects are
    // ignored (the paper classifies the inherent sharing pattern).
    const bool single = r.stats.single_fine_frac > 0.98;
    double comp_ns = 0, syncs = 0, barriers = 0, locks = 0;
    for (const auto& n : r.stats.node) {
      comp_ns += static_cast<double>(n.compute_ns);
      syncs += static_cast<double>(n.lock_acquires + n.barriers);
      locks += static_cast<double>(n.lock_acquires);
      barriers = static_cast<double>(n.barriers);  // same on every node
    }
    const double per_sync_ms = syncs > 0 ? comp_ns / syncs / 1e6 : 0.0;
    // Paper §5.2.1: fine-grain synchronization when the computation
    // between synchronization events is within ~10x of the ~150 us
    // minimum synchronization handling time.
    const char* sg = per_sync_ms < 1.5 ? "fine" : "coarse";
    t.add_row({info.name, single ? "single" : "multiple",
               std::to_string(r.stats.max_page_writers),
               fmt(100.0 * r.stats.fragmentation(), 0) + "%",
               fmt(per_sync_ms, 2), fmt(barriers, 0),
               fmt(locks / r.stats.node.size(), 0), sg});
  }
  t.print();
  std::printf("\nPaper Table 2 reference: LU/Ocean single-writer; all others"
              " multiple-writer;\nWater-Nsquared and Barnes-Original"
              " fine-grain synchronization, the rest coarse.\n"
              "Fragmentation = fetched-but-never-accessed fraction at "
              "4096 B (paper §5.2.2:\n>99%% for Ocean-Original at 4096 B,"
              " >88%% at 64 B).\n");
  return 0;
}
