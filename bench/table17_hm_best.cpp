// Reproduces Table 17: harmonic mean of relative efficiency when, for
// each (protocol, granularity), the best VERSION of each application is
// used (§5.5 second analysis — the balance shifts toward HLRC at page
// granularity).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Table 17: HM of relative efficiency, best app versions",
                "paper Table 17", h);
  bench::prewarm(h,
                 harness::ParallelHarness::cross(
                     bench::all_app_names(), harness::kProtocols,
                     harness::kGrains),
                 bench::jobs_from_args(argc, argv));

  const auto a =
      harness::HmAnalysis::over_groups(h, harness::app_version_groups());
  a.render("HM (best versions)").print();

  std::printf("\nPaper shape to check: best fixed combination becomes "
              "HLRC-4096 (paper HM 0.927);\nSC g_best 0.955 vs HLRC g_best "
              "0.956 — a dead heat with free granularity.\n");
  return 0;
}
