// Reproduces the paper's per-application read/write fault tables
// (Tables 3-14).  The application is fixed per binary via -DFAULT_APP.
#include "bench_util.hpp"

#ifndef FAULT_APP
#error "build with -DFAULT_APP=\"<application name>\""
#endif
#ifndef FAULT_TABLE_REF
#define FAULT_TABLE_REF "paper Tables 3-14"
#endif

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner(("Per-node read/write faults: " + std::string(FAULT_APP) +
                 " across protocols and granularities")
                    .c_str(),
                FAULT_TABLE_REF, h);
  bench::prewarm(h,
                 harness::ParallelHarness::cross({FAULT_APP},
                                                 harness::kProtocols,
                                                 harness::kGrains),
                 bench::jobs_from_args(argc, argv));
  harness::print_fault_table(h, FAULT_APP);
  return 0;
}
