// Reproduces Table 1: benchmarks, problem sizes, and sequential execution
// times.  Sequential times are virtual (simulated 66 MHz HyperSPARC)
// uniprocessor runs at this build's problem scale; the paper's inputs are
// larger (documented in EXPERIMENTS.md).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), 1);
  bench::banner("Table 1: benchmarks, problem sizes, sequential times",
                "paper Table 1", h);
  bench::prewarm_seq(h, bench::all_app_names(),
                     bench::jobs_from_args(argc, argv));

  const struct { const char* app; const char* tiny; const char* small;
                 const char* dflt; const char* paper; } rows[] = {
      {"LU", "32x32 (B=8)", "192x192 (B=16)", "320x320 (B=16)",
       "1024x1024, 73.4 s"},
      {"FFT", "1K pts", "64K pts", "256K pts", "1M pts, 27.3 s"},
      {"Ocean-Original", "32x32, 2 it", "384x384, 6 it", "512x512, 12 it",
       "514x514, 37.4 s"},
      {"Ocean-Rowwise", "34x34, 2 it", "386x386, 6 it", "514x514, 12 it",
       "514x514 (restructured)"},
      {"Water-Nsquared", "32 mol, 1 step", "512 mol, 2 steps",
       "1024 mol, 3 steps", "4096 mol/3, 575.3 s"},
      {"Water-Spatial", "48 mol", "512 mol, 2 steps", "1024 mol, 3 steps",
       "4096 mol/5, 898.5 s"},
      {"Volrend-Original", "16^3 -> 16^2", "64^3 -> 128^2", "128^3 -> 256^2",
       "128^3 head, 4.5 s"},
      {"Volrend-Rowwise", "16^3 -> 16^2", "64^3 -> 128^2", "128^3 -> 256^2",
       "128^3 (restructured)"},
      {"Raytrace", "16^2, 8 sph", "128^2, 32 sph", "256^2, 64 sph",
       "balls4, 343.8 s"},
      {"Barnes-Original", "64 part", "1024 part, 2 steps", "2048 part, 2 steps",
       "16384 part, 33.8 s"},
      {"Barnes-Partree", "64 part", "1024 part, 2 steps", "2048 part, 2 steps",
       "16384 (restructured)"},
      {"Barnes-Spatial", "64 part", "1024 part, 2 steps", "2048 part, 2 steps",
       "16384 (restructured)"},
  };

  Table t({"Benchmark", "problem size (this scale)", "seq time (virtual)",
           "paper size & time"});
  for (const auto& r : rows) {
    const char* size = h.scale() == apps::Scale::kTiny
                           ? r.tiny
                           : (h.scale() == apps::Scale::kSmall ? r.small
                                                               : r.dflt);
    const double secs =
        static_cast<double>(h.sequential_time(r.app)) / 1e9;
    t.add_row({r.app, size, fmt(secs, 3) + " s", r.paper});
  }
  t.print();
  return 0;
}
