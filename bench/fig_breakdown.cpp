// Per-application stacked execution-time breakdown (the paper's §4/§5
// explanatory figures): where each node's virtual time goes — compute,
// read/write data wait, lock/barrier wait, protocol handler and message
// occupancy — for every (protocol, granularity) combination, produced by
// the src/trace breakdown mode (exact by construction: the categories sum
// to each node's virtual runtime).
//
// Also checks the paper's two qualitative claims on these apps:
//   * at coarse (page) granularity, data wait shrinks from SC to HLRC —
//     relaxed consistency absorbs false sharing that SC ping-pongs on;
//   * protocol overhead (handler + message occupancy) grows at fine grain —
//     more blocks means more fetches, notices and diffs to shepherd.
//
// Writes BENCH_breakdown.csv (one row per app x protocol x granularity).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  h.set_trace(trace::Mode::kBreakdown);
  bench::banner(
      "Execution-time breakdown: {LU, FFT, Ocean, Barnes} x "
      "{SC, SW-LRC, HLRC} x {256, 4096} B, polling",
      "paper Figures 3-6 (shape)", h);

  const std::vector<std::string> app_list = {"LU", "FFT", "Ocean-Original",
                                             "Barnes-Original"};
  const std::vector<std::size_t> grains = {256, 4096};
  bench::prewarm(h,
                 harness::ParallelHarness::cross(app_list, harness::kProtocols,
                                                 grains),
                 bench::jobs_from_args(argc, argv));

  const auto frac = [](const trace::Breakdown& b, trace::Cat c) {
    return b.mean_frac(c);
  };
  const auto data_wait = [&](const trace::Breakdown& b) {
    return frac(b, trace::Cat::kReadWait) + frac(b, trace::Cat::kWriteWait);
  };
  const auto overhead = [&](const trace::Breakdown& b) {
    return frac(b, trace::Cat::kHandler) + frac(b, trace::Cat::kMsgSend);
  };

  std::vector<std::pair<std::string, trace::Breakdown>> all_rows;
  int shrink_ok = 0, grow_ok = 0, grow_total = 0;
  for (const std::string& app : app_list) {
    std::vector<std::pair<std::string, trace::Breakdown>> rows;
    for (ProtocolKind p : harness::kProtocols) {
      for (std::size_t g : grains) {
        const auto& r = h.run(app, p, g);
        const std::string label =
            std::string(to_string(p)) + "/" + std::to_string(g);
        rows.emplace_back(label, r.breakdown);
        all_rows.emplace_back(app + "/" + label, r.breakdown);
      }
    }
    harness::breakdown_table(app, rows).print();

    const auto& sc = h.run(app, ProtocolKind::kSC, 4096).breakdown;
    const auto& hlrc = h.run(app, ProtocolKind::kHLRC, 4096).breakdown;
    const bool shrinks = data_wait(hlrc) <= data_wait(sc) + 1e-9;
    if (shrinks) ++shrink_ok;
    std::printf("  data wait at 4096B: SC %.1f%% -> HLRC %.1f%%  (%s)\n",
                100.0 * data_wait(sc), 100.0 * data_wait(hlrc),
                shrinks ? "shrinks" : "GROWS");
    for (ProtocolKind p : harness::kProtocols) {
      ++grow_total;
      if (overhead(h.run(app, p, 256).breakdown) >=
          overhead(h.run(app, p, 4096).breakdown) - 1e-9) {
        ++grow_ok;
      }
    }
    std::printf("\n");
  }

  std::FILE* f = std::fopen("BENCH_breakdown.csv", "w");
  if (f != nullptr) {
    const std::string csv = harness::breakdown_rows_csv(all_rows);
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_breakdown.csv (%zu rows)\n", all_rows.size());
  }

  std::printf("\ndata wait shrinks SC -> HLRC at 4096B: %d/%zu apps\n",
              shrink_ok, app_list.size());
  std::printf("protocol overhead higher at 256B than 4096B: %d/%d "
              "(app, protocol) pairs\n",
              grow_ok, grow_total);
  // The paper's trends are claims about the common case, not a law per
  // app: require a clear majority of each.
  const bool ok = 2 * shrink_ok >= static_cast<int>(app_list.size()) &&
                  2 * grow_ok >= grow_total;
  std::printf("qualitative ordering: %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
