// Archive-growth study for the MW-LRC barrier GC: runs the many-epoch
// fine-grain stress driver (archive_stress_app.hpp) with --gc=off and
// --gc=barrier at increasing epoch counts, checks the two modes produce
// bitwise identical simulated results, and shows the --gc=off archive
// growing linearly while the --gc=barrier peak stays flat.  Emits
// BENCH_archive.json and BENCH_archive.csv; exit code 1 when the identity
// check or the >=50% peak-reduction gate at the longest run fails.
//
// Extra knobs: --epochs N (longest sweep point, default 40),
// --region BYTES (shared region size, default 16K), --gc-threshold BYTES,
// --sim-par=window, --nodes via DSM_NODES.
#include <chrono>

#include "archive_stress_app.hpp"
#include "bench_util.hpp"

using namespace dsm;

namespace {

struct Point {
  int epochs = 0;
  RunStats off, on;
  SimTime time_off = 0, time_on = 0;
  double host_off = 0.0, host_on = 0.0;
  bool identical = false;
};

struct RunOut {
  RunStats stats;
  SimTime parallel_time = 0;
  double host_seconds = 0.0;
};

RunOut run_one(int nodes, int epochs, std::size_t region_bytes, GcMode gc,
               std::uint64_t threshold, sim::SimPar par, int workers) {
  DsmConfig c;
  c.nodes = nodes;
  c.protocol = ProtocolKind::kMWLRC;
  c.granularity = 64;  // fine grain: every block has many concurrent writers
  c.shared_bytes = 4u << 20;
  c.stack_bytes = 256 * 1024;
  c.gc = gc;
  c.gc_threshold_bytes = threshold;
  c.sim_par = par;
  c.sim_par_workers = workers;
  bench::ArchiveStressApp app(epochs, region_bytes);
  Runtime rt(c);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = rt.run(app);
  const double host =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return RunOut{r.stats, r.parallel_time, host};
}

/// Simulated-result identity between gc modes.  Memory-telemetry fields
/// (archive/meta bytes, gc_* counters, arena figures) are the GC's own
/// output and intentionally differ; everything the simulation computes must
/// not.
bool same_results(const RunStats& a, const RunStats& b, SimTime ta,
                  SimTime tb) {
  const NodeStats ta_ = a.total(), tb_ = b.total();
  return ta == tb && a.messages == b.messages &&
         a.traffic_bytes == b.traffic_bytes &&
         a.payload_bytes == b.payload_bytes && a.sim_events == b.sim_events &&
         ta_.read_faults == tb_.read_faults &&
         ta_.write_faults == tb_.write_faults && ta_.diffs == tb_.diffs &&
         ta_.diff_bytes == tb_.diff_bytes &&
         ta_.notices_processed == tb_.notices_processed &&
         ta_.barriers == tb_.barriers;
}

void append_json_u64(std::string& out, const char* k, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", k,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::alloc_from_args(argc, argv);
  ArenaScope main_arena;
  const int nodes = bench::nodes_from_env();
  int workers = 0;
  const sim::SimPar par = bench::sim_par_from_args(argc, argv, &workers);
  std::uint64_t threshold = DsmConfig{}.gc_threshold_bytes;
  bench::gc_from_args(argc, argv, &threshold);  // bench runs both modes

  int max_epochs = 40;
  std::size_t region_bytes = 16u << 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      max_epochs = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      max_epochs = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--region") == 0 && i + 1 < argc) {
      region_bytes = bench::parse_bytes(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--region=", 9) == 0) {
      region_bytes = bench::parse_bytes(argv[i] + 9);
    }
  }
  if (max_epochs < 4) max_epochs = 4;

  std::printf("==============================================================\n");
  std::printf("MW-LRC diff-archive growth: --gc=off vs --gc=barrier\n");
  std::printf("(%d nodes, 64 B grain, %zu KB region, gc threshold %llu KB, "
              "sim-par %s)\n",
              nodes, region_bytes >> 10,
              static_cast<unsigned long long>(threshold >> 10),
              to_string(par));
  std::printf("==============================================================\n\n");

  std::vector<int> sweep;
  for (int e = max_epochs; e >= 4; e /= 2) sweep.insert(sweep.begin(), e);

  std::vector<Point> points;
  for (int epochs : sweep) {
    Point p;
    p.epochs = epochs;
    RunOut off = run_one(nodes, epochs, region_bytes, GcMode::kOff, threshold,
                         par, workers);
    RunOut on = run_one(nodes, epochs, region_bytes, GcMode::kBarrier,
                        threshold, par, workers);
    p.off = off.stats;
    p.on = on.stats;
    p.time_off = off.parallel_time;
    p.time_on = on.parallel_time;
    p.host_off = off.host_seconds;
    p.host_on = on.host_seconds;
    p.identical =
        same_results(p.off, p.on, p.time_off, p.time_on);
    points.push_back(p);
    std::fprintf(stderr, "  epochs %3d done (%s)\n", epochs,
                 p.identical ? "identical" : "MISMATCH");
  }

  Table t({"epochs", "peak KB (off)", "peak KB (gc)", "end KB (gc)",
           "gc passes", "diffs freed", "reclaimed KB", "notices pruned",
           "identical"});
  for (const Point& p : points) {
    t.add_row({std::to_string(p.epochs),
               fmt(static_cast<double>(p.off.peak_diff_archive_bytes) / 1e3, 1),
               fmt(static_cast<double>(p.on.peak_diff_archive_bytes) / 1e3, 1),
               fmt(static_cast<double>(p.on.diff_archive_bytes) / 1e3, 1),
               std::to_string(p.on.gc_passes),
               std::to_string(p.on.gc_diffs_freed),
               fmt(static_cast<double>(p.on.gc_bytes_reclaimed) / 1e3, 1),
               std::to_string(p.on.gc_notices_pruned),
               p.identical ? "yes" : "NO"});
  }
  t.print();

  const Point& last = points.back();
  bool identity_ok = true;
  for (const Point& p : points) identity_ok = identity_ok && p.identical;
  const double reduction =
      last.off.peak_diff_archive_bytes == 0
          ? 0.0
          : 1.0 - static_cast<double>(last.on.peak_diff_archive_bytes) /
                      static_cast<double>(last.off.peak_diff_archive_bytes);
  const bool reduction_ok = reduction >= 0.5;

  std::printf("\nAt %d epochs the barrier GC holds the peak archive to "
              "%.1f KB vs %.1f KB\nwithout GC (%.0f%% reduction; gate >= "
              "50%%), reclaiming %.1f KB over %llu\npasses and pruning %llu "
              "write notices.  Host time %.2fs -> %.2fs.\n",
              last.epochs,
              static_cast<double>(last.on.peak_diff_archive_bytes) / 1e3,
              static_cast<double>(last.off.peak_diff_archive_bytes) / 1e3,
              reduction * 100.0,
              static_cast<double>(last.on.gc_bytes_reclaimed) / 1e3,
              static_cast<unsigned long long>(last.on.gc_passes),
              static_cast<unsigned long long>(last.on.gc_notices_pruned),
              last.host_off, last.host_on);
  std::printf("Arena recycling under GC: %llu allocations (%.1f KB) served "
              "from freed\narchive segments mid-run.\n",
              static_cast<unsigned long long>(last.on.arena_recycled_allocs),
              static_cast<double>(last.on.arena_recycled_bytes) / 1e3);

  // BENCH_archive.json / .csv
  std::string json = "{\n  \"bench\": \"archive_stress\",\n";
  json += "  \"nodes\": " + std::to_string(nodes) + ",\n";
  json += "  \"region_bytes\": " + std::to_string(region_bytes) + ",\n";
  json += "  \"gc_threshold_bytes\": " + std::to_string(threshold) + ",\n";
  json += "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json += "    {";
    append_json_u64(json, "epochs", static_cast<std::uint64_t>(p.epochs));
    json += ",";
    append_json_u64(json, "peak_off", p.off.peak_diff_archive_bytes);
    json += ",";
    append_json_u64(json, "peak_gc", p.on.peak_diff_archive_bytes);
    json += ",";
    append_json_u64(json, "end_gc", p.on.diff_archive_bytes);
    json += ",";
    append_json_u64(json, "gc_passes", p.on.gc_passes);
    json += ",";
    append_json_u64(json, "gc_diffs_freed", p.on.gc_diffs_freed);
    json += ",";
    append_json_u64(json, "gc_bytes_reclaimed", p.on.gc_bytes_reclaimed);
    json += ",";
    append_json_u64(json, "gc_notices_pruned", p.on.gc_notices_pruned);
    json += ",";
    append_json_u64(json, "arena_recycled_allocs", p.on.arena_recycled_allocs);
    json += ",\"identical\":";
    json += p.identical ? "true" : "false";
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"host_off_s\":%.4f,\"host_gc_s\":%.4f",
                  p.host_off, p.host_on);
    json += buf;
    json += i + 1 < points.size() ? "},\n" : "}\n";
  }
  json += "  ],\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  \"peak_reduction\": %.4f,\n  \"identity_ok\": %s,\n"
                "  \"reduction_ok\": %s\n}\n",
                reduction, identity_ok ? "true" : "false",
                reduction_ok ? "true" : "false");
  json += buf;
  if (std::FILE* f = std::fopen("BENCH_archive.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_archive.json\n");
  }
  std::string csv =
      "epochs,peak_off,peak_gc,end_gc,gc_passes,gc_diffs_freed,"
      "gc_bytes_reclaimed,gc_notices_pruned,identical\n";
  for (const Point& p : points) {
    char line[256];
    std::snprintf(line, sizeof(line), "%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%d\n",
                  p.epochs,
                  static_cast<unsigned long long>(p.off.peak_diff_archive_bytes),
                  static_cast<unsigned long long>(p.on.peak_diff_archive_bytes),
                  static_cast<unsigned long long>(p.on.diff_archive_bytes),
                  static_cast<unsigned long long>(p.on.gc_passes),
                  static_cast<unsigned long long>(p.on.gc_diffs_freed),
                  static_cast<unsigned long long>(p.on.gc_bytes_reclaimed),
                  static_cast<unsigned long long>(p.on.gc_notices_pruned),
                  p.identical ? 1 : 0);
    csv += line;
  }
  if (std::FILE* f = std::fopen("BENCH_archive.csv", "w")) {
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_archive.csv\n");
  }

  if (!identity_ok) {
    std::printf("\nFAIL: gc on/off simulated results diverged\n");
  }
  if (!reduction_ok) {
    std::printf("\nFAIL: peak archive reduction %.0f%% below the 50%% gate\n",
                reduction * 100.0);
  }
  return identity_ok && reduction_ok ? 0 : 1;
}
