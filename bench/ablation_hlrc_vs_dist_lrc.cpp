// Ablation: home-based vs traditional DISTRIBUTED-diff LRC — makes the
// paper's §2.3 contrast runnable ("The HLRC multiple-writer scheme differs
// from LRC by having the diffs sent and applied eagerly to a designated
// home... several performance and implementation advantages").
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  harness::Harness h(scale, nodes);
  bench::banner("Ablation: HLRC vs traditional distributed-diff LRC at "
                "page granularity",
                "paper section 2.3", h);
  {
    // HLRC runs (and the sequential baselines the MW-LRC column divides
    // by) come from the harness; the MW-LRC runs bypass it and stay serial.
    const ProtocolKind protos[] = {ProtocolKind::kHLRC};
    const std::size_t grains[] = {4096};
    bench::prewarm(h,
                   harness::ParallelHarness::cross(
                       {"Ocean-Rowwise", "Water-Nsquared", "Water-Spatial",
                        "Volrend-Original", "Raytrace", "Barnes-Partree"},
                       protos, grains),
                   bench::jobs_from_args(argc, argv));
  }

  Table t({"Application", "HLRC speedup", "MW-LRC speedup", "HLRC msgs",
           "MW-LRC msgs", "HLRC meta KB", "MW-LRC meta KB"});
  const char* apps_[] = {"Ocean-Rowwise", "Water-Nsquared", "Water-Spatial",
                         "Volrend-Original", "Raytrace", "Barnes-Partree"};
  for (const char* app : apps_) {
    const auto& hl = h.run(app, ProtocolKind::kHLRC, 4096);
    // MW-LRC is outside the paper's 3-protocol matrix: run directly.
    const apps::AppInfo* info = apps::find_app(app);
    auto inst = info->make(scale);
    DsmConfig c;
    c.nodes = nodes;
    c.protocol = ProtocolKind::kMWLRC;
    c.granularity = 4096;
    c.shared_bytes = 16u << 20;
    c.poll_dilation = info->poll_dilation;
    Runtime rt(c);
    const RunResult mw = rt.run(*inst);
    DSM_CHECK(inst->verify().empty());
    const double mw_speedup = static_cast<double>(h.sequential_time(app)) /
                              static_cast<double>(mw.parallel_time);
    t.add_row({app, fmt(hl.speedup, 2), fmt(mw_speedup, 2),
               fmt_count(static_cast<std::int64_t>(hl.stats.messages)),
               fmt_count(static_cast<std::int64_t>(mw.stats.messages)),
               fmt(static_cast<double>(hl.stats.protocol_meta_bytes) / 1e3, 1),
               fmt(static_cast<double>(mw.stats.protocol_meta_bytes) / 1e3, 1)});
  }
  t.print();
  std::printf("\nThe §2.3 trade-off made measurable: MW-LRC's releases are "
              "free, but every\nmiss fans diff requests out to all recent "
              "writers, and diffs accumulate at\nwriters without garbage "
              "collection (the meta columns).\n");
  return 0;
}
