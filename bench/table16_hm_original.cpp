// Reproduces Table 16: harmonic mean of relative efficiency over the 8
// ORIGINAL applications (the versions ported directly from hardware
// shared memory), for every combination of protocol and granularity plus
// the per-application-best rows/columns (§5.5).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Table 16: HM of relative efficiency, original 8 apps",
                "paper Table 16", h);
  bench::prewarm(h,
                 harness::ParallelHarness::cross(harness::original_apps(),
                                                 harness::kProtocols,
                                                 harness::kGrains),
                 bench::jobs_from_args(argc, argv));

  const auto a = harness::HmAnalysis::over_apps(h, harness::original_apps());
  a.render("HM (original apps)").print();

  std::printf("\nPaper shape to check: SC best fixed protocol at 256 B "
              "(paper HM 0.837);\ncoarse-granularity columns dragged down "
              "by Barnes-Original.\n");
  return 0;
}
