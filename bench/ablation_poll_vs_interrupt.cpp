// Ablation: polling vs interrupt across ALL 12 applications at the two
// headline combinations (SC-256 and HLRC-4096), extending the paper's
// §5.4 discussion beyond the two applications it plots.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Ablation: polling vs interrupt, all applications",
                "paper section 5.4 (extended)", h);
  {
    std::vector<harness::ExpKey> keys;
    for (const auto& name : bench::all_app_names()) {
      for (auto mode : {net::NotifyMode::kPolling, net::NotifyMode::kInterrupt}) {
        keys.push_back({name, ProtocolKind::kSC, 256, mode});
        keys.push_back({name, ProtocolKind::kHLRC, 4096, mode});
      }
    }
    bench::prewarm(h, keys, bench::jobs_from_args(argc, argv));
  }

  int poll_wins = 0, intr_wins = 0;
  Table t({"Application", "SC-256 poll", "SC-256 intr", "HLRC-4096 poll",
           "HLRC-4096 intr"});
  for (const auto& info : apps::registry()) {
    const double a = h.speedup(info.name, ProtocolKind::kSC, 256,
                               net::NotifyMode::kPolling);
    const double b = h.speedup(info.name, ProtocolKind::kSC, 256,
                               net::NotifyMode::kInterrupt);
    const double c = h.speedup(info.name, ProtocolKind::kHLRC, 4096,
                               net::NotifyMode::kPolling);
    const double d = h.speedup(info.name, ProtocolKind::kHLRC, 4096,
                               net::NotifyMode::kInterrupt);
    t.add_row({info.name, fmt(a, 2), fmt(b, 2), fmt(c, 2), fmt(d, 2)});
    poll_wins += (a >= b) + (c >= d);
    intr_wins += (a < b) + (c < d);
  }
  t.print();
  std::printf("\npolling wins %d / interrupt wins %d of %d cases "
              "(paper: polling better in most cases, but neither uniformly)\n",
              poll_wins, intr_wins, poll_wins + intr_wins);
  return 0;
}
