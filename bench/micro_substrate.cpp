// google-benchmark microbenchmarks of the simulator substrate itself:
// diff creation/application, fiber context switching, engine event
// throughput.  These bound how fast the paper-scale experiments can run.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mem/diff.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dsm;

void BM_MakeDiff(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const double dirty_frac = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(42);
  std::vector<std::byte> twin(size), dirty(size);
  for (auto& b : twin) b = std::byte(rng.next_u64());
  dirty = twin;
  for (std::size_t i = 0; i < static_cast<std::size_t>(size * dirty_frac); ++i) {
    dirty[rng.next_below(size)] = std::byte(rng.next_u64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::make_diff(dirty, twin));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_MakeDiff)->Args({4096, 5})->Args({4096, 50})->Args({256, 50});

void BM_ApplyDiff(benchmark::State& state) {
  const std::size_t size = 4096;
  Rng rng(7);
  std::vector<std::byte> twin(size), dirty(size);
  dirty = twin;
  for (int i = 0; i < 200; ++i) {
    dirty[rng.next_below(size)] = std::byte(rng.next_u64());
  }
  const auto diff = mem::make_diff(dirty, twin);
  std::vector<std::byte> dst = twin;
  for (auto _ : state) {
    mem::apply_diff(dst, diff);
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_ApplyDiff);

void BM_FiberSwitch(benchmark::State& state) {
  // Round trips through the scheduler (yield + resume), measured in
  // batches of 10000 because Engine::run() is blocking.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e2(sim::Engine::Options{1, ns(1), 128 * 1024, ~0ull});
    std::int64_t n = 0;
    e2.spawn(0, [&] {
      for (int i = 0; i < 10000; ++i) {
        e2.charge(ns(10));
        e2.yield();
        ++n;
      }
    });
    state.ResumeTiming();
    e2.run();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FiberSwitch)->Unit(benchmark::kMicrosecond);

void BM_EngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine e(sim::Engine::Options{4, ns(2000), 128 * 1024, ~0ull});
    state.ResumeTiming();
    for (NodeId n = 0; n < 4; ++n) {
      e.spawn(n, [&e] {
        for (int i = 0; i < 2500; ++i) {
          e.post(e.now(e.current()) + us(1), (e.current() + 1) % 4, [] {});
          e.charge(us(2));
          e.maybe_yield();
        }
      });
    }
    e.run();
    benchmark::DoNotOptimize(e.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEvents)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
