// Ablation: memory utilization of the protocol/granularity combinations —
// the paper's §7 explicitly lists this as unexamined.  Reports replicated
// copy footprint, dynamic protocol metadata, peak twin storage, and the
// host-side arena allocator's usage (--alloc=heap zeroes those columns).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const bool arena_on = bench::alloc_from_args(argc, argv);
  ArenaScope main_arena;  // serial runs below happen on this thread
  harness::Harness h(bench::scale_from_env(), bench::nodes_from_env());
  bench::banner("Ablation: memory utilization (replication + protocol "
                "metadata + twins)",
                "paper section 7 (listed as future work)", h);
  {
    const std::size_t grains[] = {64, 4096};
    bench::prewarm(h,
                   harness::ParallelHarness::cross(
                       {"LU", "Water-Spatial", "Raytrace", "Barnes-Original"},
                       harness::kProtocols, grains),
                   bench::jobs_from_args(argc, argv));
  }

  Table t({"Application", "protocol", "gran", "replicated MB",
           "proto meta KB", "peak twins KB", "bitmap KB", "arena KB",
           "heap fb"});
  const char* apps_[] = {"LU", "Water-Spatial", "Raytrace",
                         "Barnes-Original"};
  for (const char* app : apps_) {
    for (ProtocolKind p : harness::kProtocols) {
      for (std::size_t g : {std::size_t{64}, std::size_t{4096}}) {
        const auto& r = h.run(app, p, g);
        t.add_row({app, to_string(p), std::to_string(g),
                   fmt(static_cast<double>(r.stats.replicated_bytes) / 1e6, 2),
                   fmt(static_cast<double>(r.stats.protocol_meta_bytes) / 1e3, 1),
                   fmt(static_cast<double>(r.stats.peak_twin_bytes) / 1e3, 1),
                   fmt(static_cast<double>(r.stats.peak_bitmap_bytes) / 1e3,
                       1),
                   fmt(static_cast<double>(r.stats.arena_bytes_in_use) / 1e3,
                       1),
                   std::to_string(r.stats.heap_fallback_allocs)});
      }
    }
  }
  t.print();
  std::printf("\nShapes: coarse granularity multiplies replication "
              "(whole pages cached per reader);\nHLRC adds twin storage "
              "proportional to concurrently-dirty pages; the LRC notice\n"
              "stores grow with synchronization count (Barnes-Original "
              "worst).\nThe dirty-word bitmap is a fixed 1/32 of the shared "
              "space per node,\nindependent of protocol and granularity "
              "(write-tracking mode: %s).\n",
              to_string(DsmConfig{}.write_tracking));
  std::printf("The arena column is the host-side slab allocator's bytes "
              "still checked out\nat the end of the run (payloads in "
              "flight, archived diffs); heap fb counts\nallocations the "
              "arena declined (allocator: %s).\n",
              arena_on ? "arena" : "heap");
  return 0;
}
