// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary honors:
//   DSM_SCALE      = tiny | small | default  (problem sizes; default: small)
//   DSM_NODES      = cluster size            (default: 16, the paper's)
//   DSM_JOBS       = worker threads for the sweep (also --jobs N / -jN;
//                    default: one per hardware thread; 1 = serial)
//   DSM_MEM_BUDGET = cap on the summed estimated footprint of in-flight
//                    simulations (also --mem-budget BYTES; suffixes
//                    K/M/G; 0 or unset = unlimited)
//   DSM_ALLOC      = arena | heap (also --alloc=...; default arena) —
//                    payload/twin/diff allocator (common/arena.hpp)
//   DSM_SIM_PAR    = off | window (also --sim-par=...; default off) —
//                    intra-run parallel-DES mode (bitwise identical);
//                    --sim-par-workers N sets DsmConfig::sim_par_workers
//   DSM_GC         = off | barrier (also --gc=...; default off) — MW-LRC
//                    diff-archive barrier GC (bitwise identical results);
//                    --gc-threshold BYTES / DSM_GC_THRESHOLD sets the
//                    per-pass archive-size trigger (default 64K)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel_harness.hpp"
#include "harness/report.hpp"
#include "mem/block_state.hpp"
#include "sim/event_queue.hpp"

namespace dsm::bench {

inline apps::Scale scale_from_env() {
  const char* s = std::getenv("DSM_SCALE");
  if (s == nullptr) return apps::Scale::kSmall;
  if (std::strcmp(s, "tiny") == 0) return apps::Scale::kTiny;
  if (std::strcmp(s, "default") == 0) return apps::Scale::kDefault;
  return apps::Scale::kSmall;
}

inline int nodes_from_env() {
  const char* s = std::getenv("DSM_NODES");
  return s == nullptr ? 16 : std::atoi(s);
}

/// --jobs N / --jobs=N / -jN on the command line, else DSM_JOBS, else one
/// worker per hardware thread.  The sweep is deterministic at any value.
inline int jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--jobs") == 0 ||
         std::strcmp(argv[i], "-j") == 0) && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) return std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "-j", 2) == 0 && argv[i][2] != '\0') {
      return std::atoi(argv[i] + 2);
    }
  }
  const char* s = std::getenv("DSM_JOBS");
  if (s != nullptr) return std::atoi(s);
  return ThreadPool::hardware_threads();
}

/// Parses "4G" / "512M" / "1048576" byte sizes; returns 0 on bad input.
inline std::uint64_t parse_bytes(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) return 0;
  std::uint64_t mult = 1;
  switch (*end) {
    case 'k': case 'K': mult = 1ull << 10; break;
    case 'm': case 'M': mult = 1ull << 20; break;
    case 'g': case 'G': mult = 1ull << 30; break;
    default: break;
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

/// --mem-budget BYTES / --mem-budget=BYTES, else DSM_MEM_BUDGET, else 0
/// (unlimited).  See common/mem_budget.hpp.
inline std::uint64_t mem_budget_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
      return parse_bytes(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--mem-budget=", 13) == 0) {
      return parse_bytes(argv[i] + 13);
    }
  }
  const char* s = std::getenv("DSM_MEM_BUDGET");
  return s == nullptr ? 0 : parse_bytes(s);
}

/// --alloc arena|heap / --alloc=..., else DSM_ALLOC, else arena (the
/// default).  Applies the choice process-wide (Arena::set_enabled) and
/// returns true when the arena allocator is active.
inline bool alloc_from_args(int argc, char** argv) {
  const char* choice = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc") == 0 && i + 1 < argc) {
      choice = argv[i + 1];
    } else if (std::strncmp(argv[i], "--alloc=", 8) == 0) {
      choice = argv[i] + 8;
    }
  }
  if (choice == nullptr) choice = std::getenv("DSM_ALLOC");
  const bool arena = choice == nullptr || std::strcmp(choice, "heap") != 0;
  Arena::set_enabled(arena);
  return arena;
}

/// --sim-par off|window / --sim-par=..., else DSM_SIM_PAR, else off.  When
/// `workers` is non-null it receives --sim-par-workers N / DSM_SIM_PAR_WORKERS
/// (0 = auto, see DsmConfig::sim_par_workers); unset leaves it untouched.
inline sim::SimPar sim_par_from_args(int argc, char** argv,
                                     int* workers = nullptr) {
  const char* choice = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sim-par") == 0 && i + 1 < argc) {
      choice = argv[i + 1];
    } else if (std::strncmp(argv[i], "--sim-par=", 10) == 0) {
      choice = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--sim-par-workers") == 0 &&
               i + 1 < argc && workers != nullptr) {
      *workers = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--sim-par-workers=", 18) == 0 &&
               workers != nullptr) {
      *workers = std::atoi(argv[i] + 18);
    }
  }
  if (choice == nullptr) choice = std::getenv("DSM_SIM_PAR");
  if (workers != nullptr) {
    if (const char* w = std::getenv("DSM_SIM_PAR_WORKERS");
        w != nullptr && *workers == 0) {
      *workers = std::atoi(w);
    }
  }
  sim::SimPar p = sim::SimPar::kOff;
  if (choice != nullptr) sim::sim_par_from_string(choice, &p);
  return p;
}

/// --gc off|barrier / --gc=..., else DSM_GC, else off.  When `threshold`
/// is non-null it receives --gc-threshold BYTES / DSM_GC_THRESHOLD
/// (default left untouched when unset; see DsmConfig::gc_threshold_bytes).
inline GcMode gc_from_args(int argc, char** argv,
                           std::uint64_t* threshold = nullptr) {
  const char* choice = nullptr;
  bool threshold_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gc") == 0 && i + 1 < argc) {
      choice = argv[i + 1];
    } else if (std::strncmp(argv[i], "--gc=", 5) == 0) {
      choice = argv[i] + 5;
    } else if (std::strcmp(argv[i], "--gc-threshold") == 0 && i + 1 < argc &&
               threshold != nullptr) {
      *threshold = parse_bytes(argv[i + 1]);
      threshold_set = true;
    } else if (std::strncmp(argv[i], "--gc-threshold=", 15) == 0 &&
               threshold != nullptr) {
      *threshold = parse_bytes(argv[i] + 15);
      threshold_set = true;
    }
  }
  if (choice == nullptr) choice = std::getenv("DSM_GC");
  if (threshold != nullptr && !threshold_set) {
    if (const char* t = std::getenv("DSM_GC_THRESHOLD"); t != nullptr) {
      *threshold = parse_bytes(t);
    }
  }
  GcMode g = GcMode::kOff;
  if (choice != nullptr &&
      (std::strcmp(choice, "barrier") == 0 || std::strcmp(choice, "1") == 0)) {
    g = GcMode::kBarrier;
  }
  return g;
}

/// Fans `keys` out across `jobs` workers into the Harness cache, so the
/// (serial, deterministically ordered) table code below reads cached
/// results.  jobs <= 1 keeps the classic lazy serial path.  A non-zero
/// `mem_budget` caps the summed estimated footprint of in-flight runs.
inline void prewarm(harness::Harness& h, const std::vector<harness::ExpKey>& keys,
                    int jobs, std::uint64_t mem_budget = 0) {
  if (jobs <= 1 || keys.size() < 2) return;
  MemBudget budget(mem_budget);
  harness::ParallelHarness ph(h, jobs, mem_budget != 0 ? &budget : nullptr);
  ph.prewarm(keys);
  h.set_mem_budget(nullptr);  // budget dies with this scope
}

/// Parallel sequential-baseline warmup (Table 1 and the speedup divisors).
inline void prewarm_seq(harness::Harness& h,
                        const std::vector<std::string>& apps, int jobs) {
  if (jobs <= 1 || apps.size() < 2) return;
  ThreadPool pool(jobs);
  for (const std::string& a : apps) {
    pool.submit([&h, a] { h.sequential_time(a); });
  }
  pool.wait_idle();
}

/// All registered application names, registry order.
inline std::vector<std::string> all_app_names() {
  std::vector<std::string> v;
  for (const auto& info : apps::registry()) v.push_back(info.name);
  return v;
}

namespace detail {

/// Element + full strict order shared by the two queue-stress sides —
/// exactly the (time, push sequence) order the engine's queues use.
struct StressEl {
  SimTime at;
  std::uint64_t seq;
};
struct StressTraits {
  static SimTime time(const StressEl& e) { return e.at; }
  static bool less(const StressEl& a, const StressEl& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }
};
struct StressGreater {
  bool operator()(const StressEl& a, const StressEl& b) const {
    return StressTraits::less(b, a);
  }
};

inline std::uint64_t stress_lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s;
}

/// Classic hold model at the in-flight event depth of a 256-node run:
/// pop the minimum, push it back at time + hold, holds uniform in
/// [1, 4096] ns.  `checksum` pins both backends to the same pop sequence.
template <typename Push, typename Pop>
SimTime queue_hold_model(Push push, Pop pop) {
  constexpr int kDepth = 4 * 256;
  constexpr int kOps = 2'000'000;
  std::uint64_t lcg = 0x243F6A8885A308D3ull, seq = 0;
  for (int i = 0; i < kDepth; ++i) {
    push(StressEl{static_cast<SimTime>((stress_lcg(lcg) >> 52) + 1), seq++});
  }
  SimTime sum = 0;
  for (int i = 0; i < kOps; ++i) {
    const StressEl e = pop();
    sum += e.at;
    push(StressEl{e.at + static_cast<SimTime>((stress_lcg(lcg) >> 52) + 1),
                  seq++});
  }
  return sum;
}

}  // namespace detail

/// Host seconds (best of 3, after one warmup rep) for the hold model on
/// the calendar queue or the binary-heap reference.  Both sides pop the
/// identical sequence; DSM_CHECK pins that.
inline double engine_queue_stress_seconds(bool calendar) {
  double best = 1e30;
  SimTime want = 0;
  for (int rep = 0; rep < 4; ++rep) {
    SimTime got;
    const auto t0 = std::chrono::steady_clock::now();
    if (calendar) {
      sim::CalendarQueue<detail::StressEl, detail::StressTraits> q;
      got = detail::queue_hold_model(
          [&](detail::StressEl e) { q.push(e); }, [&] { return q.take(); });
    } else {
      std::priority_queue<detail::StressEl, std::vector<detail::StressEl>,
                          detail::StressGreater>
          q;
      got = detail::queue_hold_model([&](detail::StressEl e) { q.push(e); },
                                     [&] {
                                       detail::StressEl e = q.top();
                                       q.pop();
                                       return e;
                                     });
    }
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (rep == 0) {
      want = got;  // warmup rep still validates the checksum
    } else {
      best = std::min(best, s);
    }
    DSM_CHECK_MSG(got == want, "queue stress checksum diverged");
  }
  return best;
}

/// Host seconds (best of 3, after one warmup rep) for the hit-heavy
/// per-node block-state ensure() mix of a 256-node run, on the SoA tables
/// or the unordered_map reference.
inline double engine_state_stress_seconds(bool soa) {
  constexpr int kNodes = 256, kBlocksPerNode = 512, kRounds = 40;
  double best = 1e30;
  std::uint64_t want = 0;
  for (int rep = 0; rep < 4; ++rep) {
    std::uint64_t got = 0;
    const auto t0 = std::chrono::steady_clock::now();
    if (soa) {
      std::vector<mem::BlockIndex> idx;
      std::vector<mem::BlockField<std::uint32_t>> f(kNodes);
      for (int n = 0; n < kNodes; ++n) {
        idx.emplace_back(mem::BlockStateKind::kSoA, kBlocksPerNode * 2);
      }
      for (int r = 0; r < kRounds; ++r) {
        for (int n = 0; n < kNodes; ++n) {
          std::uint64_t lcg = static_cast<std::uint64_t>(n) * 977 + 13;
          for (int i = 0; i < kBlocksPerNode * 8; ++i) {
            const BlockId b = static_cast<BlockId>(
                (detail::stress_lcg(lcg) >> 33) % (kBlocksPerNode * 2));
            got += ++f[n].ensure(idx[n], b);
          }
        }
      }
    } else {
      std::vector<std::unordered_map<BlockId, std::uint32_t>> t(kNodes);
      for (int r = 0; r < kRounds; ++r) {
        for (int n = 0; n < kNodes; ++n) {
          std::uint64_t lcg = static_cast<std::uint64_t>(n) * 977 + 13;
          for (int i = 0; i < kBlocksPerNode * 8; ++i) {
            const BlockId b = static_cast<BlockId>(
                (detail::stress_lcg(lcg) >> 33) % (kBlocksPerNode * 2));
            got += ++t[n][b];
          }
        }
      }
    }
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (rep == 0) {
      want = got;
    } else {
      best = std::min(best, s);
    }
    DSM_CHECK_MSG(got == want, "state stress checksum diverged");
  }
  return best;
}

inline const char* scale_name(apps::Scale s) {
  switch (s) {
    case apps::Scale::kTiny: return "tiny";
    case apps::Scale::kSmall: return "small";
    case apps::Scale::kDefault: return "default";
  }
  return "?";
}

inline void banner(const char* what, const char* paper_ref,
                   const harness::Harness& h) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(reproduces %s; %d nodes, %s problem scale)\n", paper_ref,
              h.nodes(), scale_name(h.scale()));
  std::printf("==============================================================\n\n");
  std::fflush(stdout);
}

}  // namespace dsm::bench
