// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary honors:
//   DSM_SCALE      = tiny | small | default  (problem sizes; default: small)
//   DSM_NODES      = cluster size            (default: 16, the paper's)
//   DSM_JOBS       = worker threads for the sweep (also --jobs N / -jN;
//                    default: one per hardware thread; 1 = serial)
//   DSM_MEM_BUDGET = cap on the summed estimated footprint of in-flight
//                    simulations (also --mem-budget BYTES; suffixes
//                    K/M/G; 0 or unset = unlimited)
//   DSM_ALLOC      = arena | heap (also --alloc=...; default arena) —
//                    payload/twin/diff allocator (common/arena.hpp)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel_harness.hpp"
#include "harness/report.hpp"

namespace dsm::bench {

inline apps::Scale scale_from_env() {
  const char* s = std::getenv("DSM_SCALE");
  if (s == nullptr) return apps::Scale::kSmall;
  if (std::strcmp(s, "tiny") == 0) return apps::Scale::kTiny;
  if (std::strcmp(s, "default") == 0) return apps::Scale::kDefault;
  return apps::Scale::kSmall;
}

inline int nodes_from_env() {
  const char* s = std::getenv("DSM_NODES");
  return s == nullptr ? 16 : std::atoi(s);
}

/// --jobs N / --jobs=N / -jN on the command line, else DSM_JOBS, else one
/// worker per hardware thread.  The sweep is deterministic at any value.
inline int jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--jobs") == 0 ||
         std::strcmp(argv[i], "-j") == 0) && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) return std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "-j", 2) == 0 && argv[i][2] != '\0') {
      return std::atoi(argv[i] + 2);
    }
  }
  const char* s = std::getenv("DSM_JOBS");
  if (s != nullptr) return std::atoi(s);
  return ThreadPool::hardware_threads();
}

/// Parses "4G" / "512M" / "1048576" byte sizes; returns 0 on bad input.
inline std::uint64_t parse_bytes(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0) return 0;
  std::uint64_t mult = 1;
  switch (*end) {
    case 'k': case 'K': mult = 1ull << 10; break;
    case 'm': case 'M': mult = 1ull << 20; break;
    case 'g': case 'G': mult = 1ull << 30; break;
    default: break;
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

/// --mem-budget BYTES / --mem-budget=BYTES, else DSM_MEM_BUDGET, else 0
/// (unlimited).  See common/mem_budget.hpp.
inline std::uint64_t mem_budget_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
      return parse_bytes(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--mem-budget=", 13) == 0) {
      return parse_bytes(argv[i] + 13);
    }
  }
  const char* s = std::getenv("DSM_MEM_BUDGET");
  return s == nullptr ? 0 : parse_bytes(s);
}

/// --alloc arena|heap / --alloc=..., else DSM_ALLOC, else arena (the
/// default).  Applies the choice process-wide (Arena::set_enabled) and
/// returns true when the arena allocator is active.
inline bool alloc_from_args(int argc, char** argv) {
  const char* choice = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc") == 0 && i + 1 < argc) {
      choice = argv[i + 1];
    } else if (std::strncmp(argv[i], "--alloc=", 8) == 0) {
      choice = argv[i] + 8;
    }
  }
  if (choice == nullptr) choice = std::getenv("DSM_ALLOC");
  const bool arena = choice == nullptr || std::strcmp(choice, "heap") != 0;
  Arena::set_enabled(arena);
  return arena;
}

/// Fans `keys` out across `jobs` workers into the Harness cache, so the
/// (serial, deterministically ordered) table code below reads cached
/// results.  jobs <= 1 keeps the classic lazy serial path.  A non-zero
/// `mem_budget` caps the summed estimated footprint of in-flight runs.
inline void prewarm(harness::Harness& h, const std::vector<harness::ExpKey>& keys,
                    int jobs, std::uint64_t mem_budget = 0) {
  if (jobs <= 1 || keys.size() < 2) return;
  MemBudget budget(mem_budget);
  harness::ParallelHarness ph(h, jobs, mem_budget != 0 ? &budget : nullptr);
  ph.prewarm(keys);
  h.set_mem_budget(nullptr);  // budget dies with this scope
}

/// Parallel sequential-baseline warmup (Table 1 and the speedup divisors).
inline void prewarm_seq(harness::Harness& h,
                        const std::vector<std::string>& apps, int jobs) {
  if (jobs <= 1 || apps.size() < 2) return;
  ThreadPool pool(jobs);
  for (const std::string& a : apps) {
    pool.submit([&h, a] { h.sequential_time(a); });
  }
  pool.wait_idle();
}

/// All registered application names, registry order.
inline std::vector<std::string> all_app_names() {
  std::vector<std::string> v;
  for (const auto& info : apps::registry()) v.push_back(info.name);
  return v;
}

inline const char* scale_name(apps::Scale s) {
  switch (s) {
    case apps::Scale::kTiny: return "tiny";
    case apps::Scale::kSmall: return "small";
    case apps::Scale::kDefault: return "default";
  }
  return "?";
}

inline void banner(const char* what, const char* paper_ref,
                   const harness::Harness& h) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(reproduces %s; %d nodes, %s problem scale)\n", paper_ref,
              h.nodes(), scale_name(h.scale()));
  std::printf("==============================================================\n\n");
  std::fflush(stdout);
}

}  // namespace dsm::bench
