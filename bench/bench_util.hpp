// Shared helpers for the paper-reproduction bench binaries.
//
// Every binary honors:
//   DSM_SCALE  = tiny | small | default   (problem sizes; default: small)
//   DSM_NODES  = cluster size             (default: 16, the paper's)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace dsm::bench {

inline apps::Scale scale_from_env() {
  const char* s = std::getenv("DSM_SCALE");
  if (s == nullptr) return apps::Scale::kSmall;
  if (std::strcmp(s, "tiny") == 0) return apps::Scale::kTiny;
  if (std::strcmp(s, "default") == 0) return apps::Scale::kDefault;
  return apps::Scale::kSmall;
}

inline int nodes_from_env() {
  const char* s = std::getenv("DSM_NODES");
  return s == nullptr ? 16 : std::atoi(s);
}

inline const char* scale_name(apps::Scale s) {
  switch (s) {
    case apps::Scale::kTiny: return "tiny";
    case apps::Scale::kSmall: return "small";
    case apps::Scale::kDefault: return "default";
  }
  return "?";
}

inline void banner(const char* what, const char* paper_ref,
                   const harness::Harness& h) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(reproduces %s; %d nodes, %s problem scale)\n", paper_ref,
              h.nodes(), scale_name(h.scale()));
  std::printf("==============================================================\n\n");
  std::fflush(stdout);
}

}  // namespace dsm::bench
