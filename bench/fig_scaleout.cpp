// Scale-out figure: speedup, message and traffic scaling versus cluster
// size, per protocol x granularity.  The paper stops at 16 nodes (its
// cluster); this sweep rides the calendar-queue + SoA engine to 64, 256
// and 1024 simulated nodes and emits BENCH_scaleout.json/.csv for the
// scalability figure in EXPERIMENTS.md.
//
// At 1024 nodes the sweep also cross-checks admission control: the static
// estimated_run_bytes must bound the measured footprint (copy regions +
// protocol metadata + SoA tables) of every run — the estimate is what
// ParallelHarness reserves before anything has run, so an under-estimate
// at scale would let concurrent 1024-node runs overcommit the host.
//
// --quick: {16, 64} nodes on two apps (the CI smoke); full: {16, 64, 256,
// 1024} on three.  DSM_SCALE overrides the problem size (default tiny —
// virtual time scales with the app, host time with events, and the
// scale-out axis is nodes, not problem size).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

dsm::apps::Scale scaleout_scale() {
  const char* s = std::getenv("DSM_SCALE");
  if (s == nullptr) return dsm::apps::Scale::kTiny;
  return dsm::bench::scale_from_env();
}

struct Row {
  std::string app;
  dsm::ProtocolKind proto;
  std::size_t gran;
  int nodes;
  double speedup;
  double parallel_ms;
  std::uint64_t messages;
  std::uint64_t traffic_bytes;
  std::uint64_t payload_bytes;
  std::uint64_t sim_events;
  double host_seconds;
  std::uint64_t soa_table_bytes;
  std::uint64_t evq_max_depth;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const apps::Scale scale = scaleout_scale();

  const std::vector<int> node_counts =
      quick ? std::vector<int>{16, 64} : std::vector<int>{16, 64, 256, 1024};
  const std::vector<std::string> app_list =
      quick ? std::vector<std::string>{"LU", "FFT"}
            : std::vector<std::string>{"LU", "FFT", "Water-Nsquared"};
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC, ProtocolKind::kMWLRC};
  const std::vector<std::size_t> grains =
      quick ? std::vector<std::size_t>{4096}
            : std::vector<std::size_t>{1024, 4096};

  std::printf("fig_scaleout%s: %zu apps x 4 protocols x %zu grains x %zu "
              "node counts\n\n",
              quick ? " --quick" : "", app_list.size(), grains.size(),
              node_counts.size());

  ArenaScope main_arena;
  std::vector<Row> rows;
  int estimate_failures = 0;

  for (const int n : node_counts) {
    harness::Harness h(scale, n);
    h.set_progress(false);
    for (const auto& app : app_list) {
      for (const ProtocolKind p : protos) {
        for (const std::size_t g : grains) {
          const auto& r = h.run(app, p, g);
          Row row;
          row.app = app;
          row.proto = p;
          row.gran = g;
          row.nodes = n;
          row.speedup = r.speedup;
          row.parallel_ms = static_cast<double>(r.parallel_time) / 1e6;
          row.messages = r.stats.messages;
          row.traffic_bytes = r.stats.traffic_bytes;
          row.payload_bytes = r.stats.payload_bytes;
          row.sim_events = r.stats.sim_events;
          row.host_seconds = r.host_seconds;
          row.soa_table_bytes = r.stats.soa_table_bytes;
          row.evq_max_depth = r.stats.evq_max_bucket_depth;
          rows.push_back(row);

          // Estimate-vs-measured footprint check at the largest scale:
          // the static estimate must stay an upper bound on what the run
          // actually committed.
          if (n == node_counts.back()) {
            DsmConfig c;
            c.nodes = n;
            c.granularity = g;
            switch (scale) {
              case apps::Scale::kTiny: c.shared_bytes = 8u << 20; break;
              case apps::Scale::kSmall: c.shared_bytes = 16u << 20; break;
              case apps::Scale::kDefault: c.shared_bytes = 32u << 20; break;
            }
            const std::uint64_t est = estimated_run_bytes(c);
            const std::uint64_t measured =
                r.stats.replicated_bytes + r.stats.protocol_meta_bytes +
                r.stats.soa_table_bytes + r.stats.peak_twin_bytes +
                r.stats.peak_bitmap_bytes;
            if (measured > est) {
              ++estimate_failures;
              std::fprintf(stderr,
                           "ESTIMATE FAIL: %s %s %zuB %d nodes: measured "
                           "%llu > estimated %llu\n",
                           app.c_str(), to_string(p), g, n,
                           static_cast<unsigned long long>(measured),
                           static_cast<unsigned long long>(est));
            }
          }
        }
      }
      std::printf("  %-16s %4d nodes done\n", app.c_str(), n);
    }
  }

  // Console summary: speedup vs node count per protocol at the largest
  // granularity (the figure's headline panel).
  const std::size_t head_gran = grains.back();
  std::printf("\nspeedup vs nodes (gran %zuB):\n", head_gran);
  std::printf("  %-16s %-7s", "app", "proto");
  for (const int n : node_counts) std::printf("  %6d", n);
  std::printf("\n");
  for (const auto& app : app_list) {
    for (const ProtocolKind p : protos) {
      std::printf("  %-16s %-7s", app.c_str(), to_string(p));
      for (const int n : node_counts) {
        for (const Row& row : rows) {
          if (row.app == app && row.proto == p && row.gran == head_gran &&
              row.nodes == n) {
            std::printf("  %6.2f", row.speedup);
          }
        }
      }
      std::printf("\n");
    }
  }

  std::FILE* csv = std::fopen("BENCH_scaleout.csv", "w");
  if (csv != nullptr) {
    std::fprintf(csv,
                 "app,protocol,gran,nodes,speedup,parallel_ms,messages,"
                 "traffic_bytes,payload_bytes,sim_events,host_seconds,"
                 "soa_table_bytes,evq_max_bucket_depth\n");
    for (const Row& r : rows) {
      std::fprintf(csv, "%s,%s,%zu,%d,%.4f,%.4f,%llu,%llu,%llu,%llu,%.4f,"
                        "%llu,%llu\n",
                   r.app.c_str(), to_string(r.proto), r.gran, r.nodes,
                   r.speedup, r.parallel_ms,
                   static_cast<unsigned long long>(r.messages),
                   static_cast<unsigned long long>(r.traffic_bytes),
                   static_cast<unsigned long long>(r.payload_bytes),
                   static_cast<unsigned long long>(r.sim_events),
                   r.host_seconds,
                   static_cast<unsigned long long>(r.soa_table_bytes),
                   static_cast<unsigned long long>(r.evq_max_depth));
    }
    std::fclose(csv);
    std::printf("\nwrote BENCH_scaleout.csv (%zu rows)\n", rows.size());
  }

  std::FILE* f = std::fopen("BENCH_scaleout.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"quick\": %s,\n  \"estimate_check_nodes\": %d,\n"
                    "  \"estimate_failures\": %d,\n  \"rows\": [\n",
                 quick ? "true" : "false", node_counts.back(),
                 estimate_failures);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"protocol\": \"%s\", \"gran\": "
                   "%zu, \"nodes\": %d, \"speedup\": %.4f, \"parallel_ms\": "
                   "%.4f, \"messages\": %llu, \"traffic_bytes\": %llu, "
                   "\"payload_bytes\": %llu, \"sim_events\": %llu, "
                   "\"host_seconds\": %.4f, \"soa_table_bytes\": %llu, "
                   "\"evq_max_bucket_depth\": %llu}%s\n",
                   r.app.c_str(), to_string(r.proto), r.gran, r.nodes,
                   r.speedup, r.parallel_ms,
                   static_cast<unsigned long long>(r.messages),
                   static_cast<unsigned long long>(r.traffic_bytes),
                   static_cast<unsigned long long>(r.payload_bytes),
                   static_cast<unsigned long long>(r.sim_events),
                   r.host_seconds,
                   static_cast<unsigned long long>(r.soa_table_bytes),
                   static_cast<unsigned long long>(r.evq_max_depth),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_scaleout.json\n");
  }
  if (estimate_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %d run(s) exceeded the static footprint estimate\n",
                 estimate_failures);
  }
  return estimate_failures == 0 ? 0 : 1;
}
