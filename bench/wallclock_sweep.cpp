// Host wall-clock benchmark for the parallel sweep executor: runs a fixed
// sub-sweep twice — serially (-j1) and on the thread pool (-jN) — checks
// the results are bitwise identical, and emits BENCH_wallclock.json with
// wall seconds, speedup, simulator throughput (events/sec), the top-10
// slowest app/protocol/granularity combinations, a twin-scan vs
// dirty-bitmap A/B over the LRC protocols (write-tracking ablation), a
// malloc-vs-arena allocator A/B (--alloc escape hatch, common/arena.hpp),
// a trace-mode A/B (off vs breakdown vs full, src/trace) that doubles
// as the proof tracing never changes a simulated result, and an MW-LRC
// barrier-GC A/B (--gc, DESIGN.md §5h): identity plus <= 5% host time on
// the app matrix, >= 50% peak-archive cut on the stress driver; and a
// service-workload identity gate (src/svc) that pins the request-latency
// digests bitwise across serial / --sim-par=window / -jN / --alloc=heap /
// --event-queue=binary execution.
//
// A prior run's BENCH_wallclock.json doubles as the host-seconds profile
// for the pool's longest-jobs-first ordering (Harness::load_profile).
//
// --quick shrinks the sweep to a CI smoke: it still runs every pass and
// fails if any arena-mode run needed more than a handful of heap-fallback
// allocations (a regression guard against hot-path buffers outgrowing the
// arena's class ladder), or if breakdown-mode tracing cost more than 10%
// host time over the same sweep (the breakdown must stay cheap enough to
// leave on for whole sweeps).
//
// Everything else in bench/ measures VIRTUAL time inside the simulation;
// this target measures the simulator itself.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "archive_stress_app.hpp"
#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Arena-mode runs should need zero heap fallbacks (no simulator buffer
// exceeds the 4 MiB max size class); a little slack keeps the gate from
// tripping on some future oversized-but-rare control message.
constexpr std::uint64_t kMaxFallbacksPerRun = 8;

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  int jobs = bench::jobs_from_args(argc, argv);
  if (jobs < 2) jobs = 2;  // "-j1 vs -j1" would measure nothing
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Fixed sub-sweep: 4 apps x 3 protocols x 2 granularities = 24 runs
  // plus 4 sequential baselines (--quick: 2 apps x 3 x 1 = 6 runs).
  const std::vector<std::string> app_list =
      quick ? std::vector<std::string>{"LU", "FFT"}
            : std::vector<std::string>{"LU", "FFT", "Water-Spatial",
                                       "Raytrace"};
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC};
  const std::vector<std::size_t> grains =
      quick ? std::vector<std::size_t>{4096}
            : std::vector<std::size_t>{256, 4096};
  const std::vector<harness::ExpKey> keys =
      harness::ParallelHarness::cross(app_list, protos, grains);

  std::printf("wallclock_sweep%s: %zu runs, serial then -j%d "
              "(host threads: %d)\n\n",
              quick ? " --quick" : "", keys.size(), jobs,
              ThreadPool::hardware_threads());

  // Serial passes run on this thread; give it an arena like the pool
  // workers have (dormant during the heap A/B pass).
  ArenaScope main_arena;

  // Pass 1: serial, arena mode (the default).  Fresh harness so nothing is
  // pre-cached.
  harness::Harness serial(scale, nodes);
  serial.set_progress(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& k : keys) serial.run(k);
  const double serial_s = seconds_since(t0);

  // Heap-fallback gate: in arena mode the steady-state sweep must not fall
  // back to the heap (the class ladder covers every simulator buffer).
  std::uint64_t fallbacks = 0, max_run_fallbacks = 0;
  for (const auto& k : keys) {
    const std::uint64_t f = serial.run(k).stats.heap_fallback_allocs;
    fallbacks += f;
    max_run_fallbacks = std::max(max_run_fallbacks, f);
  }
  const bool fallback_ok = max_run_fallbacks <= kMaxFallbacksPerRun;
  if (!fallback_ok) {
    std::fprintf(stderr,
                 "FAIL: a run needed %llu heap-fallback allocations in arena "
                 "mode (limit %llu)\n",
                 static_cast<unsigned long long>(max_run_fallbacks),
                 static_cast<unsigned long long>(kMaxFallbacksPerRun));
  }

  // Pass 2: same sweep on the pool, again from a cold cache.  A previous
  // BENCH_wallclock.json (if any) seeds the longest-jobs-first order; an
  // optional --mem-budget / DSM_MEM_BUDGET caps in-flight footprint.
  // Neither may change any result.
  const std::uint64_t mem_budget = bench::mem_budget_from_args(argc, argv);
  harness::Harness par(scale, nodes);
  par.set_progress(false);
  par.load_profile("BENCH_wallclock.json");
  MemBudget budget(mem_budget);
  harness::ParallelHarness ph(par, jobs, mem_budget != 0 ? &budget : nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  ph.prewarm(keys);
  const double par_s = seconds_since(t1);
  par.set_mem_budget(nullptr);

  // The pool must not have perturbed a single simulation: compare every
  // run bitwise against the serial pass.
  int mismatches = 0;
  std::uint64_t events = 0;
  for (const auto& k : keys) {
    const auto& a = serial.run(k);
    const auto& b = par.run(k);
    events += a.stats.sim_events;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }

  const double speedup = serial_s / par_s;
  std::printf("serial   : %7.2f s   (%.0f events/s)\n", serial_s,
              static_cast<double>(events) / serial_s);
  std::printf("-j%-2d     : %7.2f s   (%.0f events/s)\n", jobs, par_s,
              static_cast<double>(events) / par_s);
  std::printf("speedup  : %.2fx\n", speedup);
  std::printf("identical: %s\n", mismatches == 0 ? "yes" : "NO");
  std::printf("arena    : %llu heap fallback(s) across the sweep (gate: %s)\n",
              static_cast<unsigned long long>(fallbacks),
              fallback_ok ? "ok" : "FAIL");

  // Allocator A/B: the identical serial sweep with arenas disabled — every
  // payload/twin/diff goes through the process heap, as before this
  // subsystem existed.  Results must be bitwise identical (the arena only
  // moves bytes, never changes them); the delta is pure host time.
  Arena::set_enabled(false);
  harness::Harness heap_h(scale, nodes);
  heap_h.set_progress(false);
  heap_h.set_trace(trace::Mode::kOff);
  for (const auto& a : app_list) heap_h.sequential_time(a);
  const auto t_heap = std::chrono::steady_clock::now();
  for (const auto& k : keys) heap_h.run(k);
  const double heap_s = seconds_since(t_heap);
  Arena::set_enabled(true);
  // Arena-mode serial pass under the same conditions (baselines cached) so
  // the A/B compares sweep time only, not baseline time.
  harness::Harness arena_h(scale, nodes);
  arena_h.set_progress(false);
  arena_h.set_trace(trace::Mode::kOff);
  for (const auto& a : app_list) arena_h.sequential_time(a);
  const auto t_arena = std::chrono::steady_clock::now();
  for (const auto& k : keys) arena_h.run(k);
  const double arena_s = seconds_since(t_arena);

  int alloc_mismatches = 0;
  for (const auto& k : keys) {
    const auto& a = heap_h.run(k);
    const auto& b = arena_h.run(k);
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++alloc_mismatches;
      std::fprintf(stderr, "ALLOC MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  std::printf("\nallocator A/B (%zu runs, serial, baselines cached):\n",
              keys.size());
  std::printf("  heap  : %7.2f s   (--alloc=heap)\n", heap_s);
  std::printf("  arena : %7.2f s   (%.2fx)\n", arena_s, heap_s / arena_s);
  std::printf("  identical: %s\n", alloc_mismatches == 0 ? "yes" : "NO");

  // Trace-mode A/B: the same serial sweep with the virtual-time breakdown
  // and with full event tracing.  Tracing is host-side only, so every
  // deterministic field must be bitwise identical to the trace-off pass
  // (arena_h above, which ran under identical conditions); the deltas are
  // the observability tax.  --quick gates the breakdown tax at 10% — the
  // mode sweeps are expected to keep enabled.
  harness::Harness bd_h(scale, nodes);
  bd_h.set_progress(false);
  bd_h.set_trace(trace::Mode::kBreakdown);
  harness::Harness full_h(scale, nodes);
  full_h.set_progress(false);
  full_h.set_trace(trace::Mode::kFull);
  for (const auto& a : app_list) {
    bd_h.sequential_time(a);
    full_h.sequential_time(a);
  }
  const auto t_bd = std::chrono::steady_clock::now();
  for (const auto& k : keys) bd_h.run(k);
  const double bd_s = seconds_since(t_bd);
  const auto t_full = std::chrono::steady_clock::now();
  for (const auto& k : keys) full_h.run(k);
  const double full_s = seconds_since(t_full);

  int trace_mismatches = 0;
  for (const auto& k : keys) {
    const auto& a = arena_h.run(k);  // trace off
    const auto& b = bd_h.run(k);
    const auto& c = full_h.run(k);
    if (a.parallel_time != b.parallel_time ||
        a.parallel_time != c.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.messages != c.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.traffic_bytes != c.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.payload_bytes != c.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events ||
        a.stats.sim_events != c.stats.sim_events ||
        b.breakdown.empty() || c.breakdown.empty()) {
      ++trace_mismatches;
      std::fprintf(stderr, "TRACE MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  const double bd_overhead = bd_s / arena_s - 1.0;
  const double full_overhead = full_s / arena_s - 1.0;
  // Absolute slack absorbs timer noise on sub-second --quick sweeps.
  const bool trace_ok = !quick || bd_s <= arena_s * 1.10 + 0.5;
  std::printf("\ntrace-mode A/B (%zu runs, serial, baselines cached):\n",
              keys.size());
  std::printf("  off       : %7.2f s\n", arena_s);
  std::printf("  breakdown : %7.2f s   (%+.1f%%%s)\n", bd_s,
              100.0 * bd_overhead,
              quick ? (trace_ok ? ", gate ok" : ", gate FAIL") : "");
  std::printf("  full      : %7.2f s   (%+.1f%%)\n", full_s,
              100.0 * full_overhead);
  std::printf("  identical : %s\n", trace_mismatches == 0 ? "yes" : "NO");
  if (!trace_ok) {
    std::fprintf(stderr,
                 "FAIL: breakdown tracing cost %.1f%% host time "
                 "(--quick gate: 10%%)\n",
                 100.0 * bd_overhead);
  }

  // Per-run breakdown: which combinations dominate the sweep's wall clock.
  // host_seconds comes from the serial pass, so the numbers are undiluted
  // by pool contention.  This section feeds the next run's LJF profile.
  struct Slow {
    const harness::ExpKey* key;
    double seconds;
  };
  std::vector<Slow> slow;
  slow.reserve(keys.size());
  for (const auto& k : keys) slow.push_back({&k, serial.run(k).host_seconds});
  std::sort(slow.begin(), slow.end(),
            [](const Slow& a, const Slow& b) { return a.seconds > b.seconds; });
  const std::size_t top_n = std::min<std::size_t>(10, slow.size());
  std::printf("\nslowest %zu runs (serial pass):\n", top_n);
  for (std::size_t i = 0; i < top_n; ++i) {
    std::printf("  %-16s %-7s %5zuB  %6.2f s\n", slow[i].key->app.c_str(),
                to_string(slow[i].key->proto), slow[i].key->gran,
                slow[i].seconds);
  }

  // Write-tracking A/B over the LRC protocols (the only consumers of the
  // release-path scan): the same sub-sweep under the reference full
  // twin-scan and under the default dirty-word bitmap.  Results must match
  // on every pre-change field — the bitmap only changes HOST time.
  // Skipped under --quick (the smoke only guards determinism + fallbacks).
  double lrc_scan_s = 0.0, lrc_bitmap_s = 0.0;
  int lrc_mismatches = 0;
  std::size_t lrc_count = 0;
  if (!quick) {
    const ProtocolKind lrc_protos[] = {ProtocolKind::kHLRC,
                                       ProtocolKind::kMWLRC};
    const std::vector<harness::ExpKey> lrc_keys =
        harness::ParallelHarness::cross(app_list, lrc_protos, grains);
    lrc_count = lrc_keys.size();

    harness::Harness scan_h(scale, nodes);
    scan_h.set_progress(false);
    scan_h.set_write_tracking(WriteTracking::kTwinScan);
    harness::Harness bitmap_h(scale, nodes);
    bitmap_h.set_progress(false);  // default mode: kTwinBitmap
    // Sequential baselines outside the timed window (shared by every run).
    for (const auto& a : app_list) {
      scan_h.sequential_time(a);
      bitmap_h.sequential_time(a);
    }
    const auto t2 = std::chrono::steady_clock::now();
    for (const auto& k : lrc_keys) scan_h.run(k);
    lrc_scan_s = seconds_since(t2);
    const auto t3 = std::chrono::steady_clock::now();
    for (const auto& k : lrc_keys) bitmap_h.run(k);
    lrc_bitmap_s = seconds_since(t3);

    for (const auto& k : lrc_keys) {
      const auto& a = scan_h.run(k);
      const auto& b = bitmap_h.run(k);
      if (a.parallel_time != b.parallel_time ||
          a.stats.messages != b.stats.messages ||
          a.stats.traffic_bytes != b.stats.traffic_bytes ||
          a.stats.sim_events != b.stats.sim_events) {
        ++lrc_mismatches;
        std::fprintf(stderr, "WRITE-TRACKING MISMATCH: %s %s %zuB\n",
                     k.app.c_str(), to_string(k.proto), k.gran);
      }
    }
    std::printf("\nLRC write-tracking A/B (%zu runs, serial):\n",
                lrc_keys.size());
    std::printf("  twin-scan   : %7.2f s\n", lrc_scan_s);
    std::printf("  twin-bitmap : %7.2f s   (%.2fx)\n", lrc_bitmap_s,
                lrc_scan_s / lrc_bitmap_s);
    std::printf("  identical   : %s\n", lrc_mismatches == 0 ? "yes" : "NO");
  }
  // Engine backend A/B: the same serial sweep on the reference engine
  // (binary-heap queues + unordered_map block state) versus the default
  // (calendar queues + SoA tables).  The backends must be bitwise
  // identical — the pop order and first-touch slot order are the same by
  // construction — so the delta is pure host time.  --quick gates the
  // default at no-regression versus the reference.
  harness::Harness engref_h(scale, nodes);
  engref_h.set_progress(false);
  engref_h.set_trace(trace::Mode::kOff);
  engref_h.set_event_queue(sim::EventQueueKind::kBinary);
  engref_h.set_block_state(mem::BlockStateKind::kMap);
  for (const auto& a : app_list) engref_h.sequential_time(a);
  const auto t_engref = std::chrono::steady_clock::now();
  for (const auto& k : keys) engref_h.run(k);
  const double engine_ref_s = seconds_since(t_engref);

  int engine_mismatches = 0;
  for (const auto& k : keys) {
    const auto& a = engref_h.run(k);
    const auto& b = arena_h.run(k);  // default engine, same conditions
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++engine_mismatches;
      std::fprintf(stderr, "ENGINE MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  std::uint64_t engine_events = 0;
  for (const auto& k : keys) engine_events += arena_h.run(k).stats.sim_events;
  // arena_s timed the identical sweep on the default engine under the same
  // cached-baseline conditions; reuse it as the default side of the A/B.
  const double engine_default_s = arena_s;
  const bool engine_ok =
      !quick || engine_default_s <= engine_ref_s * 1.10 + 0.5;
  std::printf("\nengine backend A/B (%zu runs, serial, baselines cached):\n",
              keys.size());
  std::printf("  binary+map   : %7.2f s   (%.0f events/s)\n", engine_ref_s,
              static_cast<double>(engine_events) / engine_ref_s);
  std::printf("  calendar+soa : %7.2f s   (%.0f events/s, %.2fx%s)\n",
              engine_default_s,
              static_cast<double>(engine_events) / engine_default_s,
              engine_ref_s / engine_default_s,
              quick ? (engine_ok ? ", gate ok" : ", gate FAIL") : "");
  std::printf("  identical    : %s\n", engine_mismatches == 0 ? "yes" : "NO");
  if (!engine_ok) {
    std::fprintf(stderr,
                 "FAIL: calendar+soa engine regressed %.1f%% versus the "
                 "binary+map reference (--quick gate: 10%%)\n",
                 100.0 * (engine_default_s / engine_ref_s - 1.0));
  }

  // 256-node engine A/B: the scale the engine work targets.  Always at
  // tiny problem size — this gates the ENGINE at high node counts, not the
  // apps — and on a reduced matrix so the section stays a few seconds.
  // Whole-run throughput at 256 nodes is dominated by per-node region
  // setup, snapshots and barrier fan-in (identical across backends), so
  // the gate here is bitwise identity + no-regression; the >= 1.5x claim
  // is gated below on the component stress, where the replaced structures
  // are actually the bottleneck.
  const std::vector<std::string> e256_apps{"LU", "FFT"};
  const ProtocolKind e256_protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                      ProtocolKind::kHLRC,
                                      ProtocolKind::kMWLRC};
  const std::vector<harness::ExpKey> e256_keys = harness::ParallelHarness::cross(
      e256_apps, e256_protos, std::vector<std::size_t>{1024});
  harness::Harness e256_ref(apps::Scale::kTiny, 256);
  e256_ref.set_progress(false);
  e256_ref.set_event_queue(sim::EventQueueKind::kBinary);
  e256_ref.set_block_state(mem::BlockStateKind::kMap);
  harness::Harness e256_def(apps::Scale::kTiny, 256);
  e256_def.set_progress(false);
  for (const auto& a : e256_apps) {
    e256_ref.sequential_time(a);
    e256_def.sequential_time(a);
  }
  const auto t_e256r = std::chrono::steady_clock::now();
  for (const auto& k : e256_keys) e256_ref.run(k);
  const double e256_ref_s = seconds_since(t_e256r);
  const auto t_e256d = std::chrono::steady_clock::now();
  for (const auto& k : e256_keys) e256_def.run(k);
  const double e256_def_s = seconds_since(t_e256d);
  int e256_mismatches = 0;
  std::uint64_t e256_events = 0;
  for (const auto& k : e256_keys) {
    const auto& a = e256_ref.run(k);
    const auto& b = e256_def.run(k);
    e256_events += b.stats.sim_events;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++e256_mismatches;
      std::fprintf(stderr, "ENGINE-256 MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  const bool e256_ok = e256_def_s <= e256_ref_s * 1.15 + 0.5;
  std::printf("\nengine A/B at 256 nodes (%zu runs, tiny, serial):\n",
              e256_keys.size());
  std::printf("  binary+map   : %7.2f s   (%.0f events/s)\n", e256_ref_s,
              static_cast<double>(e256_events) / e256_ref_s);
  std::printf("  calendar+soa : %7.2f s   (%.0f events/s, %.2fx, gate %s)\n",
              e256_def_s, static_cast<double>(e256_events) / e256_def_s,
              e256_ref_s / e256_def_s, e256_ok ? "ok" : "FAIL");
  std::printf("  identical    : %s\n", e256_mismatches == 0 ? "yes" : "NO");
  if (!e256_ok) {
    std::fprintf(stderr, "FAIL: calendar+soa engine regressed %.1f%% at 256 "
                         "nodes (gate: 15%%)\n",
                 100.0 * (e256_def_s / e256_ref_s - 1.0));
  }

  // Component stress at 256-node load: the two structures the engine
  // swap replaced, exercised where they ARE the bottleneck.  Queue: a
  // classic hold model (pop-min, push back at min + random hold) at the
  // in-flight depth of a 256-node run; the calendar queue must beat the
  // binary heap by >= 1.5x (absolute slack absorbs sub-second timer
  // noise).  Tables: the hit-heavy ensure() mix of a 256-node run; SoA
  // must not regress versus unordered_map.  Best-of-3 per side.
  const double stress_heap_s = bench::engine_queue_stress_seconds(false);
  const double stress_cal_s = bench::engine_queue_stress_seconds(true);
  const double stress_map_s = bench::engine_state_stress_seconds(false);
  const double stress_soa_s = bench::engine_state_stress_seconds(true);
  const bool stress_queue_ok = stress_cal_s * 1.5 <= stress_heap_s + 0.25;
  const bool stress_state_ok = stress_soa_s <= stress_map_s * 1.10 + 0.25;
  std::printf("\nengine component stress (256-node load, best of 3):\n");
  std::printf("  queue  heap    : %7.3f s\n", stress_heap_s);
  std::printf("  queue  calendar: %7.3f s   (%.2fx, >=1.5x gate %s)\n",
              stress_cal_s, stress_heap_s / stress_cal_s,
              stress_queue_ok ? "ok" : "FAIL");
  std::printf("  tables map     : %7.3f s\n", stress_map_s);
  std::printf("  tables soa     : %7.3f s   (%.2fx, gate %s)\n", stress_soa_s,
              stress_map_s / stress_soa_s, stress_state_ok ? "ok" : "FAIL");
  if (!stress_queue_ok) {
    std::fprintf(stderr, "FAIL: calendar queue only %.2fx of the binary heap "
                         "under the 256-node hold model (gate: 1.5x)\n",
                 stress_heap_s / stress_cal_s);
  }
  if (!stress_state_ok) {
    std::fprintf(stderr, "FAIL: SoA block tables regressed versus "
                         "unordered_map under the 256-node ensure mix\n");
  }

  // Parallel-DES A/B (--sim-par=window, DESIGN.md §5g): the reduced
  // 256-node matrix above, serial engine versus lookahead-window engine.
  // One hardware thread cannot show wall-clock speedup, so the gates are
  // the ones that matter on any host: bitwise identity on every compared
  // field, no host-time regression beyond noise, and window occupancy —
  // the windows must actually batch work (>= 2 events per window on
  // average at 256 nodes) or the mode is all overhead and no concurrency.
  harness::Harness sp_off(apps::Scale::kTiny, 256);
  sp_off.set_progress(false);
  harness::Harness sp_win(apps::Scale::kTiny, 256);
  sp_win.set_progress(false);
  // The A/B runs both modes itself; --sim-par-workers / DSM_SIM_PAR_WORKERS
  // only picks the pool width of the windowed side (0 = auto).
  int sp_workers = 0;
  bench::sim_par_from_args(argc, argv, &sp_workers);
  sp_win.set_sim_par(sim::SimPar::kWindow, sp_workers);
  for (const auto& a : e256_apps) {
    sp_off.sequential_time(a);
    sp_win.sequential_time(a);
  }
  const auto t_sp_off = std::chrono::steady_clock::now();
  for (const auto& k : e256_keys) sp_off.run(k);
  const double sp_off_s = seconds_since(t_sp_off);
  const auto t_sp_win = std::chrono::steady_clock::now();
  for (const auto& k : e256_keys) sp_win.run(k);
  const double sp_win_s = seconds_since(t_sp_win);

  int sp_mismatches = 0;
  std::uint64_t sp_windows = 0, sp_window_events = 0;
  for (const auto& k : e256_keys) {
    const auto& a = sp_off.run(k);
    const auto& b = sp_win.run(k);
    sp_windows += b.stats.simpar_windows;
    sp_window_events += b.stats.simpar_window_events;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++sp_mismatches;
      std::fprintf(stderr, "SIM-PAR MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  const double sp_occupancy =
      sp_windows > 0 ? static_cast<double>(sp_window_events) /
                           static_cast<double>(sp_windows)
                     : 0.0;
  const bool sp_ok = sp_win_s <= sp_off_s * 1.15 + 0.5;
  const bool sp_occ_ok = sp_occupancy >= 2.0;
  std::printf("\nparallel-DES A/B at 256 nodes (%zu runs, tiny, "
              "--sim-par off vs window):\n",
              e256_keys.size());
  std::printf("  serial engine  : %7.2f s\n", sp_off_s);
  std::printf("  window engine  : %7.2f s   (%.2fx, no-regression gate %s)\n",
              sp_win_s, sp_off_s / sp_win_s, sp_ok ? "ok" : "FAIL");
  std::printf("  occupancy      : %llu windows, %llu events "
              "(%.2f ev/window, >=2 gate %s)\n",
              static_cast<unsigned long long>(sp_windows),
              static_cast<unsigned long long>(sp_window_events), sp_occupancy,
              sp_occ_ok ? "ok" : "FAIL");
  std::printf("  identical      : %s\n", sp_mismatches == 0 ? "yes" : "NO");
  if (!sp_ok) {
    std::fprintf(stderr,
                 "FAIL: windowed engine regressed %.1f%% versus serial "
                 "(gate: 15%%)\n",
                 100.0 * (sp_win_s / sp_off_s - 1.0));
  }
  if (!sp_occ_ok) {
    std::fprintf(stderr,
                 "FAIL: %.2f events per window at 256 nodes (gate: >= 2) — "
                 "the lookahead windows are not batching work\n",
                 sp_occupancy);
  }

  // Commit-path cost roll-up for the windowed side: how much work the
  // merge-replay commit did (staged effects, loser-tree merge ops) and what
  // it cost in host time (hand-off + commit ns) across the matrix above.
  std::uint64_t sp_staged = 0, sp_merge = 0, sp_handoff_ns = 0,
                sp_commit_ns = 0;
  for (const auto& k : e256_keys) {
    const auto& st = sp_win.run(k).stats;
    sp_staged += st.simpar_staged_effects;
    sp_merge += st.simpar_merge_ops;
    sp_handoff_ns += st.simpar_handoff_ns;
    sp_commit_ns += st.simpar_commit_ns;
  }
  std::printf("  commit path    : %llu staged effects, %llu merge ops, "
              "%.3f s hand-off, %.3f s commit\n",
              static_cast<unsigned long long>(sp_staged),
              static_cast<unsigned long long>(sp_merge),
              static_cast<double>(sp_handoff_ns) * 1e-9,
              static_cast<double>(sp_commit_ns) * 1e-9);

  // Intra-run wall-clock speedup (multi-core hosts only): re-run the
  // heaviest combination of the reduced matrix, serial engine versus
  // windowed engine with its worker pool, best-of-3 per side.  On a
  // single-core host there is no concurrency to win, so the section is
  // skipped (the container CI stays at identity + occupancy gates); a
  // multi-core host publishes the real curve and gates speedup >= 1.0
  // (absolute slack absorbs timer noise on sub-second runs).
  double intra_off_s = 0.0, intra_win_s = 0.0, intra_speedup = 0.0;
  int intra_mismatches = 0;
  bool intra_ok = true;
  const bool intra_measured = ThreadPool::hardware_threads() > 1;
  const harness::ExpKey* intra_key = nullptr;
  if (intra_measured) {
    double worst = -1.0;
    for (const auto& k : e256_keys) {
      const double s = sp_off.run(k).host_seconds;
      if (s > worst) {
        worst = s;
        intra_key = &k;
      }
    }
    intra_off_s = 1e30;
    intra_win_s = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      harness::Harness off_h(apps::Scale::kTiny, 256);
      off_h.set_progress(false);
      off_h.sequential_time(intra_key->app);
      const auto ta = std::chrono::steady_clock::now();
      off_h.run(*intra_key);
      intra_off_s = std::min(intra_off_s, seconds_since(ta));

      harness::Harness win_h(apps::Scale::kTiny, 256);
      win_h.set_progress(false);
      win_h.set_sim_par(sim::SimPar::kWindow, sp_workers);
      win_h.sequential_time(intra_key->app);
      const auto tb = std::chrono::steady_clock::now();
      win_h.run(*intra_key);
      intra_win_s = std::min(intra_win_s, seconds_since(tb));

      const auto& a = off_h.run(*intra_key);
      const auto& b = win_h.run(*intra_key);
      if (a.parallel_time != b.parallel_time ||
          a.stats.messages != b.stats.messages ||
          a.stats.traffic_bytes != b.stats.traffic_bytes ||
          a.stats.payload_bytes != b.stats.payload_bytes ||
          a.stats.sim_events != b.stats.sim_events) {
        ++intra_mismatches;
        std::fprintf(stderr, "INTRA-RUN MISMATCH: %s %s %zuB\n",
                     intra_key->app.c_str(), to_string(intra_key->proto),
                     intra_key->gran);
      }
    }
    intra_speedup = intra_off_s / intra_win_s;
    intra_ok = intra_mismatches == 0 && intra_win_s <= intra_off_s + 0.25;
    std::printf("\nintra-run speedup (heaviest run: %s %s %zuB, best of 3, "
                "%d host threads):\n",
                intra_key->app.c_str(), to_string(intra_key->proto),
                intra_key->gran, ThreadPool::hardware_threads());
    std::printf("  serial engine  : %7.3f s\n", intra_off_s);
    std::printf("  window engine  : %7.3f s   (%.2fx, >=1.0x gate %s)\n",
                intra_win_s, intra_speedup, intra_ok ? "ok" : "FAIL");
    if (!intra_ok) {
      std::fprintf(stderr,
                   "FAIL: windowed engine %.2fx on a %d-thread host "
                   "(gate: >= 1.0x)\n",
                   intra_speedup, ThreadPool::hardware_threads());
    }
  } else {
    std::printf("\nintra-run speedup: skipped (single hardware thread)\n");
  }

  // MW-LRC barrier-GC A/B (--gc, DESIGN.md §5h): the standard app matrix
  // under MW-LRC with GC off versus GC at every barrier frontier.  Three
  // gates: bitwise identity on every simulated field (the GC is wire-
  // invisible by construction), <= 5% host-time regression over the same
  // matrix, and — on the archive stress driver, where diffs actually die —
  // a >= 50% cut in the peak diff-archive footprint.
  const std::vector<harness::ExpKey> gc_keys = harness::ParallelHarness::cross(
      app_list, std::vector<ProtocolKind>{ProtocolKind::kMWLRC}, grains);
  harness::Harness gc_off_h(scale, nodes);
  gc_off_h.set_progress(false);
  harness::Harness gc_on_h(scale, nodes);
  gc_on_h.set_progress(false);
  std::uint64_t gc_threshold = DsmConfig{}.gc_threshold_bytes;
  bench::gc_from_args(argc, argv, &gc_threshold);  // the A/B runs both modes
  gc_on_h.set_gc(GcMode::kBarrier, gc_threshold);
  for (const auto& a : app_list) {
    gc_off_h.sequential_time(a);
    gc_on_h.sequential_time(a);
  }
  const auto t_gc_off = std::chrono::steady_clock::now();
  for (const auto& k : gc_keys) gc_off_h.run(k);
  const double gc_off_s = seconds_since(t_gc_off);
  const auto t_gc_on = std::chrono::steady_clock::now();
  for (const auto& k : gc_keys) gc_on_h.run(k);
  const double gc_on_s = seconds_since(t_gc_on);

  int gc_mismatches = 0;
  std::uint64_t gc_reclaimed = 0, gc_passes = 0;
  for (const auto& k : gc_keys) {
    const auto& a = gc_off_h.run(k);
    const auto& b = gc_on_h.run(k);
    gc_reclaimed += b.stats.gc_bytes_reclaimed;
    gc_passes += b.stats.gc_passes;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.payload_bytes != b.stats.payload_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++gc_mismatches;
      std::fprintf(stderr, "GC MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }
  const bool gc_time_ok = gc_on_s <= gc_off_s * 1.05 + 0.5;

  // Stress side: the many-epoch fine-grain driver whose archive the GC is
  // for (bench/archive_stress_app.hpp; archive_stress sweeps the full
  // growth curve, this keeps one point as a CI gate).
  std::uint64_t gcs_peak_off = 0, gcs_peak_on = 0;
  {
    const int gcs_epochs = quick ? 10 : 20;
    for (int pass = 0; pass < 2; ++pass) {
      DsmConfig c;
      c.nodes = nodes;
      c.protocol = ProtocolKind::kMWLRC;
      c.granularity = 64;
      c.shared_bytes = 4u << 20;
      c.stack_bytes = 256 * 1024;
      c.gc = pass == 0 ? GcMode::kOff : GcMode::kBarrier;
      c.gc_threshold_bytes = gc_threshold;
      bench::ArchiveStressApp app(gcs_epochs);
      Runtime rt(c);
      const RunStats st = rt.run(app).stats;
      (pass == 0 ? gcs_peak_off : gcs_peak_on) = st.peak_diff_archive_bytes;
    }
  }
  const double gc_reduction =
      gcs_peak_off == 0 ? 0.0
                        : 1.0 - static_cast<double>(gcs_peak_on) /
                                    static_cast<double>(gcs_peak_off);
  const bool gc_reduction_ok = gc_reduction >= 0.5;
  std::printf("\nMW-LRC barrier-GC A/B (%zu runs, serial, baselines "
              "cached):\n",
              gc_keys.size());
  std::printf("  gc off     : %7.2f s\n", gc_off_s);
  std::printf("  gc barrier : %7.2f s   (%+.1f%%, <=5%% gate %s)\n", gc_on_s,
              100.0 * (gc_on_s / gc_off_s - 1.0), gc_time_ok ? "ok" : "FAIL");
  std::printf("  identical  : %s   (%llu passes, %.1f KB reclaimed on the "
              "app matrix)\n",
              gc_mismatches == 0 ? "yes" : "NO",
              static_cast<unsigned long long>(gc_passes),
              static_cast<double>(gc_reclaimed) / 1e3);
  std::printf("  stress peak: %.1f KB -> %.1f KB   (%.0f%% cut, >=50%% gate "
              "%s)\n",
              static_cast<double>(gcs_peak_off) / 1e3,
              static_cast<double>(gcs_peak_on) / 1e3, 100.0 * gc_reduction,
              gc_reduction_ok ? "ok" : "FAIL");
  if (!gc_time_ok) {
    std::fprintf(stderr,
                 "FAIL: barrier GC cost %.1f%% host time on the app matrix "
                 "(gate: 5%%)\n",
                 100.0 * (gc_on_s / gc_off_s - 1.0));
  }
  if (!gc_reduction_ok) {
    std::fprintf(stderr,
                 "FAIL: barrier GC cut the stress peak archive only %.0f%% "
                 "(gate: 50%%)\n",
                 100.0 * gc_reduction);
  }

  // Service-workload identity gates (src/svc, DESIGN.md §5i): the request-
  // latency digests are derived purely from virtual time, so every
  // host-side execution mode must reproduce them bitwise — serial versus
  // --sim-par=window versus the -jN sweep pool versus --alloc=heap versus
  // --event-queue=binary.  Compared fields: parallel_time, messages,
  // traffic, sim_events, plus the latency checksum and every percentile.
  // --quick additionally gates the windowed pass at no-regression on host
  // time (the idle-wait heavy schedule must not defeat the lookahead
  // windows).
  const std::vector<std::string> svc_apps{"SvcKV", "SvcQueue", "SvcLease"};
  const std::vector<harness::ExpKey> svc_keys =
      harness::ParallelHarness::cross(
          svc_apps,
          std::vector<ProtocolKind>{ProtocolKind::kHLRC,
                                    ProtocolKind::kMWLRC},
          quick ? std::vector<std::size_t>{4096}
                : std::vector<std::size_t>{256, 4096});
  const auto svc_differs = [](const harness::ExpResult& a,
                              const harness::ExpResult& b) {
    return a.parallel_time != b.parallel_time ||
           a.stats.messages != b.stats.messages ||
           a.stats.traffic_bytes != b.stats.traffic_bytes ||
           a.stats.sim_events != b.stats.sim_events ||
           !a.has_latency || !b.has_latency ||
           a.latency.requests != b.latency.requests ||
           a.latency.checksum != b.latency.checksum ||
           a.latency.p50_ns != b.latency.p50_ns ||
           a.latency.p99_ns != b.latency.p99_ns ||
           a.latency.p999_ns != b.latency.p999_ns ||
           a.latency.max_ns != b.latency.max_ns;
  };

  harness::Harness svc_base(scale, nodes);
  svc_base.set_progress(false);
  for (const auto& a : svc_apps) svc_base.sequential_time(a);
  const auto t_svc0 = std::chrono::steady_clock::now();
  for (const auto& k : svc_keys) svc_base.run(k);
  const double svc_serial_s = seconds_since(t_svc0);

  harness::Harness svc_win(scale, nodes);
  svc_win.set_progress(false);
  svc_win.set_sim_par(sim::SimPar::kWindow, sp_workers);
  for (const auto& a : svc_apps) svc_win.sequential_time(a);
  const auto t_svc1 = std::chrono::steady_clock::now();
  for (const auto& k : svc_keys) svc_win.run(k);
  const double svc_win_s = seconds_since(t_svc1);

  harness::Harness svc_pool(scale, nodes);
  svc_pool.set_progress(false);
  const auto t_svc2 = std::chrono::steady_clock::now();
  {
    harness::ParallelHarness svc_ph(svc_pool, jobs);
    svc_ph.prewarm(svc_keys);
  }
  const double svc_jobs_s = seconds_since(t_svc2);

  Arena::set_enabled(false);
  harness::Harness svc_heap(scale, nodes);
  svc_heap.set_progress(false);
  for (const auto& k : svc_keys) svc_heap.run(k);
  Arena::set_enabled(true);

  harness::Harness svc_binq(scale, nodes);
  svc_binq.set_progress(false);
  svc_binq.set_event_queue(sim::EventQueueKind::kBinary);
  for (const auto& k : svc_keys) svc_binq.run(k);

  int svc_mismatches = 0;
  std::uint64_t svc_requests = 0;
  for (const auto& k : svc_keys) {
    const auto& a = svc_base.run(k);
    svc_requests += a.latency.requests;
    const char* side = nullptr;
    if (svc_differs(a, svc_win.run(k))) side = "sim-par";
    if (svc_differs(a, svc_pool.run(k))) side = "-jN";
    if (svc_differs(a, svc_heap.run(k))) side = "alloc";
    if (svc_differs(a, svc_binq.run(k))) side = "event-queue";
    if (side != nullptr) {
      ++svc_mismatches;
      std::fprintf(stderr, "SERVICE MISMATCH (%s): %s %s %zuB\n", side,
                   k.app.c_str(), to_string(k.proto), k.gran);
    }
  }
  const bool svc_win_ok = !quick || svc_win_s <= svc_serial_s * 1.15 + 0.5;
  std::printf("\nservice identity (%zu runs x 5 modes, %llu requests):\n",
              svc_keys.size(),
              static_cast<unsigned long long>(svc_requests));
  std::printf("  serial        : %7.2f s\n", svc_serial_s);
  std::printf("  sim-par window: %7.2f s   (%.2fx%s)\n", svc_win_s,
              svc_serial_s / svc_win_s,
              quick ? (svc_win_ok ? ", gate ok" : ", gate FAIL") : "");
  std::printf("  -j%-2d sweep    : %7.2f s\n", jobs, svc_jobs_s);
  std::printf("  identical     : %s   (vs -jN, heap alloc, binary queue)\n",
              svc_mismatches == 0 ? "yes" : "NO");
  if (!svc_win_ok) {
    std::fprintf(stderr,
                 "FAIL: windowed engine regressed %.1f%% on the service "
                 "workloads (--quick gate: 15%%)\n",
                 100.0 * (svc_win_s / svc_serial_s - 1.0));
  }

  if (ThreadPool::hardware_threads() < jobs) {
    std::printf("note: host has only %d hardware thread(s); wall-clock "
                "speedup is bounded by that, not by -j%d\n",
                ThreadPool::hardware_threads(), jobs);
  }

  std::FILE* f = std::fopen("BENCH_wallclock.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"runs\": %zu,\n"
        "  \"quick\": %s,\n"
        "  \"jobs\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "  \"serial_seconds\": %.4f,\n"
        "  \"parallel_seconds\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"sim_events\": %llu,\n"
        "  \"serial_events_per_sec\": %.0f,\n"
        "  \"parallel_events_per_sec\": %.0f,\n"
        "  \"identical\": %s,\n"
        "  \"heap_fallback_allocs\": %llu,\n"
        "  \"alloc_heap_seconds\": %.4f,\n"
        "  \"alloc_arena_seconds\": %.4f,\n"
        "  \"alloc_arena_speedup\": %.3f,\n"
        "  \"alloc_identical\": %s,\n"
        "  \"trace_off_seconds\": %.4f,\n"
        "  \"trace_breakdown_seconds\": %.4f,\n"
        "  \"trace_full_seconds\": %.4f,\n"
        "  \"trace_breakdown_overhead\": %.4f,\n"
        "  \"trace_full_overhead\": %.4f,\n"
        "  \"trace_identical\": %s,\n",
        keys.size(), quick ? "true" : "false", jobs,
        ThreadPool::hardware_threads(), serial_s, par_s, speedup,
        static_cast<unsigned long long>(events),
        static_cast<double>(events) / serial_s,
        static_cast<double>(events) / par_s, mismatches == 0 ? "true" : "false",
        static_cast<unsigned long long>(fallbacks), heap_s, arena_s,
        heap_s / arena_s, alloc_mismatches == 0 ? "true" : "false", arena_s,
        bd_s, full_s, bd_overhead, full_overhead,
        trace_mismatches == 0 ? "true" : "false");
    std::fprintf(f, "  \"slowest_runs\": [\n");
    for (std::size_t i = 0; i < top_n; ++i) {
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"protocol\": \"%s\", "
                   "\"gran\": %zu, \"seconds\": %.4f}%s\n",
                   slow[i].key->app.c_str(), to_string(slow[i].key->proto),
                   slow[i].key->gran, slow[i].seconds,
                   i + 1 < top_n ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"lrc_runs\": %zu,\n"
                 "  \"lrc_twin_scan_seconds\": %.4f,\n"
                 "  \"lrc_bitmap_seconds\": %.4f,\n"
                 "  \"lrc_bitmap_speedup\": %.3f,\n"
                 "  \"lrc_identical\": %s,\n",
                 lrc_count, lrc_scan_s, lrc_bitmap_s,
                 lrc_bitmap_s > 0 ? lrc_scan_s / lrc_bitmap_s : 0.0,
                 lrc_mismatches == 0 ? "true" : "false");
    std::fprintf(
        f,
        "  \"engine_ref_seconds\": %.4f,\n"
        "  \"engine_default_seconds\": %.4f,\n"
        "  \"engine_default_speedup\": %.3f,\n"
        "  \"engine_ref_events_per_sec\": %.0f,\n"
        "  \"engine_default_events_per_sec\": %.0f,\n"
        "  \"engine_identical\": %s,\n"
        "  \"engine_256_ref_seconds\": %.4f,\n"
        "  \"engine_256_default_seconds\": %.4f,\n"
        "  \"engine_256_default_speedup\": %.3f,\n"
        "  \"engine_256_ref_events_per_sec\": %.0f,\n"
        "  \"engine_256_default_events_per_sec\": %.0f,\n"
        "  \"engine_256_identical\": %s,\n"
        "  \"engine_stress_queue_heap_seconds\": %.4f,\n"
        "  \"engine_stress_queue_calendar_seconds\": %.4f,\n"
        "  \"engine_stress_queue_speedup\": %.3f,\n"
        "  \"engine_stress_state_map_seconds\": %.4f,\n"
        "  \"engine_stress_state_soa_seconds\": %.4f,\n"
        "  \"engine_stress_state_speedup\": %.3f,\n"
        "  \"simpar_off_seconds\": %.4f,\n"
        "  \"simpar_window_seconds\": %.4f,\n"
        "  \"simpar_window_speedup\": %.3f,\n"
        "  \"simpar_windows\": %llu,\n"
        "  \"simpar_window_events\": %llu,\n"
        "  \"simpar_events_per_window\": %.3f,\n"
        "  \"simpar_identical\": %s,\n"
        "  \"simpar_staged_effects\": %llu,\n"
        "  \"simpar_merge_ops\": %llu,\n"
        "  \"simpar_handoff_seconds\": %.4f,\n"
        "  \"simpar_commit_seconds\": %.4f,\n",
        engine_ref_s, engine_default_s, engine_ref_s / engine_default_s,
        static_cast<double>(engine_events) / engine_ref_s,
        static_cast<double>(engine_events) / engine_default_s,
        engine_mismatches == 0 ? "true" : "false", e256_ref_s, e256_def_s,
        e256_ref_s / e256_def_s,
        static_cast<double>(e256_events) / e256_ref_s,
        static_cast<double>(e256_events) / e256_def_s,
        e256_mismatches == 0 ? "true" : "false", stress_heap_s, stress_cal_s,
        stress_heap_s / stress_cal_s, stress_map_s, stress_soa_s,
        stress_map_s / stress_soa_s, sp_off_s, sp_win_s, sp_off_s / sp_win_s,
        static_cast<unsigned long long>(sp_windows),
        static_cast<unsigned long long>(sp_window_events), sp_occupancy,
        sp_mismatches == 0 ? "true" : "false",
        static_cast<unsigned long long>(sp_staged),
        static_cast<unsigned long long>(sp_merge),
        static_cast<double>(sp_handoff_ns) * 1e-9,
        static_cast<double>(sp_commit_ns) * 1e-9);
    std::fprintf(
        f,
        "  \"gc_runs\": %zu,\n"
        "  \"gc_off_seconds\": %.4f,\n"
        "  \"gc_barrier_seconds\": %.4f,\n"
        "  \"gc_overhead\": %.4f,\n"
        "  \"gc_identical\": %s,\n"
        "  \"gc_passes\": %llu,\n"
        "  \"gc_bytes_reclaimed\": %llu,\n"
        "  \"gc_stress_peak_off\": %llu,\n"
        "  \"gc_stress_peak_barrier\": %llu,\n"
        "  \"gc_stress_peak_reduction\": %.4f,\n",
        gc_keys.size(), gc_off_s, gc_on_s, gc_on_s / gc_off_s - 1.0,
        gc_mismatches == 0 ? "true" : "false",
        static_cast<unsigned long long>(gc_passes),
        static_cast<unsigned long long>(gc_reclaimed),
        static_cast<unsigned long long>(gcs_peak_off),
        static_cast<unsigned long long>(gcs_peak_on), gc_reduction);
    std::fprintf(
        f,
        "  \"svc_runs\": %zu,\n"
        "  \"svc_requests\": %llu,\n"
        "  \"svc_serial_seconds\": %.4f,\n"
        "  \"svc_window_seconds\": %.4f,\n"
        "  \"svc_jobs_seconds\": %.4f,\n"
        "  \"svc_identical\": %s,\n",
        svc_keys.size(), static_cast<unsigned long long>(svc_requests),
        svc_serial_s, svc_win_s, svc_jobs_s,
        svc_mismatches == 0 ? "true" : "false");
    std::fprintf(
        f,
        "  \"intra_run_measured\": %s,\n"
        "  \"intra_run_serial_seconds\": %.4f,\n"
        "  \"intra_run_window_seconds\": %.4f,\n"
        "  \"intra_run_speedup\": %.3f,\n"
        "  \"intra_run_identical\": %s\n"
        "}\n",
        intra_measured ? "true" : "false", intra_off_s, intra_win_s,
        intra_speedup, intra_mismatches == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_wallclock.json\n");
  }
  return mismatches == 0 && lrc_mismatches == 0 && alloc_mismatches == 0 &&
                 trace_mismatches == 0 && engine_mismatches == 0 &&
                 e256_mismatches == 0 && sp_mismatches == 0 &&
                 intra_mismatches == 0 && gc_mismatches == 0 &&
                 svc_mismatches == 0 && fallback_ok && trace_ok && engine_ok &&
                 e256_ok && sp_ok && sp_occ_ok && intra_ok && svc_win_ok &&
                 stress_queue_ok && stress_state_ok && gc_time_ok &&
                 gc_reduction_ok
             ? 0
             : 1;
}
