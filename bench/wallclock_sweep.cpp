// Host wall-clock benchmark for the parallel sweep executor: runs a fixed
// sub-sweep twice — serially (-j1) and on the thread pool (-jN) — checks
// the results are bitwise identical, and emits BENCH_wallclock.json with
// wall seconds, speedup, simulator throughput (events/sec), the top-10
// slowest app/protocol/granularity combinations, and a twin-scan vs
// dirty-bitmap A/B over the LRC protocols (write-tracking ablation).
//
// Everything else in bench/ measures VIRTUAL time inside the simulation;
// this target measures the simulator itself.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  int jobs = bench::jobs_from_args(argc, argv);
  if (jobs < 2) jobs = 2;  // "-j1 vs -j1" would measure nothing

  // Fixed sub-sweep: 4 apps x 3 protocols x 2 granularities = 24 runs
  // plus 4 sequential baselines.
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC};
  const std::size_t grains[] = {256, 4096};
  const std::vector<harness::ExpKey> keys = harness::ParallelHarness::cross(
      {"LU", "FFT", "Water-Spatial", "Raytrace"}, protos, grains);

  std::printf("wallclock_sweep: %zu runs, serial then -j%d "
              "(host threads: %d)\n\n",
              keys.size(), jobs, ThreadPool::hardware_threads());

  // Pass 1: serial.  Fresh harness so nothing is pre-cached.
  harness::Harness serial(scale, nodes);
  serial.set_progress(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& k : keys) serial.run(k);
  const double serial_s = seconds_since(t0);

  // Pass 2: same sweep on the pool, again from a cold cache.  An optional
  // --mem-budget / DSM_MEM_BUDGET caps in-flight footprint (admission
  // control must not change any result either).
  const std::uint64_t mem_budget = bench::mem_budget_from_args(argc, argv);
  harness::Harness par(scale, nodes);
  par.set_progress(false);
  MemBudget budget(mem_budget);
  harness::ParallelHarness ph(par, jobs, mem_budget != 0 ? &budget : nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  ph.prewarm(keys);
  const double par_s = seconds_since(t1);
  par.set_mem_budget(nullptr);

  // The pool must not have perturbed a single simulation: compare every
  // run bitwise against the serial pass.
  int mismatches = 0;
  std::uint64_t events = 0;
  for (const auto& k : keys) {
    const auto& a = serial.run(k);
    const auto& b = par.run(k);
    events += a.stats.sim_events;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }

  const double speedup = serial_s / par_s;
  std::printf("serial   : %7.2f s   (%.0f events/s)\n", serial_s,
              static_cast<double>(events) / serial_s);
  std::printf("-j%-2d     : %7.2f s   (%.0f events/s)\n", jobs, par_s,
              static_cast<double>(events) / par_s);
  std::printf("speedup  : %.2fx\n", speedup);
  std::printf("identical: %s\n", mismatches == 0 ? "yes" : "NO");

  // Per-run breakdown: which combinations dominate the sweep's wall clock.
  // host_seconds comes from the serial pass, so the numbers are undiluted
  // by pool contention.
  struct Slow {
    const harness::ExpKey* key;
    double seconds;
  };
  std::vector<Slow> slow;
  slow.reserve(keys.size());
  for (const auto& k : keys) slow.push_back({&k, serial.run(k).host_seconds});
  std::sort(slow.begin(), slow.end(),
            [](const Slow& a, const Slow& b) { return a.seconds > b.seconds; });
  const std::size_t top_n = std::min<std::size_t>(10, slow.size());
  std::printf("\nslowest %zu runs (serial pass):\n", top_n);
  for (std::size_t i = 0; i < top_n; ++i) {
    std::printf("  %-16s %-7s %5zuB  %6.2f s\n", slow[i].key->app.c_str(),
                to_string(slow[i].key->proto), slow[i].key->gran,
                slow[i].seconds);
  }

  // Write-tracking A/B over the LRC protocols (the only consumers of the
  // release-path scan): the same sub-sweep under the reference full
  // twin-scan and under the default dirty-word bitmap.  Results must match
  // on every pre-change field — the bitmap only changes HOST time.
  const ProtocolKind lrc_protos[] = {ProtocolKind::kHLRC,
                                     ProtocolKind::kMWLRC};
  const std::vector<harness::ExpKey> lrc_keys = harness::ParallelHarness::cross(
      {"LU", "FFT", "Water-Spatial", "Raytrace"}, lrc_protos, grains);

  harness::Harness scan_h(scale, nodes);
  scan_h.set_progress(false);
  scan_h.set_write_tracking(WriteTracking::kTwinScan);
  harness::Harness bitmap_h(scale, nodes);
  bitmap_h.set_progress(false);  // default mode: kTwinBitmap
  // Sequential baselines outside the timed window (shared by every run).
  for (const char* a : {"LU", "FFT", "Water-Spatial", "Raytrace"}) {
    scan_h.sequential_time(a);
    bitmap_h.sequential_time(a);
  }
  const auto t2 = std::chrono::steady_clock::now();
  for (const auto& k : lrc_keys) scan_h.run(k);
  const double lrc_scan_s = seconds_since(t2);
  const auto t3 = std::chrono::steady_clock::now();
  for (const auto& k : lrc_keys) bitmap_h.run(k);
  const double lrc_bitmap_s = seconds_since(t3);

  int lrc_mismatches = 0;
  for (const auto& k : lrc_keys) {
    const auto& a = scan_h.run(k);
    const auto& b = bitmap_h.run(k);
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++lrc_mismatches;
      std::fprintf(stderr, "WRITE-TRACKING MISMATCH: %s %s %zuB\n",
                   k.app.c_str(), to_string(k.proto), k.gran);
    }
  }
  std::printf("\nLRC write-tracking A/B (%zu runs, serial):\n",
              lrc_keys.size());
  std::printf("  twin-scan   : %7.2f s\n", lrc_scan_s);
  std::printf("  twin-bitmap : %7.2f s   (%.2fx)\n", lrc_bitmap_s,
              lrc_scan_s / lrc_bitmap_s);
  std::printf("  identical   : %s\n", lrc_mismatches == 0 ? "yes" : "NO");
  if (ThreadPool::hardware_threads() < jobs) {
    std::printf("note: host has only %d hardware thread(s); wall-clock "
                "speedup is bounded by that, not by -j%d\n",
                ThreadPool::hardware_threads(), jobs);
  }

  std::FILE* f = std::fopen("BENCH_wallclock.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"runs\": %zu,\n"
        "  \"jobs\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "  \"serial_seconds\": %.4f,\n"
        "  \"parallel_seconds\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"sim_events\": %llu,\n"
        "  \"serial_events_per_sec\": %.0f,\n"
        "  \"parallel_events_per_sec\": %.0f,\n"
        "  \"identical\": %s,\n",
        keys.size(), jobs, ThreadPool::hardware_threads(), serial_s, par_s,
        speedup, static_cast<unsigned long long>(events),
        static_cast<double>(events) / serial_s,
        static_cast<double>(events) / par_s,
        mismatches == 0 ? "true" : "false");
    std::fprintf(f, "  \"slowest_runs\": [\n");
    for (std::size_t i = 0; i < top_n; ++i) {
      std::fprintf(f,
                   "    {\"app\": \"%s\", \"protocol\": \"%s\", "
                   "\"gran\": %zu, \"seconds\": %.4f}%s\n",
                   slow[i].key->app.c_str(), to_string(slow[i].key->proto),
                   slow[i].key->gran, slow[i].seconds,
                   i + 1 < top_n ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"lrc_runs\": %zu,\n"
                 "  \"lrc_twin_scan_seconds\": %.4f,\n"
                 "  \"lrc_bitmap_seconds\": %.4f,\n"
                 "  \"lrc_bitmap_speedup\": %.3f,\n"
                 "  \"lrc_identical\": %s\n"
                 "}\n",
                 lrc_keys.size(), lrc_scan_s, lrc_bitmap_s,
                 lrc_scan_s / lrc_bitmap_s,
                 lrc_mismatches == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_wallclock.json\n");
  }
  return mismatches == 0 && lrc_mismatches == 0 ? 0 : 1;
}
