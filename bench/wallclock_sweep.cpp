// Host wall-clock benchmark for the parallel sweep executor: runs a fixed
// sub-sweep twice — serially (-j1) and on the thread pool (-jN) — checks
// the results are bitwise identical, and emits BENCH_wallclock.json with
// wall seconds, speedup, and simulator throughput (events/sec).
//
// Everything else in bench/ measures VIRTUAL time inside the simulation;
// this target measures the simulator itself.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  const int nodes = bench::nodes_from_env();
  int jobs = bench::jobs_from_args(argc, argv);
  if (jobs < 2) jobs = 2;  // "-j1 vs -j1" would measure nothing

  // Fixed sub-sweep: 4 apps x 3 protocols x 2 granularities = 24 runs
  // plus 4 sequential baselines.
  const ProtocolKind protos[] = {ProtocolKind::kSC, ProtocolKind::kSWLRC,
                                 ProtocolKind::kHLRC};
  const std::size_t grains[] = {256, 4096};
  const std::vector<harness::ExpKey> keys = harness::ParallelHarness::cross(
      {"LU", "FFT", "Water-Spatial", "Raytrace"}, protos, grains);

  std::printf("wallclock_sweep: %zu runs, serial then -j%d "
              "(host threads: %d)\n\n",
              keys.size(), jobs, ThreadPool::hardware_threads());

  // Pass 1: serial.  Fresh harness so nothing is pre-cached.
  harness::Harness serial(scale, nodes);
  serial.set_progress(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& k : keys) serial.run(k);
  const double serial_s = seconds_since(t0);

  // Pass 2: same sweep on the pool, again from a cold cache.
  harness::Harness par(scale, nodes);
  par.set_progress(false);
  harness::ParallelHarness ph(par, jobs);
  const auto t1 = std::chrono::steady_clock::now();
  ph.prewarm(keys);
  const double par_s = seconds_since(t1);

  // The pool must not have perturbed a single simulation: compare every
  // run bitwise against the serial pass.
  int mismatches = 0;
  std::uint64_t events = 0;
  for (const auto& k : keys) {
    const auto& a = serial.run(k);
    const auto& b = par.run(k);
    events += a.stats.sim_events;
    if (a.parallel_time != b.parallel_time ||
        a.stats.messages != b.stats.messages ||
        a.stats.traffic_bytes != b.stats.traffic_bytes ||
        a.stats.sim_events != b.stats.sim_events) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH: %s %s %zuB\n", k.app.c_str(),
                   to_string(k.proto), k.gran);
    }
  }

  const double speedup = serial_s / par_s;
  std::printf("serial   : %7.2f s   (%.0f events/s)\n", serial_s,
              static_cast<double>(events) / serial_s);
  std::printf("-j%-2d     : %7.2f s   (%.0f events/s)\n", jobs, par_s,
              static_cast<double>(events) / par_s);
  std::printf("speedup  : %.2fx\n", speedup);
  std::printf("identical: %s\n", mismatches == 0 ? "yes" : "NO");
  if (ThreadPool::hardware_threads() < jobs) {
    std::printf("note: host has only %d hardware thread(s); wall-clock "
                "speedup is bounded by that, not by -j%d\n",
                ThreadPool::hardware_threads(), jobs);
  }

  std::FILE* f = std::fopen("BENCH_wallclock.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"runs\": %zu,\n"
        "  \"jobs\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "  \"serial_seconds\": %.4f,\n"
        "  \"parallel_seconds\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"sim_events\": %llu,\n"
        "  \"serial_events_per_sec\": %.0f,\n"
        "  \"parallel_events_per_sec\": %.0f,\n"
        "  \"identical\": %s\n"
        "}\n",
        keys.size(), jobs, ThreadPool::hardware_threads(), serial_s, par_s,
        speedup, static_cast<unsigned long long>(events),
        static_cast<double>(events) / serial_s,
        static_cast<double>(events) / par_s,
        mismatches == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_wallclock.json\n");
  }
  return mismatches == 0 ? 0 : 1;
}
