// Reproduces the paper §3 communication microbenchmark: round-trip times
// for 4/64/256/1K/4K-byte messages and the large-message streaming
// bandwidth, as measured on the simulated Myrinet.
#include "bench_util.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace dsm;
  sim::Engine eng(sim::Engine::Options{2, ns(2000), 256 * 1024, 1u << 30});
  net::Network net(eng, net::NetParams{}, net::NotifyMode::kPolling);

  std::printf("Paper section 3 microbenchmark vs this model\n\n");
  Table t({"message bytes", "paper RT (us)", "model RT (us)", "error"});
  const struct { std::size_t b; double paper; } cal[] = {
      {4, 40}, {64, 61}, {256, 100}, {1024, 256}, {4096, 876}};
  for (const auto& c : cal) {
    const double rt = static_cast<double>(net.roundtrip(c.b)) / 1000.0;
    t.add_row({std::to_string(c.b), fmt(c.paper, 0), fmt(rt, 1),
               fmt(100.0 * (rt - c.paper) / c.paper, 1) + "%"});
  }
  t.print();

  std::printf("\nStreaming bandwidth (paper: ~17 MB/s for large messages)\n\n");
  Table bw({"message bytes", "model MB/s"});
  for (std::size_t b : {256u, 1024u, 4096u, 16384u}) {
    bw.add_row({std::to_string(b), fmt(net.streaming_bandwidth_mbs(b), 1)});
  }
  bw.print();

  // End-to-end check through the simulator (not just the formula): a
  // 4096-byte echo between two nodes.  Node 1's fiber finishes instantly;
  // finished nodes still service messages (the runtime polls).
  bool got = false;
  SimTime done = 0;
  net.set_handler([&](net::Message& m) {
    if (eng.current() == 1) {
      net::Message echo;
      echo.dst = 0;
      echo.type = 2;
      echo.payload = std::move(m.payload);
      net.send(std::move(echo));
    } else {
      got = true;
      done = eng.now(0);
      eng.notify(0);
    }
  });
  eng.spawn(0, [&] {
    net.send(1, 1, 0, 0, 0, 0, dsm::Bytes(4096));
    eng.block([&] { return got; }, "echo");
  });
  eng.spawn(1, [] {});
  eng.run();
  std::printf("\nIn-simulator 4096B echo: %s us "
              "(formula round trip: %.1f us; extra = CPU occupancy)\n",
              fmt(static_cast<double>(done) / 1000.0, 1).c_str(),
              static_cast<double>(net.roundtrip(4096)) / 1000.0);
  return 0;
}
