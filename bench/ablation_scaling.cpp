// Ablation: cluster-size scaling.  The paper's testbed was 16 nodes with
// a footnote hoping for 32-node runs in the final version — here they are
// (2..32 nodes for the two headline combinations).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  harness::Harness seq(scale, 1);
  bench::banner("Ablation: scaling from 2 to 32 nodes",
                "paper section 3 footnote (32-node runs)", seq);

  const char* apps_[] = {"LU", "Ocean-Rowwise", "Water-Nsquared",
                         "Raytrace"};
  const int sizes[] = {2, 4, 8, 16, 32};
  const std::pair<ProtocolKind, std::size_t> combos[] = {
      {ProtocolKind::kSC, 256}, {ProtocolKind::kHLRC, 4096}};

  // One harness per cluster size, shared by both combos; the pool fans
  // every (size, combo, app) simulation out at once.
  std::vector<std::unique_ptr<harness::Harness>> hs;
  for (int n : sizes) {
    hs.push_back(std::make_unique<harness::Harness>(scale, n));
    hs.back()->set_progress(false);
  }
  const int jobs = bench::jobs_from_args(argc, argv);
  if (jobs > 1) {
    ThreadPool pool(jobs);
    for (auto& h : hs) {
      for (auto [p, g] : combos) {
        for (const char* app : apps_) {
          pool.submit([&h2 = *h, p = p, g = g, app] { h2.speedup(app, p, g); });
        }
      }
    }
    pool.wait_idle();
  }

  for (auto [p, g] : combos) {
    std::printf("--- %s at %zu B ---\n\n", to_string(p), g);
    Table t({"Application", "2", "4", "8", "16", "32"});
    for (const char* app : apps_) {
      std::vector<std::string> row{app};
      for (auto& h : hs) row.push_back(fmt(h->speedup(app, p, g), 2));
      t.add_row(std::move(row));
    }
    t.print();
    std::puts("");
  }
  std::printf("Communication-bound applications flatten (or reverse) past "
              "16 nodes at this\nproblem scale; compute-heavy ones "
              "(Water-Nsquared) keep scaling.\n");
  return 0;
}
