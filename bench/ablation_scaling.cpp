// Ablation: cluster-size scaling.  The paper's testbed was 16 nodes with
// a footnote hoping for 32-node runs in the final version — here they are
// (2..32 nodes for the two headline combinations).
#include "bench_util.hpp"

int main() {
  using namespace dsm;
  const apps::Scale scale = bench::scale_from_env();
  harness::Harness seq(scale, 1);
  bench::banner("Ablation: scaling from 2 to 32 nodes",
                "paper section 3 footnote (32-node runs)", seq);

  const char* apps_[] = {"LU", "Ocean-Rowwise", "Water-Nsquared",
                         "Raytrace"};
  for (auto [p, g] : {std::pair{ProtocolKind::kSC, std::size_t{256}},
                      std::pair{ProtocolKind::kHLRC, std::size_t{4096}}}) {
    std::printf("--- %s at %zu B ---\n\n", to_string(p), g);
    Table t({"Application", "2", "4", "8", "16", "32"});
    for (const char* app : apps_) {
      std::vector<std::string> row{app};
      for (int n : {2, 4, 8, 16, 32}) {
        harness::Harness h(scale, n);
        h.set_progress(false);
        row.push_back(fmt(h.speedup(app, p, g), 2));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::puts("");
  }
  std::printf("Communication-bound applications flatten (or reverse) past "
              "16 nodes at this\nproblem scale; compute-heavy ones "
              "(Water-Nsquared) keep scaling.\n");
  return 0;
}
