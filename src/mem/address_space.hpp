// The shared global address space and its per-node incarnations.
//
// The shared segment is a flat range of bytes [0, size).  Every node holds
// a private copy region (lazily populated) plus a per-block access-state
// table — the software equivalent of the Typhoon-0 card's fine-grain access
// tags.  A separate "backing image" holds the pre-parallel-phase contents:
// conceptually the data as initialized at the blocks' static homes before
// first-touch migration assigns real homes.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/flat_table.hpp"

namespace dsm::mem {

/// Per-block access permission of one node's copy (Typhoon-0 tag model).
enum class Access : std::uint8_t { kInvalid = 0, kReadOnly = 1, kReadWrite = 2 };

class AddressSpace {
 public:
  /// granularity must be a power of two in [8, 8192] (the paper studies
  /// 64/256/1024/4096).
  AddressSpace(int nodes, std::size_t size_bytes, std::size_t granularity);

  int nodes() const { return nodes_; }
  std::size_t size() const { return size_; }
  std::size_t granularity() const { return gran_; }
  int block_shift() const { return shift_; }
  std::size_t num_blocks() const { return num_blocks_; }

  BlockId block_of(GAddr a) const { return a >> shift_; }
  GAddr base_of(BlockId b) const { return static_cast<GAddr>(b) << shift_; }

  // ------------------------------------------------------------------
  // Data.

  /// Pointer into node n's private copy region at global address `a`.
  std::byte* local(NodeId n, GAddr a) {
    DSM_CHECK(a < size_);
    return mem_[n].get() + a;
  }
  const std::byte* local(NodeId n, GAddr a) const {
    DSM_CHECK(a < size_);
    return mem_[n].get() + a;
  }

  /// The whole coherence block containing `b` in node n's copy region.
  std::span<std::byte> block(NodeId n, BlockId b) {
    return {mem_[n].get() + base_of(b), gran_};
  }
  std::span<const std::byte> block(NodeId n, BlockId b) const {
    return {mem_[n].get() + base_of(b), gran_};
  }

  /// Backing image (pre-parallel contents, zero-initialized).
  std::byte* backing(GAddr a) {
    DSM_CHECK(a < size_);
    return backing_.get() + a;
  }
  std::span<const std::byte> backing_block(BlockId b) const {
    return {backing_.get() + base_of(b), gran_};
  }

  // ------------------------------------------------------------------
  // Access state.

  Access access(NodeId n, BlockId b) const { return acc_.row(n)[b]; }
  void set_access(NodeId n, BlockId b, Access a) {
    Access& cur = acc_.row(n)[b];
    // Maintain the per-node valid-copy count incrementally: the snapshot's
    // replicated-bytes figure then reads N counters instead of scanning
    // nodes x blocks tags.  All callers set node n's tag while executing
    // as n, so the counter is node-private (parallel-DES safe).
    if (a == Access::kInvalid && cur != Access::kInvalid) {
      flush_touched(n, b);
      --copies_[static_cast<std::size_t>(n)];
    } else if (a != Access::kInvalid && cur == Access::kInvalid) {
      ++copies_[static_cast<std::size_t>(n)];
    }
    cur = a;
  }

  /// Number of blocks node n currently holds with a non-invalid tag.
  std::uint64_t valid_copies(NodeId n) const {
    return copies_[static_cast<std::size_t>(n)];
  }

  // ------------------------------------------------------------------
  // Fragmentation accounting (paper §5.2.2: the fraction of fetched bytes
  // never accessed before invalidation).  Each block has a 64-bit mask of
  // touched 1/64th sub-lines, flushed into used_bytes on invalidation.

  void touch(NodeId n, GAddr a) {
    const BlockId b = block_of(a);
    const std::size_t line = (a & (gran_ - 1)) >> line_shift_;
    touched_.row(n)[b] |= 1ull << line;
  }

  /// Bytes of fetched blocks that were actually accessed (lower bound at
  /// sub-line resolution).  Call flush_all_touched() first for finals.
  std::uint64_t used_bytes(NodeId n) const { return used_bytes_[n]; }
  void flush_all_touched();

  /// Raw access-state row for the fast path in Context.
  const Access* access_row(NodeId n) const { return acc_.row(n); }
  const std::uint64_t* touched_row(NodeId n) const { return touched_.row(n); }
  int line_shift() const { return line_shift_; }

  // ------------------------------------------------------------------
  // Allocation (bump allocator over the shared segment).

  /// Reserves `bytes` aligned to `align` (power of two).  Aborts when the
  /// segment is exhausted — callers size the segment for the workload.
  GAddr alloc(std::size_t bytes, std::size_t align = 64);

  /// Aligns the bump pointer to a block boundary (used by apps that pad
  /// structures to coherence units on purpose).
  void align_to_block() { bump_ = (bump_ + gran_ - 1) & ~(gran_ - 1); }

  std::size_t used() const { return bump_; }

 private:
  struct Unmapper {
    std::size_t len;
    void operator()(std::byte* p) const;
  };
  using Mapping = std::unique_ptr<std::byte[], Unmapper>;
  static Mapping map_anon(std::size_t len);

  int nodes_;
  std::size_t size_;
  std::size_t gran_;
  int shift_;
  std::size_t num_blocks_;
  std::vector<Mapping> mem_;
  Mapping backing_;
  void flush_touched(NodeId n, BlockId b) {
    std::uint64_t& mask = touched_.row(n)[b];
    const int bits = std::popcount(mask);
    if (bits > 0) {
      used_bytes_[n] += static_cast<std::uint64_t>(bits) << line_shift_;
      mask = 0;
    }
  }

  // Per-node metadata as lazily-committed flat tables (mem/flat_table.hpp):
  // the zero page IS the initial state (kInvalid == 0, empty masks == 0),
  // so constructing a 1024-node space no longer writes nodes x blocks fill
  // values up front.
  FlatTable<Access> acc_;
  int line_shift_ = 0;
  FlatTable<std::uint64_t> touched_;
  std::vector<std::uint64_t> used_bytes_;
  std::vector<std::uint64_t> copies_;  // valid (non-kInvalid) tags per node
  std::size_t bump_ = 0;
};

}  // namespace dsm::mem
