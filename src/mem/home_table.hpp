// Home assignment with first-touch migration (paper §2).
//
// Blocks start with a static round-robin home.  After the parallel phase
// begins, the first qualifying touch migrates the home to the toucher
// ("touch" = load or store under SC/SW-LRC, store under HLRC).  The static
// home node holds the authoritative record of the current home; other
// nodes cache it, learning the answer from forwarded replies.
//
// Discipline: the authoritative entry for block b may only be read/claimed
// while executing as static_home(b); the cache row of node n only while
// executing as n.  The protocols enforce this by construction.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/flat_table.hpp"

namespace dsm::mem {

class HomeTable {
 public:
  HomeTable(int nodes, std::size_t num_blocks);

  NodeId static_home(BlockId b) const {
    return static_cast<NodeId>(b % static_cast<BlockId>(nodes_));
  }

  /// Authoritative current home; kNoNode while unclaimed.  Call only as
  /// static_home(b).
  NodeId claimed_home(BlockId b) const { return cur_[b]; }

  bool is_claimed(BlockId b) const { return cur_[b] != kNoNode; }

  /// Claims the home of an unclaimed block for `n`.  Call only as
  /// static_home(b).
  void claim(BlockId b, NodeId n) {
    DSM_CHECK_MSG(cur_[b] == kNoNode, "block home claimed twice");
    cur_[b] = n;
  }

  /// The home node `n` currently believes in: its cache if set, else the
  /// authoritative entry when n is the static home, else the static home.
  NodeId believed_home(NodeId n, BlockId b) const {
    const NodeId c = cache_.row(static_cast<std::size_t>(n))[b];
    if (c != 0) return c - 1;
    const NodeId sh = static_home(b);
    if (sh == n && cur_[b] != kNoNode) return cur_[b];
    return sh;
  }

  /// Records n's learned home for b (from a forwarded reply).
  void learn(NodeId n, BlockId b, NodeId home) {
    cache_.row(static_cast<std::size_t>(n))[b] = home + 1;
  }

  int nodes() const { return nodes_; }

 private:
  int nodes_;
  std::vector<NodeId> cur_;  // authoritative, kNoNode=unclaimed
  /// [node][block] probable-home cache, lazily committed.  Entries store
  /// home + 1 so the mapping's zero page reads as "unset" (see
  /// mem/flat_table.hpp on the fill-value-0 constraint).
  FlatTable<NodeId> cache_;
};

}  // namespace dsm::mem
