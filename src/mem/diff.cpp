#include "mem/diff.hpp"

#include <cstring>

#include "common/check.hpp"

namespace dsm::mem {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + 4);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t& pos) {
  DSM_CHECK(pos + 4 <= in.size());
  std::uint32_t v;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return v;
}

}  // namespace

std::vector<std::byte> make_diff(std::span<const std::byte> dirty,
                                 std::span<const std::byte> twin) {
  DSM_CHECK(dirty.size() == twin.size());
  DSM_CHECK(dirty.size() % 4 == 0);
  const std::size_t words = dirty.size() / 4;

  std::vector<std::byte> out;
  std::uint32_t runs = 0;
  put_u32(out, 0);  // run count, patched at the end

  std::size_t w = 0;
  while (w < words) {
    std::uint32_t a, b;
    std::memcpy(&a, dirty.data() + w * 4, 4);
    std::memcpy(&b, twin.data() + w * 4, 4);
    if (a == b) {
      ++w;
      continue;
    }
    const std::size_t start = w;
    while (w < words) {
      std::memcpy(&a, dirty.data() + w * 4, 4);
      std::memcpy(&b, twin.data() + w * 4, 4);
      if (a == b) break;
      ++w;
    }
    const std::uint32_t off = static_cast<std::uint32_t>(start * 4);
    const std::uint32_t len = static_cast<std::uint32_t>((w - start) * 4);
    put_u32(out, off);
    put_u32(out, len);
    out.insert(out.end(), dirty.begin() + off, dirty.begin() + off + len);
    ++runs;
  }
  if (runs == 0) return {};
  std::memcpy(out.data(), &runs, 4);
  return out;
}

void apply_diff(std::span<std::byte> dst, std::span<const std::byte> diff) {
  if (diff.empty()) return;
  std::size_t pos = 0;
  const std::uint32_t runs = get_u32(diff, pos);
  for (std::uint32_t r = 0; r < runs; ++r) {
    const std::uint32_t off = get_u32(diff, pos);
    const std::uint32_t len = get_u32(diff, pos);
    DSM_CHECK(pos + len <= diff.size());
    DSM_CHECK(static_cast<std::size_t>(off) + len <= dst.size());
    std::memcpy(dst.data() + off, diff.data() + pos, len);
    pos += len;
  }
  DSM_CHECK_MSG(pos == diff.size(), "trailing bytes in diff");
}

std::uint32_t diff_runs(std::span<const std::byte> diff) {
  if (diff.empty()) return 0;
  std::size_t pos = 0;
  return get_u32(diff, pos);
}

std::size_t diff_changed_bytes(std::span<const std::byte> diff) {
  if (diff.empty()) return 0;
  std::size_t pos = 0;
  std::size_t total = 0;
  const std::uint32_t runs = get_u32(diff, pos);
  for (std::uint32_t r = 0; r < runs; ++r) {
    (void)get_u32(diff, pos);                 // offset
    const std::uint32_t len = get_u32(diff, pos);
    total += len;
    pos += len;
  }
  return total;
}

}  // namespace dsm::mem
