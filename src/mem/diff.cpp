#include "mem/diff.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace dsm::mem {

namespace {

// The builders are templated over the output buffer: std::vector<std::byte>
// (tests, microbenches) or the arena-aware Bytes (protocol hot paths).
// grow() appends n bytes and returns a pointer to them — uninitialized for
// Bytes, value-initialized for vector (immediately overwritten either way).
std::byte* grow(std::vector<std::byte>& v, std::size_t n) {
  const std::size_t old = v.size();
  v.resize(old + n);
  return v.data() + old;
}
std::byte* grow(Bytes& b, std::size_t n) { return b.grow_uninit(n); }

template <typename Out>
void put_u32(Out& out, std::uint32_t v) {
  std::memcpy(grow(out, 4), &v, 4);
}

template <typename Out>
void prepend_u32(Out& out, std::uint32_t v) {
  const std::size_t old = out.size();
  grow(out, 4);
  std::memmove(out.data() + 4, out.data(), old);
  std::memcpy(out.data(), &v, 4);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t& pos) {
  DSM_CHECK(pos + 4 <= in.size());
  std::uint32_t v;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return v;
}

bool word_eq(const std::byte* a, const std::byte* b, std::size_t w) {
  std::uint32_t x, y;
  std::memcpy(&x, a + w * 4, 4);
  std::memcpy(&y, b + w * 4, 4);
  return x == y;
}

// The scan loops compare 8 bytes per step but report boundaries at 4-byte
// word granularity, so the encoded runs are identical to a word-at-a-time
// scan (the diff format is word-granular; see header comment).

/// First word index in [w, words) where dirty and twin differ.
std::size_t next_diff(const std::byte* a, const std::byte* b, std::size_t w,
                      std::size_t words) {
  if ((w & 1) != 0 && w < words) {
    if (!word_eq(a, b, w)) return w;
    ++w;
  }
  while (w + 1 < words) {
    std::uint64_t x, y;
    std::memcpy(&x, a + w * 4, 8);
    std::memcpy(&y, b + w * 4, 8);
    if (x != y) return word_eq(a, b, w) ? w + 1 : w;
    w += 2;
  }
  if (w < words && !word_eq(a, b, w)) return w;
  return words;
}

/// First word index in [w, words) where dirty and twin agree.
std::size_t next_same(const std::byte* a, const std::byte* b, std::size_t w,
                      std::size_t words) {
  if ((w & 1) != 0 && w < words) {
    if (word_eq(a, b, w)) return w;
    ++w;
  }
  while (w + 1 < words) {
    std::uint64_t x, y;
    std::memcpy(&x, a + w * 4, 8);
    std::memcpy(&y, b + w * 4, 8);
    if (x == y || word_eq(a, b, w)) return w;
    if (word_eq(a, b, w + 1)) return w + 1;
    w += 2;
  }
  if (w < words && word_eq(a, b, w)) return w;
  return words;
}

}  // namespace

template <typename Out>
std::size_t make_diff_into(std::span<const std::byte> dirty,
                           std::span<const std::byte> twin, Out& out) {
  DSM_CHECK(dirty.size() == twin.size());
  DSM_CHECK(dirty.size() % 4 == 0);
  out.clear();
  // Fast path: a spurious write fault leaves the block untouched; one
  // memcmp beats the word scan by a wide margin on clean blocks.
  if (dirty.empty() ||
      std::memcmp(dirty.data(), twin.data(), dirty.size()) == 0) {
    return 0;
  }

  const std::size_t words = dirty.size() / 4;
  const std::byte* d = dirty.data();
  const std::byte* t = twin.data();
  // Worst case is alternating dirty/clean words: 12 bytes per run.
  out.reserve(4 + ((words + 1) / 2) * 12);

  std::uint32_t runs = 0;
  put_u32(out, 0);  // run count, patched at the end
  std::size_t w = next_diff(d, t, 0, words);
  while (w < words) {
    const std::size_t start = w;
    w = next_same(d, t, w + 1, words);
    const std::uint32_t off = static_cast<std::uint32_t>(start * 4);
    const std::uint32_t len = static_cast<std::uint32_t>((w - start) * 4);
    put_u32(out, off);
    put_u32(out, len);
    std::memcpy(grow(out, len), dirty.data() + off, len);
    ++runs;
    w = next_diff(d, t, w, words);
  }
  std::memcpy(out.data(), &runs, 4);
  return out.size();
}

template std::size_t make_diff_into<std::vector<std::byte>>(
    std::span<const std::byte>, std::span<const std::byte>,
    std::vector<std::byte>&);
template std::size_t make_diff_into<Bytes>(std::span<const std::byte>,
                                           std::span<const std::byte>,
                                           Bytes&);

std::vector<std::byte> make_diff(std::span<const std::byte> dirty,
                                 std::span<const std::byte> twin) {
  std::vector<std::byte> out;
  make_diff_into(dirty, twin, out);
  return out;
}

namespace {

/// Calls `fn(word_index)` for every set bit of the block's word range
/// [0, words), whose bits start at `chunks[0]` bit `bit0`, in ascending
/// order.
template <typename Fn>
void for_each_flagged(const std::uint64_t* chunks, unsigned bit0,
                      std::size_t words, Fn&& fn) {
  const std::size_t end = bit0 + words;  // global bit index past the block
  for (std::size_t c = 0; c * 64 < end; ++c) {
    std::uint64_t m = chunks[c];
    if (c == 0 && bit0 != 0) m &= ~0ull << bit0;
    if (end < (c + 1) * 64) m &= (1ull << (end - c * 64)) - 1;
    while (m != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
      m &= m - 1;
      fn(c * 64 + bit - bit0);
    }
  }
}

/// Emits one run [start, end) of words copied from `dirty` and bumps the
/// run count.
template <typename Out>
void put_run(std::span<const std::byte> dirty, std::size_t start,
             std::size_t end, Out& out, std::uint32_t& runs) {
  const std::uint32_t off = static_cast<std::uint32_t>(start * 4);
  const std::uint32_t len = static_cast<std::uint32_t>((end - start) * 4);
  put_u32(out, off);
  put_u32(out, len);
  std::memcpy(grow(out, len), dirty.data() + off, len);
  ++runs;
}

}  // namespace

template <typename Out>
std::size_t make_diff_from_bitmap(std::span<const std::byte> dirty,
                                  std::span<const std::byte> twin,
                                  const std::uint64_t* chunks, unsigned bit0,
                                  Out& out, BitmapScanStats* scan) {
  DSM_CHECK(dirty.size() == twin.size());
  DSM_CHECK(dirty.size() % 4 == 0);
  out.clear();
  const std::size_t words = dirty.size() / 4;
  const std::byte* d = dirty.data();
  const std::byte* t = twin.data();

  // Runs of consecutive DIFFERING words are maximal exactly as in the full
  // scan: a gap word between two differing words is either unflagged
  // (unchanged by the bitmap invariant) or flagged-but-equal — in both
  // cases the full scan would also split the run there.
  std::uint32_t runs = 0;
  std::uint64_t compared = 0;
  std::size_t run_start = words, run_end = words;  // no open run
  for_each_flagged(chunks, bit0, words, [&](std::size_t w) {
    ++compared;
    if (word_eq(d, t, w)) return;
    if (run_end == w) {  // adjacent differing word: extend
      run_end = w + 1;
      return;
    }
    if (run_end != words) put_run(dirty, run_start, run_end, out, runs);
    run_start = w;
    run_end = w + 1;
  });
  if (run_end != words || run_start != words) {
    put_run(dirty, run_start, run_end, out, runs);
  }
  if (scan != nullptr) {
    scan->words_compared += compared;
    scan->scan_bytes_avoided += dirty.size() - compared * 4;
  }
  if (runs == 0) {
    out.clear();
    return 0;
  }
  // Prepend the run count (the runs were appended to an empty buffer, so
  // shift rather than patch — runs are few by construction here).
  prepend_u32(out, runs);
  return out.size();
}

template std::size_t make_diff_from_bitmap<std::vector<std::byte>>(
    std::span<const std::byte>, std::span<const std::byte>,
    const std::uint64_t*, unsigned, std::vector<std::byte>&,
    BitmapScanStats*);
template std::size_t make_diff_from_bitmap<Bytes>(
    std::span<const std::byte>, std::span<const std::byte>,
    const std::uint64_t*, unsigned, Bytes&, BitmapScanStats*);

template <typename Out>
std::size_t make_diff_bitmap_only(std::span<const std::byte> dirty,
                                  const std::uint64_t* chunks, unsigned bit0,
                                  Out& out, BitmapScanStats* scan) {
  DSM_CHECK(dirty.size() % 4 == 0);
  out.clear();
  const std::size_t words = dirty.size() / 4;
  std::uint32_t runs = 0;
  std::size_t run_start = words, run_end = words;
  for_each_flagged(chunks, bit0, words, [&](std::size_t w) {
    if (run_end == w) {
      run_end = w + 1;
      return;
    }
    if (run_end != words) put_run(dirty, run_start, run_end, out, runs);
    run_start = w;
    run_end = w + 1;
  });
  if (run_end != words || run_start != words) {
    put_run(dirty, run_start, run_end, out, runs);
  }
  if (scan != nullptr) scan->scan_bytes_avoided += dirty.size();
  if (runs == 0) {
    out.clear();
    return 0;
  }
  prepend_u32(out, runs);
  return out.size();
}

template std::size_t make_diff_bitmap_only<std::vector<std::byte>>(
    std::span<const std::byte>, const std::uint64_t*, unsigned,
    std::vector<std::byte>&, BitmapScanStats*);
template std::size_t make_diff_bitmap_only<Bytes>(std::span<const std::byte>,
                                                  const std::uint64_t*,
                                                  unsigned, Bytes&,
                                                  BitmapScanStats*);

void apply_diff(std::span<std::byte> dst, std::span<const std::byte> diff) {
  if (diff.empty()) return;
  std::size_t pos = 0;
  const std::uint32_t runs = get_u32(diff, pos);
  for (std::uint32_t r = 0; r < runs; ++r) {
    const std::uint32_t off = get_u32(diff, pos);
    const std::uint32_t len = get_u32(diff, pos);
    DSM_CHECK(pos + len <= diff.size());
    DSM_CHECK(static_cast<std::size_t>(off) + len <= dst.size());
    std::memcpy(dst.data() + off, diff.data() + pos, len);
    pos += len;
  }
  DSM_CHECK_MSG(pos == diff.size(), "trailing bytes in diff");
}

std::uint32_t diff_runs(std::span<const std::byte> diff) {
  if (diff.empty()) return 0;
  std::size_t pos = 0;
  return get_u32(diff, pos);
}

std::size_t diff_changed_bytes(std::span<const std::byte> diff) {
  if (diff.empty()) return 0;
  std::size_t pos = 0;
  std::size_t total = 0;
  const std::uint32_t runs = get_u32(diff, pos);
  for (std::uint32_t r = 0; r < runs; ++r) {
    (void)get_u32(diff, pos);                 // offset
    const std::uint32_t len = get_u32(diff, pos);
    total += len;
    pos += len;
  }
  return total;
}

}  // namespace dsm::mem
