#include "mem/dirty_bitmap.hpp"

#include <bit>

namespace dsm::mem {

namespace {

/// Mask of a block's bits within chunk `c` of [c0, c1], for a block whose
/// words occupy global bit range [first, first + words).
std::uint64_t chunk_mask(std::size_t c, std::size_t first, std::size_t words) {
  const std::size_t lo = c * 64;
  std::uint64_t m = ~0ull;
  if (first > lo) m &= ~0ull << (first - lo);
  const std::size_t end = first + words;
  if (end < lo + 64) m &= (1ull << (end - lo)) - 1;
  return m;
}

}  // namespace

DirtyBitmap::DirtyBitmap(int nodes, std::size_t size_bytes,
                         std::size_t granularity)
    : nodes_(nodes), words_per_block_(granularity / 4) {
  DSM_CHECK(granularity >= 4 && granularity % 4 == 0);
  const std::size_t words = (size_bytes + 3) / 4;
  chunks_per_node_ = (words + 63) / 64;
  bits_ = FlatTable<std::uint64_t>(static_cast<std::size_t>(nodes_),
                                   chunks_per_node_);
}

bool DirtyBitmap::any_set(NodeId n, BlockId b) const {
  const std::size_t first = static_cast<std::size_t>(b) * words_per_block_;
  const std::uint64_t* row = bits_.row(static_cast<std::size_t>(n));
  for (std::size_t c = first >> 6; c * 64 < first + words_per_block_; ++c) {
    if ((row[c] & chunk_mask(c, first, words_per_block_)) != 0) return true;
  }
  return false;
}

std::uint64_t DirtyBitmap::count_set(NodeId n, BlockId b) const {
  const std::size_t first = static_cast<std::size_t>(b) * words_per_block_;
  const std::uint64_t* row = bits_.row(static_cast<std::size_t>(n));
  std::uint64_t total = 0;
  for (std::size_t c = first >> 6; c * 64 < first + words_per_block_; ++c) {
    total += static_cast<std::uint64_t>(
        std::popcount(row[c] & chunk_mask(c, first, words_per_block_)));
  }
  return total;
}

void DirtyBitmap::clear_block(NodeId n, BlockId b) {
  const std::size_t first = static_cast<std::size_t>(b) * words_per_block_;
  std::uint64_t* row = bits_.row(static_cast<std::size_t>(n));
  for (std::size_t c = first >> 6; c * 64 < first + words_per_block_; ++c) {
    row[c] &= ~chunk_mask(c, first, words_per_block_);
  }
}

}  // namespace dsm::mem
