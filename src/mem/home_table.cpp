#include "mem/home_table.hpp"

namespace dsm::mem {

HomeTable::HomeTable(int nodes, std::size_t num_blocks)
    : nodes_(nodes),
      cur_(num_blocks, kNoNode),
      cache_(static_cast<std::size_t>(nodes), num_blocks) {
  DSM_CHECK(nodes >= 1 && nodes <= kMaxNodes);
}

}  // namespace dsm::mem
