// Lazily-committed flat [rows x cols] metadata tables.
//
// Region setup used to eagerly construct vector-of-vector tables — access
// tags, touched masks, dirty bitmaps, probable-home caches — writing a fill
// value into every element of every node's row.  At 256/1024 nodes that
// zero/fill pass dominates run construction (nodes x blocks elements) even
// though most rows are never touched.  A FlatTable instead backs the whole
// table with one anonymous MAP_NORESERVE mapping: untouched pages cost
// address space only, the kernel's zero page stands in for a fill value of
// all-zero bytes, and the first real write commits just that page.
//
// Consequence for callers: the natural fill value is 0.  Tables whose
// logical empty value is not zero (the home cache's kNoNode) store a biased
// encoding (home + 1, 0 = unset) behind their accessors.
#pragma once

#include <sys/mman.h>

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/check.hpp"

namespace dsm::mem {

template <typename T>
class FlatTable {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  FlatTable() = default;

  FlatTable(std::size_t rows, std::size_t cols) : cols_(cols) {
    len_ = rows * cols * sizeof(T);
    if (len_ == 0) len_ = 1;  // keep a valid mapping for empty tables
    void* p = ::mmap(nullptr, len_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    DSM_CHECK_MSG(p != MAP_FAILED, "mmap of metadata table failed");
    data_ = static_cast<T*>(p);
  }

  ~FlatTable() {
    if (data_ != nullptr) ::munmap(data_, len_);
  }

  FlatTable(FlatTable&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        cols_(std::exchange(o.cols_, 0)),
        len_(std::exchange(o.len_, 0)) {}
  FlatTable& operator=(FlatTable&& o) noexcept {
    if (this != &o) {
      if (data_ != nullptr) ::munmap(data_, len_);
      data_ = std::exchange(o.data_, nullptr);
      cols_ = std::exchange(o.cols_, 0);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  T* row(std::size_t r) { return data_ + r * cols_; }
  const T* row(std::size_t r) const { return data_ + r * cols_; }

  std::size_t cols() const { return cols_; }

 private:
  T* data_ = nullptr;
  std::size_t cols_ = 0;
  std::size_t len_ = 0;
};

}  // namespace dsm::mem
