#include "mem/address_space.hpp"

#include <sys/mman.h>

#include <algorithm>

#include <bit>

namespace dsm::mem {

void AddressSpace::Unmapper::operator()(std::byte* p) const {
  if (p) ::munmap(p, len);
}

AddressSpace::Mapping AddressSpace::map_anon(std::size_t len) {
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  DSM_CHECK_MSG(p != MAP_FAILED, "mmap of node copy region failed");
  return Mapping(static_cast<std::byte*>(p), Unmapper{len});
}

AddressSpace::AddressSpace(int nodes, std::size_t size_bytes,
                           std::size_t granularity)
    : nodes_(nodes), size_(size_bytes), gran_(granularity) {
  DSM_CHECK(nodes >= 1 && nodes <= kMaxNodes);
  DSM_CHECK_MSG(std::has_single_bit(granularity) && granularity >= 8 &&
                    granularity <= 8192,
                "granularity must be a power of two in [8, 8192]");
  // Round the segment up to whole blocks.
  size_ = (size_ + gran_ - 1) & ~(gran_ - 1);
  shift_ = std::countr_zero(gran_);
  num_blocks_ = size_ >> shift_;

  mem_.reserve(static_cast<std::size_t>(nodes_));
  for (int n = 0; n < nodes_; ++n) mem_.push_back(map_anon(size_));
  backing_ = map_anon(size_);
  static_assert(static_cast<std::uint8_t>(Access::kInvalid) == 0,
                "flat access table relies on zero == kInvalid");
  acc_ = FlatTable<Access>(static_cast<std::size_t>(nodes_), num_blocks_);
  // 64 sub-lines per block (>= 1 byte each).
  line_shift_ = std::max(0, shift_ - 6);
  touched_ = FlatTable<std::uint64_t>(static_cast<std::size_t>(nodes_),
                                      num_blocks_);
  used_bytes_.assign(static_cast<std::size_t>(nodes_), 0);
  copies_.assign(static_cast<std::size_t>(nodes_), 0);
}

void AddressSpace::flush_all_touched() {
  for (NodeId n = 0; n < nodes_; ++n) {
    for (BlockId b = 0; b < num_blocks_; ++b) flush_touched(n, b);
  }
}

GAddr AddressSpace::alloc(std::size_t bytes, std::size_t align) {
  DSM_CHECK(std::has_single_bit(align));
  bump_ = (bump_ + align - 1) & ~(align - 1);
  DSM_CHECK_MSG(bump_ + bytes <= size_,
                "shared segment exhausted; raise DsmConfig::shared_bytes");
  const GAddr a = bump_;
  bump_ += bytes;
  return a;
}

}  // namespace dsm::mem
