#include "mem/block_state.hpp"

namespace dsm::mem {

const char* to_string(BlockStateKind k) {
  switch (k) {
    case BlockStateKind::kMap: return "map";
    case BlockStateKind::kSoA: return "soa";
  }
  return "?";
}

bool block_state_from_string(const std::string& s, BlockStateKind* out) {
  if (s == "map") {
    *out = BlockStateKind::kMap;
    return true;
  }
  if (s == "soa") {
    *out = BlockStateKind::kSoA;
    return true;
  }
  return false;
}

}  // namespace dsm::mem
