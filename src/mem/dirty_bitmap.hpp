// Per-word dirty bitmaps: host-side write tracking for the multiple-writer
// protocols (HLRC / MW-LRC).
//
// Every instrumented store ORs one bit per written 4-byte word into a flat
// per-node bitmap covering the whole shared segment (one bit per word =
// 1/32 of the segment size per node).  The release path then knows exactly
// which words MAY differ from the twin and compares only those, instead of
// scanning the full block — the dominant host-side cost of the LRC sweeps
// at 4 KB granularity.  The bitmap is a strict superset of the truly
// changed words (a silent store flags a word that compares equal), which
// is what makes the exact mode's output bitwise identical to a full scan.
//
// This is HOST bookkeeping only: the simulated 1997 platform has no such
// hardware, so the virtual-time cost model is untouched by it (see
// DsmConfig::write_tracking and DESIGN.md "Write tracking modes").
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/flat_table.hpp"

namespace dsm::mem {

class DirtyBitmap {
 public:
  /// One bitmap per node over `size_bytes` of shared space at 4-byte word
  /// resolution.  `granularity` fixes the word span of a BlockId.
  DirtyBitmap(int nodes, std::size_t size_bytes, std::size_t granularity);

  int nodes() const { return nodes_; }
  std::size_t words_per_block() const { return words_per_block_; }

  /// Raw row pointer for the Context::store hot path (see mark()).
  std::uint64_t* row(NodeId n) { return bits_.row(static_cast<std::size_t>(n)); }
  const std::uint64_t* row(NodeId n) const {
    return bits_.row(static_cast<std::size_t>(n));
  }

  /// Flags the word containing global address `a` — the one OR the store
  /// hot path pays.  Word index is a/4; chunk index a/256; bit (a/4)%64.
  static void mark(std::uint64_t* row, GAddr a) {
    row[a >> 8] |= 1ull << ((a >> 2) & 63);
  }

  /// One block's bits: `chunks` points at the u64 containing the block's
  /// first word bit, which sits at bit index `bit0` (non-zero only for
  /// granularities below 256 B, where a block spans less than one chunk).
  struct BlockBits {
    const std::uint64_t* chunks;
    unsigned bit0;
    std::size_t words;
  };
  BlockBits block_bits(NodeId n, BlockId b) const {
    const std::size_t w0 = static_cast<std::size_t>(b) * words_per_block_;
    return BlockBits{bits_.row(static_cast<std::size_t>(n)) + (w0 >> 6),
                     static_cast<unsigned>(w0 & 63), words_per_block_};
  }

  bool any_set(NodeId n, BlockId b) const;
  /// Number of flagged words in block `b`.
  std::uint64_t count_set(NodeId n, BlockId b) const;
  /// Resets block `b`'s bits (called when a twin is dropped / diff flushed).
  void clear_block(NodeId n, BlockId b);

  /// Host footprint of all rows (the peak_bitmap_bytes stat; rows are
  /// eagerly sized, so peak == size).
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(nodes_) * chunks_per_node_ * 8;
  }

 private:
  int nodes_;
  std::size_t words_per_block_;
  std::size_t chunks_per_node_;
  // Lazily-committed rows (mem/flat_table.hpp): a node that never writes a
  // region of the segment never commits the covering bitmap pages.
  FlatTable<std::uint64_t> bits_;
};

}  // namespace dsm::mem
