// Structure-of-arrays per-block protocol state.
//
// Every protocol keeps per-node state keyed by BlockId (twins, version
// hints, required-seq vectors, reply stashes...).  The seed implementation
// used one unordered_map per field per node, which made large runs
// pointer-chase-bound and hash-heavy — the PR 4 breakdown data's biggest
// host-side cost after the event queue.  This header replaces that with a
// sparse-set index plus flat arrays:
//
//   * BlockIndex: one per (node, protocol) — maps BlockId to a dense slot,
//     assigned in first-touch order.  The kSoA backend is the classic
//     sparse-set (sparse[b] holds the slot; validity is the round-trip
//     check dense[sparse[b]] == b, so neither initialization nor reset has
//     to touch the O(num_blocks) sparse array).  The kMap backend keeps an
//     unordered_map but assigns slots in the SAME first-touch order, so
//     both backends hand every field identical slot numbers — simulated
//     results are bitwise identical by construction, and the map stays as
//     the identity reference the A/B tests compare against.
//   * BlockField<T>: per-slot values for one field, sharing the node's
//     BlockIndex.  Presence is an epoch stamp (not T{}-ness: the
//     bitmap-only write-tracking mode stores deliberately EMPTY twin
//     markers).  erase() assigns T{} so arena-backed Bytes recycle their
//     buffers exactly as map::erase did.  size() counts present entries —
//     protocol_memory_bytes() depends on exact per-field counts.
//   * BlockSet: presence stamps only (replied/early-flushed style sets).
//
// reset() bumps the index epoch and clears the dense list — O(touched)
// work total, never O(address space) — so a future pooled-runtime reuse
// path stays cheap; fresh-per-run protocols simply never call it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dsm::mem {

/// Which backend holds per-block protocol state.  Host-side only.
enum class BlockStateKind : std::uint8_t {
  kMap = 0,  // unordered_map reference (bitwise-identity anchor)
  kSoA = 1,  // sparse-set + flat arrays (the default)
};

const char* to_string(BlockStateKind k);
/// Parses "map" / "soa".  Returns false on an unknown string.
bool block_state_from_string(const std::string& s, BlockStateKind* out);

/// BlockId -> dense slot index, first-touch assignment order.  Shared by
/// every BlockField/BlockSet of one node so the sparse array is paid once.
class BlockIndex {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  BlockIndex(BlockStateKind kind, std::size_t num_blocks)
      : kind_(kind), num_blocks_(num_blocks) {
    if (kind_ == BlockStateKind::kSoA) sparse_.resize(num_blocks);
  }

  BlockStateKind kind() const { return kind_; }
  std::uint32_t epoch() const { return epoch_; }
  /// Slots handed out this epoch (dense table size fields must cover).
  std::size_t slots() const { return dense_.size(); }

  /// Slot for `b`, assigning the next dense slot on first touch.
  std::uint32_t ensure(BlockId b) {
    if (kind_ == BlockStateKind::kSoA) {
      DSM_CHECK(b < num_blocks_);
      const std::uint32_t s = sparse_[b];
      if (s < dense_.size() && dense_[s] == b) return s;
      const auto ns = static_cast<std::uint32_t>(dense_.size());
      sparse_[b] = ns;
      dense_.push_back(b);
      return ns;
    }
    auto [it, inserted] = map_.try_emplace(b, 0);
    if (inserted) {
      it->second = static_cast<std::uint32_t>(dense_.size());
      dense_.push_back(b);
    }
    return it->second;
  }

  /// Slot for `b`, or kNoSlot when it was never touched this epoch.
  std::uint32_t find(BlockId b) const {
    if (kind_ == BlockStateKind::kSoA) {
      DSM_CHECK(b < num_blocks_);
      const std::uint32_t s = sparse_[b];
      return s < dense_.size() && dense_[s] == b ? s : kNoSlot;
    }
    auto it = map_.find(b);
    return it == map_.end() ? kNoSlot : it->second;
  }

  /// Forgets every slot assignment in O(1) + map clear; field contents
  /// become stale by epoch. Counted for the RunStats occupancy telemetry.
  void reset() {
    dense_.clear();
    map_.clear();
    ++epoch_;
    ++resets_;
  }

  std::uint32_t resets() const { return resets_; }

  /// Host bytes held by the index (occupancy telemetry / admission).
  std::size_t bytes() const {
    return sparse_.capacity() * sizeof(std::uint32_t) +
           dense_.capacity() * sizeof(BlockId) +
           map_.size() * (sizeof(BlockId) + sizeof(std::uint32_t) + 16);
  }

 private:
  BlockStateKind kind_;
  std::size_t num_blocks_;
  std::uint32_t epoch_ = 0;
  std::uint32_t resets_ = 0;
  std::vector<std::uint32_t> sparse_;  // kSoA: BlockId -> candidate slot
  std::vector<BlockId> dense_;         // slot -> BlockId (validity witness)
  std::unordered_map<BlockId, std::uint32_t> map_;  // kMap backend
};

/// One per-block field (twin bytes, hint struct, seq vector...).  Values
/// live in a flat array indexed by the shared BlockIndex's slots.
template <typename T>
class BlockField {
 public:
  /// Value for `b`, default-constructing on first touch (the try_emplace
  /// idiom the map code used).  `inserted` (optional) reports whether the
  /// entry is new.
  T& ensure(BlockIndex& idx, BlockId b, bool* inserted = nullptr) {
    sync(idx);
    const std::uint32_t s = idx.ensure(b);
    grow(s);
    const bool fresh = stamp_[s] != idx.epoch() + 1;
    if (fresh) {
      val_[s] = T{};
      stamp_[s] = idx.epoch() + 1;
      ++count_;
    }
    if (inserted != nullptr) *inserted = fresh;
    return val_[s];
  }

  T* find(const BlockIndex& idx, BlockId b) {
    sync(idx);
    const std::uint32_t s = idx.find(b);
    return s != BlockIndex::kNoSlot && s < stamp_.size() &&
                   stamp_[s] == idx.epoch() + 1
               ? &val_[s]
               : nullptr;
  }
  const T* find(const BlockIndex& idx, BlockId b) const {
    return const_cast<BlockField*>(this)->find(idx, b);
  }

  bool contains(const BlockIndex& idx, BlockId b) const {
    return find(idx, b) != nullptr;
  }

  /// Removes `b`'s entry; the value is assigned T{} so owning types
  /// release their resources now (arena Bytes recycling), not at table
  /// destruction.
  void erase(const BlockIndex& idx, BlockId b) {
    sync(idx);
    const std::uint32_t s = idx.find(b);
    if (s == BlockIndex::kNoSlot || s >= stamp_.size() ||
        stamp_[s] != idx.epoch() + 1) {
      return;
    }
    val_[s] = T{};
    stamp_[s] = 0;
    --count_;
  }

  /// Present entries (exact — protocol_memory_bytes depends on it).
  /// After a BlockIndex::reset(), exact again once any accessor has run
  /// (the lazy epoch sync); fresh-per-run protocols never reset.
  std::size_t size() const { return count_; }

  std::size_t bytes() const {
    return val_.capacity() * sizeof(T) +
           stamp_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void grow(std::uint32_t slot) {
    if (slot >= val_.size()) {
      val_.resize(slot + 1);
      stamp_.resize(slot + 1);
    }
  }

  /// Lazily zeroes the present-count after an index reset (stale stamps
  /// never match the new epoch, so entries are already logically absent).
  void sync(const BlockIndex& idx) {
    if (epoch_ != idx.epoch()) {
      epoch_ = idx.epoch();
      count_ = 0;
    }
  }

  std::vector<T> val_;
  /// Presence: stamp == index epoch + 1 (0 = never present, so a freshly
  /// grown entry is absent without initialization games).
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::size_t count_ = 0;
};

/// Set of BlockIds — presence marks only.  Membership is stamp == mark;
/// clear() just picks a fresh mark, so clearing is O(1) no matter how many
/// blocks were ever members (the dirty-set-per-interval pattern).
class BlockSet {
 public:
  /// Returns true when newly inserted.
  bool insert(BlockIndex& idx, BlockId b) {
    sync(idx);
    const std::uint32_t s = idx.ensure(b);
    if (s >= stamp_.size()) stamp_.resize(s + 1);
    if (stamp_[s] == mark_) return false;
    stamp_[s] = mark_;
    ++count_;
    return true;
  }

  bool contains(const BlockIndex& idx, BlockId b) const {
    sync(idx);
    const std::uint32_t s = idx.find(b);
    return s != BlockIndex::kNoSlot && s < stamp_.size() &&
           stamp_[s] == mark_;
  }

  void erase(const BlockIndex& idx, BlockId b) {
    sync(idx);
    const std::uint32_t s = idx.find(b);
    if (s == BlockIndex::kNoSlot || s >= stamp_.size() ||
        stamp_[s] != mark_) {
      return;
    }
    stamp_[s] = 0;  // marks start at 1, so 0 never matches
    --count_;
  }

  void clear() {
    mark_ = ++mark_src_;
    count_ = 0;
  }

  std::size_t size() const { return count_; }

  std::size_t bytes() const {
    return stamp_.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// Lazy epoch sync (see BlockField::sync); mutable because membership
  /// queries must observe a reset too — logical constness.
  void sync(const BlockIndex& idx) const {
    if (epoch_ != idx.epoch()) {
      epoch_ = idx.epoch();
      mark_ = ++mark_src_;
      count_ = 0;
    }
  }

  std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::uint32_t mark_ = 1;
  mutable std::uint32_t mark_src_ = 1;
  mutable std::size_t count_ = 0;
};

}  // namespace dsm::mem
