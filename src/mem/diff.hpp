// Twin/diff machinery for the multiple-writer HLRC protocol (paper §2.3).
//
// A twin is a clean copy of a block taken at the first write in an
// interval.  A diff is the runlength-encoded difference between the dirty
// copy and the twin, computed at 4-byte word granularity — the word size
// of the paper's 32-bit SPARC platform.  Applications must be data-race-
// free at this granularity for concurrent writers to merge correctly:
//
//   diff := { u32 run_count } { u32 offset, u32 length, bytes[length] }*
//
// Applying a diff overwrites only the changed runs, which is what lets
// concurrent writers to disjoint words of the same block merge at the home.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.hpp"

namespace dsm::mem {

/// Computes the diff of `dirty` against `twin`.  Both spans must be the
/// same size, a multiple of 4.  Returns an empty vector when identical.
std::vector<std::byte> make_diff(std::span<const std::byte> dirty,
                                 std::span<const std::byte> twin);

/// Same, but builds into `out` (cleared first), reusing its capacity —
/// the protocol release path calls this with a per-protocol scratch buffer
/// so steady-state diff construction does not allocate.  Returns the
/// encoded size (0 when the blocks are identical, leaving `out` empty).
/// Out is std::vector<std::byte> or the arena-aware dsm::Bytes (the
/// protocols use the latter so the scratch draws from the worker arena).
template <typename Out>
std::size_t make_diff_into(std::span<const std::byte> dirty,
                           std::span<const std::byte> twin, Out& out);

extern template std::size_t make_diff_into<std::vector<std::byte>>(
    std::span<const std::byte>, std::span<const std::byte>,
    std::vector<std::byte>&);
extern template std::size_t make_diff_into<Bytes>(std::span<const std::byte>,
                                                  std::span<const std::byte>,
                                                  Bytes&);

/// Host-side accounting for the bitmap-guided scanners: how many flagged
/// words were actually compared and how many bytes of the reference full
/// scan were skipped (protocols fold these into NodeStats).
struct BitmapScanStats {
  std::uint64_t words_compared = 0;
  std::uint64_t scan_bytes_avoided = 0;
};

/// Exact-mode bitmap diff: identical output to make_diff, but compares only
/// the words flagged in the dirty-word bitmap.  `chunks`/`bit0` locate the
/// block's bits (see DirtyBitmap::block_bits); the bitmap must be a
/// SUPERSET of the words where `dirty` and `twin` differ — an unflagged
/// word is trusted to be unchanged and never compared.  Builds into `out`
/// (cleared first), returns the encoded size.
template <typename Out>
std::size_t make_diff_from_bitmap(std::span<const std::byte> dirty,
                                  std::span<const std::byte> twin,
                                  const std::uint64_t* chunks, unsigned bit0,
                                  Out& out, BitmapScanStats* scan = nullptr);

extern template std::size_t make_diff_from_bitmap<std::vector<std::byte>>(
    std::span<const std::byte>, std::span<const std::byte>,
    const std::uint64_t*, unsigned, std::vector<std::byte>&,
    BitmapScanStats*);
extern template std::size_t make_diff_from_bitmap<Bytes>(
    std::span<const std::byte>, std::span<const std::byte>,
    const std::uint64_t*, unsigned, Bytes&, BitmapScanStats*);

/// Twin-free mode: encodes every flagged word straight from `dirty`, with
/// no twin and no comparison at all.  The result is a superset of the true
/// diff — silent stores (rewrites of an unchanged value) inflate it — so
/// this trades paper-identical diff traffic for dropping twin creation and
/// the scan entirely (DsmConfig::write_tracking = kBitmapOnly).
template <typename Out>
std::size_t make_diff_bitmap_only(std::span<const std::byte> dirty,
                                  const std::uint64_t* chunks, unsigned bit0,
                                  Out& out, BitmapScanStats* scan = nullptr);

extern template std::size_t make_diff_bitmap_only<std::vector<std::byte>>(
    std::span<const std::byte>, const std::uint64_t*, unsigned,
    std::vector<std::byte>&, BitmapScanStats*);
extern template std::size_t make_diff_bitmap_only<Bytes>(
    std::span<const std::byte>, const std::uint64_t*, unsigned, Bytes&,
    BitmapScanStats*);

/// Applies `diff` (produced by make_diff) onto `dst`.
void apply_diff(std::span<std::byte> dst, std::span<const std::byte> diff);

/// Number of runs encoded in `diff` (0 for empty).
std::uint32_t diff_runs(std::span<const std::byte> diff);

/// Total count of changed bytes encoded in `diff`.
std::size_t diff_changed_bytes(std::span<const std::byte> diff);

}  // namespace dsm::mem
