#include "common/table.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace dsm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DSM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DSM_CHECK_MSG(cells.size() <= header_.size(), "row wider than header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_count(std::int64_t v) {
  char digits[32];
  std::snprintf(digits, sizeof digits, "%lld", static_cast<long long>(v < 0 ? -v : v));
  std::string s(digits);
  std::string out;
  if (v < 0) out += '-';
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n; ++i) {
    out += s[i];
    const std::size_t rem = n - 1 - i;
    if (rem > 0 && rem % 3 == 0) out += ',';
  }
  return out;
}

}  // namespace dsm
