#include "common/thread_pool.hpp"

#include "common/arena.hpp"
#include "common/check.hpp"

namespace dsm {

namespace {
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;
}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads <= 0 ? hardware_threads() : threads;
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker() const { return tl_pool == this; }

bool ThreadPool::on_any_worker() { return tl_pool != nullptr; }

void ThreadPool::submit(std::function<void()> task) {
  DSM_CHECK(task != nullptr);
  std::size_t q;
  if (on_worker()) {
    q = tl_worker_index;  // nested work stays local until stolen
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    q = static_cast<std::size_t>(next_queue_++ % queues_.size());
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++unfinished_;
  }
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    queues_[q]->deque.push_back(std::move(task));
  }
  // queued_ goes up only after the task is visible in a deque, so a worker
  // that observes queued_ > 0 and retries try_take() cannot spin on a task
  // that has not been pushed yet.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++queued_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_take(std::size_t self, std::function<void()>& out) {
  // Own deque first, from the back (most recently pushed, cache-warm).
  {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  // Steal from victims, oldest task first (front).
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Worker& v = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(v.mu);
    if (!v.deque.empty()) {
      out = std::move(v.deque.front());
      v.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker_index = self;
  // Each worker owns a private slab arena for the pool's lifetime: tasks
  // (simulations, for the sweep executor) allocate payload/twin/diff
  // buffers from it and rewind it between runs, so steady-state sweeps
  // stop touching the process heap entirely (common/arena.hpp).
  ArenaScope arena_scope;
  std::function<void()> task;
  while (true) {
    if (try_take(self, task)) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        --queued_;  // may transiently go negative; see header
      }
      task();
      task = nullptr;
      bool drained;
      {
        std::lock_guard<std::mutex> lk(mu_);
        drained = --unfinished_ == 0;
      }
      if (drained) idle_cv_.notify_all();
      continue;
    }
    // Nothing takeable.  Sleep until a submit queues a task (every submit
    // bumps queued_ under mu_ *after* the push, then notifies, so this
    // cannot miss a wakeup) — crucially, workers do NOT poll while their
    // peers execute long tasks.
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  DSM_CHECK_MSG(!on_worker(), "wait_idle() from a pool worker would deadlock");
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return unfinished_ == 0; });
}

}  // namespace dsm
