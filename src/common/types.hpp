// Fundamental types shared by every module of the DSM reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dsm {

/// Simulated time, in nanoseconds of virtual (target-platform) time.
using SimTime = std::int64_t;

inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::min();

/// Convenience literals for virtual time.
constexpr SimTime ns(std::int64_t v) { return v; }
constexpr SimTime us(std::int64_t v) { return v * 1000; }
constexpr SimTime ms(std::int64_t v) { return v * 1000 * 1000; }
constexpr SimTime sec(std::int64_t v) { return v * 1000 * 1000 * 1000; }

/// Identifies a node (processor) in the simulated cluster.
using NodeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// Hard cap on cluster size (the paper uses 16; we allow up to 64 so sharer
/// sets fit in one word).
inline constexpr int kMaxNodes = 64;

/// A byte offset into the shared global address space.  The shared space is
/// a single flat segment starting at 0; address 0 is valid.
using GAddr = std::uint64_t;

inline constexpr GAddr kNullGAddr = std::numeric_limits<GAddr>::max();

/// Index of a coherence block (GAddr >> log2(granularity)).
using BlockId = std::uint64_t;

/// Identifies an application-level lock.
using LockId = std::int32_t;

}  // namespace dsm
