// Fundamental types shared by every module of the DSM reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dsm {

/// Simulated time, in nanoseconds of virtual (target-platform) time.
using SimTime = std::int64_t;

inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::min();

/// Convenience literals for virtual time.
constexpr SimTime ns(std::int64_t v) { return v; }
constexpr SimTime us(std::int64_t v) { return v * 1000; }
constexpr SimTime ms(std::int64_t v) { return v * 1000 * 1000; }
constexpr SimTime sec(std::int64_t v) { return v * 1000 * 1000 * 1000; }

/// Identifies a node (processor) in the simulated cluster.
using NodeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// Hard cap on cluster size.  The paper uses 16 nodes; the scale-out
/// sweeps extrapolate the protocols to 1024.  Node-indexed structures
/// (vector clocks, sharer sets) store the common small-cluster case inline
/// and spill past it, so raising this cap costs nothing at paper scale.
inline constexpr int kMaxNodes = 1024;

/// A byte offset into the shared global address space.  The shared space is
/// a single flat segment starting at 0; address 0 is valid.
using GAddr = std::uint64_t;

inline constexpr GAddr kNullGAddr = std::numeric_limits<GAddr>::max();

/// Index of a coherence block (GAddr >> log2(granularity)).
using BlockId = std::uint64_t;

/// Identifies an application-level lock.
using LockId = std::int32_t;

}  // namespace dsm
