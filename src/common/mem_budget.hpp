// Memory-aware admission control for concurrent simulations.
//
// A -jN sweep used to multiply peak RSS by N unconditionally: every pool
// worker constructs a full Runtime (per-node copy regions + backing image,
// see estimated_run_bytes in runtime/config.hpp).  A MemBudget caps the
// summed ESTIMATED footprint of in-flight simulations instead: workers
// reserve before constructing a Runtime and block until the reservation
// fits.  Workers that dedupe onto an in-flight run or hit the result cache
// never reserve anything.
//
// The budget comes from --mem-budget / DSM_MEM_BUDGET (bench_util.hpp);
// 0 means unlimited (the default, preserving old behavior).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dsm {

class MemBudget {
 public:
  explicit MemBudget(std::uint64_t budget_bytes = 0) : budget_(budget_bytes) {}

  MemBudget(const MemBudget&) = delete;
  MemBudget& operator=(const MemBudget&) = delete;

  /// Blocks until `est` bytes fit under the budget.  A job larger than the
  /// whole budget is admitted once nothing else is in flight — progress is
  /// always possible, the cap just stops it running alongside others.
  void acquire(std::uint64_t est) {
    if (budget_ == 0) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return in_use_ == 0 || in_use_ + est <= budget_; });
    in_use_ += est;
  }

  void release(std::uint64_t est) {
    if (budget_ == 0) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_use_ -= est;
    }
    cv_.notify_all();
  }

  std::uint64_t budget() const { return budget_; }
  std::uint64_t in_use() {
    std::lock_guard<std::mutex> lk(mu_);
    return in_use_;
  }

 private:
  const std::uint64_t budget_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t in_use_ = 0;
};

/// RAII reservation; a null budget is a no-op (unlimited).
class MemReservation {
 public:
  MemReservation(MemBudget* b, std::uint64_t est) : b_(b), est_(est) {
    if (b_ != nullptr) b_->acquire(est_);
  }
  ~MemReservation() {
    if (b_ != nullptr) b_->release(est_);
  }

  MemReservation(const MemReservation&) = delete;
  MemReservation& operator=(const MemReservation&) = delete;

 private:
  MemBudget* b_;
  std::uint64_t est_;
};

}  // namespace dsm
