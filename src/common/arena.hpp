// Per-worker slab arenas for simulator hot-path buffers.
//
// Motivation (ROADMAP perf item): with the sweep executor running one
// simulation per pool worker, every simulated message allocated a fresh
// std::vector payload and the LRC protocols pushed twins and diff scratch
// through the global heap.  Under -jN those allocations all contend on the
// process allocator, which became the dominant shared resource once the
// compute path was optimized.  An Arena gives each worker thread a private
// slab/bump allocator with size-classed free lists; Bytes is the
// vector-like buffer type that draws from it.  Steady-state sweeps then
// perform ~zero heap calls: slabs are retained across runs and rewound
// wholesale by reset() between simulations.  Within a run, deallocate()
// returns segments to their size-class free list for immediate reuse —
// the MW-LRC barrier GC (--gc=barrier) relies on this to recycle
// reclaimed diff buffers mid-run (recycled_allocs()/recycled_bytes()
// count those free-list hits).
//
// Determinism: the arena only changes WHERE bytes live, never their
// contents or sizes.  Bytes reproduces std::vector semantics exactly
// (resize zero-fills, assign/append copy fully), so arena mode and heap
// mode ("--alloc=heap") produce bitwise-identical RunStats.  Arena usage
// counters are host-side diagnostics and are excluded from bitwise
// comparisons, like host_seconds.
//
// Threading discipline: an Arena is strictly single-threaded.  Each pool
// worker installs its own via the thread-local current(); a Bytes must be
// allocated and destroyed on the owning thread.  Simulations never share
// buffers across workers (each owns a whole Runtime), so this falls out of
// the existing executor design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace dsm {

class Arena {
 public:
  /// Smallest size class, 16 B (alignment unit for every class).
  static constexpr std::size_t kMinClassLog2 = 4;
  /// Largest size class, 4 MiB.  Requests beyond this fall back to the
  /// heap and bump heap_fallbacks() — the counter the CI smoke gate
  /// watches so hot-path mallocs cannot silently reappear.
  static constexpr std::size_t kMaxClassLog2 = 22;
  static constexpr std::size_t kMaxClass = std::size_t{1} << kMaxClassLog2;
  static constexpr int kNumClasses =
      static_cast<int>(kMaxClassLog2 - kMinClassLog2) + 1;
  /// Default slab size; oversized classes get a dedicated slab.
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 20;

  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// One arena allocation: pointer, rounded-up capacity, and the arena
  /// generation it belongs to (see reset()).
  struct Block {
    std::byte* ptr = nullptr;
    std::uint32_t cap = 0;
    std::uint32_t gen = 0;
  };

  /// Allocates at least n bytes (rounded up to a power-of-two class).
  /// Returns a null Block when n exceeds kMaxClass; the caller is expected
  /// to heap-allocate instead (the event is counted as a heap fallback).
  Block allocate(std::size_t n);

  /// Returns a block to its size-class free list.  A block from a previous
  /// generation (handed out before the last reset()) is ignored: its
  /// memory was already reclaimed wholesale.
  void deallocate(std::byte* p, std::uint32_t cap, std::uint32_t gen);

  /// Rewinds the arena: clears every free list, resets the bump cursor to
  /// the first slab and advances the generation.  Slab memory the finished
  /// generation actually reached is retained for reuse, so the next run
  /// allocates without touching the heap; slabs beyond the generation's
  /// high-water mark are returned to the OS (bytes_trimmed() counts them),
  /// so one outlier run does not pin its footprint for the pool's
  /// lifetime.  Call only between runs, after the Runtime (and every live
  /// Bytes) is gone.
  void reset();

  // ------------------------------------------------------------------
  // Diagnostics (host-side; excluded from determinism comparisons).
  std::uint64_t bytes_in_use() const { return bytes_in_use_; }
  std::uint64_t slab_count() const { return slabs_.size(); }
  std::uint64_t slab_bytes() const { return slab_bytes_; }
  std::uint64_t resets() const { return resets_; }
  std::uint64_t heap_fallbacks() const { return heap_fallbacks_; }
  /// Cumulative slab bytes released by the reset() high-water-mark trim.
  std::uint64_t bytes_trimmed() const { return bytes_trimmed_; }
  /// In-run recycling: allocations served from a size-class free list
  /// (a segment deallocate() returned within the current generation)
  /// instead of fresh bump space, and their byte total.  Nonzero under
  /// --gc=barrier, where the MW-LRC archive GC frees diff buffers mid-run
  /// and later diffs reuse their segments.
  std::uint64_t recycled_allocs() const { return recycled_allocs_; }
  std::uint64_t recycled_bytes() const { return recycled_bytes_; }
  std::uint32_t generation() const { return gen_; }

  // ------------------------------------------------------------------
  // Thread-local installation and the process-wide mode switch.

  /// The arena Bytes draws from on this thread, or nullptr when none is
  /// installed or arenas are disabled (--alloc=heap).
  static Arena* current();
  /// Installs `a` as this thread's arena; returns the previous one.
  static Arena* install(Arena* a);
  /// Resets this thread's installed arena, if any (even when disabled, so
  /// an A/B heap pass does not pin a previous pass's generation).
  static void reset_current();

  /// Process-wide switch for the --alloc=heap escape hatch.  When
  /// disabled, current() returns nullptr everywhere and Bytes uses the
  /// plain heap; installed arenas stay installed, just dormant.
  static bool enabled();
  static void set_enabled(bool on);

 private:
  struct Slab {
    std::byte* base;
    std::size_t size;
  };

  static int class_index(std::size_t cls);
  std::byte* bump(std::size_t cls);

  std::vector<Slab> slabs_;
  std::size_t cur_slab_ = 0;  // index into slabs_ the bump cursor is in
  std::size_t cur_off_ = 0;
  std::vector<std::byte*> free_[kNumClasses];

  std::uint32_t gen_ = 1;  // 0 is reserved for heap-backed Bytes
  std::uint64_t bytes_in_use_ = 0;
  std::uint64_t slab_bytes_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  std::uint64_t bytes_trimmed_ = 0;
  std::uint64_t recycled_allocs_ = 0;
  std::uint64_t recycled_bytes_ = 0;
};

/// RAII: owns an Arena and installs it on the constructing thread.  Used
/// by pool workers, dsmrun's main thread and benches' serial passes.
class ArenaScope {
 public:
  ArenaScope() : prev_(Arena::install(&arena_)) {}
  ~ArenaScope() { Arena::install(prev_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena arena_;
  Arena* prev_;
};

/// Arena-aware byte buffer: the payload/diff/twin type.  Mirrors the
/// std::vector<std::byte> subset the simulator uses (including zero-fill
/// on resize, so arena and heap modes stay bitwise identical) but draws
/// storage from the thread's installed Arena when one is active, falling
/// back to the heap otherwise.  32 bytes, nothrow-movable: a delivery
/// closure capturing a whole net::Message still fits EventFn inline.
class Bytes {
 public:
  Bytes() = default;
  /// n zero-filled bytes (vector's count constructor).
  explicit Bytes(std::size_t n) { resize(n); }
  /// Copy of a byte range.
  explicit Bytes(std::span<const std::byte> s) { assign(s); }

  Bytes(const Bytes& o) { assign(o); }
  Bytes& operator=(const Bytes& o) {
    if (this != &o) assign(o);
    return *this;
  }

  Bytes(Bytes&& o) noexcept
      : data_(o.data_), arena_(o.arena_), size_(o.size_), cap_(o.cap_),
        gen_(o.gen_) {
    o.forget();
  }
  Bytes& operator=(Bytes&& o) noexcept {
    if (this != &o) {
      free_storage();
      data_ = o.data_;
      arena_ = o.arena_;
      size_ = o.size_;
      cap_ = o.cap_;
      gen_ = o.gen_;
      o.forget();
    }
    return *this;
  }

  ~Bytes() { free_storage(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  std::byte* begin() { return data_; }
  std::byte* end() { return data_ + size_; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }
  std::byte& operator[](std::size_t i) { return data_[i]; }
  const std::byte& operator[](std::size_t i) const { return data_[i]; }

  operator std::span<std::byte>() { return {data_, size_}; }  // NOLINT
  operator std::span<const std::byte>() const {               // NOLINT
    return {data_, size_};
  }

  /// True when the storage came from an arena (diagnostic/testing).
  bool arena_backed() const { return arena_ != nullptr; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  /// Zero-fills growth, exactly like std::vector::resize — required for
  /// arena/heap bitwise identity (recycled arena memory is dirty).
  void resize(std::size_t n) {
    if (n > size_) {
      if (n > cap_) regrow(n);
      std::memset(data_ + size_, 0, n - size_);
    }
    size_ = static_cast<std::uint32_t>(n);
  }

  /// Appends n uninitialized bytes and returns a pointer to them; callers
  /// must write all n before the buffer is read.
  std::byte* grow_uninit(std::size_t n) {
    if (size_ + n > cap_) regrow(size_ + n);
    std::byte* p = data_ + size_;
    size_ += static_cast<std::uint32_t>(n);
    return p;
  }

  void append(const void* p, std::size_t n) {
    std::memcpy(grow_uninit(n), p, n);
  }

  /// Replaces contents with a copy of s (vector's assign).
  void assign(std::span<const std::byte> s) {
    size_ = 0;
    if (!s.empty()) append(s.data(), s.size());
  }

 private:
  void forget() {
    data_ = nullptr;
    arena_ = nullptr;
    size_ = cap_ = gen_ = 0;
  }
  void free_storage() {
    if (data_ == nullptr) return;
    if (arena_ != nullptr) {
      arena_->deallocate(data_, cap_, gen_);
    } else {
      ::operator delete(data_);
    }
  }
  void regrow(std::size_t need);

  std::byte* data_ = nullptr;
  Arena* arena_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
  std::uint32_t gen_ = 0;
};

static_assert(sizeof(Bytes) == 32);
static_assert(std::is_nothrow_move_constructible_v<Bytes>);

}  // namespace dsm
