// Deterministic pseudo-random number generation.  All randomness in the
// simulator and the applications flows through these generators so every
// experiment is exactly reproducible.
#pragma once

#include <cstdint>

namespace dsm {

/// SplitMix64: used to seed Xoshiro and for cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1997'0616ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Modulo bias is irrelevant for workload generation.
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace dsm
