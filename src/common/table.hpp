// Minimal ASCII table formatter used by the benchmark harness to print
// paper-style tables (Tables 1-17) and figure data series.
#pragma once

#include <string>
#include <vector>

namespace dsm {

/// Column-aligned ASCII table.  Cells are strings; the caller formats
/// numbers (so each table controls its own precision).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and 2-space column gaps.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double v, int decimals = 2);

/// Formats an integer with thousands separators (e.g. "24,654").
std::string fmt_count(std::int64_t v);

}  // namespace dsm
