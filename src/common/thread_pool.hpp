// Work-stealing thread pool for the parallel sweep executor.
//
// Scope: coarse tasks (whole simulations, milliseconds to seconds each), so
// the design favors simplicity over lock-free deques — each worker owns a
// mutex-guarded deque; owners pop from the back (LIFO, cache-warm), thieves
// steal from the front (FIFO, oldest first).  submit() from outside the
// pool round-robins across workers; submit() from a worker pushes onto that
// worker's own deque, so recursively spawned work stays local until stolen.
//
// Determinism note: the pool schedules *which* simulation runs when, never
// anything inside a simulation.  Each task owns a self-contained
// Runtime/Engine, so completion order cannot perturb simulated results
// (see DESIGN.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dsm {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 (or negative) means one per hardware
  /// thread.  `threads == 1` still spawns one worker so behavior is uniform.
  explicit ThreadPool(int threads = 0);

  /// Drains remaining tasks (wait_idle), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Safe from any thread, including pool workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.  Caller must not be a pool worker.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// True when called from one of this pool's worker threads.
  bool on_worker() const;

  /// True when called from a worker thread of ANY pool.  The runtime uses
  /// this to avoid nesting a per-run engine pool inside a sweep worker.
  static bool on_any_worker();

  static int hardware_threads();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mu;
  };

  void worker_loop(std::size_t self);
  bool try_take(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards sleeping workers + idle waiters
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t unfinished_ = 0;   // submitted but not yet completed
  /// Tasks sitting in deques, not yet taken.  Workers sleep on work_cv_
  /// while this is <= 0 instead of polling while peers run long tasks.
  /// Signed: a steal can be counted before the submit that queued it.
  std::int64_t queued_ = 0;
  std::uint64_t next_queue_ = 0;   // round-robin for external submits
  bool stop_ = false;
};

}  // namespace dsm
