// Deterministic Zipfian key sampler.
//
// P(rank k) ∝ 1/(k+1)^s over {0, ..., n-1}.  The CDF is precomputed once
// (host-side, O(n)) and sampling is a binary search on one Rng draw, so an
// identical (n, s, Rng stream) yields an identical key sequence in every
// engine mode — the generator has no hidden state and never consults the
// host clock.  s = 0 degenerates to the uniform distribution.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dsm {

class ZipfSampler {
 public:
  ZipfSampler() = default;

  ZipfSampler(std::size_t n, double s) { reset(n, s); }

  void reset(std::size_t n, double s) {
    DSM_CHECK(n > 0);
    DSM_CHECK(s >= 0.0);
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    const double inv = 1.0 / total;
    for (double& c : cdf_) c *= inv;
    cdf_.back() = 1.0;  // guard against rounding shortfall
  }

  std::size_t size() const { return cdf_.size(); }

  /// Rank 0 is the hottest key.  Thread-safe for concurrent const use
  /// (parallel-DES windows run different nodes' samplers concurrently
  /// against one shared CDF).
  std::size_t operator()(Rng& rng) const {
    const double u = rng.next_double();  // in [0, 1)
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const std::size_t k = static_cast<std::size_t>(it - cdf_.begin());
    return k < cdf_.size() ? k : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace dsm
