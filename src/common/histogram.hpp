// HDR-style log-bucketed integer histogram for request latencies.
//
// Values are non-negative int64 nanoseconds of *virtual* time.  Bucketing,
// counting, merging and quantile extraction are integer-only, so a
// histogram built from the same virtual-time samples is bitwise identical
// regardless of host-side engine mode (--jobs, --sim-par, --alloc,
// --event-queue): the simulated clock is the only input.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dsm {

/// Log-bucketed histogram: exact below 2^kSubBits, then 2^kSubBits
/// sub-buckets per octave (worst-case relative error 2^-kSubBits ≈ 1.6%).
/// Quantiles report the *upper bound* of the target bucket, so a quantile
/// is always >= the true order statistic and exact below 64 ns.
class LogHistogram {
 public:
  static constexpr int kSubBits = 6;
  static constexpr std::size_t kSub = 1u << kSubBits;
  // Highest shift is bit_width(2^63) - 1 - kSubBits = 57; one linear level
  // plus levels 1..58 of kSub buckets each covers all of int64.
  static constexpr std::size_t kBuckets = (57 + 2) << kSubBits;

  LogHistogram() : counts_(kBuckets, 0) {}

  void record(std::int64_t value) {
    if (value < 0) value = 0;
    ++counts_[index(static_cast<std::uint64_t>(value))];
    ++count_;
    sum_ += static_cast<std::uint64_t>(value);
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::int64_t max() const { return max_; }

  /// Fold another histogram in (per-node histograms merge in node order).
  void merge(const LogHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  /// Value at the q-th permille (p50 = 500, p99 = 990, p99.9 = 999):
  /// upper bound of the bucket holding the ceil(q/1000 * count)-th sample.
  std::int64_t value_at_permille(int permille) const {
    DSM_CHECK(permille >= 0 && permille <= 1000);
    if (count_ == 0) return 0;
    std::uint64_t target =
        (count_ * static_cast<std::uint64_t>(permille) + 999) / 1000;
    if (target == 0) target = 1;
    if (target > count_) target = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) {
        // The true maximum is a tighter upper bound for the last bucket.
        const std::int64_t ub = bucket_upper(i);
        return ub < max_ ? ub : max_;
      }
    }
    return max_;
  }

  /// FNV-1a over the occupied buckets: the identity-gate fingerprint.
  /// Equal across runs iff every bucket count (and the exact max) matches.
  std::uint64_t checksum() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= 0x100000001b3ULL;
      }
    };
    mix(count_);
    mix(static_cast<std::uint64_t>(max_));
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] != 0) {
        mix(i);
        mix(counts_[i]);
      }
    }
    return h;
  }

  /// Bucket of a value: identity below kSub, else (level, top-kSubBits).
  static std::size_t index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int shift = std::bit_width(v) - 1 - kSubBits;  // >= 0
    const std::uint64_t sub = v >> shift;                // in [kSub, 2*kSub)
    return ((static_cast<std::size_t>(shift) + 1) << kSubBits) +
           static_cast<std::size_t>(sub - kSub);
  }

  /// Largest value mapping to bucket `idx` (inverse of index()).
  static std::int64_t bucket_upper(std::size_t idx) {
    DSM_CHECK(idx < kBuckets);
    if (idx < kSub) return static_cast<std::int64_t>(idx);
    const int shift = static_cast<int>(idx >> kSubBits) - 1;
    const std::uint64_t sub = kSub + (idx & (kSub - 1));
    return static_cast<std::int64_t>(((sub + 1) << shift) - 1);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace dsm
