// Move-only callable wrapper with a guaranteed small-buffer capacity.
//
// The simulator posts millions of short-lived event closures per run; with
// std::function every closure whose captures exceed the library's tiny SBO
// (16 bytes on libstdc++) costs a heap allocation and a free.  The dominant
// closure — a network delivery capturing a whole net::Message — is ~100
// bytes, so effectively every event hit the allocator.  InlineFunction
// stores captures up to `Cap` bytes in place; larger callables still work
// (they fall back to a single heap cell) so call sites never have to care.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dsm {

template <typename Sig, std::size_t Cap = 104>
class InlineFunction;

template <typename R, typename... Args, std::size_t Cap>
class InlineFunction<R(Args...), Cap> {
 public:
  /// Inline-buffer size; exposed so hot call sites can static_assert their
  /// closure fits (see stays_inline).
  static constexpr std::size_t capacity = Cap;

  /// True when a closure of type F is stored in the inline buffer — the
  /// exact condition the constructor dispatches on.  Hot paths assert this
  /// at the closure's creation site, so a capture added later fails the
  /// build instead of silently degrading every event to a heap allocation.
  template <typename F>
  static constexpr bool stays_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= Cap && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function
    using D = std::decay_t<F>;
    if constexpr (stays_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &boxed_ops<D>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->call(const_cast<unsigned char*>(buf_),
                      std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*call)(void*, Args...);
    /// Move-construct into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* p, Args... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(p)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops boxed_ops = {
      [](void* p, Args... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(p)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D** s = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*s);
        *s = nullptr;
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  alignas(std::max_align_t) unsigned char buf_[Cap];
  const Ops* ops_ = nullptr;
};

/// The simulator's event closure: sized so a network delivery (capturing a
/// ~96-byte net::Message by value) stays inline.
using EventFn = InlineFunction<void(), 104>;

/// Blocking predicates capture a handful of pointers/ids; 48 bytes covers
/// every predicate in the tree without boxing.
using PredFn = InlineFunction<bool(), 48>;

}  // namespace dsm
