// Always-on invariant checking.  Protocol bugs must fail loudly, never
// produce plausible-looking numbers, so these checks stay enabled in
// Release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsm::detail {

[[noreturn]] inline void check_fail(const char* cond, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "DSM_CHECK failed: %s\n  at %s:%d\n  %s\n", cond, file,
               line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace dsm::detail

#define DSM_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::dsm::detail::check_fail(#cond, __FILE__, __LINE__, nullptr); \
    }                                                                \
  } while (0)

#define DSM_CHECK_MSG(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      ::dsm::detail::check_fail(#cond, __FILE__, __LINE__, msg);  \
    }                                                             \
  } while (0)
