#include "common/arena.hpp"

#include <atomic>
#include <bit>
#include <new>

#include "common/check.hpp"

namespace dsm {

namespace {
thread_local Arena* tl_arena = nullptr;
// Relaxed is enough: the flag is flipped only between sweep passes, never
// while simulations are in flight.
std::atomic<bool> g_arena_enabled{true};
}  // namespace

Arena* Arena::current() {
  return g_arena_enabled.load(std::memory_order_relaxed) ? tl_arena : nullptr;
}

Arena* Arena::install(Arena* a) {
  Arena* prev = tl_arena;
  tl_arena = a;
  return prev;
}

void Arena::reset_current() {
  if (tl_arena != nullptr) tl_arena->reset();
}

bool Arena::enabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

void Arena::set_enabled(bool on) {
  g_arena_enabled.store(on, std::memory_order_relaxed);
}

Arena::~Arena() {
  for (const Slab& s : slabs_) ::operator delete(s.base);
}

int Arena::class_index(std::size_t cls) {
  return static_cast<int>(std::countr_zero(cls)) -
         static_cast<int>(kMinClassLog2);
}

std::byte* Arena::bump(std::size_t cls) {
  // Walk the retained slab chain; skip tails too small for this class
  // (reclaimed at the next reset).  Every class is a multiple of 16 and
  // slab bases are max-aligned, so offsets stay 16-byte aligned.
  while (cur_slab_ < slabs_.size()) {
    Slab& s = slabs_[cur_slab_];
    if (s.size - cur_off_ >= cls) {
      std::byte* p = s.base + cur_off_;
      cur_off_ += cls;
      return p;
    }
    ++cur_slab_;
    cur_off_ = 0;
  }
  const std::size_t sz = cls > kSlabBytes ? cls : kSlabBytes;
  auto* base = static_cast<std::byte*>(::operator new(sz));
  slabs_.push_back({base, sz});
  slab_bytes_ += sz;
  cur_slab_ = slabs_.size() - 1;
  cur_off_ = cls;
  return base;
}

Arena::Block Arena::allocate(std::size_t n) {
  if (n > kMaxClass) {
    // Oversize: the caller heap-allocates.  Counted so the CI smoke gate
    // can flag configurations whose buffers outgrow the class ladder.
    ++heap_fallbacks_;
    return {};
  }
  std::size_t cls = std::bit_ceil(n);
  if (cls < (std::size_t{1} << kMinClassLog2)) {
    cls = std::size_t{1} << kMinClassLog2;
  }
  const int idx = class_index(cls);
  std::byte* p;
  if (!free_[idx].empty()) {
    p = free_[idx].back();
    free_[idx].pop_back();
    // In-run recycling: this allocation reuses a segment deallocate()
    // returned during the CURRENT generation (e.g. a diff buffer the
    // barrier GC reclaimed), not fresh bump space.
    ++recycled_allocs_;
    recycled_bytes_ += cls;
  } else {
    p = bump(cls);
  }
  bytes_in_use_ += cls;
  return {p, static_cast<std::uint32_t>(cls), gen_};
}

void Arena::deallocate(std::byte* p, std::uint32_t cap, std::uint32_t gen) {
  if (gen != gen_) return;  // freed wholesale by an intervening reset()
  DSM_CHECK(std::has_single_bit(static_cast<std::size_t>(cap)));
  free_[class_index(cap)].push_back(p);
  bytes_in_use_ -= cap;
}

void Arena::reset() {
  for (auto& fl : free_) fl.clear();
  // High-water-mark trim: slabs the finished generation's bump cursor
  // never reached only exist because an earlier, bigger run created them.
  // Return them to the OS (keeping at least one slab so the steady state
  // never re-allocates), and count the released bytes.
  std::size_t used = cur_off_ == 0 ? cur_slab_ : cur_slab_ + 1;
  if (used == 0 && !slabs_.empty()) used = 1;
  while (slabs_.size() > used) {
    const Slab s = slabs_.back();
    slabs_.pop_back();
    ::operator delete(s.base);
    slab_bytes_ -= s.size;
    bytes_trimmed_ += s.size;
  }
  cur_slab_ = 0;
  cur_off_ = 0;
  bytes_in_use_ = 0;
  ++gen_;
  if (gen_ == 0) gen_ = 1;  // 0 is the heap sentinel in Bytes
  ++resets_;
}

void Bytes::regrow(std::size_t need) {
  // Size classes are powers of two, so crossing the capacity doubles it —
  // append loops get geometric growth without an explicit 2x policy.
  std::byte* old = data_;
  Arena* old_arena = arena_;
  const std::uint32_t old_cap = cap_;
  const std::uint32_t old_gen = gen_;

  // Heap allocations round up to a power of two as well, so append loops
  // get geometric growth in both modes.
  const std::size_t heap_cap =
      std::bit_ceil(need < std::size_t{16} ? std::size_t{16} : need);
  if (Arena* a = Arena::current()) {
    if (Arena::Block b = a->allocate(need); b.ptr != nullptr) {
      data_ = b.ptr;
      arena_ = a;
      cap_ = b.cap;
      gen_ = b.gen;
    } else {
      data_ = static_cast<std::byte*>(::operator new(heap_cap));
      arena_ = nullptr;
      cap_ = static_cast<std::uint32_t>(heap_cap);
      gen_ = 0;
    }
  } else {
    data_ = static_cast<std::byte*>(::operator new(heap_cap));
    arena_ = nullptr;
    cap_ = static_cast<std::uint32_t>(heap_cap);
    gen_ = 0;
  }

  if (old != nullptr) {
    if (size_ > 0) std::memcpy(data_, old, size_);
    if (old_arena != nullptr) {
      old_arena->deallocate(old, old_cap, old_gen);
    } else {
      ::operator delete(old);
    }
  }
}

}  // namespace dsm
