#include "sim/fiber.hpp"

#include "common/check.hpp"

// ThreadSanitizer needs to be told about manual stack switches, or it
// associates one OS thread's shadow stack with every fiber and reports
// phantom races between them.  Annotate every swapcontext with the fiber
// interface when (and only when) TSan is compiled in.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DSM_TSAN_FIBERS 1
#endif
#endif
#if !defined(DSM_TSAN_FIBERS) && defined(__SANITIZE_THREAD__)
#define DSM_TSAN_FIBERS 1
#endif

#ifdef DSM_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace dsm::sim {

namespace {
// makecontext() can only pass ints to the entry function portably, so the
// fiber being launched is published here just before the first switch.
// Fibers of one engine never run concurrently (single OS thread per
// engine), but independent engines may run on different threads — e.g. the
// parallel sweep executor — so the slot is thread-local.
thread_local Fiber* g_launching = nullptr;
}  // namespace

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> body)
    : stack_(new std::byte[stack_bytes]), body_(std::move(body)) {
  DSM_CHECK(stack_bytes >= 64 * 1024);
  DSM_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr;  // body must not fall off; trampoline suspends.
  makecontext(&ctx_, &Fiber::trampoline, 0);
#ifdef DSM_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef DSM_TSAN_FIBERS
  // Never the running fiber here: destruction happens from scheduler
  // context (engine teardown), after the final switch out.
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_launching;
  g_launching = nullptr;
  self->body_();
  self->done_ = true;
  // Return control to whoever resumed us last; the fiber is never resumed
  // again after done_ is set.
#ifdef DSM_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_return_, 0);
#endif
  DSM_CHECK(swapcontext(&self->ctx_, self->return_to_) == 0);
  DSM_CHECK_MSG(false, "resumed a finished fiber");
}

void Fiber::resume(ucontext_t& from) {
  DSM_CHECK_MSG(!done_, "resume() on finished fiber");
  return_to_ = &from;
  if (!started_) {
    started_ = true;
    g_launching = this;
  }
#ifdef DSM_TSAN_FIBERS
  // The caller's TSan fiber (the OS thread's implicit one, or a window
  // worker's) is re-entered at the matching suspend/finish switch.
  tsan_return_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  DSM_CHECK(swapcontext(&from, &ctx_) == 0);
}

void Fiber::suspend(ucontext_t& to) {
#ifdef DSM_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
  DSM_CHECK(swapcontext(&ctx_, &to) == 0);
}

}  // namespace dsm::sim
