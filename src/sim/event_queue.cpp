#include "sim/event_queue.hpp"

namespace dsm::sim {

const char* to_string(EventQueueKind k) {
  switch (k) {
    case EventQueueKind::kBinary: return "binary";
    case EventQueueKind::kCalendar: return "calendar";
  }
  return "?";
}

bool event_queue_from_string(const std::string& s, EventQueueKind* out) {
  if (s == "binary") {
    *out = EventQueueKind::kBinary;
    return true;
  }
  if (s == "calendar") {
    *out = EventQueueKind::kCalendar;
    return true;
  }
  return false;
}

}  // namespace dsm::sim
