// Stackful cooperative fibers built on POSIX ucontext.  One fiber per
// simulated node; the scheduler (sim::Engine) switches between them and a
// main context.  Fibers never run concurrently, so no synchronization is
// needed anywhere in the simulator.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace dsm::sim {

class Fiber {
 public:
  /// Creates a fiber that will run `body` when first resumed.  The fiber is
  /// done when `body` returns.
  Fiber(std::size_t stack_bytes, std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the caller (saving into `from`) into this fiber.
  /// Returns when the fiber calls suspend() or its body finishes.
  void resume(ucontext_t& from);

  /// Switches from this fiber back to `to`.  Must be called on the
  /// currently running fiber.
  void suspend(ucontext_t& to);

  bool done() const { return done_; }

 private:
  static void trampoline();

  std::unique_ptr<std::byte[]> stack_;
  ucontext_t ctx_{};
  std::function<void()> body_;
  ucontext_t* return_to_ = nullptr;
  bool done_ = false;
  bool started_ = false;
  // ThreadSanitizer fiber handles (only used when TSan is compiled in;
  // see fiber.cpp).  tsan_return_ tracks the last resumer's TSan fiber.
  void* tsan_fiber_ = nullptr;
  void* tsan_return_ = nullptr;
};

}  // namespace dsm::sim
