// Deterministic discrete-event engine for the simulated cluster.
//
// Execution model (mirrors the paper's platform, Section 3):
//   * Each simulated node has ONE processor and therefore one virtual clock;
//     both application code (a fiber) and protocol handlers (closures posted
//     as events) advance the same clock, so protocol occupancy steals
//     application time exactly as on the real machine.
//   * A single OS thread multiplexes all fibers.  The scheduler always runs
//     the globally minimal-time entity: either the pending event with the
//     smallest timestamp or the ready fiber with the smallest clock (events
//     win ties).  Fibers yield at least every `quantum` of charged virtual
//     time, which models the spacing of control-flow backedges where the
//     platform's polling instrumentation checks for messages.
//   * Everything is deterministic: ties break on (time, sequence) for events
//     and (clock, node id) for fibers, and no wall-clock time is consulted.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/inline_function.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "trace/trace.hpp"

namespace dsm {
class ThreadPool;
}  // namespace dsm

namespace dsm::sim {

/// Intra-run scheduling mode.  kWindow is the conservative parallel-DES
/// mode: events and fiber slices inside one lookahead window are executed
/// in node-disjoint batches (optionally on a thread pool) and committed in
/// the exact serial order, so results are bitwise identical to kOff.
enum class SimPar { kOff, kWindow };

const char* to_string(SimPar p);
/// Parses "off" / "window" (also "0"/"1").  Returns false and leaves *out
/// untouched on an unknown string.
bool sim_par_from_string(const std::string& s, SimPar* out);

class Engine {
 public:
  struct Options {
    int nodes = 16;
    /// Maximum charged virtual time between fiber yields (backedge model).
    SimTime quantum = ns(2000);
    std::size_t stack_bytes = 1u << 20;
    /// Runaway guard: abort with a state dump if this many events execute
    /// (a correct run of our workloads is orders of magnitude below).
    std::uint64_t max_events = 500000000;
    /// Scheduling-queue implementation.  Purely a host-side choice: the
    /// calendar queue pops in exactly the binary heaps' order (pinned by
    /// tests/test_event_queue.cpp), so simulated results are bitwise
    /// identical either way.
    EventQueueKind event_queue = EventQueueKind::kCalendar;
    /// Conservative parallel-DES mode (see run()).  kWindow with a
    /// positive lookahead executes [T, T+lookahead) windows in node-
    /// disjoint batches; lookahead <= 0 degenerates to the serial loop.
    SimPar sim_par = SimPar::kOff;
    /// Window width.  Must not exceed the minimum cross-node interaction
    /// latency (the network's one-way latency floor minus any protocol
    /// self-reschedule slack) — the runtime derives it; see DESIGN.md §5g.
    SimTime lookahead = 0;
    /// Worker pool for window batches (not owned; may be nullptr, in which
    /// case batches run inline on the driving thread — same algorithm,
    /// same results, no concurrency).  The driving thread must not be one
    /// of this pool's workers.
    ThreadPool* pool = nullptr;
  };

  /// Window-occupancy and commit-path statistics for the parallel-DES
  /// mode (all zero under SimPar::kOff).  The counts are deterministic
  /// for a given config; the *_ns fields are host wall-clock and are
  /// never part of bitwise comparisons.
  struct SimParStats {
    std::uint64_t windows = 0;            ///< parallel windows executed
    std::uint64_t window_events = 0;      ///< events run inside windows
    std::uint64_t max_window_events = 0;  ///< busiest window's event count
    std::uint64_t max_window_nodes = 0;   ///< busiest window's node count
    std::uint64_t staged_effects = 0;     ///< staged actions replayed at commit
    std::uint64_t merge_ops = 0;          ///< occurrences merged at commit
    std::uint64_t handoff_ns = 0;         ///< host ns publishing + executing batches
    std::uint64_t commit_ns = 0;          ///< host ns inside commit_window
    bool serial_fallback = false;         ///< request_serial() fired
  };

  explicit Engine(const Options& opt);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int nodes() const { return static_cast<int>(nodes_.size()); }

  /// Registers the fiber body for `node`.  Must be called for every node
  /// before run().  The body runs with current() == node.
  void spawn(NodeId node, std::function<void()> body);

  /// Runs the simulation until every fiber has finished and all remaining
  /// events have drained.  Aborts with a diagnostic dump on deadlock.
  void run();

  // ------------------------------------------------------------------
  // Clock and identity (callable from fibers and handlers).

  /// The node the caller is executing as (fiber body or posted handler).
  NodeId current() const {
    const ExecState& x = ex();
    DSM_CHECK_MSG(x.current != kNoNode, "not executing as any node");
    return x.current;
  }

  SimTime now(NodeId n) const { return nodes_[check_id(n)].clock; }

  /// Advances the current node's clock by `dt` virtual nanoseconds.
  void charge(SimTime dt) {
    DSM_CHECK(dt >= 0);
    Node& n = nodes_[current()];
    n.clock += dt;
    // Every clock advance flows through here or lift_clock(), so charging
    // the active category makes the breakdown sum EXACTLY the node clock.
    if (tracer_ != nullptr) n.cat_ns[static_cast<int>(top_cat(n))] += dt;
  }

  /// Lifts the current node's clock to at least `t` (no-op if already past).
  /// Event handlers call this with the event timestamp before doing work.
  void lift_clock(SimTime t) {
    Node& n = nodes_[current()];
    if (n.clock >= t) return;
    if (tracer_ != nullptr) {
      // A lift is waiting: time the node spent not executing.  A blocked
      // fiber waits in whatever category it blocked under (read fault,
      // lock, barrier...); a finished fiber's time is idle.  Lifts on a
      // Ready/Running node are scheduling no-ops in practice (events at T
      // only run once every ready clock >= T) but attribute consistently.
      const trace::Cat c = n.state == NodeState::Blocked
                               ? n.blocked_cat
                               : n.state == NodeState::Done ? trace::Cat::kIdle
                                                            : top_cat(n);
      n.cat_ns[static_cast<int>(c)] += t - n.clock;
    }
    n.clock = t;
  }

  /// Timestamp of the event currently being executed (handlers only).
  SimTime event_time() const { return ex().event_time; }

  /// Global frontier: max clock over all nodes (useful after run()).
  SimTime max_clock() const;

  // ------------------------------------------------------------------
  // Events (protocol handlers, message deliveries).

  /// Schedules `fn` to execute at virtual time `at`, running as node
  /// `as_node` (its clock is lifted to at least `at` first).  FIFO order is
  /// preserved among events with equal timestamps.  EventFn keeps typical
  /// captures (a whole network message) inline — no allocation per event.
  void post(SimTime at, NodeId as_node, EventFn fn);

  // ------------------------------------------------------------------
  // Fiber-side operations (must be called from a running fiber).

  /// Yields to the scheduler if at least one quantum of virtual time has
  /// been charged since the last yield.  Call this on instrumented memory
  /// accesses; it is the simulated backedge/poll point.
  void maybe_yield() {
    Node& n = nodes_[current()];
    if (n.clock - n.last_yield_clock >= quantum_) yield();
  }

  /// Unconditionally yields; the fiber resumes when it is again the
  /// minimal-time entity.
  void yield();

  /// Suspends the fiber until `pred()` becomes true.  `why` appears in
  /// deadlock dumps.  The predicate is evaluated when notify() is called
  /// for this node (handlers that might satisfy a wait must notify).
  void block(PredFn pred, const char* why);

  /// block() with a compile-time guarantee that the predicate stays in
  /// PredFn's inline buffer.  Every hot fiber-blocking site in the tree
  /// uses this, so a capture added to one fails the build instead of
  /// silently pushing each wait onto the heap path.
  template <typename F>
  void block_inline(F pred, const char* why) {
    static_assert(PredFn::stays_inline<F>(),
                  "blocking predicate must fit PredFn's inline buffer");
    block(PredFn(std::move(pred)), why);
  }

  /// Re-evaluates a blocked node's predicate; wakes the fiber if satisfied.
  void notify(NodeId n);

  bool is_blocked(NodeId n) const {
    return nodes_[check_id(n)].state == NodeState::Blocked;
  }
  bool is_done(NodeId n) const {
    return nodes_[check_id(n)].state == NodeState::Done;
  }
  /// True while the node's fiber is inside the runtime (blocked) or has
  /// finished: in both cases the runtime services messages immediately
  /// (it polls while waiting), regardless of notification mode.
  bool is_parked(NodeId n) const {
    const NodeState s = nodes_[check_id(n)].state;
    return s == NodeState::Blocked || s == NodeState::Done;
  }
  bool in_fiber() const { return ex().in_fiber; }

  // ------------------------------------------------------------------
  // Parallel-DES mode (SimPar::kWindow; see run()).

  /// True while the caller is executing inside a lookahead-window batch
  /// (worker or inline).  Host-side observers that sample cross-node state
  /// (e.g. trace counter tracks at barriers) must skip sampling then.
  bool in_parallel_window() const { return tls_exec_ != nullptr; }

  /// Requests a permanent fall-back to the serial loop from the next
  /// window boundary on.  Callable from any execution context.  Used by
  /// operations that must observe globally consistent cross-node state at
  /// an exact serial point (Runtime::snapshot_if_needed); the switch is
  /// deterministic because the requesting occurrence's window is.
  void request_serial() {
    serial_requested_.store(true, std::memory_order_relaxed);
  }

  /// Registers a global (cross-node) running counter with a high-water
  /// mark.  bump_counter() applies deltas directly under serial execution
  /// and stages them inside windows, replaying in exact serial order at
  /// commit — so path-dependent peaks stay bitwise identical.  Register
  /// before run(); the pointed-at cells must outlive the engine's run.
  int register_counter(std::uint64_t* cur, std::uint64_t* peak);
  void bump_counter(int id, std::int64_t delta);

  SimParStats sim_par_stats() const { return simpar_; }
  SimPar sim_par() const { return par_; }
  SimTime lookahead() const { return lookahead_; }

  /// Post-construction override of the Options sim-par fields.  The
  /// Runtime needs this because the lookahead derives from the protocol
  /// (self_resched_bound / supports_window_par), which is constructed
  /// after the engine.  Must be called before run().
  void configure_sim_par(SimPar par, SimTime lookahead, ThreadPool* pool) {
    par_ = par;
    lookahead_ = lookahead;
    pool_ = pool;
  }

  /// Hook invoked (in scheduler context, executing as the node) right
  /// before a fiber is resumed.  The network layer uses it to service the
  /// node's message inbox at poll points.
  void set_resume_hook(std::function<void(NodeId)> hook) {
    resume_hook_ = std::move(hook);
  }

  /// Hook invoked on the driving thread right after each parallel window
  /// commits — a serial point where no batch is executing.  The runtime
  /// uses it to drain GC-deferred buffer frees whose owning arena lives on
  /// this thread (common/arena threading discipline).  Never invoked by
  /// the serial loop, where such frees happen inline.
  void set_post_commit_hook(std::function<void()> hook) {
    post_commit_hook_ = std::move(hook);
  }

  // ------------------------------------------------------------------
  // Virtual-time attribution (src/trace).  A non-null tracer turns on the
  // per-category accounting in charge()/lift_clock(); in full mode closed
  // scopes are additionally recorded as ring events.  Strictly host-side:
  // no virtual time is ever charged by the tracing machinery itself.

  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Pushes category `c` for the current node; subsequent charge()/lift
  /// time lands there.  Returns the node id to pop with (kNoNode when
  /// tracing is off, making the pair free).  Prefer CatScope.
  NodeId push_cat(trace::Cat c) {
    if (tracer_ == nullptr) return kNoNode;
    const NodeId id = current();
    Node& n = nodes_[id];
    DSM_CHECK_MSG(n.cat_depth < kMaxCatDepth, "category scopes nested too deep");
    n.cat_stack[n.cat_depth++] = CatFrame{n.clock, c};
    return id;
  }

  void pop_cat(NodeId id) {
    if (id == kNoNode) return;
    Node& n = nodes_[id];
    DSM_CHECK(n.cat_depth > 0);
    const CatFrame f = n.cat_stack[--n.cat_depth];
    if (tracer_->full() && n.clock > f.begin) {
      tracer_->record(id, trace::Ev::kScopeSlice, f.begin,
                      static_cast<std::uint64_t>(f.cat), 0, 0,
                      n.clock - f.begin);
    }
  }

  /// RAII category scope.  Handler scopes nest above a suspended fiber's
  /// frames on the same node; handlers never block, so they unwind before
  /// the fiber resumes and the stack stays balanced.
  class CatScope {
   public:
    CatScope(Engine& eng, trace::Cat c) : eng_(eng), node_(eng.push_cat(c)) {}
    ~CatScope() { eng_.pop_cat(node_); }
    CatScope(const CatScope&) = delete;
    CatScope& operator=(const CatScope&) = delete;

   private:
    Engine& eng_;
    NodeId node_;
  };

  /// Snapshot of node `n`'s attribution; sum() == total_ns exactly.
  trace::NodeBreakdown breakdown_of(NodeId n) const {
    trace::NodeBreakdown b;
    const Node& nd = nodes_[check_id(n)];
    for (int c = 0; c < trace::kNumCats; ++c) b.ns[c] = nd.cat_ns[c];
    b.total_ns = nd.clock;
    return b;
  }

  // ------------------------------------------------------------------
  // Introspection.
  std::uint64_t events_executed() const { return events_executed_; }
  std::uint64_t yields() const { return yields_; }
  EventQueueKind event_queue_kind() const { return queue_kind_; }
  /// Pending (not yet executed) events right now — the trace counter track
  /// samples this at barriers.
  std::size_t pending_events() const {
    return queue_kind_ == EventQueueKind::kBinary ? bin_events_.size()
                                                  : cal_events_.size();
  }
  /// Calendar occupancy counters (all-zero under the binary reference).
  CalendarStats event_calendar_stats() const {
    return queue_kind_ == EventQueueKind::kBinary ? CalendarStats{}
                                                  : cal_events_.stats();
  }
  CalendarStats ready_calendar_stats() const {
    return queue_kind_ == EventQueueKind::kBinary ? CalendarStats{}
                                                  : cal_ready_.stats();
  }

 private:
  enum class NodeState { Unspawned, Ready, Running, Blocked, Done };

  /// Deep enough for fiber wait -> handler -> nested send scopes; checked.
  static constexpr int kMaxCatDepth = 8;

  struct CatFrame {
    SimTime begin = 0;  // node clock when the scope opened
    trace::Cat cat = trace::Cat::kCompute;
  };

  struct Node {
    SimTime clock = 0;
    SimTime last_yield_clock = 0;
    NodeState state = NodeState::Unspawned;
    std::unique_ptr<Fiber> fiber;
    PredFn pred;
    const char* why = "";
    std::uint64_t epoch = 0;  // invalidates stale ready-heap entries
    // Attribution state (maintained only while a tracer is installed).
    SimTime cat_ns[trace::kNumCats] = {};
    CatFrame cat_stack[kMaxCatDepth];
    int cat_depth = 0;
    trace::Cat blocked_cat = trace::Cat::kIdle;  // wait category at block()
  };

  /// The category charge() is currently accumulating into: top of the
  /// node's scope stack, or compute when no scope is open.
  static trace::Cat top_cat(const Node& n) {
    return n.cat_depth == 0 ? trace::Cat::kCompute
                            : n.cat_stack[n.cat_depth - 1].cat;
  }

  struct Event {
    SimTime at;
    std::uint64_t seq;
    NodeId node;
    EventFn fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  struct EventTraits {
    static SimTime time(const Event& e) { return e.at; }
    static bool less(const Event& a, const Event& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }
  };

  struct ReadyEntry {
    SimTime clock;
    NodeId node;
    std::uint64_t epoch;
  };
  struct ReadyOrder {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      return a.clock != b.clock ? a.clock > b.clock : a.node > b.node;
    }
  };
  // The calendar needs a FULL order, so epoch breaks the final tie the
  // binary heap leaves unspecified.  Entries equal in (clock, node) are
  // one node's current entry plus stale duplicates; the scheduler drops
  // stale ones wherever they surface, so the residual ordering freedom is
  // unobservable and both backends stay bitwise identical.
  struct ReadyTraits {
    static SimTime time(const ReadyEntry& e) { return e.clock; }
    static bool less(const ReadyEntry& a, const ReadyEntry& b) {
      if (a.clock != b.clock) return a.clock < b.clock;
      if (a.node != b.node) return a.node < b.node;
      return a.epoch < b.epoch;
    }
  };

  NodeId check_id(NodeId n) const {
    DSM_CHECK(n >= 0 && n < static_cast<NodeId>(nodes_.size()));
    return n;
  }

  // ------------------------------------------------------------------
  // Parallel-DES window machinery (see run_windowed / DESIGN.md §5g).

  struct WindowBatch;

  /// Per-execution scheduler state.  The serial loop uses main_exec_; each
  /// window batch carries its own so node-disjoint batches can execute on
  /// separate threads (or interleaved inline) without sharing any of it.
  struct ExecState {
    NodeId current = kNoNode;
    bool in_fiber = false;
    SimTime event_time = 0;
    ucontext_t sched_ctx{};
    WindowBatch* batch = nullptr;  ///< non-null while executing a batch
  };

  /// A self-posted event born inside the current window (at < window end):
  /// executed locally, ordered after all pre-window events at equal `at`
  /// (its final seq is necessarily larger) and among borns by birth order.
  struct BornEv {
    SimTime at;
    std::uint64_t birth;
    EventFn fn;
  };
  struct BornOrder {
    bool operator()(const BornEv& a, const BornEv& b) const {
      return a.at != b.at ? a.at > b.at : a.birth > b.birth;
    }
  };

  /// One staged side effect of a window occurrence, replayed at commit in
  /// exact serial order: either a counter bump (counter >= 0) or a post.
  /// Born self-posts carry no closure (already executed locally) — replay
  /// only assigns their serial seq; other posts move into the real queue.
  struct Action {
    std::int32_t counter = -1;
    bool born = false;
    SimTime at = 0;
    NodeId dst = kNoNode;
    std::int64_t delta = 0;
    EventFn fn;
  };

  enum class OccKind : std::uint8_t { kPreEvent, kBornEvent, kFiber };

  /// One occurrence (event execution or fiber slice) recorded by a node's
  /// window sub-loop, in local execution order.  `time` is the event `at`
  /// or the fiber clock at slice start (== the serial ready-entry clock);
  /// `tag` is the pre-window seq or the born birth index.
  struct Occ {
    SimTime time;
    std::uint64_t tag;
    OccKind kind;
    std::uint32_t action_begin;
    std::uint32_t action_end;
  };

  /// One node's share of a window: its drained pre-window events, the
  /// events born during execution, and the recorded occurrence/action
  /// streams the commit merge replays.  One batch slot per node persists
  /// for the whole run (run_windowed's slot array), so the staging
  /// buffers below keep their capacity across windows instead of being
  /// reallocated per window.
  struct WindowBatch {
    NodeId node = kNoNode;
    std::uint64_t win_gen = 0;  ///< window this slot was last reset for
    std::vector<Event> pre;  ///< pre-window events, already (at, seq) sorted
    std::size_t pre_i = 0;
    /// Min-heap on (at, birth) over `born_heap` (std::push_heap/pop_heap
    /// with BornOrder — same pop order as a priority_queue, but the
    /// backing vector's capacity survives clear()).
    std::vector<BornEv> born_heap;
    std::uint64_t births = 0;
    std::vector<Occ> occs;
    std::vector<Action> actions;
    std::vector<std::uint64_t> born_seqs;  ///< birth index -> serial seq
    std::size_t occ_i = 0;                 ///< commit merge cursor
    std::uint64_t events_run = 0;
    std::uint64_t yields = 0;
    int fibers_done = 0;
    ExecState exec;

    /// Capacity-preserving per-window reset.
    void reset(NodeId id, std::uint64_t gen) {
      node = id;
      win_gen = gen;
      pre.clear();
      pre_i = 0;
      born_heap.clear();
      births = 0;
      occs.clear();
      actions.clear();
      born_seqs.clear();
      occ_i = 0;
      events_run = 0;
      yields = 0;
      fibers_done = 0;
      exec = ExecState{};
    }
  };

  /// Scheduler state for the calling thread: the active window batch's
  /// ExecState on batch-executing threads, else this engine's main one.
  ExecState& ex() { return tls_exec_ != nullptr ? *tls_exec_ : main_exec_; }
  const ExecState& ex() const {
    return tls_exec_ != nullptr ? *tls_exec_ : main_exec_;
  }

  /// Per-window bulk hand-off state shared between the driver and the
  /// persistent pool helpers run_windowed() enlists once per run.  The
  /// driver publishes a window with ONE lock/notify_all (generation bump);
  /// helpers and the driver then pull node-disjoint batches from the
  /// shared cursor.  The driver waits until every helper has acked THIS
  /// generation and no helper is still draining — `acked` (reset per
  /// publication) distinguishes "helpers finished" from "helpers not yet
  /// woken", so a late or spurious wake can never touch a window the
  /// driver already committed (it finds generation == its seen counter
  /// and goes back to waiting).  All cross-thread data (batch slots,
  /// window_end_, node state) is ordered by this handshake under `mu`.
  struct WindowGate {
    std::mutex mu;
    std::condition_variable work_cv;  ///< helpers wait for a generation bump
    std::condition_variable done_cv;  ///< driver waits for acked+drained
    std::uint64_t generation = 0;
    int enlisted = 0;  ///< helpers submitted for the run
    int acked = 0;     ///< helpers that observed the current generation
    int draining = 0;  ///< helpers currently pulling/executing batches
    bool stop = false;
    std::vector<WindowBatch*>* active = nullptr;
    std::atomic<std::size_t> cursor{0};
  };

  void run_serial();
  void run_windowed();
  void run_batch(WindowBatch& b);
  void drain_gate_batches(WindowGate& gate);
  void commit_window(std::vector<WindowBatch*>& active);

  void make_ready(NodeId n);
  void resume_fiber(NodeId n);
  void run_event(Event& e);
  [[noreturn]] void deadlock_dump();

  // Backend-dispatching accessors for the two scheduling queues.  Only the
  // queues selected by queue_kind_ ever hold elements.
  bool events_empty() const {
    return queue_kind_ == EventQueueKind::kBinary ? bin_events_.empty()
                                                  : cal_events_.empty();
  }
  SimTime next_event_at() {
    return queue_kind_ == EventQueueKind::kBinary ? bin_events_.top().at
                                                  : cal_events_.top().at;
  }
  Event take_event() {
    if (queue_kind_ == EventQueueKind::kBinary) {
      // priority_queue::top() is const; moving the closure out is safe
      // because we pop immediately.
      Event e = std::move(const_cast<Event&>(bin_events_.top()));
      bin_events_.pop();
      return e;
    }
    return cal_events_.take();
  }
  bool ready_empty() const {
    return queue_kind_ == EventQueueKind::kBinary ? bin_ready_.empty()
                                                  : cal_ready_.empty();
  }
  const ReadyEntry& ready_top() {
    return queue_kind_ == EventQueueKind::kBinary ? bin_ready_.top()
                                                  : cal_ready_.top();
  }
  void pop_ready() {
    if (queue_kind_ == EventQueueKind::kBinary) {
      bin_ready_.pop();
    } else {
      cal_ready_.pop();
    }
  }
  void push_ready(ReadyEntry e) {
    if (queue_kind_ == EventQueueKind::kBinary) {
      bin_ready_.push(e);
    } else {
      cal_ready_.push(e);
    }
  }

  std::vector<Node> nodes_;
  SimTime quantum_;
  std::size_t stack_bytes_;
  std::uint64_t max_events_;
  EventQueueKind queue_kind_;

  std::priority_queue<Event, std::vector<Event>, EventOrder> bin_events_;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyOrder>
      bin_ready_;
  CalendarQueue<Event, EventTraits> cal_events_;
  CalendarQueue<ReadyEntry, ReadyTraits> cal_ready_;
  std::uint64_t event_seq_ = 0;

  ExecState main_exec_;
  static thread_local ExecState* tls_exec_;
  int live_fibers_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t yields_ = 0;
  std::function<void(NodeId)> resume_hook_;
  std::function<void()> post_commit_hook_;
  trace::Tracer* tracer_ = nullptr;

  // Parallel-DES mode state.  window_end_ is written by the driver before
  // batches are dispatched and only read while they run (the pool's submit
  // handshake orders it); serial_requested_ may be set from any batch.
  SimPar par_ = SimPar::kOff;
  SimTime lookahead_ = 0;
  ThreadPool* pool_ = nullptr;
  SimTime window_end_ = 0;
  std::atomic<bool> serial_requested_{false};
  SimParStats simpar_;
  /// Merge key for commit_window's k-way loser tree: the serial pick
  /// order is lexicographic on (time, is_fiber, seq-or-node).
  struct MergeKey {
    SimTime t;
    std::uint64_t tie;
    std::uint8_t fib;
  };
  // Loser-tree scratch, persisted so steady-state commits allocate nothing.
  std::vector<MergeKey> lt_key_;
  std::vector<std::uint32_t> lt_loser_;
  std::vector<std::uint32_t> lt_win_;
  struct Counter {
    std::uint64_t* cur;
    std::uint64_t* peak;
  };
  std::vector<Counter> counters_;
};

}  // namespace dsm::sim
