// Calendar queue: O(1)-amortized priority queue over virtual time.
//
// The engine's two scheduling queues (pending events, ready fibers) are
// classic discrete-event-simulation workloads: timestamps advance almost
// monotonically and stay clustered near the current frontier.  A calendar
// queue (Brown, CACM 1988) exploits that — a circular array of unsorted
// "day" buckets of width W ns; an element with time t lives in bucket
// (t / W) mod nbuckets, and a cursor walks the days in order, so push and
// pop touch O(1) elements on average.  Two departures from the textbook
// structure keep it exact for our engine:
//
//   * Determinism.  Brown's queue leaves equal-priority order unspecified.
//     Ours selects the within-day minimum under the caller's FULL strict
//     order (time, then tie-break sequence), so the pop sequence is a pure
//     function of the push sequence — provably identical to a binary heap
//     over the same order, which is what the bitwise-identity tests pin.
//   * Past pushes.  notify()/make_ready can re-enqueue a node at a clock
//     earlier than the newest event, so the cursor must rewind when an
//     element lands before it; a monotonic cursor would skip the new
//     minimum.
//
// If a whole year of days turns up empty (times sparser than the calendar
// covers), pop falls back to one direct scan of every element and re-aims
// the cursor; resizes re-pick the day width from the observed time span, so
// the fallback stays rare.  All sizing decisions depend only on the queue's
// contents — never on wall clock or addresses — keeping runs reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dsm::sim {

/// Which implementation backs the engine's scheduling queues.
enum class EventQueueKind : std::uint8_t {
  kBinary = 0,    // std::priority_queue reference (bitwise-identity anchor)
  kCalendar = 1,  // calendar queue (the default)
};

const char* to_string(EventQueueKind k);
/// Parses "binary" / "calendar".  Returns false on an unknown string.
bool event_queue_from_string(const std::string& s, EventQueueKind* out);

/// Occupancy/behaviour counters for one calendar queue (all zero for the
/// binary reference).  Host-side: never part of bitwise result comparisons.
struct CalendarStats {
  std::size_t buckets = 0;           // current day count
  std::size_t max_bucket_depth = 0;  // deepest day ever observed at push
  std::uint64_t resizes = 0;         // width/day-count recalibrations
  std::uint64_t direct_scans = 0;    // empty-year fallback full scans
};

/// Traits contract:
///   static SimTime time(const T&);            // bucket key, >= 0
///   static bool less(const T& a, const T& b); // FULL strict order; the
///       element minimal under less() pops first, and less must refine
///       time() (a.time < b.time implies less(a, b)).
template <typename T, typename Traits>
class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(T v) {
    const std::uint64_t day = day_of(Traits::time(v));
    // A push into the past must rewind the cursor or the new minimum would
    // be skipped until the direct-scan fallback noticed it.
    if (day < cursor_) cursor_ = day;
    std::vector<T>& b = buckets_[day & mask()];
    b.push_back(std::move(v));
    if (b.size() > stats_.max_bucket_depth) stats_.max_bucket_depth = b.size();
    ++size_;
    ++ops_since_rebuild_;
    // The cached minimum survives a push: the new element either loses to
    // it (cache unchanged) or beats it (the new element IS the minimum, and
    // its position is known).  Invalidating here would force a full day
    // rescan on every push/pop cycle — the engine's steady state.
    if (top_valid_ && Traits::less(b.back(), buckets_[top_bucket_][top_index_])) {
      top_bucket_ = day & mask();
      top_index_ = b.size() - 1;
    }
    if (size_ > buckets_.size() * 2) {
      rebuild(buckets_.size() * 2);
    } else if (b.size() > depth_threshold() && ops_since_rebuild_ >= size_) {
      // A day much deeper than the load factor predicts means the width no
      // longer matches the population: timestamps have clustered into a
      // few deep days (a constant-size queue never hits the size-triggered
      // rebuilds, so the width would otherwise stay frozen and pops would
      // degrade to O(n) day scans).  The op-count cooldown keeps the O(n)
      // checks amortized O(1) even when the population is all ties and no
      // width can spread it.
      maybe_recalibrate();
    }
  }

  /// The minimal element under Traits::less.  Valid until the next
  /// push/pop.
  const T& top() {
    locate_top();
    return buckets_[top_bucket_][top_index_];
  }

  /// Removes and returns the minimal element.
  T take() {
    locate_top();
    std::vector<T>& b = buckets_[top_bucket_];
    T out = std::move(b[top_index_]);
    if (top_index_ + 1 != b.size()) b[top_index_] = std::move(b.back());
    b.pop_back();
    --size_;
    ++ops_since_rebuild_;
    top_valid_ = false;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
      rebuild(buckets_.size() / 2);
    }
    return out;
  }

  void pop() { (void)take(); }

  const CalendarStats& stats() const {
    stats_.buckets = buckets_.size();
    return stats_;
  }

  /// Heap bytes held by the bucket array (admission-control accounting).
  std::size_t bytes() const {
    std::size_t n = buckets_.capacity() * sizeof(std::vector<T>);
    for (const std::vector<T>& b : buckets_) n += b.capacity() * sizeof(T);
    return n;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;  // power of two, always
  /// Per-unit-of-load-factor depth a day may reach before it looks
  /// miscalibrated rather than merely unlucky (Poisson tails at load
  /// factor <= 2 stay well under this).
  static constexpr std::size_t kDepthTrigger = 8;

  /// Recalibration threshold for one day's depth, scaled by the load
  /// factor so routine occupancy at size ~ 2x buckets never trips it.
  std::size_t depth_threshold() const {
    return kDepthTrigger * (1 + size_ / buckets_.size());
  }

  std::size_t mask() const { return buckets_.size() - 1; }

  std::uint64_t day_of(SimTime t) const {
    DSM_CHECK(t >= 0);
    return static_cast<std::uint64_t>(t) >> shift_;
  }

  /// Finds the minimal element, caching its position for top()/take().
  /// Invariant on entry: cursor_ <= day_of(t) for every queued element.
  void locate_top() {
    if (top_valid_) return;
    DSM_CHECK_MSG(size_ > 0, "top() on empty calendar queue");
    for (std::size_t step = 0; step < buckets_.size(); ++step, ++cursor_) {
      if (scan_day(buckets_[cursor_ & mask()], cursor_)) return;
    }
    // A whole year of empty days: the population is sparser than the
    // calendar covers.  One direct scan finds the true minimum and re-aims
    // the cursor; resize keeps this rare.
    ++stats_.direct_scans;
    const T* best = nullptr;
    for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
      const std::vector<T>& b = buckets_[bi];
      for (std::size_t i = 0; i < b.size(); ++i) {
        if (best == nullptr || Traits::less(b[i], *best)) {
          best = &b[i];
          top_bucket_ = bi;
          top_index_ = i;
        }
      }
    }
    cursor_ = day_of(Traits::time(*best));
    top_valid_ = true;
  }

  /// Scans one bucket for elements belonging to absolute day `day`; caches
  /// the minimal one (under the full order, so storage order is
  /// irrelevant).  Because less() refines time(), an element of the
  /// earliest populated day is minimal over the whole queue.
  bool scan_day(const std::vector<T>& b, std::uint64_t day) {
    const T* best = nullptr;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (day_of(Traits::time(b[i])) != day) continue;
      if (best == nullptr || Traits::less(b[i], *best)) {
        best = &b[i];
        top_index_ = i;
      }
    }
    if (best == nullptr) return false;
    top_bucket_ = cursor_ & mask();
    top_valid_ = true;
    return true;
  }

  /// log2 day width putting ~1 element per day across `span` ns.
  static unsigned width_shift(std::uint64_t span, std::size_t n) {
    std::uint64_t width = span / (n != 0 ? n : 1);
    if (width == 0) width = 1;
    unsigned s = 0;
    while ((std::uint64_t{1} << s) < width && s < 40) ++s;
    return s;
  }

  /// Day width from the spacing of the k = min(n, nbuckets) EARLIEST
  /// timestamps, not the global span: the cursor only ever walks the
  /// population's leading edge, so a few far-future stragglers must not
  /// widen the days it is scanning (Brown's CACM 1988 queue samples near
  /// the head for the same reason).  Stragglers land whole years ahead and
  /// wrap the ring; scan_day filters them by absolute day.  Mutates
  /// `times` (partial ordering); uses only timestamp values, so the result
  /// is deterministic.
  static unsigned pick_shift(std::vector<SimTime>& times,
                             std::size_t nbuckets) {
    const std::size_t k =
        times.size() < nbuckets ? times.size() : nbuckets;
    if (k == 0) return 0;
    std::nth_element(times.begin(), times.begin() + (k - 1), times.end());
    const SimTime hi = times[k - 1];
    const SimTime lo = *std::min_element(times.begin(), times.begin() + k);
    return width_shift(static_cast<std::uint64_t>(hi - lo), k);
  }

  /// Depth trigger fired: one O(n) pass over the timestamps (no element
  /// moves) decides whether a new width would actually spread the
  /// population; only then is the full rebuild paid for.  Tie-heavy
  /// populations (spacing too tight for any width to help) get the
  /// cooldown reset and nothing else.
  void maybe_recalibrate() {
    std::vector<SimTime> times;
    times.reserve(size_);
    for (const std::vector<T>& b : buckets_) {
      for (const T& e : b) times.push_back(Traits::time(e));
    }
    ops_since_rebuild_ = 0;  // one scan per cooldown period, rebuild or not
    if (pick_shift(times, buckets_.size()) != shift_) {
      rebuild(buckets_.size());
    }
  }

  /// Re-buckets every element into `nbuckets` days, re-picking the day
  /// width from the leading edge's spacing so the days the cursor walks
  /// hold ~1 element each.  Deterministic: inputs are only the queued
  /// elements themselves.
  void rebuild(std::size_t nbuckets) {
    std::vector<T> all;
    all.reserve(size_);
    SimTime lo = 0;
    bool first = true;
    for (std::vector<T>& b : buckets_) {
      for (T& e : b) {
        const SimTime t = Traits::time(e);
        if (first || t < lo) lo = t;
        first = false;
        all.push_back(std::move(e));
      }
      b.clear();  // keeps capacity: day vectors are recycled, not freed
    }
    std::vector<SimTime> times;
    times.reserve(size_);
    for (const T& e : all) times.push_back(Traits::time(e));
    shift_ = pick_shift(times, nbuckets);
    buckets_.resize(nbuckets);
    cursor_ = day_of(lo);
    for (T& e : all) {
      std::vector<T>& b = buckets_[day_of(Traits::time(e)) & mask()];
      b.push_back(std::move(e));
      if (b.size() > stats_.max_bucket_depth) {
        stats_.max_bucket_depth = b.size();
      }
    }
    ++stats_.resizes;
    ops_since_rebuild_ = 0;
    top_valid_ = false;
  }

  std::vector<std::vector<T>> buckets_;
  std::size_t size_ = 0;
  /// Absolute day number (time >> shift_) the search starts from; always
  /// <= the day of every queued element.
  std::uint64_t cursor_ = 0;
  /// log2 of the day width in ns.  The initial 12 (4.096 us) brackets the
  /// platform's fault/lock handling costs; resizes recalibrate.
  unsigned shift_ = 12;
  /// Pushes + pops since the last rebuild: the depth-triggered
  /// recalibration fires at most once per `size_` operations, bounding its
  /// amortized cost.
  std::uint64_t ops_since_rebuild_ = 0;
  // Cached location of the current minimum (valid between locate_top() and
  // the next mutation).
  bool top_valid_ = false;
  std::size_t top_bucket_ = 0;
  std::size_t top_index_ = 0;
  mutable CalendarStats stats_;
};

}  // namespace dsm::sim
