#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"

namespace dsm::sim {

const char* to_string(SimPar p) {
  switch (p) {
    case SimPar::kOff: return "off";
    case SimPar::kWindow: return "window";
  }
  return "?";
}

bool sim_par_from_string(const std::string& s, SimPar* out) {
  if (s == "off" || s == "0") {
    *out = SimPar::kOff;
  } else if (s == "window" || s == "1") {
    *out = SimPar::kWindow;
  } else {
    return false;
  }
  return true;
}

thread_local Engine::ExecState* Engine::tls_exec_ = nullptr;

Engine::Engine(const Options& opt)
    : nodes_(opt.nodes), quantum_(opt.quantum), stack_bytes_(opt.stack_bytes),
      max_events_(opt.max_events), queue_kind_(opt.event_queue),
      par_(opt.sim_par), lookahead_(opt.lookahead), pool_(opt.pool) {
  DSM_CHECK(opt.nodes >= 1 && opt.nodes <= kMaxNodes);
  DSM_CHECK(opt.quantum > 0);
}

Engine::~Engine() = default;

void Engine::spawn(NodeId node, std::function<void()> body) {
  Node& n = nodes_[check_id(node)];
  DSM_CHECK_MSG(n.state == NodeState::Unspawned, "node spawned twice");
  n.fiber = std::make_unique<Fiber>(stack_bytes_, std::move(body));
  n.state = NodeState::Ready;
  ++live_fibers_;
  make_ready(node);
}

void Engine::make_ready(NodeId id) {
  Node& n = nodes_[id];
  n.state = NodeState::Ready;
  // Inside a window batch the local sub-loop reads the node's state and
  // clock directly; one refreshed global entry is pushed at commit.
  if (ex().batch != nullptr) return;
  ++n.epoch;
  push_ready(ReadyEntry{n.clock, id, n.epoch});
}

SimTime Engine::max_clock() const {
  SimTime m = 0;
  for (const Node& n : nodes_) {
    if (n.clock > m) m = n.clock;
  }
  return m;
}

int Engine::register_counter(std::uint64_t* cur, std::uint64_t* peak) {
  counters_.push_back(Counter{cur, peak});
  return static_cast<int>(counters_.size()) - 1;
}

void Engine::bump_counter(int id, std::int64_t delta) {
  DSM_CHECK(id >= 0 && id < static_cast<int>(counters_.size()));
  ExecState& x = ex();
  if (x.batch != nullptr) {
    Action a;
    a.counter = id;
    a.delta = delta;
    x.batch->actions.push_back(std::move(a));
    return;
  }
  const Counter& c = counters_[static_cast<std::size_t>(id)];
  *c.cur += static_cast<std::uint64_t>(delta);
  if (c.peak != nullptr) *c.peak = std::max(*c.peak, *c.cur);
}

void Engine::post(SimTime at, NodeId as_node, EventFn fn) {
  check_id(as_node);
  DSM_CHECK(at >= 0);
  ExecState& x = ex();
  if (x.batch != nullptr) {
    WindowBatch& b = *x.batch;
    if (as_node == b.node && at < window_end_) {
      // Born inside the window: execute locally, assign the serial seq at
      // commit replay (the poster replays before this event surfaces).
      Action a;
      a.born = true;
      a.at = at;
      a.dst = as_node;
      b.actions.push_back(std::move(a));
      b.born_heap.push_back(BornEv{at, b.births++, std::move(fn)});
      std::push_heap(b.born_heap.begin(), b.born_heap.end(), BornOrder{});
      return;
    }
    // The conservative-lookahead invariant: nothing a window occurrence
    // emits may land on another node before the window ends.  A failure
    // here means the lookahead was derived too large for some protocol
    // self-reschedule path (see Protocol::window_slack).
    DSM_CHECK_MSG(as_node == b.node || at >= window_end_,
                  "cross-node post lands inside the lookahead window");
    Action a;
    a.at = at;
    a.dst = as_node;
    a.fn = std::move(fn);
    b.actions.push_back(std::move(a));
    return;
  }
  Event e{at, event_seq_++, as_node, std::move(fn)};
  if (queue_kind_ == EventQueueKind::kBinary) {
    bin_events_.push(std::move(e));
  } else {
    cal_events_.push(std::move(e));
  }
}

void Engine::run_event(Event& e) {
  if (events_executed_ > max_events_) {
    std::fprintf(stderr, "=== runaway guard: %llu events executed ===\n",
                 static_cast<unsigned long long>(events_executed_));
    deadlock_dump();
  }
  Node& n = nodes_[e.node];
  // The node's clock is NOT lifted automatically: a handler that finds
  // nothing to do (e.g. an interrupt check for an already-polled message)
  // must not consume the idle node's virtual time.  Handlers that do real
  // work call lift_clock(event time) first.
  ExecState& x = ex();
  x.event_time = e.at;
  const NodeId saved = x.current;
  x.current = e.node;
  e.fn();
  x.current = saved;
  ++events_executed_;
  // The handler may have advanced the clock of a node sitting in the ready
  // heap; refresh its entry so scheduling order stays time-correct.
  if (n.state == NodeState::Ready) make_ready(e.node);
}

void Engine::resume_fiber(NodeId id) {
  ExecState& x = ex();
  Node& n = nodes_[id];
  n.state = NodeState::Running;
  x.current = id;
  // Poll point: service pending messages before the app continues.
  if (resume_hook_) resume_hook_(id);
  n.last_yield_clock = n.clock;
  x.in_fiber = true;
  n.fiber->resume(x.sched_ctx);
  x.in_fiber = false;
  x.current = kNoNode;
  if (n.fiber->done()) {
    n.state = NodeState::Done;
    if (x.batch != nullptr) {
      ++x.batch->fibers_done;
    } else {
      --live_fibers_;
    }
  }
}

void Engine::run() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    DSM_CHECK_MSG(nodes_[i].state != NodeState::Unspawned,
                  "run() before all nodes spawned");
  }
  if (par_ == SimPar::kWindow && lookahead_ > 0) {
    run_windowed();
    return;
  }
  run_serial();
}

void Engine::run_serial() {
  while (true) {
    // Drop stale ready entries (node no longer Ready or entry superseded).
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state == NodeState::Ready && n.epoch == top.epoch) break;
      pop_ready();
    }

    const bool have_fiber = !ready_empty();
    const bool have_event = !events_empty();
    if (!have_fiber && !have_event) {
      if (live_fibers_ == 0) return;
      deadlock_dump();
    }

    // Events win ties so that messages at time T are visible to a fiber
    // whose clock is also T when it resumes.
    if (have_event && (!have_fiber || next_event_at() <= ready_top().clock)) {
      Event e = take_event();
      run_event(e);
      continue;
    }

    const NodeId id = ready_top().node;
    pop_ready();
    resume_fiber(id);
  }
}

// ---------------------------------------------------------------------
// Conservative parallel-DES windows (DESIGN.md §5g).
//
// Loop invariant: every event with at < T and every fiber slice starting
// below T has already executed, exactly as in the serial schedule.  The
// window [T, W=T+lookahead) is then an exact serial prefix: no occurrence
// inside it can be created or influenced across nodes (the network's
// one-way latency floor keeps all cross-node effects at >= W), so each
// node's share can run independently — the per-node sub-loop in
// run_batch() applies the serial pick rule restricted to one node, which
// reproduces the serial order's restriction to that node.  The commit
// merge then replays the recorded occurrence streams in the full serial
// order, assigning post seqs exactly as the serial engine would.

void Engine::run_windowed() {
  // One persistent batch slot per node: reset() clears but never frees, so
  // the staging buffers (pre/occs/actions/born...) reach a steady-state
  // capacity after a few windows and stop allocating.
  std::vector<WindowBatch> slots(nodes_.size());
  std::vector<WindowBatch*> active;
  std::uint64_t win_gen = 0;

  // Enlist every pool worker ONCE as a persistent helper parked on the
  // gate; each window is then published with a single lock + notify_all
  // instead of per-worker pool submissions.
  WindowGate gate;
  const int helpers = pool_ != nullptr ? pool_->size() : 0;
  gate.enlisted = helpers;
  for (int h = 0; h < helpers; ++h) {
    pool_->submit([this, &gate] {
      std::uint64_t seen = 0;
      std::unique_lock<std::mutex> lk(gate.mu);
      while (true) {
        gate.work_cv.wait(lk,
                          [&] { return gate.stop || gate.generation != seen; });
        if (gate.stop) return;
        seen = gate.generation;
        ++gate.acked;
        ++gate.draining;
        lk.unlock();
        drain_gate_batches(gate);
        lk.lock();
        --gate.draining;
        if (gate.acked == gate.enlisted && gate.draining == 0) {
          gate.done_cv.notify_one();
        }
      }
    });
  }
  // Helpers reference the stack-local gate; they must be parked out before
  // run_windowed's frame can die (both the serial fall-back and the normal
  // return below).
  auto stop_helpers = [&] {
    if (helpers == 0) return;
    {
      std::lock_guard<std::mutex> lk(gate.mu);
      gate.stop = true;
    }
    gate.work_cv.notify_all();
    pool_->wait_idle();
  };

  while (true) {
    if (serial_requested_.load(std::memory_order_relaxed)) {
      // Permanent, deterministic switch at a window boundary; results are
      // unchanged (the windows were a serial prefix).
      simpar_.serial_fallback = true;
      stop_helpers();
      run_serial();
      return;
    }
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state == NodeState::Ready && n.epoch == top.epoch) break;
      pop_ready();
    }

    const bool have_fiber = !ready_empty();
    const bool have_event = !events_empty();
    if (!have_fiber && !have_event) {
      if (live_fibers_ == 0) {
        stop_helpers();
        return;
      }
      deadlock_dump();
    }

    // Frontier T = the time of the next entity the serial loop would run.
    SimTime t = have_event ? next_event_at() : ready_top().clock;
    if (have_fiber && ready_top().clock < t) t = ready_top().clock;
    window_end_ = t + lookahead_;

    // Collect the window: all events below W plus all fibers ready below
    // W, partitioned by node.  Nodes outside the set cannot become ready
    // before W (only their own occurrences or cross-node effects >= W
    // could make them so).
    ++win_gen;
    active.clear();
    auto slot_for = [&](NodeId id) -> WindowBatch& {
      WindowBatch& b = slots[id];
      if (b.win_gen != win_gen) {
        b.reset(id, win_gen);
        active.push_back(&b);
      }
      return b;
    };
    while (!events_empty() && next_event_at() < window_end_) {
      Event e = take_event();
      slot_for(e.node).pre.push_back(std::move(e));  // global pops: sorted
    }
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state != NodeState::Ready || n.epoch != top.epoch) {
        pop_ready();
        continue;
      }
      if (top.clock >= window_end_) break;
      slot_for(top.node);
      pop_ready();
    }

    const auto hand_t0 = std::chrono::steady_clock::now();
    if (helpers > 0 && active.size() > 1) {
      {
        std::lock_guard<std::mutex> lk(gate.mu);
        gate.active = &active;
        gate.cursor.store(0, std::memory_order_relaxed);
        gate.acked = 0;
        ++gate.generation;
      }
      gate.work_cv.notify_all();
      drain_gate_batches(gate);  // the driver pulls batches too
      {
        std::unique_lock<std::mutex> lk(gate.mu);
        gate.done_cv.wait(lk, [&] {
          return gate.acked == gate.enlisted && gate.draining == 0;
        });
      }
    } else {
      for (WindowBatch* b : active) run_batch(*b);
    }
    simpar_.handoff_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hand_t0)
            .count());

    commit_window(active);
    // Serial point: every batch of this window has finished and its staged
    // effects are applied; helpers are parked on the gate.
    if (post_commit_hook_) post_commit_hook_();
  }
}

void Engine::drain_gate_batches(WindowGate& gate) {
  // gate.active was published under gate.mu before the caller got here, so
  // the plain read is ordered; batch claims are unique via the shared
  // atomic cursor.
  std::vector<WindowBatch*>& active = *gate.active;
  for (std::size_t i = gate.cursor.fetch_add(1, std::memory_order_relaxed);
       i < active.size();
       i = gate.cursor.fetch_add(1, std::memory_order_relaxed)) {
    run_batch(*active[i]);
  }
}

void Engine::run_batch(WindowBatch& b) {
  // Per-worker slab arenas are strictly single-threaded and window-emitted
  // buffers (payloads, twins) outlive the batch on other threads, so all
  // allocation inside a window goes to the heap.
  Arena* const prev_arena = Arena::install(nullptr);
  ExecState* const prev_tls = tls_exec_;
  tls_exec_ = &b.exec;
  b.exec.batch = &b;
  Node& n = nodes_[b.node];
  const SimTime wend = window_end_;

  // The serial pick rule restricted to this node: run the next local event
  // if the fiber is not runnable below W or the event's time has come
  // (events win ties); otherwise run a fiber slice; otherwise done.
  while (true) {
    const bool fiber_ok = n.state == NodeState::Ready && n.clock < wend;
    const bool have_pre = b.pre_i < b.pre.size();
    const bool have_born = !b.born_heap.empty();
    int which = 0;  // 1 = pre-window event, 2 = born event
    SimTime ev_at = 0;
    if (have_pre && have_born) {
      // Pre-window events outrank borns at equal time (smaller seq).
      which = b.pre[b.pre_i].at <= b.born_heap.front().at ? 1 : 2;
    } else if (have_pre) {
      which = 1;
    } else if (have_born) {
      which = 2;
    }
    if (which != 0) {
      ev_at = which == 1 ? b.pre[b.pre_i].at : b.born_heap.front().at;
    }

    if (which != 0 && (!fiber_ok || ev_at <= n.clock)) {
      Occ o;
      o.time = ev_at;
      o.action_begin = static_cast<std::uint32_t>(b.actions.size());
      b.exec.event_time = ev_at;
      b.exec.current = b.node;
      if (which == 1) {
        Event& e = b.pre[b.pre_i++];
        o.kind = OccKind::kPreEvent;
        o.tag = e.seq;
        e.fn();
      } else {
        std::pop_heap(b.born_heap.begin(), b.born_heap.end(), BornOrder{});
        BornEv be = std::move(b.born_heap.back());
        b.born_heap.pop_back();
        o.kind = OccKind::kBornEvent;
        o.tag = be.birth;
        be.fn();
      }
      b.exec.current = kNoNode;
      ++b.events_run;
      if (n.state == NodeState::Ready) make_ready(b.node);  // no-op push
      o.action_end = static_cast<std::uint32_t>(b.actions.size());
      b.occs.push_back(o);
      continue;
    }
    if (fiber_ok) {
      Occ o;
      o.kind = OccKind::kFiber;
      o.time = n.clock;  // == the serial ready-entry clock
      o.tag = 0;
      o.action_begin = static_cast<std::uint32_t>(b.actions.size());
      resume_fiber(b.node);
      o.action_end = static_cast<std::uint32_t>(b.actions.size());
      b.occs.push_back(o);
      continue;
    }
    break;
  }

  b.exec.batch = nullptr;
  tls_exec_ = prev_tls;
  Arena::install(prev_arena);
}

void Engine::commit_window(std::vector<WindowBatch*>& active) {
  // Merge-replay: interleave the per-node occurrence streams in the exact
  // serial order.  The serial scheduler's pick rule — min-(at, seq) event
  // vs min-(clock, node) ready fiber, events winning ties — is the
  // lexicographic order on (time, is_fiber, seq-or-node), and the next
  // serial occurrence is always some node's stream head, so a k-way merge
  // by that key reproduces the serial interleaving.  Posts are assigned
  // event_seq_ in replay order: the seq counter advances exactly as it
  // would have serially, and a born event's seq is known before it can
  // surface as a head (its poster is earlier in the same stream).
  //
  // Distinct streams can never hold equal keys (pre-event seqs are
  // globally unique, fiber ties are the node id, and events/fibers differ
  // in the `fib` component), so the order is strict and the merge needs
  // no stability tie-break.
  const auto commit_t0 = std::chrono::steady_clock::now();
  const SimTime kInf = std::numeric_limits<SimTime>::max();
  std::uint64_t staged = 0;

  // Replays one occurrence's staged actions; returns nothing useful.
  auto replay = [&](WindowBatch& b) {
    const Occ& o = b.occs[b.occ_i++];
    staged += o.action_end - o.action_begin;
    for (std::uint32_t ai = o.action_begin; ai < o.action_end; ++ai) {
      Action& a = b.actions[ai];
      if (a.counter >= 0) {
        const Counter& c = counters_[static_cast<std::size_t>(a.counter)];
        *c.cur += static_cast<std::uint64_t>(a.delta);
        if (c.peak != nullptr) *c.peak = std::max(*c.peak, *c.cur);
        continue;
      }
      const std::uint64_t seq = event_seq_++;
      if (a.born) {
        b.born_seqs.push_back(seq);  // birth order == replay order
        continue;
      }
      Event e{a.at, seq, a.dst, std::move(a.fn)};
      if (queue_kind_ == EventQueueKind::kBinary) {
        bin_events_.push(std::move(e));
      } else {
        cal_events_.push(std::move(e));
      }
    }
  };
  // Current head key of batch `bi`, or the +inf sentinel when exhausted.
  auto head_key = [&](std::uint32_t bi) -> MergeKey {
    WindowBatch& b = *active[bi];
    if (b.occ_i >= b.occs.size()) return MergeKey{kInf, 0, 2};
    const Occ& o = b.occs[b.occ_i];
    MergeKey k{o.time, 0, 0};
    switch (o.kind) {
      case OccKind::kPreEvent:
        k.tie = o.tag;
        break;
      case OccKind::kBornEvent:
        DSM_CHECK_MSG(o.tag < b.born_seqs.size(),
                      "born event surfaced before its poster replayed");
        k.tie = b.born_seqs[o.tag];
        break;
      case OccKind::kFiber:
        k.fib = 1;
        k.tie = static_cast<std::uint64_t>(b.node);
        break;
    }
    return k;
  };
  auto key_less = [](const MergeKey& a, const MergeKey& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.fib != b.fib) return a.fib < b.fib;
    return a.tie < b.tie;
  };

  const std::size_t k = active.size();
  if (k == 1) {
    // Single-node window: the stream IS the serial order; replay linearly
    // with no comparator at all.
    WindowBatch& b = *active[0];
    while (b.occ_i < b.occs.size()) replay(b);
  } else if (k > 1) {
    // Loser tree over the k stream heads (padded to a power of two with
    // exhausted sentinels).  Each pop replays one path of lg(k)
    // comparisons against stored losers — no repeated heap sift-up/down
    // and no per-pop push like the old priority_queue merge.
    std::size_t m = 1;
    while (m < k) m <<= 1;
    lt_key_.resize(m);
    lt_loser_.resize(m);
    lt_win_.resize(2 * m);
    for (std::size_t i = 0; i < m; ++i) {
      lt_key_[i] = i < k ? head_key(static_cast<std::uint32_t>(i))
                         : MergeKey{kInf, 0, 2};
      lt_win_[m + i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t p = m - 1; p >= 1; --p) {
      const std::uint32_t a = lt_win_[2 * p];
      const std::uint32_t b = lt_win_[2 * p + 1];
      const std::uint32_t win = key_less(lt_key_[a], lt_key_[b]) ? a : b;
      lt_win_[p] = win;
      lt_loser_[p] = a ^ b ^ win;
    }
    std::uint32_t w = lt_win_[1];
    while (lt_key_[w].t != kInf) {
      replay(*active[w]);
      ++simpar_.merge_ops;
      lt_key_[w] = head_key(w);
      std::uint32_t cur = w;
      for (std::size_t p = (m + w) >> 1; p >= 1; p >>= 1) {
        const std::uint32_t other = lt_loser_[p];
        if (key_less(lt_key_[other], lt_key_[cur])) {
          lt_loser_[p] = cur;
          cur = other;
        }
      }
      w = cur;
    }
  }

  std::uint64_t window_events = 0;
  for (WindowBatch* bp : active) {
    WindowBatch& b = *bp;
    DSM_CHECK(b.occ_i == b.occs.size() && b.pre_i == b.pre.size() &&
              b.born_heap.empty());
    events_executed_ += b.events_run;
    window_events += b.events_run;
    yields_ += b.yields;
    live_fibers_ -= b.fibers_done;
    Node& n = nodes_[b.node];
    if (n.state == NodeState::Ready) {
      ++n.epoch;
      push_ready(ReadyEntry{n.clock, b.node, n.epoch});
    }
  }

  ++simpar_.windows;
  simpar_.window_events += window_events;
  simpar_.staged_effects += staged;
  const std::uint64_t commit_dt = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - commit_t0)
          .count());
  simpar_.commit_ns += commit_dt;
  // Per-window commit tracks (host-side; node 0's ring, stamped with the
  // window frontier).  Only emitted when windows actually execute, so
  // serial-mode traces are untouched.
  if (tracer_ != nullptr && tracer_->full()) {
    const SimTime frontier = window_end_ - lookahead_;
    tracer_->counter(0, trace::Ctr::kParWindowEvents, frontier,
                     window_events);
    tracer_->counter(0, trace::Ctr::kParStagedEffects, frontier, staged);
    tracer_->counter(0, trace::Ctr::kParCommitNs, frontier, commit_dt);
  }
  simpar_.max_window_events =
      std::max(simpar_.max_window_events, window_events);
  simpar_.max_window_nodes = std::max(
      simpar_.max_window_nodes, static_cast<std::uint64_t>(active.size()));
  if (events_executed_ > max_events_) {
    std::fprintf(stderr, "=== runaway guard: %llu events executed ===\n",
                 static_cast<unsigned long long>(events_executed_));
    deadlock_dump();
  }
}

void Engine::yield() {
  ExecState& x = ex();
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(x.in_fiber, "yield() outside fiber");
  if (x.batch != nullptr) {
    ++x.batch->yields;
  } else {
    ++yields_;
  }
  make_ready(id);
  n.fiber->suspend(x.sched_ctx);
}

void Engine::block(PredFn pred, const char* why) {
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(ex().in_fiber, "block() outside fiber");
  n.pred = std::move(pred);
  n.why = why;
  // Lifts while blocked are wait time in the category the fiber blocked
  // under (the fault/lock/barrier scope its caller pushed); a bare block
  // with no open scope counts as idle rather than compute.
  if (tracer_ != nullptr) {
    n.blocked_cat = n.cat_depth == 0 ? trace::Cat::kIdle : top_cat(n);
  }
  while (!n.pred()) {
    n.state = NodeState::Blocked;
    // Re-fetch the exec state each pass: the fiber may be resumed by a
    // different window batch (possibly on a different thread).
    n.fiber->suspend(ex().sched_ctx);
    // Resumed: state was set back to Ready/Running by the scheduler path.
  }
  n.pred = nullptr;
  n.why = "";
}

void Engine::notify(NodeId id) {
  Node& n = nodes_[check_id(id)];
  DSM_CHECK_MSG(ex().batch == nullptr || id == ex().batch->node,
                "cross-node notify inside a lookahead window");
  if (n.state != NodeState::Blocked) return;
  if (n.pred && n.pred()) make_ready(id);
}

void Engine::deadlock_dump() {
  std::fprintf(stderr, "=== simulator deadlock: no ready fibers, no events, "
                       "%d fibers alive ===\n", live_fibers_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const char* st = "?";
    switch (n.state) {
      case NodeState::Unspawned: st = "unspawned"; break;
      case NodeState::Ready: st = "ready"; break;
      case NodeState::Running: st = "running"; break;
      case NodeState::Blocked: st = "BLOCKED"; break;
      case NodeState::Done: st = "done"; break;
    }
    std::fprintf(stderr, "  node %2zu: clock=%lld ns  state=%s  %s\n", i,
                 static_cast<long long>(n.clock), st,
                 n.state == NodeState::Blocked ? n.why : "");
  }
  std::fprintf(stderr,
               "  queues: kind=%s  pending_events=%zu  executed=%llu\n",
               to_string(queue_kind_), pending_events(),
               static_cast<unsigned long long>(events_executed_));
  if (queue_kind_ == EventQueueKind::kCalendar) {
    const CalendarStats ev = cal_events_.stats();
    const CalendarStats rd = cal_ready_.stats();
    std::fprintf(stderr,
                 "  calendar[events]: buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 ev.buckets, ev.max_bucket_depth,
                 static_cast<unsigned long long>(ev.resizes),
                 static_cast<unsigned long long>(ev.direct_scans));
    std::fprintf(stderr,
                 "  calendar[ready]:  buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 rd.buckets, rd.max_bucket_depth,
                 static_cast<unsigned long long>(rd.resizes),
                 static_cast<unsigned long long>(rd.direct_scans));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace dsm::sim
