#include "sim/engine.hpp"

#include <cstdio>

namespace dsm::sim {

Engine::Engine(const Options& opt)
    : nodes_(opt.nodes), quantum_(opt.quantum), stack_bytes_(opt.stack_bytes),
      max_events_(opt.max_events), queue_kind_(opt.event_queue) {
  DSM_CHECK(opt.nodes >= 1 && opt.nodes <= kMaxNodes);
  DSM_CHECK(opt.quantum > 0);
}

Engine::~Engine() = default;

void Engine::spawn(NodeId node, std::function<void()> body) {
  Node& n = nodes_[check_id(node)];
  DSM_CHECK_MSG(n.state == NodeState::Unspawned, "node spawned twice");
  n.fiber = std::make_unique<Fiber>(stack_bytes_, std::move(body));
  n.state = NodeState::Ready;
  ++live_fibers_;
  make_ready(node);
}

void Engine::make_ready(NodeId id) {
  Node& n = nodes_[id];
  n.state = NodeState::Ready;
  ++n.epoch;
  push_ready(ReadyEntry{n.clock, id, n.epoch});
}

SimTime Engine::max_clock() const {
  SimTime m = 0;
  for (const Node& n : nodes_) {
    if (n.clock > m) m = n.clock;
  }
  return m;
}

void Engine::post(SimTime at, NodeId as_node, EventFn fn) {
  check_id(as_node);
  DSM_CHECK(at >= 0);
  Event e{at, event_seq_++, as_node, std::move(fn)};
  if (queue_kind_ == EventQueueKind::kBinary) {
    bin_events_.push(std::move(e));
  } else {
    cal_events_.push(std::move(e));
  }
}

void Engine::run_event(Event& e) {
  if (events_executed_ > max_events_) {
    std::fprintf(stderr, "=== runaway guard: %llu events executed ===\n",
                 static_cast<unsigned long long>(events_executed_));
    deadlock_dump();
  }
  Node& n = nodes_[e.node];
  // The node's clock is NOT lifted automatically: a handler that finds
  // nothing to do (e.g. an interrupt check for an already-polled message)
  // must not consume the idle node's virtual time.  Handlers that do real
  // work call lift_clock(event time) first.
  event_time_ = e.at;
  const NodeId saved = current_;
  current_ = e.node;
  e.fn();
  current_ = saved;
  ++events_executed_;
  // The handler may have advanced the clock of a node sitting in the ready
  // heap; refresh its entry so scheduling order stays time-correct.
  if (n.state == NodeState::Ready) make_ready(e.node);
}

void Engine::resume_fiber(NodeId id) {
  Node& n = nodes_[id];
  n.state = NodeState::Running;
  current_ = id;
  // Poll point: service pending messages before the app continues.
  if (resume_hook_) resume_hook_(id);
  n.last_yield_clock = n.clock;
  in_fiber_ = true;
  n.fiber->resume(main_ctx_);
  in_fiber_ = false;
  current_ = kNoNode;
  if (n.fiber->done()) {
    n.state = NodeState::Done;
    --live_fibers_;
  }
}

void Engine::run() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    DSM_CHECK_MSG(nodes_[i].state != NodeState::Unspawned,
                  "run() before all nodes spawned");
  }
  while (true) {
    // Drop stale ready entries (node no longer Ready or entry superseded).
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state == NodeState::Ready && n.epoch == top.epoch) break;
      pop_ready();
    }

    const bool have_fiber = !ready_empty();
    const bool have_event = !events_empty();
    if (!have_fiber && !have_event) {
      if (live_fibers_ == 0) return;
      deadlock_dump();
    }

    // Events win ties so that messages at time T are visible to a fiber
    // whose clock is also T when it resumes.
    if (have_event && (!have_fiber || next_event_at() <= ready_top().clock)) {
      Event e = take_event();
      run_event(e);
      continue;
    }

    const NodeId id = ready_top().node;
    pop_ready();
    resume_fiber(id);
  }
}

void Engine::yield() {
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(in_fiber_, "yield() outside fiber");
  ++yields_;
  make_ready(id);
  n.fiber->suspend(main_ctx_);
}

void Engine::block(PredFn pred, const char* why) {
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(in_fiber_, "block() outside fiber");
  n.pred = std::move(pred);
  n.why = why;
  // Lifts while blocked are wait time in the category the fiber blocked
  // under (the fault/lock/barrier scope its caller pushed); a bare block
  // with no open scope counts as idle rather than compute.
  if (tracer_ != nullptr) {
    n.blocked_cat = n.cat_depth == 0 ? trace::Cat::kIdle : top_cat(n);
  }
  while (!n.pred()) {
    n.state = NodeState::Blocked;
    n.fiber->suspend(main_ctx_);
    // Resumed: state was set back to Ready/Running by the scheduler path.
  }
  n.pred = nullptr;
  n.why = "";
}

void Engine::notify(NodeId id) {
  Node& n = nodes_[check_id(id)];
  if (n.state != NodeState::Blocked) return;
  if (n.pred && n.pred()) make_ready(id);
}

void Engine::deadlock_dump() {
  std::fprintf(stderr, "=== simulator deadlock: no ready fibers, no events, "
                       "%d fibers alive ===\n", live_fibers_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const char* st = "?";
    switch (n.state) {
      case NodeState::Unspawned: st = "unspawned"; break;
      case NodeState::Ready: st = "ready"; break;
      case NodeState::Running: st = "running"; break;
      case NodeState::Blocked: st = "BLOCKED"; break;
      case NodeState::Done: st = "done"; break;
    }
    std::fprintf(stderr, "  node %2zu: clock=%lld ns  state=%s  %s\n", i,
                 static_cast<long long>(n.clock), st,
                 n.state == NodeState::Blocked ? n.why : "");
  }
  std::fprintf(stderr,
               "  queues: kind=%s  pending_events=%zu  executed=%llu\n",
               to_string(queue_kind_), pending_events(),
               static_cast<unsigned long long>(events_executed_));
  if (queue_kind_ == EventQueueKind::kCalendar) {
    const CalendarStats ev = cal_events_.stats();
    const CalendarStats rd = cal_ready_.stats();
    std::fprintf(stderr,
                 "  calendar[events]: buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 ev.buckets, ev.max_bucket_depth,
                 static_cast<unsigned long long>(ev.resizes),
                 static_cast<unsigned long long>(ev.direct_scans));
    std::fprintf(stderr,
                 "  calendar[ready]:  buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 rd.buckets, rd.max_bucket_depth,
                 static_cast<unsigned long long>(rd.resizes),
                 static_cast<unsigned long long>(rd.direct_scans));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace dsm::sim
