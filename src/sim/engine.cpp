#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"

namespace dsm::sim {

const char* to_string(SimPar p) {
  switch (p) {
    case SimPar::kOff: return "off";
    case SimPar::kWindow: return "window";
  }
  return "?";
}

bool sim_par_from_string(const std::string& s, SimPar* out) {
  if (s == "off" || s == "0") {
    *out = SimPar::kOff;
  } else if (s == "window" || s == "1") {
    *out = SimPar::kWindow;
  } else {
    return false;
  }
  return true;
}

thread_local Engine::ExecState* Engine::tls_exec_ = nullptr;

Engine::Engine(const Options& opt)
    : nodes_(opt.nodes), quantum_(opt.quantum), stack_bytes_(opt.stack_bytes),
      max_events_(opt.max_events), queue_kind_(opt.event_queue),
      par_(opt.sim_par), lookahead_(opt.lookahead), pool_(opt.pool) {
  DSM_CHECK(opt.nodes >= 1 && opt.nodes <= kMaxNodes);
  DSM_CHECK(opt.quantum > 0);
}

Engine::~Engine() = default;

void Engine::spawn(NodeId node, std::function<void()> body) {
  Node& n = nodes_[check_id(node)];
  DSM_CHECK_MSG(n.state == NodeState::Unspawned, "node spawned twice");
  n.fiber = std::make_unique<Fiber>(stack_bytes_, std::move(body));
  n.state = NodeState::Ready;
  ++live_fibers_;
  make_ready(node);
}

void Engine::make_ready(NodeId id) {
  Node& n = nodes_[id];
  n.state = NodeState::Ready;
  // Inside a window batch the local sub-loop reads the node's state and
  // clock directly; one refreshed global entry is pushed at commit.
  if (ex().batch != nullptr) return;
  ++n.epoch;
  push_ready(ReadyEntry{n.clock, id, n.epoch});
}

SimTime Engine::max_clock() const {
  SimTime m = 0;
  for (const Node& n : nodes_) {
    if (n.clock > m) m = n.clock;
  }
  return m;
}

int Engine::register_counter(std::uint64_t* cur, std::uint64_t* peak) {
  counters_.push_back(Counter{cur, peak});
  return static_cast<int>(counters_.size()) - 1;
}

void Engine::bump_counter(int id, std::int64_t delta) {
  DSM_CHECK(id >= 0 && id < static_cast<int>(counters_.size()));
  ExecState& x = ex();
  if (x.batch != nullptr) {
    Action a;
    a.counter = id;
    a.delta = delta;
    x.batch->actions.push_back(std::move(a));
    return;
  }
  const Counter& c = counters_[static_cast<std::size_t>(id)];
  *c.cur += static_cast<std::uint64_t>(delta);
  if (c.peak != nullptr) *c.peak = std::max(*c.peak, *c.cur);
}

void Engine::post(SimTime at, NodeId as_node, EventFn fn) {
  check_id(as_node);
  DSM_CHECK(at >= 0);
  ExecState& x = ex();
  if (x.batch != nullptr) {
    WindowBatch& b = *x.batch;
    if (as_node == b.node && at < window_end_) {
      // Born inside the window: execute locally, assign the serial seq at
      // commit replay (the poster replays before this event surfaces).
      Action a;
      a.born = true;
      a.at = at;
      a.dst = as_node;
      b.actions.push_back(std::move(a));
      b.born.push(BornEv{at, b.births++, std::move(fn)});
      return;
    }
    // The conservative-lookahead invariant: nothing a window occurrence
    // emits may land on another node before the window ends.  A failure
    // here means the lookahead was derived too large for some protocol
    // self-reschedule path (see Protocol::window_slack).
    DSM_CHECK_MSG(as_node == b.node || at >= window_end_,
                  "cross-node post lands inside the lookahead window");
    Action a;
    a.at = at;
    a.dst = as_node;
    a.fn = std::move(fn);
    b.actions.push_back(std::move(a));
    return;
  }
  Event e{at, event_seq_++, as_node, std::move(fn)};
  if (queue_kind_ == EventQueueKind::kBinary) {
    bin_events_.push(std::move(e));
  } else {
    cal_events_.push(std::move(e));
  }
}

void Engine::run_event(Event& e) {
  if (events_executed_ > max_events_) {
    std::fprintf(stderr, "=== runaway guard: %llu events executed ===\n",
                 static_cast<unsigned long long>(events_executed_));
    deadlock_dump();
  }
  Node& n = nodes_[e.node];
  // The node's clock is NOT lifted automatically: a handler that finds
  // nothing to do (e.g. an interrupt check for an already-polled message)
  // must not consume the idle node's virtual time.  Handlers that do real
  // work call lift_clock(event time) first.
  ExecState& x = ex();
  x.event_time = e.at;
  const NodeId saved = x.current;
  x.current = e.node;
  e.fn();
  x.current = saved;
  ++events_executed_;
  // The handler may have advanced the clock of a node sitting in the ready
  // heap; refresh its entry so scheduling order stays time-correct.
  if (n.state == NodeState::Ready) make_ready(e.node);
}

void Engine::resume_fiber(NodeId id) {
  ExecState& x = ex();
  Node& n = nodes_[id];
  n.state = NodeState::Running;
  x.current = id;
  // Poll point: service pending messages before the app continues.
  if (resume_hook_) resume_hook_(id);
  n.last_yield_clock = n.clock;
  x.in_fiber = true;
  n.fiber->resume(x.sched_ctx);
  x.in_fiber = false;
  x.current = kNoNode;
  if (n.fiber->done()) {
    n.state = NodeState::Done;
    if (x.batch != nullptr) {
      ++x.batch->fibers_done;
    } else {
      --live_fibers_;
    }
  }
}

void Engine::run() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    DSM_CHECK_MSG(nodes_[i].state != NodeState::Unspawned,
                  "run() before all nodes spawned");
  }
  if (par_ == SimPar::kWindow && lookahead_ > 0) {
    run_windowed();
    return;
  }
  run_serial();
}

void Engine::run_serial() {
  while (true) {
    // Drop stale ready entries (node no longer Ready or entry superseded).
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state == NodeState::Ready && n.epoch == top.epoch) break;
      pop_ready();
    }

    const bool have_fiber = !ready_empty();
    const bool have_event = !events_empty();
    if (!have_fiber && !have_event) {
      if (live_fibers_ == 0) return;
      deadlock_dump();
    }

    // Events win ties so that messages at time T are visible to a fiber
    // whose clock is also T when it resumes.
    if (have_event && (!have_fiber || next_event_at() <= ready_top().clock)) {
      Event e = take_event();
      run_event(e);
      continue;
    }

    const NodeId id = ready_top().node;
    pop_ready();
    resume_fiber(id);
  }
}

// ---------------------------------------------------------------------
// Conservative parallel-DES windows (DESIGN.md §5g).
//
// Loop invariant: every event with at < T and every fiber slice starting
// below T has already executed, exactly as in the serial schedule.  The
// window [T, W=T+lookahead) is then an exact serial prefix: no occurrence
// inside it can be created or influenced across nodes (the network's
// one-way latency floor keeps all cross-node effects at >= W), so each
// node's share can run independently — the per-node sub-loop in
// run_batch() applies the serial pick rule restricted to one node, which
// reproduces the serial order's restriction to that node.  The commit
// merge then replays the recorded occurrence streams in the full serial
// order, assigning post seqs exactly as the serial engine would.

void Engine::run_windowed() {
  std::vector<WindowBatch> batches;
  std::vector<std::uint32_t> node_slot(nodes_.size(), UINT32_MAX);
  std::vector<NodeId> touched;

  while (true) {
    if (serial_requested_.load(std::memory_order_relaxed)) {
      // Permanent, deterministic switch at a window boundary; results are
      // unchanged (the windows were a serial prefix).
      simpar_.serial_fallback = true;
      run_serial();
      return;
    }
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state == NodeState::Ready && n.epoch == top.epoch) break;
      pop_ready();
    }

    const bool have_fiber = !ready_empty();
    const bool have_event = !events_empty();
    if (!have_fiber && !have_event) {
      if (live_fibers_ == 0) return;
      deadlock_dump();
    }

    // Frontier T = the time of the next entity the serial loop would run.
    SimTime t = have_event ? next_event_at() : ready_top().clock;
    if (have_fiber && ready_top().clock < t) t = ready_top().clock;
    window_end_ = t + lookahead_;

    // Collect the window: all events below W plus all fibers ready below
    // W, partitioned by node.  Nodes outside the set cannot become ready
    // before W (only their own occurrences or cross-node effects >= W
    // could make them so).
    batches.clear();
    auto slot_for = [&](NodeId id) -> WindowBatch& {
      if (node_slot[id] == UINT32_MAX) {
        node_slot[id] = static_cast<std::uint32_t>(batches.size());
        touched.push_back(id);
        batches.emplace_back();
        batches.back().node = id;
      }
      return batches[node_slot[id]];
    };
    while (!events_empty() && next_event_at() < window_end_) {
      Event e = take_event();
      slot_for(e.node).pre.push_back(std::move(e));  // global pops: sorted
    }
    while (!ready_empty()) {
      const ReadyEntry& top = ready_top();
      const Node& n = nodes_[top.node];
      if (n.state != NodeState::Ready || n.epoch != top.epoch) {
        pop_ready();
        continue;
      }
      if (top.clock >= window_end_) break;
      slot_for(top.node);
      pop_ready();
    }

    if (pool_ != nullptr && batches.size() > 1) {
      std::atomic<std::size_t> next{0};
      const std::size_t workers =
          std::min(static_cast<std::size_t>(pool_->size()), batches.size());
      for (std::size_t w = 0; w < workers; ++w) {
        pool_->submit([this, &batches, &next] {
          for (std::size_t i = next.fetch_add(1); i < batches.size();
               i = next.fetch_add(1)) {
            run_batch(batches[i]);
          }
        });
      }
      pool_->wait_idle();
    } else {
      for (WindowBatch& b : batches) run_batch(b);
    }

    commit_window(batches);
    for (NodeId id : touched) node_slot[id] = UINT32_MAX;
    touched.clear();
  }
}

void Engine::run_batch(WindowBatch& b) {
  // Per-worker slab arenas are strictly single-threaded and window-emitted
  // buffers (payloads, twins) outlive the batch on other threads, so all
  // allocation inside a window goes to the heap.
  Arena* const prev_arena = Arena::install(nullptr);
  ExecState* const prev_tls = tls_exec_;
  tls_exec_ = &b.exec;
  b.exec.batch = &b;
  Node& n = nodes_[b.node];
  const SimTime wend = window_end_;

  // The serial pick rule restricted to this node: run the next local event
  // if the fiber is not runnable below W or the event's time has come
  // (events win ties); otherwise run a fiber slice; otherwise done.
  while (true) {
    const bool fiber_ok = n.state == NodeState::Ready && n.clock < wend;
    const bool have_pre = b.pre_i < b.pre.size();
    const bool have_born = !b.born.empty();
    int which = 0;  // 1 = pre-window event, 2 = born event
    SimTime ev_at = 0;
    if (have_pre && have_born) {
      // Pre-window events outrank borns at equal time (smaller seq).
      which = b.pre[b.pre_i].at <= b.born.top().at ? 1 : 2;
    } else if (have_pre) {
      which = 1;
    } else if (have_born) {
      which = 2;
    }
    if (which != 0) ev_at = which == 1 ? b.pre[b.pre_i].at : b.born.top().at;

    if (which != 0 && (!fiber_ok || ev_at <= n.clock)) {
      Occ o;
      o.time = ev_at;
      o.action_begin = static_cast<std::uint32_t>(b.actions.size());
      b.exec.event_time = ev_at;
      b.exec.current = b.node;
      if (which == 1) {
        Event& e = b.pre[b.pre_i++];
        o.kind = OccKind::kPreEvent;
        o.tag = e.seq;
        e.fn();
      } else {
        BornEv be = std::move(const_cast<BornEv&>(b.born.top()));
        b.born.pop();
        o.kind = OccKind::kBornEvent;
        o.tag = be.birth;
        be.fn();
      }
      b.exec.current = kNoNode;
      ++b.events_run;
      if (n.state == NodeState::Ready) make_ready(b.node);  // no-op push
      o.action_end = static_cast<std::uint32_t>(b.actions.size());
      b.occs.push_back(o);
      continue;
    }
    if (fiber_ok) {
      Occ o;
      o.kind = OccKind::kFiber;
      o.time = n.clock;  // == the serial ready-entry clock
      o.tag = 0;
      o.action_begin = static_cast<std::uint32_t>(b.actions.size());
      resume_fiber(b.node);
      o.action_end = static_cast<std::uint32_t>(b.actions.size());
      b.occs.push_back(o);
      continue;
    }
    break;
  }

  b.exec.batch = nullptr;
  tls_exec_ = prev_tls;
  Arena::install(prev_arena);
}

void Engine::commit_window(std::vector<WindowBatch>& batches) {
  // Merge-replay: interleave the per-node occurrence streams in the exact
  // serial order.  The serial scheduler's pick rule — min-(at, seq) event
  // vs min-(clock, node) ready fiber, events winning ties — is the
  // lexicographic order on (time, is_fiber, seq-or-node), and the next
  // serial occurrence is always some node's stream head, so a k-way merge
  // by that key reproduces the serial interleaving.  Posts are assigned
  // event_seq_ in replay order: the seq counter advances exactly as it
  // would have serially, and a born event's seq is known before it can
  // surface as a head (its poster is earlier in the same stream).
  struct Head {
    SimTime t;
    std::uint8_t fib;
    std::uint64_t tie;
    std::uint32_t batch;
  };
  struct HeadOrder {
    bool operator()(const Head& a, const Head& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.fib != b.fib) return a.fib > b.fib;
      return a.tie > b.tie;
    }
  };
  std::priority_queue<Head, std::vector<Head>, HeadOrder> heads;
  auto push_head = [&](std::uint32_t bi) {
    WindowBatch& b = batches[bi];
    if (b.occ_i >= b.occs.size()) return;
    const Occ& o = b.occs[b.occ_i];
    Head h{o.time, 0, 0, bi};
    switch (o.kind) {
      case OccKind::kPreEvent:
        h.tie = o.tag;
        break;
      case OccKind::kBornEvent:
        DSM_CHECK_MSG(o.tag < b.born_seqs.size(),
                      "born event surfaced before its poster replayed");
        h.tie = b.born_seqs[o.tag];
        break;
      case OccKind::kFiber:
        h.fib = 1;
        h.tie = static_cast<std::uint64_t>(b.node);
        break;
    }
    heads.push(h);
  };
  for (std::uint32_t i = 0; i < batches.size(); ++i) push_head(i);

  std::uint64_t window_events = 0;
  while (!heads.empty()) {
    const Head h = heads.top();
    heads.pop();
    WindowBatch& b = batches[h.batch];
    const Occ& o = b.occs[b.occ_i++];
    for (std::uint32_t ai = o.action_begin; ai < o.action_end; ++ai) {
      Action& a = b.actions[ai];
      if (a.counter >= 0) {
        const Counter& c = counters_[static_cast<std::size_t>(a.counter)];
        *c.cur += static_cast<std::uint64_t>(a.delta);
        if (c.peak != nullptr) *c.peak = std::max(*c.peak, *c.cur);
        continue;
      }
      const std::uint64_t seq = event_seq_++;
      if (a.born) {
        b.born_seqs.push_back(seq);  // birth order == replay order
        continue;
      }
      Event e{a.at, seq, a.dst, std::move(a.fn)};
      if (queue_kind_ == EventQueueKind::kBinary) {
        bin_events_.push(std::move(e));
      } else {
        cal_events_.push(std::move(e));
      }
    }
    push_head(h.batch);
  }

  for (WindowBatch& b : batches) {
    DSM_CHECK(b.occ_i == b.occs.size() && b.pre_i == b.pre.size() &&
              b.born.empty());
    events_executed_ += b.events_run;
    window_events += b.events_run;
    yields_ += b.yields;
    live_fibers_ -= b.fibers_done;
    Node& n = nodes_[b.node];
    if (n.state == NodeState::Ready) {
      ++n.epoch;
      push_ready(ReadyEntry{n.clock, b.node, n.epoch});
    }
  }

  ++simpar_.windows;
  simpar_.window_events += window_events;
  // Per-window occupancy track (host-side; node 0's ring, stamped with the
  // window frontier).  Only emitted when windows actually execute, so
  // serial-mode traces are untouched.
  if (tracer_ != nullptr && tracer_->full()) {
    tracer_->counter(0, trace::Ctr::kParWindowEvents,
                     window_end_ - lookahead_, window_events);
  }
  simpar_.max_window_events =
      std::max(simpar_.max_window_events, window_events);
  simpar_.max_window_nodes = std::max(
      simpar_.max_window_nodes, static_cast<std::uint64_t>(batches.size()));
  if (events_executed_ > max_events_) {
    std::fprintf(stderr, "=== runaway guard: %llu events executed ===\n",
                 static_cast<unsigned long long>(events_executed_));
    deadlock_dump();
  }
}

void Engine::yield() {
  ExecState& x = ex();
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(x.in_fiber, "yield() outside fiber");
  if (x.batch != nullptr) {
    ++x.batch->yields;
  } else {
    ++yields_;
  }
  make_ready(id);
  n.fiber->suspend(x.sched_ctx);
}

void Engine::block(PredFn pred, const char* why) {
  const NodeId id = current();
  Node& n = nodes_[id];
  DSM_CHECK_MSG(ex().in_fiber, "block() outside fiber");
  n.pred = std::move(pred);
  n.why = why;
  // Lifts while blocked are wait time in the category the fiber blocked
  // under (the fault/lock/barrier scope its caller pushed); a bare block
  // with no open scope counts as idle rather than compute.
  if (tracer_ != nullptr) {
    n.blocked_cat = n.cat_depth == 0 ? trace::Cat::kIdle : top_cat(n);
  }
  while (!n.pred()) {
    n.state = NodeState::Blocked;
    // Re-fetch the exec state each pass: the fiber may be resumed by a
    // different window batch (possibly on a different thread).
    n.fiber->suspend(ex().sched_ctx);
    // Resumed: state was set back to Ready/Running by the scheduler path.
  }
  n.pred = nullptr;
  n.why = "";
}

void Engine::notify(NodeId id) {
  Node& n = nodes_[check_id(id)];
  DSM_CHECK_MSG(ex().batch == nullptr || id == ex().batch->node,
                "cross-node notify inside a lookahead window");
  if (n.state != NodeState::Blocked) return;
  if (n.pred && n.pred()) make_ready(id);
}

void Engine::deadlock_dump() {
  std::fprintf(stderr, "=== simulator deadlock: no ready fibers, no events, "
                       "%d fibers alive ===\n", live_fibers_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const char* st = "?";
    switch (n.state) {
      case NodeState::Unspawned: st = "unspawned"; break;
      case NodeState::Ready: st = "ready"; break;
      case NodeState::Running: st = "running"; break;
      case NodeState::Blocked: st = "BLOCKED"; break;
      case NodeState::Done: st = "done"; break;
    }
    std::fprintf(stderr, "  node %2zu: clock=%lld ns  state=%s  %s\n", i,
                 static_cast<long long>(n.clock), st,
                 n.state == NodeState::Blocked ? n.why : "");
  }
  std::fprintf(stderr,
               "  queues: kind=%s  pending_events=%zu  executed=%llu\n",
               to_string(queue_kind_), pending_events(),
               static_cast<unsigned long long>(events_executed_));
  if (queue_kind_ == EventQueueKind::kCalendar) {
    const CalendarStats ev = cal_events_.stats();
    const CalendarStats rd = cal_ready_.stats();
    std::fprintf(stderr,
                 "  calendar[events]: buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 ev.buckets, ev.max_bucket_depth,
                 static_cast<unsigned long long>(ev.resizes),
                 static_cast<unsigned long long>(ev.direct_scans));
    std::fprintf(stderr,
                 "  calendar[ready]:  buckets=%zu max_depth=%zu resizes=%llu "
                 "direct_scans=%llu\n",
                 rd.buckets, rd.max_bucket_depth,
                 static_cast<unsigned long long>(rd.resizes),
                 static_cast<unsigned long long>(rd.direct_scans));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace dsm::sim
