// Protocol event tracing and virtual-time execution breakdown.
//
// The paper's central explanatory device (§4/§5) is the per-node execution
// time breakdown — computation vs data wait vs synchronization wait vs
// protocol overhead — not the raw speedup number.  This subsystem makes the
// simulator produce exactly that, in two tiers:
//
//   * breakdown mode: every nanosecond of simulated time each node's clock
//     advances is charged to a category (compute, read wait, write wait,
//     lock wait, barrier wait, protocol handler, message occupancy, idle).
//     Attribution happens inside sim::Engine at its two clock-mutation
//     choke points (charge / lift_clock), under RAII category scopes pushed
//     by the runtime, network and sync layers — so the categories sum to
//     each node's total virtual runtime EXACTLY, by construction.
//   * full mode: additionally records typed protocol events (block fetch,
//     diff make/apply, write notice, invalidation, lock/barrier
//     transitions, message send/recv) with virtual timestamps into a
//     bounded, arena-backed per-node ring buffer, plus counter tracks
//     (diff-archive bytes, arena bytes).  Exportable as Chrome/Perfetto
//     trace-event JSON with flow events linking request -> reply messages.
//
// Tracing is strictly host-side: it never charges virtual time, never
// sends messages, and never branches the simulation — results are bitwise
// identical in every mode (tests/test_trace.cpp pins this).  The ring is
// overwrite-oldest, so a long run costs bounded memory; drops are counted.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"

namespace dsm::trace {

enum class Mode : std::uint8_t {
  kOff = 0,        // no tracer at all (the default)
  kBreakdown = 1,  // category attribution only; cheap enough for sweeps
  kFull = 2,       // attribution + event rings + counter tracks
};

const char* to_string(Mode m);
/// Parses "off" / "breakdown" / "full" (also "0"/"1"/"2").  Returns false
/// and leaves *out untouched on an unknown string.
bool mode_from_string(const std::string& s, Mode* out);
/// DSM_TRACE environment override; `fallback` when unset or unparsable.
Mode mode_from_env(Mode fallback);

/// Virtual-time categories.  kCompute is the implicit bottom of every
/// node's scope stack; the others are entered via sim::Engine::CatScope.
enum class Cat : std::uint8_t {
  kCompute = 0,   // application compute + instrumented access cost
  kReadWait,      // read-miss data wait (fiber inside a read fault)
  kWriteWait,     // write/ownership wait (fiber inside a write fault)
  kLockWait,      // lock acquire/release, incl. the release-side diff flush
  kBarrierWait,   // barrier arrival to release, incl. its release flush
  kHandler,       // protocol handler occupancy (recv dispatch + handler)
  kMsgSend,       // sender-side message occupancy
  kIdle,          // clock lifted while the fiber was already done
};
inline constexpr int kNumCats = 8;

const char* to_string(Cat c);

/// Typed protocol events recorded in full mode.
enum class Ev : std::uint16_t {
  kScopeSlice = 0,  // a closed category scope; arg = Cat, dur = length
  kBlockFetch,      // whole-block data installed; arg = block
  kInvalidate,      // local copy invalidated; arg = block
  kWriteback,       // dirty copy written back (SC); arg = block
  kTwinMake,        // twin created; arg = block
  kDiffMake,        // diff encoded; arg = block, aux = diff bytes
  kDiffApply,       // diff applied; arg = block, aux = diff bytes
  kWriteNotice,     // write notices processed at acquire; aux = count
  kLockGrant,       // this node granted/passed a lock; arg = lock, aux = to
  kLockAcquired,    // this node now holds the lock; arg = lock
  kLockRelease,     // this node released the lock; arg = lock
  kBarrierArrive,   // this node arrived at the barrier
  kBarrierRelease,  // this node left the barrier
  kMsgSend,         // message sent; arg = flow id, aux = payload bytes
  kMsgRecv,         // message serviced; arg = flow id, aux = payload bytes
  kCounter,         // counter sample; extra = Ctr id, arg = value
};

const char* to_string(Ev e);

/// Counter tracks sampled in full mode (kCounter events).
enum class Ctr : std::uint16_t {
  kDiffArchiveBytes = 0,  // MW-LRC distributed diff archive, this node
  kTwinBytes,             // live twin bytes (protocol-wide)
  kArenaBytes,            // bytes_in_use of the worker's arena (0 in heap mode)
  kEventQueueDepth,       // pending events in the engine's event queue
  kBlockTableBytes,       // protocol block-state table footprint (all nodes)
  kParWindowEvents,       // events committed per parallel-DES window
  kParStagedEffects,      // staged actions replayed per parallel-DES commit
  kParCommitNs,           // host ns spent in each parallel-DES commit
  kGcReclaimedBytes,      // cumulative GC-reclaimed archive bytes, this node
};
inline constexpr int kNumCtrs = 9;

const char* to_string(Ctr c);

/// One ring entry.  32 bytes so a node's default ring (32768 events) is
/// exactly 1 MiB of arena memory.
struct Event {
  SimTime t = 0;             // virtual ns (slice start for scopes/messages)
  SimTime dur = 0;           // slice length; 0 for instants
  std::uint64_t arg = 0;     // event-specific (block, lock, flow id, value)
  std::uint32_t aux = 0;     // event-specific (bytes, counts, peer node)
  Ev type = Ev::kScopeSlice;
  std::uint16_t extra = 0;   // event-specific (message type, counter id)
};
static_assert(sizeof(Event) == 32);

/// Snapshot of one node's category attribution.  total_ns is the node's
/// clock at the snapshot; the invariant sum() == total_ns is exact.
struct NodeBreakdown {
  std::array<SimTime, kNumCats> ns{};
  SimTime total_ns = 0;

  SimTime sum() const {
    SimTime s = 0;
    for (SimTime v : ns) s += v;
    return s;
  }
};

struct Breakdown {
  Mode mode = Mode::kOff;
  std::vector<NodeBreakdown> node;

  bool empty() const { return node.empty(); }
  /// Mean fraction of per-node time in category `c` (0 when empty).
  double mean_frac(Cat c) const;
};

/// Bounded per-node event recorder.  Rings are allocated only in full mode
/// (breakdown mode must leave allocator behaviour identical to off, so
/// sweeps can keep it enabled without perturbing arena telemetry).
/// Overwrite-oldest on overflow; dropped events are counted per node.
class Tracer {
 public:
  Tracer(Mode mode, int nodes, std::size_t ring_events);

  Mode mode() const { return mode_; }
  bool full() const { return mode_ == Mode::kFull; }
  int nodes() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const { return cap_; }

  /// Records one event into node `n`'s ring.  Caller gates on full().
  void record(NodeId n, Ev type, SimTime t, std::uint64_t arg,
              std::uint32_t aux = 0, std::uint16_t extra = 0, SimTime dur = 0);

  /// Counter sample; consecutive duplicates of the same value are elided.
  void counter(NodeId n, Ctr c, SimTime t, std::uint64_t value);

  std::size_t size(NodeId n) const;
  std::uint64_t dropped(NodeId n) const;
  /// Oldest-to-newest i-th live event of node n.
  const Event& at(NodeId n, std::size_t i) const;

 private:
  struct Ring {
    Bytes buf;               // cap_ * sizeof(Event), zero-filled once
    std::size_t head = 0;    // index of the oldest live event
    std::size_t count = 0;
    std::uint64_t dropped = 0;
    std::array<std::uint64_t, kNumCtrs> last_ctr{};
    std::array<bool, kNumCtrs> ctr_seen{};
  };

  Event* events(Ring& r) { return reinterpret_cast<Event*>(r.buf.data()); }
  const Event* events(const Ring& r) const {
    return reinterpret_cast<const Event*>(r.buf.data());
  }

  Mode mode_;
  std::size_t cap_ = 0;
  std::vector<Ring> rings_;
};

// ---------------------------------------------------------------------
// Exporters.

/// Chrome/Perfetto trace-event JSON (chrome://tracing, ui.perfetto.dev).
/// One thread track per node; category scopes as complete ("X") slices,
/// protocol events as instants, counters as "C" events, and message
/// send/recv as thin slices joined by flow ("s"/"f") events.  Output is
/// deterministic: same simulation => byte-identical string.
std::string chrome_trace_json(const Tracer& tracer, const Breakdown& bd);

/// Per-node breakdown as CSV: node,total_ns,<one column per category>.
std::string breakdown_csv(const Breakdown& bd);

}  // namespace dsm::trace
