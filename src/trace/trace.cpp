#include "trace/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace dsm::trace {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kBreakdown: return "breakdown";
    case Mode::kFull: return "full";
  }
  return "?";
}

bool mode_from_string(const std::string& s, Mode* out) {
  if (s == "off" || s == "0") {
    *out = Mode::kOff;
  } else if (s == "breakdown" || s == "1") {
    *out = Mode::kBreakdown;
  } else if (s == "full" || s == "2") {
    *out = Mode::kFull;
  } else {
    return false;
  }
  return true;
}

Mode mode_from_env(Mode fallback) {
  const char* e = std::getenv("DSM_TRACE");
  if (e == nullptr) return fallback;
  Mode m = fallback;
  mode_from_string(e, &m);
  return m;
}

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kCompute: return "compute";
    case Cat::kReadWait: return "read-wait";
    case Cat::kWriteWait: return "write-wait";
    case Cat::kLockWait: return "lock-wait";
    case Cat::kBarrierWait: return "barrier-wait";
    case Cat::kHandler: return "handler";
    case Cat::kMsgSend: return "msg-occupancy";
    case Cat::kIdle: return "idle";
  }
  return "?";
}

const char* to_string(Ev e) {
  switch (e) {
    case Ev::kScopeSlice: return "scope";
    case Ev::kBlockFetch: return "block-fetch";
    case Ev::kInvalidate: return "invalidate";
    case Ev::kWriteback: return "writeback";
    case Ev::kTwinMake: return "twin";
    case Ev::kDiffMake: return "diff-make";
    case Ev::kDiffApply: return "diff-apply";
    case Ev::kWriteNotice: return "write-notice";
    case Ev::kLockGrant: return "lock-grant";
    case Ev::kLockAcquired: return "lock-acquired";
    case Ev::kLockRelease: return "lock-release";
    case Ev::kBarrierArrive: return "barrier-arrive";
    case Ev::kBarrierRelease: return "barrier-release";
    case Ev::kMsgSend: return "msg-send";
    case Ev::kMsgRecv: return "msg-recv";
    case Ev::kCounter: return "counter";
  }
  return "?";
}

const char* to_string(Ctr c) {
  switch (c) {
    case Ctr::kDiffArchiveBytes: return "diff-archive-bytes";
    case Ctr::kTwinBytes: return "twin-bytes";
    case Ctr::kArenaBytes: return "arena-bytes";
    case Ctr::kEventQueueDepth: return "event-queue-depth";
    case Ctr::kBlockTableBytes: return "block-table-bytes";
    case Ctr::kParWindowEvents: return "par-window-events";
    case Ctr::kParStagedEffects: return "par-staged-effects";
    case Ctr::kParCommitNs: return "par-commit-ns";
    case Ctr::kGcReclaimedBytes: return "gc-reclaimed-bytes";
  }
  return "?";
}

double Breakdown::mean_frac(Cat c) const {
  if (node.empty()) return 0.0;
  double acc = 0.0;
  int counted = 0;
  for (const NodeBreakdown& b : node) {
    if (b.total_ns <= 0) continue;
    acc += static_cast<double>(b.ns[static_cast<std::size_t>(c)]) /
           static_cast<double>(b.total_ns);
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / counted;
}

Tracer::Tracer(Mode mode, int nodes, std::size_t ring_events)
    : mode_(mode), rings_(static_cast<std::size_t>(nodes)) {
  DSM_CHECK(mode != Mode::kOff);
  DSM_CHECK(nodes >= 1);
  if (mode_ == Mode::kFull) {
    DSM_CHECK(ring_events >= 1);
    cap_ = ring_events;
    for (Ring& r : rings_) r.buf.resize(cap_ * sizeof(Event));
  }
}

void Tracer::record(NodeId n, Ev type, SimTime t, std::uint64_t arg,
                    std::uint32_t aux, std::uint16_t extra, SimTime dur) {
  Ring& r = rings_[static_cast<std::size_t>(n)];
  Event e;
  e.t = t;
  e.dur = dur;
  e.arg = arg;
  e.aux = aux;
  e.type = type;
  e.extra = extra;
  if (r.count == cap_) {
    events(r)[r.head] = e;  // overwrite the oldest
    r.head = (r.head + 1) % cap_;
    ++r.dropped;
  } else {
    events(r)[(r.head + r.count) % cap_] = e;
    ++r.count;
  }
}

void Tracer::counter(NodeId n, Ctr c, SimTime t, std::uint64_t value) {
  Ring& r = rings_[static_cast<std::size_t>(n)];
  const auto i = static_cast<std::size_t>(c);
  if (r.ctr_seen[i] && r.last_ctr[i] == value) return;
  r.ctr_seen[i] = true;
  r.last_ctr[i] = value;
  record(n, Ev::kCounter, t, value, 0, static_cast<std::uint16_t>(c));
}

std::size_t Tracer::size(NodeId n) const {
  return rings_[static_cast<std::size_t>(n)].count;
}

std::uint64_t Tracer::dropped(NodeId n) const {
  return rings_[static_cast<std::size_t>(n)].dropped;
}

const Event& Tracer::at(NodeId n, std::size_t i) const {
  const Ring& r = rings_[static_cast<std::size_t>(n)];
  DSM_CHECK(i < r.count);
  return events(r)[(r.head + i) % cap_];
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON.

namespace {

/// ts/dur in the trace-event format are microseconds; our clocks are ns.
/// Fixed %.3f keeps the conversion exact and the output deterministic.
void append_us(std::string& out, SimTime ns_value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns_value) / 1000.0);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Common prefix of every emitted record: name, phase, pid/tid, timestamp.
void open_record(std::string& out, const char* name, const char* cat,
                 const char* ph, int node, SimTime t) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"cat\":\"";
  out += cat;
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":0,\"tid\":";
  append_u64(out, static_cast<std::uint64_t>(node));
  out += ",\"ts\":";
  append_us(out, t);
}

void emit_event(std::string& out, int node, const Event& e) {
  switch (e.type) {
    case Ev::kScopeSlice: {
      const Cat c = static_cast<Cat>(e.arg);
      open_record(out, to_string(c), "time", "X", node, e.t);
      out += ",\"dur\":";
      append_us(out, e.dur);
      out += "},\n";
      return;
    }
    case Ev::kMsgSend:
    case Ev::kMsgRecv: {
      const bool send = e.type == Ev::kMsgSend;
      // Thin slice for the host occupancy, plus a flow step bound to it so
      // the viewer draws an arrow from the send to the matching service.
      open_record(out, send ? "msg-send" : "msg-recv", "net", "X", node, e.t);
      out += ",\"dur\":";
      append_us(out, e.dur);
      out += ",\"args\":{\"bytes\":";
      append_u64(out, e.aux);
      out += ",\"type\":";
      append_u64(out, e.extra);
      out += "}},\n";
      open_record(out, "msg", "net", send ? "s" : "f", node, e.t);
      if (!send) out += ",\"bp\":\"e\"";
      out += ",\"id\":";
      append_u64(out, e.arg);
      out += "},\n";
      return;
    }
    case Ev::kCounter: {
      // Counter tracks are keyed (pid, name); include the node in the name
      // so every node gets its own track.
      const Ctr c = static_cast<Ctr>(e.extra);
      char name[64];
      std::snprintf(name, sizeof(name), "node%d/%s", node, to_string(c));
      open_record(out, name, "counter", "C", node, e.t);
      out += ",\"args\":{\"bytes\":";
      append_u64(out, e.arg);
      out += "}},\n";
      return;
    }
    default: {
      open_record(out, to_string(e.type), "proto", "i", node, e.t);
      out += ",\"s\":\"t\",\"args\":{\"arg\":";
      append_u64(out, e.arg);
      out += ",\"aux\":";
      append_u64(out, e.aux);
      out += "}},\n";
      return;
    }
  }
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer, const Breakdown& bd) {
  std::string out;
  out.reserve(1u << 20);
  out += "[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"dsm-sim\"}},\n";
  for (int n = 0; n < tracer.nodes(); ++n) {
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    append_u64(out, static_cast<std::uint64_t>(n));
    out += ",\"args\":{\"name\":\"node ";
    append_u64(out, static_cast<std::uint64_t>(n));
    out += "\"}},\n";
  }
  for (int n = 0; n < tracer.nodes(); ++n) {
    for (std::size_t i = 0; i < tracer.size(n); ++i) {
      emit_event(out, n, tracer.at(n, i));
    }
    if (tracer.dropped(n) > 0) {
      open_record(out, "ring-dropped", "trace", "i", n,
                  tracer.size(n) > 0 ? tracer.at(n, 0).t : 0);
      out += ",\"s\":\"t\",\"args\":{\"dropped\":";
      append_u64(out, tracer.dropped(n));
      out += "}},\n";
    }
  }
  // Final summary instants carry the exact per-node breakdown so a trace
  // file is self-contained (no separate CSV needed to read the totals).
  for (std::size_t n = 0; n < bd.node.size(); ++n) {
    const NodeBreakdown& b = bd.node[n];
    open_record(out, "breakdown", "time", "i", static_cast<int>(n),
                b.total_ns);
    out += ",\"s\":\"t\",\"args\":{\"total_ns\":";
    append_u64(out, static_cast<std::uint64_t>(b.total_ns));
    for (int c = 0; c < kNumCats; ++c) {
      out += ",\"";
      out += to_string(static_cast<Cat>(c));
      out += "_ns\":";
      append_u64(out,
                 static_cast<std::uint64_t>(b.ns[static_cast<std::size_t>(c)]));
    }
    out += "}},\n";
  }
  // Trailing comma is legal in the trace-event format, but json.tool is
  // stricter; close the array with a terminator metadata record instead.
  out += "{\"name\":\"trace_done\",\"ph\":\"M\",\"pid\":0,\"args\":{}}\n";
  out += "]\n";
  return out;
}

std::string breakdown_csv(const Breakdown& bd) {
  std::string out = "node,total_ns";
  for (int c = 0; c < kNumCats; ++c) {
    out += ",";
    out += to_string(static_cast<Cat>(c));
    out += "_ns";
  }
  out += "\n";
  for (std::size_t n = 0; n < bd.node.size(); ++n) {
    const NodeBreakdown& b = bd.node[n];
    append_u64(out, n);
    out += ",";
    append_u64(out, static_cast<std::uint64_t>(b.total_ns));
    for (int c = 0; c < kNumCats; ++c) {
      out += ",";
      append_u64(out,
                 static_cast<std::uint64_t>(b.ns[static_cast<std::size_t>(c)]));
    }
    out += "\n";
  }
  return out;
}

}  // namespace dsm::trace
