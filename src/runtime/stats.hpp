// Per-node and aggregated run statistics.  These counters regenerate the
// paper's Tables 3-15 (read/write faults, data traffic) and the Table 2
// classification columns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dsm {

struct NodeStats {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  /// Faults that required protocol messages (the paper's fault tables
  /// count misses, not local permission upgrades).
  std::uint64_t remote_read_faults = 0;
  std::uint64_t remote_write_faults = 0;
  std::uint64_t invalidations = 0;   // local copies invalidated by protocol
  std::uint64_t block_fetches = 0;   // whole-block data transfers received
  std::uint64_t writebacks = 0;      // dirty copies written back (SC)
  std::uint64_t twins = 0;
  std::uint64_t diffs = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t notices_processed = 0;
  /// Dirty-bitmap write tracking (host-side; zero under kTwinScan):
  /// flagged words actually compared against the twin, and reference-scan
  /// bytes the bitmap let the release path skip.
  std::uint64_t bitmap_words_compared = 0;
  std::uint64_t bitmap_scan_bytes_avoided = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t remote_lock_ops = 0; // acquires that needed messages
  std::uint64_t barriers = 0;

  SimTime compute_ns = 0;        // ctx.compute() charges (dilated)
  SimTime read_stall_ns = 0;     // fiber time inside read faults
  SimTime write_stall_ns = 0;    // fiber time inside write faults
  SimTime lock_stall_ns = 0;     // fiber time inside lock()
  SimTime barrier_stall_ns = 0;  // fiber time inside barrier()

  NodeStats& operator+=(const NodeStats& o);
};

struct RunStats {
  std::vector<NodeStats> node;

  /// Network totals (filled in by the runtime after the run).
  std::uint64_t messages = 0;
  std::uint64_t traffic_bytes = 0;   // includes headers
  std::uint64_t payload_bytes = 0;

  /// Virtual time of the measured (parallel) region.
  SimTime parallel_time_ns = 0;

  /// Simulator work counters (host-side throughput accounting, e.g. the
  /// wallclock_sweep bench's events/sec figure).  Deterministic.
  std::uint64_t sim_events = 0;
  std::uint64_t sim_yields = 0;

  /// Fragmentation (paper §5.2.2): bytes of fetched blocks actually
  /// accessed before invalidation, versus whole-block payload fetched.
  /// fragmentation = 1 - used/fetched (only meaningful when fetched > 0).
  std::uint64_t used_block_bytes = 0;
  std::uint64_t fetched_block_bytes = 0;
  double fragmentation() const {
    if (fetched_block_bytes == 0) return 0.0;
    const double used = std::min(static_cast<double>(used_block_bytes),
                                 static_cast<double>(fetched_block_bytes));
    return 1.0 - used / static_cast<double>(fetched_block_bytes);
  }

  /// Memory utilization at the measurement snapshot (paper §7 calls this
  /// out as unexamined): bytes of valid replicated copies beyond one copy
  /// of the data, dynamic protocol metadata, and the peak twin footprint.
  std::uint64_t replicated_bytes = 0;
  std::uint64_t protocol_meta_bytes = 0;
  std::uint64_t peak_twin_bytes = 0;
  /// Host footprint of the dirty-word bitmaps (nodes × shared/32 bytes).
  std::uint64_t peak_bitmap_bytes = 0;
  /// MW-LRC distributed diff archive: bytes held at the snapshot and the
  /// in-run peak (zero for the other protocols).  Deterministic — this is
  /// the usage data the ROADMAP's interval-GC open item asks for.
  std::uint64_t diff_archive_bytes = 0;
  std::uint64_t peak_diff_archive_bytes = 0;
  /// Barrier-frontier GC (--gc=barrier; zero with GC off or for the other
  /// protocols).  Deterministic for a given config, but gc-mode-dependent
  /// by definition — the gc on/off identity gates compare simulated
  /// results and exclude these (like the archive/meta memory fields the
  /// collection exists to shrink).
  std::uint64_t gc_passes = 0;
  std::uint64_t gc_diffs_freed = 0;
  std::uint64_t gc_bytes_reclaimed = 0;
  std::uint64_t gc_notices_pruned = 0;

  /// Writer-sharing summaries (Table 2 classification): computed over
  /// 4096-byte pages and 64-byte fine blocks that saw at least one write.
  int max_page_writers = 0;
  int max_fine_writers = 0;
  /// Fraction of written 64-byte units with exactly one writer — the
  /// paper's single-writer applications sit at ~1.0 (inherent sharing);
  /// boundary effects push it slightly below.
  double single_fine_frac = 1.0;

  /// Allocator telemetry (host-side, like host wall-clock): snapshot of the
  /// calling thread's arena when the run's stats were taken.  Zero when the
  /// run executed in heap mode (--alloc=heap).  NOT deterministic across
  /// alloc modes and never part of bitwise result comparisons.
  std::uint64_t arena_bytes_in_use = 0;
  std::uint64_t arena_slabs = 0;
  std::uint64_t arena_resets = 0;
  /// Allocations the arena declined (larger than the max size class) during
  /// this run; steady-state sweeps should report 0.
  std::uint64_t heap_fallback_allocs = 0;
  /// Cumulative bytes of retained slab memory the arena's high-water-mark
  /// trim returned to the OS at reset() (host-side, like the rest of the
  /// arena telemetry).
  std::uint64_t arena_bytes_trimmed = 0;
  /// In-run arena recycling during this run (host-side): allocations
  /// served from a size-class free list instead of fresh bump space, and
  /// their byte total.  Nonzero under --gc=barrier, proving reclaimed
  /// diff buffers are reused mid-run rather than only at reset().
  std::uint64_t arena_recycled_allocs = 0;
  std::uint64_t arena_recycled_bytes = 0;

  /// Engine event-queue telemetry (host-side): calendar-queue occupancy at
  /// end of run, summed over the event and ready queues.  All zero when the
  /// run used the binary-heap reference backend.  NOT deterministic across
  /// queue backends and never part of bitwise result comparisons.
  std::uint64_t evq_buckets = 0;
  std::uint64_t evq_max_bucket_depth = 0;
  std::uint64_t evq_resizes = 0;
  std::uint64_t evq_direct_scans = 0;

  /// Protocol block-state table telemetry (host-side): flat-table footprint
  /// and occupancy at end of run, summed over nodes.  Backend-dependent
  /// (SoA sparse-set vs unordered_map) and never part of bitwise result
  /// comparisons.
  std::uint64_t soa_table_bytes = 0;
  std::uint64_t soa_slots = 0;
  std::uint64_t soa_epoch_resets = 0;

  /// Parallel-DES window occupancy (host-side, sim::Engine::SimParStats):
  /// all zero under --sim-par=off.  Deterministic for a given config, but
  /// mode-dependent by definition and never part of bitwise result
  /// comparisons (the identity gates compare simulated results only).
  std::uint64_t simpar_windows = 0;
  std::uint64_t simpar_window_events = 0;
  std::uint64_t simpar_max_window_events = 0;
  std::uint64_t simpar_max_window_nodes = 0;
  /// Commit-path cost: staged actions replayed and multi-stream merge pops
  /// (both deterministic for a config), plus host wall-clock ns spent in
  /// window hand-off and commit (NOT deterministic — timing telemetry).
  std::uint64_t simpar_staged_effects = 0;
  std::uint64_t simpar_merge_ops = 0;
  std::uint64_t simpar_handoff_ns = 0;
  std::uint64_t simpar_commit_ns = 0;
  bool simpar_serial_fallback = false;
  /// Mean events committed per window (window occupancy; the wallclock
  /// bench gates on this staying >= 2 at 256 nodes).
  double simpar_events_per_window() const {
    return simpar_windows == 0 ? 0.0
                               : static_cast<double>(simpar_window_events) /
                                     static_cast<double>(simpar_windows);
  }

  NodeStats total() const;
  /// Mean over nodes, as the paper's per-node fault tables report.
  double per_node(std::uint64_t NodeStats::* field) const;
};

}  // namespace dsm
