// The DSM runtime: owns the simulated cluster (engine, network, memory,
// protocol, synchronization managers) and runs one application on it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/address_space.hpp"
#include "mem/home_table.hpp"
#include "net/network.hpp"
#include "proto/protocol.hpp"
#include "runtime/config.hpp"
#include "runtime/context.hpp"
#include "runtime/stats.hpp"
#include "sim/engine.hpp"
#include "sync/barrier_manager.hpp"
#include "sync/lock_manager.hpp"
#include "trace/trace.hpp"

namespace dsm {

class ThreadPool;

/// Host-side setup interface: allocate shared memory and write the initial
/// contents into the backing image (the pre-parallel state, conceptually
/// resident at the blocks' static homes).  Zero simulated cost, exactly as
/// the paper excludes initialization from its measurements.
class SetupCtx {
 public:
  explicit SetupCtx(mem::AddressSpace& space, const DsmConfig& cfg)
      : space_(space), cfg_(cfg) {}

  GAddr alloc(std::size_t bytes, std::size_t align = 64) {
    return space_.alloc(bytes, align);
  }
  /// Aligns the next allocation to a coherence-block boundary.
  void align_to_block() { space_.align_to_block(); }

  template <typename T>
  void write(GAddr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(space_.backing(a), &v, sizeof(T));
  }
  template <typename T>
  T read(GAddr a) const {
    T v;
    std::memcpy(&v, const_cast<mem::AddressSpace&>(space_).backing(a),
                sizeof(T));
    return v;
  }

  int nodes() const { return cfg_.nodes; }
  std::size_t granularity() const { return cfg_.granularity; }
  std::uint64_t seed() const { return cfg_.seed; }

 private:
  mem::AddressSpace& space_;
  const DsmConfig& cfg_;
};

/// Latency digest of a service-style run, merged over the per-node
/// histograms in node order.  Every field derives from virtual time and
/// integer counters only, so it is bitwise identical across --jobs,
/// --sim-par, --alloc and --event-queue modes (the identity gates compare
/// it field-for-field).  Host-side: kept out of RunStats.
struct LatencySummary {
  std::uint64_t requests = 0;
  SimTime p50_ns = 0;
  SimTime p99_ns = 0;
  SimTime p999_ns = 0;
  SimTime max_ns = 0;
  /// FNV fingerprint of the merged histogram (per-bucket exact).
  std::uint64_t checksum = 0;
  /// Open-loop arrival rate the generator offered (requests/s of virtual
  /// time, all nodes) vs the completion rate actually achieved.
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
};

/// An application: setup (host-side) + one fiber body per node + optional
/// post-run verification against a sequential reference.
class App {
 public:
  virtual ~App() = default;
  virtual std::string name() const = 0;
  virtual void setup(SetupCtx& s) = 0;
  virtual void node_main(Context& ctx) = 0;
  /// Called after run(); gathered results were stored by node_main.
  /// Returns an empty string on success, a diagnostic otherwise.
  virtual std::string verify() { return {}; }
  /// Service-style apps return their request-latency digest (valid after
  /// verify()); batch apps return nullptr.
  virtual const LatencySummary* latency() const { return nullptr; }
};

struct RunResult {
  RunStats stats;
  /// Virtual time of the measured region (start of parallel phase to the
  /// stop_timer barrier; whole run if stop_timer was never called).
  SimTime parallel_time = 0;
  /// Virtual time until every fiber finished (includes result gathering).
  SimTime total_time = 0;
  /// Per-node execution-time breakdown at the measurement snapshot; empty
  /// when the run traced with --trace=off.  Kept out of RunStats so the
  /// "RunStats bitwise identical across trace modes" invariant is literal.
  trace::Breakdown breakdown;
};

/// Single-use: construct with a config, call run() once.
class Runtime {
 public:
  explicit Runtime(const DsmConfig& cfg);
  ~Runtime();

  RunResult run(App& app);

  const DsmConfig& config() const { return cfg_; }
  mem::AddressSpace& space() { return *space_; }
  /// Non-null while cfg.trace_mode != off; export traces (full mode) while
  /// the Runtime is still alive — the rings are arena-backed.
  const trace::Tracer* tracer() const { return tracer_.get(); }

 private:
  friend class Context;

  void dispatch(net::Message& m);
  void snapshot_if_needed();

  DsmConfig cfg_;
  std::unique_ptr<trace::Tracer> tracer_;
  sim::Engine eng_;
  net::Network net_;
  std::unique_ptr<mem::AddressSpace> space_;
  std::unique_ptr<mem::HomeTable> homes_;
  std::unique_ptr<mem::DirtyBitmap> wbits_;
  std::unique_ptr<proto::Protocol> proto_;
  std::vector<NodeStats> stats_;
  std::unique_ptr<sync::LockManager> locks_;
  std::unique_ptr<sync::BarrierManager> barrier_;
  std::vector<Context> ctx_;
  /// Cross-node writer masks (Table-2 sharing metrics).  Atomic because the
  /// store fast path of concurrently executing window batches ORs into
  /// shared words; plain monotonic ORs, so relaxed ordering suffices.
  std::unique_ptr<std::atomic<std::uint64_t>[]> page_writers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> fine_writers_;
  std::size_t page_writer_words_ = 0;
  std::size_t fine_writer_words_ = 0;
  /// Worker pool for parallel-DES window batches; created only when the
  /// run is windowed, multi-threaded, and not nested inside a sweep pool.
  std::unique_ptr<ThreadPool> simpar_pool_;

  // stop_timer machinery
  bool snapped_ = false;
  RunStats snapshot_;
  trace::Breakdown breakdown_;
  SimTime measured_end_ = kNoTime;
  /// Arena heap-fallback and recycle counters when this Runtime was
  /// constructed, so the reported figures are per-run even though the
  /// worker's arena persists across runs.
  std::uint64_t arena_fallbacks_at_start_ = 0;
  std::uint64_t arena_recycled_allocs_at_start_ = 0;
  std::uint64_t arena_recycled_bytes_at_start_ = 0;
};

/// Factory for the three protocols.
std::unique_ptr<proto::Protocol> make_protocol(ProtocolKind k,
                                               const proto::ProtoEnv& env);

}  // namespace dsm
