#include "runtime/runtime.hpp"

#include <algorithm>
#include <bit>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "proto/hlrc_protocol.hpp"
#include "proto/msg_types.hpp"
#include "proto/sc_protocol.hpp"
#include "proto/swlrc_protocol.hpp"
#include "proto/tmlrc_protocol.hpp"

namespace dsm {

const char* to_string(ProtocolKind p) {
  switch (p) {
    case ProtocolKind::kSC: return "SC";
    case ProtocolKind::kSWLRC: return "SW-LRC";
    case ProtocolKind::kHLRC: return "HLRC";
    case ProtocolKind::kMWLRC: return "MW-LRC";
  }
  return "?";
}

const char* to_string(WriteTracking w) {
  switch (w) {
    case WriteTracking::kTwinScan: return "twin-scan";
    case WriteTracking::kTwinBitmap: return "twin-bitmap";
    case WriteTracking::kBitmapOnly: return "bitmap-only";
  }
  return "?";
}

const char* to_string(SwLrcVersionState s) {
  switch (s) {
    case SwLrcVersionState::kSharded: return "sharded";
    case SwLrcVersionState::kFlat: return "flat";
  }
  return "?";
}

const char* to_string(GcMode g) {
  switch (g) {
    case GcMode::kOff: return "off";
    case GcMode::kBarrier: return "barrier";
  }
  return "?";
}

std::unique_ptr<proto::Protocol> make_protocol(ProtocolKind k,
                                               const proto::ProtoEnv& env) {
  switch (k) {
    case ProtocolKind::kSC:
      return std::make_unique<proto::ScProtocol>(env);
    case ProtocolKind::kSWLRC:
      return std::make_unique<proto::SwLrcProtocol>(env);
    case ProtocolKind::kHLRC:
      return std::make_unique<proto::HlrcProtocol>(env);
    case ProtocolKind::kMWLRC:
      return std::make_unique<proto::TmLrcProtocol>(env);
  }
  DSM_CHECK_MSG(false, "unknown protocol kind");
}

Runtime::Runtime(const DsmConfig& cfg)
    : cfg_(cfg),
      eng_(sim::Engine::Options{
          cfg.nodes, cfg.quantum, cfg.stack_bytes,
          cfg.max_events != 0 ? cfg.max_events : derived_max_events(cfg),
          cfg.event_queue}),
      net_(eng_, cfg.net, cfg.notify) {
  if (cfg.trace_mode != trace::Mode::kOff) {
    tracer_ = std::make_unique<trace::Tracer>(cfg.trace_mode, cfg.nodes,
                                              cfg.trace_ring_events);
    eng_.set_tracer(tracer_.get());
    net_.set_tracer(tracer_.get());
  }
  space_ = std::make_unique<mem::AddressSpace>(cfg.nodes, cfg.shared_bytes,
                                               cfg.granularity);
  homes_ = std::make_unique<mem::HomeTable>(cfg.nodes, space_->num_blocks());
  wbits_ = std::make_unique<mem::DirtyBitmap>(cfg.nodes, space_->size(),
                                              space_->granularity());
  stats_.resize(static_cast<std::size_t>(cfg.nodes));
  page_writer_words_ = space_->size() / 4096 + 1;
  fine_writer_words_ = space_->size() / 64 + 1;
  page_writers_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(page_writer_words_);
  fine_writers_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(fine_writer_words_);
  for (std::size_t i = 0; i < page_writer_words_; ++i) page_writers_[i] = 0;
  for (std::size_t i = 0; i < fine_writer_words_; ++i) fine_writers_[i] = 0;

  proto::ProtoEnv env;
  env.eng = &eng_;
  env.config = &cfg_;
  env.net = &net_;
  env.space = space_.get();
  env.homes = homes_.get();
  env.costs = &cfg_.costs;
  env.stats = &stats_;
  env.wbits = wbits_.get();
  env.tracer = tracer_.get();
  proto_ = make_protocol(cfg.protocol, env);

  locks_ = std::make_unique<sync::LockManager>(eng_, net_, *proto_, cfg_.costs,
                                               stats_, tracer_.get());
  barrier_ = std::make_unique<sync::BarrierManager>(
      eng_, net_, *proto_, cfg_.costs, stats_, tracer_.get());
  net_.set_handler([this](net::Message& m) { dispatch(m); });

  // Parallel-DES wiring (DESIGN.md §5g).  Configured after the protocol
  // exists because the window width derives from it: lookahead = the
  // network's one-way latency floor minus the protocol's self-reschedule
  // slack (the closest to "now" a handler may re-post itself without
  // lifting the clock, which bounds how stale a send timestamp can be).
  // The only remaining opt-out is SW-LRC's flat version-label reference
  // (supports_window_par() documents why).
  if (cfg.sim_par == sim::SimPar::kWindow && proto_->supports_window_par()) {
    const SimTime la = cfg.net.oneway_fixed - proto_->self_resched_bound();
    if (la > 0) {
      int workers = cfg.sim_par_workers;
      if (workers == 0) {
        // Auto: never nest a per-run pool inside a sweep worker — the
        // sweep already saturates the machine with whole runs.
        workers =
            ThreadPool::on_any_worker() ? 1 : ThreadPool::hardware_threads();
      }
      if (workers > 1) {
        simpar_pool_ = std::make_unique<ThreadPool>(workers);
      }
      eng_.configure_sim_par(sim::SimPar::kWindow, la, simpar_pool_.get());
    }
  }

  if (const Arena* a = Arena::current()) {
    arena_fallbacks_at_start_ = a->heap_fallbacks();
    arena_recycled_allocs_at_start_ = a->recycled_allocs();
    arena_recycled_bytes_at_start_ = a->recycled_bytes();
  }

  // Barrier GC under --sim-par=window parks arena-backed buffers it frees
  // inside a window (the arena is single-threaded and lives here, on the
  // driving thread); release them at each window-commit serial point.
  if (cfg.gc != GcMode::kOff) {
    eng_.set_post_commit_hook([this] { proto_->gc_drain_deferred(); });
  }

  ctx_.resize(static_cast<std::size_t>(cfg.nodes));
  for (int n = 0; n < cfg.nodes; ++n) {
    Context& c = ctx_[static_cast<std::size_t>(n)];
    c.rt_ = this;
    c.id_ = n;
    c.nnodes_ = cfg.nodes;
    c.lazy_ = proto_->lazy();
    c.shift_ = space_->block_shift();
    c.gran_ = space_->granularity();
    c.base_ = space_->local(n, 0);
    c.acc_ = space_->access_row(n);
    c.page_writers_ = page_writers_.get();
    c.fine_writers_ = fine_writers_.get();
    c.touched_ = const_cast<std::uint64_t*>(
        space_->touched_row(n));
    c.wbits_ = wbits_->row(n);
    c.line_shift_ = space_->line_shift();
    c.dilation_ =
        cfg.notify == net::NotifyMode::kPolling ? cfg.poll_dilation : 1.0;
    c.access_cost_ = static_cast<SimTime>(
        static_cast<double>(cfg.costs.mem_access) * c.dilation_);
    c.stats_ = &stats_[static_cast<std::size_t>(n)];
    c.rng_.reseed(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (n + 1)));
  }

  // Pre-size the snapshot buffers: snapshot_if_needed() then copies into
  // existing capacity instead of allocating per-node vectors at the
  // measurement instant (which sat on the critical path at 1024 nodes).
  snapshot_.node.resize(static_cast<std::size_t>(cfg.nodes));
  if (tracer_ != nullptr) {
    breakdown_.node.resize(static_cast<std::size_t>(cfg.nodes));
  }
}

Runtime::~Runtime() = default;

void Runtime::dispatch(net::Message& m) {
  if (m.type >= proto::kBarrierArrive) {
    barrier_->handle(m);
  } else if (m.type >= proto::kLockReq) {
    locks_->handle(m);
  } else {
    proto_->handle(m);
  }
}

void Runtime::snapshot_if_needed() {
  if (snapped_) return;
  snapped_ = true;
  std::copy(stats_.begin(), stats_.end(), snapshot_.node.begin());
  const net::TrafficStats t = net_.total_traffic();
  snapshot_.messages = t.messages_sent;
  snapshot_.traffic_bytes = t.bytes_sent;
  snapshot_.payload_bytes = t.payload_bytes;
  for (std::size_t i = 0; i < page_writer_words_; ++i) {
    const std::uint64_t mask =
        page_writers_[i].load(std::memory_order_relaxed);
    snapshot_.max_page_writers =
        std::max(snapshot_.max_page_writers, std::popcount(mask));
  }
  std::uint64_t written = 0, single = 0;
  for (std::size_t i = 0; i < fine_writer_words_; ++i) {
    const std::uint64_t mask =
        fine_writers_[i].load(std::memory_order_relaxed);
    const int w = std::popcount(mask);
    if (w > 0) {
      ++written;
      single += w == 1;
      snapshot_.max_fine_writers = std::max(snapshot_.max_fine_writers, w);
    }
  }
  space_->flush_all_touched();
  std::uint64_t used = 0, fetched = 0;
  for (int n = 0; n < cfg_.nodes; ++n) {
    used += space_->used_bytes(n);
    fetched += stats_[static_cast<std::size_t>(n)].block_fetches *
               space_->granularity();
  }
  snapshot_.used_block_bytes = used;
  snapshot_.fetched_block_bytes = fetched;
  // Incremental valid-copy counters (AddressSpace::set_access) replace the
  // former nodes x blocks tag scan here.
  std::uint64_t copies = 0;
  for (int n = 0; n < cfg_.nodes; ++n) copies += space_->valid_copies(n);
  snapshot_.replicated_bytes = copies * space_->granularity();
  snapshot_.protocol_meta_bytes = proto_->protocol_memory_bytes();
  snapshot_.peak_twin_bytes = proto_->peak_twin_bytes();
  snapshot_.peak_bitmap_bytes = wbits_->bytes();
  snapshot_.diff_archive_bytes = proto_->diff_archive_bytes();
  snapshot_.peak_diff_archive_bytes = proto_->peak_diff_archive_bytes();
  if (tracer_ != nullptr) {
    // The breakdown snapshot is taken at the same instant as the stats:
    // each node's categories sum exactly to its clock right now.
    breakdown_.mode = tracer_->mode();
    breakdown_.node.resize(static_cast<std::size_t>(cfg_.nodes));
    for (int n = 0; n < cfg_.nodes; ++n) {
      breakdown_.node[static_cast<std::size_t>(n)] = eng_.breakdown_of(n);
    }
  }
  snapshot_.single_fine_frac =
      written == 0 ? 1.0
                   : static_cast<double>(single) / static_cast<double>(written);
  measured_end_ = eng_.max_clock();
}

RunResult Runtime::run(App& app) {
  SetupCtx setup(*space_, cfg_);
  app.setup(setup);
  for (int n = 0; n < cfg_.nodes; ++n) {
    Context* c = &ctx_[static_cast<std::size_t>(n)];
    eng_.spawn(n, [c, &app] { app.node_main(*c); });
  }
  eng_.run();
  snapshot_if_needed();

  RunResult r;
  r.stats = std::move(snapshot_);
  r.stats.parallel_time_ns = measured_end_;
  r.stats.sim_events = eng_.events_executed();
  r.stats.sim_yields = eng_.yields();
  // Host-side allocator telemetry; deliberately taken at the end of the
  // run (not at stop_timer) so it covers the whole simulation.
  if (const Arena* a = Arena::current()) {
    r.stats.arena_bytes_in_use = a->bytes_in_use();
    r.stats.arena_slabs = a->slab_count();
    r.stats.arena_resets = a->resets();
    r.stats.heap_fallback_allocs =
        a->heap_fallbacks() - arena_fallbacks_at_start_;
    r.stats.arena_bytes_trimmed = a->bytes_trimmed();
    r.stats.arena_recycled_allocs =
        a->recycled_allocs() - arena_recycled_allocs_at_start_;
    r.stats.arena_recycled_bytes =
        a->recycled_bytes() - arena_recycled_bytes_at_start_;
  }
  // Barrier GC totals over the whole run (deterministic per config; zero
  // with GC off or for protocols without reclaimable interval state).
  r.stats.gc_passes = proto_->gc_passes();
  r.stats.gc_diffs_freed = proto_->gc_diffs_freed();
  r.stats.gc_bytes_reclaimed = proto_->gc_bytes_reclaimed();
  r.stats.gc_notices_pruned = proto_->gc_notices_pruned();
  // Engine calendar-queue occupancy (all zero under the binary backend)
  // and protocol block-table footprint; host-side like the arena block.
  {
    const sim::CalendarStats ev = eng_.event_calendar_stats();
    const sim::CalendarStats rd = eng_.ready_calendar_stats();
    r.stats.evq_buckets = ev.buckets + rd.buckets;
    r.stats.evq_max_bucket_depth =
        std::max(ev.max_bucket_depth, rd.max_bucket_depth);
    r.stats.evq_resizes = ev.resizes + rd.resizes;
    r.stats.evq_direct_scans = ev.direct_scans + rd.direct_scans;
    const proto::BlockTableStats bt = proto_->block_table_stats();
    r.stats.soa_table_bytes = bt.table_bytes;
    r.stats.soa_slots = bt.slots;
    r.stats.soa_epoch_resets = bt.epoch_resets;
    const sim::Engine::SimParStats sp = eng_.sim_par_stats();
    r.stats.simpar_windows = sp.windows;
    r.stats.simpar_window_events = sp.window_events;
    r.stats.simpar_max_window_events = sp.max_window_events;
    r.stats.simpar_max_window_nodes = sp.max_window_nodes;
    r.stats.simpar_staged_effects = sp.staged_effects;
    r.stats.simpar_merge_ops = sp.merge_ops;
    r.stats.simpar_handoff_ns = sp.handoff_ns;
    r.stats.simpar_commit_ns = sp.commit_ns;
    r.stats.simpar_serial_fallback = sp.serial_fallback;
  }
  r.parallel_time = measured_end_;
  r.total_time = eng_.max_clock();
  r.breakdown = breakdown_;
  return r;
}

// ---------------------------------------------------------------------
// Context implementation (needs Runtime's innards).

const DsmConfig& Context::config() const { return rt_->cfg_; }

void Context::fault(BlockId b, bool write) {
  rt_->net_.poll_now();  // entering the runtime polls pending messages
  NodeStats& st = *stats_;
  const SimTime t0 = rt_->eng_.now(id_);
  const std::uint64_t msgs0 = rt_->net_.traffic(id_).messages_sent;
  // Everything from here until the protocol returns — fault exception,
  // request messages, blocking for the reply — is data wait.
  sim::Engine::CatScope scope(
      rt_->eng_, write ? trace::Cat::kWriteWait : trace::Cat::kReadWait);
  if (write) {
    ++st.write_faults;
    rt_->proto_->write_fault(b);
    st.write_stall_ns += rt_->eng_.now(id_) - t0;
    if (rt_->net_.traffic(id_).messages_sent != msgs0) {
      ++st.remote_write_faults;
    }
  } else {
    ++st.read_faults;
    rt_->proto_->read_fault(b);
    st.read_stall_ns += rt_->eng_.now(id_) - t0;
    if (rt_->net_.traffic(id_).messages_sent != msgs0) {
      ++st.remote_read_faults;
    }
  }
}

void Context::post_access() {
  rt_->eng_.charge(access_cost_);
  rt_->eng_.maybe_yield();
}

void Context::read_bytes(GAddr a, std::span<std::byte> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = load<std::byte>(a + i);
  }
}

void Context::lock(LockId l) {
  rt_->net_.poll_now();
  const SimTime t0 = rt_->eng_.now(id_);
  {
    sim::Engine::CatScope scope(rt_->eng_, trace::Cat::kLockWait);
    rt_->locks_->acquire(l);
  }
  stats_->lock_stall_ns += rt_->eng_.now(id_) - t0;
  if (trace::Tracer* tr = rt_->tracer_.get(); tr != nullptr && tr->full()) {
    tr->record(id_, trace::Ev::kLockAcquired, rt_->eng_.now(id_),
               static_cast<std::uint64_t>(l));
  }
}

void Context::unlock(LockId l) {
  rt_->net_.poll_now();
  // The release-side protocol work (HLRC's diff flush and its acks) is
  // lock overhead too: it happens so the lock can move on.
  sim::Engine::CatScope scope(rt_->eng_, trace::Cat::kLockWait);
  rt_->locks_->release(l);
  if (trace::Tracer* tr = rt_->tracer_.get(); tr != nullptr && tr->full()) {
    tr->record(id_, trace::Ev::kLockRelease, rt_->eng_.now(id_),
               static_cast<std::uint64_t>(l));
  }
}

void Context::barrier() {
  rt_->net_.poll_now();
  trace::Tracer* tr = rt_->tracer_.get();
  if (tr != nullptr && tr->full()) {
    tr->record(id_, trace::Ev::kBarrierArrive, rt_->eng_.now(id_), 0);
    // Barriers are the natural periodic sampling points for the counter
    // tracks: every node passes them, at deterministic virtual times.
    // Skipped inside parallel-DES windows: the samples aggregate cross-
    // node state that other batches are mutating concurrently (a
    // documented host-side trace divergence; simulated results are
    // unaffected).
    if (!rt_->eng_.in_parallel_window()) {
      tr->counter(id_, trace::Ctr::kDiffArchiveBytes, rt_->eng_.now(id_),
                  rt_->proto_->diff_archive_bytes());
      tr->counter(id_, trace::Ctr::kTwinBytes, rt_->eng_.now(id_),
                  rt_->proto_->protocol_memory_bytes());
      const Arena* a = Arena::current();
      tr->counter(id_, trace::Ctr::kArenaBytes, rt_->eng_.now(id_),
                  a != nullptr ? a->bytes_in_use() : 0);
      tr->counter(id_, trace::Ctr::kEventQueueDepth, rt_->eng_.now(id_),
                  rt_->eng_.pending_events());
      tr->counter(id_, trace::Ctr::kBlockTableBytes, rt_->eng_.now(id_),
                  rt_->proto_->block_table_stats().table_bytes);
    }
  }
  const SimTime t0 = rt_->eng_.now(id_);
  {
    sim::Engine::CatScope scope(rt_->eng_, trace::Cat::kBarrierWait);
    rt_->barrier_->wait();
  }
  stats_->barrier_stall_ns += rt_->eng_.now(id_) - t0;
  if (tr != nullptr && tr->full()) {
    tr->record(id_, trace::Ev::kBarrierRelease, rt_->eng_.now(id_), 0);
  }
}

void Context::compute(SimTime t) {
  DSM_CHECK(t >= 0);
  SimTime dilated = static_cast<SimTime>(static_cast<double>(t) * dilation_);
  stats_->compute_ns += dilated;
  // Chunk long computations at the quantum: a real loop has a backedge
  // (poll point) every few microseconds, so a single large charge must not
  // form an unpreemptible slice.
  const SimTime quantum = rt_->cfg_.quantum;
  while (dilated > quantum) {
    rt_->eng_.charge(quantum);
    rt_->eng_.maybe_yield();
    dilated -= quantum;
  }
  rt_->eng_.charge(dilated);
  rt_->eng_.maybe_yield();
}

SimTime Context::now() const { return rt_->eng_.now(id_); }

void Context::idle_until(SimTime t) {
  if (rt_->eng_.now(id_) >= t) return;
  rt_->net_.poll_now();
  sim::Engine::CatScope scope(rt_->eng_, trace::Cat::kIdle);
  const SimTime quantum = rt_->cfg_.quantum;
  while (true) {
    const SimTime remain = t - rt_->eng_.now(id_);
    if (remain <= 0) break;
    rt_->eng_.charge(remain < quantum ? remain : quantum);
    rt_->eng_.maybe_yield();
  }
}

void Context::stop_timer() {
  // The stats snapshot below reads cross-node state (every node's stats,
  // tags, traffic) and must observe it at an exact serial point.  Request
  // the serial fallback BEFORE the barrier: the engine switches at the
  // next window boundary, and the barrier release messages arrive at
  // least one network latency (> lookahead) later, so everything from the
  // release on — including the snapshot — runs under the serial loop at a
  // deterministic instant.  No-op under SimPar::kOff.
  rt_->eng_.request_serial();
  barrier();
  rt_->snapshot_if_needed();
}

}  // namespace dsm
