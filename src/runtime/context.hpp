// Per-node application API: instrumented shared memory accesses, locks,
// barriers, and compute-time modeling.  This is what the SPLASH-2 ports in
// src/apps are written against.
#pragma once

#include <atomic>
#include <cstring>
#include <span>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "mem/address_space.hpp"
#include "runtime/config.hpp"
#include "runtime/stats.hpp"

namespace dsm {

class Runtime;

class Context {
 public:
  NodeId id() const { return id_; }
  int nodes() const { return nnodes_; }
  /// True under SW-LRC / HLRC: apps add the extra synchronization release
  /// consistency requires only when this is set (paper §5.2.2).
  bool lazy_protocol() const { return lazy_; }
  const DsmConfig& config() const;
  Rng& rng() { return rng_; }

  // ------------------------------------------------------------------
  // Shared memory (instrumented; parallel phase).

  template <typename T>
  T load(GAddr a) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_span(a, sizeof(T));
    while (acc_[a >> shift_] == mem::Access::kInvalid) fault(a >> shift_, false);
    touched_[a >> shift_] |= 1ull << ((a & (gran_ - 1)) >> line_shift_);
    T v;
    std::memcpy(&v, base_ + a, sizeof(T));
    post_access();
    return v;
  }

  template <typename T>
  void store(GAddr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_span(a, sizeof(T));
    while (acc_[a >> shift_] != mem::Access::kReadWrite) fault(a >> shift_, true);
    // Writer masks fold node ids mod 64: Table-2 writer counts saturate at
    // 64 distinct writers per region, which is exact at paper scale and a
    // documented lower bound on the 256/1024-node scale-out sweeps.  The
    // words are shared across nodes (the one deliberately cross-node table
    // the store path touches), so under parallel-DES windows they need
    // atomic ORs; a set bit stays set, so check-then-OR keeps the common
    // case a plain load.
    const std::uint64_t wbit = 1ull << (id_ & 63);
    std::atomic<std::uint64_t>& pw = page_writers_[a >> 12];
    if ((pw.load(std::memory_order_relaxed) & wbit) == 0) {
      pw.fetch_or(wbit, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t>& fw = fine_writers_[a >> 6];
    if ((fw.load(std::memory_order_relaxed) & wbit) == 0) {
      fw.fetch_or(wbit, std::memory_order_relaxed);
    }
    touched_[a >> shift_] |= 1ull << ((a & (gran_ - 1)) >> line_shift_);
    // Dirty-word bitmap (host-side write tracking, mem/dirty_bitmap.hpp).
    // A small store touches at most two 4-byte words (when unaligned);
    // wider ones flag their whole word range.
    if constexpr (sizeof(T) <= 4) {
      wbits_[a >> 8] |= 1ull << ((a >> 2) & 63);
      const GAddr last = a + sizeof(T) - 1;
      wbits_[last >> 8] |= 1ull << ((last >> 2) & 63);
    } else {
      for (GAddr w = a >> 2; w <= (a + sizeof(T) - 1) >> 2; ++w) {
        wbits_[w >> 6] |= 1ull << (w & 63);
      }
    }
    std::memcpy(base_ + a, &v, sizeof(T));
    post_access();
  }

  double loadd(GAddr a) { return load<double>(a); }
  void stored(GAddr a, double v) { store<double>(a, v); }

  /// Bulk read through the DSM (faults block-wise; used for result
  /// gathering after stop_timer).
  void read_bytes(GAddr a, std::span<std::byte> out);

  // ------------------------------------------------------------------
  // Synchronization.

  void lock(LockId l);
  void unlock(LockId l);
  void barrier();

  // ------------------------------------------------------------------
  // Compute-time model.

  /// Charges `t` of computation (dilated by the polling-instrumentation
  /// factor when the run uses polling).
  void compute(SimTime t);

  /// This node's virtual clock (ns).  Service workloads timestamp open-loop
  /// arrivals and completions with it; a request's latency is a difference
  /// of two now() readings and therefore bitwise identical in every
  /// host-side engine mode.
  SimTime now() const;

  /// Advances this node's clock to `t` (no-op when already past).  Chunked
  /// at the quantum like compute() so message polling keeps running, but
  /// charged as idle time — an open-loop client waiting for its next
  /// arrival is not computing.
  void idle_until(SimTime t);

  /// Convenience: charge `n` floating-point operations (~30 ns each on the
  /// simulated 66 MHz HyperSPARC).
  void flops(std::int64_t n) { compute(n * 30); }

  /// Ends the measured region: collective barrier; the first completion
  /// snapshots stats and the parallel time.  Result gathering afterwards
  /// is not measured.
  void stop_timer();

  /// Contexts are created and wired up by the Runtime only.
  Context() = default;

 private:
  friend class Runtime;

  void check_span(GAddr a, std::size_t sz) const {
    DSM_CHECK_MSG((a & (gran_ - 1)) + sz <= gran_,
                  "shared access straddles a coherence block");
  }
  void fault(BlockId b, bool write);
  void post_access();

  Runtime* rt_ = nullptr;
  NodeId id_ = kNoNode;
  int nnodes_ = 0;
  bool lazy_ = false;
  int shift_ = 0;
  std::size_t gran_ = 0;
  std::byte* base_ = nullptr;            // this node's copy region
  const mem::Access* acc_ = nullptr;     // this node's access-state row
  std::atomic<std::uint64_t>* page_writers_ = nullptr;
  std::atomic<std::uint64_t>* fine_writers_ = nullptr;
  std::uint64_t* touched_ = nullptr;  // per-block sub-line access masks
  std::uint64_t* wbits_ = nullptr;    // this node's dirty-word bitmap row
  int line_shift_ = 0;
  SimTime access_cost_ = 0;              // already dilated
  double dilation_ = 1.0;
  NodeStats* stats_ = nullptr;
  Rng rng_;
};

}  // namespace dsm
