// Run configuration: protocol choice, coherence granularity, notification
// mechanism, and the virtual-time cost model of the simulated platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "mem/block_state.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "trace/trace.hpp"

namespace dsm {

enum class ProtocolKind {
  kSC,
  kSWLRC,
  kHLRC,
  /// Extension: traditional distributed-diff multiple-writer LRC
  /// (TreadMarks-style), the §2.3 foil HLRC is defined against.
  kMWLRC,
};

const char* to_string(ProtocolKind p);

/// How the multiple-writer protocols (HLRC / MW-LRC) detect which words a
/// node wrote since twin creation (see DESIGN.md "Write tracking modes").
enum class WriteTracking {
  /// Reference: twin at first write, full dirty-vs-twin scan at release.
  kTwinScan,
  /// Default: twin still taken, but the release scan compares only the
  /// words flagged in the per-node dirty bitmap.  Bitwise identical to
  /// kTwinScan (same diffs, same virtual-time charges) — the bitmap is
  /// host-side bookkeeping the simulated platform does not have.
  kTwinBitmap,
  /// Twin-free: no twin copy; diffs are encoded straight from the bitmap.
  /// Silent stores inflate diffs, so traffic/virtual time can differ from
  /// the paper-exact modes.  Opt-in fidelity/speed trade-off.
  kBitmapOnly,
};

const char* to_string(WriteTracking w);

/// SW-LRC version-label representation (DESIGN.md §5g).
enum class SwLrcVersionState {
  /// Default: per-home sharded labels.  The static home counts ownership
  /// grants (the tenure epoch); the releaser ranks its releases within its
  /// tenure; a label is the packed pair (epoch:16 | rel:16).  Every label
  /// write/read is then node-local or handler-at-home, so SW-LRC runs
  /// under --sim-par=window.
  kSharded,
  /// Reference: the original flat global version vector, RMW'd at every
  /// release by whichever node releases.  Kept as the bitwise anchor for
  /// steal-free workloads; forces the serial engine under --sim-par=window
  /// (supports_window_par() = false).
  kFlat,
};

const char* to_string(SwLrcVersionState s);

/// Diff-archive / write-notice garbage collection (MW-LRC; DESIGN.md §5h).
enum class GcMode {
  /// No in-run reclamation — the bitwise anchor; archives grow until the
  /// run ends (the seed behaviour).
  kOff,
  /// Reclaim at barrier departure: diffs every reader has provably fetched
  /// past and write notices below the barrier frontier are dropped, with
  /// arena-backed buffers recycled mid-run.  Results are bitwise identical
  /// to kOff by construction (reclaimed records can never be requested
  /// again), only memory/host-side telemetry differs.
  kBarrier,
};

const char* to_string(GcMode g);

/// Virtual-time costs of protocol operations on the simulated platform
/// (66 MHz HyperSPARC ~ 15 ns/cycle; Typhoon-0 fast exception ~ 5 us;
/// minimum synchronization handling ~ 150 us round trip — paper §3, §5.2.1).
struct CostModel {
  /// Charged per instrumented shared load/store (the access itself plus the
  /// Typhoon-0 tag check on the bus).
  SimTime mem_access = ns(45);
  /// Typhoon-0 fast exception into the run-time system.
  SimTime fault_exception = us(5);
  /// Directory/protocol bookkeeping per handled protocol message.
  SimTime dir_op = us(1);
  /// Local copy of block data (per byte) when installing a fetched block.
  double copy_per_byte_ns = 15.0;
  /// Creating a twin (copy of the block) at the first write of an interval.
  double twin_per_byte_ns = 15.0;
  /// Scanning dirty copy vs twin to build a diff (per byte scanned).
  double diff_scan_per_byte_ns = 20.0;
  /// Applying a diff at the home (per changed byte).
  double diff_apply_per_byte_ns = 20.0;
  /// Processing one write notice at acquire time.
  SimTime notice_proc = ns(600);
  /// Lock manager work per lock protocol message.
  SimTime lock_op = us(2);
  /// Barrier manager work per arrival/release.
  SimTime barrier_op = us(2);
  /// LRC interval bookkeeping at each release/acquire.
  SimTime interval_op = us(3);
};

struct DsmConfig {
  int nodes = 16;
  ProtocolKind protocol = ProtocolKind::kSC;
  std::size_t granularity = 4096;           // 64 / 256 / 1024 / 4096
  net::NotifyMode notify = net::NotifyMode::kPolling;
  std::size_t shared_bytes = 32u << 20;
  net::NetParams net;
  CostModel costs;
  /// Engine yield quantum: models backedge spacing for the poll check.
  SimTime quantum = ns(2000);
  std::size_t stack_bytes = 1u << 20;
  std::uint64_t seed = 0x1997'0616ULL;
  /// Compute-time multiplier applied in polling mode: the cost of the
  /// 7-instruction backedge instrumentation (application-specific; the
  /// paper reports +55% for LU).  1.0 = free checks.
  double poll_dilation = 1.0;
  /// Upper bound on application lock ids.
  int max_locks = 1 << 14;
  /// First-touch home migration (paper §2).  Disabled = static round-robin
  /// homes only (the ablation bench measures what migration buys).
  bool first_touch = true;
  /// Delayed-consistency extension (paper §7 cites Dubois et al. [8] as
  /// unexamined): under SC, hold arriving invalidations/recalls for this
  /// long before servicing them, letting the holder keep accessing its
  /// copy — a protocol-level version of the accidental delay the paper's
  /// interrupt mechanism introduced (§5.4).  0 = plain SC.
  SimTime sc_invalidate_delay = 0;
  /// Engine runaway guard (events before an abort+dump); debugging aid.
  /// 0 = scale-aware auto: derived from nodes x blocks at Runtime
  /// construction (derived_max_events), so 1024-node sweeps are not capped
  /// by a constant tuned for 16.
  std::uint64_t max_events = 0;
  /// Scheduling-queue backend (sim/event_queue.hpp).  Host-side only:
  /// binary is the bitwise-identity reference, calendar the O(1) default.
  sim::EventQueueKind event_queue = sim::EventQueueKind::kCalendar;
  /// Per-block protocol state backend (mem/block_state.hpp).  Host-side
  /// only: map is the identity reference, soa the flat-table default.
  mem::BlockStateKind block_state = mem::BlockStateKind::kSoA;
  /// Write-detection strategy for the multiple-writer protocols.
  WriteTracking write_tracking = WriteTracking::kTwinBitmap;
  /// SW-LRC version-label scheme.  Sharded (the default) admits SW-LRC to
  /// window-parallel execution; flat is the historical global-counter
  /// reference.  The two coincide bitwise on workloads where ownership
  /// never migrates away from a node with unreleased writes (lock-
  /// serialized sharing); under mid-interval steals the label ORDER they
  /// assign to stale-dirty releases differs deterministically in both.
  SwLrcVersionState swlrc_version_state = SwLrcVersionState::kSharded;
  /// Intra-run conservative parallel-DES mode (sim::Engine, DESIGN.md §5g).
  /// Host-side only: kWindow executes lookahead windows in node-disjoint
  /// batches and commits them in exact serial order, so results are
  /// bitwise identical to kOff.  Degrades to the serial loop when the
  /// protocol does not support window partitioning (SW-LRC) or the
  /// derived lookahead is not positive.
  sim::SimPar sim_par = sim::SimPar::kOff;
  /// Worker threads for window batches: 0 = auto (hardware threads when
  /// not nested inside a sweep-level ThreadPool worker, else inline), 1 =
  /// inline batches (no pool), N > 1 = dedicated pool of N.  Never affects
  /// results, only wall-clock.
  int sim_par_workers = 0;
  /// MW-LRC diff-archive/write-notice GC (--gc).  kOff is the bitwise
  /// anchor; kBarrier reclaims at barrier departures (results identical,
  /// bounded memory).  Ignored by the non-MW-LRC protocols.
  GcMode gc = GcMode::kOff;
  /// GC pass threshold (--gc-threshold): a barrier departure triggers a
  /// collection only when the node-summed diff archive exceeds this many
  /// bytes, so quiescent runs pay nothing.  0 = collect at every barrier.
  std::uint64_t gc_threshold_bytes = 64u << 10;
  /// Tracing tier (src/trace): off, breakdown (category attribution only)
  /// or full (+ per-node event rings and counter tracks).  Host-side only;
  /// simulated results are bitwise identical in every mode.
  trace::Mode trace_mode = trace::Mode::kOff;
  /// Per-node event ring capacity in full mode (32-byte events; the
  /// default is 1 MiB of arena memory per node).  Oldest events are
  /// overwritten on overflow.
  std::size_t trace_ring_events = std::size_t{1} << 15;
};

/// Scale-aware runaway guard: generous multiples of nodes and blocks so a
/// correct 1024-node run never trips it, while a livelocked one still
/// aborts with a dump instead of spinning forever.
inline std::uint64_t derived_max_events(const DsmConfig& c) {
  const auto nodes = static_cast<std::uint64_t>(c.nodes);
  const std::uint64_t blocks = c.shared_bytes / c.granularity;
  return 500'000'000 + nodes * 2'000'000 + nodes * blocks * 256;
}

/// Rough host-memory footprint of one simulation with this config: per-node
/// copy regions plus the home/golden image, per-node access-state, fiber
/// stacks, dirty-word bitmaps, the home table's per-node probable-owner
/// cache, and the per-node SoA block-state metadata (sparse index + dense
/// tables, ~9 B/block/node).  An upper bound — copy regions and stacks are
/// lazily committed — which is the honest direction for the parallel
/// harness's admission control at 256/1024 nodes.
inline std::uint64_t estimated_run_bytes(const DsmConfig& c) {
  const auto nodes = static_cast<std::uint64_t>(c.nodes);
  const std::uint64_t shared = c.shared_bytes;
  const std::uint64_t blocks = shared / c.granularity;
  return (nodes + 1) * shared + nodes * (shared / 16) +
         nodes * c.stack_bytes + nodes * (shared / 32) +
         nodes * blocks * 9;
}

}  // namespace dsm
