#include "runtime/stats.hpp"

#include <bit>

namespace dsm {

NodeStats& NodeStats::operator+=(const NodeStats& o) {
  read_faults += o.read_faults;
  write_faults += o.write_faults;
  remote_read_faults += o.remote_read_faults;
  remote_write_faults += o.remote_write_faults;
  invalidations += o.invalidations;
  block_fetches += o.block_fetches;
  writebacks += o.writebacks;
  twins += o.twins;
  diffs += o.diffs;
  diff_bytes += o.diff_bytes;
  notices_processed += o.notices_processed;
  bitmap_words_compared += o.bitmap_words_compared;
  bitmap_scan_bytes_avoided += o.bitmap_scan_bytes_avoided;
  lock_acquires += o.lock_acquires;
  remote_lock_ops += o.remote_lock_ops;
  barriers += o.barriers;
  compute_ns += o.compute_ns;
  read_stall_ns += o.read_stall_ns;
  write_stall_ns += o.write_stall_ns;
  lock_stall_ns += o.lock_stall_ns;
  barrier_stall_ns += o.barrier_stall_ns;
  return *this;
}

NodeStats RunStats::total() const {
  NodeStats t;
  for (const NodeStats& n : node) t += n;
  return t;
}

double RunStats::per_node(std::uint64_t NodeStats::* field) const {
  if (node.empty()) return 0.0;
  std::uint64_t sum = 0;
  for (const NodeStats& n : node) sum += n.*field;
  return static_cast<double>(sum) / static_cast<double>(node.size());
}



}  // namespace dsm
