#include "sync/barrier_manager.hpp"

#include "proto/msg_types.hpp"
#include "proto/wire.hpp"

namespace dsm::sync {

using proto::ByteReader;
using proto::ByteWriter;
using proto::Interval;
using proto::VectorClock;

BarrierManager::BarrierManager(sim::Engine& eng, net::Network& net,
                               proto::Protocol& proto, const CostModel& costs,
                               std::vector<NodeStats>& stats,
                               trace::Tracer* tracer)
    : eng_(eng), net_(net), proto_(proto), costs_(costs), stats_(stats),
      tracer_(tracer),
      done_epoch_(static_cast<std::size_t>(eng.nodes()), 0),
      my_epoch_(static_cast<std::size_t>(eng.nodes()), 0),
      sent_upto_(static_cast<std::size_t>(eng.nodes()), 0),
      arrive_vc_(static_cast<std::size_t>(eng.nodes())),
      arrive_ivs_(static_cast<std::size_t>(eng.nodes())),
      arrive_seen_(static_cast<std::size_t>(eng.nodes()), false) {}

void BarrierManager::wait() {
  const NodeId self = eng_.current();
  const std::size_t si = static_cast<std::size_t>(self);
  ++stats_[si].barriers;
  proto_.at_release();
  eng_.charge(costs_.barrier_op);

  const std::uint32_t epoch = ++my_epoch_[si];
  const VectorClock vc = proto_.clock_of(self);
  std::vector<Interval> own = proto_.own_intervals_after(sent_upto_[si]);
  sent_upto_[si] = vc[self];

  if (self == kMaster) {
    master_arrive(self, vc, std::move(own));
  } else {
    ByteWriter w;
    vc.encode(w, eng_.nodes());
    encode_intervals(w, own, eng_.nodes());
    net_.send(kMaster, proto::kBarrierArrive, epoch, 0, 0, 0, w.take());
  }

  auto& done = done_epoch_[si];
  eng_.block_inline([&done, epoch] { return done >= epoch; },
             "barrier: waiting for release");
}

void BarrierManager::master_arrive(NodeId from, VectorClock vc,
                                   std::vector<Interval> ivs) {
  // Runs as the master node (handler for remote arrivals, fiber for its
  // own).  Arrivals are only BUFFERED here; nothing touches the master's
  // protocol state until finalize.  An arriving node ships only its OWN
  // intervals — without the foreign intervals that happen-before them —
  // so ingesting them now would leave the master's notice store causally
  // non-closed while the master may still be running application code
  // (open-loop workloads reach the final barrier at widely different
  // virtual times).  Its next validate would then apply diffs whose causal
  // predecessors it has not heard of, and a later validate would replay
  // the OLDER predecessor diff over newer bytes, silently losing writes.
  // At finalize every node has arrived, the union of the buffered suffixes
  // is causally closed, and the master is blocked in wait() — no window.
  eng_.charge(costs_.barrier_op);
  DSM_CHECK(!arrive_seen_[static_cast<std::size_t>(from)]);
  arrive_seen_[static_cast<std::size_t>(from)] = true;
  arrive_vc_[static_cast<std::size_t>(from)] = vc;
  arrive_ivs_[static_cast<std::size_t>(from)] = std::move(ivs);
  if (++arrived_ == eng_.nodes()) finalize();
}

void BarrierManager::finalize() {
  // Runs as the master.  Ingest every node's own intervals first, THEN
  // merge the arrival clocks: merging earlier would advance the master's
  // clock past its store and make it silently skip interval suffixes it
  // never held.
  if (tracer_ != nullptr && tracer_->full()) {
    tracer_->record(kMaster, trace::Ev::kBarrierRelease, eng_.now(kMaster),
                    done_epoch_[kMaster] + 1);
  }
  for (NodeId n = 0; n < eng_.nodes(); ++n) {
    proto_.apply_acquire(VectorClock{},
                         std::move(arrive_ivs_[static_cast<std::size_t>(n)]));
    arrive_ivs_[static_cast<std::size_t>(n)].clear();
  }
  for (NodeId n = 0; n < eng_.nodes(); ++n) {
    proto_.apply_acquire(arrive_vc_[static_cast<std::size_t>(n)], {});
  }
  arrived_ = 0;
  const VectorClock master_vc = proto_.clock_of(kMaster);
  for (NodeId n = 0; n < eng_.nodes(); ++n) {
    arrive_seen_[static_cast<std::size_t>(n)] = false;
    if (n == kMaster) continue;
    eng_.charge(costs_.barrier_op);
    ByteWriter w;
    master_vc.encode(w, eng_.nodes());
    encode_intervals(w,
                     proto_.intervals_newer_than(
                         arrive_vc_[static_cast<std::size_t>(n)], n),
                     eng_.nodes());
    net_.send(n, proto::kBarrierRelease,
              done_epoch_[static_cast<std::size_t>(n)] + 1, 0, 0, 0,
              w.take());
  }
  // Barrier-frontier GC (DsmConfig::gc): every departing node's clock will
  // dominate master_vc, and the cluster is quiescent right now, so this is
  // the one point where reclamation can be planned globally.  Plan AFTER
  // the release payloads above are built (they read intervals the master
  // may be about to prune); the master applies its own share inline, the
  // others apply theirs in their kBarrierRelease handler.
  proto_.gc_barrier_plan(master_vc);
  proto_.gc_apply_local();
  ++done_epoch_[kMaster];
  eng_.notify(kMaster);
}

void BarrierManager::handle(net::Message& m) {
  switch (m.type) {
    case proto::kBarrierArrive: {
      ByteReader r(m.payload);
      VectorClock vc = VectorClock::decode(r, eng_.nodes());
      master_arrive(m.src, vc, decode_intervals(r, eng_.nodes()));
      break;
    }
    case proto::kBarrierRelease: {
      const NodeId self = eng_.current();
      ByteReader r(m.payload);
      VectorClock vc = VectorClock::decode(r, eng_.nodes());
      proto_.apply_acquire(vc, decode_intervals(r, eng_.nodes()));
      // Apply this node's share of any barrier GC plan now that the
      // release's intervals are ingested (node-local mutation only).
      proto_.gc_apply_local();
      done_epoch_[static_cast<std::size_t>(self)] =
          static_cast<std::uint32_t>(m.arg[0]);
      eng_.notify(self);
      break;
    }
    default:
      DSM_CHECK_MSG(false, "barrier manager: unknown message");
  }
}

}  // namespace dsm::sync
