#include "sync/barrier_manager.hpp"

#include "proto/msg_types.hpp"
#include "proto/wire.hpp"

namespace dsm::sync {

using proto::ByteReader;
using proto::ByteWriter;
using proto::Interval;
using proto::VectorClock;

BarrierManager::BarrierManager(sim::Engine& eng, net::Network& net,
                               proto::Protocol& proto, const CostModel& costs,
                               std::vector<NodeStats>& stats,
                               trace::Tracer* tracer)
    : eng_(eng), net_(net), proto_(proto), costs_(costs), stats_(stats),
      tracer_(tracer),
      done_epoch_(static_cast<std::size_t>(eng.nodes()), 0),
      my_epoch_(static_cast<std::size_t>(eng.nodes()), 0),
      sent_upto_(static_cast<std::size_t>(eng.nodes()), 0),
      arrive_vc_(static_cast<std::size_t>(eng.nodes())),
      arrive_seen_(static_cast<std::size_t>(eng.nodes()), false) {}

void BarrierManager::wait() {
  const NodeId self = eng_.current();
  const std::size_t si = static_cast<std::size_t>(self);
  ++stats_[si].barriers;
  proto_.at_release();
  eng_.charge(costs_.barrier_op);

  const std::uint32_t epoch = ++my_epoch_[si];
  const VectorClock vc = proto_.clock_of(self);
  std::vector<Interval> own = proto_.own_intervals_after(sent_upto_[si]);
  sent_upto_[si] = vc[self];

  if (self == kMaster) {
    master_arrive(self, vc, std::move(own));
  } else {
    ByteWriter w;
    vc.encode(w, eng_.nodes());
    encode_intervals(w, own, eng_.nodes());
    net_.send(kMaster, proto::kBarrierArrive, epoch, 0, 0, 0, w.take());
  }

  auto& done = done_epoch_[si];
  eng_.block_inline([&done, epoch] { return done >= epoch; },
             "barrier: waiting for release");
}

void BarrierManager::master_arrive(NodeId from, VectorClock vc,
                                   std::vector<Interval> ivs) {
  // Runs as the master node (handler for remote arrivals, fiber for its
  // own).  Intervals are ingested immediately, but the arriving clock is
  // only merged at finalize, AFTER every node's own intervals are in the
  // master's store: merging earlier would advance the master's clock past
  // its store and make it silently skip interval suffixes it never held.
  eng_.charge(costs_.barrier_op);
  DSM_CHECK(!arrive_seen_[static_cast<std::size_t>(from)]);
  arrive_seen_[static_cast<std::size_t>(from)] = true;
  arrive_vc_[static_cast<std::size_t>(from)] = vc;
  proto_.apply_acquire(VectorClock{}, std::move(ivs));
  if (++arrived_ == eng_.nodes()) finalize();
}

void BarrierManager::finalize() {
  // Runs as the master.  Its store now holds the union of all intervals;
  // merging the arrival clocks is safe.
  if (tracer_ != nullptr && tracer_->full()) {
    tracer_->record(kMaster, trace::Ev::kBarrierRelease, eng_.now(kMaster),
                    done_epoch_[kMaster] + 1);
  }
  for (NodeId n = 0; n < eng_.nodes(); ++n) {
    proto_.apply_acquire(arrive_vc_[static_cast<std::size_t>(n)], {});
  }
  arrived_ = 0;
  const VectorClock master_vc = proto_.clock_of(kMaster);
  for (NodeId n = 0; n < eng_.nodes(); ++n) {
    arrive_seen_[static_cast<std::size_t>(n)] = false;
    if (n == kMaster) continue;
    eng_.charge(costs_.barrier_op);
    ByteWriter w;
    master_vc.encode(w, eng_.nodes());
    encode_intervals(w,
                     proto_.intervals_newer_than(
                         arrive_vc_[static_cast<std::size_t>(n)], n),
                     eng_.nodes());
    net_.send(n, proto::kBarrierRelease,
              done_epoch_[static_cast<std::size_t>(n)] + 1, 0, 0, 0,
              w.take());
  }
  // Barrier-frontier GC (DsmConfig::gc): every departing node's clock will
  // dominate master_vc, and the cluster is quiescent right now, so this is
  // the one point where reclamation can be planned globally.  Plan AFTER
  // the release payloads above are built (they read intervals the master
  // may be about to prune); the master applies its own share inline, the
  // others apply theirs in their kBarrierRelease handler.
  proto_.gc_barrier_plan(master_vc);
  proto_.gc_apply_local();
  ++done_epoch_[kMaster];
  eng_.notify(kMaster);
}

void BarrierManager::handle(net::Message& m) {
  switch (m.type) {
    case proto::kBarrierArrive: {
      ByteReader r(m.payload);
      VectorClock vc = VectorClock::decode(r, eng_.nodes());
      master_arrive(m.src, vc, decode_intervals(r, eng_.nodes()));
      break;
    }
    case proto::kBarrierRelease: {
      const NodeId self = eng_.current();
      ByteReader r(m.payload);
      VectorClock vc = VectorClock::decode(r, eng_.nodes());
      proto_.apply_acquire(vc, decode_intervals(r, eng_.nodes()));
      // Apply this node's share of any barrier GC plan now that the
      // release's intervals are ingested (node-local mutation only).
      proto_.gc_apply_local();
      done_epoch_[static_cast<std::size_t>(self)] =
          static_cast<std::uint32_t>(m.arg[0]);
      eng_.notify(self);
      break;
    }
    default:
      DSM_CHECK_MSG(false, "barrier manager: unknown message");
  }
}

}  // namespace dsm::sync
