#include "sync/lock_manager.hpp"

#include "proto/msg_types.hpp"
#include "proto/wire.hpp"

namespace dsm::sync {

using proto::ByteReader;
using proto::ByteWriter;
using proto::Interval;
using proto::VectorClock;

LockManager::LockManager(sim::Engine& eng, net::Network& net,
                         proto::Protocol& proto, const CostModel& costs,
                         std::vector<NodeStats>& stats, trace::Tracer* tracer)
    : eng_(eng), net_(net), proto_(proto), costs_(costs), stats_(stats),
      tracer_(tracer), pn_(static_cast<std::size_t>(eng.nodes())),
      tail_(static_cast<std::size_t>(eng.nodes())) {}

void LockManager::acquire(LockId l) {
  const NodeId self = eng_.current();
  NodeStats& st = stats_[static_cast<std::size_t>(self)];
  ++st.lock_acquires;
  NodeLock& s = state(self, l);
  eng_.charge(costs_.lock_op);

  if (s.mode == Mode::kCached) {
    // We were the last holder; no coherence information can be missing.
    s.mode = Mode::kHeld;
    return;
  }
  DSM_CHECK_MSG(s.mode == Mode::kNone, "acquire of a lock already held");
  ++st.remote_lock_ops;
  s.mode = Mode::kWaiting;
  const VectorClock vc = proto_.clock_of(self);
  if (home_of(l) == self) {
    on_request(l, self, vc);
  } else {
    ByteWriter w;
    vc.encode(w, eng_.nodes());
    net_.send(home_of(l), proto::kLockReq, static_cast<std::uint64_t>(l), 0,
              0, 0, w.take());
  }
  eng_.block_inline([&s] { return s.mode == Mode::kHeld; },
             "lock: waiting for grant");
}

void LockManager::release(LockId l) {
  const NodeId self = eng_.current();
  NodeLock& s = state(self, l);
  DSM_CHECK_MSG(s.mode == Mode::kHeld, "release of a lock not held");
  proto_.at_release();
  eng_.charge(costs_.lock_op);
  if (s.have_next) {
    const NodeId to = s.next;
    const VectorClock vc = s.next_vc;
    s.have_next = false;
    s.mode = Mode::kNone;
    grant_to(l, to, vc);
  } else {
    s.mode = Mode::kCached;
  }
}

void LockManager::on_request(LockId l, NodeId requester,
                             const VectorClock& vc) {
  eng_.charge(costs_.lock_op);
  DSM_CHECK(eng_.current() == home_of(l));
  auto& tails = tail_[static_cast<std::size_t>(home_of(l))];
  const auto it = tails.find(l);
  const NodeId old = it == tails.end() ? kNoNode : it->second;
  tails[l] = requester;
  if (old == kNoNode) {
    // First acquire of this lock ever: grant with no notices.
    if (requester == eng_.current()) {
      NodeLock& s = state(requester, l);
      s.mode = Mode::kHeld;
      eng_.notify(requester);
    } else {
      net_.send(requester, proto::kLockGrant, static_cast<std::uint64_t>(l));
    }
    return;
  }
  DSM_CHECK_MSG(old != requester, "requester is already the queue tail");
  if (old == eng_.current()) {
    on_pass(l, requester, vc);
  } else {
    ByteWriter w;
    vc.encode(w, eng_.nodes());
    net_.send(old, proto::kLockPass, static_cast<std::uint64_t>(l),
              static_cast<std::uint64_t>(requester), 0, 0, w.take());
  }
}

void LockManager::on_pass(LockId l, NodeId requester, const VectorClock& vc) {
  const NodeId self = eng_.current();
  NodeLock& s = state(self, l);
  eng_.charge(costs_.lock_op);
  switch (s.mode) {
    case Mode::kHeld:
    case Mode::kWaiting:
      DSM_CHECK_MSG(!s.have_next, "two successors for one lock holder");
      s.have_next = true;
      s.next = requester;
      s.next_vc = vc;
      break;
    case Mode::kCached:
      s.mode = Mode::kNone;
      grant_to(l, requester, vc);
      break;
    case Mode::kNone:
      DSM_CHECK_MSG(false, "lock pass reached a node with no lock state");
  }
}

void LockManager::grant_to(LockId l, NodeId to, const VectorClock& their_vc) {
  DSM_CHECK(to != eng_.current());
  if (tracer_ != nullptr && tracer_->full()) {
    const NodeId self = eng_.current();
    tracer_->record(self, trace::Ev::kLockGrant, eng_.now(self),
                    static_cast<std::uint64_t>(l),
                    static_cast<std::uint32_t>(to));
  }
  ByteWriter w;
  proto_.clock_of(eng_.current()).encode(w, eng_.nodes());
  encode_intervals(w, proto_.intervals_newer_than(their_vc, to),
                   eng_.nodes());
  net_.send(to, proto::kLockGrant, static_cast<std::uint64_t>(l), 1, 0, 0,
            w.take());
}

void LockManager::handle(net::Message& m) {
  const LockId l = static_cast<LockId>(m.arg[0]);
  switch (m.type) {
    case proto::kLockReq: {
      ByteReader r(m.payload);
      const VectorClock vc = VectorClock::decode(r, eng_.nodes());
      on_request(l, m.src, vc);
      break;
    }
    case proto::kLockPass: {
      ByteReader r(m.payload);
      const VectorClock vc = VectorClock::decode(r, eng_.nodes());
      on_pass(l, static_cast<NodeId>(m.arg[1]), vc);
      break;
    }
    case proto::kLockGrant: {
      const NodeId self = eng_.current();
      NodeLock& s = state(self, l);
      DSM_CHECK(s.mode == Mode::kWaiting);
      eng_.charge(costs_.lock_op);
      if (m.arg[1] != 0) {
        ByteReader r(m.payload);
        const VectorClock vc = VectorClock::decode(r, eng_.nodes());
        proto_.apply_acquire(vc, decode_intervals(r, eng_.nodes()));
      }
      s.mode = Mode::kHeld;
      eng_.notify(self);
      break;
    }
    default:
      DSM_CHECK_MSG(false, "lock manager: unknown message");
  }
}

}  // namespace dsm::sync
