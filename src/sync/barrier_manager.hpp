// Global barrier with LRC notice exchange.
//
// Node 0 is the barrier master.  Arrivals carry the arriving node's vector
// clock and its own intervals created since its last barrier; the master
// merges everything and sends each node exactly the intervals it has not
// seen (paper §2.3: at barriers all coherence information is exchanged).
// Under SC the same rendezvous happens with empty payloads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "proto/protocol.hpp"
#include "runtime/config.hpp"
#include "runtime/stats.hpp"
#include "sim/engine.hpp"

namespace dsm::sync {

class BarrierManager {
 public:
  BarrierManager(sim::Engine& eng, net::Network& net, proto::Protocol& proto,
                 const CostModel& costs, std::vector<NodeStats>& stats,
                 trace::Tracer* tracer = nullptr);

  /// Fiber context: flushes (per protocol), arrives, waits for release.
  void wait();

  /// Handler context: kBarrierArrive / kBarrierRelease.
  void handle(net::Message& m);

 private:
  static constexpr NodeId kMaster = 0;

  void master_arrive(NodeId from, proto::VectorClock vc,
                     std::vector<proto::Interval> ivs);
  void finalize();

  sim::Engine& eng_;
  net::Network& net_;
  proto::Protocol& proto_;
  const CostModel& costs_;
  std::vector<NodeStats>& stats_;
  trace::Tracer* tracer_;

  std::vector<std::uint32_t> done_epoch_;  // per node: completed barriers
  std::vector<std::uint32_t> my_epoch_;    // per node: barriers entered
  std::vector<std::uint32_t> sent_upto_;   // own interval seq sent to master

  // Master collection state for the in-flight barrier.
  int arrived_ = 0;
  std::vector<proto::VectorClock> arrive_vc_;
  std::vector<std::vector<proto::Interval>> arrive_ivs_;
  std::vector<bool> arrive_seen_;
};

}  // namespace dsm::sync
