// Distributed locks (paper §2.2/§2.3 synchronization machinery).
//
// Each lock has a static home that serializes requests and tracks the tail
// of a distributed MCS-style queue; grants travel directly from holder to
// next requester.  Under the LRC protocols the grant carries the granter's
// vector clock plus every write-notice interval the requester has not yet
// seen, which is how coherence information propagates at acquires.
// A released lock with no waiter stays cached at the last holder; local
// re-acquires are free of messages.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "proto/protocol.hpp"
#include "runtime/config.hpp"
#include "runtime/stats.hpp"
#include "sim/engine.hpp"

namespace dsm::sync {

class LockManager {
 public:
  LockManager(sim::Engine& eng, net::Network& net, proto::Protocol& proto,
              const CostModel& costs, std::vector<NodeStats>& stats,
              trace::Tracer* tracer = nullptr);

  /// Fiber context.  Returns holding the lock, with all causally prior
  /// write notices applied.
  void acquire(LockId l);

  /// Fiber context.  Runs the protocol's release actions (HLRC diff flush)
  /// before the lock can move on.
  void release(LockId l);

  /// Handler context: kLockReq / kLockPass / kLockGrant.
  void handle(net::Message& m);

 private:
  enum class Mode { kNone, kWaiting, kHeld, kCached };

  struct NodeLock {
    Mode mode = Mode::kNone;
    bool have_next = false;
    NodeId next = kNoNode;
    proto::VectorClock next_vc;
  };

  NodeId home_of(LockId l) const {
    return static_cast<NodeId>(l % eng_.nodes());
  }
  NodeLock& state(NodeId n, LockId l) { return pn_[static_cast<std::size_t>(n)][l]; }

  /// Home-side request processing (runs as the home node).
  void on_request(LockId l, NodeId requester, const proto::VectorClock& vc);
  /// Previous-tail-side pass processing.
  void on_pass(LockId l, NodeId requester, const proto::VectorClock& vc);
  void grant_to(LockId l, NodeId to, const proto::VectorClock& their_vc);

  sim::Engine& eng_;
  net::Network& net_;
  proto::Protocol& proto_;
  const CostModel& costs_;
  std::vector<NodeStats>& stats_;
  trace::Tracer* tracer_;

  std::vector<std::unordered_map<LockId, NodeLock>> pn_;
  /// Queue tails, indexed by lock, sharded by the lock's home node.  Only
  /// ever touched as the home (checked in on_request), so node-disjoint
  /// lookahead windows never share a shard.
  std::vector<std::unordered_map<LockId, NodeId>> tail_;
};

}  // namespace dsm::sync
