#include "harness/parallel_harness.hpp"

#include <algorithm>
#include <set>

namespace dsm::harness {

void ParallelHarness::prewarm(std::span<const ExpKey> keys) {
  // Baselines first: every run() divides by its app's sequential time, so
  // computing the unique baselines up front keeps workers from queueing on
  // the in-flight dedup for a popular app.
  std::set<std::string> apps;
  for (const ExpKey& k : keys) apps.insert(k.app);
  for (const std::string& a : apps) {
    pool_.submit([this, a] { h_.sequential_time(a); });
  }
  pool_.wait_idle();

  // Longest jobs first.  The sweep's makespan is bounded by whatever runs
  // last: a slow combination submitted at the tail serializes the whole
  // sweep behind it on one worker.  Order by profiled host seconds (prior
  // in-process runs, or a persisted BENCH_wallclock.json loaded through
  // Harness::load_profile); unprofiled keys fall back to the admission
  // estimate and then to granularity (finer blocks mean more faults, so
  // they tend to simulate longer).  stable_sort keeps input order for full
  // ties, so an unprofiled sweep behaves exactly as before.
  struct Job {
    const ExpKey* key;
    double secs;
    std::uint64_t bytes;
  };
  std::vector<Job> order;
  order.reserve(keys.size());
  for (const ExpKey& k : keys) {
    order.push_back({&k, h_.profile_seconds(k), h_.reservation_bytes_for(k)});
  }
  std::stable_sort(order.begin(), order.end(), [](const Job& a, const Job& b) {
    if (a.secs != b.secs) return a.secs > b.secs;
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    return a.key->gran < b.key->gran;
  });
  for (const Job& j : order) {
    const ExpKey k = *j.key;
    pool_.submit([this, k] { h_.run(k.app, k.proto, k.gran, k.notify); });
  }
  pool_.wait_idle();
}

std::vector<const ExpResult*> ParallelHarness::run_all(
    std::span<const ExpKey> keys) {
  prewarm(keys);
  std::vector<const ExpResult*> out;
  out.reserve(keys.size());
  for (const ExpKey& k : keys) {
    out.push_back(&h_.run(k.app, k.proto, k.gran, k.notify));
  }
  return out;
}

std::vector<ExpKey> ParallelHarness::cross(
    const std::vector<std::string>& apps, std::span<const ProtocolKind> protos,
    std::span<const std::size_t> grains, net::NotifyMode notify) {
  std::vector<ExpKey> keys;
  keys.reserve(apps.size() * protos.size() * grains.size());
  for (const std::string& a : apps) {
    for (ProtocolKind p : protos) {
      for (std::size_t g : grains) keys.push_back(ExpKey{a, p, g, notify});
    }
  }
  return keys;
}

}  // namespace dsm::harness
