#include "harness/parallel_harness.hpp"

#include <set>

namespace dsm::harness {

void ParallelHarness::prewarm(std::span<const ExpKey> keys) {
  // Baselines first: every run() divides by its app's sequential time, so
  // computing the unique baselines up front keeps workers from queueing on
  // the in-flight dedup for a popular app.
  std::set<std::string> apps;
  for (const ExpKey& k : keys) apps.insert(k.app);
  for (const std::string& a : apps) {
    pool_.submit([this, a] { h_.sequential_time(a); });
  }
  pool_.wait_idle();
  for (const ExpKey& k : keys) {
    pool_.submit([this, k] { h_.run(k.app, k.proto, k.gran, k.notify); });
  }
  pool_.wait_idle();
}

std::vector<const ExpResult*> ParallelHarness::run_all(
    std::span<const ExpKey> keys) {
  prewarm(keys);
  std::vector<const ExpResult*> out;
  out.reserve(keys.size());
  for (const ExpKey& k : keys) {
    out.push_back(&h_.run(k.app, k.proto, k.gran, k.notify));
  }
  return out;
}

std::vector<ExpKey> ParallelHarness::cross(
    const std::vector<std::string>& apps, std::span<const ProtocolKind> protos,
    std::span<const std::size_t> grains, net::NotifyMode notify) {
  std::vector<ExpKey> keys;
  keys.reserve(apps.size() * protos.size() * grains.size());
  for (const std::string& a : apps) {
    for (ProtocolKind p : protos) {
      for (std::size_t g : grains) keys.push_back(ExpKey{a, p, g, notify});
    }
  }
  return keys;
}

}  // namespace dsm::harness
