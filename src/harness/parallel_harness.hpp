// Parallel sweep executor: fans independent (app, protocol, granularity,
// notification) simulations out across hardware threads.
//
// Every simulation owns a self-contained Runtime/Engine with its own
// virtual clock, so cross-simulation parallelism cannot perturb simulated
// results — a -j8 sweep is bitwise-identical to -j1 (see DESIGN.md and the
// ParallelSweep determinism tests).  Results land in the shared Harness
// cache keyed by ExpKey; readers consume them in their own deterministic
// order, never in completion order.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"

namespace dsm::harness {

class ParallelHarness {
 public:
  /// `jobs <= 0` means one worker per hardware thread.  When `budget` is
  /// non-null it is installed on the Harness: pool workers then reserve
  /// each simulation's estimated footprint before constructing its
  /// Runtime, so -jN no longer multiplies peak RSS by N unconditionally
  /// (common/mem_budget.hpp).  The budget must outlive the Harness.
  explicit ParallelHarness(Harness& h, int jobs = 0,
                           MemBudget* budget = nullptr)
      : h_(h), pool_(jobs) {
    if (budget != nullptr) h_.set_mem_budget(budget);
  }

  int jobs() const { return pool_.size(); }
  Harness& harness() { return h_; }

  /// Runs every key across the pool; blocks until all have finished.
  /// Sequential baselines are scheduled first so workers do not pile up
  /// waiting on a shared baseline.  Safe to call repeatedly; cached keys
  /// cost nothing.
  void prewarm(std::span<const ExpKey> keys);

  /// prewarm + ordered collection: results in input-key order.
  std::vector<const ExpResult*> run_all(std::span<const ExpKey> keys);

  /// The bench sweeps' cross product, in deterministic (app-major) order.
  static std::vector<ExpKey> cross(
      const std::vector<std::string>& apps,
      std::span<const ProtocolKind> protos, std::span<const std::size_t> grains,
      net::NotifyMode notify = net::NotifyMode::kPolling);

 private:
  Harness& h_;
  ThreadPool pool_;
};

}  // namespace dsm::harness
