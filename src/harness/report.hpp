// Paper-style reporting: relative efficiency / harmonic-mean statistics
// (§5.5) and the standard table shapes used by the bench binaries.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/experiment.hpp"

namespace dsm::harness {

double harmonic_mean(std::span<const double> xs);

/// §5.5 statistics over a set of applications.  speedup(app, p, g) feeds
/// from a Harness; MAX(a) and the RE/HM combinations follow the paper.
class HmAnalysis {
 public:
  /// Original-version analysis (Table 16): one version per application.
  static HmAnalysis over_apps(Harness& h, const std::vector<std::string>& apps);
  /// Best-version analysis (Table 17): for each (p, g), the best speedup
  /// among an application's versions counts.
  static HmAnalysis over_groups(Harness& h,
                                const std::vector<std::vector<std::string>>& groups);

  /// HM of RE over apps for a fixed (protocol, granularity).
  double hm(ProtocolKind p, std::size_t g) const;
  /// HM for a fixed protocol, best granularity per application.
  double hm_gbest(ProtocolKind p) const;
  /// HM for a fixed granularity, best protocol per application.
  double hm_pbest(std::size_t g) const;
  /// HM with both free per application (1.0 by construction).
  double hm_best() const;

  /// Renders the full Table 16/17 shape.
  Table render(const std::string& title) const;

 private:
  // speed_[app][proto][gran]
  std::vector<std::array<std::array<double, 4>, 3>> speed_;
  static int pidx(ProtocolKind p) { return static_cast<int>(p); }
  static int gidx(std::size_t g);
  double max_of(std::size_t app) const;
};

/// Stacked execution-time breakdown (the paper's Figures 3-6 shape): one
/// row per labeled run, mean-over-nodes percentage of virtual time per
/// category.  Rows with an empty Breakdown (trace off) render as dashes.
Table breakdown_table(
    const std::string& title,
    const std::vector<std::pair<std::string, trace::Breakdown>>& rows);

/// The same rows as CSV: label,<one fraction column per category>.
std::string breakdown_rows_csv(
    const std::vector<std::pair<std::string, trace::Breakdown>>& rows);

/// Service-latency table: one row per labeled run with request counts,
/// p50/p99/p999 (µs of virtual time), and offered vs achieved throughput.
/// Rows without a latency digest (batch apps) render as dashes.
Table service_table(
    const std::string& title,
    const std::vector<std::pair<std::string, const ExpResult*>>& rows);

/// The same rows as CSV: label,requests,p50_us,p99_us,p999_us,max_us,
/// offered_rps,achieved_rps,checksum.
std::string service_rows_csv(
    const std::vector<std::pair<std::string, const ExpResult*>>& rows);

/// Prints one application's Figure-1 style speedup series.
void print_speedup_series(Harness& h, const std::string& app,
                          net::NotifyMode notify = net::NotifyMode::kPolling);

/// Prints a paper Tables 3-14 style read/write fault table for one app.
void print_fault_table(Harness& h, const std::string& app);

}  // namespace dsm::harness
