#include "harness/report.hpp"

#include <algorithm>
#include <cmath>

namespace dsm::harness {

double harmonic_mean(std::span<const double> xs) {
  DSM_CHECK(!xs.empty());
  double denom = 0.0;
  for (double x : xs) {
    DSM_CHECK(x > 0.0);
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

int HmAnalysis::gidx(std::size_t g) {
  switch (g) {
    case 64: return 0;
    case 256: return 1;
    case 1024: return 2;
    case 4096: return 3;
  }
  DSM_CHECK_MSG(false, "granularity not in the paper's set");
}

HmAnalysis HmAnalysis::over_apps(Harness& h,
                                 const std::vector<std::string>& apps) {
  HmAnalysis a;
  for (const std::string& app : apps) {
    std::array<std::array<double, 4>, 3> s{};
    for (ProtocolKind p : kProtocols) {
      for (std::size_t g : kGrains) {
        s[static_cast<std::size_t>(pidx(p))]
         [static_cast<std::size_t>(gidx(g))] = h.speedup(app, p, g);
      }
    }
    a.speed_.push_back(s);
  }
  return a;
}

HmAnalysis HmAnalysis::over_groups(
    Harness& h, const std::vector<std::vector<std::string>>& groups) {
  HmAnalysis a;
  for (const auto& group : groups) {
    std::array<std::array<double, 4>, 3> s{};
    for (ProtocolKind p : kProtocols) {
      for (std::size_t g : kGrains) {
        double best = 0.0;
        for (const std::string& app : group) {
          best = std::max(best, h.speedup(app, p, g));
        }
        s[static_cast<std::size_t>(pidx(p))]
         [static_cast<std::size_t>(gidx(g))] = best;
      }
    }
    a.speed_.push_back(s);
  }
  return a;
}

double HmAnalysis::max_of(std::size_t app) const {
  double m = 0.0;
  for (const auto& row : speed_[app]) {
    for (double v : row) m = std::max(m, v);
  }
  return m;
}

double HmAnalysis::hm(ProtocolKind p, std::size_t g) const {
  std::vector<double> re;
  for (std::size_t a = 0; a < speed_.size(); ++a) {
    re.push_back(speed_[a][static_cast<std::size_t>(pidx(p))]
                          [static_cast<std::size_t>(gidx(g))] /
                 max_of(a));
  }
  return harmonic_mean(re);
}

double HmAnalysis::hm_gbest(ProtocolKind p) const {
  std::vector<double> re;
  for (std::size_t a = 0; a < speed_.size(); ++a) {
    double best = 0.0;
    for (double v : speed_[a][static_cast<std::size_t>(pidx(p))]) {
      best = std::max(best, v);
    }
    re.push_back(best / max_of(a));
  }
  return harmonic_mean(re);
}

double HmAnalysis::hm_pbest(std::size_t g) const {
  std::vector<double> re;
  for (std::size_t a = 0; a < speed_.size(); ++a) {
    double best = 0.0;
    for (const auto& row : speed_[a]) {
      best = std::max(best, row[static_cast<std::size_t>(gidx(g))]);
    }
    re.push_back(best / max_of(a));
  }
  return harmonic_mean(re);
}

double HmAnalysis::hm_best() const {
  std::vector<double> re;
  for (std::size_t a = 0; a < speed_.size(); ++a) re.push_back(1.0);
  return harmonic_mean(re);
}

Table HmAnalysis::render(const std::string& title) const {
  Table t({title, "64", "256", "1024", "4096", "g_best"});
  const char* names[] = {"SC", "SW-LRC", "HLRC"};
  for (ProtocolKind p : kProtocols) {
    std::vector<std::string> row{names[pidx(p)]};
    for (std::size_t g : kGrains) row.push_back(fmt(hm(p, g), 3));
    row.push_back(fmt(hm_gbest(p), 3));
    t.add_row(std::move(row));
  }
  std::vector<std::string> last{"p_best"};
  for (std::size_t g : kGrains) last.push_back(fmt(hm_pbest(g), 3));
  last.push_back(fmt(hm_best(), 3));
  t.add_row(std::move(last));
  return t;
}

Table breakdown_table(
    const std::string& title,
    const std::vector<std::pair<std::string, trace::Breakdown>>& rows) {
  std::vector<std::string> header{title};
  for (int c = 0; c < trace::kNumCats; ++c) {
    header.push_back(trace::to_string(static_cast<trace::Cat>(c)));
  }
  Table t(std::move(header));
  for (const auto& [label, bd] : rows) {
    std::vector<std::string> row{label};
    for (int c = 0; c < trace::kNumCats; ++c) {
      row.push_back(bd.empty()
                        ? "-"
                        : fmt(100.0 * bd.mean_frac(static_cast<trace::Cat>(c)),
                              1) +
                              "%");
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::string breakdown_rows_csv(
    const std::vector<std::pair<std::string, trace::Breakdown>>& rows) {
  std::string out = "label";
  for (int c = 0; c < trace::kNumCats; ++c) {
    out += ',';
    out += trace::to_string(static_cast<trace::Cat>(c));
  }
  out += '\n';
  for (const auto& [label, bd] : rows) {
    out += label;
    for (int c = 0; c < trace::kNumCats; ++c) {
      out += ',';
      out += bd.empty()
                 ? std::string("0")
                 : fmt(bd.mean_frac(static_cast<trace::Cat>(c)), 6);
    }
    out += '\n';
  }
  return out;
}

Table service_table(
    const std::string& title,
    const std::vector<std::pair<std::string, const ExpResult*>>& rows) {
  Table t({title, "requests", "p50 us", "p99 us", "p99.9 us", "max us",
           "offered/s", "achieved/s"});
  for (const auto& [label, r] : rows) {
    if (r == nullptr || !r->has_latency) {
      t.add_row({label, "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    const LatencySummary& l = r->latency;
    t.add_row({label, fmt_count(static_cast<std::int64_t>(l.requests)),
               fmt(static_cast<double>(l.p50_ns) / 1e3, 1),
               fmt(static_cast<double>(l.p99_ns) / 1e3, 1),
               fmt(static_cast<double>(l.p999_ns) / 1e3, 1),
               fmt(static_cast<double>(l.max_ns) / 1e3, 1),
               fmt_count(static_cast<std::int64_t>(l.offered_rps + 0.5)),
               fmt_count(static_cast<std::int64_t>(l.achieved_rps + 0.5))});
  }
  return t;
}

std::string service_rows_csv(
    const std::vector<std::pair<std::string, const ExpResult*>>& rows) {
  std::string out =
      "label,requests,p50_us,p99_us,p999_us,max_us,offered_rps,"
      "achieved_rps,checksum\n";
  for (const auto& [label, r] : rows) {
    if (r == nullptr || !r->has_latency) continue;
    const LatencySummary& l = r->latency;
    // Composite labels ("SvcKV,latency,s=0.9,...") carry commas; quote them
    // so the CSV stays one label column wide.
    if (label.find(',') != std::string::npos) {
      out += '"' + label + '"';
    } else {
      out += label;
    }
    out += ',' + std::to_string(l.requests);
    out += ',' + fmt(static_cast<double>(l.p50_ns) / 1e3, 3);
    out += ',' + fmt(static_cast<double>(l.p99_ns) / 1e3, 3);
    out += ',' + fmt(static_cast<double>(l.p999_ns) / 1e3, 3);
    out += ',' + fmt(static_cast<double>(l.max_ns) / 1e3, 3);
    out += ',' + fmt(l.offered_rps, 1);
    out += ',' + fmt(l.achieved_rps, 1);
    out += ',' + std::to_string(l.checksum);
    out += '\n';
  }
  return out;
}

void print_speedup_series(Harness& h, const std::string& app,
                          net::NotifyMode notify) {
  Table t({app + " (" + net::to_string(notify) + ")", "64", "256", "1024",
           "4096"});
  const char* names[] = {"SC", "SW-LRC", "HLRC"};
  for (ProtocolKind p : kProtocols) {
    std::vector<std::string> row{names[static_cast<int>(p)]};
    for (std::size_t g : kGrains) {
      row.push_back(fmt(h.speedup(app, p, g, notify), 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::puts("");
}

void print_fault_table(Harness& h, const std::string& app) {
  Table t({"Fault", "Protocol", "64", "256", "1024", "4096"});
  const char* names[] = {"SC", "SW-LRC", "HLRC"};
  for (int kind = 0; kind < 2; ++kind) {
    for (ProtocolKind p : kProtocols) {
      std::vector<std::string> row;
      row.push_back(kind == 0 ? (p == ProtocolKind::kSC ? "Read" : "")
                              : (p == ProtocolKind::kSC ? "Write" : ""));
      row.push_back(names[static_cast<int>(p)]);
      for (std::size_t g : kGrains) {
        const auto& r = h.run(app, p, g);
        const double v =
            kind == 0 ? r.stats.per_node(&NodeStats::remote_read_faults)
                      : r.stats.per_node(&NodeStats::remote_write_faults);
        row.push_back(fmt_count(static_cast<std::int64_t>(v + 0.5)));
      }
      t.add_row(std::move(row));
    }
  }
  t.print();
  std::puts("");
}

}  // namespace dsm::harness
