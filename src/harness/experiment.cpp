#include "harness/experiment.hpp"

#include <chrono>
#include <cstdio>

namespace dsm::harness {

const std::vector<std::string>& original_apps() {
  static const std::vector<std::string> v = {
      "LU",           "Ocean-Original",   "FFT",
      "Water-Nsquared", "Volrend-Original", "Water-Spatial",
      "Raytrace",     "Barnes-Original"};
  return v;
}

const std::vector<std::vector<std::string>>& app_version_groups() {
  // One group per application; Water-Spatial and Water-Nsquared stay
  // separate ("different algorithms and may produce different results" —
  // paper footnote 1).
  static const std::vector<std::vector<std::string>> v = {
      {"LU"},
      {"Ocean-Original", "Ocean-Rowwise"},
      {"FFT"},
      {"Water-Nsquared"},
      {"Volrend-Original", "Volrend-Rowwise"},
      {"Water-Spatial"},
      {"Raytrace"},
      {"Barnes-Original", "Barnes-Partree", "Barnes-Spatial"},
  };
  return v;
}

DsmConfig Harness::make_config(const apps::AppInfo& info, ProtocolKind proto,
                               std::size_t gran, net::NotifyMode notify,
                               int nodes) const {
  DsmConfig c;
  c.nodes = nodes;
  c.protocol = proto;
  c.granularity = gran;
  c.notify = notify;
  c.seed = seed_;
  c.poll_dilation = info.poll_dilation;
  c.first_touch = first_touch_;
  c.write_tracking = write_tracking_;
  switch (scale_) {
    case apps::Scale::kTiny: c.shared_bytes = 8u << 20; break;
    case apps::Scale::kSmall: c.shared_bytes = 16u << 20; break;
    case apps::Scale::kDefault: c.shared_bytes = 32u << 20; break;
  }
  return c;
}

namespace {
// One line per experiment; serialized so pool workers cannot interleave.
std::mutex g_progress_mu;
}  // namespace

SimTime Harness::sequential_time(const std::string& app) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      const auto it = seq_cache_.find(app);
      if (it != seq_cache_.end()) return it->second;
      if (seq_inflight_.insert(app).second) break;  // we simulate it
      cv_.wait(lk);  // someone else is; wait for their result
    }
  }
  const apps::AppInfo* info = apps::find_app(app);
  DSM_CHECK_MSG(info != nullptr, "unknown application");
  auto inst = info->make(scale_);
  // One node, no polling instrumentation (the paper's sequential runs are
  // uninstrumented binaries).
  DsmConfig c = make_config(*info, ProtocolKind::kSC, 4096,
                            net::NotifyMode::kInterrupt, 1);
  RunResult r;
  {
    // Reserved only while simulating — cached and deduped-waiting callers
    // above never hold budget.
    MemReservation reservation(mem_budget_, estimated_run_bytes(c));
    Runtime rt(c);
    r = rt.run(*inst);
  }
  const std::string v = inst->verify();
  DSM_CHECK_MSG(v.empty(), "sequential baseline failed verification");
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq_cache_[app] = r.parallel_time;
    seq_inflight_.erase(app);
  }
  cv_.notify_all();
  return r.parallel_time;
}

const ExpResult& Harness::run(const std::string& app, ProtocolKind proto,
                              std::size_t gran, net::NotifyMode notify) {
  const ExpKey key{app, proto, gran, notify};
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
      if (inflight_.insert(key).second) break;  // we simulate it
      cv_.wait(lk);
    }
  }

  const apps::AppInfo* info = apps::find_app(app);
  DSM_CHECK_MSG(info != nullptr, "unknown application");
  if (progress_) {
    std::lock_guard<std::mutex> lk(g_progress_mu);
    std::fprintf(stderr, "  [run] %-18s %-7s %4zuB %s...\n", app.c_str(),
                 to_string(proto), gran, net::to_string(notify));
  }
  auto inst = info->make(scale_);
  DsmConfig c = make_config(*info, proto, gran, notify, nodes_);
  RunResult r;
  double host_seconds = 0.0;
  {
    MemReservation reservation(mem_budget_, estimated_run_bytes(c));
    Runtime rt(c);
    const auto t0 = std::chrono::steady_clock::now();
    r = rt.run(*inst);
    host_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }

  ExpResult res;
  res.parallel_time = r.parallel_time;
  res.host_seconds = host_seconds;
  res.stats = r.stats;
  res.verify_msg = inst->verify();
  res.verified = res.verify_msg.empty();
  DSM_CHECK_MSG(res.verified, "experiment failed verification");
  // May itself wait on another thread computing the same baseline; no lock
  // is held here, so that cannot deadlock.
  res.speedup = static_cast<double>(sequential_time(app)) /
                static_cast<double>(r.parallel_time);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = cache_.emplace(key, std::move(res)).first;
    inflight_.erase(key);
    cv_.notify_all();
    return it->second;
  }
}

}  // namespace dsm::harness
