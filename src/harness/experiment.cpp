#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/arena.hpp"

namespace dsm::harness {

const std::vector<std::string>& original_apps() {
  static const std::vector<std::string> v = {
      "LU",           "Ocean-Original",   "FFT",
      "Water-Nsquared", "Volrend-Original", "Water-Spatial",
      "Raytrace",     "Barnes-Original"};
  return v;
}

const std::vector<std::vector<std::string>>& app_version_groups() {
  // One group per application; Water-Spatial and Water-Nsquared stay
  // separate ("different algorithms and may produce different results" —
  // paper footnote 1).
  static const std::vector<std::vector<std::string>> v = {
      {"LU"},
      {"Ocean-Original", "Ocean-Rowwise"},
      {"FFT"},
      {"Water-Nsquared"},
      {"Volrend-Original", "Volrend-Rowwise"},
      {"Water-Spatial"},
      {"Raytrace"},
      {"Barnes-Original", "Barnes-Partree", "Barnes-Spatial"},
  };
  return v;
}

DsmConfig Harness::make_config(const apps::AppInfo& info, ProtocolKind proto,
                               std::size_t gran, net::NotifyMode notify,
                               int nodes) const {
  DsmConfig c;
  c.nodes = nodes;
  c.protocol = proto;
  c.granularity = gran;
  c.notify = notify;
  c.seed = seed_;
  c.poll_dilation = info.poll_dilation;
  c.first_touch = first_touch_;
  c.write_tracking = write_tracking_;
  c.event_queue = event_queue_;
  c.block_state = block_state_;
  c.sim_par = sim_par_;
  c.sim_par_workers = sim_par_workers_;
  c.gc = gc_;
  c.gc_threshold_bytes = gc_threshold_bytes_;
  c.trace_mode = trace_;
  switch (scale_) {
    case apps::Scale::kTiny: c.shared_bytes = 8u << 20; break;
    case apps::Scale::kSmall: c.shared_bytes = 16u << 20; break;
    case apps::Scale::kDefault: c.shared_bytes = 32u << 20; break;
  }
  return c;
}

namespace {
// One line per experiment; serialized so pool workers cannot interleave.
std::mutex g_progress_mu;
}  // namespace

SimTime Harness::sequential_time(const std::string& app) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      const auto it = seq_cache_.find(app);
      if (it != seq_cache_.end()) return it->second;
      if (seq_inflight_.insert(app).second) break;  // we simulate it
      cv_.wait(lk);  // someone else is; wait for their result
    }
  }
  const apps::AppInfo* info = apps::find_app(app);
  DSM_CHECK_MSG(info != nullptr, "unknown application");
  // Private copy of the args: consumption marks are not thread-safe on a
  // shared instance, and pool workers run baselines concurrently.
  apps::AppArgs args;
  {
    std::lock_guard<std::mutex> lk(mu_);
    args = app_args_;
  }
  auto inst = info->make_checked(scale_, args);
  // One node, no polling instrumentation (the paper's sequential runs are
  // uninstrumented binaries).
  DsmConfig c = make_config(*info, ProtocolKind::kSC, 4096,
                            net::NotifyMode::kInterrupt, 1);
  RunResult r;
  {
    // Reserved only while simulating — cached and deduped-waiting callers
    // above never hold budget.
    MemReservation reservation(mem_budget_, estimated_run_bytes(c));
    Runtime rt(c);
    r = rt.run(*inst);
  }
  // The Runtime (and every arena-backed buffer in it) is gone; rewind this
  // worker's arena so the next simulation reuses its slabs from offset 0.
  Arena::reset_current();
  const std::string v = inst->verify();
  DSM_CHECK_MSG(v.empty(), "sequential baseline failed verification");
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq_cache_[app] = r.parallel_time;
    seq_inflight_.erase(app);
  }
  cv_.notify_all();
  return r.parallel_time;
}

const ExpResult& Harness::run(const std::string& app, ProtocolKind proto,
                              std::size_t gran, net::NotifyMode notify) {
  const ExpKey key{app, proto, gran, notify};
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
      if (inflight_.insert(key).second) break;  // we simulate it
      cv_.wait(lk);
    }
  }

  const apps::AppInfo* info = apps::find_app(app);
  DSM_CHECK_MSG(info != nullptr, "unknown application");
  if (progress_) {
    std::lock_guard<std::mutex> lk(g_progress_mu);
    std::fprintf(stderr, "  [run] %-18s %-7s %4zuB %s...\n", app.c_str(),
                 to_string(proto), gran, net::to_string(notify));
  }
  apps::AppArgs args;
  {
    std::lock_guard<std::mutex> lk(mu_);
    args = app_args_;
  }
  auto inst = info->make_checked(scale_, args);
  DsmConfig c = make_config(*info, proto, gran, notify, nodes_);
  RunResult r;
  double host_seconds = 0.0;
  {
    // Reservation size: the measured footprint of earlier runs of this
    // (app, granularity) when one exists, else the static estimate.
    MemReservation reservation(mem_budget_, reservation_bytes(app, c));
    Runtime rt(c);
    const auto t0 = std::chrono::steady_clock::now();
    r = rt.run(*inst);
    host_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }
  // All arena-backed buffers died with the Runtime; rewind the worker's
  // arena so the next run on this thread starts from recycled slabs.
  Arena::reset_current();
  record_footprint(app, c, r.stats);

  ExpResult res;
  res.parallel_time = r.parallel_time;
  res.host_seconds = host_seconds;
  res.stats = r.stats;
  res.breakdown = std::move(r.breakdown);
  res.verify_msg = inst->verify();
  res.verified = res.verify_msg.empty();
  if (const LatencySummary* lat = inst->latency()) {
    res.has_latency = true;
    res.latency = *lat;
  }
  if (!res.verified) {
    std::fprintf(stderr, "verification failed: %s %s %zuB %d nodes: %s\n",
                 app.c_str(), to_string(proto), gran, nodes_,
                 res.verify_msg.c_str());
  }
  DSM_CHECK_MSG(res.verified, "experiment failed verification");
  // May itself wait on another thread computing the same baseline; no lock
  // is held here, so that cannot deadlock.
  res.speedup = static_cast<double>(sequential_time(app)) /
                static_cast<double>(r.parallel_time);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = cache_.emplace(key, std::move(res)).first;
    inflight_.erase(key);
    cv_.notify_all();
    return it->second;
  }
}

std::uint64_t Harness::reservation_bytes(const std::string& app,
                                         const DsmConfig& c) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = measured_bytes_.find({app, c.granularity});
  if (it != measured_bytes_.end()) return it->second;
  // No run at this granularity yet: the largest measured footprint of the
  // same app at any granularity is still a better predictor than the
  // static formula (protocol metadata scales with the app's sharing, not
  // with the address-space size).
  std::uint64_t best = 0;
  for (const auto& [key, v] : measured_bytes_) {
    if (key.first == app) best = std::max(best, v);
  }
  return best != 0 ? best : estimated_run_bytes(c);
}

void Harness::record_footprint(const std::string& app, const DsmConfig& c,
                               const RunStats& s) {
  // Deterministic peak host footprint of the finished run: the static
  // regions every run of this config commits (copy regions, backing image,
  // stacks) plus the dynamic pieces the run actually grew (protocol
  // metadata, twins, dirty bitmaps).  Derived from RunStats rather than
  // process RSS so -jN workers cannot pollute each other's measurements.
  const std::uint64_t measured = estimated_run_bytes(c) +
                                 s.protocol_meta_bytes + s.peak_twin_bytes +
                                 s.peak_bitmap_bytes;
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = measured_bytes_[{app, c.granularity}];
  slot = std::max(slot, measured);
}

std::uint64_t Harness::reservation_bytes_for(const ExpKey& k) {
  const apps::AppInfo* info = apps::find_app(k.app);
  DSM_CHECK_MSG(info != nullptr, "unknown application");
  const DsmConfig c = make_config(*info, k.proto, k.gran, k.notify, nodes_);
  return reservation_bytes(k.app, c);
}

double Harness::profile_seconds(const ExpKey& k) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = cache_.find(k);
  if (it != cache_.end()) return it->second.host_seconds;
  const auto pit = profile_.find({k.app, to_string(k.proto), k.gran});
  return pit != profile_.end() ? pit->second : 0.0;
}

void Harness::load_profile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  // Minimal scan of wallclock_sweep's own output (it writes the
  // "slowest_runs" entries in a fixed field order); anything that does not
  // match is skipped rather than diagnosed — a profile is a hint.
  std::size_t pos = text.find("\"slowest_runs\"");
  if (pos == std::string::npos) return;
  const std::size_t end = text.find(']', pos);
  std::lock_guard<std::mutex> lk(mu_);
  while (true) {
    pos = text.find('{', pos);
    if (pos == std::string::npos || (end != std::string::npos && pos > end)) {
      break;
    }
    char app[64] = {0};
    char proto[32] = {0};
    std::size_t gran = 0;
    double secs = 0.0;
    if (std::sscanf(text.c_str() + pos,
                    "{\"app\": \"%63[^\"]\", \"protocol\": \"%31[^\"]\", "
                    "\"gran\": %zu, \"seconds\": %lf",
                    app, proto, &gran, &secs) == 4) {
      profile_[{app, proto, gran}] = secs;
    }
    ++pos;
  }
}

}  // namespace dsm::harness
