// Experiment driver for the paper's evaluation: runs (application,
// protocol, granularity, notification) combinations on the simulated
// 16-node cluster, caches sequential baselines, and computes speedups.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "apps/app_base.hpp"
#include "runtime/runtime.hpp"

namespace dsm::harness {

inline constexpr std::size_t kGrains[] = {64, 256, 1024, 4096};
inline constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kSC, ProtocolKind::kSWLRC, ProtocolKind::kHLRC};

/// The paper's 8 "original" applications (§5.5 first analysis) and the
/// mapping from each original to its restructured versions (Table 17's
/// best-version analysis).
const std::vector<std::string>& original_apps();
const std::vector<std::vector<std::string>>& app_version_groups();

struct ExpKey {
  std::string app;
  ProtocolKind proto;
  std::size_t gran;
  net::NotifyMode notify;
  auto operator<=>(const ExpKey&) const = default;
};

struct ExpResult {
  SimTime parallel_time = 0;
  double speedup = 0.0;
  RunStats stats;
  bool verified = false;
  std::string verify_msg;
};

/// Runs experiments with per-(app, config) caching inside one process.
class Harness {
 public:
  explicit Harness(apps::Scale scale, int nodes = 16,
                   std::uint64_t seed = 0x1997'0616ULL)
      : scale_(scale), nodes_(nodes), seed_(seed) {}

  /// DSM run; verified against the sequential reference (aborts loudly on
  /// a mismatch — a wrong number must never make it into a table).
  const ExpResult& run(const std::string& app, ProtocolKind proto,
                       std::size_t gran,
                       net::NotifyMode notify = net::NotifyMode::kPolling);

  /// Uniprocessor baseline time (1 node, no polling instrumentation).
  SimTime sequential_time(const std::string& app);

  double speedup(const std::string& app, ProtocolKind proto, std::size_t gran,
                 net::NotifyMode notify = net::NotifyMode::kPolling) {
    return run(app, proto, gran, notify).speedup;
  }

  /// First-touch ablation toggle for subsequent runs.
  void set_first_touch(bool on) { first_touch_ = on; cache_.clear(); }

  apps::Scale scale() const { return scale_; }
  int nodes() const { return nodes_; }

  /// Quiet progress logging to stderr (default on for long benches).
  void set_progress(bool p) { progress_ = p; }

 private:
  DsmConfig make_config(const apps::AppInfo& info, ProtocolKind proto,
                        std::size_t gran, net::NotifyMode notify,
                        int nodes) const;

  apps::Scale scale_;
  int nodes_;
  std::uint64_t seed_;
  bool first_touch_ = true;
  bool progress_ = true;
  std::map<ExpKey, ExpResult> cache_;
  std::map<std::string, SimTime> seq_cache_;
};

}  // namespace dsm::harness
