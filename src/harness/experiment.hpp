// Experiment driver for the paper's evaluation: runs (application,
// protocol, granularity, notification) combinations on the simulated
// 16-node cluster, caches sequential baselines, and computes speedups.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/app_base.hpp"
#include "common/mem_budget.hpp"
#include "runtime/runtime.hpp"

namespace dsm::harness {

inline constexpr std::size_t kGrains[] = {64, 256, 1024, 4096};
inline constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kSC, ProtocolKind::kSWLRC, ProtocolKind::kHLRC};

/// The paper's 8 "original" applications (§5.5 first analysis) and the
/// mapping from each original to its restructured versions (Table 17's
/// best-version analysis).
const std::vector<std::string>& original_apps();
const std::vector<std::vector<std::string>>& app_version_groups();

struct ExpKey {
  std::string app;
  ProtocolKind proto;
  std::size_t gran;
  net::NotifyMode notify;
  auto operator<=>(const ExpKey&) const = default;
};

struct ExpResult {
  SimTime parallel_time = 0;
  double speedup = 0.0;
  RunStats stats;
  bool verified = false;
  std::string verify_msg;
  /// Host wall-clock of the simulation itself (Runtime::run only — no
  /// queueing, verification, or baseline time).  NOT deterministic; never
  /// part of bitwise result comparisons.  Benches use it for the slowest-
  /// combination breakdown.
  double host_seconds = 0.0;
  /// Virtual-time execution breakdown; empty unless set_trace() enabled
  /// tracing for this run.  Kept out of RunStats so the stats stay bitwise
  /// identical across trace modes.
  trace::Breakdown breakdown;
  /// Request-latency digest when the app is service-style (App::latency()
  /// non-null); !valid for the batch apps.  Host-side like the breakdown —
  /// RunStats is untouched, so the existing identity gates keep holding —
  /// but itself bitwise deterministic and compared by the service gates.
  bool has_latency = false;
  LatencySummary latency;
};

/// Runs experiments with per-(app, config) caching inside one process.
///
/// Thread-safe: run() and sequential_time() may be called concurrently
/// (e.g. from ParallelHarness pool workers).  Concurrent requests for the
/// same key dedupe — one caller simulates, the rest wait on the result.
/// Returned references stay valid for the Harness's lifetime (map nodes
/// are stable) unless set_first_touch() clears the cache; do not toggle
/// first-touch while runs are in flight.
class Harness {
 public:
  explicit Harness(apps::Scale scale, int nodes = 16,
                   std::uint64_t seed = 0x1997'0616ULL)
      : scale_(scale), nodes_(nodes), seed_(seed) {}

  /// DSM run; verified against the sequential reference (aborts loudly on
  /// a mismatch — a wrong number must never make it into a table).
  const ExpResult& run(const std::string& app, ProtocolKind proto,
                       std::size_t gran,
                       net::NotifyMode notify = net::NotifyMode::kPolling);

  const ExpResult& run(const ExpKey& k) {
    return run(k.app, k.proto, k.gran, k.notify);
  }

  /// Uniprocessor baseline time (1 node, no polling instrumentation).
  SimTime sequential_time(const std::string& app);

  double speedup(const std::string& app, ProtocolKind proto, std::size_t gran,
                 net::NotifyMode notify = net::NotifyMode::kPolling) {
    return run(app, proto, gran, notify).speedup;
  }

  /// First-touch ablation toggle for subsequent runs.  Not safe while
  /// other threads are inside run().
  void set_first_touch(bool on) {
    std::lock_guard<std::mutex> lk(mu_);
    first_touch_ = on;
    cache_.clear();
  }

  /// Write-tracking mode for subsequent runs (same caveats as
  /// set_first_touch).  kTwinScan vs kTwinBitmap is a host-side-only
  /// change, but the cache is cleared so A/B benches re-simulate.
  void set_write_tracking(WriteTracking w) {
    std::lock_guard<std::mutex> lk(mu_);
    write_tracking_ = w;
    cache_.clear();
  }

  /// Engine backends for subsequent runs (same caveats as
  /// set_first_touch).  Both are host-side-only — simulated results are
  /// bitwise identical across backends — but the cache is cleared so A/B
  /// benches re-simulate.
  void set_event_queue(sim::EventQueueKind k) {
    std::lock_guard<std::mutex> lk(mu_);
    event_queue_ = k;
    cache_.clear();
  }
  void set_block_state(mem::BlockStateKind k) {
    std::lock_guard<std::mutex> lk(mu_);
    block_state_ = k;
    cache_.clear();
  }

  /// Parallel-DES mode for subsequent runs (same caveats as
  /// set_first_touch).  Host-side only — window execution is bitwise
  /// identical to the serial loop — but the cache is cleared so A/B
  /// benches re-simulate.  `workers` as DsmConfig::sim_par_workers.
  void set_sim_par(sim::SimPar p, int workers = 0) {
    std::lock_guard<std::mutex> lk(mu_);
    sim_par_ = p;
    sim_par_workers_ = workers;
    cache_.clear();
  }

  /// MW-LRC barrier GC for subsequent runs (same caveats as
  /// set_first_touch).  Simulated results are bitwise identical across
  /// modes by construction; the cache is cleared so gc on/off A/B benches
  /// re-simulate and report their own memory telemetry.
  void set_gc(GcMode g, std::uint64_t threshold_bytes = 64u << 10) {
    std::lock_guard<std::mutex> lk(mu_);
    gc_ = g;
    gc_threshold_bytes_ = threshold_bytes;
    cache_.clear();
  }

  /// Application parameters (key=value channel) for subsequent runs.
  /// Clears BOTH caches — different parameters are a different workload,
  /// so cached results and sequential baselines are invalid.  Same
  /// caveats as set_first_touch.
  void set_app_args(const apps::AppArgs& a) {
    std::lock_guard<std::mutex> lk(mu_);
    app_args_ = a;
    cache_.clear();
    seq_cache_.clear();
  }

  /// Trace mode for subsequent runs (same caveats as set_first_touch).
  /// Tracing is host-side only — simulated results are identical in every
  /// mode — but the cache is cleared so A/B benches re-simulate and so a
  /// breakdown request actually produces breakdowns.
  void set_trace(trace::Mode m) {
    std::lock_guard<std::mutex> lk(mu_);
    trace_ = m;
    cache_.clear();
  }

  /// Admission control: when set, every simulation reserves its expected
  /// footprint for the duration of Runtime::run — the static
  /// estimated_run_bytes before anything has run, then the measured
  /// footprint of earlier runs of the same (app, granularity) once
  /// available (record_footprint).  The budget must outlive the Harness;
  /// nullptr disables (default).
  void set_mem_budget(MemBudget* b) { mem_budget_ = b; }

  /// Loads a host-seconds profile from a prior wallclock_sweep run
  /// (BENCH_wallclock.json, "slowest_runs").  Feeds the parallel
  /// executor's longest-jobs-first ordering; a missing or garbled file is
  /// silently ignored (the sweep just falls back to size estimates).
  void load_profile(const std::string& path);

  /// Best-known host seconds for a key: a completed in-process run's
  /// host_seconds, else the persisted profile, else 0 (unknown).
  double profile_seconds(const ExpKey& k);

  /// Bytes the admission control would reserve for this key right now:
  /// measured footprint from earlier runs when available, else the static
  /// estimate.  Also the longest-jobs-first fallback ordering criterion.
  std::uint64_t reservation_bytes_for(const ExpKey& k);

  apps::Scale scale() const { return scale_; }
  int nodes() const { return nodes_; }

  /// Quiet progress logging to stderr (default on for long benches).
  void set_progress(bool p) { progress_ = p; }

 private:
  DsmConfig make_config(const apps::AppInfo& info, ProtocolKind proto,
                        std::size_t gran, net::NotifyMode notify,
                        int nodes) const;
  std::uint64_t reservation_bytes(const std::string& app, const DsmConfig& c);
  void record_footprint(const std::string& app, const DsmConfig& c,
                        const RunStats& s);

  apps::Scale scale_;
  int nodes_;
  std::uint64_t seed_;
  apps::AppArgs app_args_;
  bool first_touch_ = true;
  WriteTracking write_tracking_ = WriteTracking::kTwinBitmap;
  sim::EventQueueKind event_queue_ = sim::EventQueueKind::kCalendar;
  mem::BlockStateKind block_state_ = mem::BlockStateKind::kSoA;
  sim::SimPar sim_par_ = sim::SimPar::kOff;
  int sim_par_workers_ = 0;
  GcMode gc_ = GcMode::kOff;
  std::uint64_t gc_threshold_bytes_ = 64u << 10;
  trace::Mode trace_ = trace::mode_from_env(trace::Mode::kOff);
  MemBudget* mem_budget_ = nullptr;
  bool progress_ = true;
  /// Guards the caches and in-flight sets; never held while simulating.
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<ExpKey> inflight_;
  std::set<std::string> seq_inflight_;
  std::map<ExpKey, ExpResult> cache_;
  std::map<std::string, SimTime> seq_cache_;
  /// Measured host footprint of completed runs, keyed (app, granularity);
  /// max-merged.  Deterministic (derived from RunStats, not process RSS,
  /// so concurrent workers cannot pollute each other's numbers).
  std::map<std::pair<std::string, std::size_t>, std::uint64_t> measured_bytes_;
  /// Persisted host-seconds profile, keyed (app, protocol name, gran).
  std::map<std::tuple<std::string, std::string, std::size_t>, double> profile_;
};

}  // namespace dsm::harness
