// Open-loop request generation and the shared skeleton of the service
// apps (svc_kv / svc_queue / svc_lease).
//
// Open-loop means arrivals are scheduled in virtual time *independent of
// service completion*: each simulated client draws its arrival instants up
// front from its own deterministic Rng stream, and a node that falls
// behind accumulates queueing delay — request latency is (completion now)
// - (scheduled arrival), exactly the quantity a saturating store degrades.
// Every latency sample is a difference of two virtual clock readings and
// the histogram is integer-only, so the merged digest is bitwise identical
// across --jobs, --sim-par=window, --alloc and --event-queue modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_base.hpp"
#include "common/histogram.hpp"
#include "common/zipf.hpp"

namespace dsm::svc {

/// Workload shape, preset per Scale and overridable through AppArgs.
struct LoadParams {
  std::uint64_t requests_per_node = 0;
  int clients_per_node = 0;
  double zipf_s = 0.9;
  double read_frac = 0.9;
  /// Mean arrival gap per client (virtual ns).
  SimTime mean_interarrival = 0;
  bool poisson = true;
  /// Key space (KV keys / queue ring selector / lease resources).
  std::size_t keys = 0;
  /// Lock stripes: hash-map segments, queue rings, lease lock stripes.
  int segments = 0;
  /// Hash-map slots per segment / queue ring capacity.
  int slots_per_segment = 0;

  static LoadParams preset(apps::Scale s);

  /// Overrides from the key=value channel: requests, clients, skew,
  /// read-frac, keys, segments, slots, arrivals=poisson|uniform, and
  /// rate (offered requests/s per node, converted to the per-client gap).
  void apply(const apps::AppArgs& a);

  /// Offered load in requests/s of virtual time, all nodes.
  double offered_rps(int nodes) const;
};

/// One node's merged arrival schedule: `clients_per_node` independent
/// processes, each with its own Rng stream, merged by arrival time
/// (ties broken by client index).  Pure host-side state owned by one
/// node's fiber — no sharing, no hidden inputs.
class OpenLoopGen {
 public:
  struct Req {
    SimTime at = 0;
    std::uint64_t key = 0;
    bool is_read = false;
  };

  OpenLoopGen(std::uint64_t seed, int node, const LoadParams& p,
              const ZipfSampler& zipf);

  Req next();

 private:
  struct Client {
    Rng rng;
    SimTime next_at = 0;
  };
  SimTime draw_gap(Client& c) const;

  const LoadParams& p_;
  const ZipfSampler& zipf_;
  std::vector<Client> clients_;
};

/// Base class of the three service apps: drives the open-loop schedule,
/// records per-node latency histograms (distinct pre-sized elements, so
/// parallel-DES window batches never share state), and merges them in
/// node order into the LatencySummary the harness reports.
class SvcAppBase : public App {
 public:
  SvcAppBase(apps::Scale scale, const apps::AppArgs& args);

  void setup(SetupCtx& s) final;
  void node_main(Context& ctx) final;
  std::string verify() final;
  const LatencySummary* latency() const final { return &summary_; }

  const LoadParams& params() const { return p_; }

 protected:
  /// Simulated per-request CPU cost (parse + dispatch) before the store
  /// operation itself.
  static constexpr SimTime kRequestCpu = 800;

  virtual void service_setup(SetupCtx& s) = 0;
  virtual void serve(Context& ctx, int me, std::uint64_t seq,
                     const OpenLoopGen::Req& r) = 0;
  /// Node 0 result gathering, after stop_timer (the final barrier made
  /// every write visible).
  virtual void gather(Context& ctx) = 0;
  virtual std::string service_verify() = 0;

  LoadParams p_;
  std::uint64_t seed_ = 0;
  int nodes_ = 0;
  ZipfSampler zipf_;

 private:
  std::vector<LogHistogram> hist_;   // one per node
  std::vector<SimTime> end_ns_;      // per-node last completion
  LatencySummary summary_;
};

}  // namespace dsm::svc
