// Fixed-capacity open-addressing hash map in DSM shared memory.
//
// The table is split into `segments` independently locked regions of
// `slots_per_segment` contiguous 64-byte slots; a key hashes to one
// segment and probes linearly inside it, so an operation takes exactly one
// lock and touches one slot run.  Slots are 64-byte aligned and every
// field access is an 8-byte word inside the slot, so no access straddles a
// coherence block at any grain >= 64B.  Coherence granularity then
// controls false sharing directly: at 4096B one block holds 64 slots (and
// many segments), at 256B only 4 — the knob the service figures sweep.
//
// Slot layout (64B):
//   +0   key word: key+1, 0 = empty
//   +8   payload
//   +16  integrity word: mix(key word ^ payload), written with the payload
//        under the same lock.  A coherence bug that delivers a stale or
//        torn payload against a newer key breaks the equation, so the
//        post-run scan doubles as a protocol checker.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace dsm::svc {

class DsmHashMap {
 public:
  static constexpr std::size_t kSlotBytes = 64;

  enum class PutOutcome { kInserted, kUpdated, kFull };

  struct ScanResult {
    std::uint64_t occupied = 0;
    std::uint64_t corrupt = 0;
  };

  void setup(SetupCtx& s, int segments, int slots_per_segment,
             LockId lock_base) {
    segments_ = segments;
    spseg_ = slots_per_segment;
    lock_base_ = lock_base;
    s.align_to_block();
    const std::size_t n = total_slots();
    base_ = s.alloc(n * kSlotBytes, kSlotBytes);
    for (std::size_t i = 0; i < n; ++i) {
      s.write<std::uint64_t>(slot_addr(i) + 0, 0);
      s.write<std::uint64_t>(slot_addr(i) + 8, 0);
      s.write<std::uint64_t>(slot_addr(i) + 16, 0);
    }
  }

  PutOutcome put(Context& c, std::uint64_t key, std::uint64_t payload) const {
    const std::uint64_t h = mix(key);
    const int seg = static_cast<int>(h % static_cast<std::uint64_t>(segments_));
    const int start =
        static_cast<int>((h >> 32) % static_cast<std::uint64_t>(spseg_));
    const std::uint64_t kw = key + 1;
    PutOutcome out = PutOutcome::kFull;
    c.lock(lock_base_ + seg);
    for (int p = 0; p < spseg_; ++p) {
      const GAddr a = slot_addr(static_cast<std::size_t>(seg) *
                                    static_cast<std::size_t>(spseg_) +
                                static_cast<std::size_t>((start + p) % spseg_));
      const std::uint64_t cur = c.load<std::uint64_t>(a);
      if (cur == kw || cur == 0) {
        if (cur == 0) c.store<std::uint64_t>(a, kw);
        c.store<std::uint64_t>(a + 8, payload);
        c.store<std::uint64_t>(a + 16, mix(kw ^ payload));
        out = cur == 0 ? PutOutcome::kInserted : PutOutcome::kUpdated;
        break;
      }
    }
    c.unlock(lock_base_ + seg);
    return out;
  }

  /// Returns true when the key is present; `corrupt` reports an integrity
  /// failure on the hit (always a protocol bug, never a valid state).
  bool get(Context& c, std::uint64_t key, std::uint64_t* payload,
           bool* corrupt) const {
    const std::uint64_t h = mix(key);
    const int seg = static_cast<int>(h % static_cast<std::uint64_t>(segments_));
    const int start =
        static_cast<int>((h >> 32) % static_cast<std::uint64_t>(spseg_));
    const std::uint64_t kw = key + 1;
    bool found = false;
    *corrupt = false;
    c.lock(lock_base_ + seg);
    for (int p = 0; p < spseg_; ++p) {
      const GAddr a = slot_addr(static_cast<std::size_t>(seg) *
                                    static_cast<std::size_t>(spseg_) +
                                static_cast<std::size_t>((start + p) % spseg_));
      const std::uint64_t cur = c.load<std::uint64_t>(a);
      if (cur == 0) break;
      if (cur == kw) {
        *payload = c.load<std::uint64_t>(a + 8);
        *corrupt = c.load<std::uint64_t>(a + 16) != mix(kw ^ *payload);
        found = true;
        break;
      }
    }
    c.unlock(lock_base_ + seg);
    return found;
  }

  /// Post-run integrity scan (node 0, after stop_timer: the final barrier
  /// made every write visible, so plain loads see the whole table).
  ScanResult scan(Context& c) const {
    ScanResult r;
    for (std::size_t i = 0; i < total_slots(); ++i) {
      const GAddr a = slot_addr(i);
      const std::uint64_t kw = c.load<std::uint64_t>(a);
      if (kw == 0) continue;
      ++r.occupied;
      const std::uint64_t payload = c.load<std::uint64_t>(a + 8);
      if (c.load<std::uint64_t>(a + 16) != mix(kw ^ payload)) ++r.corrupt;
    }
    return r;
  }

  std::size_t total_slots() const {
    return static_cast<std::size_t>(segments_) *
           static_cast<std::size_t>(spseg_);
  }

 private:
  static std::uint64_t mix(std::uint64_t v) {
    std::uint64_t st = v;
    return splitmix64(st);
  }
  GAddr slot_addr(std::size_t i) const { return base_ + i * kSlotBytes; }

  GAddr base_ = kNullGAddr;
  int segments_ = 0;
  int spseg_ = 0;
  LockId lock_base_ = 0;
};

}  // namespace dsm::svc
