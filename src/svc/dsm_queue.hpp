// MPMC ring queues in DSM shared memory.
//
// `rings` independent bounded rings, each guarded by one lock.  The
// head/tail counters of all rings are packed together (two 64-byte lines
// per ring, heads and tails interleaved), so at a 4096B grain up to 32
// ring headers share one coherence block and independent rings false-share
// their hottest words — at 256B only 2 do.  Item slots are 64 bytes:
//   +0  item payload
//   +8  integrity word mix(item), written with the item under the lock.
// All accesses are 8-byte words inside 64B-aligned units: nothing
// straddles a block at any grain >= 64B.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace dsm::svc {

class DsmQueue {
 public:
  static constexpr std::size_t kSlotBytes = 64;

  struct DrainResult {
    std::uint64_t remaining = 0;
    std::uint64_t sum = 0;
    std::uint64_t xr = 0;
    std::uint64_t corrupt = 0;
  };

  void setup(SetupCtx& s, int rings, int capacity, LockId lock_base) {
    rings_ = rings;
    cap_ = capacity;
    lock_base_ = lock_base;
    s.align_to_block();
    // Header region: ring r's head at r*128, tail at r*128 + 64.
    hdr_ = s.alloc(static_cast<std::size_t>(rings) * 128, kSlotBytes);
    s.align_to_block();
    slots_ = s.alloc(static_cast<std::size_t>(rings) *
                         static_cast<std::size_t>(capacity) * kSlotBytes,
                     kSlotBytes);
    for (int r = 0; r < rings; ++r) {
      s.write<std::uint64_t>(head_addr(r), 0);
      s.write<std::uint64_t>(tail_addr(r), 0);
      for (int i = 0; i < capacity; ++i) {
        s.write<std::uint64_t>(slot_addr(r, i) + 0, 0);
        s.write<std::uint64_t>(slot_addr(r, i) + 8, 0);
      }
    }
  }

  /// False when the ring is full (the item is dropped; callers count it).
  bool enqueue(Context& c, int ring, std::uint64_t item) const {
    bool ok = false;
    c.lock(lock_base_ + ring);
    const std::uint64_t tail = c.load<std::uint64_t>(tail_addr(ring));
    const std::uint64_t head = c.load<std::uint64_t>(head_addr(ring));
    if (tail - head < static_cast<std::uint64_t>(cap_)) {
      const GAddr a = slot_addr(
          ring, static_cast<int>(tail % static_cast<std::uint64_t>(cap_)));
      c.store<std::uint64_t>(a + 0, item);
      c.store<std::uint64_t>(a + 8, mix(item));
      c.store<std::uint64_t>(tail_addr(ring), tail + 1);
      ok = true;
    }
    c.unlock(lock_base_ + ring);
    return ok;
  }

  /// False when the ring is empty.  `corrupt` flags an integrity failure
  /// on the dequeued item (always a protocol bug).
  bool dequeue(Context& c, int ring, std::uint64_t* item,
               bool* corrupt) const {
    bool ok = false;
    *corrupt = false;
    c.lock(lock_base_ + ring);
    const std::uint64_t head = c.load<std::uint64_t>(head_addr(ring));
    const std::uint64_t tail = c.load<std::uint64_t>(tail_addr(ring));
    if (head != tail) {
      const GAddr a = slot_addr(
          ring, static_cast<int>(head % static_cast<std::uint64_t>(cap_)));
      *item = c.load<std::uint64_t>(a + 0);
      *corrupt = c.load<std::uint64_t>(a + 8) != mix(*item);
      c.store<std::uint64_t>(head_addr(ring), head + 1);
      ok = true;
    }
    c.unlock(lock_base_ + ring);
    return ok;
  }

  /// Post-run drain (node 0, after stop_timer): order-independent digest
  /// of every item still queued, for the conservation check.
  DrainResult drain(Context& c) const {
    DrainResult d;
    for (int r = 0; r < rings_; ++r) {
      const std::uint64_t head = c.load<std::uint64_t>(head_addr(r));
      const std::uint64_t tail = c.load<std::uint64_t>(tail_addr(r));
      for (std::uint64_t i = head; i != tail; ++i) {
        const GAddr a = slot_addr(
            r, static_cast<int>(i % static_cast<std::uint64_t>(cap_)));
        const std::uint64_t item = c.load<std::uint64_t>(a + 0);
        ++d.remaining;
        d.sum += item;
        d.xr ^= item;
        if (c.load<std::uint64_t>(a + 8) != mix(item)) ++d.corrupt;
      }
    }
    return d;
  }

  int rings() const { return rings_; }

 private:
  static std::uint64_t mix(std::uint64_t v) {
    std::uint64_t st = v;
    return splitmix64(st);
  }
  GAddr head_addr(int r) const {
    return hdr_ + static_cast<std::size_t>(r) * 128;
  }
  GAddr tail_addr(int r) const {
    return hdr_ + static_cast<std::size_t>(r) * 128 + 64;
  }
  GAddr slot_addr(int r, int i) const {
    return slots_ + (static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(cap_) +
                     static_cast<std::size_t>(i)) *
                        kSlotBytes;
  }

  GAddr hdr_ = kNullGAddr;
  GAddr slots_ = kNullGAddr;
  int rings_ = 0;
  int cap_ = 0;
  LockId lock_base_ = 0;
};

}  // namespace dsm::svc
