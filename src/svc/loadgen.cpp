#include "svc/loadgen.hpp"

#include <cmath>

namespace dsm::svc {

LoadParams LoadParams::preset(apps::Scale s) {
  LoadParams p;
  switch (s) {
    case apps::Scale::kTiny:
      p.requests_per_node = 300;
      p.clients_per_node = 2;
      p.keys = 256;
      p.segments = 16;
      p.slots_per_segment = 32;
      p.mean_interarrival = us(25);
      break;
    case apps::Scale::kSmall:
      p.requests_per_node = 5000;
      p.clients_per_node = 4;
      p.keys = 4096;
      p.segments = 64;
      p.slots_per_segment = 128;
      p.mean_interarrival = us(50);
      break;
    case apps::Scale::kDefault:
      p.requests_per_node = 50000;
      p.clients_per_node = 8;
      p.keys = 16384;
      p.segments = 128;
      p.slots_per_segment = 256;
      p.mean_interarrival = us(50);
      break;
  }
  return p;
}

void LoadParams::apply(const apps::AppArgs& a) {
  requests_per_node = static_cast<std::uint64_t>(
      a.get_int("requests", static_cast<std::int64_t>(requests_per_node)));
  clients_per_node =
      static_cast<int>(a.get_int("clients", clients_per_node));
  zipf_s = a.get_double("skew", zipf_s);
  read_frac = a.get_double("read-frac", read_frac);
  keys = static_cast<std::size_t>(
      a.get_int("keys", static_cast<std::int64_t>(keys)));
  segments = static_cast<int>(a.get_int("segments", segments));
  slots_per_segment =
      static_cast<int>(a.get_int("slots", slots_per_segment));
  const std::string arr = a.get_str("arrivals", poisson ? "poisson"
                                                        : "uniform");
  DSM_CHECK_MSG(arr == "poisson" || arr == "uniform",
                "app-arg arrivals must be poisson or uniform");
  poisson = arr == "poisson";
  if (a.has("rate")) {
    // Offered requests/s per node, spread across its clients.
    const double rate = a.get_double("rate", 0.0);
    DSM_CHECK_MSG(rate > 0.0, "app-arg rate must be > 0");
    const double gap = static_cast<double>(clients_per_node) * 1e9 / rate;
    mean_interarrival = gap < 1.0 ? 1 : static_cast<SimTime>(gap);
  }
  DSM_CHECK_MSG(requests_per_node > 0 && clients_per_node > 0 && keys > 0 &&
                    segments > 0 && slots_per_segment > 0 &&
                    mean_interarrival > 0 && read_frac >= 0.0 &&
                    read_frac <= 1.0 && zipf_s >= 0.0,
                "service load parameters out of range");
}

double LoadParams::offered_rps(int nodes) const {
  return static_cast<double>(nodes) *
         static_cast<double>(clients_per_node) * 1e9 /
         static_cast<double>(mean_interarrival);
}

namespace {
std::uint64_t client_seed(std::uint64_t seed, int node, int client) {
  std::uint64_t st = seed ^ (static_cast<std::uint64_t>(node) << 32) ^
                     static_cast<std::uint64_t>(client);
  // Two rounds decorrelate the low-entropy (node, client) lattice.
  splitmix64(st);
  return splitmix64(st);
}
}  // namespace

OpenLoopGen::OpenLoopGen(std::uint64_t seed, int node, const LoadParams& p,
                         const ZipfSampler& zipf)
    : p_(p), zipf_(zipf) {
  clients_.resize(static_cast<std::size_t>(p.clients_per_node));
  for (int c = 0; c < p.clients_per_node; ++c) {
    clients_[static_cast<std::size_t>(c)].rng.reseed(
        client_seed(seed, node, c));
    clients_[static_cast<std::size_t>(c)].next_at =
        draw_gap(clients_[static_cast<std::size_t>(c)]);
  }
}

SimTime OpenLoopGen::draw_gap(Client& c) const {
  if (!p_.poisson) return p_.mean_interarrival;
  const double u = c.rng.next_double();  // in [0, 1)
  const double gap =
      -std::log1p(-u) * static_cast<double>(p_.mean_interarrival);
  return gap < 1.0 ? 1 : static_cast<SimTime>(gap);
}

OpenLoopGen::Req OpenLoopGen::next() {
  std::size_t best = 0;
  for (std::size_t c = 1; c < clients_.size(); ++c) {
    if (clients_[c].next_at < clients_[best].next_at) best = c;
  }
  Client& cl = clients_[best];
  Req r;
  r.at = cl.next_at;
  r.key = zipf_(cl.rng);
  r.is_read = cl.rng.next_double() < p_.read_frac;
  cl.next_at += draw_gap(cl);
  return r;
}

SvcAppBase::SvcAppBase(apps::Scale scale, const apps::AppArgs& args)
    : p_(LoadParams::preset(scale)) {
  p_.apply(args);
}

void SvcAppBase::setup(SetupCtx& s) {
  nodes_ = s.nodes();
  seed_ = s.seed();
  zipf_.reset(p_.keys, p_.zipf_s);
  hist_.assign(static_cast<std::size_t>(nodes_), LogHistogram{});
  end_ns_.assign(static_cast<std::size_t>(nodes_), 0);
  summary_ = LatencySummary{};
  service_setup(s);
}

void SvcAppBase::node_main(Context& ctx) {
  const int me = ctx.id();
  OpenLoopGen gen(seed_, me, p_, zipf_);
  LogHistogram& h = hist_[static_cast<std::size_t>(me)];
  for (std::uint64_t seq = 0; seq < p_.requests_per_node; ++seq) {
    const OpenLoopGen::Req r = gen.next();
    if (ctx.now() < r.at) ctx.idle_until(r.at);
    ctx.compute(kRequestCpu);
    serve(ctx, me, seq, r);
    h.record(ctx.now() - r.at);
  }
  end_ns_[static_cast<std::size_t>(me)] = ctx.now();
  ctx.stop_timer();
  if (me == 0) gather(ctx);
}

std::string SvcAppBase::verify() {
  LogHistogram merged;
  for (const LogHistogram& h : hist_) merged.merge(h);
  summary_.requests = merged.count();
  summary_.p50_ns = merged.value_at_permille(500);
  summary_.p99_ns = merged.value_at_permille(990);
  summary_.p999_ns = merged.value_at_permille(999);
  summary_.max_ns = merged.max();
  summary_.checksum = merged.checksum();
  summary_.offered_rps = p_.offered_rps(nodes_);
  SimTime end = 0;
  for (SimTime e : end_ns_) end = end > e ? end : e;
  summary_.achieved_rps =
      end > 0 ? static_cast<double>(summary_.requests) * 1e9 /
                    static_cast<double>(end)
              : 0.0;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(nodes_) * p_.requests_per_node;
  if (summary_.requests != expected) {
    return "request count mismatch: served " +
           std::to_string(summary_.requests) + " expected " +
           std::to_string(expected);
  }
  return service_verify();
}

}  // namespace dsm::svc
