// Lease (time-bounded lock) table in DSM shared memory.
//
// One 64-byte slot per resource:
//   +0   holder word: node+1, 0 = free
//   +8   expiry (virtual ns): the lease self-expires at this instant, so a
//        later acquire may steal an expired lease — expiry is compared
//        against Context::now(), keeping the outcome a pure function of
//        virtual time (deterministic in every engine mode).
//   +16  grant counter, incremented under the stripe lock on every
//        successful acquire; the post-run scan sums it for the
//        conservation check against the per-node host-side tallies.
// Slots are contiguous, so granularity sets how many independently leased
// resources share one coherence block (64 at 4096B vs 4 at 256B) — the
// false-sharing regime Golab's DSM/CC complexity separation (PAPERS.md)
// predicts matters most for exactly this object family.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"

namespace dsm::svc {

class DsmLease {
 public:
  static constexpr std::size_t kSlotBytes = 64;

  void setup(SetupCtx& s, int resources, int stripes, LockId lock_base) {
    resources_ = resources;
    stripes_ = stripes;
    lock_base_ = lock_base;
    s.align_to_block();
    base_ = s.alloc(static_cast<std::size_t>(resources) * kSlotBytes,
                    kSlotBytes);
    for (int r = 0; r < resources; ++r) {
      s.write<std::uint64_t>(slot_addr(r) + 0, 0);
      s.write<SimTime>(slot_addr(r) + 8, 0);
      s.write<std::uint64_t>(slot_addr(r) + 16, 0);
    }
  }

  /// Grants when the resource is free or its lease has expired.
  bool acquire(Context& c, int resource, SimTime ttl) const {
    const LockId l = lock_of(resource);
    const GAddr a = slot_addr(resource);
    bool granted = false;
    c.lock(l);
    const std::uint64_t holder = c.load<std::uint64_t>(a + 0);
    if (holder == 0 || c.load<SimTime>(a + 8) <= c.now()) {
      c.store<std::uint64_t>(a + 0,
                             static_cast<std::uint64_t>(c.id()) + 1);
      c.store<SimTime>(a + 8, c.now() + ttl);
      c.store<std::uint64_t>(a + 16, c.load<std::uint64_t>(a + 16) + 1);
      granted = true;
    }
    c.unlock(l);
    return granted;
  }

  /// Releases only a lease this node still holds; false otherwise (it
  /// expired and was stolen, or was never held — both valid outcomes).
  bool release(Context& c, int resource) const {
    const LockId l = lock_of(resource);
    const GAddr a = slot_addr(resource);
    bool released = false;
    c.lock(l);
    if (c.load<std::uint64_t>(a + 0) ==
        static_cast<std::uint64_t>(c.id()) + 1) {
      c.store<std::uint64_t>(a + 0, 0);
      released = true;
    }
    c.unlock(l);
    return released;
  }

  /// Post-run sum of the per-slot grant counters (node 0, after
  /// stop_timer).
  std::uint64_t total_grants(Context& c) const {
    std::uint64_t sum = 0;
    for (int r = 0; r < resources_; ++r) {
      sum += c.load<std::uint64_t>(slot_addr(r) + 16);
    }
    return sum;
  }

 private:
  LockId lock_of(int resource) const {
    return lock_base_ + resource % stripes_;
  }
  GAddr slot_addr(int r) const {
    return base_ + static_cast<std::size_t>(r) * kSlotBytes;
  }

  GAddr base_ = kNullGAddr;
  int resources_ = 0;
  int stripes_ = 0;
  LockId lock_base_ = 0;
};

}  // namespace dsm::svc
