// Simulated interconnect modeled on the paper's testbed (Section 3):
// Myrinet with LANai control program, host-mediated small messages, DMA
// large messages, and Typhoon-0-accelerated polling.
//
// Calibration (paper microbenchmark): round-trip times of 40/61/100/256/876
// microseconds for 4/64/256/1024/4096-byte messages and ~17 MB/s streaming
// bandwidth.  We model one-way latency as fixed + per-byte and a separate
// (smaller) per-byte wire cost that bounds pipelined streaming throughput.
//
// Message *notification* follows the paper's two mechanisms:
//   * Polling: applications are instrumented to check a cachable flag on
//     control-flow backedges.  In the simulator, queued messages are
//     serviced when the destination fiber reaches a yield point (the
//     engine quantum models backedge spacing), or immediately if the node
//     is blocked inside the runtime (which spins polling).
//   * Interrupt: while user code runs, a message is serviced only after the
//     ~70 us Solaris signal cost; while the node is blocked inside the
//     runtime, interrupts are disabled and the runtime polls, so servicing
//     is immediate.  This asymmetry is what lets interrupts damp the SC
//     false-sharing ping-pong the paper describes in Section 5.4.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace dsm::net {

enum class NotifyMode { kPolling, kInterrupt };

const char* to_string(NotifyMode m);

/// Timing parameters of the simulated platform.  Defaults reproduce the
/// paper's microbenchmark; tests pin them.
struct NetParams {
  /// Fixed one-way cost: host store to LANai, LANai scheduling, wire setup.
  SimTime oneway_fixed = us(20);
  /// Per-byte one-way latency (kernel-buffer copies + wire).
  double oneway_per_byte_ns = 105.0;
  /// Per-byte cost of the bottleneck stage when messages pipeline
  /// back-to-back (DMA/wire).  4096/0.055us-per-byte ~= 17.7 MB/s.
  double wire_per_byte_ns = 55.0;
  /// Sender host-CPU occupancy (header marshalling, LANai doorbell).
  SimTime send_occupancy = us(4);
  double send_occupancy_per_byte_ns = 6.0;
  /// Base receive-side dispatch cost charged per serviced message.
  SimTime recv_dispatch = us(3);
  /// Cost of one successful poll (clearing the T0 register, uncached store).
  SimTime poll_service = us(1) + ns(500);
  /// Solaris signal delivery delay for the interrupt mechanism.
  SimTime interrupt_latency = us(70);
  /// Receiving-CPU time burned by the signal crossing when it is serviced.
  SimTime interrupt_cpu = us(70);
  /// Bytes of protocol header accounted to every message.
  std::uint32_t header_bytes = 32;
};

/// A protocol message.  Scalar arguments live in arg[]; bulk data (block
/// contents, diffs, write notices) rides in payload — an arena-aware
/// buffer, so per-message allocation stays off the global heap in -jN
/// sweeps.  Growing this struct grows the delivery closure; EventFn's
/// inline buffer must be widened to match (network.cpp asserts).
struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint16_t type = 0;
  std::uint64_t arg[4] = {0, 0, 0, 0};
  Bytes payload;
  SimTime sent_at = 0;
  SimTime arrive_at = 0;
};

/// Per-node traffic statistics (feeds the paper's Table 15).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;      // payload + header
  std::uint64_t payload_bytes = 0;   // payload only
};

class Network {
 public:
  using Handler = std::function<void(Message&)>;

  Network(sim::Engine& eng, const NetParams& params, NotifyMode mode);

  /// Installs the single receive dispatch function.  It runs "as" the
  /// destination node with that node's clock already lifted past arrival
  /// and the dispatch cost charged.
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Sends a message from the current node.  Charges sender occupancy and
  /// schedules delivery after the modeled latency.  FIFO per (src, dst).
  void send(Message msg);

  /// Convenience: build + send.
  void send(NodeId dst, std::uint16_t type,
            std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
            std::uint64_t a3 = 0, Bytes payload = {});

  /// One-way latency for a message with `payload_bytes` of payload.
  SimTime oneway_latency(std::size_t payload_bytes) const;

  /// Round-trip estimate for the microbenchmark (data out, tiny ack back).
  SimTime roundtrip(std::size_t payload_bytes) const;

  /// Streaming bandwidth model in MB/s for back-to-back messages.
  double streaming_bandwidth_mbs(std::size_t payload_bytes) const;

  const NetParams& params() const { return params_; }
  NotifyMode mode() const { return mode_; }

  const TrafficStats& traffic(NodeId n) const { return traffic_[n]; }
  TrafficStats total_traffic() const;

  /// Number of messages queued but not yet serviced at `n`.
  std::size_t pending(NodeId n) const { return inbox_[n].size(); }

  /// Services any queued messages at the current node immediately.  The
  /// runtime calls this on entry to every blocking operation: entering the
  /// runtime disables interrupts and polls (paper Section 3), so pending
  /// messages must not wait for their interrupt event.
  void poll_now();

  /// Enables trace recording of message send/recv events.  Flow ids are
  /// derived from per-(src,dst) sequence counters — delivery is FIFO per
  /// channel with strictly increasing arrival times, so sender and
  /// receiver count the same message independently and net::Message does
  /// not grow (its delivery closure must stay inline, see send()).
  void set_tracer(trace::Tracer* t);

 private:
  std::uint64_t flow_id(NodeId src, NodeId dst, std::uint64_t seq) const {
    return (static_cast<std::uint64_t>(src) * eng_.nodes() + dst) << 40 | seq;
  }
  void deliver(Message&& m);
  /// Services every queued message at the current node (runs handlers).
  void service_inbox();
  /// Engine resume hook: poll point at fiber resume.
  void on_resume(NodeId n);

  sim::Engine& eng_;
  NetParams params_;
  NotifyMode mode_;
  Handler handler_;
  std::vector<std::deque<Message>> inbox_;
  std::vector<TrafficStats> traffic_;
  std::vector<std::vector<SimTime>> last_arrival_;  // [src][dst] FIFO floor
  trace::Tracer* tracer_ = nullptr;
  /// Per-channel message counts for flow ids; maintained in full mode only.
  std::vector<std::vector<std::uint64_t>> sent_seq_;  // [src][dst]
  std::vector<std::vector<std::uint64_t>> recv_seq_;  // [src][dst]
};

}  // namespace dsm::net
