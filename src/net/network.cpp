#include "net/network.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace dsm::net {

const char* to_string(NotifyMode m) {
  return m == NotifyMode::kPolling ? "polling" : "interrupt";
}

Network::Network(sim::Engine& eng, const NetParams& params, NotifyMode mode)
    : eng_(eng), params_(params), mode_(mode), inbox_(eng.nodes()),
      traffic_(eng.nodes()),
      last_arrival_(eng.nodes(), std::vector<SimTime>(eng.nodes(), 0)) {
  eng_.set_resume_hook([this](NodeId n) { on_resume(n); });
}

void Network::set_tracer(trace::Tracer* t) {
  tracer_ = t;
  if (t != nullptr && t->full()) {
    sent_seq_.assign(inbox_.size(),
                     std::vector<std::uint64_t>(inbox_.size(), 0));
    recv_seq_ = sent_seq_;
  }
}

SimTime Network::oneway_latency(std::size_t payload_bytes) const {
  // Headers pipeline with the payload on the wire; only payload bytes add
  // latency (headers still count toward traffic volume).
  return params_.oneway_fixed +
         static_cast<SimTime>(static_cast<double>(payload_bytes) *
                              params_.oneway_per_byte_ns);
}

SimTime Network::roundtrip(std::size_t payload_bytes) const {
  // The paper's microbenchmark is an echo test: payload travels both ways.
  return 2 * oneway_latency(payload_bytes);
}

double Network::streaming_bandwidth_mbs(std::size_t payload_bytes) const {
  // Back-to-back messages overlap everything except the bottleneck wire/DMA
  // stage and the sender occupancy.
  const double per_msg_wire =
      static_cast<double>(payload_bytes + params_.header_bytes) *
      params_.wire_per_byte_ns;
  const double per_msg_host =
      static_cast<double>(params_.send_occupancy) +
      static_cast<double>(payload_bytes) * params_.send_occupancy_per_byte_ns;
  const double per_msg_ns = std::max(per_msg_wire, per_msg_host);
  // bytes/ns == GB/s; convert to MB/s.
  return static_cast<double>(payload_bytes) / per_msg_ns * 1000.0;
}

void Network::send(NodeId dst, std::uint16_t type, std::uint64_t a0,
                   std::uint64_t a1, std::uint64_t a2, std::uint64_t a3,
                   Bytes payload) {
  Message m;
  m.dst = dst;
  m.type = type;
  m.arg[0] = a0;
  m.arg[1] = a1;
  m.arg[2] = a2;
  m.arg[3] = a3;
  m.payload = std::move(payload);
  send(std::move(m));
}

void Network::send(Message msg) {
  const NodeId src = eng_.current();
  DSM_CHECK(msg.dst >= 0 && msg.dst < eng_.nodes());
  DSM_CHECK_MSG(msg.dst != src, "node sent a message to itself");
  msg.src = src;

  // Sender host CPU occupancy, attributed to the message-occupancy
  // category (the paper's breakdowns report it apart from the wait that
  // triggered the send).
  const SimTime occupancy =
      params_.send_occupancy +
      static_cast<SimTime>(static_cast<double>(msg.payload.size()) *
                           params_.send_occupancy_per_byte_ns);
  {
    sim::Engine::CatScope scope(eng_, trace::Cat::kMsgSend);
    eng_.charge(occupancy);
  }

  TrafficStats& t = traffic_[src];
  ++t.messages_sent;
  t.payload_bytes += msg.payload.size();
  t.bytes_sent += msg.payload.size() + params_.header_bytes;

  // Debug aid: DSM_TRACE_NET=1 prints every message.
  static const bool trace = std::getenv("DSM_TRACE_NET") != nullptr;
  if (trace) {
    std::fprintf(stderr, "[net] t=%lld %d->%d type=%u a0=%llu a1=%llu a2=%llu a3=%llu psz=%zu\n",
                 static_cast<long long>(eng_.now(src)), src, msg.dst, msg.type,
                 (unsigned long long)msg.arg[0], (unsigned long long)msg.arg[1],
                 (unsigned long long)msg.arg[2], (unsigned long long)msg.arg[3],
                 msg.payload.size());
  }

  msg.sent_at = eng_.now(src);
  if (tracer_ != nullptr && tracer_->full()) {
    tracer_->record(src, trace::Ev::kMsgSend, msg.sent_at - occupancy,
                    flow_id(src, msg.dst, ++sent_seq_[src][msg.dst]),
                    static_cast<std::uint32_t>(msg.payload.size()), msg.type,
                    occupancy);
  }
  SimTime arrive = msg.sent_at + oneway_latency(msg.payload.size());
  // FIFO per channel: Myrinet delivers in order along a route.
  SimTime& floor = last_arrival_[src][msg.dst];
  if (arrive <= floor) arrive = floor + 1;
  floor = arrive;
  msg.arrive_at = arrive;

  const NodeId dst = msg.dst;
  // The delivery event runs "as" the destination node.  This is THE hot
  // closure of the simulator (millions per run): a capture added here, or
  // a field added to Message, must widen EventFn's buffer, not silently
  // push every delivery onto the heap path.
  auto delivery = [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  };
  static_assert(EventFn::stays_inline<decltype(delivery)>(),
                "network delivery closure must fit EventFn's inline buffer");
  eng_.post(arrive, dst, std::move(delivery));
}

void Network::deliver(Message&& m) {
  const NodeId dst = eng_.current();
  inbox_[dst].push_back(std::move(m));

  if (eng_.is_parked(dst)) {
    // The node is inside the runtime (or finished): the runtime polls
    // continuously while waiting, so service right away.
    service_inbox();
    return;
  }

  // User code is running.
  if (mode_ == NotifyMode::kInterrupt) {
    // Two distinct effects of the Solaris signal path (paper §5.4):
    //  * the notification is DELAYED ~70 us, so user code keeps hitting
    //    its copy — the accidental "delayed consistency" that damps SC's
    //    false-sharing ping-pong;
    //  * crossing protection domains then BURNS ~70 us of the receiving
    //    processor — why interrupts lose to polling for message-heavy
    //    applications.
    const SimTime due = eng_.event_time() + params_.interrupt_latency;
    auto interrupt = [this]() {
      // If the runtime already polled these messages (node blocked in the
      // meantime), there is nothing left to do and no time is charged.
      if (!inbox_[eng_.current()].empty()) {
        eng_.lift_clock(eng_.event_time());
        {
          sim::Engine::CatScope scope(eng_, trace::Cat::kHandler);
          eng_.charge(params_.interrupt_cpu);
        }
        service_inbox();
      }
    };
    static_assert(EventFn::stays_inline<decltype(interrupt)>(),
                  "interrupt closure must fit EventFn's inline buffer");
    eng_.post(due, dst, std::move(interrupt));
  }
  // Polling mode: serviced by on_resume() at the next backedge/yield.
}

void Network::service_inbox() {
  const NodeId n = eng_.current();
  DSM_CHECK_MSG(handler_, "network handler not installed");
  bool any = false;
  while (!inbox_[n].empty()) {
    Message m = std::move(inbox_[n].front());
    inbox_[n].pop_front();
    // The lift is wait time (charged to the blocked fiber's category, or
    // idle); only the dispatch + handler work below is handler occupancy.
    eng_.lift_clock(m.arrive_at);
    sim::Engine::CatScope scope(eng_, trace::Cat::kHandler);
    eng_.charge(params_.recv_dispatch);
    if (tracer_ != nullptr && tracer_->full()) {
      tracer_->record(n, trace::Ev::kMsgRecv, m.arrive_at,
                      flow_id(m.src, n, ++recv_seq_[m.src][n]),
                      static_cast<std::uint32_t>(m.payload.size()), m.type,
                      params_.recv_dispatch);
    }
    handler_(m);
    any = true;
  }
  if (any) {
    if (mode_ == NotifyMode::kPolling) {
      sim::Engine::CatScope scope(eng_, trace::Cat::kHandler);
      eng_.charge(params_.poll_service);
    }
    // A handler may have satisfied the condition a blocked fiber waits on.
    eng_.notify(n);
  }
}

void Network::poll_now() {
  if (!inbox_[eng_.current()].empty()) service_inbox();
}

void Network::on_resume(NodeId n) {
  // Poll point at fiber resume.  In interrupt mode user code does not poll;
  // queued messages wait for their interrupt event (or for the fiber to
  // enter the runtime, which calls poll_now via the runtime layer).
  if (mode_ == NotifyMode::kPolling && !inbox_[n].empty()) service_inbox();
}

TrafficStats Network::total_traffic() const {
  TrafficStats sum;
  for (const TrafficStats& t : traffic_) {
    sum.messages_sent += t.messages_sent;
    sum.bytes_sent += t.bytes_sent;
    sum.payload_bytes += t.payload_bytes;
  }
  return sum;
}

}  // namespace dsm::net
