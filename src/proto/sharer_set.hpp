// Directory sharer sets for the SC protocol.
//
// One word covers nodes 0..63 inline — the paper-scale case, where an
// entry stays 8 bytes plus an empty vector.  Clusters past 64 nodes spill
// additional words on demand (the scale-out sweeps go to kMaxNodes=1024).
// Iteration is ascending node order, so invalidation fan-out stays
// deterministic regardless of how the set was built.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dsm::proto {

class SharerSet {
 public:
  void insert(NodeId n) { word(wi(n)) |= bit(n); }

  void erase(NodeId n) {
    const std::size_t w = wi(n);
    if (w == 0) {
      w0_ &= ~bit(n);
    } else if (w - 1 < spill_.size()) {
      spill_[w - 1] &= ~bit(n);
    }
  }

  bool contains(NodeId n) const {
    const std::size_t w = wi(n);
    if (w == 0) return (w0_ & bit(n)) != 0;
    return w - 1 < spill_.size() && (spill_[w - 1] & bit(n)) != 0;
  }

  void clear() {
    w0_ = 0;
    spill_.clear();
  }

  bool empty() const {
    if (w0_ != 0) return false;
    for (std::uint64_t w : spill_) {
      if (w != 0) return false;
    }
    return true;
  }

  int count() const {
    int c = std::popcount(w0_);
    for (std::uint64_t w : spill_) c += std::popcount(w);
    return c;
  }

  /// Visits members in ascending node order (deterministic fan-out).
  template <typename F>
  void for_each(F&& f) const {
    visit_word(w0_, 0, f);
    for (std::size_t i = 0; i < spill_.size(); ++i) {
      visit_word(spill_[i], (static_cast<NodeId>(i) + 1) * 64, f);
    }
  }

 private:
  static std::uint64_t bit(NodeId n) { return 1ull << (n & 63); }
  static std::size_t wi(NodeId n) {
    DSM_CHECK(n >= 0 && n < kMaxNodes);
    return static_cast<std::size_t>(n) >> 6;
  }
  std::uint64_t& word(std::size_t w) {
    if (w == 0) return w0_;
    if (w - 1 >= spill_.size()) spill_.resize(w, 0);
    return spill_[w - 1];
  }
  template <typename F>
  static void visit_word(std::uint64_t w, NodeId base, F& f) {
    while (w != 0) {
      const int b = std::countr_zero(w);
      f(base + static_cast<NodeId>(b));
      w &= w - 1;
    }
  }

  std::uint64_t w0_ = 0;               // nodes 0..63
  std::vector<std::uint64_t> spill_;   // nodes 64.. (word per 64)
};

}  // namespace dsm::proto
