// Write notices and interval records for the LRC protocols.
//
// An interval is one release-to-release span of a node's execution; its
// write notices name the blocks that node modified (SW-LRC additionally
// carries the new block version and owner so readers can invalidate
// precisely and fetch in one hop — paper §2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "proto/vector_clock.hpp"
#include "proto/wire.hpp"

namespace dsm::proto {

struct NoticeEntry {
  BlockId block = 0;
  std::uint32_t version = 0;  // SW-LRC: block version after the write
  NodeId owner = kNoNode;     // SW-LRC: owner after the write
};

struct Interval {
  NodeId origin = kNoNode;
  std::uint32_t seq = 0;  // 1-based interval index of `origin`
  std::vector<NoticeEntry> entries;
};

/// Interval wire codec.  `nodes` selects the node-id width: one byte up to
/// 255 nodes (the paper-scale format), two bytes beyond.
void encode_intervals(ByteWriter& w, const std::vector<Interval>& ivs,
                      int nodes);
std::vector<Interval> decode_intervals(ByteReader& r, int nodes);

/// Every interval a node knows about, indexed by origin.  Intervals from
/// each origin are stored contiguously by seq; transfers always ship a
/// complete suffix, so gaps are protocol bugs.  `prune_below` drops a
/// prefix of each origin's list (GC at barrier frontiers); `base_[o]`
/// counts the pruned intervals so seq s lives at index s - 1 - base_[o]
/// and `have_` keeps the full history height.
class NoticeStore {
 public:
  explicit NoticeStore(int nodes)
      : per_origin_(static_cast<std::size_t>(nodes)),
        base_(static_cast<std::size_t>(nodes), 0) {}

  /// Adds one interval.  Duplicates (seq <= have) are ignored; gaps abort.
  void add(Interval iv);

  /// Highest contiguous seq known per origin.
  const VectorClock& have() const { return have_; }

  /// All intervals with seq > vc[origin], skipping `exclude` as origin.
  /// Ordered by origin then seq (so receivers can add() without gaps).
  /// When `upto` is given, intervals with seq > (*upto)[origin] are held
  /// back.  Senders pass their own vector clock here so a transfer ships
  /// only their causal past: the barrier master's store transiently holds
  /// arrival intervals its clock does not yet cover, and leaking those
  /// through a concurrent lock grant hands the acquirer a causally
  /// non-closed set (it may then apply an old diff OVER newer data).
  std::vector<Interval> newer_than(const VectorClock& vc,
                                   NodeId exclude = kNoNode,
                                   const VectorClock* upto = nullptr) const;

  /// Intervals of `origin` with seq > from_seq, in seq order.  Aborts if
  /// any requested interval has been pruned — callers must only ask for
  /// suffixes above the GC frontier they agreed on.
  std::vector<Interval> after(NodeId origin, std::uint32_t from_seq) const;

  /// Drops every interval with seq <= frontier[origin] for each origin.
  /// Returns how many intervals were dropped.  Safe only when no future
  /// newer_than()/after() call can start below the frontier.
  std::size_t prune_below(const VectorClock& frontier);

  std::size_t total_intervals() const;

 private:
  std::vector<std::vector<Interval>> per_origin_;
  std::vector<std::uint32_t> base_;  // pruned-interval count per origin
  VectorClock have_;
};

}  // namespace dsm::proto
