// Byte-level serialization for protocol payloads (vector clocks, write
// notices, required-version sets).  Little-endian, host order — the
// simulated cluster is homogeneous, like the paper's.
//
// ByteWriter builds into an arena-aware Bytes buffer so encode paths
// (write notices, lock grants, barrier releases) allocate from the
// worker's arena instead of the heap; take() moves the buffer straight
// into Network::send without a copy.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"

namespace dsm::proto {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void bytes(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    if (!b.empty()) buf_.append(b.data(), b.size());
  }

  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) { buf_.append(p, n); }
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::vector<std::byte> bytes() {
    const std::uint32_t n = u32();
    DSM_CHECK(pos_ + n <= data_.size());
    std::vector<std::byte> out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  /// Like bytes(), but into an arena-aware buffer (protocol hot paths).
  Bytes bytes_buf() {
    const std::uint32_t n = u32();
    DSM_CHECK(pos_ + n <= data_.size());
    Bytes out(data_.subspan(pos_, n));
    pos_ += n;
    return out;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T get() {
    DSM_CHECK(pos_ + sizeof(T) <= data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace dsm::proto
