// Sequentially consistent invalidation protocol (paper §2.1), modeled on
// Stache: a directory at each block's home, single-writer OR
// multiple-reader copies, eager invalidation, write-back of dirty copies
// on recall.  Home placement is first-touch (touch = load or store).
#pragma once

#include <memory>
#include <vector>

#include "mem/block_state.hpp"
#include "proto/msg_types.hpp"
#include "proto/protocol.hpp"
#include "proto/sharer_set.hpp"

namespace dsm::proto {

class ScProtocol : public Protocol {
 public:
  explicit ScProtocol(const ProtoEnv& env);

  const char* name() const override { return "SC"; }
  bool lazy() const override { return false; }

  void read_fault(BlockId b) override;
  void write_fault(BlockId b) override;
  void handle(net::Message& m) override;
  BlockTableStats block_table_stats() const override;

  /// SC's handlers defer under contention by re-posting themselves (busy
  /// retry at +2 µs, delayed invalidation at +sc_invalidate_delay) without
  /// lifting the clock, so a send can appear that far ahead of the
  /// sender's clock; the lookahead window must shrink accordingly.
  SimTime self_resched_bound() const override;

 private:
  struct QueuedReq {
    NodeId requester = kNoNode;
    bool write = false;
    bool has_copy = false;
  };

  /// Directory entry; logically lives at the block's home node.  Kept
  /// compact (one per block at the finest granularity): the waiting queue
  /// is heap-allocated only under contention.
  struct Dir {
    NodeId owner = kNoNode;  // exclusive (RW) holder, or kNoNode
    SharerSet sharers;       // RO copies, including the home's own tag
    bool busy = false;          // a recall/invalidate transaction in flight
    QueuedReq cur;              // request being served while busy
    int pending_acks = 0;
    std::unique_ptr<std::vector<QueuedReq>> q;  // waiting for !busy

    void enqueue(const QueuedReq& r) {
      if (!q) q = std::make_unique<std::vector<QueuedReq>>();
      q->push_back(r);
    }
    bool queue_empty() const { return !q || q->empty(); }
    QueuedReq dequeue() {
      QueuedReq r = q->front();
      q->erase(q->begin());
      return r;
    }
  };

  void fault(BlockId b, bool write);
  /// Serves a request at the home (fiber or handler context); never blocks.
  void dispatch(BlockId b, const QueuedReq& r);
  void start_read(BlockId b, Dir& d, const QueuedReq& r);
  void start_write(BlockId b, Dir& d, const QueuedReq& r);
  void finish_read(BlockId b, Dir& d);
  void finish_write(BlockId b, Dir& d);
  /// Delivers data/permissions to the requester (message or local grant).
  void grant(BlockId b, const QueuedReq& r, bool exclusive, bool with_data);
  void drain(BlockId b, Dir& d);
  void serve_or_forward(net::Message& m);
  void on_reply(net::Message& m, bool exclusive);
  void install_as_home(BlockId b, bool write, std::span<const std::byte> data);
  void drain_stash(BlockId b);
  void invalidate_local(BlockId b);

  std::vector<Dir> dir_;
  /// Per-node block-keyed state, flat tables over a shared sparse-set
  /// index (mem/block_state.hpp; kind from DsmConfig::block_state).
  struct PerNode {
    mem::BlockIndex idx;
    /// Requests that arrived before this node learned (via the in-flight
    /// claim reply) that it is the block's home.
    mem::BlockField<std::vector<net::Message>> stash;
    /// Blocks whose outstanding request was answered (the answer may
    /// already have been invalidated again; the fault loop re-checks).
    mem::BlockSet replied;

    PerNode(mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks) {}
  };
  std::vector<PerNode> pn_;
};

}  // namespace dsm::proto
