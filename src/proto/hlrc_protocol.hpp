// Home-based Lazy Release Consistency (paper §2.3, after Zhou et al. and
// Iftode et al.):
//   * multiple concurrent writers via twin/diff,
//   * diffs computed at release and applied EAGERLY at the block's home,
//   * the home copy is always (eventually) up to date; misses fetch the
//     whole block from the home,
//   * write notices carry vector timestamps; acquires invalidate noticed
//     blocks; fetches carry the required version vector and the home
//     defers the reply until all required diffs have been applied.
// Home placement: first-touch by a WRITER migrates the home; a block only
// ever read keeps its static home (paper §2: "touch" is a store for HLRC).
#pragma once

#include <span>
#include <vector>

#include "common/arena.hpp"
#include "mem/block_state.hpp"
#include "proto/msg_types.hpp"
#include "proto/protocol.hpp"

namespace dsm::proto {

class HlrcProtocol : public Protocol {
 public:
  explicit HlrcProtocol(const ProtoEnv& env);

  const char* name() const override { return "HLRC"; }
  bool lazy() const override { return true; }

  void read_fault(BlockId b) override;
  void write_fault(BlockId b) override;
  void handle(net::Message& m) override;

  void at_release() override;
  VectorClock clock_of(NodeId n) const override {
    return pn_[static_cast<std::size_t>(n)].vc;
  }
  std::vector<Interval> intervals_newer_than(const VectorClock& vc,
                                             NodeId exclude) const override;
  std::vector<Interval> own_intervals_after(std::uint32_t from_seq) const override;
  void apply_acquire(const VectorClock& sender_vc,
                     std::vector<Interval> ivs) override;
  std::uint64_t protocol_memory_bytes() const override;
  std::uint64_t peak_twin_bytes() const override { return peak_twin_bytes_; }
  BlockTableStats block_table_stats() const override;

 private:
  /// Sparse per-block version vector (seq per writer origin).
  using SeqVec = std::vector<std::uint32_t>;

  /// Per-node block-keyed state as flat tables over one shared sparse-set
  /// index (mem/block_state.hpp; kind from DsmConfig::block_state).
  struct PerNode {
    mem::BlockIndex idx;
    VectorClock vc;                 // closed intervals per origin
    NoticeStore store;              // all intervals this node knows
    mem::BlockField<Bytes> twins;
    std::vector<BlockId> dirty;     // written in the current open interval
    mem::BlockSet dirty_set;
    /// Blocks whose diff (stamped with the open interval's seq) was sent
    /// during an acquire; their notices are still valid at release.
    mem::BlockSet early_flushed;
    mem::BlockField<SeqVec> required;  // from write notices
    int outstanding_acks = 0;
    mem::BlockSet replied;  // fetch replies landed
    /// Blocks whose data we hold from before any writer claimed a home
    /// (a read does not migrate the home — paper §2: HLRC "touch" is a
    /// store).  The first local write re-fetches through the claim path.
    mem::BlockSet provisional;
    mem::BlockField<std::vector<net::Message>> stash;

    /// Diff construction scratch.  flush_block moves it straight into the
    /// outgoing payload (it is exactly the encoded diff); the next flush
    /// re-grows it from the free list.  Host-side only — does not count
    /// toward simulated protocol memory.  Per node so that node-disjoint
    /// lookahead windows never share it.
    Bytes diff_scratch;

    PerNode(int nodes, mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks), store(nodes) {}
  };

  /// Home-side per-block state, owned by (and only ever touched as) the
  /// home node.  Split per node — rather than one global index — because
  /// BlockIndex::ensure appends to shared dense arrays, which would make
  /// two homes' first touches race under window-parallel execution.
  /// Sound because home claims are permanent and unique.
  struct HomeSide {
    mem::BlockIndex idx;
    mem::BlockField<SeqVec> applied;
    mem::BlockField<std::vector<net::Message>> waiters;

    HomeSide(mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks) {}
  };

  SeqVec& seqvec(mem::BlockIndex& idx, mem::BlockField<SeqVec>& f, BlockId b) {
    bool inserted = false;
    SeqVec& v = f.ensure(idx, b, &inserted);
    if (inserted) v.assign(static_cast<std::size_t>(eng().nodes()), 0);
    return v;
  }

  PerNode& me() { return pn_[static_cast<std::size_t>(eng().current())]; }
  const PerNode& node(NodeId n) const { return pn_[static_cast<std::size_t>(n)]; }
  HomeSide& my_home() { return hs_[static_cast<std::size_t>(eng().current())]; }

  /// True when the home's applied versions cover node n's requirements.
  bool applied_covers(NodeId n, BlockId b) const;
  static bool covers(const SeqVec* applied, const SeqVec& required);

  /// Ensures the current node has valid data for b (tag >= RO, or home with
  /// requirements satisfied).  Fiber context; blocks.
  void fetch_block(BlockId b, bool write_intent);
  void serve_or_forward(net::Message& m);
  void serve_fetch_at_home(net::Message& m);
  void reply_fetch(NodeId requester, BlockId b);
  void install_as_home(BlockId b, std::span<const std::byte> data);
  void drain_stash(BlockId b);
  void on_diff(net::Message& m);
  void recheck_waiters(BlockId b);
  void mark_dirty(BlockId b, bool make_twin);
  /// Builds and sends the diff for a dirty non-home block; drops the twin.
  /// Returns false if nothing changed (no diff sent).
  bool flush_block(BlockId b, std::uint32_t seq);
  static SeqVec decode_required(std::span<const std::byte> payload, int nodes);
  static Bytes encode_required(const SeqVec* req);

  /// Granularity-sized copy of `blk`.  Twins are created and destroyed on
  /// every write interval and are all granularity-sized; the worker
  /// arena's size-class free list recycles their storage without heap
  /// traffic (this replaced an explicit twin pool).
  Bytes take_twin(std::span<const std::byte> blk) { return Bytes(blk); }

  /// Global twin footprint with its in-run peak.  The peak is path-
  /// dependent, so under window-parallel execution bumps are staged and
  /// replayed in exact serial order via the engine's counter cells.
  std::uint64_t twin_bytes_ = 0;
  std::uint64_t peak_twin_bytes_ = 0;
  int twin_ctr_ = -1;
  std::vector<PerNode> pn_;
  std::vector<HomeSide> hs_;
};

}  // namespace dsm::proto
