#include "proto/vector_clock.hpp"

namespace dsm::proto {

std::string VectorClock::to_string(int nodes) const {
  std::string s = "[";
  for (int i = 0; i < nodes; ++i) {
    if (i) s += ' ';
    s += std::to_string((*this)[static_cast<NodeId>(i)]);
  }
  s += ']';
  return s;
}

}  // namespace dsm::proto
