// Vector timestamps for the lazy release consistency protocols (paper §2.2,
// §2.3).  Entry v[i] counts the intervals of node i this node has "seen"
// (applied the write notices of).
#pragma once

#include <array>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/wire.hpp"

namespace dsm::proto {

class VectorClock {
 public:
  std::uint32_t operator[](NodeId n) const { return v_[idx(n)]; }
  void set(NodeId n, std::uint32_t s) { v_[idx(n)] = s; }
  void advance(NodeId n) { ++v_[idx(n)]; }

  /// Component-wise max.
  void merge(const VectorClock& o) {
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (o.v_[i] > v_[i]) v_[i] = o.v_[i];
    }
  }

  /// True when this clock dominates `o` in every component.
  bool covers(const VectorClock& o) const {
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] < o.v_[i]) return false;
    }
    return true;
  }

  bool operator==(const VectorClock& o) const = default;

  void encode(ByteWriter& w, int nodes) const {
    for (int i = 0; i < nodes; ++i) w.u32(v_[static_cast<std::size_t>(i)]);
  }
  static VectorClock decode(ByteReader& r, int nodes) {
    VectorClock vc;
    for (int i = 0; i < nodes; ++i) vc.v_[static_cast<std::size_t>(i)] = r.u32();
    return vc;
  }

  std::string to_string(int nodes) const;

 private:
  static std::size_t idx(NodeId n) {
    DSM_CHECK(n >= 0 && n < kMaxNodes);
    return static_cast<std::size_t>(n);
  }
  std::array<std::uint32_t, kMaxNodes> v_{};
};

}  // namespace dsm::proto
