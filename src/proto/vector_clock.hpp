// Vector timestamps for the lazy release consistency protocols (paper §2.2,
// §2.3).  Entry v[i] counts the intervals of node i this node has "seen"
// (applied the write notices of).
//
// Storage is inline for the first kInline components (covers the paper's
// 16-node cluster with zero heap traffic — MW-LRC stamps one clock per
// archived diff) and spills to a vector past that, so the kMaxNodes=1024
// scale-out sweeps don't pay 4 KiB per clock.  Absent spill entries read
// as 0; all comparisons treat differently-sized spills accordingly.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "proto/wire.hpp"

namespace dsm::proto {

class VectorClock {
 public:
  std::uint32_t operator[](NodeId n) const {
    const std::size_t i = idx(n);
    if (i < kInline) return v_[i];
    const std::size_t s = i - kInline;
    return s < spill_.size() ? spill_[s] : 0;
  }
  void set(NodeId n, std::uint32_t s) { slot(idx(n)) = s; }
  void advance(NodeId n) { ++slot(idx(n)); }

  /// Component-wise max.
  void merge(const VectorClock& o) {
    for (std::size_t i = 0; i < kInline; ++i) {
      if (o.v_[i] > v_[i]) v_[i] = o.v_[i];
    }
    if (o.spill_.size() > spill_.size()) spill_.resize(o.spill_.size(), 0);
    for (std::size_t i = 0; i < o.spill_.size(); ++i) {
      if (o.spill_[i] > spill_[i]) spill_[i] = o.spill_[i];
    }
  }

  /// True when this clock dominates `o` in every component.
  bool covers(const VectorClock& o) const {
    for (std::size_t i = 0; i < kInline; ++i) {
      if (v_[i] < o.v_[i]) return false;
    }
    for (std::size_t i = 0; i < o.spill_.size(); ++i) {
      if ((i < spill_.size() ? spill_[i] : 0) < o.spill_[i]) return false;
    }
    return true;
  }

  bool operator==(const VectorClock& o) const {
    if (v_ != o.v_) return false;
    const std::size_t m =
        spill_.size() > o.spill_.size() ? spill_.size() : o.spill_.size();
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t a = i < spill_.size() ? spill_[i] : 0;
      const std::uint32_t b = i < o.spill_.size() ? o.spill_[i] : 0;
      if (a != b) return false;
    }
    return true;
  }

  void encode(ByteWriter& w, int nodes) const {
    for (NodeId i = 0; i < nodes; ++i) w.u32((*this)[i]);
  }
  static VectorClock decode(ByteReader& r, int nodes) {
    VectorClock vc;
    for (NodeId i = 0; i < nodes; ++i) {
      const std::uint32_t s = r.u32();
      if (s != 0) vc.set(i, s);  // zeros need no spill growth
    }
    return vc;
  }

  std::string to_string(int nodes) const;

 private:
  static constexpr std::size_t kInline = 16;

  static std::size_t idx(NodeId n) {
    DSM_CHECK(n >= 0 && n < kMaxNodes);
    return static_cast<std::size_t>(n);
  }
  std::uint32_t& slot(std::size_t i) {
    if (i < kInline) return v_[i];
    const std::size_t s = i - kInline;
    if (s >= spill_.size()) spill_.resize(s + 1, 0);
    return spill_[s];
  }

  std::array<std::uint32_t, kInline> v_{};
  std::vector<std::uint32_t> spill_;  // components kInline.. (0 if absent)
};

}  // namespace dsm::proto
