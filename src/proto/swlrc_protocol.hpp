// Single-Writer Lazy Release Consistency (paper §2.2, after Keleher's
// single-writer LRC):
//   * one writable copy (the owner) may coexist with many read-only copies,
//   * a write fault migrates ownership (serialized at the block's static
//     home) but does NOT invalidate readers,
//   * readers are invalidated lazily at acquire time by versioned write
//     notices; the version comparison avoids unnecessary invalidations and
//     the owner id carried in the notice lets a later read fault fetch in
//     one hop (paper: "one-hop roundtrip"),
//   * the owner re-versions each block it wrote at every release.
// The static home is the ownership directory; the data's "first touch"
// placement follows from the first toucher becoming the first owner.
#pragma once

#include <vector>

#include "mem/block_state.hpp"
#include "proto/msg_types.hpp"
#include "proto/protocol.hpp"

namespace dsm::proto {

class SwLrcProtocol : public Protocol {
 public:
  explicit SwLrcProtocol(const ProtoEnv& env);

  const char* name() const override { return "SW-LRC"; }
  bool lazy() const override { return true; }

  void read_fault(BlockId b) override;
  void write_fault(BlockId b) override;
  void handle(net::Message& m) override;

  void at_release() override;
  VectorClock clock_of(NodeId n) const override {
    return pn_[static_cast<std::size_t>(n)].vc;
  }
  std::vector<Interval> intervals_newer_than(const VectorClock& vc,
                                             NodeId exclude) const override;
  std::vector<Interval> own_intervals_after(std::uint32_t from_seq) const override;
  void apply_acquire(const VectorClock& sender_vc,
                     std::vector<Interval> ivs) override;
  std::uint64_t protocol_memory_bytes() const override;
  BlockTableStats block_table_stats() const override;

  /// Window-parallel execution is unsupported: `version_` is a flat
  /// global array bumped at the RELEASER (which may be a stale-dirty
  /// non-owner — ownership can migrate mid-interval under false sharing)
  /// while the owner and other releasers read/bump it concurrently, and
  /// the increment ORDER determines the version labels carried in
  /// notices.  The runtime degrades SimPar::kWindow to the serial loop
  /// for this protocol (results unchanged by construction).
  bool supports_window_par() const override { return false; }
  SimTime self_resched_bound() const override { return us(5); }

 private:
  struct Hint {
    std::uint32_t version = 0;
    NodeId owner = kNoNode;
  };

  /// Per-node block-keyed state as flat tables over one shared sparse-set
  /// index (mem/block_state.hpp; kind from DsmConfig::block_state).
  struct PerNode {
    mem::BlockIndex idx;
    VectorClock vc;
    NoticeStore store;
    mem::BlockSet own;       // blocks this node owns
    mem::BlockSet awaiting;  // ownership transfer inbound
    mem::BlockField<std::uint32_t> local_ver;
    std::vector<BlockId> dirty;  // written during the current interval
    mem::BlockSet dirty_set;
    mem::BlockField<Hint> hint;  // from notices and replies
    mem::BlockSet replied;
    mem::BlockField<std::vector<net::Message>> stash;

    PerNode(int nodes, mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks), store(nodes) {}
  };

  PerNode& me() { return pn_[static_cast<std::size_t>(eng().current())]; }

  void claim_for(BlockId b, NodeId requester, bool write_intent);
  void serve_read(net::Message& m);
  void serve_own(net::Message& m);
  void do_transfer(BlockId b, NodeId to, std::uint64_t their_version);
  void on_transfer(net::Message& m);
  /// Serves stashed requests shortly after an ownership arrival (deferred a
  /// few microseconds so the faulting store completes before the block can
  /// be stolen again).
  void schedule_drain(BlockId b);
  void drain_stash(BlockId b);
  bool is_static_home(BlockId b) const {
    return homes().static_home(b) == eng().current();
  }

  std::vector<PerNode> pn_;
  std::vector<NodeId> owner_;          // directory; logically at static home
  std::vector<std::uint32_t> version_; // block version; bumped at releases
};

}  // namespace dsm::proto
