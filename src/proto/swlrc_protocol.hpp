// Single-Writer Lazy Release Consistency (paper §2.2, after Keleher's
// single-writer LRC):
//   * one writable copy (the owner) may coexist with many read-only copies,
//   * a write fault migrates ownership (serialized at the block's static
//     home) but does NOT invalidate readers,
//   * readers are invalidated lazily at acquire time by versioned write
//     notices; the version comparison avoids unnecessary invalidations and
//     the owner id carried in the notice lets a later read fault fetch in
//     one hop (paper: "one-hop roundtrip"),
//   * the owner re-versions each block it wrote at every release.
// The static home is the ownership directory; the data's "first touch"
// placement follows from the first toucher becoming the first owner.
//
// Version labels come in two selectable representations
// (DsmConfig::swlrc_version_state, DESIGN.md §5g):
//   * sharded (default): a label is the packed pair (epoch:16 | rel:16).
//     The EPOCH is the block's ownership-grant count, assigned by the
//     static home in handler context and carried in the grant/forward/
//     transfer messages; the REL is the release rank within the assigning
//     node's tenure, computed locally by the releaser.  Labels are
//     globally unique (one tenure holder per epoch) and totally ordered
//     along the ownership chain, and every label touch is node-local or
//     at-home — which is what admits SW-LRC to window-parallel execution.
//   * flat: the original global version vector, bumped at the RELEASER.
//     Kept as the reference; the runtime degrades --sim-par=window to the
//     serial loop for it (the bump order is a cross-node race a window
//     cannot reproduce).
// The two schemes are order-isomorphic — hence bitwise identical in every
// simulated statistic — whenever no node releases a block it lost
// ownership of mid-interval (e.g. all lock-serialized sharing: release()
// publishes dirty blocks before the lock moves on).  Under such
// stale-dirty releases they deterministically differ: a flat stale bump
// outranks the new owner's unreleased copy, a sharded stale label never
// outranks a newer tenure, so the sharded scheme strictly reduces
// spurious invalidations/stale hints.
#pragma once

#include <vector>

#include "mem/block_state.hpp"
#include "proto/msg_types.hpp"
#include "proto/protocol.hpp"

namespace dsm::proto {

class SwLrcProtocol : public Protocol {
 public:
  explicit SwLrcProtocol(const ProtoEnv& env);

  const char* name() const override { return "SW-LRC"; }
  bool lazy() const override { return true; }

  void read_fault(BlockId b) override;
  void write_fault(BlockId b) override;
  void handle(net::Message& m) override;

  void at_release() override;
  VectorClock clock_of(NodeId n) const override {
    return pn_[static_cast<std::size_t>(n)].vc;
  }
  std::vector<Interval> intervals_newer_than(const VectorClock& vc,
                                             NodeId exclude) const override;
  std::vector<Interval> own_intervals_after(std::uint32_t from_seq) const override;
  void apply_acquire(const VectorClock& sender_vc,
                     std::vector<Interval> ivs) override;
  std::uint64_t protocol_memory_bytes() const override;
  BlockTableStats block_table_stats() const override;

  /// Window-parallel execution is supported under the sharded label
  /// scheme: every piece of protocol state is then owned by exactly one
  /// node (per-node tables, plus the directory/epoch shard owned by the
  /// static home and touched only in handler context there).  The flat
  /// reference scheme keeps the historical opt-out: its global version
  /// array is RMW'd at the RELEASER — which may be a stale-dirty
  /// non-owner — so the increment order is a cross-node race inside a
  /// window.
  bool supports_window_par() const override { return sharded_; }
  /// The only deferred self-reschedule in this protocol is
  /// schedule_drain()'s kDrainDelay self-post (the handler does not lift
  /// its clock first, so sends from the drained handlers can appear up to
  /// kDrainDelay early relative to the event time).
  SimTime self_resched_bound() const override { return kDrainDelay; }

 private:
  /// Deferral between an ownership arrival and serving stashed requests
  /// (lets the faulting store retire before the block is stolen again).
  /// Also the protocol's self-reschedule bound — keep the two tied.
  static constexpr SimTime kDrainDelay = us(5);

  struct Hint {
    std::uint32_t version = 0;
    NodeId owner = kNoNode;
  };

  /// Per-node block-keyed state as flat tables over one shared sparse-set
  /// index (mem/block_state.hpp; kind from DsmConfig::block_state).
  struct PerNode {
    mem::BlockIndex idx;
    VectorClock vc;
    NoticeStore store;
    mem::BlockSet own;       // blocks this node owns
    mem::BlockSet awaiting;  // ownership transfer inbound
    mem::BlockField<std::uint32_t> local_ver;
    std::vector<BlockId> dirty;  // written during the current interval
    mem::BlockSet dirty_set;
    mem::BlockField<Hint> hint;  // from notices and replies
    mem::BlockSet replied;
    mem::BlockField<std::vector<net::Message>> stash;
    // Sharded-scheme state (untouched under the flat reference):
    //   home shard — the slice of the ownership directory and the grant
    //   (tenure-epoch) counters for blocks whose static home is this node;
    //   only ever touched while executing AS this node in handler context.
    mem::BlockField<NodeId> home_owner;
    mem::BlockField<std::uint32_t> home_epoch;
    /// Tenure epoch this node may label releases with, valid while owning
    /// (and for the single possible stale-dirty release after a steal).
    mem::BlockField<std::uint32_t> my_epoch;

    PerNode(int nodes, mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks), store(nodes) {}
  };

  PerNode& me() { return pn_[static_cast<std::size_t>(eng().current())]; }

  void claim_for(BlockId b, NodeId requester, bool write_intent);
  void serve_read(net::Message& m);
  void serve_own(net::Message& m);
  void do_transfer(BlockId b, NodeId to, std::uint64_t their_version,
                   std::uint64_t new_epoch);
  void on_transfer(net::Message& m);

  // ---- Version-label scheme dispatch (sharded vs flat) ----

  /// Directory entry for `b`.  Caller must be executing as the static home.
  NodeId dir_owner(BlockId b);
  void set_dir_owner(BlockId b, NodeId owner);
  /// Sharded only: issues the next tenure epoch for `b` (at the home).
  std::uint32_t next_epoch(BlockId b);
  /// The label the current node would label `b` with right now: its
  /// local_ver under the sharded scheme (owners keep it current), the
  /// global version under flat.  Used by serve_read replies and the
  /// transfer skip-data check.
  std::uint32_t cur_label(PerNode& n, BlockId b);
  /// kLrcOwnTransfer arg[1]: the flat scheme ships the label alone; the
  /// sharded scheme additionally packs the NEW owner's tenure epoch into
  /// the high half (labels stay 32-bit on the wire — NoticeEntry and the
  /// interval codec are unchanged, so payload sizes match flat exactly).
  std::uint64_t transfer_arg(std::uint32_t label, std::uint64_t new_epoch) {
    return sharded_ ? (new_epoch << 32) | label : label;
  }
  /// Release label assignment — the heart of the scheme split; see
  /// at_release().
  std::uint32_t release_label(PerNode& n, BlockId b);
  /// Serves stashed requests shortly after an ownership arrival (deferred a
  /// few microseconds so the faulting store completes before the block can
  /// be stolen again).
  void schedule_drain(BlockId b);
  void drain_stash(BlockId b);
  bool is_static_home(BlockId b) const {
    return homes().static_home(b) == eng().current();
  }

  std::vector<PerNode> pn_;
  const bool sharded_;
  std::size_t num_blocks_;
  // Flat-scheme state (empty under sharded): the ownership directory as
  // one dense array (every entry still only touched at its static home)
  // and the global version vector bumped at releases.
  std::vector<NodeId> owner_;
  std::vector<std::uint32_t> version_;
};

}  // namespace dsm::proto
