// Traditional multiple-writer LRC with DISTRIBUTED diffs (paper §2.3's
// foil for HLRC, after TreadMarks [14][15]):
//   * twins/diffs like HLRC, but releases are LOCAL: diffs are stored at
//     the writer, nothing is eagerly sent anywhere;
//   * a faulting node requests the diffs it is missing from every writer
//     named by its write notices and applies them IN CAUSAL ORDER
//     (vector-timestamp sorted) on top of its retained copy;
//   * a node with no copy at all first fetches the pristine base from the
//     block's static manager.
// The comparison bench reproduces the §2.3 trade-off: cheap releases and
// diff-sized transfers, against multi-writer diff-request fan-out at every
// miss and diffs that accumulate at writers.  Like the paper's systems,
// the archive is garbage-collected periodically when DsmConfig::gc is
// kBarrier: at each barrier departure, diffs every other node has provably
// fetched past (per-block copy_vc minima) and write notices below the
// barrier frontier are reclaimed — results stay bitwise identical to the
// no-GC anchor because a reclaimed record can never be requested again
// (DESIGN.md §5h).
#pragma once

#include <vector>

#include "common/arena.hpp"
#include "mem/block_state.hpp"
#include "proto/msg_types.hpp"
#include "proto/protocol.hpp"

namespace dsm::proto {

class TmLrcProtocol : public Protocol {
 public:
  explicit TmLrcProtocol(const ProtoEnv& env);

  const char* name() const override { return "MW-LRC"; }
  bool lazy() const override { return true; }

  void read_fault(BlockId b) override;
  void write_fault(BlockId b) override;
  void handle(net::Message& m) override;

  void at_release() override;
  VectorClock clock_of(NodeId n) const override {
    return pn_[static_cast<std::size_t>(n)].vc;
  }
  std::vector<Interval> intervals_newer_than(const VectorClock& vc,
                                             NodeId exclude) const override;
  std::vector<Interval> own_intervals_after(std::uint32_t from_seq) const override;
  void apply_acquire(const VectorClock& sender_vc,
                     std::vector<Interval> ivs) override;
  std::uint64_t protocol_memory_bytes() const override;
  std::uint64_t peak_twin_bytes() const override { return peak_twin_bytes_; }
  std::uint64_t diff_archive_bytes() const override { return archive_bytes_; }
  std::uint64_t peak_diff_archive_bytes() const override {
    return peak_archive_bytes_;
  }
  BlockTableStats block_table_stats() const override;

  void gc_barrier_plan(const VectorClock& frontier) override;
  void gc_apply_local() override;
  void gc_drain_deferred() override;
  std::uint64_t gc_passes() const override { return gc_passes_; }
  std::uint64_t gc_diffs_freed() const override;
  std::uint64_t gc_bytes_reclaimed() const override;
  std::uint64_t gc_notices_pruned() const override;

 private:
  using SeqVec = std::vector<std::uint32_t>;

  /// One archived diff at its writer.  The data buffer is arena-backed;
  /// without GC archives accumulate until the end of the run (the arena's
  /// reset horizon); with --gc=barrier a reclaimed buffer's arena segment
  /// is recycled mid-run through the arena's size-classed free lists.
  struct ArchivedDiff {
    std::uint32_t seq = 0;       // writer's interval
    VectorClock stamp;           // writer's clock at release
    Bytes data;
  };

  /// Per-node block-keyed state as flat tables over one shared sparse-set
  /// index (mem/block_state.hpp; kind from DsmConfig::block_state).
  struct PerNode {
    mem::BlockIndex idx;
    VectorClock vc;
    NoticeStore store;
    mem::BlockField<Bytes> twins;
    std::vector<BlockId> dirty;
    mem::BlockSet dirty_set;
    mem::BlockField<SeqVec> required;  // from notices
    mem::BlockField<SeqVec> copy_vc;   // versions in my copy
    /// Diff archive: my own diffs per block, in seq order.
    mem::BlockField<std::vector<ArchivedDiff>> archive;
    mem::BlockSet have_base;  // copy bytes are meaningful
    int outstanding = 0;  // replies awaited by the faulting fiber
    /// Diffs collected for the in-flight fault, applied when complete.
    std::vector<ArchivedDiff> pending;
    bool base_pending = false;

    // --- barrier-frontier GC state (DsmConfig::gc == kBarrier) ---
    /// Blocks with a non-empty archive entry, in first-archive order —
    /// the deterministic iteration order for GC planning.
    std::vector<BlockId> archived_blocks;
    /// Deterministic node-local archive tally.  Mirrors this node's share
    /// of archive_bytes_, but is bumped synchronously at archive/free time
    /// (the engine counter cell can lag by a window's staged bumps under
    /// --sim-par=window, which would make the GC threshold decision
    /// schedule-dependent).
    std::uint64_t archive_bytes_local = 0;
    /// Plan handed from gc_barrier_plan to this node's gc_apply_local.
    bool gc_pending = false;
    VectorClock gc_frontier;
    /// (block, free diffs with seq <= this) pairs — always a prefix of the
    /// block's archive in seq order.
    std::vector<std::pair<BlockId, std::uint32_t>> gc_diffs;
    /// Arena-backed buffers whose logical free happened inside a parallel
    /// window: their owning arena belongs to another thread's serial
    /// phase, so the storage release is deferred to the next serial point.
    std::vector<Bytes> gc_deferred;
    // Per-node GC telemetry (summed by the protocol getters).
    std::uint64_t gc_diffs_freed = 0;
    std::uint64_t gc_bytes_reclaimed = 0;
    std::uint64_t gc_notices_pruned = 0;

    PerNode(int nodes, mem::BlockStateKind kind, std::size_t num_blocks)
        : idx(kind, num_blocks), store(nodes) {}
  };

  PerNode& me() { return pn_[static_cast<std::size_t>(eng().current())]; }

  SeqVec& seqvec(mem::BlockIndex& idx, mem::BlockField<SeqVec>& f, BlockId b) {
    bool inserted = false;
    SeqVec& v = f.ensure(idx, b, &inserted);
    if (inserted) v.assign(static_cast<std::size_t>(eng().nodes()), 0);
    return v;
  }

  /// Brings the local copy up to `required` (fiber context; blocks).
  void validate(BlockId b);
  /// Applies a complete fault's worth of diffs in causal order.  Must see
  /// ALL rounds of a validate at once: a later round can fetch a diff that
  /// happens-before one applied earlier (per-origin seqs advance, causal
  /// order does not), and applying it alone would regress shared words.
  void apply_diffs(BlockId b, std::vector<ArchivedDiff> diffs);

  // Global running counters with path-dependent peaks; bumps flow through
  // the engine's counter cells so lookahead windows can stage them and
  // replay in exact serial order (DESIGN.md §5g).
  std::uint64_t archive_bytes_ = 0;
  std::uint64_t peak_archive_bytes_ = 0;
  std::uint64_t twin_bytes_ = 0;
  std::uint64_t peak_twin_bytes_ = 0;
  int twin_ctr_ = -1;
  int archive_ctr_ = -1;
  /// Collections triggered (master-side count; written only at barrier
  /// finalize, which is serial-phase in every engine mode).
  std::uint64_t gc_passes_ = 0;
  std::vector<PerNode> pn_;
};

}  // namespace dsm::proto
