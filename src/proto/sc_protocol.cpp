#include "proto/sc_protocol.hpp"

#include <bit>
#include <cstring>

namespace dsm::proto {

namespace {
constexpr std::uint64_t kNoHint = ~0ull;

bool tag_ok(mem::Access have, bool write) {
  return write ? have == mem::Access::kReadWrite
               : have != mem::Access::kInvalid;
}
}  // namespace

ScProtocol::ScProtocol(const ProtoEnv& env)
    : Protocol(env), dir_(env.space->num_blocks()) {
  pn_.reserve(static_cast<std::size_t>(env.space->nodes()));
  for (int i = 0; i < env.space->nodes(); ++i) {
    pn_.emplace_back(env.config->block_state, env.space->num_blocks());
  }
}

void ScProtocol::read_fault(BlockId b) { fault(b, false); }
void ScProtocol::write_fault(BlockId b) { fault(b, true); }

void ScProtocol::invalidate_local(BlockId b) {
  const NodeId me = eng().current();
  if (space().access(me, b) != mem::Access::kInvalid) {
    space().set_access(me, b, mem::Access::kInvalid);
    ++my_stats().invalidations;
    trace_event(trace::Ev::kInvalidate, b);
  }
}

void ScProtocol::fault(BlockId b, bool write) {
  auto& eng = this->eng();
  const NodeId me = eng.current();
  eng.charge(costs().fault_exception);

  // One request per loop iteration; re-check the tag each time because a
  // block can be stolen between the grant and our retry (ping-pong under
  // false sharing — exactly the effect the paper measures in §5.4).
  while (!tag_ok(space().access(me, b), write)) {
    const NodeId h = homes().believed_home(me, b);
    if (h == me) {
      if (!homes().is_claimed(b)) {
        // First touch and I am the static home: claim it for myself.
        homes().claim(b, me);
        homes().learn(me, b, me);
        std::memcpy(space().block(me, b).data(),
                    space().backing_block(b).data(), space().granularity());
      }
      // I am (or believe I am) the home: run the directory transaction
      // locally.  Wait out any in-flight transaction first.
      Dir& d = dir_[b];
      if (d.busy) {
        eng.block_inline([&d] { return !d.busy; }, "SC: home waits for busy dir");
        continue;
      }
      eng.charge(costs().dir_op);
      PerNode& n = pn_[static_cast<std::size_t>(me)];
      n.replied.erase(n.idx, b);
      const QueuedReq r{me, write, false};
      if (write) {
        start_write(b, d, r);
      } else {
        start_read(b, d, r);
      }
      eng.block_inline([&n, b] { return n.replied.contains(n.idx, b); },
                "SC: home waits for local grant");
      n.replied.erase(n.idx, b);
      continue;
    }

    // Remote home (or a believed one): send the request and wait for a
    // reply.  The reply may race with an immediate invalidation; the outer
    // loop re-requests in that case.
    PerNode& n = pn_[static_cast<std::size_t>(me)];
    n.replied.erase(n.idx, b);
    net().send(h, write ? kScWriteReq : kScReadReq, b, 0, kNoHint,
               static_cast<std::uint64_t>(me));
    eng.block_inline([&n, b] { return n.replied.contains(n.idx, b); },
              "SC: waiting for data reply");
    n.replied.erase(n.idx, b);
  }
}

void ScProtocol::dispatch(BlockId b, const QueuedReq& r) {
  Dir& d = dir_[b];
  if (d.busy) {
    d.enqueue(r);
    return;
  }
  eng().charge(costs().dir_op);
  if (r.write) {
    start_write(b, d, r);
  } else {
    start_read(b, d, r);
  }
}

void ScProtocol::start_read(BlockId b, Dir& d, const QueuedReq& r) {
  const NodeId me = eng().current();  // the home
  if (d.owner == kNoNode) {
    DSM_CHECK_MSG(!d.sharers.contains(r.requester),
                  "read fault from a node already in sharers");
    d.sharers.insert(r.requester);
    grant(b, r, /*exclusive=*/false, /*with_data=*/r.requester != me);
    return;
  }
  DSM_CHECK(d.owner != r.requester);
  if (d.owner == me) {
    // Home itself holds the block exclusively: trivial write-back.
    space().set_access(me, b, mem::Access::kReadOnly);
    d.owner = kNoNode;
    d.sharers.clear();
    d.sharers.insert(me);
    d.sharers.insert(r.requester);
    grant(b, r, false, true);
    return;
  }
  d.busy = true;
  d.cur = r;
  net().send(d.owner, kScRecallRead, b);
}

void ScProtocol::start_write(BlockId b, Dir& d, const QueuedReq& r) {
  const NodeId me = eng().current();  // the home
  DSM_CHECK(d.owner != r.requester);
  if (d.owner == me) {
    invalidate_local(b);
    ++my_stats().writebacks;  // home copy is authoritative; no data moves
    trace_event(trace::Ev::kWriteback, b);
    d.owner = r.requester;
    d.sharers.clear();
    grant(b, r, true, r.requester != me);
    return;
  }
  if (d.owner != kNoNode) {
    d.busy = true;
    d.cur = r;
    net().send(d.owner, kScRecallWrite, b);
    return;
  }
  SharerSet others = d.sharers;
  others.erase(r.requester);
  if (others.contains(me)) {
    invalidate_local(b);
    others.erase(me);
    d.sharers.erase(me);
  }
  if (others.empty()) {
    const bool with_data =
        r.requester != me && !d.sharers.contains(r.requester);
    d.owner = r.requester;
    d.sharers.clear();
    grant(b, r, true, with_data);
    return;
  }
  d.busy = true;
  d.cur = r;
  d.pending_acks = others.count();
  others.for_each([&](NodeId n) { net().send(n, kScInv, b); });
}

void ScProtocol::finish_read(BlockId b, Dir& d) {
  // Called at the home when the owner's write-back (read recall) arrives.
  const NodeId old_owner = d.owner;
  d.owner = kNoNode;
  d.sharers.clear();
  d.sharers.insert(old_owner);
  d.sharers.insert(d.cur.requester);
  const QueuedReq r = d.cur;
  d.busy = false;
  grant(b, r, false, r.requester != eng().current());
  drain(b, d);
}

void ScProtocol::finish_write(BlockId b, Dir& d) {
  const bool requester_kept_copy = d.sharers.contains(d.cur.requester);
  d.owner = d.cur.requester;
  d.sharers.clear();
  const QueuedReq r = d.cur;
  d.busy = false;
  grant(b, r, true, r.requester != eng().current() && !requester_kept_copy);
  drain(b, d);
}

void ScProtocol::drain(BlockId b, Dir& d) {
  while (!d.busy && !d.queue_empty()) {
    const QueuedReq r = d.dequeue();
    eng().charge(costs().dir_op);
    if (r.write) {
      start_write(b, d, r);
    } else {
      start_read(b, d, r);
    }
  }
  // The home's own fiber may be waiting for !busy.
  eng().notify(eng().current());
}

void ScProtocol::grant(BlockId b, const QueuedReq& r, bool exclusive,
                       bool with_data) {
  const NodeId me = eng().current();  // the home
  if (r.requester == me) {
    space().set_access(me, b,
                       exclusive ? mem::Access::kReadWrite
                                 : mem::Access::kReadOnly);
    PerNode& n = pn_[static_cast<std::size_t>(me)];
    n.replied.insert(n.idx, b);
    eng().notify(me);
    return;
  }
  Bytes payload;
  if (with_data) payload.assign(space().block(me, b));
  net().send(r.requester, exclusive ? kScDataEx : kScData, b,
             static_cast<std::uint64_t>(me), 0, 0, std::move(payload));
}

void ScProtocol::serve_or_forward(net::Message& m) {
  const NodeId me = eng().current();
  const BlockId b = m.arg[0];
  const NodeId requester = static_cast<NodeId>(m.arg[3]);
  const bool write = m.type == kScWriteReq;

  const bool i_know_im_home =
      homes().believed_home(me, b) == me &&
      (homes().static_home(b) != me || homes().is_claimed(b));
  if (i_know_im_home) {
    dispatch(b, QueuedReq{requester, write, false});
    return;
  }
  if (homes().static_home(b) == me && !homes().is_claimed(b)) {
    eng().charge(costs().dir_op);
    if (first_touch()) {
      // First touch: the requester becomes the home and receives the
      // initial contents (conceptually stored here until now).
      homes().claim(b, requester);
      homes().learn(me, b, requester);
      const auto init = space().backing_block(b);
      net().send(requester, write ? kScDataEx : kScData, b,
                 static_cast<std::uint64_t>(requester), 0, 0, Bytes(init));
    } else {
      // Static homes: serve from here.
      homes().claim(b, me);
      homes().learn(me, b, me);
      std::memcpy(space().block(me, b).data(),
                  space().backing_block(b).data(), space().granularity());
      dispatch(b, QueuedReq{requester, write, false});
    }
    return;
  }
  // Not my block.  If a forwarder authoritatively named me as home, my
  // claim reply is still in flight: hold the request until it lands.
  if (m.arg[2] != kNoHint && static_cast<NodeId>(m.arg[2]) == me) {
    PerNode& n = pn_[static_cast<std::size_t>(me)];
    n.stash.ensure(n.idx, b).push_back(m);
    return;
  }
  // Forward toward the home; attach an authoritative hint when we have one.
  const NodeId h = homes().believed_home(me, b);
  DSM_CHECK(h != me);
  const bool authoritative =
      (homes().static_home(b) == me && homes().is_claimed(b)) ||
      homes().believed_home(me, b) != homes().static_home(b);
  eng().charge(costs().dir_op);
  net().send(h, m.type, b, m.arg[1],
             authoritative ? static_cast<std::uint64_t>(h) : kNoHint,
             static_cast<std::uint64_t>(requester));
}

void ScProtocol::install_as_home(BlockId b, bool exclusive,
                                 std::span<const std::byte> data) {
  const NodeId me = eng().current();
  DSM_CHECK(data.size() == space().granularity());
  std::memcpy(space().block(me, b).data(), data.data(), data.size());
  eng().charge(copy_cost(data.size()));
  ++my_stats().block_fetches;
  trace_event(trace::Ev::kBlockFetch, b,
              static_cast<std::uint32_t>(data.size()));
  Dir& d = dir_[b];
  if (exclusive) {
    d.owner = me;
    d.sharers.clear();
    space().set_access(me, b, mem::Access::kReadWrite);
  } else {
    d.owner = kNoNode;
    d.sharers.clear();
    d.sharers.insert(me);
    space().set_access(me, b, mem::Access::kReadOnly);
  }
  drain_stash(b);
}

void ScProtocol::drain_stash(BlockId b) {
  PerNode& n = pn_[static_cast<std::size_t>(eng().current())];
  std::vector<net::Message>* v = n.stash.find(n.idx, b);
  if (v == nullptr) return;
  std::vector<net::Message> msgs = std::move(*v);
  n.stash.erase(n.idx, b);
  for (net::Message& m : msgs) serve_or_forward(m);
}

void ScProtocol::on_reply(net::Message& m, bool exclusive) {
  const NodeId me = eng().current();
  const BlockId b = m.arg[0];
  const NodeId home = static_cast<NodeId>(m.arg[1]);
  homes().learn(me, b, home);
  if (home == me) {
    install_as_home(b, exclusive, m.payload);
  } else {
    if (!m.payload.empty()) {
      DSM_CHECK(m.payload.size() == space().granularity());
      std::memcpy(space().block(me, b).data(), m.payload.data(),
                  m.payload.size());
      eng().charge(copy_cost(m.payload.size()));
      ++my_stats().block_fetches;
      trace_event(trace::Ev::kBlockFetch, b,
                  static_cast<std::uint32_t>(m.payload.size()));
    }
    space().set_access(me, b,
                       exclusive ? mem::Access::kReadWrite
                                 : mem::Access::kReadOnly);
  }
  PerNode& n = pn_[static_cast<std::size_t>(me)];
  n.replied.insert(n.idx, b);
  eng().notify(me);
}

void ScProtocol::handle(net::Message& m) {
  const NodeId me = eng().current();
  const BlockId b = m.arg[0];

  // Forward progress: a revocation for a block whose grant the local fiber
  // has not yet consumed is deferred until the faulting access retires
  // (the hardware completes the faulting instruction before servicing the
  // next protocol request).  Without this, back-to-back grant+recall on
  // the same channel livelocks contended blocks.
  PerNode& pn = pn_[static_cast<std::size_t>(me)];
  if ((m.type == kScInv || m.type == kScRecallRead ||
       m.type == kScRecallWrite) &&
      pn.replied.contains(pn.idx, b)) {
    eng().post(eng().now(me) + us(2), me,
               [this, msg = m]() mutable { handle(msg); });
    return;
  }

  // Delayed-consistency extension: hold revocations for a configured
  // window so the holder's subsequent accesses still hit (Dubois-style
  // delayed invalidations; the paper leaves these to future work, §7).
  if (env_.config->sc_invalidate_delay > 0 && !m.arg[1] &&
      (m.type == kScInv || m.type == kScRecallRead ||
       m.type == kScRecallWrite)) {
    net::Message delayed = m;
    delayed.arg[1] = 1;  // mark as already-delayed
    eng().post(eng().now(me) + env_.config->sc_invalidate_delay, me,
               [this, msg = std::move(delayed)]() mutable { handle(msg); });
    return;
  }

  switch (m.type) {
    case kScReadReq:
    case kScWriteReq:
      serve_or_forward(m);
      break;

    case kScData:
      on_reply(m, false);
      break;
    case kScDataEx:
      on_reply(m, true);
      break;

    case kScRecallRead: {
      DSM_CHECK(space().access(me, b) == mem::Access::kReadWrite);
      space().set_access(me, b, mem::Access::kReadOnly);
      ++my_stats().writebacks;
      trace_event(trace::Ev::kWriteback, b);
      const auto blk = space().block(me, b);
      net().send(m.src, kScWriteBack, b, /*was_write=*/0, 0, 0, Bytes(blk));
      break;
    }
    case kScRecallWrite: {
      DSM_CHECK(space().access(me, b) == mem::Access::kReadWrite);
      invalidate_local(b);
      ++my_stats().writebacks;
      trace_event(trace::Ev::kWriteback, b);
      const auto blk = space().block(me, b);
      net().send(m.src, kScWriteBack, b, /*was_write=*/1, 0, 0, Bytes(blk));
      break;
    }

    case kScInv: {
      invalidate_local(b);
      eng().charge(costs().dir_op);
      net().send(m.src, kScInvAck, b);
      break;
    }

    case kScInvAck: {
      Dir& d = dir_[b];
      DSM_CHECK(d.busy && d.pending_acks > 0);
      if (--d.pending_acks == 0) finish_write(b, d);
      break;
    }

    case kScWriteBack: {
      Dir& d = dir_[b];
      DSM_CHECK(d.busy);
      DSM_CHECK(m.payload.size() == space().granularity());
      std::memcpy(space().block(me, b).data(), m.payload.data(),
                  m.payload.size());
      eng().charge(copy_cost(m.payload.size()));
      if (d.cur.write) {
        finish_write(b, d);
      } else {
        finish_read(b, d);
      }
      break;
    }

    default:
      DSM_CHECK_MSG(false, "SC: unknown message type");
  }
}


proto::BlockTableStats ScProtocol::block_table_stats() const {
  BlockTableStats s;
  for (const PerNode& n : pn_) {
    s.table_bytes += n.idx.bytes() + n.stash.bytes() + n.replied.bytes();
    s.slots += n.idx.slots();
    s.epoch_resets += n.idx.resets();
  }
  return s;
}

SimTime ScProtocol::self_resched_bound() const {
  // Both deferral sites in handle() re-post at now(me) + d with the clock
  // left at now(me): the busy-grant retry (+2 µs) and the delayed-
  // invalidation hold (+sc_invalidate_delay).  The sum bounds the worst
  // clock-behind-event gap even if one message takes both paths.
  return us(2) + env_.config->sc_invalidate_delay;
}

}  // namespace dsm::proto
