// Wire message type ids.  One flat space so the runtime can dispatch to
// the protocol, lock manager, or barrier manager by range.
#pragma once

#include <cstdint>

namespace dsm::proto {

enum MsgType : std::uint16_t {
  // ---- SC (Stache-style directory) ----
  kScReadReq = 1,    // arg0=block, arg1=requester believes home is dst
  kScWriteReq,       // arg0=block, arg1=requester has a valid RO copy
  kScData,           // arg0=block, arg1=true home; payload=block (may be empty)
  kScDataEx,         // arg0=block, arg1=true home; payload=block (may be empty)
  kScRecallRead,     // home -> owner: downgrade + write back
  kScRecallWrite,    // home -> owner: invalidate + write back
  kScInv,            // home -> sharer
  kScInvAck,         // sharer -> home
  kScWriteBack,      // owner -> home; payload=block

  // ---- SW-LRC ----
  kLrcReadReq = 32,  // arg0=block; to believed owner; forwarded if stale
  kLrcReadReply,     // arg0=block, arg1=version, arg2=owner; payload=block
  kLrcOwnReq,        // arg0=block, arg1=requester version (dedup data xfer)
  kLrcOwnTransfer,   // old owner -> new owner; arg0=block, arg1=new version,
                     // arg2=1 if payload carries data
  kLrcFwdOwn,        // home -> current owner: transfer to arg1

  // ---- HLRC ----
  kHlrcFetch = 64,   // arg0=block, arg1=write-intent; payload=required VC set
  kHlrcFetchReply,   // arg0=block, arg1=true home; payload=block
  kHlrcDiff,         // arg0=block, arg1=origin seq; payload=diff
  kHlrcDiffAck,      // arg0=block

  // ---- Traditional distributed-diff LRC (MW-LRC) ----
  kTmBaseReq = 80,   // arg0=block; to the static manager
  kTmBaseReply,      // arg0=block; payload=pristine block bytes
  kTmDiffReq,        // arg0=block, arg1=from seq (excl), arg2=to seq (incl)
  kTmDiffReply,      // arg0=block, arg1=diff count; payload=encoded diffs

  // ---- Home claiming (first touch), shared by all protocols ----
  kHomeClaimReq = 96,   // arg0=block, arg1=write-intent
  kHomeClaimReply,      // arg0=block, arg1=home; payload=block data if arg2=1

  // ---- Locks ----
  kLockReq = 128,    // arg0=lock; payload=requester VC
  kLockPass,         // home -> previous tail: arg0=lock, arg1=requester;
                     // payload=requester VC
  kLockGrant,        // granter -> requester: arg0=lock; payload=VC+intervals

  // ---- Barrier ----
  kBarrierArrive = 160,  // arg0=epoch; payload=VC+my new intervals
  kBarrierRelease,       // arg0=epoch; payload=VC+intervals for me
};

}  // namespace dsm::proto
