// Abstract coherence protocol interface plus the environment every
// protocol implementation works against.
//
// Threading/context discipline (see sim::Engine):
//   * read_fault/write_fault/at_release/flush_for_barrier run on the
//     faulting node's FIBER and may block.
//   * handle() and the acquire/notice helpers run as the destination node
//     in HANDLER context and must never block; multi-step transactions are
//     state machines keyed by block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "mem/address_space.hpp"
#include "mem/dirty_bitmap.hpp"
#include "mem/home_table.hpp"
#include "net/network.hpp"
#include "proto/vector_clock.hpp"
#include "proto/write_notice.hpp"
#include "runtime/config.hpp"
#include "runtime/stats.hpp"
#include "sim/engine.hpp"

namespace dsm::proto {

/// Occupancy of the per-block state tables (mem/block_state.hpp), summed
/// over nodes.  Host-side telemetry — backend-dependent (map vs soa), so
/// never part of bitwise result comparisons.
struct BlockTableStats {
  std::uint64_t table_bytes = 0;   // indexes + flat field arrays
  std::uint64_t slots = 0;         // dense slots handed out (touched blocks)
  std::uint64_t epoch_resets = 0;  // BlockIndex::reset() calls
};

struct ProtoEnv {
  sim::Engine* eng = nullptr;
  const DsmConfig* config = nullptr;
  net::Network* net = nullptr;
  mem::AddressSpace* space = nullptr;
  mem::HomeTable* homes = nullptr;
  const CostModel* costs = nullptr;
  std::vector<NodeStats>* stats = nullptr;  // one per node
  mem::DirtyBitmap* wbits = nullptr;        // per-node dirty-word bitmaps
  trace::Tracer* tracer = nullptr;          // null unless tracing is on
};

class Protocol {
 public:
  explicit Protocol(const ProtoEnv& env) : env_(env) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual const char* name() const = 0;
  /// True for release-consistent protocols (applications may add the extra
  /// synchronization RC requires when this is set — paper §5.2.2).
  virtual bool lazy() const = 0;

  /// Fiber context.  On return the faulting node's access tag permits the
  /// access (callers re-check and retry: under SC a block can be stolen
  /// between grant and use).
  virtual void read_fault(BlockId b) = 0;
  virtual void write_fault(BlockId b) = 0;

  /// Handler context: protocol message dispatch.
  virtual void handle(net::Message& m) = 0;

  // ------------------------------------------------------------------
  // Synchronization integration (no-ops under SC).

  /// Fiber context, called before a lock release or barrier arrival:
  /// HLRC flushes diffs to homes (blocking for acks) and both LRC
  /// protocols close the current interval.
  virtual void at_release() {}

  /// Current vector clock of `n` (LRC only; SC returns a zero clock).
  virtual VectorClock clock_of([[maybe_unused]] NodeId n) const { return {}; }

  /// All intervals the current node knows that are newer than `vc`
  /// (handler or fiber context; runs as the granting node).
  virtual std::vector<Interval> intervals_newer_than(
      const VectorClock& vc, NodeId exclude) const {
    (void)vc; (void)exclude;
    return {};
  }

  /// The current node's own closed intervals with seq > `from_seq`
  /// (barrier arrival payload).
  virtual std::vector<Interval> own_intervals_after(std::uint32_t from_seq) const {
    (void)from_seq;
    return {};
  }

  /// Dynamic protocol memory in use right now (twins, notice stores,
  /// version tables) and the peak twin footprint — the paper's §7 lists
  /// memory utilization as unexamined; the memory ablation bench measures
  /// it.
  virtual std::uint64_t protocol_memory_bytes() const { return 0; }
  virtual std::uint64_t peak_twin_bytes() const { return 0; }

  /// MW-LRC distributed diff archive usage (current and in-run peak);
  /// zero for every other protocol.
  virtual std::uint64_t diff_archive_bytes() const { return 0; }
  virtual std::uint64_t peak_diff_archive_bytes() const { return 0; }

  /// Per-block table occupancy (host-side; see BlockTableStats).
  virtual BlockTableStats block_table_stats() const { return {}; }

  // ------------------------------------------------------------------
  // Barrier-frontier garbage collection (DsmConfig::gc; DESIGN.md §5h).
  // No-ops for protocols without reclaimable per-interval state.

  /// Master-side planning pass, called by the barrier manager at
  /// finalize time — after every release payload has been built, while
  /// the cluster is quiescent (all nodes parked at the barrier, no
  /// protocol messages in flight).  `frontier` is the merged barrier
  /// clock every departing node's vector clock will dominate.  May read
  /// all nodes' state but must only record per-node plans; mutation
  /// happens in gc_apply_local() on each node.
  virtual void gc_barrier_plan(const VectorClock& frontier) {
    (void)frontier;
  }

  /// Applies the planned collection for the CURRENT node (fiber or
  /// handler context; touches only node-local state, so it is safe
  /// inside --sim-par=window batches).  Arena-backed buffers logically
  /// freed inside a window are parked instead of released (their owning
  /// arena belongs to the driving thread) and handed back by
  /// gc_drain_deferred().
  virtual void gc_apply_local() {}

  /// Releases window-deferred buffer storage.  Called on the driving
  /// thread at window-commit serial points (Engine::set_post_commit_hook)
  /// while no batch is executing; no-op when nothing is deferred.
  virtual void gc_drain_deferred() {}

  /// GC telemetry (host-side deterministic: a function of config alone).
  virtual std::uint64_t gc_passes() const { return 0; }
  virtual std::uint64_t gc_diffs_freed() const { return 0; }
  virtual std::uint64_t gc_bytes_reclaimed() const { return 0; }
  virtual std::uint64_t gc_notices_pruned() const { return 0; }

  // ------------------------------------------------------------------
  // Conservative parallel-DES contract (sim::Engine, SimPar::kWindow;
  // DESIGN.md §5g).

  /// Whether this protocol's handler/fiber code only touches state owned
  /// by the executing node (plus the engine's staged counters), so
  /// node-disjoint lookahead windows may run concurrently.  All four
  /// protocols satisfy this under their defaults; the one remaining
  /// opt-out is SW-LRC's flat version-label reference
  /// (--swlrc-version-state=flat), whose global per-block version array
  /// is read-modify-written at releasers that may not own the block
  /// (ownership can migrate mid-interval under false sharing) — that bump
  /// order is inherently cross-node, so the runtime silently degrades
  /// kWindow to the serial loop there, which is trivially bitwise
  /// identical.  The default sharded scheme derives labels from home-
  /// issued tenure epochs plus releaser-local ranks instead (DESIGN.md
  /// §5g) and runs windowed.
  virtual bool supports_window_par() const { return true; }

  /// Upper bound on how far BEHIND an event's timestamp the executing
  /// node's clock can be when the protocol sends a message from handler
  /// context.  Deferred self-reschedules (handlers that re-post
  /// themselves at now + d without lifting the clock) make sends appear
  /// up to `d` early relative to the handler's event time, shrinking the
  /// usable lookahead: the runtime derives
  ///   lookahead = oneway latency floor - self_resched_bound().
  virtual SimTime self_resched_bound() const { return 0; }

  /// Processes incoming intervals + the sender's clock at an acquire
  /// (lock grant or barrier release).  Runs as the acquiring node; may be
  /// handler context.
  virtual void apply_acquire(const VectorClock& sender_vc,
                             std::vector<Interval> ivs) {
    (void)sender_vc; (void)ivs;
  }

 protected:
  sim::Engine& eng() const { return *env_.eng; }
  net::Network& net() const { return *env_.net; }
  mem::AddressSpace& space() const { return *env_.space; }
  mem::HomeTable& homes() const { return *env_.homes; }
  const CostModel& costs() const { return *env_.costs; }
  NodeStats& stats(NodeId n) const { return (*env_.stats)[static_cast<std::size_t>(n)]; }
  NodeStats& my_stats() const { return stats(eng().current()); }
  bool first_touch() const { return env_.config->first_touch; }
  mem::DirtyBitmap& wbits() const { return *env_.wbits; }
  WriteTracking tracking() const { return env_.config->write_tracking; }

  SimTime copy_cost(std::size_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) *
                                costs().copy_per_byte_ns);
  }

  /// Records a protocol event for the current node when full tracing is
  /// on; free otherwise.  Host-side only — never touches virtual time.
  void trace_event(trace::Ev e, std::uint64_t arg, std::uint32_t aux = 0,
                   std::uint16_t extra = 0) const {
    if (env_.tracer != nullptr && env_.tracer->full()) {
      const NodeId n = eng().current();
      env_.tracer->record(n, e, eng().now(n), arg, aux, extra);
    }
  }

  /// Samples a counter track for the current node (full mode only).
  void trace_counter(trace::Ctr c, std::uint64_t value) const {
    if (env_.tracer != nullptr && env_.tracer->full()) {
      const NodeId n = eng().current();
      env_.tracer->counter(n, c, eng().now(n), value);
    }
  }

  ProtoEnv env_;
};

}  // namespace dsm::proto
