#include "proto/swlrc_protocol.hpp"

#include <cstring>

namespace dsm::proto {

namespace {
constexpr std::uint64_t kNoVer = ~0ull;

constexpr std::uint32_t pack_label(std::uint32_t epoch, std::uint32_t rel) {
  return (epoch << 16) | rel;
}
constexpr std::uint32_t label_epoch(std::uint32_t v) { return v >> 16; }
constexpr std::uint32_t label_rel(std::uint32_t v) { return v & 0xffffu; }
}  // namespace

SwLrcProtocol::SwLrcProtocol(const ProtoEnv& env)
    : Protocol(env),
      sharded_(env.config->swlrc_version_state == SwLrcVersionState::kSharded),
      num_blocks_(env.space->num_blocks()) {
  if (!sharded_) {
    owner_.assign(num_blocks_, kNoNode);
    version_.assign(num_blocks_, 0);
  }
  pn_.reserve(static_cast<std::size_t>(env.space->nodes()));
  for (int n = 0; n < env.space->nodes(); ++n) {
    pn_.emplace_back(env.space->nodes(), env.config->block_state,
                     env.space->num_blocks());
  }
}

// ---------------------------------------------------------------------
// Version-label scheme dispatch.

NodeId SwLrcProtocol::dir_owner(BlockId b) {
  DSM_CHECK(is_static_home(b));
  if (!sharded_) return owner_[b];
  const NodeId* o = me().home_owner.find(me().idx, b);
  return o == nullptr ? kNoNode : *o;
}

void SwLrcProtocol::set_dir_owner(BlockId b, NodeId owner) {
  DSM_CHECK(is_static_home(b));
  if (!sharded_) {
    owner_[b] = owner;
    return;
  }
  me().home_owner.ensure(me().idx, b) = owner;
}

std::uint32_t SwLrcProtocol::next_epoch(BlockId b) {
  if (!sharded_) return 0;
  DSM_CHECK(is_static_home(b));
  std::uint32_t& e = me().home_epoch.ensure(me().idx, b);
  DSM_CHECK_MSG(e < 0xffffu,
                "SW-LRC: tenure epoch overflow (> 65534 ownership grants "
                "for one block; widen the label split)");
  return ++e;
}

std::uint32_t SwLrcProtocol::cur_label(PerNode& n, BlockId b) {
  if (!sharded_) return version_[b];
  const std::uint32_t* v = n.local_ver.find(n.idx, b);
  return v == nullptr ? 0 : *v;
}

std::uint32_t SwLrcProtocol::release_label(PerNode& n, BlockId b) {
  if (!sharded_) return ++version_[b];
  // Sharded: rank this release within the node's tenure.  `my_epoch` is
  // set on every ownership arrival (claim or transfer), and a dirty block
  // implies the node held ownership this interval, so the entry exists.
  // After a mid-interval steal the node keeps labeling under its OLD
  // tenure epoch: the single stale-dirty release it can still issue stays
  // below every newer-tenure label, and the node is that epoch's only
  // label assigner, so uniqueness and chain monotonicity both hold.
  const std::uint32_t* ep = n.my_epoch.find(n.idx, b);
  DSM_CHECK_MSG(ep != nullptr, "SW-LRC: dirty block with no tenure epoch");
  const std::uint32_t* lv = n.local_ver.find(n.idx, b);
  const std::uint32_t prev =
      (lv != nullptr && label_epoch(*lv) == *ep) ? label_rel(*lv) : 0;
  DSM_CHECK_MSG(prev < 0xffffu,
                "SW-LRC: release rank overflow (> 65534 releases in one "
                "ownership tenure; widen the label split)");
  return pack_label(*ep, prev + 1);
}

// ---------------------------------------------------------------------
// Fault paths (fiber context).

void SwLrcProtocol::read_fault(BlockId b) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().fault_exception);

  while (space().access(self, b) == mem::Access::kInvalid) {
    NodeId target = kNoNode;
    const Hint* hit = n.hint.find(n.idx, b);
    if (hit != nullptr && hit->owner != self) {
      target = hit->owner;  // one-hop fetch via the notice's owner
    }
    if (target == kNoNode) {
      const NodeId sh = homes().static_home(b);
      if (sh == self) {
        if (!homes().is_claimed(b)) {
          claim_for(b, self, /*write_intent=*/false);
          return;
        }
        target = dir_owner(b);
        DSM_CHECK(target != self);  // we would hold `own` and a valid tag
      } else {
        target = sh;
      }
    }
    n.replied.erase(n.idx, b);
    net().send(target, kLrcReadReq, b, 0, 0,
               static_cast<std::uint64_t>(self));
    eng.block_inline([&n, b] { return n.replied.contains(n.idx, b); },
              "SW-LRC: waiting for read reply");
    n.replied.erase(n.idx, b);
  }
}

void SwLrcProtocol::write_fault(BlockId b) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().fault_exception);

  while (space().access(self, b) != mem::Access::kReadWrite) {
    if (n.own.contains(n.idx, b)) {
      // Owner re-writing after a release: purely local upgrade.
      space().set_access(self, b, mem::Access::kReadWrite);
      if (n.dirty_set.insert(n.idx, b)) n.dirty.push_back(b);
      return;
    }
    const NodeId sh = homes().static_home(b);
    if (sh == self && !homes().is_claimed(b)) {
      claim_for(b, self, /*write_intent=*/true);
      return;
    }
    // Ownership requests serialize at the static home.
    n.awaiting.insert(n.idx, b);
    n.replied.erase(n.idx, b);
    const std::uint32_t* vit = n.local_ver.find(n.idx, b);
    const std::uint64_t myver =
        (space().access(self, b) != mem::Access::kInvalid && vit != nullptr)
            ? *vit
            : kNoVer;
    if (sh == self) {
      // I am the directory: forward to the current owner directly.
      const NodeId old = dir_owner(b);
      DSM_CHECK(old != kNoNode && old != self);
      set_dir_owner(b, self);
      eng.charge(costs().dir_op);
      net().send(old, kLrcFwdOwn, b, myver, next_epoch(b),
                 static_cast<std::uint64_t>(self));
    } else {
      net().send(sh, kLrcOwnReq, b, myver, 0,
                 static_cast<std::uint64_t>(self));
    }
    eng.block_inline([&n, b] { return n.replied.contains(n.idx, b); },
              "SW-LRC: waiting for ownership transfer");
    n.replied.erase(n.idx, b);
  }
}

void SwLrcProtocol::claim_for(BlockId b, NodeId requester, bool write_intent) {
  // First touch: the requester becomes the first owner; the data
  // (conceptually resident here until now) moves with the grant.  With
  // migration disabled, the static home keeps initial ownership and the
  // request proceeds as a normal transfer/read.
  const NodeId self = eng().current();
  eng().charge(costs().dir_op);
  if (!first_touch()) requester = self;
  homes().claim(b, requester);
  set_dir_owner(b, requester);
  const std::uint32_t epoch0 = next_epoch(b);  // 1 under sharded, 0 flat
  if (requester == self) {
    PerNode& n = me();
    std::memcpy(space().block(self, b).data(),
                space().backing_block(b).data(), space().granularity());
    n.own.insert(n.idx, b);
    // The pristine block carries label 0 under both schemes (no release
    // has ever published it).
    n.local_ver.ensure(n.idx, b) = sharded_ ? 0 : version_[b];
    if (sharded_) n.my_epoch.ensure(n.idx, b) = epoch0;
    if (write_intent) {
      space().set_access(self, b, mem::Access::kReadWrite);
      if (n.dirty_set.insert(n.idx, b)) n.dirty.push_back(b);
    } else {
      space().set_access(self, b, mem::Access::kReadOnly);
    }
    return;
  }
  const auto init = space().backing_block(b);
  net().send(requester, kLrcOwnTransfer, b,
             transfer_arg(sharded_ ? 0 : version_[b], epoch0),
             write_intent ? 1 : 0, /*with_data=*/1, Bytes(init));
}

// ---------------------------------------------------------------------
// Release / acquire.

void SwLrcProtocol::at_release() {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  if (n.dirty.empty()) return;

  const std::uint32_t seq = n.vc[self] + 1;
  Interval iv;
  iv.origin = self;
  iv.seq = seq;
  iv.entries.reserve(n.dirty.size());
  for (BlockId b : n.dirty) {
    const std::uint32_t ver = release_label(n, b);
    // Only the current owner may relabel its copy: if ownership migrated
    // away mid-interval, our retained read-only copy is missing the new
    // owner's writes, and labeling it with the fresh version would make
    // the new owner's notice skip the invalidation (stale-copy bug).
    if (n.own.contains(n.idx, b)) n.local_ver.ensure(n.idx, b) = ver;
    iv.entries.push_back(NoticeEntry{b, ver, self});
    // Downgrade so the next interval's writes fault again (re-versioning).
    if (space().access(self, b) == mem::Access::kReadWrite) {
      space().set_access(self, b, mem::Access::kReadOnly);
    }
  }
  n.dirty.clear();
  n.dirty_set.clear();
  n.vc.advance(self);
  n.store.add(std::move(iv));
}

std::vector<Interval> SwLrcProtocol::intervals_newer_than(
    const VectorClock& vc, NodeId exclude) const {
  return pn_[static_cast<std::size_t>(eng().current())].store.newer_than(
      vc, exclude);
}

std::vector<Interval> SwLrcProtocol::own_intervals_after(
    std::uint32_t from_seq) const {
  const NodeId self = eng().current();
  return pn_[static_cast<std::size_t>(self)].store.after(self, from_seq);
}

void SwLrcProtocol::apply_acquire(const VectorClock& sender_vc,
                                  std::vector<Interval> ivs) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  for (Interval& iv : ivs) {
    // Gate on the store (see HLRC::apply_acquire for why not the vc).
    if (iv.seq <= n.store.have()[iv.origin]) continue;
    trace_event(trace::Ev::kWriteNotice,
                static_cast<std::uint64_t>(iv.origin),
                static_cast<std::uint32_t>(iv.entries.size()));
    for (const NoticeEntry& e : iv.entries) {
      eng.charge(costs().notice_proc);
      ++my_stats().notices_processed;
      Hint& h = n.hint.ensure(n.idx, e.block);
      if (e.version >= h.version) h = Hint{e.version, e.owner};
      if (n.own.contains(n.idx, e.block)) continue;  // the owner never self-invalidates
      if (space().access(self, e.block) == mem::Access::kInvalid) continue;
      const std::uint32_t* vit = n.local_ver.find(n.idx, e.block);
      const std::uint32_t myver = vit == nullptr ? 0 : *vit;
      if (myver < e.version) {
        space().set_access(self, e.block, mem::Access::kInvalid);
        ++my_stats().invalidations;
        trace_event(trace::Ev::kInvalidate, e.block);
      }
      // else: our copy is recent enough — the "avoid unnecessary
      // invalidations" benefit of versioned notices (paper §2.2).
    }
    n.store.add(std::move(iv));
  }
  n.vc.merge(sender_vc);
  DSM_CHECK_MSG(n.store.have().covers(n.vc),
                "SW-LRC: vector clock ahead of notice store");
}

// ---------------------------------------------------------------------
// Message handlers.

void SwLrcProtocol::serve_read(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  const NodeId requester = static_cast<NodeId>(m.arg[3]);
  PerNode& n = me();
  if (n.own.contains(n.idx, b)) {
    eng().charge(costs().dir_op);
    const auto blk = space().block(self, b);
    net().send(requester, kLrcReadReply, b, cur_label(n, b),
               static_cast<std::uint64_t>(self), 0, Bytes(blk));
    return;
  }
  if (n.awaiting.contains(n.idx, b)) {
    n.stash.ensure(n.idx, b).push_back(std::move(m));
    return;
  }
  if (is_static_home(b)) {
    if (!homes().is_claimed(b)) {
      claim_for(b, requester, /*write_intent=*/false);
      if (n.own.contains(n.idx, b)) serve_read(m);  // migration disabled
      return;
    }
    const NodeId o = dir_owner(b);
    if (o != self) {
      eng().charge(costs().dir_op);
      net().send(o, kLrcReadReq, b, 0, 0,
                 static_cast<std::uint64_t>(requester));
      return;
    }
    // owner_ says self but own() is empty: a transfer to us is in flight.
    n.stash.ensure(n.idx, b).push_back(std::move(m));
    return;
  }
  // Stale hint landed here; bounce through the directory.
  eng().charge(costs().dir_op);
  net().send(homes().static_home(b), kLrcReadReq, b, 0, 0,
             static_cast<std::uint64_t>(requester));
}

void SwLrcProtocol::do_transfer(BlockId b, NodeId to,
                                std::uint64_t their_version,
                                std::uint64_t new_epoch) {
  const NodeId self = eng().current();
  PerNode& n = me();
  DSM_CHECK(n.own.contains(n.idx, b));
  eng().charge(costs().dir_op);
  n.own.erase(n.idx, b);
  if (space().access(self, b) == mem::Access::kReadWrite) {
    // We keep a read-only copy (readers are not invalidated — §2.2).
    space().set_access(self, b, mem::Access::kReadOnly);
  }
  const std::uint32_t label = cur_label(n, b);
  // Skip the data when the requester's copy is current and we have no
  // unreleased writes in it.
  const bool with_data =
      !(their_version != kNoVer &&
        static_cast<std::uint32_t>(their_version) == label &&
        !n.dirty_set.contains(n.idx, b));
  Bytes payload;
  if (with_data) payload.assign(space().block(self, b));
  net().send(to, kLrcOwnTransfer, b, transfer_arg(label, new_epoch),
             /*write=*/1, with_data ? 1 : 0, std::move(payload));
}

void SwLrcProtocol::serve_own(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  const NodeId requester = static_cast<NodeId>(m.arg[3]);
  PerNode& n = me();

  if (m.type == kLrcOwnReq && is_static_home(b)) {
    if (!homes().is_claimed(b)) {
      claim_for(b, requester, /*write_intent=*/true);
      if (n.own.contains(n.idx, b)) {
        // Migration disabled: we claimed ownership ourselves; hand the
        // block to the writer through the normal transfer path.
        set_dir_owner(b, requester);
        do_transfer(b, requester, m.arg[1], next_epoch(b));
      }
      return;
    }
    const NodeId old = dir_owner(b);
    set_dir_owner(b, requester);
    eng().charge(costs().dir_op);
    const std::uint64_t e_new = next_epoch(b);
    if (old == self && n.own.contains(n.idx, b)) {
      do_transfer(b, requester, m.arg[1], e_new);
    } else if (old == self) {
      // Transfer to us still in flight; hand over once it lands.
      net::Message fwd = m;
      fwd.type = kLrcFwdOwn;
      fwd.arg[2] = e_new;
      n.stash.ensure(n.idx, b).push_back(std::move(fwd));
    } else {
      net().send(old, kLrcFwdOwn, b, m.arg[1], e_new,
                 static_cast<std::uint64_t>(requester));
    }
    return;
  }

  // kLrcFwdOwn at (presumed) owner; arg[2] carries the new tenure epoch
  // the home issued (0 under flat).
  if (n.own.contains(n.idx, b)) {
    if (n.replied.contains(n.idx, b)) {
      // Our own fiber has not yet consumed the ownership it was just
      // granted; let its faulting store retire before the block moves on.
      n.stash.ensure(n.idx, b).push_back(std::move(m));
      schedule_drain(b);
      return;
    }
    do_transfer(b, requester, m.arg[1], m.arg[2]);
    return;
  }
  if (n.awaiting.contains(n.idx, b)) {
    n.stash.ensure(n.idx, b).push_back(std::move(m));
    return;
  }
  DSM_CHECK_MSG(false, "SW-LRC: forwarded ownership reached a non-owner");
}

void SwLrcProtocol::on_transfer(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  const std::uint32_t version = static_cast<std::uint32_t>(m.arg[1]);
  const bool write_intent = m.arg[2] != 0;
  PerNode& n = me();

  n.awaiting.erase(n.idx, b);
  n.own.insert(n.idx, b);
  if (m.arg[3] != 0) {
    DSM_CHECK(m.payload.size() == space().granularity());
    std::memcpy(space().block(self, b).data(), m.payload.data(),
                m.payload.size());
    eng().charge(copy_cost(m.payload.size()));
    ++my_stats().block_fetches;
    trace_event(trace::Ev::kBlockFetch, b,
                static_cast<std::uint32_t>(m.payload.size()));
  }
  n.local_ver.ensure(n.idx, b) = version;
  if (sharded_) {
    n.my_epoch.ensure(n.idx, b) = static_cast<std::uint32_t>(m.arg[1] >> 32);
  }
  if (write_intent) {
    space().set_access(self, b, mem::Access::kReadWrite);
    if (n.dirty_set.insert(n.idx, b)) n.dirty.push_back(b);
  } else {
    space().set_access(self, b, mem::Access::kReadOnly);
  }
  n.replied.insert(n.idx, b);
  eng().notify(self);
  schedule_drain(b);
}

void SwLrcProtocol::schedule_drain(BlockId b) {
  PerNode& n = me();
  if (!n.stash.contains(n.idx, b)) return;
  // Give the faulting store a moment to land before the block is stolen.
  const NodeId self = eng().current();
  eng().post(eng().now(self) + kDrainDelay, self, [this, b] { drain_stash(b); });
}

void SwLrcProtocol::drain_stash(BlockId b) {
  PerNode& n = me();
  std::vector<net::Message>* v = n.stash.find(n.idx, b);
  if (v == nullptr) return;
  std::vector<net::Message> msgs = std::move(*v);
  n.stash.erase(n.idx, b);
  for (net::Message& m : msgs) {
    if (m.type == kLrcReadReq) {
      serve_read(m);
    } else {
      serve_own(m);
    }
  }
}

std::uint64_t SwLrcProtocol::protocol_memory_bytes() const {
  // Notice stores with per-entry versions + owner hints + version labels.
  // The directory+version (or directory+epoch shard) accounting is the
  // same 8 modeled bytes per block under both label schemes — the sharded
  // tenure-epoch cell rides in local_ver's 16-byte entry — so this figure
  // is bitwise comparable across them.
  std::uint64_t total = static_cast<std::uint64_t>(num_blocks_) * 8;
  for (const PerNode& n : pn_) {
    total += n.store.total_intervals() * 32;
    total += n.hint.size() * 24 + n.local_ver.size() * 16;
  }
  return total;
}

void SwLrcProtocol::handle(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  PerNode& n = me();
  switch (m.type) {
    case kLrcReadReq:
      serve_read(m);
      break;

    case kLrcReadReply: {
      DSM_CHECK(m.payload.size() == space().granularity());
      std::memcpy(space().block(self, b).data(), m.payload.data(),
                  m.payload.size());
      eng().charge(copy_cost(m.payload.size()));
      ++my_stats().block_fetches;
      trace_event(trace::Ev::kBlockFetch, b,
                  static_cast<std::uint32_t>(m.payload.size()));
      n.local_ver.ensure(n.idx, b) = static_cast<std::uint32_t>(m.arg[1]);
      n.hint.ensure(n.idx, b) = Hint{static_cast<std::uint32_t>(m.arg[1]),
                                     static_cast<NodeId>(m.arg[2])};
      if (space().access(self, b) == mem::Access::kInvalid) {
        space().set_access(self, b, mem::Access::kReadOnly);
      }
      n.replied.insert(n.idx, b);
      eng().notify(self);
      break;
    }

    case kLrcOwnReq:
    case kLrcFwdOwn:
      serve_own(m);
      break;

    case kLrcOwnTransfer:
      on_transfer(m);
      break;

    default:
      DSM_CHECK_MSG(false, "SW-LRC: unknown message type");
  }
}


proto::BlockTableStats SwLrcProtocol::block_table_stats() const {
  BlockTableStats s;
  for (const PerNode& n : pn_) {
    s.table_bytes += n.idx.bytes() + n.own.bytes() + n.awaiting.bytes() +
                     n.local_ver.bytes() + n.dirty_set.bytes() +
                     n.hint.bytes() + n.replied.bytes() + n.stash.bytes() +
                     n.home_owner.bytes() + n.home_epoch.bytes() +
                     n.my_epoch.bytes();
    s.slots += n.idx.slots();
    s.epoch_resets += n.idx.resets();
  }
  return s;
}

}  // namespace dsm::proto
