#include "proto/hlrc_protocol.hpp"

#include <cstring>

#include "mem/diff.hpp"

namespace dsm::proto {

namespace {
constexpr std::uint64_t kNoHint = ~0ull;
}

HlrcProtocol::HlrcProtocol(const ProtoEnv& env) : Protocol(env) {
  pn_.reserve(static_cast<std::size_t>(env.space->nodes()));
  hs_.reserve(static_cast<std::size_t>(env.space->nodes()));
  for (int n = 0; n < env.space->nodes(); ++n) {
    pn_.emplace_back(env.space->nodes(), env.config->block_state,
                     env.space->num_blocks());
    hs_.emplace_back(env.config->block_state, env.space->num_blocks());
  }
  twin_ctr_ = eng().register_counter(&twin_bytes_, &peak_twin_bytes_);
}

bool HlrcProtocol::covers(const SeqVec* applied, const SeqVec& required) {
  for (std::size_t i = 0; i < required.size(); ++i) {
    if (required[i] == 0) continue;
    if (applied == nullptr || (*applied)[i] < required[i]) return false;
  }
  return true;
}

bool HlrcProtocol::applied_covers(NodeId n, BlockId b) const {
  // Only ever asked at the home itself (n == the home of b), so n's own
  // home-side tables hold the applied versions.
  const PerNode& pn = pn_[static_cast<std::size_t>(n)];
  const SeqVec* req = pn.required.find(pn.idx, b);
  if (req == nullptr) return true;
  const HomeSide& h = hs_[static_cast<std::size_t>(n)];
  return covers(h.applied.find(h.idx, b), *req);
}

// Origins ride in one byte up to 255 nodes (payload sizes pinned by the
// golden stats) and widen to two bytes only for wider clusters; both sides
// branch on the same node count.
HlrcProtocol::SeqVec HlrcProtocol::decode_required(
    std::span<const std::byte> payload, int nodes) {
  SeqVec v(static_cast<std::size_t>(nodes), 0);
  ByteReader r(payload);
  const std::uint32_t n = payload.empty() ? 0 : r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t origin = nodes <= 255 ? r.u8() : r.u16();
    const std::uint32_t seq = r.u32();
    DSM_CHECK(origin < v.size());
    v[origin] = seq;
  }
  return v;
}

Bytes HlrcProtocol::encode_required(const SeqVec* req) {
  if (req == nullptr) return {};
  ByteWriter w;
  std::uint32_t n = 0;
  for (std::uint32_t s : *req) {
    if (s != 0) ++n;
  }
  if (n == 0) return {};
  w.u32(n);
  for (std::size_t i = 0; i < req->size(); ++i) {
    if ((*req)[i] != 0) {
      if (req->size() <= 255) {
        w.u8(static_cast<std::uint8_t>(i));
      } else {
        w.u16(static_cast<std::uint16_t>(i));
      }
      w.u32((*req)[i]);
    }
  }
  return w.take();
}

// ---------------------------------------------------------------------
// Fault paths (fiber context).

void HlrcProtocol::read_fault(BlockId b) {
  eng().charge(costs().fault_exception);
  fetch_block(b, /*write_intent=*/false);
}

void HlrcProtocol::write_fault(BlockId b) {
  const NodeId self = eng().current();
  PerNode& pn = me();
  eng().charge(costs().fault_exception);
  if (pn.provisional.contains(pn.idx, b) &&
      space().access(self, b) != mem::Access::kInvalid) {
    // We hold pre-claim data from a read; the write must go through the
    // claim path so the home migrates to the first WRITER.
    space().set_access(self, b, mem::Access::kInvalid);
    pn.provisional.erase(pn.idx, b);
  }
  if (space().access(self, b) == mem::Access::kInvalid) {
    fetch_block(b, /*write_intent=*/true);
  }
  if (space().access(self, b) == mem::Access::kReadWrite) return;
  const bool i_am_home = homes().believed_home(self, b) == self &&
                         homes().is_claimed(b);
  mark_dirty(b, /*make_twin=*/!i_am_home);
  space().set_access(self, b, mem::Access::kReadWrite);
}

void HlrcProtocol::mark_dirty(BlockId b, bool make_twin) {
  PerNode& n = me();
  if (make_twin) {
    if (tracking() == WriteTracking::kBitmapOnly) {
      // Twin-free mode: keep the table entry as a marker (the release path
      // keys off it) but never copy the block or pay the twin cost — the
      // dirty bitmap alone says what to ship.
      n.twins.ensure(n.idx, b);
    } else {
      const auto blk = space().block(eng().current(), b);
      bool inserted = false;
      Bytes& twin = n.twins.ensure(n.idx, b, &inserted);
      if (inserted) {
        twin = take_twin(blk);
        eng().bump_counter(twin_ctr_, static_cast<std::int64_t>(blk.size()));
      }
      eng().charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                        costs().twin_per_byte_ns));
      ++my_stats().twins;
      trace_event(trace::Ev::kTwinMake, b);
    }
  }
  if (n.dirty_set.insert(n.idx, b)) n.dirty.push_back(b);
}

void HlrcProtocol::fetch_block(BlockId b, bool write_intent) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();

  while (space().access(self, b) == mem::Access::kInvalid) {
    NodeId h = homes().believed_home(self, b);
    if (h == self && homes().static_home(b) == self && homes().is_claimed(b) &&
        homes().claimed_home(b) != self) {
      // We are the static home but a writer claimed the block: go there.
      h = homes().claimed_home(b);
    }
    if (h == self) {
      if (!homes().is_claimed(b)) {
        if (!write_intent) {
          // Reads do not migrate or pin the home (touch = store): serve
          // the initial contents provisionally.
          std::memcpy(space().block(self, b).data(),
                      space().backing_block(b).data(), space().granularity());
          space().set_access(self, b, mem::Access::kReadOnly);
          n.provisional.insert(n.idx, b);
          return;
        }
        // First write touch and I am the static home: claim for myself.
        homes().claim(b, self);
        homes().learn(self, b, self);
        std::memcpy(space().block(self, b).data(),
                    space().backing_block(b).data(), space().granularity());
      }
      if (homes().is_claimed(b) && homes().claimed_home(b) == self) {
        // Home access: data is in place, but incoming diffs named by write
        // notices may still be in flight.
        if (!applied_covers(self, b)) {
          eng.block_inline([this, self, b] { return applied_covers(self, b); },
                    "HLRC: home waits for required diffs");
        }
        space().set_access(self, b, mem::Access::kReadOnly);
        return;
      }
      // Our cache lied (cannot happen: claims are permanent).
      DSM_CHECK_MSG(false, "HLRC: believed self home but not claimed owner");
    }

    n.replied.erase(n.idx, b);
    const SeqVec* rit = n.required.find(n.idx, b);
    // Snapshot the requirement we are fetching against: write notices that
    // arrive while the fetch is in flight raise `required` but find our tag
    // Invalid (nothing to invalidate) — so the reply must be re-validated.
    SeqVec sent_req = rit == nullptr
                          ? SeqVec(static_cast<std::size_t>(eng.nodes()), 0)
                          : *rit;
    net().send(h, kHlrcFetch, b, write_intent ? 1 : 0, kNoHint,
               static_cast<std::uint64_t>(self), encode_required(&sent_req));
    eng.block_inline([&n, b] { return n.replied.contains(n.idx, b); },
              "HLRC: waiting for fetch reply");
    n.replied.erase(n.idx, b);
    const SeqVec* rit2 = n.required.find(n.idx, b);
    if (rit2 != nullptr &&
        space().access(self, b) != mem::Access::kInvalid) {
      for (std::size_t o = 0; o < rit2->size(); ++o) {
        if ((*rit2)[o] > sent_req[o]) {
          // Stale install: a concurrent notice outran our fetch.
          space().set_access(self, b, mem::Access::kInvalid);
          ++my_stats().invalidations;
          trace_event(trace::Ev::kInvalidate, b);
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Release / acquire (LRC machinery).

void HlrcProtocol::at_release() {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  if (!n.dirty.empty()) {
    const std::uint32_t seq = n.vc[self] + 1;
    Interval iv;
    iv.origin = self;
    iv.seq = seq;
    iv.entries.reserve(n.dirty.size());
    for (BlockId b : n.dirty) {
      const bool i_am_home =
          homes().believed_home(self, b) == self && homes().is_claimed(b);
      // A notice may only name blocks whose changes reached (or live at)
      // the home: a notice without a matching applied version would make
      // fetchers wait forever.
      bool announce = false;
      if (i_am_home) {
        // Writes went into the home copy directly; no diff needed (this is
        // why LU performs zero diffs — paper §5.2.2).
        HomeSide& h = my_home();
        seqvec(h.idx, h.applied, b)[static_cast<std::size_t>(self)] = seq;
        recheck_waiters(b);
        eng.notify(self);
        announce = true;
        // No twin to compare against, so the block's flags are dead weight
        // (homes are permanent; this node will never twin b).
        if (tracking() != WriteTracking::kTwinScan) {
          wbits().clear_block(self, b);
        }
      } else if (n.twins.contains(n.idx, b)) {
        announce = flush_block(b, seq) || n.early_flushed.contains(n.idx, b);
      } else {
        // Twin already gone: the diff went out during an acquire.
        announce = n.early_flushed.contains(n.idx, b);
      }
      if (announce) iv.entries.push_back(NoticeEntry{b, seq, self});
      if (space().access(self, b) == mem::Access::kReadWrite) {
        space().set_access(self, b, mem::Access::kReadOnly);
      }
    }
    n.dirty.clear();
    n.dirty_set.clear();
    n.early_flushed.clear();
    if (!iv.entries.empty()) {
      n.vc.advance(self);
      n.store.add(std::move(iv));
    }
  }
  // The release completes only after the home(s) acknowledged our diffs.
  eng.block_inline([&n] { return n.outstanding_acks == 0; },
            "HLRC: release waits for diff acks");
}

bool HlrcProtocol::flush_block(BlockId b, std::uint32_t seq) {
  const NodeId self = eng().current();
  PerNode& n = me();
  Bytes* twin = n.twins.find(n.idx, b);
  DSM_CHECK(twin != nullptr);
  const auto blk = space().block(self, b);
  switch (tracking()) {
    case WriteTracking::kTwinScan:
      eng().charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                        costs().diff_scan_per_byte_ns));
      mem::make_diff_into(blk, *twin, n.diff_scratch);
      break;
    case WriteTracking::kTwinBitmap: {
      // The simulated 1997 platform still pays the full scan — the bitmap
      // is host bookkeeping, so virtual time must match kTwinScan exactly.
      eng().charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                        costs().diff_scan_per_byte_ns));
      const auto bb = wbits().block_bits(self, b);
      mem::BitmapScanStats scan;
      mem::make_diff_from_bitmap(blk, *twin, bb.chunks, bb.bit0,
                                 n.diff_scratch, &scan);
      my_stats().bitmap_words_compared += scan.words_compared;
      my_stats().bitmap_scan_bytes_avoided += scan.scan_bytes_avoided;
      break;
    }
    case WriteTracking::kBitmapOnly: {
      // No twin: the simulated node walks only its flagged words.
      const std::uint64_t flagged = wbits().count_set(self, b);
      eng().charge(static_cast<SimTime>(static_cast<double>(flagged * 4) *
                                        costs().diff_scan_per_byte_ns));
      const auto bb = wbits().block_bits(self, b);
      mem::BitmapScanStats scan;
      mem::make_diff_bitmap_only(blk, bb.chunks, bb.bit0, n.diff_scratch,
                                 &scan);
      my_stats().bitmap_scan_bytes_avoided += scan.scan_bytes_avoided;
      break;
    }
  }
  if (tracking() != WriteTracking::kTwinScan) wbits().clear_block(self, b);
  if (!twin->empty()) {
    eng().bump_counter(twin_ctr_, -static_cast<std::int64_t>(blk.size()));
  }
  n.twins.erase(n.idx, b);  // the arena free list recycles the twin's storage
  if (n.diff_scratch.empty()) return false;  // spurious fault; nothing changed
  ++my_stats().diffs;
  my_stats().diff_bytes += n.diff_scratch.size();
  trace_event(trace::Ev::kDiffMake, b,
              static_cast<std::uint32_t>(n.diff_scratch.size()));
  const NodeId h = homes().believed_home(self, b);
  DSM_CHECK(h != self);
  ++n.outstanding_acks;
  // The scratch IS the encoded diff: move it into the payload instead of
  // copying (the next flush re-grows it from the arena free list).
  net().send(h, kHlrcDiff, b, seq, 0, static_cast<std::uint64_t>(self),
             std::move(n.diff_scratch));
  return true;
}

std::vector<Interval> HlrcProtocol::intervals_newer_than(
    const VectorClock& vc, NodeId exclude) const {
  return node(eng().current()).store.newer_than(vc, exclude);
}

std::vector<Interval> HlrcProtocol::own_intervals_after(
    std::uint32_t from_seq) const {
  const NodeId self = eng().current();
  return node(self).store.after(self, from_seq);
}

void HlrcProtocol::apply_acquire(const VectorClock& sender_vc,
                                 std::vector<Interval> ivs) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  for (Interval& iv : ivs) {
    // Gate on the notice store, not the vector clock: the vc may not be
    // merged yet (barrier master ingests all intervals before any clock
    // merge), and every stored interval has already been processed.
    if (iv.seq <= n.store.have()[iv.origin]) continue;  // already processed
    trace_event(trace::Ev::kWriteNotice,
                static_cast<std::uint64_t>(iv.origin),
                static_cast<std::uint32_t>(iv.entries.size()));
    for (const NoticeEntry& e : iv.entries) {
      eng.charge(costs().notice_proc);
      ++my_stats().notices_processed;
      SeqVec& req = seqvec(n.idx, n.required, e.block);
      auto& slot = req[static_cast<std::size_t>(iv.origin)];
      if (iv.seq > slot) slot = iv.seq;

      const mem::Access a = space().access(self, e.block);
      if (a == mem::Access::kInvalid) continue;
      const bool i_am_home = homes().believed_home(self, e.block) == self &&
                             homes().is_claimed(e.block);
      if (a == mem::Access::kReadWrite && !i_am_home &&
          n.twins.contains(n.idx, e.block)) {
        // Concurrent writer: push our changes to the home before dropping
        // the copy, so the writes merge (multiple-writer support).
        if (flush_block(e.block, n.vc[self] + 1)) {
          n.early_flushed.insert(n.idx, e.block);
        }
      }
      space().set_access(self, e.block, mem::Access::kInvalid);
      n.provisional.erase(n.idx, e.block);
      ++my_stats().invalidations;
      trace_event(trace::Ev::kInvalidate, e.block);
    }
    n.store.add(std::move(iv));
  }
  n.vc.merge(sender_vc);
  // Invariant: knowledge never exceeds the store — a clock claiming unseen
  // intervals would silently drop invalidations later.
  DSM_CHECK_MSG(n.store.have().covers(n.vc),
                "HLRC: vector clock ahead of notice store");
}

// ---------------------------------------------------------------------
// Message handlers.

void HlrcProtocol::reply_fetch(NodeId requester, BlockId b) {
  const NodeId self = eng().current();
  // The payload snapshots the block at send time (contents may mutate
  // before delivery), but the copy lands in an arena buffer, not the heap.
  const auto blk = space().block(self, b);
  net().send(requester, kHlrcFetchReply, b, static_cast<std::uint64_t>(self),
             0, 0, Bytes(blk));
}

void HlrcProtocol::serve_fetch_at_home(net::Message& m) {
  const BlockId b = m.arg[0];
  const NodeId requester = static_cast<NodeId>(m.arg[3]);
  eng().charge(costs().dir_op);
  const SeqVec required = decode_required(m.payload, eng().nodes());
  HomeSide& h = my_home();
  if (covers(h.applied.find(h.idx, b), required)) {
    reply_fetch(requester, b);
  } else {
    // Replied when the diffs land.
    h.waiters.ensure(h.idx, b).push_back(std::move(m));
  }
}

void HlrcProtocol::serve_or_forward(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  const NodeId requester = static_cast<NodeId>(m.arg[3]);
  const bool write_intent = m.arg[1] != 0;

  const bool i_know_im_home =
      homes().believed_home(self, b) == self &&
      (homes().static_home(b) != self || homes().is_claimed(b));
  if (i_know_im_home) {
    serve_fetch_at_home(m);
    return;
  }
  if (homes().static_home(b) == self && !homes().is_claimed(b)) {
    eng().charge(costs().dir_op);
    const auto init = space().backing_block(b);
    if (write_intent && first_touch()) {
      // First touch by a writer: the writer becomes the home.
      homes().claim(b, requester);
      homes().learn(self, b, requester);
      net().send(requester, kHlrcFetchReply, b,
                 static_cast<std::uint64_t>(requester), 0, 0, Bytes(init));
    } else if (write_intent) {
      // Migration disabled: the static home keeps the block.
      homes().claim(b, self);
      homes().learn(self, b, self);
      std::memcpy(space().block(self, b).data(), init.data(), init.size());
      reply_fetch(requester, b);
    } else {
      // A read before any write: serve provisionally, do NOT pin the
      // home — the first writer must still be able to take it.
      net().send(requester, kHlrcFetchReply, b,
                 static_cast<std::uint64_t>(self), /*provisional=*/1, 0,
                 Bytes(init));
    }
    return;
  }
  if (m.arg[2] != kNoHint && static_cast<NodeId>(m.arg[2]) == self) {
    PerNode& n = me();
    n.stash.ensure(n.idx, b).push_back(std::move(m));
    return;
  }
  const NodeId h = homes().believed_home(self, b);
  DSM_CHECK(h != self);
  eng().charge(costs().dir_op);
  net().send(h, m.type, b, m.arg[1], static_cast<std::uint64_t>(h),
             static_cast<std::uint64_t>(requester), std::move(m.payload));
}

void HlrcProtocol::install_as_home(BlockId b, std::span<const std::byte> data) {
  const NodeId self = eng().current();
  DSM_CHECK(data.size() == space().granularity());
  std::memcpy(space().block(self, b).data(), data.data(), data.size());
  eng().charge(copy_cost(data.size()));
  ++my_stats().block_fetches;
  trace_event(trace::Ev::kBlockFetch, b,
              static_cast<std::uint32_t>(data.size()));
  homes().learn(self, b, self);
  drain_stash(b);
}

void HlrcProtocol::drain_stash(BlockId b) {
  PerNode& n = me();
  std::vector<net::Message>* it = n.stash.find(n.idx, b);
  if (it == nullptr) return;
  std::vector<net::Message> msgs = std::move(*it);
  n.stash.erase(n.idx, b);
  for (net::Message& m : msgs) serve_or_forward(m);
}

void HlrcProtocol::on_diff(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  const std::uint32_t seq = static_cast<std::uint32_t>(m.arg[1]);
  const NodeId origin = static_cast<NodeId>(m.arg[3]);
  // Diffs are only ever sent to the (claimed) home.
  DSM_CHECK(homes().believed_home(self, b) == self);
  const std::size_t changed = mem::diff_changed_bytes(m.payload);
  eng().charge(costs().dir_op +
               static_cast<SimTime>(static_cast<double>(changed) *
                                    costs().diff_apply_per_byte_ns));
  mem::apply_diff(space().block(self, b), m.payload);
  trace_event(trace::Ev::kDiffApply, b,
              static_cast<std::uint32_t>(changed));
  HomeSide& h = my_home();
  auto& slot = seqvec(h.idx, h.applied, b)[static_cast<std::size_t>(origin)];
  if (seq > slot) slot = seq;
  net().send(origin, kHlrcDiffAck, b);
  recheck_waiters(b);
  // The home's own fiber may be blocked waiting for these versions.
  eng().notify(self);
}

std::uint64_t HlrcProtocol::protocol_memory_bytes() const {
  std::uint64_t total = twin_bytes_;
  for (const PerNode& n : pn_) {
    total += n.store.total_intervals() * 32;
    total += n.required.size() *
             (16 + sizeof(std::uint32_t) * static_cast<std::size_t>(
                                               space().nodes()));
  }
  for (const HomeSide& h : hs_) {
    total += h.applied.size() *
             (16 + sizeof(std::uint32_t) * static_cast<std::size_t>(
                                               space().nodes()));
  }
  return total;
}

void HlrcProtocol::recheck_waiters(BlockId b) {
  HomeSide& h = my_home();
  std::vector<net::Message>* it = h.waiters.find(h.idx, b);
  if (it == nullptr) return;
  std::vector<net::Message> still;
  std::vector<net::Message> ready;
  const SeqVec* applied = h.applied.find(h.idx, b);
  for (net::Message& m : *it) {
    const SeqVec required = decode_required(m.payload, eng().nodes());
    if (covers(applied, required)) {
      ready.push_back(std::move(m));
    } else {
      still.push_back(std::move(m));
    }
  }
  if (still.empty()) {
    h.waiters.erase(h.idx, b);
  } else {
    *it = std::move(still);
  }
  for (net::Message& m : ready) {
    reply_fetch(static_cast<NodeId>(m.arg[3]), m.arg[0]);
  }
}

void HlrcProtocol::handle(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  switch (m.type) {
    case kHlrcFetch:
      serve_or_forward(m);
      break;

    case kHlrcFetchReply: {
      const NodeId home = static_cast<NodeId>(m.arg[1]);
      const bool provisional = m.arg[2] != 0;
      if (provisional) {
        // Pre-claim data: usable, but the home is still unresolved.
        DSM_CHECK(m.payload.size() == space().granularity());
        std::memcpy(space().block(self, b).data(), m.payload.data(),
                    m.payload.size());
        eng().charge(copy_cost(m.payload.size()));
        ++my_stats().block_fetches;
        trace_event(trace::Ev::kBlockFetch, b,
                    static_cast<std::uint32_t>(m.payload.size()));
        space().set_access(self, b, mem::Access::kReadOnly);
        PerNode& n = me();
        n.provisional.insert(n.idx, b);
      } else {
        homes().learn(self, b, home);
        PerNode& n = me();
        n.provisional.erase(n.idx, b);
        if (home == self) {
          install_as_home(b, m.payload);
        } else {
          DSM_CHECK(m.payload.size() == space().granularity());
          std::memcpy(space().block(self, b).data(), m.payload.data(),
                      m.payload.size());
          eng().charge(copy_cost(m.payload.size()));
          ++my_stats().block_fetches;
          trace_event(trace::Ev::kBlockFetch, b,
                      static_cast<std::uint32_t>(m.payload.size()));
          space().set_access(self, b, mem::Access::kReadOnly);
        }
      }
      PerNode& n = me();
      n.replied.insert(n.idx, b);
      eng().notify(self);
      break;
    }

    case kHlrcDiff:
      on_diff(m);
      break;

    case kHlrcDiffAck: {
      PerNode& n = me();
      DSM_CHECK(n.outstanding_acks > 0);
      --n.outstanding_acks;
      eng().notify(self);
      break;
    }

    default:
      DSM_CHECK_MSG(false, "HLRC: unknown message type");
  }
}


proto::BlockTableStats HlrcProtocol::block_table_stats() const {
  BlockTableStats s;
  for (const PerNode& n : pn_) {
    s.table_bytes += n.idx.bytes() + n.twins.bytes() + n.dirty_set.bytes() +
                     n.early_flushed.bytes() + n.required.bytes() +
                     n.replied.bytes() + n.provisional.bytes() +
                     n.stash.bytes();
    s.slots += n.idx.slots();
    s.epoch_resets += n.idx.resets();
  }
  for (const HomeSide& h : hs_) {
    s.table_bytes += h.idx.bytes() + h.applied.bytes() + h.waiters.bytes();
    s.slots += h.idx.slots();
    s.epoch_resets += h.idx.resets();
  }
  return s;
}

}  // namespace dsm::proto
