#include "proto/tmlrc_protocol.hpp"

#include <cstring>

#include "mem/diff.hpp"

namespace dsm::proto {

TmLrcProtocol::TmLrcProtocol(const ProtoEnv& env) : Protocol(env) {
  pn_.reserve(static_cast<std::size_t>(env.space->nodes()));
  for (int n = 0; n < env.space->nodes(); ++n) {
    pn_.emplace_back(env.space->nodes(), env.config->block_state,
                     env.space->num_blocks());
  }
  // Global running byte counters with path-dependent peaks: staged and
  // replayed in serial order under window-parallel execution.
  twin_ctr_ = eng().register_counter(&twin_bytes_, &peak_twin_bytes_);
  archive_ctr_ = eng().register_counter(&archive_bytes_, &peak_archive_bytes_);
}

// ---------------------------------------------------------------------
// Fault paths (fiber context).

void TmLrcProtocol::read_fault(BlockId b) {
  eng().charge(costs().fault_exception);
  if (space().access(eng().current(), b) == mem::Access::kInvalid) {
    validate(b);
  }
}

void TmLrcProtocol::write_fault(BlockId b) {
  const NodeId self = eng().current();
  PerNode& n = me();
  eng().charge(costs().fault_exception);
  if (space().access(self, b) == mem::Access::kReadWrite) return;
  if (space().access(self, b) == mem::Access::kInvalid) validate(b);
  if (!n.twins.contains(n.idx, b)) {
    if (tracking() == WriteTracking::kBitmapOnly) {
      // Twin-free mode: empty marker keeps the twin-keyed control flow
      // (release walks, finish_validate patching) without the copy.
      n.twins.ensure(n.idx, b);
    } else {
      const auto blk = space().block(self, b);
      n.twins.ensure(n.idx, b) = Bytes(blk);
      eng().bump_counter(twin_ctr_, static_cast<std::int64_t>(blk.size()));
      eng().charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                        costs().twin_per_byte_ns));
      ++my_stats().twins;
      trace_event(trace::Ev::kTwinMake, b);
    }
  }
  if (n.dirty_set.insert(n.idx, b)) n.dirty.push_back(b);
  space().set_access(self, b, mem::Access::kReadWrite);
}

void TmLrcProtocol::validate(BlockId b) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  DSM_CHECK(n.outstanding == 0 && n.pending.empty());
  n.base_pending = false;

  // Base copy: pristine block bytes from the static manager (once, ever —
  // the copy is retained across invalidations and patched with diffs).
  if (!n.have_base.contains(n.idx, b)) {
    const NodeId mgr = homes().static_home(b);
    if (mgr == self) {
      std::memcpy(space().block(self, b).data(),
                  space().backing_block(b).data(), space().granularity());
      n.have_base.insert(n.idx, b);
    } else {
      ++n.outstanding;
      n.base_pending = true;
      net().send(mgr, kTmBaseReq, b);
    }
  }

  // Fetch rounds: `required` can GROW while we wait (interrupt-mode lock
  // grants and the barrier master ingest arrival notices in handler
  // context), so each round works against a snapshot and we loop until the
  // copy covers the live value.  Diffs are only BANKED per round: a later
  // round can return a diff that happens-before one fetched earlier (its
  // per-origin seq is higher, but origins are causally unordered), so the
  // whole bank must be applied together in one causal sort — applying each
  // round alone let a stale diff overwrite a causally newer word.
  std::vector<ArchivedDiff> collected;
  for (;;) {
    SeqVec snap(static_cast<std::size_t>(eng.nodes()), 0);
    const SeqVec* rit = n.required.find(n.idx, b);
    if (rit != nullptr) snap = *rit;
    const SeqVec* cit = n.copy_vc.find(n.idx, b);
    for (int o = 0; o < eng.nodes(); ++o) {
      if (o == self) continue;
      const std::uint32_t to = snap[static_cast<std::size_t>(o)];
      const std::uint32_t from =
          cit == nullptr ? 0 : (*cit)[static_cast<std::size_t>(o)];
      if (to > from) {
        ++n.outstanding;
        net().send(o, kTmDiffReq, b, from, to);
      }
    }
    if (n.outstanding > 0) {
      eng.block_inline([&n] { return n.outstanding == 0; },
                "MW-LRC: waiting for base/diffs");
    }
    for (ArchivedDiff& d : n.pending) collected.push_back(std::move(d));
    n.pending.clear();
    // The copy now covers exactly the snapshot this round fetched against
    // (NOT the live `required`, which may have grown while we waited).
    SeqVec& cv = seqvec(n.idx, n.copy_vc, b);
    for (std::size_t o = 0; o < cv.size(); ++o) {
      cv[o] = std::max(cv[o], snap[o]);
    }
    // Did notices outrun this round?
    const SeqVec* rit2 = n.required.find(n.idx, b);
    if (rit2 == nullptr) break;
    bool stale = false;
    for (std::size_t o = 0; o < cv.size(); ++o) {
      if ((*rit2)[o] > cv[o]) stale = true;
    }
    if (!stale) break;
  }
  apply_diffs(b, std::move(collected));
  if (space().access(self, b) == mem::Access::kInvalid) {
    space().set_access(self, b, mem::Access::kReadOnly);
  }
}

void TmLrcProtocol::apply_diffs(BlockId b, std::vector<ArchivedDiff> diffs) {
  const NodeId self = eng().current();
  PerNode& n = me();

  // Apply the collected diffs in CAUSAL order: repeatedly apply a diff no
  // unapplied diff happens-before (concurrent diffs touch disjoint words
  // for data-race-free programs, so their mutual order is free).
  std::vector<bool> applied(diffs.size(), false);
  Bytes* tw = n.twins.find(n.idx, b);
  for (std::size_t done = 0; done < diffs.size(); ++done) {
    std::size_t pick = diffs.size();
    for (std::size_t i = 0; i < diffs.size(); ++i) {
      if (applied[i]) continue;
      bool minimal = true;
      for (std::size_t j = 0; j < diffs.size() && minimal; ++j) {
        if (j == i || applied[j]) continue;
        if (diffs[i].stamp.covers(diffs[j].stamp) &&
            !(diffs[i].stamp == diffs[j].stamp)) {
          minimal = false;  // j happens-before i: apply j first
        }
      }
      if (minimal) {
        pick = i;
        break;
      }
    }
    DSM_CHECK_MSG(pick < diffs.size(), "cycle in diff causality");
    applied[pick] = true;
    mem::apply_diff(space().block(self, b), diffs[pick].data);
    // A dirty page's twin is patched too, so our next diff does not
    // re-ship other writers' words (TreadMarks does the same).  A twin-free
    // marker (kBitmapOnly) has no bytes to patch — our next diff ships only
    // bitmap-flagged words, which incoming diffs never touch.
    if (tw != nullptr && !tw->empty()) {
      mem::apply_diff(*tw, diffs[pick].data);
    }
    eng().charge(static_cast<SimTime>(
        static_cast<double>(mem::diff_changed_bytes(diffs[pick].data)) *
        costs().diff_apply_per_byte_ns));
    trace_event(trace::Ev::kDiffApply, b,
                static_cast<std::uint32_t>(
                    mem::diff_changed_bytes(diffs[pick].data)));
  }
}

// ---------------------------------------------------------------------
// Release / acquire.

void TmLrcProtocol::at_release() {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  if (n.dirty.empty()) return;

  const std::uint32_t seq = n.vc[self] + 1;
  VectorClock stamp = n.vc;
  stamp.set(self, seq);
  Interval iv;
  iv.origin = self;
  iv.seq = seq;
  for (BlockId b : n.dirty) {
    Bytes* twin = n.twins.find(n.idx, b);
    if (twin != nullptr) {
      const auto blk = space().block(self, b);
      Bytes diff;
      switch (tracking()) {
        case WriteTracking::kTwinScan:
          eng.charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                          costs().diff_scan_per_byte_ns));
          mem::make_diff_into(blk, *twin, diff);
          break;
        case WriteTracking::kTwinBitmap: {
          // Full-scan charge kept: virtual time must match kTwinScan.
          eng.charge(static_cast<SimTime>(static_cast<double>(blk.size()) *
                                          costs().diff_scan_per_byte_ns));
          const auto bb = wbits().block_bits(self, b);
          mem::BitmapScanStats scan;
          mem::make_diff_from_bitmap(blk, *twin, bb.chunks, bb.bit0,
                                     diff, &scan);
          my_stats().bitmap_words_compared += scan.words_compared;
          my_stats().bitmap_scan_bytes_avoided += scan.scan_bytes_avoided;
          break;
        }
        case WriteTracking::kBitmapOnly: {
          const std::uint64_t flagged = wbits().count_set(self, b);
          eng.charge(static_cast<SimTime>(static_cast<double>(flagged * 4) *
                                          costs().diff_scan_per_byte_ns));
          const auto bb = wbits().block_bits(self, b);
          mem::BitmapScanStats scan;
          mem::make_diff_bitmap_only(blk, bb.chunks, bb.bit0, diff, &scan);
          my_stats().bitmap_scan_bytes_avoided += scan.scan_bytes_avoided;
          break;
        }
      }
      if (tracking() != WriteTracking::kTwinScan) wbits().clear_block(self, b);
      eng.bump_counter(twin_ctr_, -static_cast<std::int64_t>(twin->size()));
      n.twins.erase(n.idx, b);
      if (!diff.empty()) {
        ++my_stats().diffs;
        my_stats().diff_bytes += diff.size();
        trace_event(trace::Ev::kDiffMake, b,
                    static_cast<std::uint32_t>(diff.size()));
        eng.bump_counter(archive_ctr_,
                         static_cast<std::int64_t>(diff.size()));
        // Inside a window the cell lags until commit replays the staged
        // bump; the sampled track may read one window behind (host-side
        // telemetry only, never compared bitwise).
        trace_counter(trace::Ctr::kDiffArchiveBytes, archive_bytes_);
        seqvec(n.idx, n.copy_vc, b)[static_cast<std::size_t>(self)] = seq;
        // Node-local tally for the GC threshold (the counter cell above
        // can lag by a window's staged bumps) and the deterministic
        // block iteration order for GC planning.  gc_apply_local() drops
        // emptied blocks from archived_blocks, so the empty() test here
        // cannot double-add.
        n.archive_bytes_local += diff.size();
        std::vector<ArchivedDiff>& arc = n.archive.ensure(n.idx, b);
        if (arc.empty()) n.archived_blocks.push_back(b);
        arc.push_back(ArchivedDiff{seq, stamp, std::move(diff)});
        iv.entries.push_back(NoticeEntry{b, seq, self});
      }
    }
    if (space().access(self, b) == mem::Access::kReadWrite) {
      space().set_access(self, b, mem::Access::kReadOnly);
    }
  }
  n.dirty.clear();
  n.dirty_set.clear();
  if (!iv.entries.empty()) {
    n.vc.advance(self);
    n.store.add(std::move(iv));
  }
  // THE distributed-LRC virtue: the release is entirely local — no diff
  // transfers, no acknowledgments (contrast HlrcProtocol::at_release).
}

std::vector<Interval> TmLrcProtocol::intervals_newer_than(
    const VectorClock& vc, NodeId exclude) const {
  // Cap the suffix at the sender's own clock: ship exactly the causal past
  // of this release, nothing more.  The store can transiently run AHEAD of
  // the clock — the barrier master ingests each arriver's own intervals
  // immediately but merges their clocks only once everyone has arrived — and
  // a lock granted from that window (interrupt delivery grants from handler
  // context) would otherwise leak a causally non-closed set: the acquirer
  // learns interval (o2,s2) without an (o1,s1) that happens-before it, its
  // validate applies the later diff, and when (o1,s1) finally arrives a
  // second validate replays the OLDER archived diff over newer bytes,
  // silently losing writes.  Intervals beyond the clock are concurrent with
  // this transfer; the acquirer learns them at its own next synchronization.
  const PerNode& n = pn_[static_cast<std::size_t>(eng().current())];
  return n.store.newer_than(vc, exclude, &n.vc);
}

std::vector<Interval> TmLrcProtocol::own_intervals_after(
    std::uint32_t from_seq) const {
  const NodeId self = eng().current();
  return pn_[static_cast<std::size_t>(self)].store.after(self, from_seq);
}

void TmLrcProtocol::apply_acquire(const VectorClock& sender_vc,
                                  std::vector<Interval> ivs) {
  auto& eng = this->eng();
  const NodeId self = eng.current();
  PerNode& n = me();
  eng.charge(costs().interval_op);
  for (Interval& iv : ivs) {
    if (iv.seq <= n.store.have()[iv.origin]) continue;
    trace_event(trace::Ev::kWriteNotice,
                static_cast<std::uint64_t>(iv.origin),
                static_cast<std::uint32_t>(iv.entries.size()));
    for (const NoticeEntry& e : iv.entries) {
      eng.charge(costs().notice_proc);
      ++my_stats().notices_processed;
      SeqVec& req = seqvec(n.idx, n.required, e.block);
      auto& slot = req[static_cast<std::size_t>(iv.origin)];
      if (iv.seq > slot) slot = iv.seq;
      // Invalidate even dirty copies: the copy bytes and twin survive and
      // are patched with the missing diffs on the next access.
      if (space().access(self, e.block) != mem::Access::kInvalid) {
        space().set_access(self, e.block, mem::Access::kInvalid);
        ++my_stats().invalidations;
        trace_event(trace::Ev::kInvalidate, e.block);
      }
    }
    n.store.add(std::move(iv));
  }
  n.vc.merge(sender_vc);
  DSM_CHECK_MSG(n.store.have().covers(n.vc),
                "MW-LRC: vector clock ahead of notice store");
}

// ---------------------------------------------------------------------
// Message handlers.

void TmLrcProtocol::handle(net::Message& m) {
  const NodeId self = eng().current();
  const BlockId b = m.arg[0];
  PerNode& n = me();
  switch (m.type) {
    case kTmBaseReq: {
      eng().charge(costs().dir_op);
      const auto init = space().backing_block(b);
      net().send(m.src, kTmBaseReply, b, 0, 0, 0, Bytes(init));
      break;
    }

    case kTmBaseReply: {
      DSM_CHECK(m.payload.size() == space().granularity());
      DSM_CHECK(n.base_pending);
      std::memcpy(space().block(self, b).data(), m.payload.data(),
                  m.payload.size());
      eng().charge(copy_cost(m.payload.size()));
      ++my_stats().block_fetches;
      trace_event(trace::Ev::kBlockFetch, b,
                  static_cast<std::uint32_t>(m.payload.size()));
      n.have_base.insert(n.idx, b);
      n.base_pending = false;
      DSM_CHECK(n.outstanding > 0);
      --n.outstanding;
      eng().notify(self);
      break;
    }

    case kTmDiffReq: {
      eng().charge(costs().dir_op);
      const auto from = static_cast<std::uint32_t>(m.arg[1]);
      const auto to = static_cast<std::uint32_t>(m.arg[2]);
      const std::vector<ArchivedDiff>* ait = n.archive.find(n.idx, b);
      // Count first, then encode into a single buffer (same wire format as
      // the old two-writer concatenation, without the extra copy).
      std::uint32_t count = 0;
      if (ait != nullptr) {
        for (const ArchivedDiff& d : *ait) {
          if (d.seq > from && d.seq <= to) ++count;
        }
      }
      ByteWriter w;
      w.u32(count);
      if (ait != nullptr) {
        for (const ArchivedDiff& d : *ait) {
          if (d.seq > from && d.seq <= to) {
            w.u32(d.seq);
            d.stamp.encode(w, eng().nodes());
            w.bytes(d.data);
          }
        }
      }
      net().send(m.src, kTmDiffReply, b, count, 0, 0, w.take());
      break;
    }

    case kTmDiffReply: {
      ByteReader r(m.payload);
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        ArchivedDiff d;
        d.seq = r.u32();
        d.stamp = VectorClock::decode(r, eng().nodes());
        d.data = r.bytes_buf();
        n.pending.push_back(std::move(d));
      }
      DSM_CHECK(n.outstanding > 0);
      --n.outstanding;
      eng().notify(self);
      break;
    }

    default:
      DSM_CHECK_MSG(false, "MW-LRC: unknown message type");
  }
}

// ---------------------------------------------------------------------
// Barrier-frontier garbage collection (DsmConfig::gc == kBarrier).
//
// Safety argument (DESIGN.md §5h): an archived diff (block b, origin o,
// seq s) is requested only by kTmDiffReq with from < s <= to, where
// `from` is the requester's copy_vc[b][o] — monotonically non-decreasing
// at every node, and 0 for a node that has never validated b (a future
// first reader needs EVERY diff of b).  So the diff is unreachable
// exactly when every other node's copy_vc[b][o] is already >= s; the
// reclaimable records form a prefix of the archive in seq order, and a
// prefix erase can never change any future reply — results stay bitwise
// identical to kOff by construction, and GC itself charges no virtual
// time and sends no messages (it models the local reclamation the
// paper's systems run between synchronization operations).
//
// Timing: gc_barrier_plan runs in the barrier master's finalize, when the
// cluster is quiescent — every node is parked at the barrier with no
// protocol messages in flight, so reading (and planning into) other
// nodes' state is deterministic; under --sim-par=window those nodes had
// no occurrence since their arrive send committed (barrier messages cross
// window boundaries: one-way latency >= lookahead), so the reads are
// ordered by the window-gate handshake and TSan-clean.  Each node then
// mutates its own state in gc_apply_local — the master inline at
// finalize (after the release payloads were built), everyone else in
// their kBarrierRelease handler.

void TmLrcProtocol::gc_barrier_plan(const VectorClock& frontier) {
  if (env_.config->gc != GcMode::kBarrier) return;
  // Threshold on the node-local tallies: deterministic in every engine
  // mode, unlike the staged archive_bytes_ cell.
  std::uint64_t total = 0;
  for (const PerNode& n : pn_) total += n.archive_bytes_local;
  if (total < env_.config->gc_threshold_bytes) return;
  ++gc_passes_;
  const int nodes = eng().nodes();
  for (NodeId o = 0; o < nodes; ++o) {
    PerNode& w = pn_[static_cast<std::size_t>(o)];
    w.gc_pending = true;
    w.gc_frontier = frontier;
    w.gc_diffs.clear();
    for (BlockId b : w.archived_blocks) {
      const std::vector<ArchivedDiff>* arc = w.archive.find(w.idx, b);
      if (arc == nullptr || arc->empty()) continue;
      // Reclaim horizon: the minimum fetch frontier over every possible
      // requester.  A node with no copy_vc entry for b has fetched
      // nothing (horizon 0).  nodes == 1 leaves the horizon at max():
      // with no possible requester the whole archive is dead.
      std::uint32_t horizon = UINT32_MAX;
      for (NodeId r = 0; r < nodes && horizon > 0; ++r) {
        if (r == o) continue;
        const PerNode& rn = pn_[static_cast<std::size_t>(r)];
        const SeqVec* cv = rn.copy_vc.find(rn.idx, b);
        const std::uint32_t got =
            cv == nullptr ? 0 : (*cv)[static_cast<std::size_t>(o)];
        horizon = std::min(horizon, got);
      }
      if (horizon >= arc->front().seq) w.gc_diffs.emplace_back(b, horizon);
    }
  }
}

void TmLrcProtocol::gc_apply_local() {
  PerNode& n = me();
  if (!n.gc_pending) return;
  n.gc_pending = false;
  auto& eng = this->eng();
  const bool windowed = eng.in_parallel_window();
  std::uint64_t freed_bytes = 0;
  std::uint64_t freed = 0;
  for (const auto& [b, horizon] : n.gc_diffs) {
    std::vector<ArchivedDiff>* arc = n.archive.find(n.idx, b);
    DSM_CHECK(arc != nullptr);
    std::size_t k = 0;
    while (k < arc->size() && (*arc)[k].seq <= horizon) {
      ArchivedDiff& d = (*arc)[k];
      freed_bytes += d.data.size();
      if (windowed && d.data.arena_backed()) {
        // The owning arena lives on the driving thread; park the buffer
        // and let gc_drain_deferred release it at the window commit.
        n.gc_deferred.push_back(std::move(d.data));
      }
      ++k;
    }
    arc->erase(arc->begin(), arc->begin() + static_cast<std::ptrdiff_t>(k));
    freed += k;
  }
  n.gc_diffs.clear();
  if (freed > 0) {
    std::erase_if(n.archived_blocks, [&](BlockId b) {
      const std::vector<ArchivedDiff>* arc = n.archive.find(n.idx, b);
      return arc == nullptr || arc->empty();
    });
  }
  n.gc_diffs_freed += freed;
  n.gc_bytes_reclaimed += freed_bytes;
  DSM_CHECK(n.archive_bytes_local >= freed_bytes);
  n.archive_bytes_local -= freed_bytes;
  if (freed_bytes > 0) {
    eng.bump_counter(archive_ctr_, -static_cast<std::int64_t>(freed_bytes));
    trace_counter(trace::Ctr::kDiffArchiveBytes, archive_bytes_);
  }
  n.gc_notices_pruned += n.store.prune_below(n.gc_frontier);
  trace_counter(trace::Ctr::kGcReclaimedBytes, n.gc_bytes_reclaimed);
}

void TmLrcProtocol::gc_drain_deferred() {
  for (PerNode& n : pn_) n.gc_deferred.clear();
}

std::uint64_t TmLrcProtocol::gc_diffs_freed() const {
  std::uint64_t total = 0;
  for (const PerNode& n : pn_) total += n.gc_diffs_freed;
  return total;
}

std::uint64_t TmLrcProtocol::gc_bytes_reclaimed() const {
  std::uint64_t total = 0;
  for (const PerNode& n : pn_) total += n.gc_bytes_reclaimed;
  return total;
}

std::uint64_t TmLrcProtocol::gc_notices_pruned() const {
  std::uint64_t total = 0;
  for (const PerNode& n : pn_) total += n.gc_notices_pruned;
  return total;
}

std::uint64_t TmLrcProtocol::protocol_memory_bytes() const {
  // The distributed scheme's cost: diffs live at their writers until the
  // barrier-frontier GC (--gc=barrier) proves them unreachable — or, with
  // GC off, until the end of the run (the seed behaviour the paper's
  // systems avoid by collecting periodically).
  std::uint64_t total = archive_bytes_ + twin_bytes_;
  for (const PerNode& n : pn_) {
    total += n.store.total_intervals() * 32;
    total += (n.required.size() + n.copy_vc.size()) *
             (16 + 4 * static_cast<std::size_t>(space().nodes()));
  }
  return total;
}


proto::BlockTableStats TmLrcProtocol::block_table_stats() const {
  BlockTableStats s;
  for (const PerNode& n : pn_) {
    s.table_bytes += n.idx.bytes() + n.twins.bytes() + n.dirty_set.bytes() +
                     n.required.bytes() + n.copy_vc.bytes() +
                     n.archive.bytes() + n.have_base.bytes();
    s.slots += n.idx.slots();
    s.epoch_resets += n.idx.resets();
  }
  return s;
}

}  // namespace dsm::proto
