#include "proto/write_notice.hpp"

namespace dsm::proto {

void encode_intervals(ByteWriter& w, const std::vector<Interval>& ivs) {
  w.u32(static_cast<std::uint32_t>(ivs.size()));
  for (const Interval& iv : ivs) {
    w.u8(static_cast<std::uint8_t>(iv.origin));
    w.u32(iv.seq);
    w.u32(static_cast<std::uint32_t>(iv.entries.size()));
    for (const NoticeEntry& e : iv.entries) {
      w.u64(e.block);
      w.u32(e.version);
      w.u8(static_cast<std::uint8_t>(e.owner == kNoNode ? 0xff : e.owner));
    }
  }
}

std::vector<Interval> decode_intervals(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<Interval> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Interval iv;
    iv.origin = static_cast<NodeId>(r.u8());
    iv.seq = r.u32();
    const std::uint32_t m = r.u32();
    iv.entries.reserve(m);
    for (std::uint32_t j = 0; j < m; ++j) {
      NoticeEntry e;
      e.block = r.u64();
      e.version = r.u32();
      const std::uint8_t o = r.u8();
      e.owner = o == 0xff ? kNoNode : static_cast<NodeId>(o);
      iv.entries.push_back(e);
    }
    out.push_back(std::move(iv));
  }
  return out;
}

void NoticeStore::add(Interval iv) {
  DSM_CHECK(iv.origin >= 0 &&
            iv.origin < static_cast<NodeId>(per_origin_.size()));
  const std::uint32_t h = have_[iv.origin];
  if (iv.seq <= h) return;  // already known
  DSM_CHECK_MSG(iv.seq == h + 1, "gap in received intervals");
  have_.set(iv.origin, iv.seq);
  per_origin_[static_cast<std::size_t>(iv.origin)].push_back(std::move(iv));
}

std::vector<Interval> NoticeStore::newer_than(const VectorClock& vc,
                                              NodeId exclude) const {
  std::vector<Interval> out;
  for (std::size_t o = 0; o < per_origin_.size(); ++o) {
    if (static_cast<NodeId>(o) == exclude) continue;
    const std::uint32_t from = vc[static_cast<NodeId>(o)];
    const auto& ivs = per_origin_[o];
    // Intervals are stored with seq == index + 1.
    for (std::size_t i = from; i < ivs.size(); ++i) out.push_back(ivs[i]);
  }
  return out;
}

std::size_t NoticeStore::total_intervals() const {
  std::size_t n = 0;
  for (const auto& v : per_origin_) n += v.size();
  return n;
}

}  // namespace dsm::proto
