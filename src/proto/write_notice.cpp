#include "proto/write_notice.hpp"

namespace dsm::proto {

// Node ids ride in one byte up to 255 nodes (the paper-scale format, whose
// payload sizes are pinned by the golden stats) and widen to two bytes only
// when the cluster itself is wider; both sides branch on the same node
// count, so the format is unambiguous.
namespace {
constexpr int kWideNodeThreshold = 256;

void put_node(ByteWriter& w, NodeId n, int nodes, NodeId none_value) {
  const std::uint32_t v =
      n == kNoNode ? static_cast<std::uint32_t>(none_value)
                   : static_cast<std::uint32_t>(n);
  if (nodes <= kWideNodeThreshold - 1) {
    w.u8(static_cast<std::uint8_t>(v));
  } else {
    w.u16(static_cast<std::uint16_t>(v));
  }
}

NodeId get_node(ByteReader& r, int nodes, NodeId none_value) {
  const std::uint32_t v =
      nodes <= kWideNodeThreshold - 1 ? r.u8() : r.u16();
  return v == static_cast<std::uint32_t>(none_value) ? kNoNode
                                                     : static_cast<NodeId>(v);
}
}  // namespace

void encode_intervals(ByteWriter& w, const std::vector<Interval>& ivs,
                      int nodes) {
  const NodeId none = nodes <= kWideNodeThreshold - 1 ? 0xff : 0xffff;
  w.u32(static_cast<std::uint32_t>(ivs.size()));
  for (const Interval& iv : ivs) {
    put_node(w, iv.origin, nodes, none);
    w.u32(iv.seq);
    w.u32(static_cast<std::uint32_t>(iv.entries.size()));
    for (const NoticeEntry& e : iv.entries) {
      w.u64(e.block);
      w.u32(e.version);
      put_node(w, e.owner, nodes, none);
    }
  }
}

std::vector<Interval> decode_intervals(ByteReader& r, int nodes) {
  const NodeId none = nodes <= kWideNodeThreshold - 1 ? 0xff : 0xffff;
  const std::uint32_t n = r.u32();
  std::vector<Interval> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Interval iv;
    iv.origin = get_node(r, nodes, none);
    iv.seq = r.u32();
    const std::uint32_t m = r.u32();
    iv.entries.reserve(m);
    for (std::uint32_t j = 0; j < m; ++j) {
      NoticeEntry e;
      e.block = r.u64();
      e.version = r.u32();
      e.owner = get_node(r, nodes, none);
      iv.entries.push_back(e);
    }
    out.push_back(std::move(iv));
  }
  return out;
}

void NoticeStore::add(Interval iv) {
  DSM_CHECK(iv.origin >= 0 &&
            iv.origin < static_cast<NodeId>(per_origin_.size()));
  const std::uint32_t h = have_[iv.origin];
  if (iv.seq <= h) return;  // already known
  DSM_CHECK_MSG(iv.seq == h + 1, "gap in received intervals");
  have_.set(iv.origin, iv.seq);
  per_origin_[static_cast<std::size_t>(iv.origin)].push_back(std::move(iv));
}

std::vector<Interval> NoticeStore::newer_than(const VectorClock& vc,
                                              NodeId exclude,
                                              const VectorClock* upto) const {
  std::vector<Interval> out;
  for (std::size_t o = 0; o < per_origin_.size(); ++o) {
    if (static_cast<NodeId>(o) == exclude) continue;
    const std::uint32_t from = vc[static_cast<NodeId>(o)];
    const auto& ivs = per_origin_[o];
    // Intervals are stored with seq == index + 1 + base_[o]; GC only prunes
    // below frontiers every node's clock already dominates, so a request
    // starting below base_ is a protocol bug.
    DSM_CHECK_MSG(from >= base_[o], "interval request below GC frontier");
    std::size_t hi = ivs.size() + base_[o];
    if (upto != nullptr) {
      hi = std::min<std::size_t>(hi, (*upto)[static_cast<NodeId>(o)]);
    }
    for (std::size_t i = from; i < hi; ++i) out.push_back(ivs[i - base_[o]]);
  }
  return out;
}

std::vector<Interval> NoticeStore::after(NodeId origin,
                                         std::uint32_t from_seq) const {
  const auto& ivs = per_origin_[static_cast<std::size_t>(origin)];
  const std::uint32_t base = base_[static_cast<std::size_t>(origin)];
  DSM_CHECK_MSG(from_seq >= base, "interval request below GC frontier");
  std::vector<Interval> out;
  for (std::size_t i = from_seq - base; i < ivs.size(); ++i)
    out.push_back(ivs[i]);
  return out;
}

std::size_t NoticeStore::prune_below(const VectorClock& frontier) {
  std::size_t pruned = 0;
  for (std::size_t o = 0; o < per_origin_.size(); ++o) {
    const std::uint32_t f = frontier[static_cast<NodeId>(o)];
    if (f <= base_[o]) continue;
    auto& ivs = per_origin_[o];
    const std::size_t drop =
        std::min<std::size_t>(ivs.size(), f - base_[o]);
    if (drop == 0) continue;
    ivs.erase(ivs.begin(),
              ivs.begin() + static_cast<std::ptrdiff_t>(drop));
    base_[o] += static_cast<std::uint32_t>(drop);
    pruned += drop;
  }
  return pruned;
}

std::size_t NoticeStore::total_intervals() const {
  std::size_t n = 0;
  for (const auto& v : per_origin_) n += v.size();
  return n;
}

}  // namespace dsm::proto
