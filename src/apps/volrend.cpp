// Volrend: volume rendering by ray casting (SPLASH-2 Volrend skeleton).
// A read-only DxDxD density volume is cast along z into an IxI image.
// Tasks come from distributed task queues with stealing.  Two variants
// (paper §4, §5.3):
//   * Volrend-Original — 4x4-pixel tile tasks: good load balance but
//     write-write false sharing on image rows even at 64-byte granularity
//     (Table 9).
//   * Volrend-Rowwise — row tasks: fewer, larger tasks that match the
//     row-major image layout (Table 8).
//
// Paper problem size: 128^3 head-scaledown2 (4.5 s sequential).
#include <vector>

#include "apps/app_base.hpp"
#include "apps/task_queue.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;

class Volrend : public App {
 public:
  Volrend(int dim, int img, bool rowwise)
      : d_(dim), img_(img), rowwise_(rowwise) {}

  std::string name() const override {
    return rowwise_ ? "Volrend-Rowwise" : "Volrend-Original";
  }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    vol_.allocate(s, static_cast<std::size_t>(d_) * d_ * d_, 4096);
    image_.allocate(s, static_cast<std::size_t>(img_) * img_, 4096);
    for (int z = 0; z < d_; ++z) {
      for (int y = 0; y < d_; ++y) {
        for (int x = 0; x < d_; ++x) {
          vol_.init(s, vix(x, y, z), density(x, y, z));
        }
      }
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(img_) * img_; ++i) {
      image_.init(s, i, 0.0f);
    }
    // Tasks dealt round-robin across the per-processor queues.
    const int ntasks = rowwise_ ? img_ : (img_ / 4) * (img_ / 4);
    queues_.allocate(s, nodes_, ntasks / nodes_ + nodes_ + 1);
    for (int t = 0; t < ntasks; ++t) queues_.deal(s, t % nodes_, t);
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    for (;;) {
      const std::int32_t task = queues_.next(ctx, me);
      if (task < 0) break;
      if (rowwise_) {
        render_row(ctx, task);
      } else {
        const int tiles_per_row = img_ / 4;
        const int ty = task / tiles_per_row, tx = task % tiles_per_row;
        for (int y = ty * 4; y < ty * 4 + 4; ++y) {
          for (int x = tx * 4; x < tx * 4 + 4; ++x) render_pixel(ctx, x, y);
        }
      }
    }
    ctx.barrier();
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(static_cast<std::size_t>(img_) * img_);
      for (std::size_t i = 0; i < result_.size(); ++i) {
        result_[i] = image_.get(ctx, i);
      }
    }
  }

  std::string verify() override {
    // Each pixel is produced by exactly one task with deterministic
    // arithmetic: exact comparison against a host render.
    std::vector<double> want(static_cast<std::size_t>(img_) * img_);
    for (int y = 0; y < img_; ++y) {
      for (int x = 0; x < img_; ++x) {
        want[static_cast<std::size_t>(y) * img_ + x] = host_pixel(x, y);
      }
    }
    std::vector<double> got(result_.begin(), result_.end());
    return compare_seq(got, want, 1e-5);
  }

 protected:
  /// z innermost: a ray marching along z reads contiguous voxels (real
  /// renderers lay the volume out along the view axis for exactly this).
  std::size_t vix(int x, int y, int z) const {
    return (static_cast<std::size_t>(x) * d_ + y) * d_ + z;
  }

  /// Synthetic "head" phantom: two nested ellipsoids plus ripple.
  float density(int x, int y, int z) const {
    const double u = (x + 0.5) / d_ - 0.5, v = (y + 0.5) / d_ - 0.5,
                 w = (z + 0.5) / d_ - 0.5;
    const double r = u * u + 1.4 * v * v + 1.2 * w * w;
    double dens = 0.0;
    if (r < 0.16) dens += 0.4;
    if (r < 0.04) dens += 0.8;
    dens += 0.1 * std::sin(20.0 * u) * std::cos(16.0 * v);
    return static_cast<float>(dens > 0.0 ? dens : 0.0);
  }

  /// Orthographic ray march along z with front-to-back compositing.
  template <typename Sample>
  double march(int px, int py, Sample&& sample) const {
    const int vx = px * d_ / img_, vy = py * d_ / img_;
    double transp = 1.0, bright = 0.0;
    for (int z = 0; z < d_; ++z) {
      const double dens = sample(vx, vy, z);
      const double alpha = dens * 0.08;
      bright += transp * alpha;
      transp *= 1.0 - alpha;
      if (transp < 1e-3) break;
    }
    return bright;
  }

  void render_pixel(Context& ctx, int x, int y) {
    const double b = march(x, y, [&](int vx, int vy, int vz) {
      ctx.compute(25 * kFlopNs);
      return static_cast<double>(vol_.get(ctx, vix(vx, vy, vz)));
    });
    image_.put(ctx, static_cast<std::size_t>(y) * img_ + x,
               static_cast<float>(b));
  }

  double host_pixel(int x, int y) const {
    return march(x, y, [&](int vx, int vy, int vz) {
      return static_cast<double>(density(vx, vy, vz));
    });
  }

  void render_row(Context& ctx, int y) {
    for (int x = 0; x < img_; ++x) render_pixel(ctx, x, y);
  }

  int d_, img_;
  bool rowwise_;
  int nodes_ = 0;
  SharedArray<float> vol_;
  SharedArray<float> image_;
  TaskQueues queues_;
  std::vector<float> result_;
};

}  // namespace

std::unique_ptr<App> make_volrend_original(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Volrend>(16, 16, false);
    case Scale::kSmall: return std::make_unique<Volrend>(64, 128, false);
    case Scale::kDefault: return std::make_unique<Volrend>(128, 256, false);
  }
  DSM_CHECK(false);
}

std::unique_ptr<App> make_volrend_rowwise(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Volrend>(16, 16, true);
    case Scale::kSmall: return std::make_unique<Volrend>(64, 128, true);
    case Scale::kDefault: return std::make_unique<Volrend>(128, 256, true);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
