// SvcLease — lease/lock service under open-loop Zipfian traffic.
//
// Writes try to acquire a time-bounded lease on the Zipf-selected
// resource (stealing expired leases); reads release a lease the node
// still holds.  The lease table is the shared-object family where the
// DSM-vs-cache-coherent complexity separation (Golab, PAPERS.md) is
// sharpest: every decision is a tiny read-modify-write on a hot slot.
// Verification: the per-slot grant counters (incremented under the stripe
// lock) must sum to exactly the grants the nodes tallied host-side.
#include "apps/app_base.hpp"
#include "svc/dsm_lease.hpp"
#include "svc/loadgen.hpp"

namespace dsm::apps {
namespace {

class SvcLease final : public svc::SvcAppBase {
 public:
  SvcLease(Scale sc, const AppArgs& a)
      : SvcAppBase(sc, a), ttl_(us(a.get_int("ttl-us", 200))) {
    DSM_CHECK_MSG(ttl_ > 0, "app-arg ttl-us must be > 0");
  }
  std::string name() const override { return "SvcLease"; }

 protected:
  void service_setup(SetupCtx& s) override {
    leases_.setup(s, static_cast<int>(p_.keys), p_.segments, kLockBase);
    tallies_.assign(static_cast<std::size_t>(nodes_), Tally{});
    slot_grants_ = 0;
  }

  void serve(Context& ctx, int me, std::uint64_t /*seq*/,
             const svc::OpenLoopGen::Req& r) override {
    Tally& t = tallies_[static_cast<std::size_t>(me)];
    const int resource = static_cast<int>(r.key);
    if (r.is_read) {
      if (leases_.release(ctx, resource)) {
        ++t.released;
      } else {
        ++t.stale;
      }
    } else {
      if (leases_.acquire(ctx, resource, ttl_)) {
        ++t.granted;
      } else {
        ++t.denied;
      }
    }
  }

  void gather(Context& ctx) override {
    slot_grants_ = leases_.total_grants(ctx);
  }

  std::string service_verify() override {
    Tally sum;
    for (const Tally& t : tallies_) {
      sum.granted += t.granted;
      sum.denied += t.denied;
      sum.released += t.released;
      sum.stale += t.stale;
    }
    if (slot_grants_ != sum.granted) {
      return "grant conservation failure: slots say " +
             std::to_string(slot_grants_) + ", nodes tallied " +
             std::to_string(sum.granted);
    }
    const std::uint64_t ops =
        sum.granted + sum.denied + sum.released + sum.stale;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(nodes_) * p_.requests_per_node;
    if (ops != expected) {
      return "op count mismatch: " + std::to_string(ops) + " vs " +
             std::to_string(expected);
    }
    return {};
  }

 private:
  struct Tally {
    std::uint64_t granted = 0;
    std::uint64_t denied = 0;
    std::uint64_t released = 0;
    std::uint64_t stale = 0;
  };
  static constexpr LockId kLockBase = 32000;

  SimTime ttl_;
  svc::DsmLease leases_;
  std::vector<Tally> tallies_;
  std::uint64_t slot_grants_ = 0;
};

}  // namespace

std::unique_ptr<App> make_svc_lease(Scale s, const AppArgs& a) {
  return std::make_unique<SvcLease>(s, a);
}

}  // namespace dsm::apps
