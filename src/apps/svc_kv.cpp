// SvcKV — DSM-backed key/value store under open-loop Zipfian traffic.
//
// Reads look a key up; writes upsert payload (node, seq) — unique per
// write, so the slot integrity words double as a coherence checker.
// Verification is by conservation, not sequential replay (the global
// interleaving is not host-replayable): every node's host-side tally of
// inserted-new keys must equal the occupied slots the post-run scan
// finds, the integrity scan must be clean, and every request must be
// accounted for.
#include "apps/app_base.hpp"
#include "svc/dsm_hashmap.hpp"
#include "svc/loadgen.hpp"

namespace dsm::apps {
namespace {

class SvcKv final : public svc::SvcAppBase {
 public:
  SvcKv(Scale sc, const AppArgs& a) : SvcAppBase(sc, a) {}
  std::string name() const override { return "SvcKV"; }

 protected:
  void service_setup(SetupCtx& s) override {
    map_.setup(s, p_.segments, p_.slots_per_segment, kLockBase);
    tallies_.assign(static_cast<std::size_t>(nodes_), Tally{});
    scan_ = {};
  }

  void serve(Context& ctx, int me, std::uint64_t seq,
             const svc::OpenLoopGen::Req& r) override {
    Tally& t = tallies_[static_cast<std::size_t>(me)];
    if (r.is_read) {
      std::uint64_t payload = 0;
      bool corrupt = false;
      if (map_.get(ctx, r.key, &payload, &corrupt)) {
        ++t.hits;
      } else {
        ++t.misses;
      }
      if (corrupt) ++t.corrupt;
    } else {
      const std::uint64_t payload =
          (static_cast<std::uint64_t>(me) + 1) << 40 | seq;
      switch (map_.put(ctx, r.key, payload)) {
        case svc::DsmHashMap::PutOutcome::kInserted: ++t.inserted; break;
        case svc::DsmHashMap::PutOutcome::kUpdated: ++t.updated; break;
        case svc::DsmHashMap::PutOutcome::kFull: ++t.full; break;
      }
    }
  }

  void gather(Context& ctx) override { scan_ = map_.scan(ctx); }

  std::string service_verify() override {
    Tally sum;
    for (const Tally& t : tallies_) {
      sum.inserted += t.inserted;
      sum.updated += t.updated;
      sum.full += t.full;
      sum.hits += t.hits;
      sum.misses += t.misses;
      sum.corrupt += t.corrupt;
    }
    if (sum.corrupt != 0 || scan_.corrupt != 0) {
      return "integrity failure: " + std::to_string(sum.corrupt) +
             " corrupt reads, " + std::to_string(scan_.corrupt) +
             " corrupt slots";
    }
    if (scan_.occupied != sum.inserted) {
      return "occupancy mismatch: " + std::to_string(scan_.occupied) +
             " occupied slots vs " + std::to_string(sum.inserted) +
             " inserts";
    }
    const std::uint64_t ops = sum.inserted + sum.updated + sum.full +
                              sum.hits + sum.misses;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(nodes_) * p_.requests_per_node;
    if (ops != expected) {
      return "op count mismatch: " + std::to_string(ops) + " vs " +
             std::to_string(expected);
    }
    return {};
  }

 private:
  struct Tally {
    std::uint64_t inserted = 0;
    std::uint64_t updated = 0;
    std::uint64_t full = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;
  };
  static constexpr LockId kLockBase = 30000;

  svc::DsmHashMap map_;
  std::vector<Tally> tallies_;
  svc::DsmHashMap::ScanResult scan_;
};

}  // namespace

std::unique_ptr<App> make_svc_kv(Scale s, const AppArgs& a) {
  return std::make_unique<SvcKv>(s, a);
}

}  // namespace dsm::apps
