// Water-Nsquared: O(n^2) molecular dynamics (the SPLASH-2 Water-Nsquared
// sharing skeleton).  Molecules live in contiguous arrays partitioned
// into n/p chunks.  In the force phase each processor computes pair
// interactions between its molecules and the following n/2 molecules,
// accumulating force contributions into OTHER processors' partitions
// under per-partition locks — the migratory, multiple-writer,
// coarse-grain pattern of the paper's Table 2 / Table 7.
//
// Paper problem size: 4096 molecules, 3 steps (575 s sequential).
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
constexpr double kDt = 1e-3;
constexpr double kEps = 1e-2;  // softening

class WaterNsq final : public App {
 public:
  WaterNsq(int n, int steps) : n_(n), steps_(steps) {}

  std::string name() const override { return "Water-Nsquared"; }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    pos_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    vel_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    frc_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    Rng rng(s.seed() + 17);
    host_pos_.resize(3 * static_cast<std::size_t>(n_));
    host_vel_.assign(3 * static_cast<std::size_t>(n_), 0.0);
    for (std::size_t i = 0; i < host_pos_.size(); ++i) {
      host_pos_[i] = rng.next_double();
      pos_.init(s, i, host_pos_[i]);
      vel_.init(s, i, 0.0);
      frc_.init(s, i, 0.0);
    }
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    // Block partition that survives nodes > n_ (scale-out sweeps run the
    // tiny 32-molecule problem on up to 1024 nodes): the first n_ % nodes
    // processors take one extra molecule; a node past n_ holds none and
    // only meets the barriers.
    const int m0 = part_lo(me, ctx.nodes());
    const int m1 = part_lo(me + 1, ctx.nodes());

    for (int step = 0; step < steps_; ++step) {
      // Zero own forces (local writes).
      for (int i = m0; i < m1; ++i) {
        for (int d = 0; d < 3; ++d) frc_.put(ctx, ix(i, d), 0.0);
      }
      ctx.barrier();

      // Pair interactions: molecule i with the next n/2 molecules.
      // Contributions are accumulated privately per destination partition
      // and added under that partition's lock (SPLASH-2 idiom).
      std::vector<double> acc(3 * static_cast<std::size_t>(n_), 0.0);
      for (int i = m0; i < m1; ++i) {
        double pi[3];
        for (int d = 0; d < 3; ++d) pi[d] = pos_.get(ctx, ix(i, d));
        for (int k = 1; k <= n_ / 2; ++k) {
          const int j = (i + k) % n_;
          double f[3];
          double r2 = kEps;
          for (int d = 0; d < 3; ++d) {
            f[d] = pos_.get(ctx, ix(j, d)) - pi[d];
            r2 += f[d] * f[d];
          }
          const double inv = 1.0 / (r2 * std::sqrt(r2));
          for (int d = 0; d < 3; ++d) {
            const double fd = f[d] * inv;
            acc[static_cast<std::size_t>(ix(i, d))] += fd;
            acc[static_cast<std::size_t>(ix(j, d))] -= fd;
          }
          ctx.compute(400 * kFlopNs);
        }
      }
      // Add private accumulations into the shared force array, one
      // partition at a time under its lock (starting with our own).  A
      // node with no molecules accumulated nothing and skips the lock
      // sweep; empty destination partitions are skipped before locking.
      for (int poff = 0; m1 > m0 && poff < ctx.nodes(); ++poff) {
        const int p = (me + poff) % ctx.nodes();
        const int lo = part_lo(p, ctx.nodes());
        const int hi = part_lo(p + 1, ctx.nodes());
        if (lo == hi) continue;
        ctx.lock(kForceLockBase + p);
        for (int i = lo; i < hi; ++i) {
          for (int d = 0; d < 3; ++d) {
            const double a = acc[static_cast<std::size_t>(ix(i, d))];
            if (a != 0.0) frc_.add(ctx, ix(i, d), a);
          }
        }
        ctx.unlock(kForceLockBase + p);
      }
      ctx.barrier();

      // Integrate own molecules (local).
      for (int i = m0; i < m1; ++i) {
        for (int d = 0; d < 3; ++d) {
          const double v = vel_.get(ctx, ix(i, d)) + kDt * frc_.get(ctx, ix(i, d));
          vel_.put(ctx, ix(i, d), v);
          pos_.put(ctx, ix(i, d), pos_.get(ctx, ix(i, d)) + kDt * v);
          ctx.compute(4 * kFlopNs);
        }
      }
      ctx.barrier();
    }
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(3 * static_cast<std::size_t>(n_));
      for (std::size_t i = 0; i < result_.size(); ++i) {
        result_[i] = pos_.get(ctx, i);
      }
    }
  }

  std::string verify() override {
    // Sequential reference.  Lock-ordered force accumulation reorders FP
    // additions across runs, so compare with a tolerance.
    std::vector<double> p = host_pos_, v = host_vel_;
    std::vector<double> f(p.size());
    for (int step = 0; step < steps_; ++step) {
      std::fill(f.begin(), f.end(), 0.0);
      for (int i = 0; i < n_; ++i) {
        for (int k = 1; k <= n_ / 2; ++k) {
          const int j = (i + k) % n_;
          double d[3];
          double r2 = kEps;
          for (int c = 0; c < 3; ++c) {
            d[c] = p[static_cast<std::size_t>(ix(j, c))] - p[static_cast<std::size_t>(ix(i, c))];
            r2 += d[c] * d[c];
          }
          const double inv = 1.0 / (r2 * std::sqrt(r2));
          for (int c = 0; c < 3; ++c) {
            f[static_cast<std::size_t>(ix(i, c))] += d[c] * inv;
            f[static_cast<std::size_t>(ix(j, c))] -= d[c] * inv;
          }
        }
      }
      for (std::size_t i = 0; i < p.size(); ++i) {
        v[i] += kDt * f[i];
        p[i] += kDt * v[i];
      }
    }
    return compare_seq(result_, p, 1e-7);
  }

 private:
  static constexpr LockId kForceLockBase = 100;
  int ix(int mol, int d) const { return 3 * mol + d; }
  /// First molecule of partition p under the base+extra block split.
  int part_lo(int p, int P) const {
    const int base = n_ / P, extra = n_ % P;
    return p * base + (p < extra ? p : extra);
  }

  int n_, steps_, nodes_ = 0;
  SharedArray<double> pos_, vel_, frc_;
  std::vector<double> host_pos_, host_vel_;
  std::vector<double> result_;
};

}  // namespace

std::unique_ptr<App> make_water_nsquared(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<WaterNsq>(32, 1);
    case Scale::kSmall: return std::make_unique<WaterNsq>(512, 2);
    case Scale::kDefault: return std::make_unique<WaterNsq>(1024, 3);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
