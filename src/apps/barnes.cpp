// Barnes: Barnes-Hut hierarchical N-body, three tree-build variants
// (paper §4, §5.3):
//
//   * Barnes-Original — all processors insert their particles into one
//     shared octree.  Descent reads are lock-free under SC (a stale read
//     is re-checked under the modification lock), but under the LRC
//     protocols every descent read must be bracketed by the cell's lock —
//     an unlocked read of a concurrently-updated pointer may be stale
//     under release consistency.  This is the paper's "added
//     synchronization" that blows the lock count up (2,086 -> 17,167) and
//     makes Barnes-Original the counter-example where relaxed protocols
//     never win (Table 13, §5.2.2).
//   * Barnes-Partree — each processor builds a private subtree over its
//     own particles (lock-free, local pages), then merges into the global
//     tree; merges link whole subtrees where possible, so far fewer lock
//     operations are needed.
//   * Barnes-Spatial — space is split into a grid of regions, one per
//     processor; owners build their region subtrees from the particles
//     falling inside: no locks at all, barriers only, at the cost of load
//     imbalance.
//
// All variants produce the same canonical tree for a particle set
// (capacity-1 leaves subdivide by position only), so forces are
// deterministic and verified EXACTLY against a host reference that shares
// this file's tree code through a template accessor.
//
// Paper problem size: 16384 particles (33.8 s sequential).
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
constexpr double kTheta = 0.6;
constexpr double kDt = 0.02;
constexpr double kSoft = 1e-3;
constexpr std::int32_t kEmpty = -1;
constexpr std::int32_t kParticleTag = 0x40000000;
constexpr int kNumTreeLocks = 256;
constexpr LockId kTreeLockBase = 20000;

bool is_particle(std::int32_t v) { return v >= 0 && (v & kParticleTag); }
std::int32_t particle_ref(int i) { return kParticleTag | i; }
int particle_of(std::int32_t v) { return v & ~kParticleTag; }

struct Box {
  double cx, cy, cz, half;  // cube center + half-size
  int octant(double x, double y, double z) const {
    return (x >= cx ? 1 : 0) | (y >= cy ? 2 : 0) | (z >= cz ? 4 : 0);
  }
  Box child(int k) const {
    const double h = half / 2;
    return {cx + ((k & 1) ? h : -h), cy + ((k & 2) ? h : -h),
            cz + ((k & 4) ? h : -h), h};
  }
};

enum class Variant { kOriginal, kPartree, kSpatial };

// Accessor interface shared by the DSM run and the host reference:
//   int32 read_child(c,k)   descent read (locked under LRC; raw under SC)
//   int32 child_raw(c,k)    read with the lock held / private / race-free
//   void  set_child(c,k,v)
//   int   alloc_cell()      children pre-set to kEmpty
//   void  lock_cell(c) / unlock_cell(c)
//   double pos(i,d)
//   void  set_moments(c,cnt,com[3]);  int32 cnt(c);  double com(c,d)
//   void  charge(flops)

/// Inserts particle `i` into the subtree rooted at `cell` (whose box is
/// `box`).  kPrivate subtrees (single builder) skip all locking.
template <bool kPrivate, typename A>
void insert_under(A& a, int cell, Box box, int i) {
  const double px = a.pos(i, 0), py = a.pos(i, 1), pz = a.pos(i, 2);
  for (int guard = 0;; ++guard) {
    DSM_CHECK_MSG(guard < 4096, "insert_under: runaway descent (cycle?)");
    const int k = box.octant(px, py, pz);
    std::int32_t ch =
        kPrivate ? a.child_raw(cell, k) : a.read_child(cell, k);
    if (!kPrivate && ch != kEmpty && !is_particle(ch)) {
      // Interior cell: descend without locking (SC) — the value can only
      // change from empty/particle to cell, never cell to something else.
      box = box.child(k);
      cell = ch;
      continue;
    }
    if (kPrivate && ch != kEmpty && !is_particle(ch)) {
      box = box.child(k);
      cell = ch;
      continue;
    }
    // Empty or particle: we must modify.  Re-check under the lock.
    if (!kPrivate) {
      a.lock_cell(cell);
      const std::int32_t cur = a.child_raw(cell, k);
      if (cur != ch) {
        a.unlock_cell(cell);
        continue;  // raced: re-evaluate this level
      }
    }
    if (ch == kEmpty) {
      a.set_child(cell, k, particle_ref(i));
      if (!kPrivate) a.unlock_cell(cell);
      return;
    }
    // Resident particle: subdivide.  The new cell is private until the
    // pointer swing, which happens under the lock.
    const int j = particle_of(ch);
    const int c = a.alloc_cell();
    const Box sub = box.child(k);
    a.set_child(c, sub.octant(a.pos(j, 0), a.pos(j, 1), a.pos(j, 2)),
                particle_ref(j));
    a.set_child(cell, k, c);
    if (!kPrivate) a.unlock_cell(cell);
    box = sub;
    cell = c;
  }
}

/// Merges subtree value `v` (still private to the caller) into slot k of
/// the global `cell` whose box is `box`.
template <typename A>
void merge_under(A& a, int cell, const Box& box, int k, std::int32_t v) {
  if (v == kEmpty) return;
  if (is_particle(v)) {
    insert_under<false>(a, cell, box, particle_of(v));
    return;
  }
  for (;;) {
    const std::int32_t g = a.read_child(cell, k);
    if (g != kEmpty && !is_particle(g)) {
      // Both are cells: push my children into the global subtree.
      const Box sub = box.child(k);
      for (int kk = 0; kk < 8; ++kk) {
        merge_under(a, g, sub, kk, a.child_raw(v, kk));
      }
      return;
    }
    a.lock_cell(cell);
    const std::int32_t cur = a.child_raw(cell, k);
    if (cur != g) {
      a.unlock_cell(cell);
      continue;  // raced; re-evaluate
    }
    if (cur == kEmpty) {
      a.set_child(cell, k, v);  // link the whole subtree: one lock op
      a.unlock_cell(cell);
      return;
    }
    // Resident particle: absorb it into my still-private subtree, then
    // link — all under the lock, so nothing moves beneath us.
    insert_under<true>(a, v, box.child(k), particle_of(cur));
    a.set_child(cell, k, v);
    a.unlock_cell(cell);
    return;
  }
}

/// Bottom-up (count, center of mass); deterministic slot order.
template <typename A>
void compute_moments(A& a, std::int32_t v, int& cnt, double com[3],
                     int depth = 0) {
  DSM_CHECK_MSG(depth < 512, "compute_moments: runaway recursion (cycle?)");
  cnt = 0;
  com[0] = com[1] = com[2] = 0;
  if (v == kEmpty) return;
  if (is_particle(v)) {
    const int i = particle_of(v);
    cnt = 1;
    for (int d = 0; d < 3; ++d) com[d] = a.pos(i, d);
    return;
  }
  double sum[3] = {0, 0, 0};
  int total = 0;
  for (int k = 0; k < 8; ++k) {
    int c;
    double sub[3];
    compute_moments(a, a.child_raw(v, k), c, sub, depth + 1);
    if (c > 0) {
      total += c;
      for (int d = 0; d < 3; ++d) sum[d] += sub[d] * c;
    }
  }
  if (total > 0) {
    for (int d = 0; d < 3; ++d) com[d] = sum[d] / total;
  }
  // total == 0 happens for an empty region root (Spatial variant).
  a.set_moments(v, total, com);
  a.charge(12);
  cnt = total;
}

/// Top-of-tree moments pass: like compute_moments, but cells at
/// `stop_depth` have their moments already computed (by the parallel
/// subtree pass) and are read back instead of recursed into.
template <typename A>
void compute_moments_top(A& a, std::int32_t v, int depth, int stop_depth,
                         int& cnt, double com[3]) {
  cnt = 0;
  com[0] = com[1] = com[2] = 0;
  if (v == kEmpty) return;
  if (is_particle(v)) {
    cnt = 1;
    for (int d = 0; d < 3; ++d) com[d] = a.pos(particle_of(v), d);
    return;
  }
  if (depth == stop_depth) {
    cnt = a.cnt(v);
    for (int d = 0; d < 3; ++d) com[d] = a.com(v, d);
    return;
  }
  double sum[3] = {0, 0, 0};
  int total = 0;
  for (int k = 0; k < 8; ++k) {
    int c;
    double sub[3];
    compute_moments_top(a, a.child_raw(v, k), depth + 1, stop_depth, c, sub);
    if (c > 0) {
      total += c;
      for (int d = 0; d < 3; ++d) sum[d] += sub[d] * c;
    }
  }
  if (total > 0) {
    for (int d = 0; d < 3; ++d) com[d] = sum[d] / total;
  }
  a.set_moments(v, total, com);
  a.charge(12);
  cnt = total;
}

/// Accumulates the BH force on particle i from subtree `v`.
template <typename A>
void accumulate_force(A& a, int i, double px, double py, double pz,
                      std::int32_t v, const Box& box, double pmass,
                      double f[3], int depth = 0) {
  DSM_CHECK_MSG(depth < 512, "accumulate_force: runaway recursion (cycle?)");
  if (v == kEmpty) return;
  if (is_particle(v)) {
    const int j = particle_of(v);
    if (j == i) return;
    const double dx = a.pos(j, 0) - px, dy = a.pos(j, 1) - py,
                 dz = a.pos(j, 2) - pz;
    const double r2 = dx * dx + dy * dy + dz * dz + kSoft;
    const double inv = pmass / (r2 * std::sqrt(r2));
    f[0] += dx * inv;
    f[1] += dy * inv;
    f[2] += dz * inv;
    a.charge(120);
    return;
  }
  const double dx = a.com(v, 0) - px, dy = a.com(v, 1) - py,
               dz = a.com(v, 2) - pz;
  const double r2 = dx * dx + dy * dy + dz * dz + kSoft;
  const double size = 2 * box.half;
  if (size * size < kTheta * kTheta * r2) {
    const double m = pmass * a.cnt(v);
    const double inv = m / (r2 * std::sqrt(r2));
    f[0] += dx * inv;
    f[1] += dy * inv;
    f[2] += dz * inv;
    a.charge(120);
    return;
  }
  for (int k = 0; k < 8; ++k) {
    accumulate_force(a, i, px, py, pz, a.child_raw(v, k), box.child(k), pmass,
                     f, depth + 1);
  }
}

// ------------------------------------------------------------------
// Host accessor (sequential reference; no locks, raw reads).

struct HostAcc {
  std::vector<std::int32_t> child;
  std::vector<std::int32_t> count;
  std::vector<double> com3;
  const std::vector<double>* positions = nullptr;
  int next_cell = 0;

  void reset(int max_cells) {
    child.assign(static_cast<std::size_t>(max_cells) * 8, kEmpty);
    count.assign(static_cast<std::size_t>(max_cells), 0);
    com3.assign(static_cast<std::size_t>(max_cells) * 3, 0.0);
    next_cell = 0;
  }

  std::int32_t read_child(int c, int k) const { return child_raw(c, k); }
  std::int32_t child_raw(int c, int k) const {
    return child[static_cast<std::size_t>(c) * 8 + k];
  }
  void set_child(int c, int k, std::int32_t v) {
    child[static_cast<std::size_t>(c) * 8 + k] = v;
  }
  int alloc_cell() { return next_cell++; }
  double pos(int i, int d) const {
    return (*positions)[static_cast<std::size_t>(3 * i + d)];
  }
  void set_moments(int c, int cnt, const double com[3]) {
    count[static_cast<std::size_t>(c)] = cnt;
    for (int d = 0; d < 3; ++d) {
      com3[static_cast<std::size_t>(3 * c + d)] = com[d];
    }
  }
  std::int32_t cnt(int c) const { return count[static_cast<std::size_t>(c)]; }
  double com(int c, int d) const {
    return com3[static_cast<std::size_t>(3 * c + d)];
  }
  void lock_cell(int) {}
  void unlock_cell(int) {}
  void charge(std::int64_t) {}
};

// ------------------------------------------------------------------

class Barnes final : public App {
 public:
  Barnes(Variant v, int n, int steps) : variant_(v), n_(n), steps_(steps) {}

  std::string name() const override {
    switch (variant_) {
      case Variant::kOriginal: return "Barnes-Original";
      case Variant::kPartree: return "Barnes-Partree";
      case Variant::kSpatial: return "Barnes-Spatial";
    }
    return "Barnes";
  }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    max_cells_ = 8 * n_ + 64 * nodes_ + 64;
    pool_slice_ = max_cells_ / nodes_;
    pos_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    vel_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    child_.allocate(s, 8 * static_cast<std::size_t>(max_cells_), 4096);
    cnt_.allocate(s, static_cast<std::size_t>(max_cells_), 4096);
    com_.allocate(s, 3 * static_cast<std::size_t>(max_cells_), 4096);
    factor3(nodes_, gx_, gy_, gz_);
    roots_.allocate(s, static_cast<std::size_t>(nodes_), 64);

    Rng rng(s.seed() + 57);
    host_pos_.resize(3 * static_cast<std::size_t>(n_));
    host_vel_.resize(3 * static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      // Mildly clustered distribution: uniform background plus blobs, so
      // the Spatial variant sees load imbalance (as in the paper) without
      // starving most regions entirely.
      const bool in_blob = rng.next_below(5) < 2;
      const int blob = static_cast<int>(rng.next_below(4));
      const double bc[3] = {0.2 + 0.2 * blob, 0.3 + 0.15 * blob,
                            0.25 + 0.18 * blob};
      for (int d = 0; d < 3; ++d) {
        double x = in_blob ? bc[d] + 0.1 * (rng.next_double() +
                                            rng.next_double() - 1.0)
                           : rng.next_double();
        host_pos_[static_cast<std::size_t>(3 * i + d)] = std::clamp(x, 0.01, 0.99);
        host_vel_[static_cast<std::size_t>(3 * i + d)] =
            0.01 * (rng.next_double() - 0.5);
      }
    }
    for (std::size_t i = 0; i < host_pos_.size(); ++i) {
      pos_.init(s, i, host_pos_[i]);
      vel_.init(s, i, host_vel_[i]);
    }
  }

  struct DsmAcc {
    Barnes& app;
    Context& ctx;
    int pool_next;
    int pool_end;
    bool lazy;  // LRC: descent reads must be bracketed by the cell's lock

    std::int32_t read_child(int c, int k) const {
      if (lazy) {
        ctx.lock(lock_of(c));
        const std::int32_t v = child_raw(c, k);
        ctx.unlock(lock_of(c));
        return v;
      }
      return child_raw(c, k);
    }
    std::int32_t child_raw(int c, int k) const {
      return app.child_.get(ctx, static_cast<std::size_t>(c) * 8 + k);
    }
    void set_child(int c, int k, std::int32_t v) {
      app.child_.put(ctx, static_cast<std::size_t>(c) * 8 + k, v);
    }
    int alloc_cell() {
      DSM_CHECK_MSG(pool_next < pool_end, "cell pool exhausted");
      const int c = pool_next++;
      for (int k = 0; k < 8; ++k) set_child(c, k, kEmpty);
      return c;
    }
    double pos(int i, int d) const {
      return app.pos_.get(ctx, static_cast<std::size_t>(3 * i + d));
    }
    void set_moments(int c, int cnt, const double com[3]) {
      app.cnt_.put(ctx, static_cast<std::size_t>(c), cnt);
      for (int d = 0; d < 3; ++d) {
        app.com_.put(ctx, static_cast<std::size_t>(3 * c + d), com[d]);
      }
    }
    std::int32_t cnt(int c) const {
      return app.cnt_.get(ctx, static_cast<std::size_t>(c));
    }
    double com(int c, int d) const {
      return app.com_.get(ctx, static_cast<std::size_t>(3 * c + d));
    }
    static LockId lock_of(int c) { return kTreeLockBase + (c % kNumTreeLocks); }
    void lock_cell(int c) { ctx.lock(lock_of(c)); }
    void unlock_cell(int c) { ctx.unlock(lock_of(c)); }
    void charge(std::int64_t flop) { ctx.compute(flop * kFlopNs); }
  };

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    const int per = n_ / ctx.nodes();
    const int m0 = me * per, m1 = m0 + per;
    const Box root_box{0.5, 0.5, 0.5, 0.5};

    DsmAcc acc{*this, ctx, 0, 0, ctx.lazy_protocol()};
    if (variant_ == Variant::kSpatial) refresh_region_map(ctx);
    ctx.barrier();

    for (int step = 0; step < steps_; ++step) {
      // Fresh pool slice each step; slot 0 of proc 0's slice is the global
      // root for Original/Partree.
      acc.pool_next = me * pool_slice_ + (me == 0 ? 1 : 0);
      acc.pool_end = (me + 1) * pool_slice_;

      switch (variant_) {
        case Variant::kOriginal: {
          if (me == 0) {
            for (int k = 0; k < 8; ++k) acc.set_child(0, k, kEmpty);
          }
          ctx.barrier();
          for (int i = m0; i < m1; ++i) {
            insert_under<false>(acc, 0, root_box, i);
            ctx.compute(60 * kFlopNs);
          }
          break;
        }
        case Variant::kPartree: {
          if (me == 0) {
            for (int k = 0; k < 8; ++k) acc.set_child(0, k, kEmpty);
          }
          const int myroot = acc.alloc_cell();
          for (int i = m0; i < m1; ++i) {
            insert_under<true>(acc, myroot, root_box, i);
            ctx.compute(60 * kFlopNs);
          }
          ctx.barrier();
          for (int k = 0; k < 8; ++k) {
            merge_under(acc, 0, root_box, k, acc.child_raw(myroot, k));
          }
          break;
        }
        case Variant::kSpatial: {
          const int myroot = acc.alloc_cell();
          roots_.put(ctx, static_cast<std::size_t>(me), myroot);
          for (int i = 0; i < n_; ++i) {
            if (my_region_particle_[static_cast<std::size_t>(i)] != me) {
              continue;
            }
            insert_under<true>(acc, myroot, region_box(me), i);
            ctx.compute(30 * kFlopNs);
          }
          break;
        }
      }
      ctx.barrier();

      // Moments (parallel upward pass).  Spatial: every region owner
      // handles its own subtree.  Original/Partree: the depth-2 subtrees
      // are dealt round-robin across processors; node 0 then finishes the
      // top two levels from the stored subtree moments.
      if (variant_ == Variant::kSpatial) {
        int c;
        double com[3];
        compute_moments(acc, roots_.get(ctx, static_cast<std::size_t>(me)), c,
                        com);
        ctx.barrier();
      } else {
        int counter = 0;
        for (int k = 0; k < 8; ++k) {
          const std::int32_t c1 = acc.child_raw(0, k);
          if (c1 == kEmpty || is_particle(c1)) continue;
          for (int kk = 0; kk < 8; ++kk) {
            const std::int32_t c2 = acc.child_raw(c1, kk);
            if (c2 == kEmpty || is_particle(c2)) continue;
            if (counter++ % ctx.nodes() == me) {
              int c;
              double com[3];
              compute_moments(acc, c2, c, com);
            }
          }
        }
        ctx.barrier();
        if (me == 0) {
          int c;
          double com[3];
          compute_moments_top(acc, 0, 0, 2, c, com);
        }
      }
      ctx.barrier();

      // Sanity invariant: every particle is in exactly one tree.
      if (me == 0) {
        std::int64_t total = 0;
        if (variant_ == Variant::kSpatial) {
          for (int r = 0; r < ctx.nodes(); ++r) {
            total += acc.cnt(roots_.get(ctx, static_cast<std::size_t>(r)));
          }
        } else {
          total = acc.cnt(0);
        }
        DSM_CHECK_MSG(total == n_, "tree lost or duplicated particles");
      }
      ctx.barrier();

      // Force phase: forces for my particles into a private buffer (all
      // reads see the pre-update positions), then a barrier, then the
      // integration phase writes velocities/positions.
      const double pmass = 1.0 / n_;
      auto mine = [&](int i) {
        return variant_ == Variant::kSpatial
                   ? my_region_particle_[static_cast<std::size_t>(i)] == me
                   : (i >= m0 && i < m1);
      };
      std::vector<double> force(3 * static_cast<std::size_t>(n_), 0.0);
      for (int i = 0; i < n_; ++i) {
        if (!mine(i)) continue;
        double f[3] = {0, 0, 0};
        const double px = acc.pos(i, 0), py = acc.pos(i, 1), pz = acc.pos(i, 2);
        if (variant_ == Variant::kSpatial) {
          for (int r = 0; r < ctx.nodes(); ++r) {
            accumulate_force(acc, i, px, py, pz,
                             roots_.get(ctx, static_cast<std::size_t>(r)),
                             region_box(r), pmass, f);
          }
        } else {
          accumulate_force(acc, i, px, py, pz, 0, root_box, pmass, f);
        }
        for (int d = 0; d < 3; ++d) {
          force[static_cast<std::size_t>(3 * i + d)] = f[d];
        }
      }
      ctx.barrier();
      for (int i = 0; i < n_; ++i) {
        if (!mine(i)) continue;
        for (int d = 0; d < 3; ++d) {
          const double v = vel_.get(ctx, static_cast<std::size_t>(3 * i + d)) +
                           kDt * force[static_cast<std::size_t>(3 * i + d)];
          vel_.put(ctx, static_cast<std::size_t>(3 * i + d), v);
          double x =
              pos_.get(ctx, static_cast<std::size_t>(3 * i + d)) + kDt * v;
          if (x < 0.01) x = 0.02 - x;
          if (x > 0.99) x = 1.98 - x;
          pos_.put(ctx, static_cast<std::size_t>(3 * i + d), x);
        }
        ctx.compute(10 * kFlopNs);
      }
      ctx.barrier();
      if (variant_ == Variant::kSpatial) {
        refresh_region_map(ctx);
        ctx.barrier();
      }
    }
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(3 * static_cast<std::size_t>(n_));
      for (std::size_t i = 0; i < result_.size(); ++i) {
        result_[i] = pos_.get(ctx, i);
      }
    }
  }

  std::string verify() override {
    std::vector<double> p = host_pos_, v = host_vel_;
    HostAcc h;
    h.positions = &p;
    const Box root_box{0.5, 0.5, 0.5, 0.5};
    auto region = [&](int i) {
      return region_of(p[static_cast<std::size_t>(3 * i)],
                       p[static_cast<std::size_t>(3 * i + 1)],
                       p[static_cast<std::size_t>(3 * i + 2)]);
    };
    for (int step = 0; step < steps_; ++step) {
      h.reset(max_cells_);
      std::vector<int> roots(static_cast<std::size_t>(nodes_), kEmpty);
      std::vector<int> reg(static_cast<std::size_t>(n_));
      for (int i = 0; i < n_; ++i) reg[static_cast<std::size_t>(i)] = region(i);
      if (variant_ == Variant::kSpatial) {
        for (int r = 0; r < nodes_; ++r) {
          roots[static_cast<std::size_t>(r)] = h.alloc_cell();
        }
        for (int i = 0; i < n_; ++i) {
          const int r = reg[static_cast<std::size_t>(i)];
          insert_under<true>(h, roots[static_cast<std::size_t>(r)],
                             region_box(r), i);
        }
        for (int r = 0; r < nodes_; ++r) {
          int c;
          double com[3];
          compute_moments(h, roots[static_cast<std::size_t>(r)], c, com);
        }
      } else {
        const int root = h.alloc_cell();
        DSM_CHECK(root == 0);
        for (int i = 0; i < n_; ++i) insert_under<true>(h, 0, root_box, i);
        int c;
        double com[3];
        compute_moments(h, 0, c, com);
      }
      const double pmass = 1.0 / n_;
      std::vector<double> np = p, nv = v;
      for (int i = 0; i < n_; ++i) {
        double f[3] = {0, 0, 0};
        const double px = p[static_cast<std::size_t>(3 * i)],
                     py = p[static_cast<std::size_t>(3 * i + 1)],
                     pz = p[static_cast<std::size_t>(3 * i + 2)];
        if (variant_ == Variant::kSpatial) {
          for (int r = 0; r < nodes_; ++r) {
            accumulate_force(h, i, px, py, pz,
                             roots[static_cast<std::size_t>(r)],
                             region_box(r), pmass, f);
          }
        } else {
          accumulate_force(h, i, px, py, pz, 0, root_box, pmass, f);
        }
        for (int d = 0; d < 3; ++d) {
          const double vv = v[static_cast<std::size_t>(3 * i + d)] + kDt * f[d];
          nv[static_cast<std::size_t>(3 * i + d)] = vv;
          double x = p[static_cast<std::size_t>(3 * i + d)] + kDt * vv;
          if (x < 0.01) x = 0.02 - x;
          if (x > 0.99) x = 1.98 - x;
          np[static_cast<std::size_t>(3 * i + d)] = x;
        }
      }
      p = std::move(np);
      v = std::move(nv);
    }
    return compare_seq(result_, p, 1e-7);
  }

 private:
  friend struct DsmAcc;

  int region_of(double x, double y, double z) const {
    const int rx = std::min(gx_ - 1, static_cast<int>(x * gx_));
    const int ry = std::min(gy_ - 1, static_cast<int>(y * gy_));
    const int rz = std::min(gz_ - 1, static_cast<int>(z * gz_));
    return (rz * gy_ + ry) * gx_ + rx;
  }
  /// Cubic box enclosing region r (regions may be non-cubic cuboids).
  Box region_box(int r) const {
    const int rx = r % gx_, ry = (r / gx_) % gy_, rz = r / (gx_ * gy_);
    const double half = 0.5 / std::min({gx_, gy_, gz_});
    return {(rx + 0.5) / gx_, (ry + 0.5) / gy_, (rz + 0.5) / gz_, half};
  }

  /// Spatial: recompute particle->region ownership from current positions
  /// (every node scans all positions through the DSM).
  void refresh_region_map(Context& ctx) {
    my_region_particle_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      my_region_particle_[static_cast<std::size_t>(i)] = region_of(
          pos_.get(ctx, static_cast<std::size_t>(3 * i)),
          pos_.get(ctx, static_cast<std::size_t>(3 * i + 1)),
          pos_.get(ctx, static_cast<std::size_t>(3 * i + 2)));
    }
  }

  Variant variant_;
  int n_, steps_;
  int nodes_ = 0, gx_ = 1, gy_ = 1, gz_ = 1;
  int max_cells_ = 0, pool_slice_ = 0;
  SharedArray<double> pos_, vel_, com_;
  SharedArray<std::int32_t> child_, cnt_, roots_;
  std::vector<int> my_region_particle_;
  std::vector<double> host_pos_, host_vel_;
  std::vector<double> result_;
};

}  // namespace

std::unique_ptr<App> make_barnes_original(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Barnes>(Variant::kOriginal, 64, 1);
    case Scale::kSmall: return std::make_unique<Barnes>(Variant::kOriginal, 1024, 2);
    case Scale::kDefault: return std::make_unique<Barnes>(Variant::kOriginal, 2048, 2);
  }
  DSM_CHECK(false);
}

std::unique_ptr<App> make_barnes_partree(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Barnes>(Variant::kPartree, 64, 1);
    case Scale::kSmall: return std::make_unique<Barnes>(Variant::kPartree, 1024, 2);
    case Scale::kDefault: return std::make_unique<Barnes>(Variant::kPartree, 2048, 2);
  }
  DSM_CHECK(false);
}

std::unique_ptr<App> make_barnes_spatial(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Barnes>(Variant::kSpatial, 64, 1);
    case Scale::kSmall: return std::make_unique<Barnes>(Variant::kSpatial, 1024, 2);
    case Scale::kDefault: return std::make_unique<Barnes>(Variant::kSpatial, 2048, 2);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
