// FFT: the SPLASH-2 radix-sqrt(n) six-step 1D FFT.  Data is an m x m
// matrix of complex doubles (n = m*m points) with rows partitioned
// contiguously across processors; source and destination swap roles at
// each transpose.  Writes are local but transpose reads pull small
// sub-rows from every other processor — the paper's "single-writer,
// fine-grain read access" exemplar alongside Ocean-Original (Table 2).
//
// Paper problem size: 1M points (27.3 s sequential on the testbed).
#include <complex>
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
using Cplx = std::complex<double>;

class Fft final : public App {
 public:
  explicit Fft(int log2n) : logn_(log2n), m_(1 << (log2n / 2)) {
    DSM_CHECK(log2n % 2 == 0);
  }

  std::string name() const override { return "FFT"; }

  void setup(SetupCtx& s) override {
    const std::size_t n = static_cast<std::size_t>(m_) * m_;
    src_.allocate(s, 2 * n, 4096);
    dst_.allocate(s, 2 * n, 4096);
    Rng rng(s.seed() + 3);
    host_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      host_[i] = Cplx(rng.next_double() - 0.5, rng.next_double() - 0.5);
      put_init(s, src_, i, host_[i]);
    }
    nodes_ = s.nodes();
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    // Block partition that survives nodes > m_ (scale-out sweeps run tiny
    // problems on up to 1024 nodes): the first m_ % nodes processors take
    // one extra row; past m_ processors a node holds zero rows but still
    // meets every barrier.
    const int base = m_ / ctx.nodes();
    const int extra = m_ % ctx.nodes();
    const int rows = base + (me < extra ? 1 : 0);
    const int r0 = me * base + (me < extra ? me : extra);

    transpose(ctx, src_, dst_, r0, rows);        // step 1
    ctx.barrier();
    fft_rows(ctx, dst_, r0, rows);               // step 2
    twiddle_rows(ctx, dst_, r0, rows);           // step 3
    ctx.barrier();
    transpose(ctx, dst_, src_, r0, rows);        // step 4
    ctx.barrier();
    fft_rows(ctx, src_, r0, rows);               // step 5
    ctx.barrier();
    transpose(ctx, src_, dst_, r0, rows);        // step 6
    ctx.barrier();

    ctx.stop_timer();
    if (me == 0) {
      const std::size_t n = static_cast<std::size_t>(m_) * m_;
      result_.resize(2 * n);
      for (std::size_t i = 0; i < n; ++i) {
        const Cplx v = get_pt(ctx, dst_, i);
        result_[2 * i] = v.real();
        result_[2 * i + 1] = v.imag();
      }
    }
  }

  std::string verify() override {
    // Host reference: the same six-step algorithm sequentially.
    const std::size_t n = static_cast<std::size_t>(m_) * m_;
    std::vector<Cplx> a = host_, b(n);
    auto xpose = [&](std::vector<Cplx>& from, std::vector<Cplx>& to) {
      for (int r = 0; r < m_; ++r) {
        for (int c = 0; c < m_; ++c) {
          to[static_cast<std::size_t>(r) * m_ + c] =
              from[static_cast<std::size_t>(c) * m_ + r];
        }
      }
    };
    auto fft_all = [&](std::vector<Cplx>& v) {
      for (int r = 0; r < m_; ++r) fft_row_host(&v[static_cast<std::size_t>(r) * m_]);
    };
    xpose(a, b);
    fft_all(b);
    for (int r = 0; r < m_; ++r) {
      for (int c = 0; c < m_; ++c) {
        b[static_cast<std::size_t>(r) * m_ + c] *= twiddle(r, c);
      }
    }
    xpose(b, a);
    fft_all(a);
    xpose(a, b);
    std::vector<double> want(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      want[2 * i] = b[i].real();
      want[2 * i + 1] = b[i].imag();
    }
    return compare_seq(result_, want, 1e-7);
  }

 private:
  Cplx twiddle(int r, int c) const {
    const double ang = -2.0 * M_PI * r * c /
                       (static_cast<double>(m_) * m_);
    return {std::cos(ang), std::sin(ang)};
  }

  void fft_row_host(Cplx* row) const {
    // Iterative radix-2 Cooley-Tukey, bit-reversed input reorder.
    const int s = m_;
    for (int i = 1, j = 0; i < s; ++i) {
      int bit = s >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(row[i], row[j]);
    }
    for (int len = 2; len <= s; len <<= 1) {
      const double ang = -2.0 * M_PI / len;
      const Cplx wl(std::cos(ang), std::sin(ang));
      for (int i = 0; i < s; i += len) {
        Cplx w(1.0, 0.0);
        for (int k = 0; k < len / 2; ++k) {
          const Cplx u = row[i + k];
          const Cplx v = row[i + k + len / 2] * w;
          row[i + k] = u + v;
          row[i + k + len / 2] = u - v;
          w *= wl;
        }
      }
    }
  }

  static std::size_t ix(int r, int c, int m) {
    return static_cast<std::size_t>(r) * m + c;
  }

  Cplx get_pt(Context& c, const SharedArray<double>& a, std::size_t i) const {
    return {a.get(c, 2 * i), a.get(c, 2 * i + 1)};
  }
  void put_pt(Context& c, const SharedArray<double>& a, std::size_t i,
              const Cplx& v) const {
    a.put(c, 2 * i, v.real());
    a.put(c, 2 * i + 1, v.imag());
  }
  void put_init(SetupCtx& s, const SharedArray<double>& a, std::size_t i,
                const Cplx& v) const {
    a.init(s, 2 * i, v.real());
    a.init(s, 2 * i + 1, v.imag());
  }

  /// to[r][c] = from[c][r] for my destination rows: reads a small sub-row
  /// from every other processor's partition (fine-grained remote reads).
  void transpose(Context& ctx, const SharedArray<double>& from,
                 const SharedArray<double>& to, int r0, int rows) {
    for (int r = r0; r < r0 + rows; ++r) {
      for (int c = 0; c < m_; ++c) {
        put_pt(ctx, to, ix(r, c, m_), get_pt(ctx, from, ix(c, r, m_)));
        ctx.compute(2 * kFlopNs);
      }
    }
  }

  void fft_rows(Context& ctx, const SharedArray<double>& a, int r0, int rows) {
    std::vector<Cplx> buf(static_cast<std::size_t>(m_));
    for (int r = r0; r < r0 + rows; ++r) {
      for (int c = 0; c < m_; ++c) buf[static_cast<std::size_t>(c)] = get_pt(ctx, a, ix(r, c, m_));
      fft_row_host(buf.data());
      ctx.compute(5LL * m_ * logn_ / 2 * kFlopNs);
      for (int c = 0; c < m_; ++c) put_pt(ctx, a, ix(r, c, m_), buf[static_cast<std::size_t>(c)]);
    }
  }

  void twiddle_rows(Context& ctx, const SharedArray<double>& a, int r0,
                    int rows) {
    for (int r = r0; r < r0 + rows; ++r) {
      for (int c = 0; c < m_; ++c) {
        put_pt(ctx, a, ix(r, c, m_), get_pt(ctx, a, ix(r, c, m_)) * twiddle(r, c));
        ctx.compute(10 * kFlopNs);
      }
    }
  }

  int logn_, m_;
  int nodes_ = 0;
  SharedArray<double> src_, dst_;
  std::vector<Cplx> host_;
  std::vector<double> result_;
};

}  // namespace

std::unique_ptr<App> make_fft(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Fft>(10);   // 1K points
    case Scale::kSmall: return std::make_unique<Fft>(16);  // 64K points
    case Scale::kDefault: return std::make_unique<Fft>(18);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
