// SvcQueue — MPMC ring queues under open-loop Zipfian traffic.
//
// The Zipf key selects the ring (hot rings model hot topics), writes
// enqueue a unique (node, seq) item, reads dequeue.  Verification is a
// conservation law over order-independent digests: the multiset of items
// enqueued must equal the multiset dequeued plus the items still queued
// at the end (count, sum and xor all balance), with a clean integrity
// scan.
#include "apps/app_base.hpp"
#include "svc/dsm_queue.hpp"
#include "svc/loadgen.hpp"

namespace dsm::apps {
namespace {

class SvcQueue final : public svc::SvcAppBase {
 public:
  SvcQueue(Scale sc, const AppArgs& a) : SvcAppBase(sc, a) {}
  std::string name() const override { return "SvcQueue"; }

 protected:
  void service_setup(SetupCtx& s) override {
    q_.setup(s, p_.segments, p_.slots_per_segment, kLockBase);
    tallies_.assign(static_cast<std::size_t>(nodes_), Tally{});
    drain_ = {};
  }

  void serve(Context& ctx, int me, std::uint64_t seq,
             const svc::OpenLoopGen::Req& r) override {
    Tally& t = tallies_[static_cast<std::size_t>(me)];
    const int ring =
        static_cast<int>(r.key % static_cast<std::uint64_t>(q_.rings()));
    if (r.is_read) {
      std::uint64_t item = 0;
      bool corrupt = false;
      if (q_.dequeue(ctx, ring, &item, &corrupt)) {
        ++t.deq;
        t.deq_sum += item;
        t.deq_xor ^= item;
      } else {
        ++t.empty;
      }
      if (corrupt) ++t.corrupt;
    } else {
      const std::uint64_t item =
          (static_cast<std::uint64_t>(me) + 1) << 40 | seq;
      if (q_.enqueue(ctx, ring, item)) {
        ++t.enq;
        t.enq_sum += item;
        t.enq_xor ^= item;
      } else {
        ++t.dropped;
      }
    }
  }

  void gather(Context& ctx) override { drain_ = q_.drain(ctx); }

  std::string service_verify() override {
    Tally sum;
    for (const Tally& t : tallies_) {
      sum.enq += t.enq;
      sum.enq_sum += t.enq_sum;
      sum.enq_xor ^= t.enq_xor;
      sum.deq += t.deq;
      sum.deq_sum += t.deq_sum;
      sum.deq_xor ^= t.deq_xor;
      sum.dropped += t.dropped;
      sum.empty += t.empty;
      sum.corrupt += t.corrupt;
    }
    if (sum.corrupt != 0 || drain_.corrupt != 0) {
      return "integrity failure: " +
             std::to_string(sum.corrupt + drain_.corrupt) + " corrupt items";
    }
    if (sum.enq != sum.deq + drain_.remaining ||
        sum.enq_sum != sum.deq_sum + drain_.sum ||
        sum.enq_xor != (sum.deq_xor ^ drain_.xr)) {
      return "conservation failure: enq " + std::to_string(sum.enq) +
             " != deq " + std::to_string(sum.deq) + " + remaining " +
             std::to_string(drain_.remaining);
    }
    const std::uint64_t ops =
        sum.enq + sum.dropped + sum.deq + sum.empty;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(nodes_) * p_.requests_per_node;
    if (ops != expected) {
      return "op count mismatch: " + std::to_string(ops) + " vs " +
             std::to_string(expected);
    }
    return {};
  }

 private:
  struct Tally {
    std::uint64_t enq = 0, enq_sum = 0, enq_xor = 0;
    std::uint64_t deq = 0, deq_sum = 0, deq_xor = 0;
    std::uint64_t dropped = 0, empty = 0, corrupt = 0;
  };
  static constexpr LockId kLockBase = 31000;

  svc::DsmQueue q_;
  std::vector<Tally> tallies_;
  svc::DsmQueue::DrainResult drain_;
};

}  // namespace

std::unique_ptr<App> make_svc_queue(Scale s, const AppArgs& a) {
  return std::make_unique<SvcQueue>(s, a);
}

}  // namespace dsm::apps
