// LU: blocked dense LU factorization without pivoting (SPLASH-2 LU,
// contiguous-blocks version).  Each BxB block is contiguous in shared
// memory; blocks are assigned to processors in a 2D scatter, so every
// block has a single writer and readers fetch whole contiguous blocks —
// the paper's "single-writer, coarse-grain access" exemplar (Table 2).
//
// Paper problem size: 1024x1024, B=16 (73.4 s sequential on the testbed).
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

// ~30 ns per flop on the simulated 66 MHz HyperSPARC.
constexpr std::int64_t kFlopNs = 30;

class Lu final : public App {
 public:
  explicit Lu(int n, int block) : n_(n), b_(block), nb_(n / block) {
    DSM_CHECK(n % block == 0);
  }

  std::string name() const override { return "LU"; }

  void setup(SetupCtx& s) override {
    factor2(s.nodes(), pr_, pc_);
    // "Allocates each block continuously in virtual memory and assigns
    // contiguous blocks to each processor" (paper §4): group every
    // processor's blocks into one contiguous run so a 4096-byte page only
    // ever holds blocks of a single writer.
    block_slot_.assign(static_cast<std::size_t>(nb_) * nb_, 0);
    std::vector<int> next_slot(static_cast<std::size_t>(s.nodes()), 0);
    std::vector<int> per_owner(static_cast<std::size_t>(s.nodes()), 0);
    for (int bi = 0; bi < nb_; ++bi) {
      for (int bj = 0; bj < nb_; ++bj) {
        ++per_owner[static_cast<std::size_t>(owner(bi, bj))];
      }
    }
    // Pad every owner's region to whole 4096-byte pages so no page holds
    // blocks of two writers (the paper's layout keeps LU single-writer at
    // page granularity).
    const int block_bytes = b_ * b_ * 8;
    const int blocks_per_page = std::max(1, 4096 / block_bytes);
    auto padded = [&](int blocks) {
      return (blocks + blocks_per_page - 1) / blocks_per_page *
             blocks_per_page;
    };
    std::vector<int> owner_base(static_cast<std::size_t>(s.nodes()), 0);
    for (int p = 1; p < s.nodes(); ++p) {
      owner_base[static_cast<std::size_t>(p)] =
          owner_base[static_cast<std::size_t>(p - 1)] +
          padded(per_owner[static_cast<std::size_t>(p - 1)]);
    }
    total_slots_ = owner_base[static_cast<std::size_t>(s.nodes() - 1)] +
                   padded(per_owner[static_cast<std::size_t>(s.nodes() - 1)]);
    for (int bi = 0; bi < nb_; ++bi) {
      for (int bj = 0; bj < nb_; ++bj) {
        const int o = owner(bi, bj);
        block_slot_[static_cast<std::size_t>(bi) * nb_ + bj] =
            owner_base[static_cast<std::size_t>(o)] +
            next_slot[static_cast<std::size_t>(o)]++;
      }
    }

    a_.allocate(s, static_cast<std::size_t>(total_slots_) * b_ * b_, 4096);
    // Diagonally dominant matrix so factorization is stable w/o pivoting.
    Rng rng(s.seed());
    host_.resize(static_cast<std::size_t>(n_) * n_);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        double v = rng.next_double();
        if (i == j) v += n_;
        host_[idx_host(i, j)] = v;
        a_.init(s, idx_blocked(i, j), v);
      }
    }
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    for (int k = 0; k < nb_; ++k) {
      if (owner(k, k) == me) factor_diag(ctx, k);
      ctx.barrier();
      // Perimeter: row blocks (k, j) and column blocks (i, k).
      for (int j = k + 1; j < nb_; ++j) {
        if (owner(k, j) == me) solve_row(ctx, k, j);
      }
      for (int i = k + 1; i < nb_; ++i) {
        if (owner(i, k) == me) solve_col(ctx, i, k);
      }
      ctx.barrier();
      // Interior update.
      for (int i = k + 1; i < nb_; ++i) {
        for (int j = k + 1; j < nb_; ++j) {
          if (owner(i, j) == me) update_interior(ctx, i, j, k);
        }
      }
      ctx.barrier();
    }
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(static_cast<std::size_t>(n_) * n_);
      for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
          result_[idx_host(i, j)] = a_.get(ctx, idx_blocked(i, j));
        }
      }
    }
  }

  std::string verify() override {
    std::vector<double> want = host_;
    // Sequential blocked LU in the same arithmetic order.
    auto at = [&](int i, int j) -> double& { return want[idx_host(i, j)]; };
    for (int k = 0; k < n_; ++k) {
      for (int i = k + 1; i < n_; ++i) {
        at(i, k) /= at(k, k);
        for (int j = k + 1; j < n_; ++j) at(i, j) -= at(i, k) * at(k, j);
      }
    }
    return compare_seq(result_, want, 1e-7);
  }

 private:
  int owner(int bi, int bj) const { return (bi % pr_) * pc_ + (bj % pc_); }

  std::size_t idx_host(int i, int j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }
  /// Block-contiguous layout, grouped by owner: block (I,J) occupies a
  /// contiguous BxB run inside its owner's contiguous region.
  std::size_t idx_blocked(int i, int j) const {
    const int bi = i / b_, bj = j / b_, li = i % b_, lj = j % b_;
    const std::size_t slot =
        static_cast<std::size_t>(block_slot_[static_cast<std::size_t>(bi) * nb_ + bj]);
    return (slot * b_ + li) * b_ + lj;
  }

  double get(Context& c, int i, int j) { return a_.get(c, idx_blocked(i, j)); }
  void put(Context& c, int i, int j, double v) {
    a_.put(c, idx_blocked(i, j), v);
  }

  void factor_diag(Context& ctx, int kb) {
    const int base = kb * b_;
    for (int k = 0; k < b_; ++k) {
      const double piv = get(ctx, base + k, base + k);
      for (int i = k + 1; i < b_; ++i) {
        const double l = get(ctx, base + i, base + k) / piv;
        put(ctx, base + i, base + k, l);
        for (int j = k + 1; j < b_; ++j) {
          put(ctx, base + i, base + j,
              get(ctx, base + i, base + j) - l * get(ctx, base + k, base + j));
        }
        ctx.compute((b_ - k) * 2 * kFlopNs);
      }
    }
  }

  /// Reads block (ib, jb) into a local buffer once (cache blocking, as the
  /// real kernel keeps the source block resident during the update).
  std::vector<double> load_block(Context& ctx, int ib, int jb) {
    std::vector<double> buf(static_cast<std::size_t>(b_) * b_);
    const int r0 = ib * b_, c0 = jb * b_;
    for (int i = 0; i < b_; ++i) {
      for (int j = 0; j < b_; ++j) {
        buf[static_cast<std::size_t>(i) * b_ + j] = get(ctx, r0 + i, c0 + j);
      }
    }
    return buf;
  }

  /// A(k,j) := L(k,k)^-1 A(k,j)   (unit-lower triangular solve, row block)
  void solve_row(Context& ctx, int kb, int jb) {
    const std::vector<double> piv = load_block(ctx, kb, kb);
    const int rb = kb * b_, cb = jb * b_;
    for (int k = 0; k < b_; ++k) {
      for (int i = k + 1; i < b_; ++i) {
        const double l = piv[static_cast<std::size_t>(i) * b_ + k];
        for (int j = 0; j < b_; ++j) {
          put(ctx, rb + i, cb + j,
              get(ctx, rb + i, cb + j) - l * get(ctx, rb + k, cb + j));
        }
        ctx.compute(b_ * 2 * kFlopNs);
      }
    }
  }

  /// A(i,k) := A(i,k) U(k,k)^-1   (upper triangular solve, column block)
  void solve_col(Context& ctx, int ib, int kb) {
    const std::vector<double> piv = load_block(ctx, kb, kb);
    const int rb = ib * b_, cb = kb * b_;
    for (int k = 0; k < b_; ++k) {
      const double pv = piv[static_cast<std::size_t>(k) * b_ + k];
      for (int i = 0; i < b_; ++i) {
        const double v = get(ctx, rb + i, cb + k) / pv;
        put(ctx, rb + i, cb + k, v);
        for (int j = k + 1; j < b_; ++j) {
          put(ctx, rb + i, cb + j,
              get(ctx, rb + i, cb + j) -
                  v * piv[static_cast<std::size_t>(k) * b_ + j]);
        }
        ctx.compute(b_ * 2 * kFlopNs);
      }
    }
  }

  /// A(i,j) -= A(i,k) * A(k,j), with both source blocks buffered locally.
  void update_interior(Context& ctx, int ib, int jb, int kb) {
    const std::vector<double> a = load_block(ctx, ib, kb);
    const std::vector<double> bsrc = load_block(ctx, kb, jb);
    const int ri = ib * b_, cj = jb * b_;
    for (int i = 0; i < b_; ++i) {
      for (int k = 0; k < b_; ++k) {
        const double l = a[static_cast<std::size_t>(i) * b_ + k];
        for (int j = 0; j < b_; ++j) {
          put(ctx, ri + i, cj + j,
              get(ctx, ri + i, cj + j) -
                  l * bsrc[static_cast<std::size_t>(k) * b_ + j]);
        }
        ctx.compute(b_ * 2 * kFlopNs);
      }
    }
  }

  int n_, b_, nb_;
  int total_slots_ = 0;
  int pr_ = 1, pc_ = 1;
  std::vector<int> block_slot_;  // (bi,bj) -> block position in memory
  SharedArray<double> a_;
  std::vector<double> host_;    // initial matrix
  std::vector<double> result_;  // gathered factorization
};

}  // namespace

std::unique_ptr<App> make_lu(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Lu>(32, 8);
    case Scale::kSmall: return std::make_unique<Lu>(192, 16);
    case Scale::kDefault: return std::make_unique<Lu>(320, 16);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
