// Water-Spatial: the same molecular dynamics as Water-Nsquared but with a
// 3D cell decomposition.  Space is a CxCxC grid of cells; each processor
// owns a cuboid of cells and computes forces for the molecules in them,
// reading neighbor cells (possibly owned by other processors).  As
// molecules drift between cells, a processor's molecules scatter across
// pages: the paper's multiple-writer, fine-grain access, coarse-grain
// synchronization category (Table 2 / Table 10).
//
// Paper problem size: 4096 molecules, 5 steps (898 s sequential).
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
constexpr double kDt = 5e-4;
constexpr double kEps = 1e-2;
constexpr int kCap = 64;  // max molecules per cell

class WaterSpatial final : public App {
 public:
  WaterSpatial(int n, int cells, int steps)
      : n_(n), c_(cells), steps_(steps) {}

  std::string name() const override { return "Water-Spatial"; }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    factor3(nodes_, px_, py_, pz_);
    DSM_CHECK_MSG(c_ % px_ == 0 && c_ % py_ == 0 && c_ % pz_ == 0,
                  "cell grid must divide the processor cuboid");
    const std::size_t nc = static_cast<std::size_t>(c_) * c_ * c_;
    pos_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    vel_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    frc_.allocate(s, 3 * static_cast<std::size_t>(n_), 4096);
    cell_cnt_.allocate(s, nc, 4096);
    cell_mol_.allocate(s, nc * kCap, 4096);

    Rng rng(s.seed() + 29);
    host_pos_.resize(3 * static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      for (int d = 0; d < 3; ++d) {
        host_pos_[static_cast<std::size_t>(3 * i + d)] = rng.next_double();
        pos_.init(s, static_cast<std::size_t>(3 * i + d),
                  host_pos_[static_cast<std::size_t>(3 * i + d)]);
        vel_.init(s, static_cast<std::size_t>(3 * i + d), 0.0);
        frc_.init(s, static_cast<std::size_t>(3 * i + d), 0.0);
      }
    }
    // Initial cell lists (insertion in molecule order -> deterministic).
    std::vector<std::vector<int>> lists(nc);
    for (int i = 0; i < n_; ++i) lists[cell_of_host(host_pos_, i)].push_back(i);
    for (std::size_t cidx = 0; cidx < nc; ++cidx) {
      DSM_CHECK_MSG(lists[cidx].size() <= kCap, "cell capacity exceeded");
      cell_cnt_.init(s, cidx, static_cast<std::int32_t>(lists[cidx].size()));
      for (std::size_t k = 0; k < lists[cidx].size(); ++k) {
        cell_mol_.init(s, cidx * kCap + k, lists[cidx][k]);
      }
    }
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    // My cuboid of cells.
    const int mx = me % px_, my = (me / px_) % py_, mz = me / (px_ * py_);
    const int x0 = mx * (c_ / px_), x1 = x0 + c_ / px_;
    const int y0 = my * (c_ / py_), y1 = y0 + c_ / py_;
    const int z0 = mz * (c_ / pz_), z1 = z0 + c_ / pz_;

    for (int step = 0; step < steps_; ++step) {
      // Zero forces for molecules in my cells.
      for_my_cells(ctx, x0, x1, y0, y1, z0, z1, [&](int cell) {
        const int cnt = cell_cnt_.get(ctx, static_cast<std::size_t>(cell));
        for (int k = 0; k < cnt; ++k) {
          const int m = cell_mol_.get(ctx, static_cast<std::size_t>(cell) * kCap + k);
          for (int d = 0; d < 3; ++d) frc_.put(ctx, static_cast<std::size_t>(3 * m + d), 0.0);
        }
      });
      ctx.barrier();

      // Force phase: each of my molecules vs molecules in the 27-cell
      // neighborhood (each pair computed twice, once per side: keeps every
      // molecule's accumulation single-writer and deterministic).
      for_my_cells(ctx, x0, x1, y0, y1, z0, z1, [&](int cell) {
        const int cnt = cell_cnt_.get(ctx, static_cast<std::size_t>(cell));
        for (int k = 0; k < cnt; ++k) {
          const int m = cell_mol_.get(ctx, static_cast<std::size_t>(cell) * kCap + k);
          double pm[3], f[3] = {0, 0, 0};
          for (int d = 0; d < 3; ++d) pm[d] = pos_.get(ctx, static_cast<std::size_t>(3 * m + d));
          visit_neighborhood(cell, [&](int nc_idx) {
            const int ncnt = cell_cnt_.get(ctx, static_cast<std::size_t>(nc_idx));
            for (int q = 0; q < ncnt; ++q) {
              const int o = cell_mol_.get(ctx, static_cast<std::size_t>(nc_idx) * kCap + q);
              if (o == m) continue;
              double d3[3];
              double r2 = kEps;
              for (int d = 0; d < 3; ++d) {
                d3[d] = pos_.get(ctx, static_cast<std::size_t>(3 * o + d)) - pm[d];
                r2 += d3[d] * d3[d];
              }
              const double inv = 1.0 / (r2 * std::sqrt(r2));
              for (int d = 0; d < 3; ++d) f[d] += d3[d] * inv;
              ctx.compute(400 * kFlopNs);
            }
          });
          for (int d = 0; d < 3; ++d) frc_.put(ctx, static_cast<std::size_t>(3 * m + d), f[d]);
        }
      });
      ctx.barrier();

      // Integrate molecules in my cells (single writer per molecule).
      for_my_cells(ctx, x0, x1, y0, y1, z0, z1, [&](int cell) {
        const int cnt = cell_cnt_.get(ctx, static_cast<std::size_t>(cell));
        for (int k = 0; k < cnt; ++k) {
          const int m = cell_mol_.get(ctx, static_cast<std::size_t>(cell) * kCap + k);
          for (int d = 0; d < 3; ++d) {
            const double v = vel_.get(ctx, static_cast<std::size_t>(3 * m + d)) +
                             kDt * frc_.get(ctx, static_cast<std::size_t>(3 * m + d));
            vel_.put(ctx, static_cast<std::size_t>(3 * m + d), v);
            // Reflecting walls keep molecules in [0,1).
            double x = pos_.get(ctx, static_cast<std::size_t>(3 * m + d)) + kDt * v;
            if (x < 0.0) x = -x;
            if (x >= 1.0) x = 2.0 - x - 1e-12;
            pos_.put(ctx, static_cast<std::size_t>(3 * m + d), x);
            ctx.compute(6 * kFlopNs);
          }
        }
      });
      ctx.barrier();

      // Migration: move molecules whose new position left my cells.  One
      // lock-protected critical section per cell touched; locks are never
      // nested (emigrants are collected first), so cross-owner insertions
      // cannot deadlock, and a molecule is removed exactly once.
      for_my_cells(ctx, x0, x1, y0, y1, z0, z1, [&](int cell) {
        std::vector<std::pair<int, int>> emigrants;  // (molecule, dest)
        ctx.lock(kCellLockBase + cell);
        int cnt = cell_cnt_.get(ctx, static_cast<std::size_t>(cell));
        for (int k = 0; k < cnt;) {
          const int m = cell_mol_.get(ctx, static_cast<std::size_t>(cell) * kCap + k);
          const int dest = cell_index(
              static_cast<int>(pos_.get(ctx, static_cast<std::size_t>(3 * m)) * c_),
              static_cast<int>(pos_.get(ctx, static_cast<std::size_t>(3 * m + 1)) * c_),
              static_cast<int>(pos_.get(ctx, static_cast<std::size_t>(3 * m + 2)) * c_));
          if (dest == cell) {
            ++k;
            continue;
          }
          const int last = cell_mol_.get(ctx, static_cast<std::size_t>(cell) * kCap + cnt - 1);
          cell_mol_.put(ctx, static_cast<std::size_t>(cell) * kCap + k, last);
          --cnt;
          cell_cnt_.put(ctx, static_cast<std::size_t>(cell), cnt);
          emigrants.emplace_back(m, dest);
        }
        ctx.unlock(kCellLockBase + cell);
        for (const auto& [m, dest] : emigrants) {
          ctx.lock(kCellLockBase + dest);
          const int dcnt = cell_cnt_.get(ctx, static_cast<std::size_t>(dest));
          DSM_CHECK_MSG(dcnt < kCap, "cell capacity exceeded");
          cell_mol_.put(ctx, static_cast<std::size_t>(dest) * kCap + dcnt, m);
          cell_cnt_.put(ctx, static_cast<std::size_t>(dest), dcnt + 1);
          ctx.unlock(kCellLockBase + dest);
        }
      });
      ctx.barrier();
    }
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(3 * static_cast<std::size_t>(n_));
      for (std::size_t i = 0; i < result_.size(); ++i) result_[i] = pos_.get(ctx, i);
    }
  }

  std::string verify() override {
    // Sequential reference with the same cell algorithm.  Cell list order
    // differs (insertions race), but each molecule's force is a sum over
    // an order-dependent traversal of its neighborhood — compare with
    // tolerance.
    std::vector<double> p = host_pos_, v(p.size(), 0.0), f(p.size());
    const std::size_t nc = static_cast<std::size_t>(c_) * c_ * c_;
    std::vector<std::vector<int>> cells(nc);
    for (int i = 0; i < n_; ++i) cells[cell_of_host(p, i)].push_back(i);
    for (int step = 0; step < steps_; ++step) {
      std::fill(f.begin(), f.end(), 0.0);
      for (std::size_t cell = 0; cell < nc; ++cell) {
        for (int m : cells[cell]) {
          double acc[3] = {0, 0, 0};
          visit_neighborhood(static_cast<int>(cell), [&](int nbr) {
            for (int o : cells[static_cast<std::size_t>(nbr)]) {
              if (o == m) continue;
              double d3[3];
              double r2 = kEps;
              for (int d = 0; d < 3; ++d) {
                d3[d] = p[static_cast<std::size_t>(3 * o + d)] -
                        p[static_cast<std::size_t>(3 * m + d)];
                r2 += d3[d] * d3[d];
              }
              const double inv = 1.0 / (r2 * std::sqrt(r2));
              for (int d = 0; d < 3; ++d) acc[d] += d3[d] * inv;
            }
          });
          for (int d = 0; d < 3; ++d) f[static_cast<std::size_t>(3 * m + d)] = acc[d];
        }
      }
      for (int i = 0; i < n_; ++i) {
        for (int d = 0; d < 3; ++d) {
          v[static_cast<std::size_t>(3 * i + d)] += kDt * f[static_cast<std::size_t>(3 * i + d)];
          double x = p[static_cast<std::size_t>(3 * i + d)] +
                     kDt * v[static_cast<std::size_t>(3 * i + d)];
          if (x < 0.0) x = -x;
          if (x >= 1.0) x = 2.0 - x - 1e-12;
          p[static_cast<std::size_t>(3 * i + d)] = x;
        }
      }
      std::vector<std::vector<int>> next(nc);
      for (int i = 0; i < n_; ++i) next[cell_of_host(p, i)].push_back(i);
      cells = std::move(next);
    }
    return compare_seq(result_, p, 1e-5);
  }

 private:
  static constexpr LockId kCellLockBase = 1000;

  int cell_index(int x, int y, int z) const {
    x = std::clamp(x, 0, c_ - 1);
    y = std::clamp(y, 0, c_ - 1);
    z = std::clamp(z, 0, c_ - 1);
    return (z * c_ + y) * c_ + x;
  }
  std::size_t cell_of_host(const std::vector<double>& p, int m) const {
    return static_cast<std::size_t>(cell_index(
        static_cast<int>(p[static_cast<std::size_t>(3 * m)] * c_),
        static_cast<int>(p[static_cast<std::size_t>(3 * m + 1)] * c_),
        static_cast<int>(p[static_cast<std::size_t>(3 * m + 2)] * c_)));
  }

  template <typename Fn>
  void for_my_cells(Context&, int x0, int x1, int y0, int y1, int z0, int z1,
                    Fn&& fn) const {
    for (int z = z0; z < z1; ++z) {
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) fn(cell_index(x, y, z));
      }
    }
  }

  template <typename Fn>
  void visit_neighborhood(int cell, Fn&& fn) const {
    const int x = cell % c_, y = (cell / c_) % c_, z = cell / (c_ * c_);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = x + dx, ny = y + dy, nz = z + dz;
          if (nx < 0 || nx >= c_ || ny < 0 || ny >= c_ || nz < 0 || nz >= c_) {
            continue;
          }
          fn(cell_index(nx, ny, nz));
        }
      }
    }
  }

  int n_, c_, steps_;
  int nodes_ = 0, px_ = 1, py_ = 1, pz_ = 1;
  SharedArray<double> pos_, vel_, frc_;
  SharedArray<std::int32_t> cell_cnt_, cell_mol_;
  std::vector<double> host_pos_;
  std::vector<double> result_;
};

}  // namespace

std::unique_ptr<App> make_water_spatial(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<WaterSpatial>(48, 4, 1);
    case Scale::kSmall: return std::make_unique<WaterSpatial>(512, 4, 2);
    case Scale::kDefault: return std::make_unique<WaterSpatial>(1024, 8, 3);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
