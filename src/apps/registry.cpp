#include "apps/app_base.hpp"

namespace dsm::apps {

std::string compare_seq(const std::vector<double>& got,
                        const std::vector<double>& want, double tol) {
  if (got.size() != want.size()) {
    return "size mismatch: got " + std::to_string(got.size()) + " want " +
           std::to_string(want.size());
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double diff = std::fabs(got[i] - want[i]);
    const double rel = diff / (std::fabs(want[i]) + 1.0);
    if (diff > tol && rel > tol) {
      return "mismatch at " + std::to_string(i) + ": got " +
             std::to_string(got[i]) + " want " + std::to_string(want[i]);
    }
  }
  return {};
}

void factor2(int p, int& a, int& b) {
  a = 1;
  for (int x = 1; x * x <= p; ++x) {
    if (p % x == 0) a = x;
  }
  b = p / a;
}

void factor3(int p, int& a, int& b, int& c) {
  a = 1;
  for (int x = 1; x * x * x <= p; ++x) {
    if (p % x == 0) a = x;
  }
  factor2(p / a, b, c);
}

namespace {
// The classic SPLASH-2 ports take no parameters: any provided key stays
// unconsumed and make_checked reports it as unknown.
std::function<std::unique_ptr<App>(Scale, const AppArgs&)> classic(
    std::unique_ptr<App> (*f)(Scale)) {
  return [f](Scale s, const AppArgs&) { return f(s); };
}
}  // namespace

std::unique_ptr<App> AppInfo::make_checked(Scale s, const AppArgs& args,
                                           std::string* err) const {
  std::unique_ptr<App> app = make_with_args(s, args);
  const std::vector<std::string> unknown = args.unused();
  if (!unknown.empty()) {
    std::string msg = "unknown app-arg key(s) for " + name + ":";
    for (const std::string& k : unknown) msg += " '" + k + "'";
    if (err != nullptr) {
      *err = msg;
      return nullptr;
    }
    DSM_CHECK_MSG(false, msg.c_str());
  }
  if (err != nullptr) err->clear();
  return app;
}

const std::vector<AppInfo>& registry() {
  static const std::vector<AppInfo> apps = {
      // Poll dilations: measured-per-application instrumentation tax.  The
      // paper reports LU at +55%; loop-dense numeric kernels are high,
      // pointer-chasing irregular codes lower.
      {"LU", 1.55, classic(make_lu)},
      {"FFT", 1.25, classic(make_fft)},
      {"Ocean-Original", 1.20, classic(make_ocean_original)},
      {"Ocean-Rowwise", 1.20, classic(make_ocean_rowwise)},
      {"Water-Nsquared", 1.18, classic(make_water_nsquared)},
      {"Water-Spatial", 1.12, classic(make_water_spatial)},
      {"Volrend-Original", 1.10, classic(make_volrend_original)},
      {"Volrend-Rowwise", 1.10, classic(make_volrend_rowwise)},
      {"Raytrace", 1.10, classic(make_raytrace)},
      {"Barnes-Original", 1.08, classic(make_barnes_original)},
      {"Barnes-Partree", 1.08, classic(make_barnes_partree)},
      {"Barnes-Spatial", 1.08, classic(make_barnes_spatial)},
      // Service workloads: requests idle-wait between open-loop arrivals,
      // so the backedge-instrumentation tax on useful compute is small.
      {"SvcKV", 1.05, make_svc_kv},
      {"SvcQueue", 1.05, make_svc_queue},
      {"SvcLease", 1.05, make_svc_lease},
  };
  return apps;
}

const AppInfo* find_app(const std::string& name) {
  for (const AppInfo& a : registry()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace dsm::apps
