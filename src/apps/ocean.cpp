// Ocean: red-black SOR relaxation on a 2D grid (the communication/sharing
// skeleton of the SPLASH-2 Ocean solver phases, which dominate its DSM
// behavior).  Two variants per the paper (§4, §5.3):
//
//   * Ocean-Original — square-subgrid partitions stored contiguously via a
//     4D-array layout (the SPLASH-2 "contiguous" version).  Writes are
//     local, but reading a neighbor's COLUMN border touches one element
//     per block: fine-grain reads, heavy fragmentation at coarse
//     granularity (Table 5, "all poor").
//   * Ocean-Rowwise — row-strip partitions in a plain row-major array.
//     Border rows are contiguous: coarse-grain reads (Table 4).
//
// Barriers after every color of every sweep give the high barrier counts
// the paper reports (~323-328).
//
// Paper problem size: 514x514 (37.4 s sequential on the testbed).
#include <vector>

#include "apps/app_base.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
constexpr double kOmega = 1.2;

/// Boundary condition / initial value.
double bc(int r, int c, int n) {
  return std::sin(0.3 * r) + std::cos(0.2 * c) + 2.0 * r * c / (double(n) * n);
}

class Ocean : public App {
 public:
  Ocean(int n, int iters, bool rowwise)
      : n_(n), iters_(iters), rowwise_(rowwise),
        m_(rowwise ? n + 2 : n) {}

  std::string name() const override {
    return rowwise_ ? "Ocean-Rowwise" : "Ocean-Original";
  }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    factor2(nodes_, pr_, pc_);
    DSM_CHECK_MSG(n_ % pr_ == 0 && n_ % pc_ == 0,
                  "grid must divide the processor grid");
    sr_ = n_ / pr_;
    sc_ = n_ / pc_;
    // Rowwise uses an (n+2)-wide grid whose rows are NOT multiples of the
    // page size (the paper's 514x514): strip boundaries share pages, which
    // is where its false sharing at coarse granularity comes from (§5.2.2).
    grid_.allocate(s, static_cast<std::size_t>(m_) * m_, 4096);
    for (int r = 0; r < m_; ++r) {
      for (int c = 0; c < m_; ++c) {
        grid_.init(s, idx(r, c), bc(r, c, m_));
      }
    }
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    int r0, r1, c0, c1;  // my partition (half-open), excluding boundary
    if (rowwise_) {
      // Partition the n interior rows; the outermost ring is boundary.
      const int rows = n_ / ctx.nodes();
      r0 = 1 + me * rows;
      r1 = r0 + rows;
      c0 = 0;
      c1 = m_;
    } else {
      const int pi = me / pc_, pj = me % pc_;
      r0 = pi * sr_;
      r1 = r0 + sr_;
      c0 = pj * sc_;
      c1 = c0 + sc_;
    }
    // Keep the outermost ring as a fixed boundary.
    const int lo_r = std::max(r0, 1), hi_r = std::min(r1, m_ - 1);
    const int lo_c = std::max(c0, 1), hi_c = std::min(c1, m_ - 1);

    for (int it = 0; it < iters_; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (int r = lo_r; r < hi_r; ++r) {
          for (int c = lo_c; c < hi_c; ++c) {
            if (((r + c) & 1) != color) continue;
            const double u = grid_.get(ctx, idx(r, c));
            const double nb = grid_.get(ctx, idx(r - 1, c)) +
                              grid_.get(ctx, idx(r + 1, c)) +
                              grid_.get(ctx, idx(r, c - 1)) +
                              grid_.get(ctx, idx(r, c + 1));
            grid_.put(ctx, idx(r, c), (1.0 - kOmega) * u + kOmega * 0.25 * nb);
            ctx.compute(7 * kFlopNs);
          }
        }
        ctx.barrier();
      }
    }
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(static_cast<std::size_t>(m_) * m_);
      for (int r = 0; r < m_; ++r) {
        for (int c = 0; c < m_; ++c) {
          result_[static_cast<std::size_t>(r) * m_ + c] = grid_.get(ctx, idx(r, c));
        }
      }
    }
  }

  std::string verify() override {
    std::vector<double> g(static_cast<std::size_t>(m_) * m_);
    for (int r = 0; r < m_; ++r) {
      for (int c = 0; c < m_; ++c) {
        g[static_cast<std::size_t>(r) * m_ + c] = bc(r, c, m_);
      }
    }
    auto at = [&](int r, int c) -> double& {
      return g[static_cast<std::size_t>(r) * m_ + c];
    };
    for (int it = 0; it < iters_; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (int r = 1; r < m_ - 1; ++r) {
          for (int c = 1; c < m_ - 1; ++c) {
            if (((r + c) & 1) != color) continue;
            const double nb = at(r - 1, c) + at(r + 1, c) + at(r, c - 1) +
                              at(r, c + 1);
            at(r, c) = (1.0 - kOmega) * at(r, c) + kOmega * 0.25 * nb;
          }
        }
      }
    }
    return compare_seq(result_, g, 1e-9);
  }

 protected:
  /// Memory layout.  Rowwise: plain row-major.  Original: 4D
  /// [pi][pj][local_r][local_c] — every processor's subgrid contiguous.
  std::size_t idx(int r, int c) const {
    if (rowwise_) return static_cast<std::size_t>(r) * m_ + c;
    const int pi = r / sr_, pj = c / sc_, lr = r % sr_, lc = c % sc_;
    return ((static_cast<std::size_t>(pi) * pc_ + pj) * sr_ + lr) * sc_ + lc;
  }

  int n_, iters_;
  bool rowwise_;
  int m_;  // grid dimension (n+2 for rowwise, n for original)
  int nodes_ = 0, pr_ = 1, pc_ = 1, sr_ = 0, sc_ = 0;
  SharedArray<double> grid_;
  std::vector<double> result_;
};

}  // namespace

std::unique_ptr<App> make_ocean_original(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Ocean>(32, 2, false);
    case Scale::kSmall: return std::make_unique<Ocean>(384, 6, false);
    case Scale::kDefault: return std::make_unique<Ocean>(512, 12, false);
  }
  DSM_CHECK(false);
}

std::unique_ptr<App> make_ocean_rowwise(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Ocean>(32, 2, true);
    case Scale::kSmall: return std::make_unique<Ocean>(384, 6, true);
    case Scale::kDefault: return std::make_unique<Ocean>(512, 12, true);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
