// Shared infrastructure for the SPLASH-2 application ports: typed shared
// arrays, problem scales, registry of the paper's 12 application variants.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace dsm::apps {

/// Problem scales: kTiny for correctness tests (runs the full protocol
/// matrix in milliseconds), kSmall for the figure/table benches (the full
/// 144-run matrix in minutes), kDefault for Table 1 style reporting.
enum class Scale { kTiny, kSmall, kDefault };

/// A typed view over shared memory.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  void allocate(SetupCtx& s, std::size_t n, std::size_t align = 64) {
    n_ = n;
    base_ = s.alloc(n * sizeof(T), align);
  }

  GAddr addr(std::size_t i) const {
    DSM_CHECK(i < n_);
    return base_ + i * sizeof(T);
  }
  std::size_t size() const { return n_; }

  T get(Context& c, std::size_t i) const { return c.load<T>(addr(i)); }
  void put(Context& c, std::size_t i, const T& v) const {
    c.store<T>(addr(i), v);
  }
  /// Read-modify-write convenience.
  void add(Context& c, std::size_t i, const T& v) const {
    c.store<T>(addr(i), c.load<T>(addr(i)) + v);
  }

  void init(SetupCtx& s, std::size_t i, const T& v) const {
    s.write<T>(addr(i), v);
  }
  T init_get(SetupCtx& s, std::size_t i) const { return s.read<T>(addr(i)); }

 private:
  GAddr base_ = kNullGAddr;
  std::size_t n_ = 0;
};

/// Compares two double sequences; returns "" or a diagnostic.
std::string compare_seq(const std::vector<double>& got,
                        const std::vector<double>& want, double tol);

/// Splits `p` into three factors as close to a cube as possible
/// (for cuboid space partitions).
void factor3(int p, int& a, int& b, int& c);
/// Splits `p` into two factors as close to a square as possible.
void factor2(int p, int& a, int& b);

/// Registry entry for one of the paper's 12 applications.
struct AppInfo {
  std::string name;
  /// Compute-time multiplier under polling (cost of the backedge
  /// instrumentation; the paper reports +55% for LU on one processor).
  double poll_dilation = 1.15;
  std::function<std::unique_ptr<App>(Scale)> make;
};

const std::vector<AppInfo>& registry();
const AppInfo* find_app(const std::string& name);

// Factories (one per paper application variant).
std::unique_ptr<App> make_lu(Scale s);
std::unique_ptr<App> make_fft(Scale s);
std::unique_ptr<App> make_ocean_original(Scale s);
std::unique_ptr<App> make_ocean_rowwise(Scale s);
std::unique_ptr<App> make_water_nsquared(Scale s);
std::unique_ptr<App> make_water_spatial(Scale s);
std::unique_ptr<App> make_volrend_original(Scale s);
std::unique_ptr<App> make_volrend_rowwise(Scale s);
std::unique_ptr<App> make_raytrace(Scale s);
std::unique_ptr<App> make_barnes_original(Scale s);
std::unique_ptr<App> make_barnes_partree(Scale s);
std::unique_ptr<App> make_barnes_spatial(Scale s);

}  // namespace dsm::apps
