// Shared infrastructure for the application ports: typed shared arrays,
// problem scales, key=value app parameters, registry of the paper's 12
// application variants plus the service-style workloads.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace dsm::apps {

/// Problem scales: kTiny for correctness tests (runs the full protocol
/// matrix in milliseconds), kSmall for the figure/table benches (the full
/// 144-run matrix in minutes), kDefault for Table 1 style reporting.
enum class Scale { kTiny, kSmall, kDefault };

/// A typed view over shared memory.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  void allocate(SetupCtx& s, std::size_t n, std::size_t align = 64) {
    n_ = n;
    base_ = s.alloc(n * sizeof(T), align);
  }

  GAddr addr(std::size_t i) const {
    DSM_CHECK(i < n_);
    return base_ + i * sizeof(T);
  }
  std::size_t size() const { return n_; }

  T get(Context& c, std::size_t i) const { return c.load<T>(addr(i)); }
  void put(Context& c, std::size_t i, const T& v) const {
    c.store<T>(addr(i), v);
  }
  /// Read-modify-write convenience.
  void add(Context& c, std::size_t i, const T& v) const {
    c.store<T>(addr(i), c.load<T>(addr(i)) + v);
  }

  void init(SetupCtx& s, std::size_t i, const T& v) const {
    s.write<T>(addr(i), v);
  }
  T init_get(SetupCtx& s, std::size_t i) const { return s.read<T>(addr(i)); }

 private:
  GAddr base_ = kNullGAddr;
  std::size_t n_ = 0;
};

/// Compares two double sequences; returns "" or a diagnostic.
std::string compare_seq(const std::vector<double>& got,
                        const std::vector<double>& want, double tol);

/// Splits `p` into three factors as close to a cube as possible
/// (for cuboid space partitions).
void factor3(int p, int& a, int& b, int& c);
/// Splits `p` into two factors as close to a square as possible.
void factor2(int p, int& a, int& b);

/// Generic key=value parameter channel for applications (--app-arg k=v on
/// dsmrun, Harness::set_app_args on the benches).  Typed getters mark
/// their key as consumed; after construction the factory caller rejects
/// any key the app never read, so a typo is an error naming the key
/// rather than a silently ignored knob.
class AppArgs {
 public:
  AppArgs() = default;

  /// Parses one "key=value" binding; returns "" or a diagnostic.
  std::string set_kv(const std::string& kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      return "app-arg is not key=value: '" + kv + "'";
    }
    kv_[kv.substr(0, eq)] = kv.substr(eq + 1);
    return {};
  }
  void set(const std::string& k, const std::string& v) { kv_[k] = v; }
  void set_int(const std::string& k, std::int64_t v) {
    kv_[k] = std::to_string(v);
  }
  void set_double(const std::string& k, double v) { kv_[k] = fmt_double(v); }

  bool has(const std::string& k) const {
    used_.insert(k);
    return kv_.count(k) != 0;
  }
  std::string get_str(const std::string& k, const std::string& def) const {
    used_.insert(k);
    const auto it = kv_.find(k);
    return it == kv_.end() ? def : it->second;
  }
  std::int64_t get_int(const std::string& k, std::int64_t def) const {
    used_.insert(k);
    const auto it = kv_.find(k);
    if (it == kv_.end()) return def;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    DSM_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                  "app-arg value is not an integer");
    return v;
  }
  double get_double(const std::string& k, double def) const {
    used_.insert(k);
    const auto it = kv_.find(k);
    if (it == kv_.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    DSM_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                  "app-arg value is not a number");
    return v;
  }

  bool empty() const { return kv_.empty(); }

  /// Keys set but never read by the app's factory (the unknown keys).
  std::vector<std::string> unused() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : kv_) {
      if (used_.count(k) == 0) out.push_back(k);
    }
    return out;
  }

  /// "k=v k=v" display label (deterministic: map order).
  std::string summary() const {
    std::string out;
    for (const auto& [k, v] : kv_) {
      if (!out.empty()) out += ' ';
      out += k + "=" + v;
    }
    return out;
  }

 private:
  static std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
  }
  std::map<std::string, std::string> kv_;
  /// Consumption marks; mutable so const getters can record reads.  Not
  /// thread-safe: concurrent callers must copy the AppArgs first (the
  /// Harness does).
  mutable std::set<std::string> used_;
};

/// Registry entry for one application.
struct AppInfo {
  std::string name;
  /// Compute-time multiplier under polling (cost of the backedge
  /// instrumentation; the paper reports +55% for LU on one processor).
  double poll_dilation = 1.15;
  std::function<std::unique_ptr<App>(Scale, const AppArgs&)> make_with_args;

  /// Constructs with default parameters (classic call sites).
  std::unique_ptr<App> make(Scale s) const {
    return make_with_args(s, AppArgs{});
  }
  /// Constructs and rejects unknown keys.  With `err` non-null the
  /// diagnostic is returned there (and the result is nullptr); with err
  /// null an unknown key aborts loudly.
  std::unique_ptr<App> make_checked(Scale s, const AppArgs& args,
                                    std::string* err = nullptr) const;
};

const std::vector<AppInfo>& registry();
const AppInfo* find_app(const std::string& name);

// Factories (one per paper application variant).
std::unique_ptr<App> make_lu(Scale s);
std::unique_ptr<App> make_fft(Scale s);
std::unique_ptr<App> make_ocean_original(Scale s);
std::unique_ptr<App> make_ocean_rowwise(Scale s);
std::unique_ptr<App> make_water_nsquared(Scale s);
std::unique_ptr<App> make_water_spatial(Scale s);
std::unique_ptr<App> make_volrend_original(Scale s);
std::unique_ptr<App> make_volrend_rowwise(Scale s);
std::unique_ptr<App> make_raytrace(Scale s);
std::unique_ptr<App> make_barnes_original(Scale s);
std::unique_ptr<App> make_barnes_partree(Scale s);
std::unique_ptr<App> make_barnes_spatial(Scale s);

// Service-style workloads (src/svc): DSM-backed stores under open-loop
// Zipfian traffic, parameterized through AppArgs.
std::unique_ptr<App> make_svc_kv(Scale s, const AppArgs& args);
std::unique_ptr<App> make_svc_queue(Scale s, const AppArgs& args);
std::unique_ptr<App> make_svc_lease(Scale s, const AppArgs& args);

}  // namespace dsm::apps
