// Raytrace: a recursive sphere ray tracer with the SPLASH-2 Raytrace
// sharing structure — a read-only scene into which rays are shot, an
// image plane written at fine grain, and distributed task queues with
// stealing as the only interesting communication (paper §4, Table 11:
// multiple-writer, fine-grain access, one barrier).
//
// Paper problem size: balls4 (343.8 s sequential).
#include <array>
#include <vector>

#include "apps/app_base.hpp"
#include "apps/task_queue.hpp"

namespace dsm::apps {
namespace {

constexpr std::int64_t kFlopNs = 30;
constexpr int kTile = 8;

struct Vec {
  double x = 0, y = 0, z = 0;
  Vec operator+(const Vec& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(const Vec& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec norm() const {
    const double l = std::sqrt(dot(*this));
    return {x / l, y / l, z / l};
  }
};

struct Sphere {
  Vec center;
  double radius = 0;
  double shade = 0;   // base gray level
  double mirror = 0;  // reflectivity
};

class Raytrace final : public App {
 public:
  Raytrace(int img, int nspheres) : img_(img), ns_(nspheres) {}

  std::string name() const override { return "Raytrace"; }

  void setup(SetupCtx& s) override {
    nodes_ = s.nodes();
    // Scene: a ball cluster (like "balls4"), deterministic from the seed.
    Rng rng(s.seed() + 41);
    host_scene_.resize(static_cast<std::size_t>(ns_));
    for (auto& sp : host_scene_) {
      sp.center = {rng.next_double() * 4 - 2, rng.next_double() * 4 - 2,
                   3 + rng.next_double() * 4};
      sp.radius = 0.25 + rng.next_double() * 0.5;
      sp.shade = 0.2 + 0.8 * rng.next_double();
      sp.mirror = rng.next_double() * 0.6;
    }
    scene_.allocate(s, static_cast<std::size_t>(ns_) * 6, 4096);
    for (int i = 0; i < ns_; ++i) {
      const Sphere& sp = host_scene_[static_cast<std::size_t>(i)];
      scene_.init(s, static_cast<std::size_t>(6 * i) + 0, sp.center.x);
      scene_.init(s, static_cast<std::size_t>(6 * i) + 1, sp.center.y);
      scene_.init(s, static_cast<std::size_t>(6 * i) + 2, sp.center.z);
      scene_.init(s, static_cast<std::size_t>(6 * i) + 3, sp.radius);
      scene_.init(s, static_cast<std::size_t>(6 * i) + 4, sp.shade);
      scene_.init(s, static_cast<std::size_t>(6 * i) + 5, sp.mirror);
    }
    image_.allocate(s, static_cast<std::size_t>(img_) * img_, 4096);
    const int tiles = (img_ / kTile) * (img_ / kTile);
    queues_.allocate(s, nodes_, tiles / nodes_ + nodes_ + 1);
    for (int t = 0; t < tiles; ++t) queues_.deal(s, t % nodes_, t);
  }

  void node_main(Context& ctx) override {
    const int me = ctx.id();
    // Each worker caches the (read-only) scene on first use via DSM reads.
    for (;;) {
      const std::int32_t task = queues_.next(ctx, me);
      if (task < 0) break;
      const int per_row = img_ / kTile;
      const int ty = task / per_row, tx = task % per_row;
      for (int y = ty * kTile; y < (ty + 1) * kTile; ++y) {
        for (int x = tx * kTile; x < (tx + 1) * kTile; ++x) {
          const double v = trace_pixel(x, y, [&](int i, int f) {
            ctx.compute(3 * kFlopNs);
            return scene_.get(ctx, static_cast<std::size_t>(6 * i + f));
          });
          image_.put(ctx, static_cast<std::size_t>(y) * img_ + x,
                     static_cast<float>(v));
          ctx.compute(100 * kFlopNs);
        }
      }
    }
    ctx.barrier();
    ctx.stop_timer();
    if (me == 0) {
      result_.resize(static_cast<std::size_t>(img_) * img_);
      for (std::size_t i = 0; i < result_.size(); ++i) {
        result_[i] = image_.get(ctx, i);
      }
    }
  }

  std::string verify() override {
    std::vector<double> want(static_cast<std::size_t>(img_) * img_);
    auto host_fetch = [&](int i, int f) {
      const Sphere& sp = host_scene_[static_cast<std::size_t>(i)];
      switch (f) {
        case 0: return sp.center.x;
        case 1: return sp.center.y;
        case 2: return sp.center.z;
        case 3: return sp.radius;
        case 4: return sp.shade;
        default: return sp.mirror;
      }
    };
    for (int y = 0; y < img_; ++y) {
      for (int x = 0; x < img_; ++x) {
        want[static_cast<std::size_t>(y) * img_ + x] =
            trace_pixel(x, y, host_fetch);
      }
    }
    std::vector<double> got(result_.begin(), result_.end());
    return compare_seq(got, want, 1e-5);
  }

 private:
  template <typename Fetch>
  double trace_pixel(int x, int y, Fetch&& fetch) const {
    const Vec origin{0, 0, 0};
    const Vec dir = Vec{(x + 0.5) / img_ * 2 - 1, (y + 0.5) / img_ * 2 - 1, 1.5}
                        .norm();
    return trace(origin, dir, 0, fetch);
  }

  template <typename Fetch>
  double trace(const Vec& o, const Vec& d, int depth, Fetch&& fetch) const {
    int hit = -1;
    double best = 1e30;
    for (int i = 0; i < ns_; ++i) {
      const Vec c{fetch(i, 0), fetch(i, 1), fetch(i, 2)};
      const double r = fetch(i, 3);
      const Vec oc = o - c;
      const double b = oc.dot(d);
      const double disc = b * b - (oc.dot(oc) - r * r);
      if (disc <= 0) continue;
      const double t = -b - std::sqrt(disc);
      if (t > 1e-6 && t < best) {
        best = t;
        hit = i;
      }
    }
    if (hit < 0) return 0.05;  // background
    const Vec c{fetch(hit, 0), fetch(hit, 1), fetch(hit, 2)};
    const Vec p = o + d * best;
    const Vec n = (p - c).norm();
    const Vec light = Vec{-0.5, -1.0, -0.4}.norm();
    double v = fetch(hit, 4) * std::max(0.0, -n.dot(light)) + 0.03;
    // Shadow ray.
    bool shadow = false;
    for (int i = 0; i < ns_ && !shadow; ++i) {
      if (i == hit) continue;
      const Vec sc{fetch(i, 0), fetch(i, 1), fetch(i, 2)};
      const double r = fetch(i, 3);
      const Vec oc = p - sc;
      const Vec sd = light * -1.0;
      const double b = oc.dot(sd);
      const double disc = b * b - (oc.dot(oc) - r * r);
      if (disc > 0 && -b - std::sqrt(disc) > 1e-6) shadow = true;
    }
    if (shadow) v *= 0.35;
    const double mir = fetch(hit, 5);
    if (mir > 0.05 && depth < 2) {
      const Vec refl = d - n * (2.0 * d.dot(n));
      v = v * (1.0 - mir) + mir * trace(p + refl * 1e-6, refl, depth + 1, fetch);
    }
    return v;
  }

  int img_, ns_;
  int nodes_ = 0;
  SharedArray<double> scene_;
  SharedArray<float> image_;
  TaskQueues queues_;
  std::vector<Sphere> host_scene_;
  std::vector<float> result_;
};

}  // namespace

std::unique_ptr<App> make_raytrace(Scale s) {
  switch (s) {
    case Scale::kTiny: return std::make_unique<Raytrace>(16, 8);
    case Scale::kSmall: return std::make_unique<Raytrace>(128, 32);
    case Scale::kDefault: return std::make_unique<Raytrace>(256, 64);
  }
  DSM_CHECK(false);
}

}  // namespace dsm::apps
