// Distributed task queues with stealing (the SPLASH-2 Volrend/Raytrace
// idiom, paper §4).  Each processor owns a queue of task ids in shared
// memory guarded by a per-queue lock; workers pop locally and steal from
// victims when empty.  Task-queue pages and image pages are where these
// applications get their multiple-writer false sharing.
#pragma once

#include "apps/app_base.hpp"

namespace dsm::apps {

class TaskQueues {
 public:
  /// Capacity per queue must bound the dealt tasks plus steals.
  void allocate(SetupCtx& s, int nqueues, int capacity) {
    nq_ = nqueues;
    cap_ = capacity;
    head_.allocate(s, static_cast<std::size_t>(nqueues), 64);
    tail_.allocate(s, static_cast<std::size_t>(nqueues), 64);
    slots_.allocate(s, static_cast<std::size_t>(nqueues) * capacity, 64);
    for (int q = 0; q < nqueues; ++q) {
      head_.init(s, static_cast<std::size_t>(q), 0);
      tail_.init(s, static_cast<std::size_t>(q), 0);
    }
  }

  /// Host-side: deal task `t` into queue `q` during setup.
  void deal(SetupCtx& s, int q, std::int32_t t) {
    const std::int32_t tl = tail_.init_get(s, static_cast<std::size_t>(q));
    DSM_CHECK(tl < cap_);
    slots_.init(s, static_cast<std::size_t>(q) * cap_ + tl, t);
    tail_.init(s, static_cast<std::size_t>(q), tl + 1);
  }

  /// Pops from own queue, then steals round-robin.  Returns -1 when all
  /// queues are empty.  `me` is also the lock namespace.
  std::int32_t next(Context& ctx, int me) {
    for (int off = 0; off < nq_; ++off) {
      const int q = (me + off) % nq_;
      ctx.lock(kLockBase + q);
      const std::int32_t h = head_.get(ctx, static_cast<std::size_t>(q));
      const std::int32_t t = tail_.get(ctx, static_cast<std::size_t>(q));
      if (h < t) {
        // Own queue: pop front; steals take from the back.
        std::int32_t task;
        if (off == 0) {
          task = slots_.get(ctx, static_cast<std::size_t>(q) * cap_ + h);
          head_.put(ctx, static_cast<std::size_t>(q), h + 1);
        } else {
          task = slots_.get(ctx, static_cast<std::size_t>(q) * cap_ + t - 1);
          tail_.put(ctx, static_cast<std::size_t>(q), t - 1);
        }
        ctx.unlock(kLockBase + q);
        return task;
      }
      ctx.unlock(kLockBase + q);
    }
    return -1;
  }

 private:
  static constexpr LockId kLockBase = 8000;
  int nq_ = 0, cap_ = 0;
  SharedArray<std::int32_t> head_, tail_, slots_;
};

}  // namespace dsm::apps
