# Empty compiler generated dependencies file for dsmrun.
# This may be replaced when dependencies are built.
