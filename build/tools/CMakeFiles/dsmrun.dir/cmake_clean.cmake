file(REMOVE_RECURSE
  "CMakeFiles/dsmrun.dir/dsmrun.cpp.o"
  "CMakeFiles/dsmrun.dir/dsmrun.cpp.o.d"
  "dsmrun"
  "dsmrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
