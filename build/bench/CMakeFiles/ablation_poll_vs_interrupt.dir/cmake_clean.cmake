file(REMOVE_RECURSE
  "CMakeFiles/ablation_poll_vs_interrupt.dir/ablation_poll_vs_interrupt.cpp.o"
  "CMakeFiles/ablation_poll_vs_interrupt.dir/ablation_poll_vs_interrupt.cpp.o.d"
  "ablation_poll_vs_interrupt"
  "ablation_poll_vs_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_poll_vs_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
