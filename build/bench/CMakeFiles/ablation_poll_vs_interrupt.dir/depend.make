# Empty dependencies file for ablation_poll_vs_interrupt.
# This may be replaced when dependencies are built.
