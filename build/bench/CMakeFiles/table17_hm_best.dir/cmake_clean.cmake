file(REMOVE_RECURSE
  "CMakeFiles/table17_hm_best.dir/table17_hm_best.cpp.o"
  "CMakeFiles/table17_hm_best.dir/table17_hm_best.cpp.o.d"
  "table17_hm_best"
  "table17_hm_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table17_hm_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
