# Empty dependencies file for table17_hm_best.
# This may be replaced when dependencies are built.
