# Empty compiler generated dependencies file for table15_barnes_traffic.
# This may be replaced when dependencies are built.
