file(REMOVE_RECURSE
  "CMakeFiles/table15_barnes_traffic.dir/table15_barnes_traffic.cpp.o"
  "CMakeFiles/table15_barnes_traffic.dir/table15_barnes_traffic.cpp.o.d"
  "table15_barnes_traffic"
  "table15_barnes_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table15_barnes_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
