# Empty dependencies file for table16_hm_original.
# This may be replaced when dependencies are built.
