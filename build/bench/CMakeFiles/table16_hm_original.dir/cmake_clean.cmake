file(REMOVE_RECURSE
  "CMakeFiles/table16_hm_original.dir/table16_hm_original.cpp.o"
  "CMakeFiles/table16_hm_original.dir/table16_hm_original.cpp.o.d"
  "table16_hm_original"
  "table16_hm_original.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table16_hm_original.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
