file(REMOVE_RECURSE
  "CMakeFiles/ablation_home_migration.dir/ablation_home_migration.cpp.o"
  "CMakeFiles/ablation_home_migration.dir/ablation_home_migration.cpp.o.d"
  "ablation_home_migration"
  "ablation_home_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_home_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
