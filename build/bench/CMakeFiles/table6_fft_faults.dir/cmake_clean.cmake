file(REMOVE_RECURSE
  "CMakeFiles/table6_fft_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table6_fft_faults.dir/fault_table.cpp.o.d"
  "table6_fft_faults"
  "table6_fft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
