# Empty dependencies file for table6_fft_faults.
# This may be replaced when dependencies are built.
