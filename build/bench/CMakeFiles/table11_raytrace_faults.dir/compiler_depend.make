# Empty compiler generated dependencies file for table11_raytrace_faults.
# This may be replaced when dependencies are built.
