file(REMOVE_RECURSE
  "CMakeFiles/table11_raytrace_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table11_raytrace_faults.dir/fault_table.cpp.o.d"
  "table11_raytrace_faults"
  "table11_raytrace_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_raytrace_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
