# Empty compiler generated dependencies file for table14_barnes_partree_faults.
# This may be replaced when dependencies are built.
