file(REMOVE_RECURSE
  "CMakeFiles/table14_barnes_partree_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table14_barnes_partree_faults.dir/fault_table.cpp.o.d"
  "table14_barnes_partree_faults"
  "table14_barnes_partree_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_barnes_partree_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
