file(REMOVE_RECURSE
  "CMakeFiles/fig1_speedups.dir/fig1_speedups.cpp.o"
  "CMakeFiles/fig1_speedups.dir/fig1_speedups.cpp.o.d"
  "fig1_speedups"
  "fig1_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
