# Empty dependencies file for fig1_speedups.
# This may be replaced when dependencies are built.
