# Empty compiler generated dependencies file for table8_volrend_rowwise_faults.
# This may be replaced when dependencies are built.
