file(REMOVE_RECURSE
  "CMakeFiles/table8_volrend_rowwise_faults.dir/fault_table.cpp.o"
  "CMakeFiles/table8_volrend_rowwise_faults.dir/fault_table.cpp.o.d"
  "table8_volrend_rowwise_faults"
  "table8_volrend_rowwise_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_volrend_rowwise_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
