# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_hlrc_vs_dist_lrc.
